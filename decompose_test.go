package hcd_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"hcd"
)

// Every decomposition method must be reachable through DecomposeCtx, and each
// per-method facade must be a thin wrapper over it: identical assignments and
// identical method-specific extras.

func sameAssignment(t *testing.T, label string, want, got *hcd.Decomposition) {
	t.Helper()
	if want.Count != got.Count {
		t.Fatalf("%s: count %d != %d", label, got.Count, want.Count)
	}
	for v := range want.Assign {
		if want.Assign[v] != got.Assign[v] {
			t.Fatalf("%s: vertex %d assigned %d, want %d", label, v, got.Assign[v], want.Assign[v])
		}
	}
}

func TestDecomposeCtxMatchesTreeWrappers(t *testing.T) {
	g := hcd.RandomTree(500, hcd.LognormalWeights(1), 3)
	for _, parallel := range []bool{false, true} {
		res, err := hcd.DecomposeCtx(context.Background(), g,
			hcd.DecomposeOptions{Method: hcd.MethodTree, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var want *hcd.Decomposition
		if parallel {
			want, err = hcd.DecomposeTreeParallel(g)
		} else {
			want, err = hcd.DecomposeTree(g)
		}
		if err != nil {
			t.Fatal(err)
		}
		sameAssignment(t, "tree", want, res.D)
		if res.Report.Count != res.D.Count || res.Report.Phi <= 0 {
			t.Errorf("report %+v inconsistent with decomposition", res.Report)
		}
	}
}

func TestDecomposeCtxMatchesFixedDegreeWrapper(t *testing.T) {
	g := hcd.Grid3D(8, 8, 8, hcd.LognormalWeights(1), 2)
	res, err := hcd.DecomposeCtx(context.Background(), g,
		hcd.DecomposeOptions{Method: hcd.MethodFixedDegree, SizeCap: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := hcd.DecomposeFixedDegree(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "fixed-degree", want, res.D)
	if res.Report != hcd.Evaluate(res.D) {
		t.Errorf("pipeline report %+v != Evaluate", res.Report)
	}
}

func TestDecomposeCtxMatchesPlanarWrapper(t *testing.T) {
	g := hcd.Grid2D(20, 20, hcd.LognormalWeights(1), 4)
	opt := hcd.DefaultDecomposeOptions(hcd.MethodPlanar)
	opt.Seed = 4
	res, err := hcd.DecomposeCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	popt := hcd.DefaultPlanarOptions()
	popt.Seed = 4
	want, err := hcd.DecomposePlanar(g, popt)
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "planar", want.D, res.D)
	if res.CoreSize != want.CoreSize || res.CutEdges != want.CutEdges {
		t.Errorf("core/cut (%d, %d) != wrapper (%d, %d)",
			res.CoreSize, res.CutEdges, want.CoreSize, want.CutEdges)
	}
	if res.AvgStretch != want.AvgStretch {
		t.Errorf("avg stretch %v != %v", res.AvgStretch, want.AvgStretch)
	}
	if res.B == nil || res.B.N() != g.N() {
		t.Errorf("missing or mis-sized sparse subgraph B")
	}
}

func TestDecomposeCtxMatchesMinorFreeWrapper(t *testing.T) {
	g := hcd.Grid2D(16, 16, hcd.LognormalWeights(1), 6)
	opt := hcd.DefaultDecomposeOptions(hcd.MethodMinorFree)
	opt.Seed = 6
	res, err := hcd.DecomposeCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hcd.DecomposeMinorFree(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "minor-free", want.D, res.D)
	if res.CoreSize != want.CoreSize || res.CutEdges != want.CutEdges || res.AvgStretch != want.AvgStretch {
		t.Errorf("extras (%d, %d, %v) != wrapper (%d, %d, %v)",
			res.CoreSize, res.CutEdges, res.AvgStretch,
			want.CoreSize, want.CutEdges, want.AvgStretch)
	}
}

func TestDecomposeCtxMatchesSpectralWrapper(t *testing.T) {
	g := hcd.Grid2D(12, 12, hcd.LognormalWeights(1), 8)
	opt := hcd.DefaultDecomposeOptions(hcd.MethodSpectral)
	res, err := hcd.DecomposeCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, stats, err := hcd.DecomposeSpectral(g, hcd.DefaultSpectralCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "spectral", want, res.D)
	if res.SpectralStats != stats {
		t.Errorf("stats %+v != wrapper %+v", res.SpectralStats, stats)
	}
}

// TestDecomposeCtxBuildMetrics checks every method reports non-empty metrics
// with positive per-stage timings and the stage set its pipeline defines.
func TestDecomposeCtxBuildMetrics(t *testing.T) {
	tree := hcd.RandomTree(400, hcd.LognormalWeights(1), 1)
	grid := hcd.Grid2D(16, 16, hcd.LognormalWeights(1), 1)
	cases := []struct {
		method hcd.DecomposeMethod
		g      *hcd.Graph
		stages []string
	}{
		{hcd.MethodTree, tree, []string{"tree-decompose", "evaluate"}},
		{hcd.MethodFixedDegree, grid, []string{"cluster", "evaluate"}},
		{hcd.MethodPlanar, grid, []string{"base-tree", "sparsify", "strip-cut-core", "tree-decompose", "rebind", "evaluate"}},
		{hcd.MethodMinorFree, grid, []string{"base-tree", "sparsify", "strip-cut-core", "tree-decompose", "rebind", "evaluate"}},
		{hcd.MethodSpectral, grid, []string{"spectral-cut", "evaluate"}},
	}
	for _, tc := range cases {
		opt := hcd.DefaultDecomposeOptions(tc.method)
		res, err := hcd.DecomposeCtx(context.Background(), tc.g, opt)
		if err != nil {
			t.Fatalf("%v: %v", tc.method, err)
		}
		m := res.Metrics
		if len(m.Stages) != len(tc.stages) {
			t.Fatalf("%v: stages %+v, want %v", tc.method, m.Stages, tc.stages)
		}
		for i, name := range tc.stages {
			s := m.Stages[i]
			if s.Name != name {
				t.Errorf("%v: stage %d is %q, want %q", tc.method, i, s.Name, name)
			}
			if s.Duration <= 0 {
				t.Errorf("%v: stage %q has non-positive duration %v", tc.method, s.Name, s.Duration)
			}
		}
		if m.TotalTime <= 0 {
			t.Errorf("%v: non-positive total time %v", tc.method, m.TotalTime)
		}
		if m.Cert != res.Report.Cert {
			t.Errorf("%v: metrics cert %+v != report cert %+v", tc.method, m.Cert, res.Report.Cert)
		}
		if m.Cert.Cores == 0 && m.Cert.Bounds == 0 {
			t.Errorf("%v: evaluate stage certified nothing: %+v", tc.method, m.Cert)
		}
		if res.D == nil || res.D.Count == 0 {
			t.Errorf("%v: empty decomposition", tc.method)
		}
	}
}

func TestDecomposeCtxSkipReport(t *testing.T) {
	g := hcd.Grid2D(10, 10, hcd.LognormalWeights(1), 1)
	opt := hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree)
	opt.SkipReport = true
	res, err := hcd.DecomposeCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != (hcd.Report{}) {
		t.Errorf("SkipReport left a report: %+v", res.Report)
	}
	if _, ok := res.Metrics.Stage("evaluate"); ok {
		t.Error("SkipReport still ran the evaluate stage")
	}
}

func TestDecomposeCtxPreCancelled(t *testing.T) {
	g := hcd.Grid2D(10, 10, hcd.LognormalWeights(1), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []hcd.DecomposeMethod{
		hcd.MethodTree, hcd.MethodPlanar, hcd.MethodMinorFree,
		hcd.MethodFixedDegree, hcd.MethodSpectral,
	} {
		_, err := hcd.DecomposeCtx(ctx, g, hcd.DefaultDecomposeOptions(m))
		if !errors.Is(err, hcd.ErrBuildCancelled) || !errors.Is(err, context.Canceled) {
			t.Errorf("%v: error %v does not wrap both sentinels", m, err)
		}
	}
}

// TestDecomposeCtxMidBuildCancellation cancels a large fixed-degree build
// shortly after it starts and requires a prompt return carrying both
// sentinels — the end-to-end promptness contract of the build path.
func TestDecomposeCtxMidBuildCancellation(t *testing.T) {
	g := hcd.Grid3D(24, 24, 24, hcd.LognormalWeights(1), 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := hcd.DecomposeCtx(ctx, g, hcd.DefaultDecomposeOptions(hcd.MethodFixedDegree))
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("build finished before the cancel landed")
	}
	if !errors.Is(err, hcd.ErrBuildCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap both sentinels", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled build took %v to return", elapsed)
	}
}

func TestDecomposeCtxUnknownMethod(t *testing.T) {
	g := hcd.Grid2D(4, 4, nil, 1)
	if _, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{Method: hcd.DecomposeMethod(42)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestDecomposeMethodString(t *testing.T) {
	names := map[hcd.DecomposeMethod]string{
		hcd.MethodTree:        "tree",
		hcd.MethodPlanar:      "planar",
		hcd.MethodMinorFree:   "minor-free",
		hcd.MethodFixedDegree: "fixed-degree",
		hcd.MethodSpectral:    "spectral",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
	if hcd.DecomposeMethod(42).String() == "" {
		t.Error("unknown method stringer empty")
	}
}

func TestBuildLaminarCtxAndHierarchyCtxCancellation(t *testing.T) {
	g := hcd.Grid2D(20, 20, hcd.LognormalWeights(1), 1)
	// Larger than the default hierarchy DirectLimit, so its level loop (and
	// the cancellation check inside it) actually runs.
	big := hcd.Grid3D(10, 10, 10, hcd.LognormalWeights(1), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := hcd.BuildLaminarCtx(ctx, g, 4, 10, 1); !errors.Is(err, hcd.ErrBuildCancelled) {
		t.Errorf("BuildLaminarCtx error %v does not wrap ErrBuildCancelled", err)
	}
	if _, err := hcd.NewHierarchyCtx(ctx, big, hcd.DefaultHierarchyOptions()); !errors.Is(err, hcd.ErrBuildCancelled) {
		t.Errorf("NewHierarchyCtx error %v does not wrap ErrBuildCancelled", err)
	}
	// The live-context forms must agree with their plain counterparts.
	lam, err := hcd.BuildLaminarCtx(context.Background(), g, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := hcd.BuildLaminar(g, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lam.Depth() != plain.Depth() {
		t.Errorf("ctx laminar depth %d != %d", lam.Depth(), plain.Depth())
	}
}
