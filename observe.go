package hcd

// The public surface of the unified observability layer (internal/obs):
// hierarchical tracing of solves and decomposition builds, a registry of
// atomic counters/gauges/histograms that every layer publishes into, and
// streaming per-iteration solve observers.
//
// Both instruments travel in a context.Context. Install them with
// WithTracer/WithMetricRegistry and pass the context to any *Ctx entry
// point (SolveCtx, SolvePCGCtx, DecomposeCtx, SolveResilient,
// NewHierarchyCtx reached through them, ...): the solver cores, the
// pipeline stages, the hierarchy builder, the resilient ladder, and the
// exact certifier all pick them up automatically. With neither installed
// the entire layer is inert — nil lookups and nil-receiver no-ops, zero
// allocations (the disabled path is asserted alloc-free by the obs tests,
// preserving the engine's zero-alloc warm-solve guarantee).
//
//	tr, reg := hcd.NewTracer(), hcd.NewMetricRegistry()
//	ctx := hcd.WithMetricRegistry(hcd.WithTracer(context.Background(), tr), reg)
//	res, report, err := hcd.SolveResilient(ctx, g, b, hcd.DefaultResilienceOptions())
//	tr.WriteChromeTrace(f)     // chrome://tracing / ui.perfetto.dev
//	reg.WritePrometheus(os.Stdout)

import (
	"context"

	"hcd/internal/obs"
)

// Tracer records a tree of timed spans (solve attempts, pipeline stages,
// hierarchy levels, resilient-ladder rungs) against one monotonic clock,
// exportable as Chrome trace_event JSON via WriteChromeTrace. Safe for
// concurrent use; nil means disabled.
type Tracer = obs.Tracer

// Span is one interval in a Tracer's tree; all methods are no-ops on nil.
type Span = obs.Span

// MetricRegistry is a named set of atomic counters, gauges and histograms
// with JSON and Prometheus text-exposition encoders (WriteJSON,
// WritePrometheus). Safe for concurrent use; nil means disabled.
type MetricRegistry = obs.Registry

// IterationObserver streams a solve's per-iteration residual norms as they
// happen; set one on SolveOptions.Observer. See StreamResiduals,
// HistogramResiduals, TraceResiduals and MultiObserver in this package's
// internal/obs for ready-made implementations re-exported below.
type IterationObserver = obs.IterationObserver

// ObserverFunc adapts a plain function to IterationObserver.
type ObserverFunc = obs.ObserverFunc

// NewTracer starts an empty trace clocked from the moment of the call.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricRegistry returns an empty metric registry.
func NewMetricRegistry() *MetricRegistry { return obs.NewRegistry() }

// WithTracer returns a context under which every instrumented layer records
// spans into t (nil t returns ctx unchanged).
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return obs.WithTracer(ctx, t)
}

// WithMetricRegistry returns a context under which every instrumented layer
// publishes its metrics into r (nil r returns ctx unchanged).
func WithMetricRegistry(ctx context.Context, r *MetricRegistry) context.Context {
	return obs.WithRegistry(ctx, r)
}

// StartSpan opens a span under the context's current span, for callers that
// want their own application phases in the same trace as the library's
// spans. Always pair with sp.End(); sp is nil (and End a no-op) when no
// tracer is installed.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}
