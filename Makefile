# Convenience targets for the hcd reproduction. Everything is stdlib Go; no
# external dependencies are fetched.

GO ?= go

.PHONY: all build test bench vet fmt selfcheck experiments fig6 coverage

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench:
	$(GO) test -bench=. -benchmem ./...

selfcheck:
	$(GO) run ./cmd/hcd-selfcheck -rounds 25

experiments:
	$(GO) run ./cmd/hcd-experiments

fig6:
	$(GO) run ./cmd/hcd-fig6

coverage:
	$(GO) test -cover ./...
