# Convenience targets for the hcd reproduction. Everything is stdlib Go; no
# external dependencies are fetched.

GO ?= go

.PHONY: all build test bench bench-decomp bench-solve bench-json bench-scale bench-replay bench-gate replay-smoke scale-smoke vet fmt check race race-solver selfcheck chaos server-chaos fuzz server-smoke experiments fig6 coverage

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the pre-merge gate: vet, the full suite under the race detector
# (the parallel solver kernels run with GOMAXPROCS > 1 in tests), a short
# fuzz pass over the input parsers, the fault-recovery chaos battery, the
# serving-stack smoke battery, the serving crash/recovery battery, the
# scenario-replay smoke, and the replay-score regression gate.
check: vet race fuzz chaos server-smoke server-chaos replay-smoke bench-gate

race:
	$(GO) test -race ./...

# race-solver races just the parallel kernels and primitives (fast).
race-solver:
	$(GO) test -race ./internal/solver/... ./internal/par/... ./internal/graph/...

fmt:
	gofmt -l .

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-decomp: the decomposition-pipeline benchmarks behind BENCH.md (P4) —
# parallel Evaluate and the unified DecomposeCtx path.
bench-decomp:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluate|BenchmarkDecomposePipeline' -benchmem .

# bench-solve: the multi-RHS block-solve benchmark behind BENCH_solve.json —
# block-PCG at k ∈ {1, 4, 16} vs 16 sequential warm-engine solves on the same
# hierarchy, pinned to GOMAXPROCS=1 so the speedup is pure memory-hierarchy
# amortization, not parallelism.
bench-solve:
	$(GO) test -run '^$$' -bench 'BenchmarkBlockSolve' -benchmem .

# server-smoke: the in-process serving battery — submit/build/solve round
# trip, cache-hit and single-build invariants, LRU eviction, and per-tenant
# 429 + Retry-After overload isolation.
server-smoke:
	$(GO) run ./cmd/hcd-server -smoke

selfcheck:
	$(GO) run ./cmd/hcd-selfcheck -rounds 25

# chaos: the deterministic fault-recovery battery — injected NaNs, worker
# panics, corrupted builds, forced breakdowns, malformed input.
chaos:
	$(GO) run ./cmd/hcd-selfcheck -chaos

# server-chaos: the serving-layer durability battery — servers are crashed
# (in-process and via real SIGKILL) and restarted on the same -state-dir,
# snapshots are corrupted on disk, and the snapshot-write / snapshot-read /
# build-fail / solve-delay fault points are injected; asserts
# restore-without-rebuild, quarantine, breaker degradation to CG, and
# deadline status mapping.
server-chaos:
	$(GO) run ./cmd/hcd-selfcheck -server-chaos

# fuzz: short fuzzing passes over the graph input parsers with a
# write/reparse round-trip oracle, over the stub-aware exact conductance
# certifier with the brute-force cut enumeration as a differential oracle,
# and over the binary snapshot decoders with a decode/re-encode round-trip
# oracle (go fuzzing runs one target at a time).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadEdgeList -fuzztime=10s ./internal/gio
	$(GO) test -run '^$$' -fuzz FuzzReadMatrixMarket -fuzztime=10s ./internal/gio
	$(GO) test -run '^$$' -fuzz FuzzExactConductance -fuzztime=10s ./internal/graph
	$(GO) test -run '^$$' -fuzz FuzzSnapshotRoundTrip -fuzztime=10s ./internal/gio

# bench-json: run the committed benchmark set and write the machine-readable
# records (ns/op, B/op, allocs/op, host core count) behind BENCH.md:
# the parallel Evaluate, the DecomposeCtx pipeline builds, and the warm
# zero-alloc Engine solves.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluate$$' -benchmem . \
		| $(GO) run ./cmd/hcd-benchjson -tags evaluate -out BENCH_evaluate.json
	$(GO) test -run '^$$' -bench 'BenchmarkDecomposePipeline' -benchmem . \
		| $(GO) run ./cmd/hcd-benchjson -tags decompose -out BENCH_decompose.json
	$(GO) test -run '^$$' -bench 'BenchmarkEngineWarmSolves|BenchmarkBlockSolve' -benchmem . \
		| $(GO) run ./cmd/hcd-benchjson -tags solve -out BENCH_solve.json

# bench-replay: replay the committed `steady` scenario through the serving
# stack in-process and write BENCH_replay.json — a benchfmt record whose
# embedded report carries the deterministic fitness score. The score is
# bit-identical across runs and GOMAXPROCS settings (PCG-only mix, exact
# iteration-count quantiles), so hcd-benchdiff gates it with no noise margin.
bench-replay:
	$(GO) run ./cmd/hcd-replay -scenario steady -out BENCH_replay.json -gate

# replay-smoke: the seconds-scale replay gate — generate and replay the
# `smoke` scenario trace against the in-process serve stack and fail on any
# deterministic SLO miss.
replay-smoke:
	$(GO) run ./cmd/hcd-replay -scenario smoke -gate

# bench-gate: the perf-regression gate — rerun the steady replay to a temp
# record and diff its deterministic score against the committed
# BENCH_replay.json (absolute drop threshold; wall-clock metrics never gate).
bench-gate:
	$(GO) run ./cmd/hcd-replay -scenario steady -out /tmp/hcd_replay_new.json
	$(GO) run ./cmd/hcd-benchdiff -old BENCH_replay.json -new /tmp/hcd_replay_new.json

# bench-scale: the end-to-end scaling benchmark behind BENCH_scale.json —
# decompose + hierarchy-build + PCG-solve a 10⁶-vertex weighted 3D grid,
# single-pass vs 8 shards, recording wall times and per-config peak RSS
# (each configuration runs in its own child process for honest VmHWM).
bench-scale:
	$(GO) run ./cmd/hcd-scale -side 100 -shards 1,8 -out BENCH_scale.json

# scale-smoke: the CI-sized scaling gate — a ≈200k-vertex 3D grid built with
# 4 shards and solved end to end under a hard wall-clock budget.
scale-smoke:
	$(GO) run ./cmd/hcd-scale -side 59 -shards 4 -timeout 10m

experiments:
	$(GO) run ./cmd/hcd-experiments

fig6:
	$(GO) run ./cmd/hcd-fig6

coverage:
	$(GO) test -cover ./...
