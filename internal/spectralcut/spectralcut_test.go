package spectralcut

import (
	"testing"

	"hcd/internal/decomp"
	"hcd/internal/graph"
	"hcd/internal/workload"
)

func TestDecomposeGrid(t *testing.T) {
	g := workload.Grid2D(12, 12, workload.Lognormal(1), 1)
	d, st, err := Decompose(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Count < 2 {
		t.Errorf("no splitting happened (count=%d)", d.Count)
	}
	if st.Splits == 0 || st.EigenCalls < st.Splits {
		t.Errorf("stats inconsistent: %+v", st)
	}
	// Every final cluster of certifiable size must meet the target
	// conductance of its induced subgraph or be at MinSize.
	opt := DefaultOptions()
	for _, set := range d.Clusters() {
		if len(set) <= opt.MinSize {
			continue
		}
		sub, _, err := g.InducedSubgraph(set)
		if err != nil {
			t.Fatal(err)
		}
		if sub.N() <= graph.MaxExactConductance && sub.Connected() {
			phi, perr := sub.ExactConductance()
			if perr != nil {
				t.Fatal(perr)
			}
			if phi < opt.TargetPhi {
				t.Fatalf("cluster of %d vertices has conductance %v < target", len(set), phi)
			}
		}
	}
}

func TestDecomposePlantedBlocks(t *testing.T) {
	// Two dense blocks joined by one light edge: the first split must
	// separate them.
	var es []graph.Edge
	s := 10
	for b := 0; b < 2; b++ {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				es = append(es, graph.Edge{U: b*s + i, V: b*s + j, W: 1})
			}
		}
	}
	es = append(es, graph.Edge{U: 0, V: s, W: 0.01})
	g := graph.MustFromEdges(2*s, es)
	opt := DefaultOptions()
	opt.TargetPhi = 0.2
	d, _, err := Decompose(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 2 {
		t.Fatalf("count = %d, want 2", d.Count)
	}
	for v := 1; v < s; v++ {
		if d.Assign[v] != d.Assign[0] || d.Assign[s+v] != d.Assign[s] {
			t.Fatal("blocks were split incorrectly")
		}
	}
	if d.Assign[0] == d.Assign[s] {
		t.Fatal("blocks were not separated")
	}
}

func TestDecomposeRespectsComponents(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1},
	})
	d, _, err := Decompose(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Assign[0] == d.Assign[3] {
		t.Error("clusters span components")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeValidation(t *testing.T) {
	g := workload.Grid2D(3, 3, nil, 1)
	opt := DefaultOptions()
	opt.TargetPhi = 0
	if _, _, err := Decompose(g, opt); err == nil {
		t.Error("TargetPhi 0 accepted")
	}
	empty := graph.MustFromEdges(0, nil)
	if d, _, err := Decompose(empty, DefaultOptions()); err != nil || d.Count != 0 {
		t.Error("empty graph mishandled")
	}
}

func TestMaxClustersCap(t *testing.T) {
	g := workload.Grid2D(16, 16, workload.Lognormal(1), 2)
	opt := DefaultOptions()
	opt.TargetPhi = 10 // unattainable: would split forever without the cap
	opt.MaxClusters = 10
	d, _, err := Decompose(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count > opt.MaxClusters+2 {
		t.Errorf("count %d exceeds cap", d.Count)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The paper's motivating comparison: the top-down recursion needs an
// eigensolve per split while the bottom-up §3.1 clustering needs none and
// achieves a guaranteed reduction factor.
func TestTopDownVsBottomUpProfile(t *testing.T) {
	g := workload.Grid2D(14, 14, workload.Lognormal(1), 3)
	dTop, st, err := Decompose(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dBot, err := decomp.FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rTop := decomp.Evaluate(dTop, graph.MaxExactConductance)
	rBot := decomp.Evaluate(dBot, graph.MaxExactConductance)
	t.Logf("top-down: %d clusters (ρ=%.2f) with %d eigensolves; bottom-up: %d clusters (ρ=%.2f), zero eigensolves",
		dTop.Count, rTop.Rho, st.EigenCalls, dBot.Count, rBot.Rho)
	if rBot.Rho < 2 {
		t.Errorf("bottom-up lost its reduction guarantee: %v", rBot.Rho)
	}
}

func BenchmarkSpectralCutGrid(b *testing.B) {
	g := workload.Grid2D(20, 20, workload.Lognormal(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompose(g, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
