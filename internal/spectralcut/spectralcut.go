// Package spectralcut implements the recursive two-way partitioning
// baseline the paper's introduction analyzes (Kannan, Vempala & Vetta [16]):
// repeatedly split any cluster whose conductance is below a target φ with a
// spectral sweep cut, producing a (φ', γ_avg) decomposition. It exists as
// the top-down comparison point for the paper's bottom-up constructions —
// including its cost profile (an eigensolve per split, no reduction-factor
// guarantee).
package spectralcut

import (
	"context"
	"fmt"
	"sort"

	"hcd/internal/decomp"
	"hcd/internal/graph"
	"hcd/internal/spectral"
)

// Options controls the recursion.
type Options struct {
	// TargetPhi stops splitting a cluster once its conductance certificate
	// is at least this value.
	TargetPhi float64
	// MinSize stops splitting clusters at or below this many vertices.
	MinSize int
	// MaxClusters aborts the recursion once this many clusters exist
	// (two-way recursion has no reduction guarantee — the paper's point).
	MaxClusters int
	Seed        int64
}

// DefaultOptions targets conductance 0.1 with clusters of ≥ 4 vertices.
func DefaultOptions() Options {
	return Options{TargetPhi: 0.1, MinSize: 4, MaxClusters: 1 << 20, Seed: 1}
}

// Stats reports the work profile of the recursion.
type Stats struct {
	Splits     int // two-way cuts performed
	EigenCalls int // Lanczos solves (the dominant cost)
}

// Decompose recursively bipartitions g until every cluster certifies
// conductance ≥ TargetPhi (via exact enumeration when small, else a
// spectral sweep-cut upper bound reaching the target is *not* proof, so
// small clusters are certified exactly and large clusters use the Cheeger
// lower bound λ₂/2).
func Decompose(g *graph.Graph, opt Options) (*decomp.Decomposition, Stats, error) {
	return DecomposeCtx(context.Background(), g, opt)
}

// DecomposeCtx is Decompose under a context, checked once per work-queue
// item (each item costs at least one eigensolve or exact enumeration, so the
// poll interval is bounded by a single split's work). Cancellation returns
// an error wrapping decomp.ErrBuildCancelled.
func DecomposeCtx(ctx context.Context, g *graph.Graph, opt Options) (*decomp.Decomposition, Stats, error) {
	if opt.TargetPhi <= 0 {
		return nil, Stats{}, fmt.Errorf("spectralcut: TargetPhi must be positive")
	}
	if opt.MinSize < 2 {
		opt.MinSize = 2
	}
	n := g.N()
	d := &decomp.Decomposition{G: g, Assign: make([]int, n)}
	var st Stats
	if n == 0 {
		return d, st, nil
	}
	// Work queue of vertex sets; start from connected components.
	label, k := g.Components()
	queue := make([][]int, k)
	for v, c := range label {
		queue[c] = append(queue[c], v)
	}
	var done [][]int
	for len(queue) > 0 {
		if ctx.Err() != nil {
			return nil, st, decomp.Cancelled(ctx)
		}
		if len(done)+len(queue) >= opt.MaxClusters {
			done = append(done, queue...)
			break
		}
		set := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if len(set) <= opt.MinSize {
			done = append(done, set)
			continue
		}
		sub, back, err := g.InducedSubgraph(set)
		if err != nil {
			return nil, st, err
		}
		if !sub.Connected() {
			// Induced pieces can disconnect after a parent split.
			sl, sk := sub.Components()
			parts := make([][]int, sk)
			for v, c := range sl {
				parts[c] = append(parts[c], back[v])
			}
			queue = append(queue, parts...)
			continue
		}
		phiOK, certified := certify(sub, opt.TargetPhi, &st, opt.Seed)
		if phiOK && certified {
			done = append(done, set)
			continue
		}
		left, right, err := sweepSplit(sub, &st, opt.Seed)
		if err != nil || len(left) == 0 || len(right) == 0 {
			// No usable split: accept the cluster as-is.
			done = append(done, set)
			continue
		}
		queue = append(queue, mapBack(left, back), mapBack(right, back))
	}
	for id, set := range done {
		for _, v := range set {
			d.Assign[v] = id
		}
	}
	d.Count = len(done)
	return d, st, nil
}

// certify decides whether sub's conductance is ≥ target. The bool pair is
// (meets target, certificate is sound). Exact when the stub-free core is
// below the enumeration limit — pendant vertices are placed in closed form
// by the stub-aware certifier, so a large cluster with a small 2-core-like
// interior still gets an exact certificate; Cheeger λ₂/2 otherwise.
func certify(sub *graph.Graph, target float64, st *Stats, seed int64) (bool, bool) {
	if sub.CoreSize() <= graph.MaxExactConductance {
		phi, err := sub.ExactConductance()
		if err != nil {
			// Unreachable: the core limit was just checked.
			panic(err)
		}
		return phi >= target, true
	}
	lo, _, err := spectral.CheegerBounds(sub, seed)
	st.EigenCalls++
	if err != nil {
		return false, false
	}
	return lo >= target, true
}

// sweepSplit computes the Fiedler-style sweep cut of sub and returns the two
// sides (local vertex ids).
func sweepSplit(sub *graph.Graph, st *Stats, seed int64) ([]int, []int, error) {
	_, vecs, err := spectral.Smallest(sub, 1, 0, seed)
	st.EigenCalls++
	st.Splits++
	if err != nil {
		return nil, nil, err
	}
	sqrtD := spectral.SqrtVolumes(sub)
	score := make([]float64, sub.N())
	perm := make([]int, sub.N())
	for v := range perm {
		perm[v] = v
		if sqrtD[v] > 0 {
			score[v] = vecs[0][v] / sqrtD[v]
		}
	}
	sort.Slice(perm, func(i, j int) bool { return score[perm[i]] < score[perm[j]] })
	_, side := sub.SweepCut(perm)
	if len(side) == 0 || len(side) == sub.N() {
		return nil, nil, fmt.Errorf("spectralcut: degenerate sweep cut")
	}
	in := make([]bool, sub.N())
	for _, v := range side {
		in[v] = true
	}
	var left, right []int
	for v := 0; v < sub.N(); v++ {
		if in[v] {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	return left, right, nil
}

func mapBack(local []int, back []int) []int {
	out := make([]int, len(local))
	for i, v := range local {
		out[i] = back[v]
	}
	return out
}
