package resist

import (
	"math"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/workload"
)

func TestSeriesLaw(t *testing.T) {
	// Path with conductances 2 and 4: R(0,2) = 1/2 + 1/4 = 0.75.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 4}})
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Between(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.75) > 1e-8 {
		t.Errorf("series R = %v, want 0.75", r)
	}
}

func TestParallelLaw(t *testing.T) {
	// Two parallel unit paths of length 2 between 0 and 3:
	// each path resistance 2, in parallel → 1.
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 3, W: 1},
		{U: 0, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Between(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-8 {
		t.Errorf("parallel R = %v, want 1", r)
	}
}

func TestTriangleResistance(t *testing.T) {
	// Unit triangle: R(u,v) = (1 · 2)/(1 + 2) = 2/3.
	g := graph.MustFromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
	})
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Between(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2.0/3) > 1e-8 {
		t.Errorf("triangle R = %v, want 2/3", r)
	}
}

func TestSymmetryAndZero(t *testing.T) {
	g := workload.Grid2D(6, 6, workload.Lognormal(1), 3)
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Between(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Between(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-r2) > 1e-8 {
		t.Errorf("asymmetric: %v vs %v", r1, r2)
	}
	if z, _ := c.Between(5, 5); z != 0 {
		t.Errorf("self resistance %v", z)
	}
	if _, err := c.Between(-1, 2); err == nil {
		t.Error("bad vertex accepted")
	}
}

func TestFostersTheorem(t *testing.T) {
	// Σ over edges of w(e)·R_eff(e) = n − 1 on any connected graph.
	for _, g := range []*graph.Graph{
		workload.Grid2D(5, 5, workload.Lognormal(1), 1),
		workload.GridDiag2D(4, 5, workload.UniformWeight(0.5, 3), 2),
	} {
		c, err := New(g)
		if err != nil {
			t.Fatal(err)
		}
		lev, err := c.EdgeLeverages()
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, l := range lev {
			if l <= 0 || l > 1+1e-8 {
				t.Errorf("leverage %v outside (0, 1]", l)
			}
			sum += l
		}
		if math.Abs(sum-float64(g.N()-1)) > 1e-6 {
			t.Errorf("Foster sum = %v, want %d", sum, g.N()-1)
		}
	}
}

func TestRejectsDisconnected(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := New(g); err == nil {
		t.Error("disconnected accepted")
	}
}

func BenchmarkResistanceGrid(b *testing.B) {
	g := workload.Grid2D(30, 30, workload.Lognormal(1), 1)
	c, err := New(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Between(0, g.N()-1); err != nil {
			b.Fatal(err)
		}
	}
}
