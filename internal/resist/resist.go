// Package resist computes effective resistances of weighted graphs —
// R_eff(u, v) = (e_u − e_v)ᵀ A⁺ (e_u − e_v) — via the library's own
// preconditioned solvers. Effective resistance is the electrical quantity
// behind edge stretch, leverage scores, and spectral sparsification, and it
// certifies preconditioner solves end-to-end: the series/parallel laws give
// exact ground truth.
package resist

import (
	"context"
	"fmt"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/solver"
)

// Computer answers effective-resistance queries over one graph. It is a
// solver.Engine session under the hood: the multilevel Steiner
// preconditioner and every work buffer are shared across queries, so after
// the first solve a query allocates nothing. Not safe for concurrent use.
type Computer struct {
	g     *graph.Graph
	eng   *solver.Engine
	b     []float64
	total solver.Metrics
}

// New prepares a computer for the connected graph g. A disconnected graph
// returns an error wrapping graph.ErrDisconnected.
func New(g *graph.Graph) (*Computer, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("resist: %w", graph.ErrDisconnected)
	}
	h, err := hierarchy.New(g, hierarchy.DefaultOptions())
	if err != nil {
		return nil, err
	}
	opt := solver.DefaultOptions()
	opt.Tol = 1e-10
	eng, err := solver.NewLapEngine(g, h, opt)
	if err != nil {
		return nil, err
	}
	return &Computer{g: g, eng: eng, b: make([]float64, g.N())}, nil
}

// Between returns R_eff(u, v): inject one unit of current at u, extract it
// at v, and read the potential difference.
func (c *Computer) Between(u, v int) (float64, error) {
	return c.BetweenCtx(context.Background(), u, v)
}

// BetweenCtx is Between with cancellation: a context cancelled mid-solve
// aborts the underlying PCG within one iteration-check interval.
func (c *Computer) BetweenCtx(ctx context.Context, u, v int) (float64, error) {
	n := c.g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("resist: vertex out of range: %w", graph.ErrBadDimension)
	}
	if u == v {
		return 0, nil
	}
	c.b[u], c.b[v] = 1, -1
	res, err := c.eng.Solve(ctx, c.b)
	c.b[u], c.b[v] = 0, 0
	c.accumulate(res.Metrics)
	if err != nil {
		return 0, err
	}
	if res.Outcome == solver.OutcomeCancelled {
		return 0, fmt.Errorf("resist: solve cancelled after %d iterations: %w", res.Iterations, ctx.Err())
	}
	if !res.Converged {
		return 0, fmt.Errorf("resist: %d iterations: %w", res.Iterations, solver.ErrNotConverged)
	}
	return res.X[u] - res.X[v], nil
}

// EdgeLeverages returns, for every edge (in g.Edges() order), the leverage
// score w(e)·R_eff(e) ∈ (0, 1] — the sampling probability weight of
// spectral sparsification and the "importance" of the edge. The scores of
// a connected graph sum to n − 1 (Foster's theorem), which the tests check.
func (c *Computer) EdgeLeverages() ([]float64, error) {
	return c.EdgeLeveragesCtx(context.Background())
}

// EdgeLeveragesCtx is EdgeLeverages with cancellation between (and within)
// the per-edge solves.
func (c *Computer) EdgeLeveragesCtx(ctx context.Context) ([]float64, error) {
	es := c.g.Edges()
	out := make([]float64, len(es))
	for i, e := range es {
		r, err := c.BetweenCtx(ctx, e.U, e.V)
		if err != nil {
			return nil, err
		}
		out[i] = e.W * r
	}
	return out, nil
}

// Metrics returns the cumulative solve metrics over every query answered so
// far: total matvecs, preconditioner applies, iterations, and wall time.
func (c *Computer) Metrics() solver.Metrics { return c.total }

func (c *Computer) accumulate(m solver.Metrics) {
	c.total.MatVecs += m.MatVecs
	c.total.PrecondApplies += m.PrecondApplies
	c.total.Iterations += m.Iterations
	c.total.SetupTime += m.SetupTime
	c.total.IterTime += m.IterTime
	c.total.TotalTime += m.TotalTime
	c.total.ScratchAllocs += m.ScratchAllocs
	c.total.FinalResidual = m.FinalResidual
}
