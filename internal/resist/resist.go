// Package resist computes effective resistances of weighted graphs —
// R_eff(u, v) = (e_u − e_v)ᵀ A⁺ (e_u − e_v) — via the library's own
// preconditioned solvers. Effective resistance is the electrical quantity
// behind edge stretch, leverage scores, and spectral sparsification, and it
// certifies preconditioner solves end-to-end: the series/parallel laws give
// exact ground truth.
package resist

import (
	"fmt"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/solver"
)

// Computer answers effective-resistance queries over one graph, reusing a
// multilevel Steiner preconditioner across solves.
type Computer struct {
	g   *graph.Graph
	h   *hierarchy.Hierarchy
	op  solver.Operator
	opt solver.Options
}

// New prepares a computer for the connected graph g.
func New(g *graph.Graph) (*Computer, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("resist: graph must be connected")
	}
	h, err := hierarchy.New(g, hierarchy.DefaultOptions())
	if err != nil {
		return nil, err
	}
	opt := solver.DefaultOptions()
	opt.Tol = 1e-10
	return &Computer{g: g, h: h, op: solver.LapOperator(g), opt: opt}, nil
}

// Between returns R_eff(u, v): inject one unit of current at u, extract it
// at v, and read the potential difference.
func (c *Computer) Between(u, v int) (float64, error) {
	n := c.g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("resist: vertex out of range")
	}
	if u == v {
		return 0, nil
	}
	b := make([]float64, n)
	b[u], b[v] = 1, -1
	res := solver.PCG(c.op, c.h, b, c.opt)
	if !res.Converged {
		return 0, fmt.Errorf("resist: solve did not converge in %d iterations", res.Iterations)
	}
	return res.X[u] - res.X[v], nil
}

// EdgeLeverages returns, for every edge (in g.Edges() order), the leverage
// score w(e)·R_eff(e) ∈ (0, 1] — the sampling probability weight of
// spectral sparsification and the "importance" of the edge. The scores of
// a connected graph sum to n − 1 (Foster's theorem), which the tests check.
func (c *Computer) EdgeLeverages() ([]float64, error) {
	es := c.g.Edges()
	out := make([]float64, len(es))
	for i, e := range es {
		r, err := c.Between(e.U, e.V)
		if err != nil {
			return nil, err
		}
		out[i] = e.W * r
	}
	return out, nil
}
