package treealg

import (
	"fmt"
	"math/rand"

	"hcd/internal/graph"
)

// PruferDecode converts a Prüfer sequence over vertices [0, n) with
// len(seq) = n−2 into the edge list of the unique labeled tree it encodes.
func PruferDecode(n int, seq []int) ([]graph.Edge, error) {
	if n < 2 {
		if n >= 0 && len(seq) == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("treealg: bad Prüfer input n=%d len=%d", n, len(seq))
	}
	if len(seq) != n-2 {
		return nil, fmt.Errorf("treealg: Prüfer sequence must have length n-2, got %d for n=%d", len(seq), n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range seq {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("treealg: Prüfer entry %d out of range", v)
		}
		deg[v]++
	}
	// ptr/leaf scan gives O(n) decoding without a heap.
	edges := make([]graph.Edge, 0, n-1)
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		edges = append(edges, graph.Edge{U: leaf, V: v, W: 1})
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	edges = append(edges, graph.Edge{U: leaf, V: n - 1, W: 1})
	return edges, nil
}

// PruferEncode converts a tree into its Prüfer sequence; the inverse of
// PruferDecode.
func PruferEncode(g *graph.Graph) ([]int, error) {
	n := g.N()
	if !g.IsTree() {
		return nil, fmt.Errorf("treealg: PruferEncode needs a tree")
	}
	if n < 2 {
		return nil, nil
	}
	// Root at n−1 so every other vertex has a parent; peel leaves in
	// increasing label order with the classic pointer scan.
	_, parent := g.BFS(n - 1)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	seq := make([]int, 0, n-2)
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for len(seq) < n-2 {
		next := parent[leaf]
		seq = append(seq, next)
		deg[next]--
		if deg[next] == 1 && next < ptr {
			leaf = next
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	return seq, nil
}

// RandomTree returns a uniformly random labeled tree on n vertices with edge
// weights drawn by weightFn (or unit weights if weightFn is nil).
func RandomTree(rng *rand.Rand, n int, weightFn func() float64) *graph.Graph {
	if n <= 1 {
		return graph.MustFromEdges(maxInt(n, 0), nil)
	}
	seq := make([]int, maxInt(n-2, 0))
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	edges, err := PruferDecode(n, seq)
	if err != nil {
		panic(err)
	}
	if weightFn != nil {
		for i := range edges {
			edges[i].W = weightFn()
		}
	}
	return graph.MustFromEdges(n, edges)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
