package treealg

import (
	"hcd/internal/graph"
	"hcd/internal/par"
)

// EulerTour is an Euler tour of a tree: the circuit that traverses every
// edge once in each direction, broken into a linked list starting at the
// root's first arc. Arcs are numbered by (vertex, adjacency-slot): arc
// off[v]+i is the i-th arc out of v.
type EulerTour struct {
	Tail, Head []int // per-arc endpoints: arc a goes Tail[a] → Head[a]
	Twin       []int // reverse arc id
	Next       []int // successor arc in the tour; −1 terminates
	Start      int   // first arc of the tour
	off        []int // per-vertex first arc id
}

// NewEulerTour builds the Euler tour of the tree g rooted at root. g must
// have at least one edge.
func NewEulerTour(g *graph.Graph, root int) *EulerTour {
	n := g.N()
	arcs := 0
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v] = arcs
		arcs += g.Degree(v)
	}
	off[n] = arcs
	t := &EulerTour{
		Tail: make([]int, arcs),
		Head: make([]int, arcs),
		Twin: make([]int, arcs),
		Next: make([]int, arcs),
		off:  off,
	}
	// Record endpoints and match twins through a per-edge map keyed on the
	// ordered pair packed into an int64.
	slotOf := make(map[int64]int, arcs)
	pack := func(u, v int) int64 { return int64(u)*int64(n) + int64(v) }
	for v := 0; v < n; v++ {
		nbr, _ := g.Neighbors(v)
		for i, u := range nbr {
			a := off[v] + i
			t.Tail[a], t.Head[a] = v, u
			slotOf[pack(v, u)] = a
		}
	}
	par.For(arcs, 8192, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			t.Twin[a] = slotOf[pack(t.Head[a], t.Tail[a])]
		}
	})
	// next(u→v) = the arc out of v following the twin in v's rotation.
	par.For(arcs, 8192, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			v := t.Head[a]
			tw := t.Twin[a]
			deg := off[v+1] - off[v]
			t.Next[a] = off[v] + (tw-off[v]+1)%deg
		}
	})
	// Break the circuit into a list starting at the root's first arc: the
	// predecessor of Start is the twin of the root's last slot.
	t.Start = off[root]
	last := t.Twin[off[root+1]-1]
	t.Next[last] = -1
	return t
}

// ArcCount returns the number of arcs (2·edges).
func (t *EulerTour) ArcCount() int { return len(t.Next) }

// FirstArc returns the id of the first arc out of v, and the number of arcs
// out of v.
func (t *EulerTour) FirstArc(v int) (int, int) { return t.off[v], t.off[v+1] - t.off[v] }

// ListRank returns the position of each list node from the start of the
// list described by next (−1 terminates). It uses pointer jumping: O(log n)
// parallel rounds over the whole arc set, the classical PRAM list-ranking
// step of parallel tree contraction.
func ListRank(next []int) []int {
	n := len(next)
	suffix := make([]int, n) // nodes strictly after i
	nxt := append([]int(nil), next...)
	for i, x := range nxt {
		if x >= 0 {
			suffix[i] = 1
		}
	}
	newSuffix := make([]int, n)
	newNxt := make([]int, n)
	for {
		done := true
		par.For(n, 8192, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if j := nxt[i]; j >= 0 {
					newSuffix[i] = suffix[i] + suffix[j]
					newNxt[i] = nxt[j]
				} else {
					newSuffix[i] = suffix[i]
					newNxt[i] = -1
				}
			}
		})
		suffix, newSuffix = newSuffix, suffix
		nxt, newNxt = newNxt, nxt
		for _, j := range nxt {
			if j >= 0 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	total := n
	pos := make([]int, n)
	par.For(n, 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos[i] = total - 1 - suffix[i]
		}
	})
	return pos
}
