package treealg

// Solver is an exact O(n) direct solver for tree (forest) Laplacian systems
// A_T·x = b: one upward elimination pass accumulates subtree sums of b, one
// downward pass back-substitutes. For right-hand sides orthogonal to the
// constant vector on each component it returns the zero-mean solution,
// matching the pseudo-inverse. Tree preconditioners apply through this.
type Solver struct {
	r        *Rooted
	acc      []float64
	comp     []int
	compSize []int
	compSum  []float64
}

// NewSolver prepares a solver for the rooted forest r.
func NewSolver(r *Rooted) *Solver {
	s := &Solver{r: r, acc: make([]float64, r.G.N())}
	s.comp = s.componentOf()
	s.compSize = make([]int, len(r.Roots))
	s.compSum = make([]float64, len(r.Roots))
	for _, c := range s.comp {
		s.compSize[c]++
	}
	return s
}

// Solve writes the zero-mean (per component) solution of A_T·x = b into dst.
// dst and b may alias. b must be orthogonal to the constant vector on every
// component up to roundoff; the component sums of b are folded out so the
// solve is exact for the projected right-hand side.
func (s *Solver) Solve(dst, b []float64) {
	r := s.r
	n := r.G.N()
	if len(dst) != n || len(b) != n {
		panic("treealg: Solve shape mismatch")
	}
	copy(s.acc, b)
	// Upward: acc[v] becomes the subtree sum of b under v.
	for i := len(r.Order) - 1; i >= 0; i-- {
		v := r.Order[i]
		if p := r.Parent[v]; p >= 0 {
			s.acc[p] += s.acc[v]
		}
	}
	// Downward: x[v] = x[parent] + acc[v]/w(v, parent); roots at 0.
	for _, v := range r.Order {
		if p := r.Parent[v]; p >= 0 {
			dst[v] = dst[p] + s.acc[v]/r.PWeight[v]
		} else {
			dst[v] = 0
		}
	}
	// De-mean each component so the result matches the pseudo-inverse.
	for i := range s.compSum {
		s.compSum[i] = 0
	}
	for v := 0; v < n; v++ {
		s.compSum[s.comp[v]] += dst[v]
	}
	for v := 0; v < n; v++ {
		dst[v] -= s.compSum[s.comp[v]] / float64(s.compSize[s.comp[v]])
	}
}

func (s *Solver) componentOf() []int {
	r := s.r
	comp := make([]int, r.G.N())
	rootIdx := make(map[int]int, len(r.Roots))
	for i, root := range r.Roots {
		rootIdx[root] = i
	}
	for _, v := range r.Order {
		if p := r.Parent[v]; p >= 0 {
			comp[v] = comp[p]
		} else {
			comp[v] = rootIdx[v]
		}
	}
	return comp
}
