package treealg

import (
	"fmt"

	"hcd/internal/graph"
)

// Contraction is the result of rake-and-compress parallel tree contraction
// (Reid-Miller, Miller & Modugno) — the machinery Theorem 2.1 cites for its
// O(log n) parallel time bound. Each round simultaneously rakes all leaves
// into their parents and compresses an independent set of degree-2 chain
// vertices chosen by deterministic coin mating, so a tree contracts to its
// root in O(log n) rounds with high probability.
//
// The contraction evaluates a tree expression along the way: Acc[v]
// accumulates the total original edge weight of the part of the tree
// contracted into v, demonstrating the bottom-up information flow that
// descendant counts (and hence 3-critical vertices) need. At the end the
// root has accumulated the whole tree: Acc[root] = Σ w(e).
type Contraction struct {
	Rounds     int
	RoundSizes []int     // alive vertex count after each round
	Acc        []float64 // accumulated original edge weight per alive ancestor
}

// ContractTree contracts the tree g rooted at root.
func ContractTree(g *graph.Graph, root int) (*Contraction, error) {
	r, err := RootAt(g, root)
	if err != nil {
		return nil, err
	}
	n := g.N()
	c := &Contraction{Acc: make([]float64, n)}
	if n <= 1 {
		return c, nil
	}
	parent := append([]int(nil), r.Parent...)
	pweight := append([]float64(nil), r.PWeight...)
	// origWeight[v]: total ORIGINAL weight carried by the contracted edge
	// (v, parent); starts as the edge's own weight and grows as chains
	// compress through it. This lets Acc account exact original totals even
	// though compressed edges carry series weights.
	origWeight := append([]float64(nil), r.PWeight...)
	children := r.Children()
	childCount := make([]int, n)
	for v := 0; v < n; v++ {
		childCount[v] = len(children[v])
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n
	// uniqueAliveChild scans v's (lazily maintained) child list.
	uniqueAliveChild := func(v int) int {
		lst := children[v]
		for i := 0; i < len(lst); {
			u := lst[i]
			if !alive[u] || parent[u] != v {
				lst[i] = lst[len(lst)-1]
				lst = lst[:len(lst)-1]
				continue
			}
			i++
		}
		children[v] = lst
		if len(lst) == 1 {
			return lst[0]
		}
		return -1
	}
	for round := 1; aliveCount > 1; round++ {
		c.Rounds = round
		if round > 8*bitLen(n)+32 {
			return nil, fmt.Errorf("treealg: contraction failed to converge (round %d, %d alive)", round, aliveCount)
		}
		// Rake all leaves.
		var raked []int
		for v := 0; v < n; v++ {
			if alive[v] && v != root && childCount[v] == 0 {
				raked = append(raked, v)
			}
		}
		for _, v := range raked {
			p := parent[v]
			c.Acc[p] += c.Acc[v] + origWeight[v]
			alive[v] = false
			childCount[p]--
			aliveCount--
		}
		if aliveCount <= 1 {
			c.RoundSizes = append(c.RoundSizes, aliveCount)
			break
		}
		// Compress an independent set of chain vertices: v compresses iff
		// it is a chain vertex with coin H whose parent is either not a
		// chain vertex or has coin T (randomized mating, derandomized by a
		// per-round hash).
		isChain := make([]bool, n)
		for v := 0; v < n; v++ {
			if alive[v] && v != root && childCount[v] == 1 {
				isChain[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if !isChain[v] || !coin(v, round) {
				continue
			}
			p := parent[v]
			if isChain[p] && coin(p, round) {
				continue
			}
			u := uniqueAliveChild(v)
			if u < 0 {
				continue
			}
			w1, w2 := pweight[v], pweight[u]
			parent[u] = p
			pweight[u] = w1 * w2 / (w1 + w2)
			origWeight[u] += origWeight[v]
			c.Acc[p] += c.Acc[v]
			children[p] = append(children[p], u)
			alive[v] = false
			aliveCount--
			// p's child count is unchanged: v left, u arrived.
		}
		c.RoundSizes = append(c.RoundSizes, aliveCount)
	}
	return c, nil
}

// coin is a deterministic pseudo-random bit per (vertex, round).
func coin(v, round int) bool {
	x := uint64(v)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x&1 == 1
}

func bitLen(n int) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}
