package treealg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hcd/internal/dense"
	"hcd/internal/graph"
)

func pathTree(n int) *graph.Graph {
	es := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		es = append(es, graph.Edge{U: i, V: i + 1, W: 1})
	}
	return graph.MustFromEdges(n, es)
}

func starTree(n int) *graph.Graph {
	es := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		es = append(es, graph.Edge{U: 0, V: i, W: 1})
	}
	return graph.MustFromEdges(n, es)
}

func TestRootAtBasics(t *testing.T) {
	g := pathTree(5)
	r, err := RootAt(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Parent[2] != -1 || len(r.Roots) != 1 || r.Roots[0] != 2 {
		t.Errorf("root wrong: parents=%v roots=%v", r.Parent, r.Roots)
	}
	if r.Desc[2] != 5 {
		t.Errorf("Desc[root] = %d, want 5", r.Desc[2])
	}
	if r.Desc[0] != 1 || r.Desc[1] != 2 || r.Desc[3] != 2 || r.Desc[4] != 1 {
		t.Errorf("Desc = %v", r.Desc)
	}
	if r.Parent[1] != 2 || r.Parent[0] != 1 {
		t.Errorf("parents = %v", r.Parent)
	}
}

func TestRootAtRejectsNonTree(t *testing.T) {
	cyc := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}})
	if _, err := RootAt(cyc, 0); err == nil {
		t.Error("cycle accepted as tree")
	}
	forest := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := RootAt(forest, 0); err == nil {
		t.Error("forest accepted as single tree")
	}
}

func TestRootForest(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 3, V: 4, W: 2}, {U: 4, V: 5, W: 2}})
	r, err := RootForest(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Roots) != 3 { // components {0,1}, {2}, {3,4,5}
		t.Fatalf("roots = %v", r.Roots)
	}
	if r.Desc[r.Roots[2]] != 3 && r.Desc[r.Roots[1]] != 3 {
		// Roots are in discovery order: 0, 2, 3.
		t.Errorf("Desc = %v roots = %v", r.Desc, r.Roots)
	}
	if len(r.Order) != 6 {
		t.Errorf("order covers %d vertices", len(r.Order))
	}
}

func TestChildrenAndLeaves(t *testing.T) {
	g := starTree(4)
	r, _ := RootAt(g, 0)
	ch := r.Children()
	if len(ch[0]) != 3 {
		t.Errorf("children of root = %v", ch[0])
	}
	if r.IsLeaf(0) || !r.IsLeaf(1) {
		t.Error("leaf classification wrong")
	}
	// Rooting at a leaf: vertex 0 (center) gets 2 children.
	r2, _ := RootAt(g, 1)
	if r2.IsLeaf(1) {
		t.Error("root with a child misclassified as leaf")
	}
	if len(r2.Children()[0]) != 2 {
		t.Errorf("center children after re-rooting = %v", r2.Children()[0])
	}
}

func TestCritical3Path(t *testing.T) {
	// Path rooted at one end: desc along path is n, n−1, ..., 1.
	// v (desc d, child desc d−1) is critical iff ⌈d/3⌉ > ⌈(d−1)/3⌉, i.e.
	// d ≡ 1 (mod 3), and v is not a leaf.
	n := 10
	r, _ := RootAt(pathTree(n), 0)
	crit := r.Critical3()
	for v := 0; v < n; v++ {
		d := n - v
		want := d%3 == 1 && v != n-1
		if crit[v] != want {
			t.Errorf("vertex %d (desc %d): critical=%v want %v", v, d, crit[v], want)
		}
	}
}

func TestCritical3CountBound(t *testing.T) {
	// The paper uses: #critical ≤ 2n/3 (loose); sanity check on random trees.
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 30; it++ {
		n := 2 + rng.Intn(200)
		g := RandomTree(rng, n, nil)
		r, err := RootAt(g, rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		crit := r.Critical3()
		count := 0
		for _, c := range crit {
			if c {
				count++
			}
		}
		if count > 2*n/3+1 {
			t.Errorf("n=%d: %d critical vertices", n, count)
		}
		// Leaves are never critical.
		for v := 0; v < n; v++ {
			if r.IsLeaf(v) && crit[v] {
				t.Errorf("leaf %d marked critical", v)
			}
		}
	}
}

func TestNonCriticalSubtreesAreSmall(t *testing.T) {
	// Key structural fact behind Theorem 2.1: any maximal subtree containing
	// no 3-critical vertex has at most 3 vertices.
	rng := rand.New(rand.NewSource(2))
	for it := 0; it < 40; it++ {
		n := 2 + rng.Intn(300)
		g := RandomTree(rng, n, nil)
		r, _ := RootAt(g, rng.Intn(n))
		crit := r.Critical3()
		// size of the non-critical subtree hanging at v (0 if v critical).
		size := make([]int, n)
		for i := len(r.Order) - 1; i >= 0; i-- {
			v := r.Order[i]
			if crit[v] {
				continue
			}
			size[v] = 1
			nbr, _ := r.G.Neighbors(v)
			for _, u := range nbr {
				if r.Parent[u] == v && !crit[u] {
					size[v] += size[u]
				}
			}
			if size[v] > 3 {
				t.Fatalf("n=%d: non-critical subtree at %d has %d vertices", n, v, size[v])
			}
		}
	}
}

func TestDescParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for it := 0; it < 25; it++ {
		n := 1 + rng.Intn(400)
		g := RandomTree(rng, n, nil)
		root := rng.Intn(n)
		r, err := RootAt(g, root)
		if err != nil {
			if n == 1 {
				continue
			}
			t.Fatal(err)
		}
		pd := r.DescParallel()
		for v := 0; v < n; v++ {
			if pd[v] != r.Desc[v] {
				t.Fatalf("n=%d root=%d vertex %d: parallel %d vs %d", n, root, v, pd[v], r.Desc[v])
			}
		}
	}
}

func TestEulerTourIsSingleChain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomTree(rng, 50, nil)
	tour := NewEulerTour(g, 7)
	seen := make([]bool, tour.ArcCount())
	count := 0
	for a := tour.Start; a != -1; a = tour.Next[a] {
		if seen[a] {
			t.Fatal("tour revisits an arc")
		}
		seen[a] = true
		count++
	}
	if count != tour.ArcCount() {
		t.Fatalf("tour visits %d of %d arcs", count, tour.ArcCount())
	}
	// Consecutive arcs must be head-to-tail.
	for a := tour.Start; tour.Next[a] != -1; a = tour.Next[a] {
		if tour.Head[a] != tour.Tail[tour.Next[a]] {
			t.Fatal("tour arcs not contiguous")
		}
	}
}

func TestListRank(t *testing.T) {
	// List 3 → 0 → 2 → 1 (indices), i.e. next[3]=0, next[0]=2, next[2]=1.
	next := []int{2, -1, 1, 0}
	pos := ListRank(next)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if pos[i] != want[i] {
			t.Errorf("pos[%d] = %d, want %d", i, pos[i], want[i])
		}
	}
}

func TestTreeSolverAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for it := 0; it < 20; it++ {
		n := 2 + rng.Intn(40)
		g := RandomTree(rng, n, func() float64 { return 0.1 + rng.Float64()*10 })
		r, _ := RootAt(g, rng.Intn(n))
		s := NewSolver(r)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		mean := 0.0
		for _, v := range b {
			mean += v
		}
		for i := range b {
			b[i] -= mean / float64(n)
		}
		x := make([]float64, n)
		s.Solve(x, b)
		// Residual check against the Laplacian operator.
		ax := make([]float64, n)
		g.LapMul(ax, x)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("n=%d: residual[%d] = %v", n, i, ax[i]-b[i])
			}
		}
		// Compare with the dense pseudo-inverse path.
		lap := dense.FromRowMajor(n, n, g.LapDense())
		comp := make([]int, n)
		p, err := dense.NewPinnedLaplacian(lap, comp, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		p.Solve(want, b)
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-7 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestTreeSolverForest(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 2, V: 3, W: 1}, {U: 3, V: 4, W: 1}})
	r, _ := RootForest(g)
	s := NewSolver(r)
	b := []float64{1, -1, 2, 0, -2}
	x := make([]float64, 5)
	s.Solve(x, b)
	ax := make([]float64, 5)
	g.LapMul(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-10 {
			t.Fatalf("residual[%d] = %v", i, ax[i]-b[i])
		}
	}
	// Zero mean per component.
	if math.Abs(x[0]+x[1]) > 1e-10 || math.Abs(x[2]+x[3]+x[4]) > 1e-10 {
		t.Errorf("component means nonzero: %v", x)
	}
}

func TestTreeSolverAliased(t *testing.T) {
	g := pathTree(6)
	r, _ := RootAt(g, 0)
	s := NewSolver(r)
	b := []float64{1, 2, -3, 3, -2, -1}
	bCopy := append([]float64(nil), b...)
	s.Solve(b, b)
	ax := make([]float64, 6)
	g.LapMul(ax, b)
	for i := range ax {
		if math.Abs(ax[i]-bCopy[i]) > 1e-10 {
			t.Fatalf("aliased solve residual[%d] = %v", i, ax[i]-bCopy[i])
		}
	}
}

func TestPruferRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(uint(r.Int63())%60)
		seq := make([]int, n-2)
		for i := range seq {
			seq[i] = r.Intn(n)
		}
		edges, err := PruferDecode(n, seq)
		if err != nil {
			return false
		}
		g := graph.MustFromEdges(n, edges)
		if !g.IsTree() {
			return false
		}
		seq2, err := PruferEncode(g)
		if err != nil {
			return false
		}
		if len(seq2) != len(seq) {
			return false
		}
		for i := range seq {
			if seq[i] != seq2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPruferErrors(t *testing.T) {
	if _, err := PruferDecode(5, []int{0, 1}); err == nil {
		t.Error("wrong-length sequence accepted")
	}
	if _, err := PruferDecode(4, []int{0, 9}); err == nil {
		t.Error("out-of-range entry accepted")
	}
	if es, err := PruferDecode(1, nil); err != nil || es != nil {
		t.Error("n=1 should decode to empty tree")
	}
	if _, err := PruferEncode(graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}})); err == nil {
		t.Error("non-tree accepted by encode")
	}
}

func TestRandomTreeDistributionSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomTree(rng, 1000, func() float64 { return 2.5 })
	if !g.IsTree() {
		t.Fatal("RandomTree did not return a tree")
	}
	if w, _ := g.Weight(g.Edges()[0].U, g.Edges()[0].V); w != 2.5 {
		t.Error("weightFn ignored")
	}
	if RandomTree(rng, 0, nil).N() != 0 || RandomTree(rng, 1, nil).N() != 1 {
		t.Error("tiny trees mishandled")
	}
}

func BenchmarkTreeSolver100k(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := RandomTree(rng, 100000, func() float64 { return 0.1 + rng.Float64() })
	r, _ := RootAt(g, 0)
	s := NewSolver(r)
	rhs := make([]float64, g.N())
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(x, rhs)
	}
}

func BenchmarkDescParallel100k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := RandomTree(rng, 100000, nil)
	r, _ := RootAt(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.DescParallel()
	}
}
