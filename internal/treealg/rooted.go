// Package treealg provides the tree machinery behind Theorem 2.1: rooted
// trees and forests, subtree sizes (with both a sequential pass and a
// pointer-jumping parallel path in the spirit of parallel tree contraction),
// 3-critical vertices, an exact linear-time tree Laplacian solver, and
// Prüfer-sequence random trees for the test workloads.
package treealg

import (
	"fmt"

	"hcd/internal/graph"
	"hcd/internal/par"
)

// Rooted is a rooted forest view of an acyclic graph. Parents appear before
// children in Order, so a forward scan of Order is a topological pass from
// the roots and a backward scan visits leaves first.
type Rooted struct {
	G       *graph.Graph
	Roots   []int     // one root per component
	Parent  []int     // parent vertex id, −1 for roots
	PWeight []float64 // weight of the edge to the parent, 0 for roots
	Order   []int     // preorder over all components
	Desc    []int     // number of vertices in the subtree of v, including v
}

// RootAt roots the tree g at root. It returns an error if g is not a tree.
func RootAt(g *graph.Graph, root int) (*Rooted, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("treealg: graph is not a tree (n=%d, m=%d)", g.N(), g.M())
	}
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("treealg: root %d out of range", root)
	}
	r := newRooted(g)
	r.rootComponent(root)
	r.computeDesc()
	return r, nil
}

// RootForest roots every component of the acyclic graph g at its
// lowest-numbered vertex. It returns an error if g has a cycle.
func RootForest(g *graph.Graph) (*Rooted, error) {
	if !g.IsForest() {
		return nil, fmt.Errorf("treealg: graph has a cycle")
	}
	r := newRooted(g)
	seen := make([]bool, g.N())
	for v := range seen {
		// rootComponent marks everything it reaches via Parent ≥ −1 state;
		// track via Order membership instead.
		_ = v
	}
	visited := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if !visited[v] {
			start := len(r.Order)
			r.rootComponent(v)
			for _, u := range r.Order[start:] {
				visited[u] = true
			}
		}
	}
	r.computeDesc()
	return r, nil
}

func newRooted(g *graph.Graph) *Rooted {
	n := g.N()
	r := &Rooted{
		G:       g,
		Parent:  make([]int, n),
		PWeight: make([]float64, n),
		Order:   make([]int, 0, n),
		Desc:    make([]int, n),
	}
	for i := range r.Parent {
		r.Parent[i] = -2 // unvisited
	}
	return r
}

// rootComponent runs an iterative DFS preorder from root.
func (r *Rooted) rootComponent(root int) {
	r.Roots = append(r.Roots, root)
	r.Parent[root] = -1
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r.Order = append(r.Order, v)
		nbr, w := r.G.Neighbors(v)
		for i, u := range nbr {
			if r.Parent[u] == -2 {
				r.Parent[u] = v
				r.PWeight[u] = w[i]
				stack = append(stack, u)
			}
		}
	}
}

// computeDesc fills Desc with subtree sizes by a reverse pass over Order.
func (r *Rooted) computeDesc() {
	for i := range r.Desc {
		r.Desc[i] = 1
	}
	for i := len(r.Order) - 1; i >= 0; i-- {
		v := r.Order[i]
		if p := r.Parent[v]; p >= 0 {
			r.Desc[p] += r.Desc[v]
		}
	}
}

// Children returns the children lists of all vertices.
func (r *Rooted) Children() [][]int {
	ch := make([][]int, r.G.N())
	for _, v := range r.Order {
		if p := r.Parent[v]; p >= 0 {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// IsLeaf reports whether v has no children (degree-1 non-root, or an
// isolated root).
func (r *Rooted) IsLeaf(v int) bool {
	d := r.G.Degree(v)
	if r.Parent[v] >= 0 {
		return d == 1
	}
	return d == 0
}

// Critical3 returns the set of 3-critical vertices of the rooted forest: v is
// 3-critical iff it is not a leaf and ⌈desc(v)/3⌉ > ⌈desc(w)/3⌉ for every
// child w (Reid-Miller, Miller & Modugno; paper Section 2).
func (r *Rooted) Critical3() []bool {
	n := r.G.N()
	crit := make([]bool, n)
	maxChild := make([]int, n) // max ⌈desc(child)/3⌉ per vertex
	for _, v := range r.Order {
		if p := r.Parent[v]; p >= 0 {
			if c := ceilDiv3(r.Desc[v]); c > maxChild[p] {
				maxChild[p] = c
			}
		}
	}
	par.For(n, 4096, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if !r.IsLeaf(v) && ceilDiv3(r.Desc[v]) > maxChild[v] {
				crit[v] = true
			}
		}
	})
	return crit
}

func ceilDiv3(x int) int { return (x + 2) / 3 }

// DescParallel recomputes subtree sizes with the Euler-tour +
// pointer-jumping list-ranking scheme of parallel tree contraction
// (Reid-Miller, Miller & Modugno), the machinery Theorem 2.1 cites for its
// O(log n)-time bound. It works on a single rooted tree and must agree with
// Desc; it exists to demonstrate and test the parallel path.
func (r *Rooted) DescParallel() []int {
	n := r.G.N()
	desc := make([]int, n)
	if n == 0 {
		return desc
	}
	if len(r.Roots) != 1 {
		panic("treealg: DescParallel requires a single tree")
	}
	root := r.Roots[0]
	if n == 1 {
		desc[root] = 1
		return desc
	}
	tour := NewEulerTour(r.G, root)
	rank := ListRank(tour.Next)
	// The down arc of v is the unique arc parent(v) → v.
	downArc := make([]int, n)
	par.For(tour.ArcCount(), 8192, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			h := tour.Head[a]
			if r.Parent[h] == tour.Tail[a] {
				downArc[h] = a
			}
		}
	})
	par.For(n, 4096, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v == root {
				desc[v] = n
				continue
			}
			down := downArc[v]
			up := tour.Twin[down]
			desc[v] = (rank[up] - rank[down] + 1) / 2
		}
	})
	return desc
}
