package treealg

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/graph"
)

func totalWeight(g *graph.Graph) float64 {
	t := 0.0
	for _, e := range g.Edges() {
		t += e.W
	}
	return t
}

func TestContractTreeAccumulatesTotalWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 30; it++ {
		n := 1 + rng.Intn(300)
		g := RandomTree(rng, n, func() float64 { return 0.1 + rng.Float64()*5 })
		root := rng.Intn(n)
		c, err := ContractTree(g, root)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c.Acc[root]-totalWeight(g)) > 1e-9 {
			t.Fatalf("n=%d: Acc[root] = %v, want %v", n, c.Acc[root], totalWeight(g))
		}
	}
}

func TestContractTreeLogRoundsOnPaths(t *testing.T) {
	// Paths are the pure-compress worst case; rounds must stay O(log n).
	for _, n := range []int{10, 100, 1000, 10000} {
		es := make([]graph.Edge, 0, n-1)
		for i := 0; i < n-1; i++ {
			es = append(es, graph.Edge{U: i, V: i + 1, W: 1 + float64(i%7)})
		}
		g := graph.MustFromEdges(n, es)
		c, err := ContractTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		logN := math.Log2(float64(n))
		if float64(c.Rounds) > 8*logN+16 {
			t.Errorf("n=%d: %d rounds (> 8·log n + 16)", n, c.Rounds)
		}
		if math.Abs(c.Acc[0]-totalWeight(g)) > 1e-9 {
			t.Errorf("n=%d: wrong total", n)
		}
	}
}

func TestContractTreeLogRoundsOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{100, 1000, 20000} {
		g := RandomTree(rng, n, nil)
		c, err := ContractTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if float64(c.Rounds) > 8*math.Log2(float64(n))+16 {
			t.Errorf("n=%d: %d rounds", n, c.Rounds)
		}
	}
}

func TestContractTreeRoundSizesDecrease(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomTree(rng, 500, nil)
	c, err := ContractTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := g.N()
	for i, s := range c.RoundSizes {
		if s >= prev {
			t.Fatalf("round %d did not shrink: %d -> %d", i, prev, s)
		}
		prev = s
	}
	if prev != 1 {
		t.Errorf("contraction ended with %d alive vertices", prev)
	}
}

func TestContractTreeTrivial(t *testing.T) {
	single := graph.MustFromEdges(1, nil)
	c, err := ContractTree(single, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds != 0 {
		t.Errorf("singleton took %d rounds", c.Rounds)
	}
	edge := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 4}})
	c, err = ContractTree(edge, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Acc[1]-4) > 1e-12 {
		t.Errorf("edge Acc = %v", c.Acc[1])
	}
}

func TestContractTreeRejectsNonTree(t *testing.T) {
	cyc := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}})
	if _, err := ContractTree(cyc, 0); err == nil {
		t.Error("cycle accepted")
	}
}

func TestContractStarAndCaterpillar(t *testing.T) {
	// Star: one rake round finishes everything.
	var es []graph.Edge
	for i := 1; i < 50; i++ {
		es = append(es, graph.Edge{U: 0, V: i, W: 2})
	}
	star := graph.MustFromEdges(50, es)
	c, err := ContractTree(star, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds != 1 {
		t.Errorf("star took %d rounds, want 1", c.Rounds)
	}
	if math.Abs(c.Acc[0]-98) > 1e-12 {
		t.Errorf("star total = %v", c.Acc[0])
	}
}

func BenchmarkContractTree100k(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := RandomTree(rng, 100000, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ContractTree(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}
