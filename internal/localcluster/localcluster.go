// Package localcluster implements truncated-random-walk local clustering in
// the style of Spielman–Teng's Nibble — the "local" approach the paper's
// introduction and Section 4 contrast with its global constructions: a
// particle started inside a high-conductance, weakly-attached cluster stays
// there, so a few steps of a pruned lazy walk followed by a sweep cut
// recover the cluster around a seed without touching the rest of the graph.
package localcluster

import (
	"fmt"
	"math"
	"sort"

	"hcd/internal/graph"
)

// Options controls the truncated walk.
type Options struct {
	// Steps of the lazy walk (t in the paper's Pᵗ·e_v discussion).
	Steps int
	// Epsilon prunes entries with p(v) < Epsilon·vol(v), keeping the walk's
	// support — and the work — local.
	Epsilon float64
	// MaxVolFraction caps the returned cluster's volume at this fraction of
	// the total (sweep cuts ignore larger prefixes).
	MaxVolFraction float64
}

// DefaultOptions: 30 lazy steps, pruning at 1e-7, clusters up to half the
// volume.
func DefaultOptions() Options {
	return Options{Steps: 30, Epsilon: 1e-7, MaxVolFraction: 0.5}
}

// Result is a locally-grown cluster.
type Result struct {
	Cluster     []int
	Conductance float64 // sparsity of the sweep cut that produced it
	Support     int     // vertices ever touched by the truncated walk
}

// Nibble grows a cluster around seed. It runs the ε-truncated lazy walk for
// the configured number of steps, then takes the best sweep cut of the
// volume-normalized distribution p(v)/vol(v).
func Nibble(g *graph.Graph, seed int, opt Options) (*Result, error) {
	n := g.N()
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("localcluster: seed %d out of range", seed)
	}
	if g.Vol(seed) == 0 {
		return nil, fmt.Errorf("localcluster: seed %d is isolated", seed)
	}
	if opt.Steps <= 0 {
		opt.Steps = DefaultOptions().Steps
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = DefaultOptions().Epsilon
	}
	if opt.MaxVolFraction <= 0 || opt.MaxVolFraction > 1 {
		opt.MaxVolFraction = DefaultOptions().MaxVolFraction
	}
	// Sparse distribution over touched vertices.
	p := map[int]float64{seed: 1}
	touched := map[int]bool{seed: true}
	next := make(map[int]float64, 16)
	for step := 0; step < opt.Steps; step++ {
		for k := range next {
			delete(next, k)
		}
		for v, pv := range p {
			// Lazy walk: hold half, spread half along edges ∝ weight.
			next[v] += pv / 2
			nbr, w := g.Neighbors(v)
			vol := g.Vol(v)
			for i, u := range nbr {
				next[u] += pv / 2 * w[i] / vol
			}
		}
		// Prune below ε·vol to keep support local (mass is discarded, as in
		// Nibble; the distribution becomes sub-stochastic).
		for k := range p {
			delete(p, k)
		}
		for v, pv := range next {
			if pv >= opt.Epsilon*g.Vol(v) {
				p[v] = pv
				touched[v] = true
			}
		}
		if len(p) == 0 {
			return nil, fmt.Errorf("localcluster: walk pruned to nothing (ε too large)")
		}
	}
	// Sweep over p(v)/vol(v).
	type scored struct {
		v     int
		score float64
	}
	order := make([]scored, 0, len(p))
	for v, pv := range p {
		order = append(order, scored{v: v, score: pv / g.Vol(v)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].v < order[j].v
	})
	totalVol := g.TotalVol()
	in := make(map[int]bool, len(order))
	cut, volS := 0.0, 0.0
	best, bestK := math.Inf(1), -1
	for k, s := range order {
		v := s.v
		nbr, w := g.Neighbors(v)
		for i, u := range nbr {
			if in[u] {
				cut -= w[i]
			} else {
				cut += w[i]
			}
		}
		in[v] = true
		volS += g.Vol(v)
		if volS > opt.MaxVolFraction*totalVol {
			break
		}
		den := math.Min(volS, totalVol-volS)
		if den > 0 {
			if sp := cut / den; sp < best {
				best, bestK = sp, k
			}
		}
	}
	if bestK < 0 {
		return nil, fmt.Errorf("localcluster: no non-trivial sweep cut found")
	}
	cluster := make([]int, 0, bestK+1)
	for k := 0; k <= bestK; k++ {
		cluster = append(cluster, order[k].v)
	}
	sort.Ints(cluster)
	return &Result{Cluster: cluster, Conductance: best, Support: len(touched)}, nil
}
