package localcluster

import (
	"sort"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/workload"
)

// planted builds k cliques of size s joined in a ring by light edges.
func planted(k, s int, win, wout float64) *graph.Graph {
	var es []graph.Edge
	id := func(b, i int) int { return b*s + i }
	for b := 0; b < k; b++ {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				es = append(es, graph.Edge{U: id(b, i), V: id(b, j), W: win})
			}
		}
		es = append(es, graph.Edge{U: id(b, 0), V: id((b+1)%k, 0), W: wout})
	}
	return graph.MustFromEdges(k*s, es)
}

func TestNibbleRecoversPlantedBlock(t *testing.T) {
	g := planted(5, 12, 1, 0.01)
	for _, seed := range []int{0, 13, 30, 59} {
		res, err := Nibble(g, seed, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		block := seed / 12
		want := make([]int, 12)
		for i := range want {
			want[i] = block*12 + i
		}
		if len(res.Cluster) != 12 {
			t.Fatalf("seed %d: cluster size %d, want 12 (%v)", seed, len(res.Cluster), res.Cluster)
		}
		for i, v := range res.Cluster {
			if v != want[i] {
				t.Fatalf("seed %d: cluster %v, want the seed's block", seed, res.Cluster)
			}
		}
		if res.Conductance > 0.01 {
			t.Errorf("seed %d: conductance %v suspiciously high", seed, res.Conductance)
		}
	}
}

func TestNibbleStaysLocal(t *testing.T) {
	// On a large graph with a well-separated block, the truncated walk must
	// touch far fewer vertices than n.
	g := planted(40, 10, 1, 0.001)
	res, err := Nibble(g, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Support > g.N()/2 {
		t.Errorf("walk touched %d of %d vertices — not local", res.Support, g.N())
	}
}

func TestNibbleSweepSparsityMatchesGraph(t *testing.T) {
	// The reported conductance must equal the sparsity of the returned cut.
	g := workload.Grid2D(10, 10, workload.Lognormal(1), 3)
	res, err := Nibble(g, 42, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := g.CutSparsity(res.Cluster)
	if diff := got - res.Conductance; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("reported %v vs recomputed %v", res.Conductance, got)
	}
}

func TestNibbleValidation(t *testing.T) {
	g := workload.Grid2D(4, 4, nil, 1)
	if _, err := Nibble(g, -1, DefaultOptions()); err == nil {
		t.Error("bad seed accepted")
	}
	iso := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := Nibble(iso, 2, DefaultOptions()); err == nil {
		t.Error("isolated seed accepted")
	}
	opt := DefaultOptions()
	opt.Epsilon = 10 // prunes everything after the first spread
	if _, err := Nibble(g, 0, opt); err == nil {
		t.Error("over-pruning not reported")
	}
}

func TestNibbleClusterIsSorted(t *testing.T) {
	g := workload.Grid2D(8, 8, workload.Lognormal(1), 5)
	res, err := Nibble(g, 20, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(res.Cluster) {
		t.Error("cluster ids not sorted")
	}
}

func BenchmarkNibble(b *testing.B) {
	g := planted(50, 20, 1, 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Nibble(g, 7, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
