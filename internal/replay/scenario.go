// Package replay is the scenario-level observability harness: it generates
// deterministic request traces from seedable scenario descriptions, replays
// them against the serve stack (in-process or over HTTP), and scores the run
// against SLOs with a weighted multi-objective fitness function.
//
// The report splits into two sections with different determinism contracts.
// The Deterministic section — outcomes, iteration counts, cache hits — is
// derived only from solver observables that are bit-identical at any
// GOMAXPROCS (the library's reproducibility invariant), and the fitness
// Score is computed from it alone, so a committed score is comparable across
// machines and runs. The Measured section — wall-clock latency quantiles,
// throughput, peak RSS — varies run to run and is reported for humans and
// trend dashboards, never for bit-exact comparison.
package replay

import (
	"fmt"
	"sort"
)

// GraphSpec names one graph a scenario solves against: a cli.BuildGraph spec
// plus the hierarchy-build knobs the submit endpoint accepts.
type GraphSpec struct {
	// Spec is the generator grammar string (grid3d:12, road:24, femesh:16...).
	Spec string `json:"spec"`
	// Seed controls the generator (default 1).
	Seed int64 `json:"seed,omitempty"`
	// SizeCap overrides the hierarchy cluster size cap (0 = server default).
	SizeCap int `json:"sizecap,omitempty"`
	// Shards forces the shard count (1 = single-pass; 0 = server default).
	Shards int `json:"shards,omitempty"`
}

// MixEntry is one request shape in the solve mix; requests are drawn from
// the mix with probability proportional to Weight.
type MixEntry struct {
	// Graph indexes Scenario.Graphs.
	Graph int `json:"graph"`
	// Weight is the relative draw frequency (default 1).
	Weight float64 `json:"weight,omitempty"`
	// RHS is the right-hand-side count per request (default 1).
	RHS int `json:"rhs,omitempty"`
	// Tol and MaxIter override the solver defaults when non-zero.
	Tol     float64 `json:"tol,omitempty"`
	MaxIter int     `json:"max_iter,omitempty"`
	// Method selects the solve path: "" or "pcg", "chebyshev", "resilient".
	Method string `json:"method,omitempty"`
}

// SLOSpec is the scenario's service-level objectives. A zero limit disables
// that check; rates are fractions in [0, 1]. MaxP99MS judges the Measured
// section and is therefore advisory — it can flap with machine load — while
// the other three judge the Deterministic section.
type SLOSpec struct {
	MinScore        float64 `json:"min_score,omitempty"`
	MaxErrorRate    float64 `json:"max_error_rate,omitempty"`
	MaxDegradedRate float64 `json:"max_degraded_rate,omitempty"`
	MaxP99MS        float64 `json:"max_p99_ms,omitempty"`
}

// FitnessWeights weight the fitness terms. A scenario that leaves
// Scenario.Weights nil gets DefaultWeights; an explicit weights block is
// used as-is, with a zero weight simply ignoring that term.
type FitnessWeights struct {
	// Success rewards converged requests.
	Success float64 `json:"success"`
	// Tail rewards a low 99th-percentile iteration count (tail work proxy).
	Tail float64 `json:"tail"`
	// Efficiency rewards a low mean iteration count.
	Efficiency float64 `json:"efficiency"`
	// ErrorPenalty and DegradedPenalty subtract score per unit rate.
	ErrorPenalty    float64 `json:"error_penalty"`
	DegradedPenalty float64 `json:"degraded_penalty"`
}

// DefaultWeights is the standard fitness weighting: success dominates, tail
// behaviour matters half as much, raw efficiency a quarter; errors cost
// twice what degraded service costs.
func DefaultWeights() FitnessWeights {
	return FitnessWeights{Success: 1, Tail: 0.5, Efficiency: 0.25, ErrorPenalty: 2, DegradedPenalty: 1}
}

// Arrival disciplines.
const (
	// ArrivalClosed replays with a fixed worker pool: each worker issues its
	// next request as soon as the previous answer lands (throughput-bound).
	ArrivalClosed = "closed"
	// ArrivalOpen replays a Poisson arrival process at Scenario.Rate
	// requests/second regardless of completions (latency-under-load-bound).
	ArrivalOpen = "open"
)

// Scenario describes one replayable workload: which graphs, what solve mix,
// how the requests arrive, and how the run is judged. Scenarios marshal to
// JSON, so they live in files next to the traces they generate.
type Scenario struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Requests int    `json:"requests"`
	// Workers is the closed-loop concurrency (and the open-loop in-flight
	// cap). Default 4.
	Workers int    `json:"workers,omitempty"`
	Arrival string `json:"arrival,omitempty"` // closed (default) | open
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64 `json:"rate,omitempty"`
	// Tenants spreads requests over this many synthetic tenants (default 1).
	Tenants int             `json:"tenants,omitempty"`
	Graphs  []GraphSpec     `json:"graphs"`
	Mix     []MixEntry      `json:"mix"`
	SLO     SLOSpec         `json:"slo,omitempty"`
	Weights *FitnessWeights `json:"weights,omitempty"` // nil = DefaultWeights
}

// withDefaults normalizes the tunables the generator and engine read.
func (sc Scenario) withDefaults() Scenario {
	if sc.Workers <= 0 {
		sc.Workers = 4
	}
	if sc.Arrival == "" {
		sc.Arrival = ArrivalClosed
	}
	if sc.Tenants <= 0 {
		sc.Tenants = 1
	}
	return sc
}

// Validate rejects scenarios the generator cannot materialize.
func (sc Scenario) Validate() error {
	if sc.Requests <= 0 {
		return fmt.Errorf("replay: scenario %q: requests must be positive", sc.Name)
	}
	if len(sc.Graphs) == 0 {
		return fmt.Errorf("replay: scenario %q: no graphs", sc.Name)
	}
	if len(sc.Mix) == 0 {
		return fmt.Errorf("replay: scenario %q: empty solve mix", sc.Name)
	}
	for i, m := range sc.Mix {
		if m.Graph < 0 || m.Graph >= len(sc.Graphs) {
			return fmt.Errorf("replay: scenario %q: mix[%d] references graph %d of %d", sc.Name, i, m.Graph, len(sc.Graphs))
		}
		if m.Weight < 0 {
			return fmt.Errorf("replay: scenario %q: mix[%d] has negative weight", sc.Name, i)
		}
		switch m.Method {
		case "", "pcg", "chebyshev", "resilient":
		default:
			return fmt.Errorf("replay: scenario %q: mix[%d] has unknown method %q", sc.Name, i, m.Method)
		}
	}
	switch sc.Arrival {
	case "", ArrivalClosed:
	case ArrivalOpen:
		if sc.Rate <= 0 {
			return fmt.Errorf("replay: scenario %q: open arrivals need rate > 0", sc.Name)
		}
	default:
		return fmt.Errorf("replay: scenario %q: unknown arrival %q", sc.Name, sc.Arrival)
	}
	return nil
}

// builtins are the named scenarios cmd/hcd-replay ships: a seconds-scale
// smoke, and the committed benchmark mix over the three structured workload
// families (grid, road network, FE mesh).
var builtins = map[string]Scenario{
	"smoke": {
		Name:     "smoke",
		Seed:     1,
		Requests: 16,
		Workers:  4,
		Graphs:   []GraphSpec{{Spec: "grid2d:8"}},
		Mix:      []MixEntry{{Graph: 0, Weight: 1, RHS: 1}},
		SLO:      SLOSpec{MinScore: 40, MaxErrorRate: 0.01},
	},
	"steady": {
		Name:     "steady",
		Seed:     7,
		Requests: 48,
		Workers:  8,
		Tenants:  3,
		Graphs: []GraphSpec{
			{Spec: "grid3d:10"},
			{Spec: "road:24"},
			{Spec: "femesh:20"},
		},
		// The committed mix stays on the PCG path: its iteration counts are
		// bit-identical at any GOMAXPROCS, which is what lets the score gate
		// with no noise margin. (Chebyshev's eigenvalue estimation is
		// worker-count sensitive, so it would leak wall-clock-shaped noise
		// into the Deterministic section.)
		Mix: []MixEntry{
			{Graph: 0, Weight: 3, RHS: 1},
			{Graph: 0, Weight: 1, RHS: 4},
			{Graph: 1, Weight: 2, RHS: 1},
			{Graph: 2, Weight: 2, RHS: 2},
			{Graph: 2, Weight: 1, RHS: 1, Tol: 1e-6},
		},
		SLO: SLOSpec{MinScore: 40, MaxErrorRate: 0.01, MaxDegradedRate: 0.01},
	},
	"burst": {
		Name:     "burst",
		Seed:     11,
		Requests: 64,
		Workers:  16,
		Arrival:  ArrivalOpen,
		Rate:     400,
		Tenants:  4,
		Graphs: []GraphSpec{
			{Spec: "grid2d:16"},
			{Spec: "road:16"},
		},
		Mix: []MixEntry{
			{Graph: 0, Weight: 2, RHS: 1},
			{Graph: 1, Weight: 1, RHS: 2},
		},
		SLO: SLOSpec{MinScore: 40, MaxErrorRate: 0.01},
	},
}

// Builtin returns the named built-in scenario.
func Builtin(name string) (Scenario, error) {
	sc, ok := builtins[name]
	if !ok {
		return Scenario{}, fmt.Errorf("replay: unknown scenario %q (have %v)", name, BuiltinNames())
	}
	return sc, nil
}

// BuiltinNames lists the built-in scenarios, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
