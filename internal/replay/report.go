package replay

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hcd/internal/obs"
)

// Deterministic is the report section derived only from solver observables
// that are bit-identical across runs at any GOMAXPROCS: request outcomes,
// iteration counts, cache behaviour. The fitness Score is a pure function of
// this section, so committed scores diff cleanly.
type Deterministic struct {
	Outcomes        map[string]int `json:"outcomes"`
	Converged       int            `json:"converged"`
	Errors          int            `json:"errors"`
	Degraded        int            `json:"degraded"`
	Batched         int            `json:"batched"`
	CacheHits       int            `json:"cache_hits"`
	TotalIterations int64          `json:"total_iterations"`
	// Iteration-count quantiles over requests, computed exactly from the
	// sorted per-request totals (the deterministic tail-work proxy).
	IterP50 float64 `json:"iter_p50"`
	IterP95 float64 `json:"iter_p95"`
	IterP99 float64 `json:"iter_p99"`
}

// Measured is the wall-clock section: real latencies, throughput, and
// memory. It varies run to run and machine to machine — trend material, not
// diff material. Latency quantiles are estimated from obs histograms
// (fixed buckets, linear interpolation), the same estimator the serve
// metrics endpoint uses.
type Measured struct {
	WallClockMS    float64 `json:"wall_clock_ms"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	LatencyP50MS   float64 `json:"latency_p50_ms"`
	LatencyP95MS   float64 `json:"latency_p95_ms"`
	LatencyP99MS   float64 `json:"latency_p99_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes,omitempty"`
}

// Fitness is the score breakdown: each term in [0, 1] before weighting.
type Fitness struct {
	SuccessRate  float64        `json:"success_rate"`
	TailScore    float64        `json:"tail_score"`
	Efficiency   float64        `json:"efficiency"`
	ErrorRate    float64        `json:"error_rate"`
	DegradedRate float64        `json:"degraded_rate"`
	Weights      FitnessWeights `json:"weights"`
}

// SLOCheck is one evaluated objective. Measured marks checks judged against
// the Measured section (advisory: they can flap with machine load).
type SLOCheck struct {
	Name     string  `json:"name"`
	Limit    float64 `json:"limit"`
	Actual   float64 `json:"actual"`
	Pass     bool    `json:"pass"`
	Measured bool    `json:"measured,omitempty"`
}

// Report is the scored result of one replay run.
type Report struct {
	Scenario      string        `json:"scenario"`
	Seed          int64         `json:"seed"`
	Requests      int           `json:"requests"`
	Score         float64       `json:"score"`
	Fitness       Fitness       `json:"fitness"`
	Deterministic Deterministic `json:"deterministic"`
	Measured      Measured      `json:"measured"`
	SLO           []SLOCheck    `json:"slo,omitempty"`
}

// SLOPass reports whether every deterministic (non-advisory) objective
// passed. Measured checks are excluded: a regression gate keyed on
// wall-clock under CI noise would cry wolf.
func (r *Report) SLOPass() bool {
	for _, c := range r.SLO {
		if !c.Measured && !c.Pass {
			return false
		}
	}
	return true
}

// latencyBuckets spans request latencies from 50µs to ~80s, ~1.55× per
// bucket — fine enough that interpolated p99s are meaningful, coarse enough
// to stay a fixed small array.
func latencyBuckets() []float64 {
	b := make([]float64, 0, 32)
	for v := 0.05; v < 100_000; v *= 1.55 {
		b = append(b, v)
	}
	return b
}

// exactQuantile is the nearest-rank quantile of a sorted slice.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// buildReport aggregates samples (in trace order) into the scored report.
func buildReport(tr *Trace, samples []sample, wall time.Duration) *Report {
	sc := tr.Scenario
	det := Deterministic{Outcomes: map[string]int{}}
	iters := make([]float64, 0, len(samples))
	lat := obs.NewRegistry().Histogram("replay_latency_ms", latencyBuckets())
	qw := obs.NewRegistry().Histogram("replay_queue_wait_ms", latencyBuckets())
	for _, s := range samples {
		det.Outcomes[s.outcome]++
		if s.converged {
			det.Converged++
		}
		if s.code != 0 && (s.code < 200 || s.code >= 400) || s.err != nil {
			det.Errors++
		}
		if s.degraded {
			det.Degraded++
		}
		if s.batched {
			det.Batched++
		}
		if s.cacheHit {
			det.CacheHits++
		}
		det.TotalIterations += int64(s.iterations)
		iters = append(iters, float64(s.iterations))
		lat.Observe(float64(s.latency) / float64(time.Millisecond))
		qw.Observe(float64(s.queueWaitMS))
	}
	sort.Float64s(iters)
	det.IterP50 = exactQuantile(iters, 0.50)
	det.IterP95 = exactQuantile(iters, 0.95)
	det.IterP99 = exactQuantile(iters, 0.99)

	n := float64(len(samples))
	weights := DefaultWeights()
	if sc.Weights != nil {
		weights = *sc.Weights
	}
	fit := Fitness{
		SuccessRate:  float64(det.Converged) / n,
		TailScore:    1 / (1 + det.IterP99/100),
		Efficiency:   1 / (1 + float64(det.TotalIterations)/n/100),
		ErrorRate:    float64(det.Errors) / n,
		DegradedRate: float64(det.Degraded) / n,
		Weights:      weights,
	}
	score := scoreOf(fit)

	wallMS := float64(wall) / float64(time.Millisecond)
	meas := Measured{
		WallClockMS:    wallMS,
		LatencyP50MS:   lat.Quantile(0.50),
		LatencyP95MS:   lat.Quantile(0.95),
		LatencyP99MS:   lat.Quantile(0.99),
		QueueWaitP99MS: qw.Quantile(0.99),
		PeakRSSBytes:   obs.PeakRSS(),
	}
	if wallMS > 0 {
		meas.ThroughputRPS = n / (wallMS / 1000)
	}

	rep := &Report{
		Scenario:      sc.Name,
		Seed:          sc.Seed,
		Requests:      len(samples),
		Score:         score,
		Fitness:       fit,
		Deterministic: det,
		Measured:      meas,
	}
	rep.SLO = evalSLO(sc.SLO, rep)
	return rep
}

// scoreOf folds the fitness terms into the 0–100 composite: the weighted
// mean of the reward terms, minus weighted error/degradation penalties,
// clamped to [0, 100]. Every input is deterministic and the arithmetic is a
// fixed sequence of float64 operations, so equal runs score bit-identically.
func scoreOf(f Fitness) float64 {
	w := f.Weights
	rewardW := w.Success + w.Tail + w.Efficiency
	reward := 0.0
	if rewardW > 0 {
		reward = (w.Success*f.SuccessRate + w.Tail*f.TailScore + w.Efficiency*f.Efficiency) / rewardW
	}
	score := 100*reward - 100*(w.ErrorPenalty*f.ErrorRate+w.DegradedPenalty*f.DegradedRate)
	if score < 0 {
		score = 0
	}
	if score > 100 {
		score = 100
	}
	return score
}

// evalSLO materializes the scenario's objectives against the report.
func evalSLO(slo SLOSpec, rep *Report) []SLOCheck {
	var checks []SLOCheck
	if slo.MinScore > 0 {
		checks = append(checks, SLOCheck{
			Name: "min_score", Limit: slo.MinScore, Actual: rep.Score,
			Pass: rep.Score >= slo.MinScore,
		})
	}
	if slo.MaxErrorRate > 0 {
		checks = append(checks, SLOCheck{
			Name: "max_error_rate", Limit: slo.MaxErrorRate, Actual: rep.Fitness.ErrorRate,
			Pass: rep.Fitness.ErrorRate <= slo.MaxErrorRate,
		})
	}
	if slo.MaxDegradedRate > 0 {
		checks = append(checks, SLOCheck{
			Name: "max_degraded_rate", Limit: slo.MaxDegradedRate, Actual: rep.Fitness.DegradedRate,
			Pass: rep.Fitness.DegradedRate <= slo.MaxDegradedRate,
		})
	}
	if slo.MaxP99MS > 0 {
		checks = append(checks, SLOCheck{
			Name: "max_p99_ms", Limit: slo.MaxP99MS, Actual: rep.Measured.LatencyP99MS,
			Pass: rep.Measured.LatencyP99MS <= slo.MaxP99MS, Measured: true,
		})
	}
	return checks
}

// Summary renders the human one-screen view of a report.
func (r *Report) Summary() string {
	s := fmt.Sprintf("scenario %s (seed %d): %d requests, score %.4f\n",
		r.Scenario, r.Seed, r.Requests, r.Score)
	s += fmt.Sprintf("  deterministic: %d converged, %d errors, %d degraded, %d cache hits, %d iterations (p99 %.0f)\n",
		r.Deterministic.Converged, r.Deterministic.Errors, r.Deterministic.Degraded,
		r.Deterministic.CacheHits, r.Deterministic.TotalIterations, r.Deterministic.IterP99)
	s += fmt.Sprintf("  measured: %.0f ms wall, %.1f req/s, latency p50/p95/p99 %.2f/%.2f/%.2f ms\n",
		r.Measured.WallClockMS, r.Measured.ThroughputRPS,
		r.Measured.LatencyP50MS, r.Measured.LatencyP95MS, r.Measured.LatencyP99MS)
	for _, c := range r.SLO {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		note := ""
		if c.Measured {
			note = " (advisory)"
		}
		s += fmt.Sprintf("  slo %-18s %s: %.4f vs limit %.4f%s\n", c.Name, verdict, c.Actual, c.Limit, note)
	}
	return s
}
