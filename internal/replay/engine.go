package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"hcd/internal/serve"
)

// Options selects the replay target. The zero value replays in-process
// against a fresh serve.Server with effectively unlimited admission — the
// configuration under which every observable in the report's Deterministic
// section is reproducible bit-for-bit.
type Options struct {
	// Handler replays in-process against this handler (no network, no
	// listener) — the serve stack runs for real, only the transport is
	// elided.
	Handler http.Handler
	// BaseURL replays over HTTP against a live server (e.g.
	// "http://localhost:8080"); takes precedence over Handler.
	BaseURL string
	// Client is the HTTP client for BaseURL targets (default
	// http.DefaultClient).
	Client *http.Client
}

// target issues one request against whichever transport Options selected.
type target struct {
	h      http.Handler
	base   string
	client *http.Client
}

func newTarget(opt Options) target {
	t := target{h: opt.Handler, base: opt.BaseURL, client: opt.Client}
	if t.base != "" && t.client == nil {
		t.client = http.DefaultClient
	}
	if t.base == "" && t.h == nil {
		// Generous admission: the committed scenarios measure the solver and
		// cache behaviour, not timing-dependent throttling, which would make
		// outcomes (and so the score) racy.
		srv := serve.New(serve.Config{
			Admission: serve.AdmissionConfig{Rate: 1e12, Burst: 1e12},
		})
		t.h = srv.Handler()
	}
	return t
}

func (t target) do(ctx context.Context, method, path, tenant string, body []byte) (int, []byte, error) {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	if t.base != "" {
		req, err := http.NewRequestWithContext(ctx, method, t.base+path, rd)
		if err != nil {
			return 0, nil, err
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := t.client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, err = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), err
	}
	req := httptest.NewRequest(method, path, rd).WithContext(ctx)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes(), nil
}

// solveWire mirrors the fields of the serve layer's solve response the
// report consumes.
type solveWire struct {
	CacheHit    bool  `json:"cache_hit"`
	Degraded    bool  `json:"degraded"`
	QueueWaitMS int64 `json:"queue_wait_ms"`
	Batched     bool  `json:"batched"`
	BatchWidth  int   `json:"batch_width"`
	Results     []struct {
		Outcome    string `json:"outcome"`
		Converged  bool   `json:"converged"`
		Iterations int    `json:"iterations"`
	} `json:"results"`
}

// sample is one replayed request's record, stored at its trace index so
// aggregation order never depends on completion order.
type sample struct {
	code        int
	outcome     string
	converged   bool
	iterations  int
	degraded    bool
	batched     bool
	cacheHit    bool
	queueWaitMS int64
	latency     time.Duration
	err         error
}

// Run replays a trace against the target and scores the run. The engine
// first submits every scenario graph (?wait=true, so the hierarchy builds
// complete before the clock starts), then replays the requests under the
// scenario's arrival discipline, then aggregates the report in trace order.
func Run(ctx context.Context, tr *Trace, opt Options) (*Report, error) {
	sc := tr.Scenario.withDefaults()
	tgt := newTarget(opt)

	// Submit phase: one handle per scenario graph.
	handles := make([]string, len(sc.Graphs))
	for i, g := range sc.Graphs {
		path := fmt.Sprintf("/v1/graphs?spec=%s&wait=true", g.Spec)
		if g.Seed != 0 {
			path += fmt.Sprintf("&seed=%d", g.Seed)
		}
		if g.SizeCap != 0 {
			path += fmt.Sprintf("&sizecap=%d", g.SizeCap)
		}
		if g.Shards != 0 {
			path += fmt.Sprintf("&shards=%d", g.Shards)
		}
		code, body, err := tgt.do(ctx, http.MethodPost, path, "replay", nil)
		if err != nil {
			return nil, fmt.Errorf("replay: submit %s: %w", g.Spec, err)
		}
		if code != http.StatusCreated {
			return nil, fmt.Errorf("replay: submit %s: HTTP %d: %s", g.Spec, code, bytes.TrimSpace(body))
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
			return nil, fmt.Errorf("replay: submit %s: bad response %q", g.Spec, body)
		}
		handles[i] = sub.ID
	}

	samples := make([]sample, len(tr.Requests))
	start := time.Now()
	if sc.Arrival == ArrivalOpen {
		runOpen(ctx, tr, sc, tgt, handles, samples, start)
	} else {
		runClosed(ctx, tr, sc, tgt, handles, samples)
	}
	wall := time.Since(start)
	return buildReport(tr, samples, wall), nil
}

// runClosed replays with a fixed worker pool: sc.Workers goroutines each
// pull the next request index and issue it as soon as the previous answer
// returns.
func runClosed(ctx context.Context, tr *Trace, sc Scenario, tgt target, handles []string, samples []sample) {
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < sc.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				samples[i] = issue(ctx, tgt, handles, tr.Requests[i])
			}
		}()
	}
	for i := range tr.Requests {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// runOpen replays the Poisson arrival schedule: each request fires at its
// trace offset regardless of completions, with sc.Workers as an in-flight
// backstop so an overwhelmed target degrades the schedule instead of
// spawning unbounded goroutines.
func runOpen(ctx context.Context, tr *Trace, sc Scenario, tgt target, handles []string, samples []sample, start time.Time) {
	sem := make(chan struct{}, sc.Workers)
	var wg sync.WaitGroup
	for i := range tr.Requests {
		due := start.Add(time.Duration(tr.Requests[i].OffsetMS * float64(time.Millisecond)))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			samples[i] = issue(ctx, tgt, handles, tr.Requests[i])
		}(i)
	}
	wg.Wait()
}

// issue executes one trace request and records its sample.
func issue(ctx context.Context, tgt target, handles []string, rq Request) sample {
	body, _ := json.Marshal(map[string]any{
		"rhs":      rq.RHS,
		"seed":     rq.Seed,
		"tol":      rq.Tol,
		"max_iter": rq.MaxIter,
		"method":   rq.Method,
		"wait":     true,
	})
	path := "/v1/graphs/" + handles[rq.Graph] + "/solve"
	begin := time.Now()
	code, resp, err := tgt.do(ctx, http.MethodPost, path, rq.Tenant, body)
	s := sample{code: code, latency: time.Since(begin), err: err}
	if err != nil {
		s.outcome = "transport_error"
		return s
	}
	if code != http.StatusOK {
		s.outcome = outcomeForCode(code)
		return s
	}
	var sw solveWire
	if jerr := json.Unmarshal(resp, &sw); jerr != nil {
		s.outcome = "bad_response"
		s.err = jerr
		return s
	}
	s.degraded = sw.Degraded
	s.batched = sw.Batched
	s.cacheHit = sw.CacheHit
	s.queueWaitMS = sw.QueueWaitMS
	if len(sw.Results) == 0 {
		s.outcome = "empty_response"
		return s
	}
	s.converged = true
	s.outcome = "converged"
	for _, r := range sw.Results {
		s.iterations += r.Iterations
		if !r.Converged {
			s.converged = false
			s.outcome = r.Outcome
		}
	}
	return s
}

// outcomeForCode names the failure class of a non-200 answer, mirroring the
// serve layer's status mapping.
func outcomeForCode(code int) string {
	switch code {
	case http.StatusTooManyRequests:
		return "throttled"
	case http.StatusConflict:
		return "building"
	case http.StatusRequestTimeout, http.StatusGatewayTimeout:
		return "deadline"
	case http.StatusServiceUnavailable:
		return "draining"
	default:
		return fmt.Sprintf("http_%d", code)
	}
}
