package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// Request is one materialized trace entry: everything the engine needs to
// issue the solve, with no randomness left — two engines replaying the same
// trace issue byte-identical request bodies.
type Request struct {
	Index  int    `json:"index"`
	Tenant string `json:"tenant"`
	// Graph indexes Trace.Scenario.Graphs (the engine maps it to the handle
	// it got back from submit).
	Graph   int     `json:"graph"`
	RHS     int     `json:"rhs"`
	Tol     float64 `json:"tol,omitempty"`
	MaxIter int     `json:"max_iter,omitempty"`
	Method  string  `json:"method,omitempty"`
	// Seed generates the server-side mean-free right-hand sides, so the
	// solve inputs are pinned without shipping vectors in the trace.
	Seed int64 `json:"seed"`
	// OffsetMS is the open-loop arrival offset from replay start
	// (exponential inter-arrivals at Scenario.Rate); closed-loop replays
	// ignore it.
	OffsetMS float64 `json:"offset_ms,omitempty"`
}

// Trace is a scenario plus its materialized request sequence — the durable,
// replayable artifact. The JSON form is the trace file format.
type Trace struct {
	Scenario Scenario  `json:"scenario"`
	Requests []Request `json:"requests"`
}

// Generate materializes a scenario into a trace. It is a pure function of
// the scenario (all randomness flows from Scenario.Seed through one
// math/rand stream consumed in request order), so the same scenario always
// yields the same trace, on any machine, at any GOMAXPROCS.
func Generate(sc Scenario) (*Trace, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))

	// Cumulative mix weights for the weighted draw.
	cum := make([]float64, len(sc.Mix))
	total := 0.0
	for i, m := range sc.Mix {
		w := m.Weight
		if w == 0 {
			w = 1
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("replay: scenario %q: mix weights sum to zero", sc.Name)
	}

	tr := &Trace{Scenario: sc, Requests: make([]Request, sc.Requests)}
	offset := 0.0
	for i := range tr.Requests {
		draw := rng.Float64() * total
		mi := 0
		for mi < len(cum)-1 && draw >= cum[mi] {
			mi++
		}
		m := sc.Mix[mi]
		rhs := m.RHS
		if rhs <= 0 {
			rhs = 1
		}
		if sc.Arrival == ArrivalOpen {
			offset += rng.ExpFloat64() / sc.Rate * 1000
		}
		tr.Requests[i] = Request{
			Index:    i,
			Tenant:   fmt.Sprintf("t%d", rng.Intn(sc.Tenants)),
			Graph:    m.Graph,
			RHS:      rhs,
			Tol:      m.Tol,
			MaxIter:  m.MaxIter,
			Method:   m.Method,
			Seed:     1 + rng.Int63n(1<<30),
			OffsetMS: offset,
		}
	}
	return tr, nil
}

// Write encodes the trace as indented JSON.
func (tr *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadTrace decodes a trace file and validates its scenario.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	if err := json.NewDecoder(r).Decode(tr); err != nil {
		return nil, fmt.Errorf("replay: bad trace: %w", err)
	}
	if err := tr.Scenario.Validate(); err != nil {
		return nil, err
	}
	for i, rq := range tr.Requests {
		if rq.Graph < 0 || rq.Graph >= len(tr.Scenario.Graphs) {
			return nil, fmt.Errorf("replay: trace request %d references graph %d of %d", i, rq.Graph, len(tr.Scenario.Graphs))
		}
	}
	return tr, nil
}
