package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hcd/internal/serve"
)

// smallScenario is a seconds-scale closed-loop scenario the engine tests
// replay in-process.
func smallScenario() Scenario {
	return Scenario{
		Name:     "test",
		Seed:     3,
		Requests: 12,
		Workers:  4,
		Tenants:  2,
		Graphs:   []GraphSpec{{Spec: "grid2d:6"}, {Spec: "road:8"}},
		Mix: []MixEntry{
			{Graph: 0, Weight: 2, RHS: 1},
			{Graph: 1, Weight: 1, RHS: 2},
		},
		SLO: SLOSpec{MinScore: 10, MaxErrorRate: 0.01},
	}
}

// TestGenerateDeterministic: the trace is a pure function of the scenario —
// same seed, same trace; different seed, different trace.
func TestGenerateDeterministic(t *testing.T) {
	sc := smallScenario()
	a, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(sc)
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatal("same scenario generated different traces")
	}
	sc.Seed = 4
	c, _ := Generate(sc)
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds generated identical traces")
	}
	// The mix draw respects the graph indices and rhs shapes it references.
	for _, rq := range a.Requests {
		if rq.Graph < 0 || rq.Graph > 1 || rq.RHS < 1 || rq.RHS > 2 {
			t.Fatalf("malformed request %+v", rq)
		}
		if rq.Tenant != "t0" && rq.Tenant != "t1" {
			t.Fatalf("tenant %q outside scenario range", rq.Tenant)
		}
	}
}

// TestOpenLoopOffsets: open arrivals carry strictly increasing offsets drawn
// from the exponential inter-arrival stream.
func TestOpenLoopOffsets(t *testing.T) {
	sc := smallScenario()
	sc.Arrival = ArrivalOpen
	sc.Rate = 1000
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, rq := range tr.Requests {
		if rq.OffsetMS <= prev {
			t.Fatalf("offsets not increasing: %v then %v", prev, rq.OffsetMS)
		}
		prev = rq.OffsetMS
	}
}

// TestTraceRoundTrip: a trace survives its JSON file format.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := Generate(smallScenario())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Requests, back.Requests) {
		t.Fatal("trace requests changed across the round trip")
	}
	if back.Scenario.Name != tr.Scenario.Name || back.Scenario.Seed != tr.Scenario.Seed {
		t.Fatal("scenario header changed across the round trip")
	}
	// A trace whose requests reference missing graphs is rejected.
	bad := *tr
	bad.Requests = append([]Request(nil), tr.Requests...)
	bad.Requests[0].Graph = 99
	buf.Reset()
	if err := bad.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("trace with dangling graph reference accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	for name, mut := range map[string]func(*Scenario){
		"no requests":  func(sc *Scenario) { sc.Requests = 0 },
		"no graphs":    func(sc *Scenario) { sc.Graphs = nil },
		"no mix":       func(sc *Scenario) { sc.Mix = nil },
		"bad graphref": func(sc *Scenario) { sc.Mix[0].Graph = 7 },
		"bad method":   func(sc *Scenario) { sc.Mix[0].Method = "gauss" },
		"open no rate": func(sc *Scenario) { sc.Arrival = ArrivalOpen },
		"bad arrival":  func(sc *Scenario) { sc.Arrival = "bursty" },
	} {
		sc := smallScenario()
		mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: invalid scenario accepted", name)
		}
	}
	for _, name := range BuiltinNames() {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", name, err)
		}
	}
	if _, err := Builtin("nope"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

// runOnce replays the small scenario in-process and returns its report.
func runOnce(t *testing.T, sc Scenario) *Report {
	t.Helper()
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReplayInProcess is the end-to-end contract on the default in-process
// target: every request converges, the aggregates are consistent, and the
// deterministic SLOs pass.
func TestReplayInProcess(t *testing.T) {
	rep := runOnce(t, smallScenario())
	if rep.Requests != 12 {
		t.Fatalf("requests %d, want 12", rep.Requests)
	}
	d := rep.Deterministic
	if d.Converged != 12 || d.Errors != 0 || d.Degraded != 0 {
		t.Fatalf("outcomes off: %+v", d)
	}
	if d.Outcomes["converged"] != 12 {
		t.Fatalf("outcome histogram off: %v", d.Outcomes)
	}
	if d.CacheHits != 12 {
		t.Fatalf("cache hits %d, want 12 (graphs are submitted before replay)", d.CacheHits)
	}
	if d.TotalIterations <= 0 || d.IterP99 <= 0 {
		t.Fatalf("iteration stats missing: %+v", d)
	}
	if rep.Score <= 0 || rep.Score > 100 {
		t.Fatalf("score %v outside (0, 100]", rep.Score)
	}
	if rep.Measured.LatencyP99MS <= 0 || rep.Measured.ThroughputRPS <= 0 {
		t.Fatalf("measured section missing: %+v", rep.Measured)
	}
	if !rep.SLOPass() {
		t.Fatalf("deterministic SLOs failed: %+v", rep.SLO)
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestReplayScoreInvariant is the bit-identity acceptance gate: two replays
// of the same trace — run at different GOMAXPROCS — produce identical scores
// and identical Deterministic sections, because neither depends on timing.
func TestReplayScoreInvariant(t *testing.T) {
	sc := smallScenario()
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(2)
	a := runOnce(t, sc)
	runtime.GOMAXPROCS(old)
	b := runOnce(t, sc)

	if a.Score != b.Score {
		t.Fatalf("score differs across GOMAXPROCS: %v vs %v", a.Score, b.Score)
	}
	if !reflect.DeepEqual(a.Deterministic, b.Deterministic) {
		t.Fatalf("deterministic section differs:\n%+v\n%+v", a.Deterministic, b.Deterministic)
	}
	aj, _ := json.Marshal(struct {
		Score float64
		Det   Deterministic
	}{a.Score, a.Deterministic})
	bj, _ := json.Marshal(struct {
		Score float64
		Det   Deterministic
	}{b.Score, b.Deterministic})
	if !bytes.Equal(aj, bj) {
		t.Fatalf("serialized deterministic sections differ:\n%s\n%s", aj, bj)
	}
}

// TestReplayOpenLoop drives the Poisson arrival path end to end.
func TestReplayOpenLoop(t *testing.T) {
	sc := smallScenario()
	sc.Arrival = ArrivalOpen
	sc.Rate = 2000 // ~6ms of schedule: fast, but still exercises the timers
	rep := runOnce(t, sc)
	if rep.Deterministic.Converged != sc.Requests {
		t.Fatalf("open-loop replay: %+v", rep.Deterministic)
	}
}

// TestReplayAgainstHandler replays against an explicit serve handler and
// checks the engine surfaces server-side outcomes (throttling) as
// deterministic error counts and failed SLOs.
func TestReplayAgainstHandler(t *testing.T) {
	// Zero-capacity admission: every solve is refused with 429.
	srv := serve.New(serve.Config{
		Admission: serve.AdmissionConfig{Rate: 1e-9, Burst: 0.5, MaxQueue: 0},
	})
	sc := smallScenario()
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), tr, Options{Handler: srv.Handler()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deterministic.Errors != sc.Requests || rep.Deterministic.Outcomes["throttled"] != sc.Requests {
		t.Fatalf("throttled replay not surfaced: %+v", rep.Deterministic)
	}
	if rep.SLOPass() {
		t.Fatal("SLOs passed on an all-throttled run")
	}
}

// TestReplayRemoteTarget replays over real HTTP against an httptest server —
// the BaseURL path cmd/hcd-replay -target uses.
func TestReplayRemoteTarget(t *testing.T) {
	srv := serve.New(serve.Config{
		Admission: serve.AdmissionConfig{Rate: 1e12, Burst: 1e12},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := smallScenario()
	sc.Requests = 6
	tr, err := Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), tr, Options{BaseURL: ts.URL, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deterministic.Converged != 6 {
		t.Fatalf("remote replay: %+v", rep.Deterministic)
	}
}

// TestScoreBounds pins the fitness fold: perfect runs score high, an
// all-error run scores zero, and penalties subtract.
func TestScoreBounds(t *testing.T) {
	w := DefaultWeights()
	perfect := scoreOf(Fitness{SuccessRate: 1, TailScore: 1, Efficiency: 1, Weights: w})
	if perfect != 100 {
		t.Fatalf("perfect fitness scores %v, want 100", perfect)
	}
	ruined := scoreOf(Fitness{SuccessRate: 0, ErrorRate: 1, Weights: w})
	if ruined != 0 {
		t.Fatalf("all-error fitness scores %v, want 0", ruined)
	}
	good := scoreOf(Fitness{SuccessRate: 1, TailScore: 0.5, Efficiency: 0.5, Weights: w})
	degraded := scoreOf(Fitness{SuccessRate: 1, TailScore: 0.5, Efficiency: 0.5, DegradedRate: 0.5, Weights: w})
	if degraded >= good {
		t.Fatalf("degradation did not cost score: %v vs %v", degraded, good)
	}
}

// TestSLOEvaluation: limits of zero disable checks; measured checks are
// advisory and never fail SLOPass.
func TestSLOEvaluation(t *testing.T) {
	rep := &Report{Score: 50, Fitness: Fitness{ErrorRate: 0.5}}
	rep.Measured.LatencyP99MS = 1e9
	rep.SLO = evalSLO(SLOSpec{}, rep)
	if len(rep.SLO) != 0 {
		t.Fatalf("zero SLO spec produced checks: %+v", rep.SLO)
	}
	rep.SLO = evalSLO(SLOSpec{MinScore: 60, MaxErrorRate: 0.1, MaxP99MS: 1}, rep)
	if len(rep.SLO) != 3 {
		t.Fatalf("want 3 checks, got %+v", rep.SLO)
	}
	for _, c := range rep.SLO {
		if c.Pass {
			t.Errorf("check %s passed, want fail", c.Name)
		}
	}
	// Only the measured p99 check failing keeps the deterministic gate green.
	rep2 := &Report{Score: 90}
	rep2.Measured.LatencyP99MS = 1e9
	rep2.SLO = evalSLO(SLOSpec{MinScore: 60, MaxP99MS: 1}, rep2)
	if !rep2.SLOPass() {
		t.Fatal("advisory measured check failed the deterministic gate")
	}
}

// TestRunRespectsContext: a cancelled context aborts the submit phase with
// an error instead of hanging.
func TestRunRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := Generate(smallScenario())
	if err != nil {
		t.Fatal(err)
	}
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			w.WriteHeader(http.StatusServiceUnavailable)
		case <-time.After(5 * time.Second):
		}
	})
	if _, err := Run(ctx, tr, Options{Handler: slow}); err == nil {
		t.Fatal("cancelled run reported success")
	}
}
