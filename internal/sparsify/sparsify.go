// Package sparsify builds the sparse spectral subgraph B that Theorem 2.2
// feeds into the decomposition engine: a spanning tree plus a bounded number
// of off-tree edges. The paper obtains B from the multiway-separator
// miniaturization of Koutis–Miller [18] (planar) or from low-stretch trees
// with Spielman–Teng augmentation [27, 9] (minor-free); this package
// substitutes the standard stretch-driven construction — keep the off-tree
// edges of largest stretch — which yields the same object class (spanning
// tree + c·n extra edges, measured spectral distance k) without the planar
// separator machinery. DESIGN.md documents the substitution.
package sparsify

import (
	"context"
	"fmt"
	"sort"

	"hcd/internal/graph"
	"hcd/internal/lowstretch"
	"hcd/internal/mst"
)

// BaseTree selects the spanning tree underlying the subgraph.
type BaseTree int

const (
	// MaxWeightTree uses the maximum-weight spanning tree (Vaidya/Joshi
	// style), the natural choice under large weight variation.
	MaxWeightTree BaseTree = iota
	// LowStretchTree uses an AKPW low-stretch tree (the Theorem 2.3 path).
	LowStretchTree
)

// Options configures Sparsify.
type Options struct {
	Base BaseTree
	// ExtraFraction is the number of off-tree edges to keep, as a fraction
	// of n (the paper's "constant fraction of non-tree edges").
	ExtraFraction float64
	Seed          int64
}

// DefaultOptions keeps n/4 off-tree edges on a max-weight base tree.
func DefaultOptions() Options {
	return Options{Base: MaxWeightTree, ExtraFraction: 0.25, Seed: 1}
}

// Result is the sparse subgraph together with its composition.
type Result struct {
	B          *graph.Graph
	TreeEdges  []graph.Edge
	ExtraEdges []graph.Edge
	// AvgStretch is the average stretch of all edges of the input over the
	// base tree — the quantity controlling the spectral distance of B to A.
	AvgStretch float64
	// MaxDroppedStretch is the largest stretch among edges NOT kept; it
	// bounds the per-edge support loss of the sparsification.
	MaxDroppedStretch float64
}

// Sparsify returns the subgraph B of the connected graph g consisting of a
// spanning tree plus the ⌈ExtraFraction·n⌉ off-tree edges of largest
// stretch. Every edge of B is an edge of g with its original weight.
//
// Sparsify = BaseTreeCtx + FromTreeCtx with context.Background(); the two
// halves are exposed separately so the decomposition pipeline can time the
// base-tree construction apart from the stretch-driven edge selection.
func Sparsify(g *graph.Graph, opt Options) (*Result, error) {
	return SparsifyCtx(context.Background(), g, opt)
}

// SparsifyCtx is Sparsify under a context.
func SparsifyCtx(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	tree, err := BaseTreeCtx(ctx, g, opt)
	if err != nil {
		return nil, err
	}
	return FromTreeCtx(ctx, g, tree, opt)
}

// BaseTreeCtx validates g and builds the spanning tree opt.Base selects.
// For n ≤ 2 the tree is the whole (at most one-edge) graph.
func BaseTreeCtx(ctx context.Context, g *graph.Graph, opt Options) ([]graph.Edge, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("sparsify: graph must be connected")
	}
	if opt.ExtraFraction < 0 {
		return nil, fmt.Errorf("sparsify: negative ExtraFraction")
	}
	if g.N() <= 2 {
		return g.Edges(), nil
	}
	switch opt.Base {
	case MaxWeightTree:
		return mst.KruskalCtx(ctx, g, mst.Max)
	case LowStretchTree:
		return lowstretch.AKPWCtx(ctx, g, opt.Seed)
	default:
		return nil, fmt.Errorf("sparsify: unknown base tree %d", opt.Base)
	}
}

// FromTreeCtx completes the sparsification over an already-built base tree:
// compute stretches, keep the ⌈ExtraFraction·n⌉ off-tree edges of largest
// stretch, and assemble B.
func FromTreeCtx(ctx context.Context, g *graph.Graph, tree []graph.Edge, opt Options) (*Result, error) {
	n := g.N()
	if n <= 2 {
		return &Result{B: g.Clone(), TreeEdges: g.Edges()}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sparsify: cancelled: %w", err)
	}
	stretches, avg, err := lowstretch.Stretches(g, tree)
	if err != nil {
		return nil, err
	}
	inTree := make(map[[2]int]bool, len(tree))
	for _, e := range tree {
		inTree[key(e.U, e.V)] = true
	}
	type offEdge struct {
		e graph.Edge
		s float64
	}
	var off []offEdge
	for i, e := range g.Edges() {
		if !inTree[key(e.U, e.V)] {
			off = append(off, offEdge{e: e, s: stretches[i]})
		}
	}
	sort.Slice(off, func(i, j int) bool { return off[i].s > off[j].s })
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sparsify: cancelled: %w", err)
	}
	budget := int(opt.ExtraFraction*float64(n) + 0.5)
	if budget > len(off) {
		budget = len(off)
	}
	res := &Result{TreeEdges: tree, AvgStretch: avg}
	bEdges := append([]graph.Edge(nil), tree...)
	for i := 0; i < budget; i++ {
		res.ExtraEdges = append(res.ExtraEdges, off[i].e)
		bEdges = append(bEdges, off[i].e)
	}
	for i := budget; i < len(off); i++ {
		if off[i].s > res.MaxDroppedStretch {
			res.MaxDroppedStretch = off[i].s
		}
	}
	res.B = graph.MustFromEdges(n, bEdges)
	return res, nil
}

func key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}
