package sparsify

import (
	"fmt"
	"sort"

	"hcd/internal/graph"
)

// GridMiniature builds a subgraph preconditioner skeleton for an
// nx×ny×nz grid graph using the "miniaturization" idea the paper attributes
// to [18] and uses for its own Figure 6 subgraph baseline: partition the
// grid into blockSize³ blocks, keep a max-weight spanning tree inside every
// block, and keep the single heaviest edge between each pair of adjacent
// blocks. After degree-1/2 elimination such a subgraph collapses to a few
// interface vertices per block, giving a reduction factor of roughly
// blockSize³/6 without any monolithic spanning-tree computation — and every
// block is processed independently (parallel-friendly by construction).
//
// The vertex layout must be the workload generator's: id = (i·ny + j)·nz + k.
func GridMiniature(g *graph.Graph, nx, ny, nz, blockSize int) (*Result, error) {
	if nx*ny*nz != g.N() {
		return nil, fmt.Errorf("sparsify: grid dims %d×%d×%d do not match n=%d", nx, ny, nz, g.N())
	}
	if blockSize < 1 {
		return nil, fmt.Errorf("sparsify: blockSize must be ≥ 1")
	}
	by := (ny + blockSize - 1) / blockSize
	bz := (nz + blockSize - 1) / blockSize
	blockOf := func(v int) int {
		k := v % nz
		j := (v / nz) % ny
		i := v / (nz * ny)
		return ((i/blockSize)*by+(j/blockSize))*bz + k/blockSize
	}
	// Partition edges into intra-block lists and best inter-block edges.
	intra := make(map[int][]graph.Edge)
	type pair struct{ a, b int }
	inter := make(map[pair]graph.Edge)
	for _, e := range g.Edges() {
		bu, bv := blockOf(e.U), blockOf(e.V)
		if bu == bv {
			intra[bu] = append(intra[bu], e)
			continue
		}
		k := pair{bu, bv}
		if bu > bv {
			k = pair{bv, bu}
		}
		if cur, ok := inter[k]; !ok || e.W > cur.W {
			inter[k] = e
		}
	}
	res := &Result{}
	var bEdges []graph.Edge
	// Per-block max-weight spanning forests; blocks are independent.
	for _, edges := range intra {
		bEdges = append(bEdges, blockSpanningForest(edges)...)
	}
	treeCount := len(bEdges)
	for _, e := range inter {
		bEdges = append(bEdges, e)
	}
	res.TreeEdges = bEdges[:treeCount]
	res.ExtraEdges = bEdges[treeCount:]
	res.B = graph.MustFromEdges(g.N(), bEdges)
	if g.Connected() && !res.B.Connected() {
		return nil, fmt.Errorf("sparsify: miniature subgraph disconnected (internal error)")
	}
	return res, nil
}

// blockSpanningForest runs max-weight Kruskal over one block's edge list
// with a map-based union-find, so the cost is proportional to the block.
func blockSpanningForest(edges []graph.Edge) []graph.Edge {
	es := append([]graph.Edge(nil), edges...)
	sort.Slice(es, func(i, j int) bool { return es[i].W > es[j].W })
	parent := make(map[int]int, 2*len(es))
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	out := es[:0]
	for _, e := range es {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			out = append(out, e)
		}
	}
	return out
}
