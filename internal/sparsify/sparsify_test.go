package sparsify

import (
	"testing"

	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/support"
	"hcd/internal/workload"
)

func TestSparsifyStructure(t *testing.T) {
	g := workload.GridDiag2D(15, 15, workload.Lognormal(1), 1)
	for _, base := range []BaseTree{MaxWeightTree, LowStretchTree} {
		opt := DefaultOptions()
		opt.Base = base
		res, err := Sparsify(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.TreeEdges) != g.N()-1 {
			t.Fatalf("base %d: tree has %d edges", base, len(res.TreeEdges))
		}
		if !res.B.Connected() {
			t.Fatalf("base %d: B disconnected", base)
		}
		wantExtra := int(0.25*float64(g.N()) + 0.5)
		if len(res.ExtraEdges) != wantExtra {
			t.Errorf("base %d: kept %d extra edges, want %d", base, len(res.ExtraEdges), wantExtra)
		}
		if res.B.M() != g.N()-1+wantExtra {
			t.Errorf("base %d: B has %d edges", base, res.B.M())
		}
		// Every B edge must exist in g with identical weight.
		for _, e := range res.B.Edges() {
			w, ok := g.Weight(e.U, e.V)
			if !ok || w != e.W {
				t.Fatalf("base %d: edge (%d,%d) not in g or reweighted", base, e.U, e.V)
			}
		}
	}
}

func TestSparsifyKeepsHighestStretch(t *testing.T) {
	g := workload.GridDiag2D(10, 10, workload.Lognormal(2), 2)
	opt := DefaultOptions()
	opt.ExtraFraction = 0.1
	res, err := Sparsify(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The max dropped stretch must not exceed the minimum kept stretch: we
	// recompute stretches of the kept extra edges.
	if len(res.ExtraEdges) == 0 {
		t.Skip("no extra edges kept")
	}
	if res.MaxDroppedStretch <= 0 {
		t.Skip("nothing dropped")
	}
	// Indirect check: growing the budget reduces MaxDroppedStretch.
	opt2 := opt
	opt2.ExtraFraction = 0.5
	res2, err := Sparsify(g, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxDroppedStretch > res.MaxDroppedStretch+1e-9 {
		t.Errorf("bigger budget increased dropped stretch: %v -> %v",
			res.MaxDroppedStretch, res2.MaxDroppedStretch)
	}
}

func TestSparsifyZeroBudgetIsTree(t *testing.T) {
	g := workload.Grid2D(8, 8, workload.Lognormal(1), 3)
	opt := DefaultOptions()
	opt.ExtraFraction = 0
	res, err := Sparsify(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.B.M() != g.N()-1 || !res.B.IsTree() {
		t.Errorf("zero budget should give a spanning tree, M=%d", res.B.M())
	}
}

func TestSparsifyValidation(t *testing.T) {
	disc := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := Sparsify(disc, DefaultOptions()); err == nil {
		t.Error("disconnected accepted")
	}
	g := workload.Grid2D(3, 3, nil, 1)
	opt := DefaultOptions()
	opt.ExtraFraction = -1
	if _, err := Sparsify(g, opt); err == nil {
		t.Error("negative fraction accepted")
	}
	tiny := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 5}})
	res, err := Sparsify(tiny, DefaultOptions())
	if err != nil || res.B.M() != 1 {
		t.Errorf("tiny graph mishandled: %v", err)
	}
}

// The premise of Theorem 2.2: B is a subgraph with xᵀAx ≤ k·xᵀBx, i.e.
// σ(A, B) = k finite, and keeping more (higher-stretch) off-tree edges can
// only shrink k. Verified densely on a small mesh.
func TestSparsifySpectralQualityImprovesWithBudget(t *testing.T) {
	g := workload.GridDiag2D(7, 7, workload.Lognormal(1.5), 9)
	a := dense.FromRowMajor(g.N(), g.N(), g.LapDense())
	prev := 0.0
	first := true
	for _, fraction := range []float64{0, 0.1, 0.3, 0.8} {
		opt := DefaultOptions()
		opt.ExtraFraction = fraction
		res, err := Sparsify(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		bd := dense.FromRowMajor(g.N(), g.N(), res.B.LapDense())
		// σ(B, A) ≤ 1: B is a subgraph.
		sBA, err := support.Sigma(bd, a)
		if err != nil {
			t.Fatal(err)
		}
		if sBA > 1+1e-8 {
			t.Fatalf("fraction %v: σ(B,A) = %v > 1", fraction, sBA)
		}
		// k = σ(A, B) must be finite and non-increasing in the budget.
		k, err := support.Sigma(a, bd)
		if err != nil {
			t.Fatal(err)
		}
		if k < 1-1e-8 {
			t.Fatalf("fraction %v: σ(A,B) = %v < 1", fraction, k)
		}
		if !first && k > prev*1.05 {
			t.Errorf("fraction %v: k grew from %v to %v", fraction, prev, k)
		}
		prev, first = k, false
	}
}

func TestGridMiniature(t *testing.T) {
	nx, ny, nz := 9, 9, 9
	g := workload.Grid3D(nx, ny, nz, workload.Lognormal(1), 4)
	res, err := GridMiniature(g, nx, ny, nz, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.B.Connected() {
		t.Fatal("miniature subgraph disconnected")
	}
	// Every edge must come from g with its original weight.
	for _, e := range res.B.Edges() {
		w, ok := g.Weight(e.U, e.V)
		if !ok || w != e.W {
			t.Fatalf("edge (%d,%d) not in g", e.U, e.V)
		}
	}
	// Per-block trees: 27 blocks × 26 tree edges each; inter edges extra.
	if len(res.TreeEdges) != 27*26 {
		t.Errorf("tree edges = %d, want %d", len(res.TreeEdges), 27*26)
	}
	// 3×3×3 block lattice has 3·(2·3·3) = 54 adjacent pairs.
	if len(res.ExtraEdges) != 54 {
		t.Errorf("inter-block edges = %d, want 54", len(res.ExtraEdges))
	}
	if res.B.M() != 27*26+54 {
		t.Errorf("B has %d edges", res.B.M())
	}
}

func TestGridMiniatureValidation(t *testing.T) {
	g := workload.Grid3D(4, 4, 4, nil, 1)
	if _, err := GridMiniature(g, 5, 4, 4, 2); err == nil {
		t.Error("wrong dims accepted")
	}
	if _, err := GridMiniature(g, 4, 4, 4, 0); err == nil {
		t.Error("blockSize 0 accepted")
	}
	// blockSize 1: every block is one vertex; B = one heaviest edge per
	// adjacent vertex pair = the whole grid.
	res, err := GridMiniature(g, 4, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.B.M() != g.M() {
		t.Errorf("blockSize 1 should keep all edges: %d vs %d", res.B.M(), g.M())
	}
}

func TestSparsifyBudgetExceedingOffTree(t *testing.T) {
	g := workload.Grid2D(5, 5, nil, 1)
	opt := DefaultOptions()
	opt.ExtraFraction = 100 // far more than available off-tree edges
	res, err := Sparsify(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.B.M() != g.M() {
		t.Errorf("full budget should keep everything: %d vs %d", res.B.M(), g.M())
	}
	if res.MaxDroppedStretch != 0 {
		t.Errorf("nothing dropped but MaxDroppedStretch = %v", res.MaxDroppedStretch)
	}
}
