package hierarchy

// Structural persistence. A built hierarchy is fully determined by the fine
// graph plus each level's cluster assignment: the quotient graphs, diagonal
// inverses, restriction orders, scratch buffers and the dense coarse
// factorization are all cheap, deterministic functions of those. DumpLevels
// exports the minimal structure for the snapshot codec (internal/gio);
// Rebuild reconstructs a hierarchy from it without re-running any clustering
// — the expensive Section 3.1 work the snapshot exists to preserve.

import (
	"context"
	"fmt"

	"hcd/internal/decomp"
	"hcd/internal/graph"
	"hcd/internal/par"
)

// LevelAssign is the persisted shape of one level: the vertex-to-cluster
// assignment on that level's graph and the cluster count.
type LevelAssign struct {
	Assign []int
	Count  int
}

// DumpLevels exports the hierarchy's structural state: one LevelAssign per
// clustering level (finest first) and the smoothing sweep count. The Assign
// slices are backed by the hierarchy's own storage — callers must treat them
// as read-only.
func (h *Hierarchy) DumpLevels() (levels []LevelAssign, smooth int) {
	levels = make([]LevelAssign, 0, len(h.levels))
	for _, l := range h.levels {
		levels = append(levels, LevelAssign{Assign: l.D.Assign, Count: l.D.Count})
		smooth = l.smooth
	}
	return levels, smooth
}

// Rebuild reconstructs a hierarchy from a fine graph and dumped level
// assignments: each level's quotient is recomputed by contraction and the
// coarse factorization is redone — O(m) per level plus one small dense
// factorization, no clustering. Assignments are validated against the level
// graphs they apply to; a mismatch (truncated or corrupted dump) returns an
// error wrapping graph.ErrInvalidInput. The context is only polled between
// levels; rebuilds are fast enough that finer cancellation buys nothing.
func Rebuild(ctx context.Context, g *graph.Graph, levels []LevelAssign, smooth int) (h *Hierarchy, err error) {
	defer func() {
		if v := recover(); v != nil {
			h, err = nil, fmt.Errorf("hierarchy: panic during rebuild: %w", par.AsError(v))
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	h = &Hierarchy{}
	cur := g
	for i, la := range levels {
		if cerr := ctx.Err(); cerr != nil {
			return nil, decomp.Cancelled(ctx)
		}
		if len(la.Assign) != cur.N() {
			return nil, fmt.Errorf("hierarchy: level %d assignment covers %d vertices, graph has %d: %w",
				i, len(la.Assign), cur.N(), graph.ErrInvalidInput)
		}
		if la.Count < 1 || la.Count >= cur.N() {
			return nil, fmt.Errorf("hierarchy: level %d cluster count %d out of range [1,%d): %w",
				i, la.Count, cur.N(), graph.ErrInvalidInput)
		}
		for v, c := range la.Assign {
			if c < 0 || c >= la.Count {
				return nil, fmt.Errorf("hierarchy: level %d assigns vertex %d to cluster %d of %d: %w",
					i, v, c, la.Count, graph.ErrInvalidInput)
			}
		}
		d := &decomp.Decomposition{G: cur, Assign: la.Assign, Count: la.Count}
		h.levels = append(h.levels, newLevel(cur, d, smooth))
		cur = cur.Contract(la.Assign, la.Count)
	}
	if err := h.finish(cur); err != nil {
		return nil, err
	}
	return h, nil
}
