package hierarchy

import "hcd/internal/par"

// Block (multi-RHS) V-cycle: one traversal of the hierarchy smooths,
// restricts and coarse-solves k residuals at once. The packed row-major
// [n][k] layout matches the block solver's, so every quotient graph and
// every level's diagonal stream through memory once per cycle instead of
// once per column — the same amortization the block Laplacian matvec gets
// from the CSR.
//
// Like the scalar Apply, the block apply draws its work buffers from the
// hierarchy's sync.Pool and serializes the coarse direct solve: concurrent
// ApplyBlock calls on one Hierarchy — the server's batched solves land here
// through pooled engines — are safe.
//
// Every step is elementwise, a fixed-order segmented sum, or the
// GOMAXPROCS-invariant LapMulBlock, so ApplyBlock is bit-identical at any
// worker count.

// blockWork holds one in-flight block apply's buffers: per-level packed
// quotient and smoothing vectors.
type blockWork struct {
	rq, xq, tmp, tmp2 [][]float64 // per level, [Count·k] / [n·k]
}

func growBuf(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// blockElemGrain scales the elementwise sweep grain by the block width so a
// chunk touches roughly the same number of floats as the scalar sweeps.
func blockElemGrain(k int) int {
	g := elemGrain / k
	if g < 512 {
		g = 512
	}
	return g
}

// ApplyBlock computes dst ≈ B⁺·r for k packed columns (dst[v*k+j] column j
// at vertex v). It implements the solver's BlockApplier fast path; k = 1
// falls through to the scalar Apply. Safe for concurrent use.
func (h *Hierarchy) ApplyBlock(dst, r []float64, k int) {
	if k == 1 {
		h.Apply(dst, r)
		return
	}
	w, _ := h.bwPool.Get().(*blockWork)
	if w == nil {
		w = &blockWork{}
	}
	for len(w.rq) < len(h.levels) {
		w.rq = append(w.rq, nil)
		w.xq = append(w.xq, nil)
		w.tmp = append(w.tmp, nil)
		w.tmp2 = append(w.tmp2, nil)
	}
	h.applyLevelBlock(0, dst, r, k, w)
	h.bwPool.Put(w)
}

func (h *Hierarchy) applyLevelBlock(level int, dst, r []float64, k int, w *blockWork) {
	if level == len(h.levels) {
		// Coarse direct solve, all k columns through one pass over the
		// Cholesky factor. The dense solver owns internal scratch, so it
		// runs under the hierarchy's coarse lock.
		h.coarseMu.Lock()
		h.coarse.SolveBlock(dst, r, k)
		h.coarseMu.Unlock()
		return
	}
	l := h.levels[level]
	n := l.G.N()
	grain := blockElemGrain(k)
	rq := growBuf(&w.rq[level], l.D.Count*k)
	xq := growBuf(&w.xq[level], l.D.Count*k)
	if l.smooth == 0 {
		// Pure Steiner recursion: dst = D⁻¹r + R·coarse(Rᵀr).
		restrictBlock(l, r, k, rq)
		h.applyLevelBlock(level+1, xq, rq, k, w)
		par.For(n, grain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				dv := l.dInv[v]
				q := xq[l.D.Assign[v]*k:]
				rv := r[v*k : v*k+k : v*k+k]
				dstv := dst[v*k : v*k+k : v*k+k]
				for j := range dstv {
					dstv[j] = rv[j]*dv + q[j]
				}
			}
		})
		return
	}
	// Symmetric V-cycle, exactly the scalar sweep sequence k columns wide.
	const omega = 0.5
	x := dst
	tmp := growBuf(&w.tmp[level], n*k)
	tmp2 := growBuf(&w.tmp2[level], n*k)
	par.For(n, grain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			od := omega * l.dInv[v]
			rv := r[v*k : v*k+k : v*k+k]
			xv := x[v*k : v*k+k : v*k+k]
			for j := range xv {
				xv[j] = od * rv[j]
			}
		}
	})
	for s := 1; s < l.smooth; s++ {
		l.G.LapMulBlock(tmp, x, k)
		par.For(n, grain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				od := omega * l.dInv[v]
				rv := r[v*k : v*k+k : v*k+k]
				tv := tmp[v*k : v*k+k : v*k+k]
				xv := x[v*k : v*k+k : v*k+k]
				for j := range xv {
					xv[j] += od * (rv[j] - tv[j])
				}
			}
		})
	}
	l.G.LapMulBlockResidual(tmp, r, x, k)
	restrictBlock(l, tmp, k, rq)
	h.applyLevelBlock(level+1, xq, rq, k, w)
	par.For(n, grain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			q := xq[l.D.Assign[v]*k:]
			xv := x[v*k : v*k+k : v*k+k]
			for j := range xv {
				xv[j] += q[j]
			}
		}
	})
	for s := 0; s < l.smooth; s++ {
		l.G.LapMulBlock(tmp2, x, k)
		par.For(n, grain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				od := omega * l.dInv[v]
				rv := r[v*k : v*k+k : v*k+k]
				tv := tmp2[v*k : v*k+k : v*k+k]
				xv := x[v*k : v*k+k : v*k+k]
				for j := range xv {
					xv[j] += od * (rv[j] - tv[j])
				}
			}
		})
	}
}

// restrictBlock computes rq = Rᵀr per column: each cluster sums its members'
// packed rows in the fixed cluster-sorted order, so the result does not
// depend on how clusters are chunked across workers.
func restrictBlock(l *Level, r []float64, k int, rq []float64) {
	grain := 512 / k
	if grain < 8 {
		grain = 8
	}
	par.For(l.D.Count, grain, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			acc := rq[c*k : c*k+k : c*k+k]
			for j := range acc {
				acc[j] = 0
			}
			for i := l.start[c]; i < l.start[c+1]; i++ {
				rv := r[l.order[i]*k:]
				for j := range acc {
					acc[j] += rv[j]
				}
			}
		}
	})
}
