package hierarchy

import (
	"context"
	"strings"
	"testing"

	"hcd/internal/faultinject"
	"hcd/internal/workload"
)

func TestNewCtxRejectsNoReductionBuild(t *testing.T) {
	g := workload.Grid2D(40, 40, workload.UniformWeight(1, 1), 1)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.PerturbCorrupt: {OnHit: 1, Count: 0},
	})
	defer restore()
	opt := DefaultOptions()
	opt.DirectLimit = 8 // 1600 vertices >> 4·8, so the guard must fire
	_, err := NewCtx(context.Background(), g, opt)
	if err == nil {
		t.Fatal("degenerate clustering must fail the build, not reach the dense coarse solve")
	}
	if !strings.Contains(err.Error(), "no reduction") {
		t.Errorf("error %q does not explain the degenerate build", err)
	}
}

func TestNewCtxToleratesNoReductionNearDirectLimit(t *testing.T) {
	// On a graph already within 4× the direct limit, a no-reduction level is
	// acceptable: the coarse solve is still cheap.
	g := workload.Grid2D(8, 8, workload.UniformWeight(1, 1), 1)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.PerturbCorrupt: {OnHit: 1, Count: 0},
	})
	defer restore()
	opt := DefaultOptions()
	opt.DirectLimit = 32
	h, err := NewCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatalf("NewCtx: %v", err)
	}
	if h.CoarseSize() != g.N() {
		t.Errorf("coarse size %d, want the unreduced %d", h.CoarseSize(), g.N())
	}
}
