package hierarchy

import (
	"sync"
	"testing"

	"hcd/internal/workload"
)

// TestConcurrentApplyRace guards the scalar Apply's concurrency contract.
// The graph must be large enough to build a level (N > DirectLimit): a
// depth-0 hierarchy only exercises the mutex-protected coarse solve and
// would pass even with shared per-level scratch. Run under -race this
// caught the original bug where apply scratch lived on the Level structs.
func TestConcurrentApplyRace(t *testing.T) {
	g := workload.Grid3D(10, 10, 10, workload.Lognormal(1), 1)
	h, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() == 0 {
		t.Fatal("test graph built a depth-0 hierarchy; concurrency coverage needs levels")
	}
	n := g.N()

	// Sequential baselines: Apply is deterministic, so the concurrent runs
	// must reproduce these bit-for-bit.
	const workers = 4
	want := make([][]float64, workers)
	rhs := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		r := make([]float64, n)
		r[w] = 1
		r[n-1-w] = -1
		rhs[w] = r
		want[w] = make([]float64, n)
		h.Apply(want[w], r)
	}

	var wg sync.WaitGroup
	errs := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float64, n)
			for i := 0; i < 10; i++ {
				h.Apply(dst, rhs[w])
				for v := range dst {
					if dst[v] != want[w][v] {
						errs[w]++
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, e := range errs {
		if e != 0 {
			t.Errorf("worker %d: %d/10 concurrent applies diverged from the sequential result", w, e)
		}
	}
}
