package hierarchy

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"hcd/internal/workload"
)

func blockApplyFixture(t *testing.T, smooth int) (*Hierarchy, int) {
	t.Helper()
	g := workload.OCT3D(8, 8, 8, workload.OCTOptions{Layers: 4, Contrast: 100, NoiseSigma: 1, Seed: 7})
	opt := DefaultOptions()
	opt.DirectLimit = 60
	opt.Smooth = smooth
	h, err := New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() == 0 {
		t.Fatal("fixture hierarchy has no levels")
	}
	return h, g.N()
}

// TestApplyBlockMatchesColumns: the block V-cycle agrees with k scalar
// applies column by column, for both the pure recursion and the smoothed
// cycle. (To rounding: the block matvec accumulates the diagonal and
// neighbor terms separately.)
func TestApplyBlockMatchesColumns(t *testing.T) {
	for _, smooth := range []int{0, 1, 2} {
		h, n := blockApplyFixture(t, smooth)
		rng := rand.New(rand.NewSource(int64(10 + smooth)))
		const k = 3
		r := make([]float64, n*k)
		cols := make([][]float64, k)
		for j := range cols {
			cols[j] = meanFree(rng, n)
			for v := 0; v < n; v++ {
				r[v*k+j] = cols[j][v]
			}
		}
		dst := make([]float64, n*k)
		h.ApplyBlock(dst, r, k)
		ref := make([]float64, n)
		for j := 0; j < k; j++ {
			h.Apply(ref, cols[j])
			scale := 0.0
			for v := 0; v < n; v++ {
				if a := math.Abs(ref[v]); a > scale {
					scale = a
				}
			}
			for v := 0; v < n; v++ {
				if d := math.Abs(dst[v*k+j] - ref[v]); d > 1e-10*(1+scale) {
					t.Fatalf("smooth=%d col %d vertex %d: block %v vs scalar %v",
						smooth, j, v, dst[v*k+j], ref[v])
				}
			}
		}
	}
}

// TestApplyBlockK1BitIdentical: width-1 blocks fall through to the scalar
// apply exactly.
func TestApplyBlockK1BitIdentical(t *testing.T) {
	h, n := blockApplyFixture(t, 1)
	rng := rand.New(rand.NewSource(20))
	r := meanFree(rng, n)
	got := make([]float64, n)
	want := make([]float64, n)
	h.ApplyBlock(got, r, 1)
	h.Apply(want, r)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: %v != %v", v, got[v], want[v])
		}
	}
}

// TestApplyBlockGOMAXPROCSInvariant: every block step is elementwise, a
// fixed-order segmented sum, or the invariant SpMM, so the whole V-cycle is
// bit-identical at any worker count.
func TestApplyBlockGOMAXPROCSInvariant(t *testing.T) {
	h, n := blockApplyFixture(t, 1)
	rng := rand.New(rand.NewSource(21))
	const k = 4
	r := make([]float64, n*k)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	ref := make([]float64, n*k)
	h.ApplyBlock(ref, r, k)
	for _, procs := range []int{2, 4} {
		runtime.GOMAXPROCS(procs)
		dst := make([]float64, n*k)
		h.ApplyBlock(dst, r, k)
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("procs=%d entry %d: %v != %v", procs, i, dst[i], ref[i])
			}
		}
	}
}

// TestApplyBlockConcurrent: concurrent block applies on one hierarchy share
// the pool and the coarse lock without cross-talk (run under -race in CI).
func TestApplyBlockConcurrent(t *testing.T) {
	h, n := blockApplyFixture(t, 1)
	rng := rand.New(rand.NewSource(22))
	const k = 2
	const goroutines = 4
	inputs := make([][]float64, goroutines)
	want := make([][]float64, goroutines)
	for i := range inputs {
		inputs[i] = make([]float64, n*k)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
		want[i] = make([]float64, n*k)
		h.ApplyBlock(want[i], inputs[i], k)
	}
	var wg sync.WaitGroup
	errs := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dst := make([]float64, n*k)
			for rep := 0; rep < 5; rep++ {
				h.ApplyBlock(dst, inputs[i], k)
				for j := range dst {
					if dst[j] != want[i][j] {
						errs[i]++
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e > 0 {
			t.Errorf("goroutine %d saw cross-talk in concurrent ApplyBlock", i)
		}
	}
}
