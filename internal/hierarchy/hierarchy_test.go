package hierarchy

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/solver"
	"hcd/internal/workload"
)

func hcdEdge(u, v int, w float64) graph.Edge { return graph.Edge{U: u, V: v, W: w} }

func mustGraph(n int, es []graph.Edge) *graph.Graph { return graph.MustFromEdges(n, es) }

func meanFree(rng *rand.Rand, n int) []float64 {
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

func TestHierarchyBuilds(t *testing.T) {
	g := workload.Grid3D(10, 10, 10, workload.Lognormal(1), 1)
	h, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.Dim() != g.N() {
		t.Fatalf("Dim = %d", h.Dim())
	}
	sizes := h.LevelSizes()
	if sizes[0] != g.N() {
		t.Fatalf("level sizes %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] >= sizes[i-1] {
			t.Fatalf("no reduction between levels: %v", sizes)
		}
		if float64(sizes[i]) > float64(sizes[i-1])/1.8 {
			t.Errorf("reduction below ~2 between levels %d and %d: %v", i-1, i, sizes)
		}
	}
	if h.CoarseSize() > DefaultOptions().DirectLimit {
		t.Errorf("coarse size %d above direct limit", h.CoarseSize())
	}
}

func TestHierarchyApplyIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := workload.Grid2D(15, 15, workload.Lognormal(1), 2)
	for _, smooth := range []int{0, 1, 2} {
		opt := DefaultOptions()
		opt.Smooth = smooth
		opt.DirectLimit = 20
		h, err := New(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		x := meanFree(rng, g.N())
		y := meanFree(rng, g.N())
		hx := make([]float64, g.N())
		hy := make([]float64, g.N())
		h.Apply(hx, x)
		h.Apply(hy, y)
		xy := dot(y, hx)
		yx := dot(x, hy)
		if math.Abs(xy-yx) > 1e-8*math.Max(1, math.Abs(xy)) {
			t.Errorf("smooth=%d: apply not symmetric: %v vs %v", smooth, xy, yx)
		}
		// PSD along the probes.
		if dot(x, hx) < -1e-9 {
			t.Errorf("smooth=%d: negative quadratic form", smooth)
		}
	}
}

func TestHierarchyPCGConvergesOCT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := workload.OCT3D(10, 10, 20, workload.DefaultOCTOptions())
	for _, smooth := range []int{0, 1} {
		opt := DefaultOptions()
		opt.Smooth = smooth
		opt.DirectLimit = 100
		h, err := New(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		b := meanFree(rng, g.N())
		res := solver.PCG(solver.LapOperator(g), h, b, solver.DefaultOptions())
		if !res.Converged {
			t.Fatalf("smooth=%d: multilevel PCG did not converge in %d iters", smooth, res.Iterations)
		}
		t.Logf("smooth=%d: depth=%d iters=%d", smooth, h.Depth(), res.Iterations)
	}
}

func TestHierarchyIterationsNearlyFlat(t *testing.T) {
	// Multilevel behaviour: iteration counts grow at most mildly with n.
	rng := rand.New(rand.NewSource(3))
	var iters []int
	for _, side := range []int{8, 12, 16} {
		g := workload.OCT3D(side, side, side, workload.OCTOptions{Layers: 3, Contrast: 50, NoiseSigma: 1, Seed: 5})
		opt := DefaultOptions()
		opt.DirectLimit = 200
		h, err := New(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		b := meanFree(rng, g.N())
		res := solver.PCG(solver.LapOperator(g), h, b, solver.DefaultOptions())
		if !res.Converged {
			t.Fatalf("side=%d did not converge", side)
		}
		iters = append(iters, res.Iterations)
	}
	t.Logf("iterations across sizes: %v", iters)
	if iters[2] > 4*iters[0]+10 {
		t.Errorf("iteration growth too steep: %v", iters)
	}
}

func TestHierarchySmallGraphDirect(t *testing.T) {
	g := workload.Grid2D(5, 5, nil, 1)
	opt := DefaultOptions()
	opt.DirectLimit = 100 // graph smaller than limit: zero levels
	h, err := New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 0 {
		t.Errorf("depth = %d, want 0", h.Depth())
	}
	rng := rand.New(rand.NewSource(4))
	b := meanFree(rng, g.N())
	x := make([]float64, g.N())
	h.Apply(x, b)
	ax := make([]float64, g.N())
	g.LapMul(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-8 {
			t.Fatalf("direct solve residual[%d] = %v", i, ax[i]-b[i])
		}
	}
}

func TestHierarchyDisconnectedGraph(t *testing.T) {
	// Two separate grids in one graph: the hierarchy must build (per-
	// component pinning at the coarse level) and PCG must converge for a
	// right-hand side that is mean-free per component.
	a := workload.Grid2D(8, 8, workload.Lognormal(1), 1)
	edges := a.Edges()
	off := a.N()
	for _, e := range a.Edges() {
		edges = append(edges, hcdEdge(e.U+off, e.V+off, e.W))
	}
	g := mustGraph(2*a.N(), edges)
	opt := DefaultOptions()
	opt.DirectLimit = 30
	h, err := New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, g.N())
	for comp := 0; comp < 2; comp++ {
		s := 0.0
		for v := 0; v < a.N(); v++ {
			b[comp*a.N()+v] = rng.NormFloat64()
			s += b[comp*a.N()+v]
		}
		for v := 0; v < a.N(); v++ {
			b[comp*a.N()+v] -= s / float64(a.N())
		}
	}
	res := solver.PCG(solver.LapOperator(g), h, b, solver.DefaultOptions())
	if !res.Converged {
		t.Fatalf("disconnected solve did not converge (%d iters)", res.Iterations)
	}
	ax := make([]float64, g.N())
	g.LapMul(ax, res.X)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("residual[%d] = %v", i, ax[i]-b[i])
		}
	}
}

func TestHierarchyOptionsValidation(t *testing.T) {
	g := workload.Grid2D(4, 4, nil, 1)
	opt := DefaultOptions()
	opt.SizeCap = 1
	if _, err := New(g, opt); err == nil {
		t.Error("SizeCap 1 accepted")
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func BenchmarkHierarchyApply(b *testing.B) {
	g := workload.Grid3D(20, 20, 20, workload.Lognormal(1), 1)
	h, err := New(g, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r := meanFree(rng, g.N())
	x := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Apply(x, r)
	}
}

func BenchmarkHierarchyPCGSolve(b *testing.B) {
	g := workload.OCT3D(16, 16, 16, workload.DefaultOCTOptions())
	h, err := New(g, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	rhs := meanFree(rng, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.PCG(solver.LapOperator(g), h, rhs, solver.DefaultOptions())
	}
}
