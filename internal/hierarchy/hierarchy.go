// Package hierarchy implements the recursive construction the paper sketches
// at the end of Section 1.1 and Remark 3: applying the Section 3.1
// clustering recursively yields a laminar decomposition and a hierarchy of
// Steiner preconditioners — the precursor of combinatorial multigrid (CMG).
//
// Each level stores its graph, a [φ, 2] clustering of it, and the quotient.
// The apply uses the exact two-level identity B⁺r = D⁻¹r + R·Q⁺(Rᵀr) with
// the quotient solve replaced by the next level's apply; the coarsest level
// is solved directly. An optional damped-Jacobi pre/post smoothing pair
// turns the pure recursion into a symmetric V-cycle.
package hierarchy

import (
	"context"
	"fmt"
	"sync"

	"hcd/internal/decomp"
	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// Options configures the hierarchy.
type Options struct {
	SizeCap     int   // cluster size cap per level (≥ 2)
	Seed        int64 // perturbation seed for the clusterings
	DirectLimit int   // coarsest-level size solved densely
	MaxLevels   int   // hard cap on depth
	Smooth      int   // damped-Jacobi pre/post smoothing sweeps per level
	// Shards splits each level's clustering into that many concurrently
	// built vertex-range shards while the level graph is large enough
	// (≥ shardMinVertices); smaller levels always build single-pass. 0 or 1
	// keeps every level single-pass (bit-identical to pre-shard builds).
	Shards int
}

// shardMinVertices gates per-level sharding: below this size a level's
// clustering is cheap enough that shard bookkeeping (partition + stitch)
// costs more than the fan-out saves.
const shardMinVertices = 1 << 15

// DefaultOptions: clusters of ~4, 600-vertex coarse solves, one smoothing
// sweep.
func DefaultOptions() Options {
	return Options{SizeCap: 4, Seed: 1, DirectLimit: 600, MaxLevels: 40, Smooth: 1}
}

// Level is one layer of the laminar decomposition.
type Level struct {
	G      *graph.Graph
	D      *decomp.Decomposition
	dInv   []float64
	smooth int
	// order/start: vertices sorted by cluster, for the conflict-free
	// parallel restriction (segmented sums).
	order, start []int
}

// Hierarchy is a multilevel Steiner preconditioner.
type Hierarchy struct {
	levels  []*Level
	coarseG *graph.Graph
	coarse  *dense.PinnedLaplacian
	cbuf    []float64
	// Apply state: pooled per-apply work buffers shared by the scalar and
	// block cycles, and a lock serializing the coarse factorization's
	// internal scratch. Both make concurrent Apply/ApplyBlock calls on one
	// Hierarchy safe — the server's pooled engines solve through a shared
	// Hierarchy from several goroutines at once.
	bwPool   sync.Pool
	coarseMu sync.Mutex
}

// New builds the hierarchy for g.
func New(g *graph.Graph, opt Options) (*Hierarchy, error) {
	return NewCtx(context.Background(), g, opt)
}

// NewCtx is New under a context: the per-level clustering polls cancellation
// and the level loop checks once per level, so a cancelled setup returns an
// error wrapping decomp.ErrBuildCancelled promptly (the final dense coarse
// factorization runs to completion once reached).
//
// A panic during setup — including worker panics surfaced by internal/par —
// is recovered and returned as an error. A clustering that produces no
// vertex reduction on a still-large graph (a degenerate or corrupted build)
// is rejected with an error rather than handed to the dense coarse
// factorization, whose O(n³) cost on an unreduced graph would be a far worse
// failure than an explicit one.
func NewCtx(ctx context.Context, g *graph.Graph, opt Options) (h *Hierarchy, err error) {
	defer func() {
		if v := recover(); v != nil {
			h, err = nil, fmt.Errorf("hierarchy: panic during setup: %w", par.AsError(v))
		}
	}()
	if opt.SizeCap < 2 {
		return nil, fmt.Errorf("hierarchy: SizeCap must be ≥ 2")
	}
	if opt.DirectLimit < 1 {
		opt.DirectLimit = 1
	}
	ctx, hsp := obs.StartSpan(ctx, "hierarchy/build")
	defer hsp.End()
	h = &Hierarchy{}
	cur := g
	for level := 0; cur.N() > opt.DirectLimit && level < opt.MaxLevels; level++ {
		if ctx.Err() != nil {
			return nil, decomp.Cancelled(ctx)
		}
		lctx := ctx
		var lsp *obs.Span
		if hsp != nil {
			lctx, lsp = obs.StartSpan(ctx, fmt.Sprintf("hierarchy/level-%d", level))
			lsp.Arg("vertices", cur.N())
		}
		var d *decomp.Decomposition
		var err error
		if opt.Shards > 1 && cur.N() >= shardMinVertices {
			d, _, err = decomp.FixedDegreeShardedCtx(lctx, cur, opt.SizeCap, opt.Seed+int64(level), opt.Shards)
		} else {
			d, err = decomp.FixedDegreeCtx(lctx, cur, opt.SizeCap, opt.Seed+int64(level))
		}
		lsp.End()
		if err != nil {
			return nil, fmt.Errorf("hierarchy: level %d clustering failed: %w", level, err)
		}
		if d.Count >= cur.N() {
			// No reduction possible (e.g. all isolated vertices). Tolerable
			// only if the graph is already near the direct-solve size;
			// otherwise the "coarse" solve would densely factorize an
			// essentially unreduced graph.
			if cur.N() > 4*opt.DirectLimit {
				return nil, fmt.Errorf("hierarchy: level %d clustering produced no reduction (%d clusters on %d vertices, direct limit %d)",
					level, d.Count, cur.N(), opt.DirectLimit)
			}
			break
		}
		h.levels = append(h.levels, newLevel(cur, d, opt.Smooth))
		cur = cur.Contract(d.Assign, d.Count)
	}
	if err := h.finish(cur); err != nil {
		return nil, err
	}
	if hsp != nil {
		hsp.Arg("levels", len(h.levels))
		hsp.Arg("coarse_size", cur.N())
	}
	return h, nil
}

// newLevel materializes one layer: the diagonal inverse and the
// cluster-sorted vertex order for the conflict-free parallel restriction.
// Apply scratch is not stored here — it lives in pooled per-apply
// workspaces so concurrent applies never share buffers.
func newLevel(cur *graph.Graph, d *decomp.Decomposition, smooth int) *Level {
	l := &Level{
		G: cur, D: d, smooth: smooth,
		dInv: make([]float64, cur.N()),
	}
	for v := 0; v < cur.N(); v++ {
		if vol := cur.Vol(v); vol > 0 {
			l.dInv[v] = 1 / vol
		}
	}
	l.start = make([]int, d.Count+1)
	for _, c := range d.Assign {
		l.start[c+1]++
	}
	for c := 0; c < d.Count; c++ {
		l.start[c+1] += l.start[c]
	}
	l.order = make([]int, cur.N())
	fill := append([]int(nil), l.start[:d.Count]...)
	for v, c := range d.Assign {
		l.order[fill[c]] = v
		fill[c]++
	}
	return l
}

// finish installs the coarsest graph and its dense pinned factorization.
func (h *Hierarchy) finish(cur *graph.Graph) error {
	h.coarseG = cur
	comp, ncomp := cur.Components()
	lap := dense.FromRowMajor(cur.N(), cur.N(), cur.LapDense())
	pin, err := dense.NewPinnedLaplacian(lap, comp, ncomp)
	if err != nil {
		return fmt.Errorf("hierarchy: coarse factorization failed: %w", err)
	}
	h.coarse = pin
	h.cbuf = make([]float64, cur.N())
	return nil
}

// Depth returns the number of clustering levels (excluding the direct
// coarse solve).
func (h *Hierarchy) Depth() int { return len(h.levels) }

// CoarseSize returns the size of the directly solved coarsest graph.
func (h *Hierarchy) CoarseSize() int { return h.coarseG.N() }

// LevelSizes returns the vertex counts down the hierarchy, coarsest last.
func (h *Hierarchy) LevelSizes() []int {
	sizes := make([]int, 0, len(h.levels)+1)
	for _, l := range h.levels {
		sizes = append(sizes, l.G.N())
	}
	return append(sizes, h.coarseG.N())
}

// MemoryBytes estimates the resident size of the hierarchy: every level's
// graph, clustering and work buffers, plus the dense coarse factorization.
// It is the accounting figure behind the serving layer's byte-budgeted
// handle cache, not an exact heap measurement.
func (h *Hierarchy) MemoryBytes() int64 {
	var b int64
	for _, l := range h.levels {
		b += l.G.Bytes()
		b += 8 * int64(len(l.dInv)+len(l.order)+len(l.start))
		// The clustering's assignment vector, plus one pooled apply
		// workspace's per-level share (two n-vectors, two quotient vectors).
		b += 8 * int64(3*l.G.N()+2*l.D.Count)
	}
	if h.coarseG != nil {
		cn := int64(h.coarseG.N())
		b += h.coarseG.Bytes() + 8*cn*cn
	}
	b += 8 * int64(len(h.cbuf))
	return b
}

// Dim returns the fine-level dimension.
func (h *Hierarchy) Dim() int {
	if len(h.levels) == 0 {
		return h.coarseG.N()
	}
	return h.levels[0].G.N()
}

// Apply computes dst ≈ B⁺·r multilevel-recursively. It is a fixed symmetric
// positive semidefinite linear operator, hence a valid stationary PCG
// preconditioner. Work buffers come from the hierarchy's apply pool and the
// coarse direct solve is serialized, so Apply is safe for concurrent use —
// and, because every sweep is elementwise or a fixed-order segmented sum,
// bit-identical at any worker count.
func (h *Hierarchy) Apply(dst, r []float64) {
	w, _ := h.bwPool.Get().(*blockWork)
	if w == nil {
		w = &blockWork{}
	}
	for len(w.rq) < len(h.levels) {
		w.rq = append(w.rq, nil)
		w.xq = append(w.xq, nil)
		w.tmp = append(w.tmp, nil)
		w.tmp2 = append(w.tmp2, nil)
	}
	h.applyLevel(0, dst, r, w)
	h.bwPool.Put(w)
}

func (h *Hierarchy) applyLevel(level int, dst, r []float64, w *blockWork) {
	if level == len(h.levels) {
		// The dense solver owns internal scratch; the lock keeps concurrent
		// applies out of it.
		h.coarseMu.Lock()
		h.coarse.Solve(dst, r)
		h.coarseMu.Unlock()
		return
	}
	l := h.levels[level]
	n := l.G.N()
	rq := growBuf(&w.rq[level], l.D.Count)
	xq := growBuf(&w.xq[level], l.D.Count)
	if l.smooth == 0 {
		// Pure Steiner recursion: dst = D⁻¹r + R·coarse(Rᵀr).
		restrict(l, r, rq)
		h.applyLevel(level+1, xq, rq, w)
		par.For(n, elemGrain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				dst[v] = r[v]*l.dInv[v] + xq[l.D.Assign[v]]
			}
		})
		return
	}
	// Symmetric V-cycle: damped-Jacobi pre-smooth (from zero), coarse
	// correction, damped-Jacobi post-smooth. ω = 1/2 keeps I − ωD⁻¹A PSD
	// since λmax(D⁻¹A) ≤ 2, so the cycle is SPD. The elementwise sweeps are
	// row-independent and fan out across cores alongside the parallel
	// LapMul matvec.
	const omega = 0.5
	x := dst
	tmp := growBuf(&w.tmp[level], n)
	tmp2 := growBuf(&w.tmp2[level], n)
	par.For(n, elemGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			x[v] = omega * r[v] * l.dInv[v]
		}
	})
	for s := 1; s < l.smooth; s++ {
		l.G.LapMul(tmp, x)
		par.For(n, elemGrain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				x[v] += omega * (r[v] - tmp[v]) * l.dInv[v]
			}
		})
	}
	l.G.LapMul(tmp, x)
	par.For(n, elemGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			tmp[v] = r[v] - tmp[v]
		}
	})
	restrict(l, tmp, rq)
	h.applyLevel(level+1, xq, rq, w)
	par.For(n, elemGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			x[v] += xq[l.D.Assign[v]]
		}
	})
	for s := 0; s < l.smooth; s++ {
		l.G.LapMul(tmp2, x)
		par.For(n, elemGrain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				x[v] += omega * (r[v] - tmp2[v]) * l.dInv[v]
			}
		})
	}
}

// elemGrain is the minimum per-chunk size for the elementwise sweeps above;
// below it par.For degrades to one sequential call.
const elemGrain = 8192

// restrict computes rq = Rᵀr: each cluster sums its members in the fixed
// cluster-sorted order, so the result does not depend on worker chunking.
func restrict(l *Level, r, rq []float64) {
	par.For(l.D.Count, 512, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			acc := 0.0
			for i := l.start[c]; i < l.start[c+1]; i++ {
				acc += r[l.order[i]]
			}
			rq[c] = acc
		}
	})
}
