// Package randwalk implements the random-walk machinery motivating the
// paper's Section 4: the transition operator P = W·D⁻¹ on probability
// distributions, t-step evolutions and distribution mixtures (computable in
// O(t·m) total, the paper's "global" alternative to per-vertex walks), lazy
// walks, and per-cluster escape-mass measurements — the "particles get
// trapped in high-conductance clusters" phenomenon that [φ, γ]
// decompositions formalize.
package randwalk

import (
	"fmt"
	"math"

	"hcd/internal/decomp"
	"hcd/internal/graph"
)

// Walk evolves probability distributions under the natural random walk of a
// graph: from vertex v, move to neighbor u with probability w(u,v)/vol(v).
type Walk struct {
	g    *graph.Graph
	vol  []float64
	lazy float64 // probability of staying put (0 = pure walk, 0.5 = lazy)
	buf  []float64
}

// New returns a walk on g. laziness ∈ [0, 1) is the per-step holding
// probability; 0.5 gives the standard lazy walk whose spectrum is
// nonnegative.
func New(g *graph.Graph, laziness float64) (*Walk, error) {
	if laziness < 0 || laziness >= 1 {
		return nil, fmt.Errorf("randwalk: laziness %v outside [0,1)", laziness)
	}
	return &Walk{g: g, vol: g.Volumes(), lazy: laziness, buf: make([]float64, g.N())}, nil
}

// Step advances the distribution p by one step into dst (they must not
// alias). Isolated vertices hold their mass.
func (w *Walk) Step(dst, p []float64) {
	n := w.g.N()
	if len(dst) != n || len(p) != n {
		panic("randwalk: Step shape mismatch")
	}
	for u := 0; u < n; u++ {
		acc := w.lazy * p[u]
		nbr, wt := w.g.Neighbors(u)
		for i, v := range nbr {
			acc += (1 - w.lazy) * wt[i] / w.vol[v] * p[v]
		}
		if w.vol[u] == 0 {
			acc = p[u]
		}
		dst[u] = acc
	}
}

// Evolve advances p by t steps in place and returns it.
func (w *Walk) Evolve(p []float64, t int) []float64 {
	for s := 0; s < t; s++ {
		w.Step(w.buf, p)
		copy(p, w.buf)
	}
	return p
}

// Dirac returns the point distribution at v.
func (w *Walk) Dirac(v int) []float64 {
	p := make([]float64, w.g.N())
	p[v] = 1
	return p
}

// Stationary returns the stationary distribution π = vol/Σvol of the walk
// (any laziness), or an error on a volume-free graph.
func (w *Walk) Stationary() ([]float64, error) {
	total := 0.0
	for _, v := range w.vol {
		total += v
	}
	if total == 0 {
		return nil, fmt.Errorf("randwalk: graph has no edges")
	}
	pi := make([]float64, len(w.vol))
	for i, v := range w.vol {
		pi[i] = v / total
	}
	return pi, nil
}

// Mixture builds the weighted mixture Σ aᵥ·eᵥ of point distributions and
// normalizes it to total mass 1. Weights must be nonnegative with positive
// sum. Evolving the mixture costs the same as evolving one distribution —
// the paper's observation that arbitrary mixtures of t-step walks are
// computable in time linear in t and m.
func (w *Walk) Mixture(weights map[int]float64) ([]float64, error) {
	p := make([]float64, w.g.N())
	total := 0.0
	for v, a := range weights {
		if v < 0 || v >= w.g.N() {
			return nil, fmt.Errorf("randwalk: vertex %d out of range", v)
		}
		if a < 0 {
			return nil, fmt.Errorf("randwalk: negative mixture weight at %d", v)
		}
		p[v] += a
		total += a
	}
	if total <= 0 {
		return nil, fmt.Errorf("randwalk: mixture has no mass")
	}
	for i := range p {
		p[i] /= total
	}
	return p, nil
}

// ClusterMass returns the probability mass inside each cluster of d.
func ClusterMass(d *decomp.Decomposition, p []float64) []float64 {
	mass := make([]float64, d.Count)
	for v, c := range d.Assign {
		mass[c] += p[v]
	}
	return mass
}

// EscapeProfile starts the walk from the stationary distribution restricted
// to cluster c and returns the mass remaining in c after 0..t steps. For a
// cluster with boundary/volume ratio ψ = out(C)/vol(C), the retained mass
// after t steps of the (1−lazy)-speed walk is at least 1 − (1−lazy)·t·ψ —
// the trapping bound the experiments check.
func (w *Walk) EscapeProfile(d *decomp.Decomposition, c int, t int) ([]float64, error) {
	if c < 0 || c >= d.Count {
		return nil, fmt.Errorf("randwalk: cluster %d out of range", c)
	}
	p := make([]float64, w.g.N())
	total := 0.0
	for v, cv := range d.Assign {
		if cv == c {
			p[v] = w.vol[v]
			total += w.vol[v]
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("randwalk: cluster %d has zero volume", c)
	}
	for i := range p {
		p[i] /= total
	}
	profile := make([]float64, 0, t+1)
	profile = append(profile, 1)
	for s := 0; s < t; s++ {
		w.Step(w.buf, p)
		copy(p, w.buf)
		in := 0.0
		for v, cv := range d.Assign {
			if cv == c {
				in += p[v]
			}
		}
		profile = append(profile, in)
	}
	return profile, nil
}

// BoundaryRatio returns ψ(C) = out(C)/vol(C) for cluster c — the per-step
// escape rate from the stationary restriction.
func BoundaryRatio(d *decomp.Decomposition, c int) float64 {
	var vs []int
	for v, cv := range d.Assign {
		if cv == c {
			vs = append(vs, v)
		}
	}
	vol := d.G.VolSet(vs)
	if vol == 0 {
		return math.Inf(1)
	}
	return d.G.Out(vs) / vol
}

// WalkEmbedding implements the "global" program sketched at the end of the
// paper's introduction and in Section 4: evolve k random mean-free mixtures
// Σ aᵥ·eᵥ for t steps (O(t·m) each) and read off the volume-normalized
// coordinates xⱼ(v) = (Pᵗ wⱼ)(v)/vol(v). After t = O(log n) steps the
// coordinates are dominated by the low eigenvectors of the normalized
// Laplacian, which Theorem 4.1 shows are nearly cluster-wise constant — so
// vertices of one high-conductance cluster land close together in the
// embedding. Returns k coordinate vectors of length n.
func WalkEmbedding(g *graph.Graph, k, t int, laziness float64, seed int64) ([][]float64, error) {
	if k < 1 || t < 0 {
		return nil, fmt.Errorf("randwalk: bad embedding parameters k=%d t=%d", k, t)
	}
	w, err := New(g, laziness)
	if err != nil {
		return nil, err
	}
	rng := newSplitMix(seed)
	n := g.N()
	out := make([][]float64, k)
	for j := 0; j < k; j++ {
		p := make([]float64, n)
		mean := 0.0
		for v := 0; v < n; v++ {
			p[v] = rng.norm()
			mean += p[v]
		}
		for v := range p {
			p[v] -= mean / float64(n)
		}
		w.Evolve(p, t)
		for v := 0; v < n; v++ {
			if w.vol[v] > 0 {
				p[v] /= w.vol[v]
			}
		}
		out[j] = p
	}
	return out, nil
}

// splitMix is a tiny deterministic normal sampler (sum of 12 uniforms),
// avoiding a math/rand dependency in the hot path.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{s: uint64(seed)*2862933555777941757 + 1} }

func (r *splitMix) next() float64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func (r *splitMix) norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.next()
	}
	return s - 6
}

// TotalVariation returns ½‖p − q‖₁.
func TotalVariation(p, q []float64) float64 {
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}
