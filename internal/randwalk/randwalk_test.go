package randwalk

import (
	"math"
	"testing"

	"hcd/internal/decomp"
	"hcd/internal/graph"
	"hcd/internal/workload"
)

func sum(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

func TestStepPreservesMass(t *testing.T) {
	g := workload.Grid2D(8, 8, workload.Lognormal(1), 1)
	for _, lazy := range []float64{0, 0.5, 0.9} {
		w, err := New(g, lazy)
		if err != nil {
			t.Fatal(err)
		}
		p := w.Dirac(13)
		for s := 0; s < 20; s++ {
			w.Evolve(p, 1)
			if math.Abs(sum(p)-1) > 1e-12 {
				t.Fatalf("lazy=%v step %d: mass %v", lazy, s, sum(p))
			}
			for _, v := range p {
				if v < -1e-15 {
					t.Fatalf("negative probability %v", v)
				}
			}
		}
	}
}

func TestLazinessValidation(t *testing.T) {
	g := workload.Grid2D(3, 3, nil, 1)
	if _, err := New(g, -0.1); err == nil {
		t.Error("negative laziness accepted")
	}
	if _, err := New(g, 1); err == nil {
		t.Error("laziness 1 accepted")
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	g := workload.Grid2D(6, 6, workload.Lognormal(1), 2)
	w, _ := New(g, 0)
	pi, err := w.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	next := make([]float64, g.N())
	w.Step(next, pi)
	for i := range pi {
		if math.Abs(next[i]-pi[i]) > 1e-12 {
			t.Fatalf("π not fixed at %d: %v vs %v", i, next[i], pi[i])
		}
	}
}

func TestLazyWalkConvergesToStationary(t *testing.T) {
	g := workload.Grid2D(6, 6, nil, 1)
	w, _ := New(g, 0.5)
	pi, _ := w.Stationary()
	p := w.Dirac(0)
	w.Evolve(p, 2000)
	if tv := TotalVariation(p, pi); tv > 1e-6 {
		t.Errorf("TV distance to stationary after mixing: %v", tv)
	}
}

func TestMixtureLinearity(t *testing.T) {
	// Evolving a mixture must equal mixing the evolutions.
	g := workload.Grid2D(7, 7, workload.Lognormal(1), 3)
	w, _ := New(g, 0)
	mix, err := w.Mixture(map[int]float64{3: 1, 17: 3})
	if err != nil {
		t.Fatal(err)
	}
	w.Evolve(mix, 5)
	p1 := w.Evolve(w.Dirac(3), 5)
	p2 := w.Evolve(w.Dirac(17), 5)
	for i := range mix {
		want := 0.25*p1[i] + 0.75*p2[i]
		if math.Abs(mix[i]-want) > 1e-12 {
			t.Fatalf("mixture not linear at %d: %v vs %v", i, mix[i], want)
		}
	}
}

func TestMixtureValidation(t *testing.T) {
	g := workload.Grid2D(3, 3, nil, 1)
	w, _ := New(g, 0)
	if _, err := w.Mixture(map[int]float64{99: 1}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := w.Mixture(map[int]float64{1: -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := w.Mixture(map[int]float64{}); err == nil {
		t.Error("empty mixture accepted")
	}
}

func TestEscapeProfileTrappingBound(t *testing.T) {
	// Mass retained in a cluster after t steps from the stationary
	// restriction: retained(t) ≥ 1 − t·ψ(C) where ψ = out/vol.
	g := workload.OCT3D(6, 6, 12, workload.DefaultOCTOptions())
	d, err := decomp.FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := New(g, 0)
	steps := 8
	for c := 0; c < d.Count; c += maxInt(1, d.Count/10) {
		profile, err := w.EscapeProfile(d, c, steps)
		if err != nil {
			t.Fatal(err)
		}
		psi := BoundaryRatio(d, c)
		for s, retained := range profile {
			lower := 1 - float64(s)*psi
			if retained < lower-1e-9 {
				t.Fatalf("cluster %d step %d: retained %v < bound %v (ψ=%v)",
					c, s, retained, lower, psi)
			}
		}
		if profile[0] != 1 {
			t.Fatalf("profile must start at 1")
		}
	}
}

func TestOneStepEscapeIsExactlyBoundaryRatio(t *testing.T) {
	// From the stationary restriction to C, the mass leaving in one step is
	// exactly ψ(C) = out(C)/vol(C): each v ∈ C holds vol(v)/vol(C) and
	// sends fraction w(v,u)/vol(v) across each boundary edge.
	g := workload.Grid2D(10, 10, workload.Lognormal(1.5), 9)
	d, err := decomp.FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := New(g, 0)
	for c := 0; c < d.Count; c++ {
		profile, err := w.EscapeProfile(d, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		psi := BoundaryRatio(d, c)
		if math.Abs(profile[1]-(1-psi)) > 1e-12 {
			t.Fatalf("cluster %d: one-step retention %v, want exactly %v",
				c, profile[1], 1-psi)
		}
	}
}

func TestClusterMassSumsToOne(t *testing.T) {
	g := workload.Grid2D(6, 6, nil, 1)
	d, err := decomp.FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := New(g, 0)
	p := w.Evolve(w.Dirac(7), 3)
	mass := ClusterMass(d, p)
	if math.Abs(sum(mass)-1) > 1e-12 {
		t.Errorf("cluster masses sum to %v", sum(mass))
	}
}

func TestWalkEmbeddingSeparatesPlantedBlocks(t *testing.T) {
	// Two dense blocks joined lightly: after mixing inside blocks, each
	// embedding coordinate must be nearly constant within a block —
	// within-block variance far below the overall variance.
	var es []graph.Edge
	s := 16
	for b := 0; b < 2; b++ {
		for i := 0; i < s; i++ {
			es = append(es, graph.Edge{U: b*s + i, V: b*s + (i+1)%s, W: 1})
			es = append(es, graph.Edge{U: b*s + i, V: b*s + (i+s/2)%s, W: 1})
		}
	}
	es = append(es, graph.Edge{U: 0, V: s, W: 0.01})
	g := graph.MustFromEdges(2*s, es)
	coords, err := WalkEmbedding(g, 4, 60, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for j, x := range coords {
		within := blockVariance(x[:s]) + blockVariance(x[s:])
		overall := blockVariance(x)
		if overall < 1e-18 {
			continue // the probe happened to be block-symmetric
		}
		if within > 0.05*overall {
			t.Errorf("dim %d: within-block variance %v vs overall %v", j, within, overall)
		}
	}
}

func blockVariance(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs))
}

func TestWalkEmbeddingValidation(t *testing.T) {
	g := workload.Grid2D(3, 3, nil, 1)
	if _, err := WalkEmbedding(g, 0, 5, 0.5, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := WalkEmbedding(g, 1, -1, 0.5, 1); err == nil {
		t.Error("t<0 accepted")
	}
	coords, err := WalkEmbedding(g, 2, 3, 0.5, 1)
	if err != nil || len(coords) != 2 || len(coords[0]) != 9 {
		t.Errorf("shape wrong: %v %v", len(coords), err)
	}
	// Determinism.
	again, _ := WalkEmbedding(g, 2, 3, 0.5, 1)
	for j := range coords {
		for v := range coords[j] {
			if coords[j][v] != again[j][v] {
				t.Fatal("embedding not deterministic")
			}
		}
	}
}

func TestIsolatedVertexHoldsMass(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}})
	w, _ := New(g, 0)
	p := w.Dirac(2)
	w.Evolve(p, 5)
	if p[2] != 1 {
		t.Errorf("isolated vertex lost mass: %v", p[2])
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkWalkStepGrid(b *testing.B) {
	g := workload.Grid3D(20, 20, 20, workload.Lognormal(1), 1)
	w, _ := New(g, 0.5)
	p := w.Dirac(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Evolve(p, 1)
	}
}
