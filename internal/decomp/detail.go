package decomp

import (
	"fmt"
	"math"
	"sort"

	"hcd/internal/graph"
)

// ClusterStats describes one cluster of a decomposition in the terms the
// paper uses.
type ClusterStats struct {
	ID            int
	Size          int
	Vol           float64 // total volume of the cluster's vertices in G
	Out           float64 // total boundary weight out(C)
	BoundaryRatio float64 // ψ(C) = out/vol (the random-walk escape rate)
	Phi           float64 // closure conductance
	PhiExact      bool
	GammaMin      float64 // min over v of cap(v, C−v)/vol(v); 0 for singletons
}

// Details computes per-cluster statistics, sorted by ascending closure
// conductance (the problematic clusters first). Clusters of at most
// exactLimit core vertices are measured exactly by the stub-aware certifier.
func Details(d *Decomposition, exactLimit int) []ClusterStats {
	clusters := d.Clusters()
	out := make([]ClusterStats, len(clusters))
	cert := graph.NewCertifier(d.G)
	var cb *graph.ClosureBuilder
	for c, vs := range clusters {
		st := ClusterStats{ID: c, Size: len(vs), GammaMin: math.Inf(1)}
		st.Vol = d.G.VolSet(vs)
		st.Out = d.G.Out(vs)
		if st.Vol > 0 {
			st.BoundaryRatio = st.Out / st.Vol
		}
		if len(vs) <= exactLimit && len(vs) <= graph.MaxExactConductance {
			st.Phi = mustClusterPhi(cert, vs)
			st.PhiExact = true
		} else {
			if cb == nil {
				cb = graph.NewClosureBuilder(d.G)
			}
			st.Phi = mustBuilderClosure(cb, vs).ConductanceUpperBound()
		}
		in := make(map[int]bool, len(vs))
		for _, v := range vs {
			in[v] = true
		}
		if len(vs) == 1 {
			st.GammaMin = 0
		} else {
			for _, v := range vs {
				nbr, w := d.G.Neighbors(v)
				inside := 0.0
				for i, u := range nbr {
					if in[u] {
						inside += w[i]
					}
				}
				if g := inside / d.G.Vol(v); g < st.GammaMin {
					st.GammaMin = g
				}
			}
		}
		out[c] = st
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phi < out[j].Phi })
	return out
}

// String renders one cluster's statistics.
func (s ClusterStats) String() string {
	exact := "~"
	if s.PhiExact {
		exact = "="
	}
	return fmt.Sprintf("cluster %d: size=%d vol=%.4g out=%.4g ψ=%.4f φ%s%.4f γ=%.4f",
		s.ID, s.Size, s.Vol, s.Out, s.BoundaryRatio, exact, s.Phi, s.GammaMin)
}
