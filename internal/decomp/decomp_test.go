package decomp

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/mst"
	"hcd/internal/treealg"
	"hcd/internal/workload"
)

// phiFloor is the closure conductance our tree construction certifies. The
// paper states 1/2; the local cut analysis of its construction yields 1/3 in
// the worst case (see tree.go), and measured values on random weights are
// typically ≥ 1/2.
const phiFloor = 1.0/3.0 - 1e-9

func evalExact(t *testing.T, d *Decomposition) Report {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid decomposition: %v", err)
	}
	r := Evaluate(d, graph.MaxExactConductance)
	return r
}

func TestTreeDecompositionTinyTrees(t *testing.T) {
	for n := 0; n <= 3; n++ {
		g := workload.Caterpillar(maxOf(n, 1), 0, nil, 1)
		if n == 0 {
			g = graph.MustFromEdges(0, nil)
		}
		d, err := Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			if d.Count != 0 {
				t.Errorf("n=0: count %d", d.Count)
			}
			continue
		}
		if d.Count != 1 {
			t.Errorf("n=%d: count %d, want 1", n, d.Count)
		}
	}
}

func TestTreeDecompositionPaths(t *testing.T) {
	for _, n := range []int{4, 5, 7, 10, 23, 50, 101} {
		g := workload.Caterpillar(n, 0, nil, 1)
		d, err := Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		r := evalExact(t, d)
		if !r.PhiExact {
			t.Fatalf("n=%d: expected exact conductances", n)
		}
		if r.Phi < phiFloor {
			t.Errorf("n=%d: φ = %v below floor", n, r.Phi)
		}
		if n >= 4 && r.Rho < 6.0/5.0 {
			t.Errorf("n=%d: ρ = %v < 6/5", n, r.Rho)
		}
	}
}

func TestTreeDecompositionStarsAndCaterpillars(t *testing.T) {
	star := workload.Caterpillar(1, 50, nil, 1)
	d, err := Tree(star)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 1 {
		t.Errorf("star should be one cluster, got %d", d.Count)
	}
	cat := workload.Caterpillar(20, 3, workload.UniformWeight(0.1, 10), 7)
	d, err = Tree(cat)
	if err != nil {
		t.Fatal(err)
	}
	r := evalExact(t, d)
	if r.Phi < phiFloor {
		t.Errorf("caterpillar φ = %v", r.Phi)
	}
	if r.Rho < 6.0/5.0 {
		t.Errorf("caterpillar ρ = %v", r.Rho)
	}
}

func TestTreeDecompositionRandomTreesUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	worstPhi, worstRho := math.Inf(1), math.Inf(1)
	for it := 0; it < 60; it++ {
		n := 4 + rng.Intn(150)
		g := treealg.RandomTree(rng, n, nil)
		d, err := Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		r := evalExact(t, d)
		if r.Phi < worstPhi {
			worstPhi = r.Phi
		}
		if r.Rho < worstRho {
			worstRho = r.Rho
		}
		if r.Phi < phiFloor {
			t.Fatalf("n=%d seed-it=%d: φ = %v below floor", n, it, r.Phi)
		}
		if r.Rho < 6.0/5.0 {
			t.Fatalf("n=%d: ρ = %v < 6/5", n, r.Rho)
		}
	}
	// The tight constant of the construction is 1/3, achieved already with
	// unit weights: for a hanging unit 3-chain v–u1–u2–u3 every feasible
	// local partition (whole chain, pair+fold, all folded) has a cut of
	// sparsity exactly 1/3, so the paper's stated 1/2 is not attainable.
	// See EXPERIMENTS.md E3 for the full discussion.
	if worstPhi < phiFloor {
		t.Errorf("unit-weight worst φ = %v below certified 1/3", worstPhi)
	}
	_ = worstRho
}

func TestTreeDecompositionRandomWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for it := 0; it < 60; it++ {
		n := 4 + rng.Intn(120)
		g := treealg.RandomTree(rng, n, func() float64 {
			return math.Exp(rng.NormFloat64() * 2) // heavy-tailed weights
		})
		d, err := Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		r := evalExact(t, d)
		if r.Phi < phiFloor {
			t.Fatalf("n=%d it=%d: φ = %v below certified floor", n, it, r.Phi)
		}
		if r.Rho < 6.0/5.0 {
			t.Fatalf("n=%d it=%d: ρ = %v < 6/5", n, it, r.Rho)
		}
	}
}

func TestTreeDecompositionForest(t *testing.T) {
	// Two trees: a 10-path and a 7-star, plus an isolated vertex.
	var es []graph.Edge
	for i := 0; i < 9; i++ {
		es = append(es, graph.Edge{U: i, V: i + 1, W: 1})
	}
	for i := 11; i < 17; i++ {
		es = append(es, graph.Edge{U: 10, V: i, W: 2})
	}
	g := graph.MustFromEdges(18, es)
	d, err := Tree(g)
	if err != nil {
		t.Fatal(err)
	}
	r := evalExact(t, d)
	if r.Phi < phiFloor {
		t.Errorf("forest φ = %v", r.Phi)
	}
	// No cluster may span components.
	label, _ := g.Components()
	compOf := make(map[int]int)
	for v, c := range d.Assign {
		if prev, ok := compOf[c]; ok && prev != label[v] {
			t.Fatalf("cluster %d spans components", c)
		}
		compOf[c] = label[v]
	}
}

func TestTreeRejectsCycles(t *testing.T) {
	cyc := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}})
	if _, err := Tree(cyc); err == nil {
		t.Error("cycle accepted")
	}
}

func TestFixedDegreeGrid(t *testing.T) {
	g := workload.Grid3D(8, 8, 8, workload.Lognormal(1), 3)
	d, err := FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	r := Evaluate(d, graph.MaxExactConductance)
	if r.Rho < 2 {
		t.Errorf("ρ = %v < 2", r.Rho)
	}
	if r.Singletons != 0 {
		t.Errorf("%d singleton clusters", r.Singletons)
	}
	// Paper bound for d=6, k=4 is 1/(2·36·4) ≈ 0.0035; in practice much
	// better. Require the certified paper bound.
	dmax := g.MaxDegree()
	bound := 1.0 / (2 * float64(dmax*dmax) * float64(r.MaxClusterSize))
	if r.Phi < bound {
		t.Errorf("φ = %v below paper bound %v", r.Phi, bound)
	}
}

func TestFixedDegreeRegular(t *testing.T) {
	g, err := workload.RandomRegular(200, 4, workload.UniformWeight(0.5, 5), 9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FixedDegree(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	r := Evaluate(d, graph.MaxExactConductance)
	if r.Rho < 2 || r.Singletons != 0 {
		t.Errorf("ρ=%v singletons=%d", r.Rho, r.Singletons)
	}
	if r.Phi <= 0 {
		t.Errorf("φ = %v", r.Phi)
	}
}

func TestFixedDegreeDeterministic(t *testing.T) {
	g := workload.Grid2D(15, 15, workload.Lognormal(1), 4)
	d1, _ := FixedDegree(g, 4, 7)
	d2, _ := FixedDegree(g, 4, 7)
	for v := range d1.Assign {
		if d1.Assign[v] != d2.Assign[v] {
			t.Fatal("FixedDegree not deterministic under fixed seed")
		}
	}
	d3, _ := FixedDegree(g, 4, 8)
	same := true
	for v := range d1.Assign {
		if d1.Assign[v] != d3.Assign[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical clustering (suspicious)")
	}
}

func TestFixedDegreeUniformTies(t *testing.T) {
	// Unit weights everywhere: only the perturbation breaks ties. The
	// forest property must still hold (this is ablation A2's premise).
	g := workload.Grid2D(20, 20, nil, 1)
	d, err := FixedDegree(g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := Evaluate(d, graph.MaxExactConductance); r.Rho < 2 {
		t.Errorf("ρ = %v", r.Rho)
	}
}

func TestFixedDegreeSizeCapValidation(t *testing.T) {
	g := workload.Grid2D(4, 4, nil, 1)
	if _, err := FixedDegree(g, 1, 1); err == nil {
		t.Error("sizeCap 1 accepted")
	}
	if _, err := FixedDegree(graph.MustFromEdges(0, nil), 4, 1); err != nil {
		t.Error("empty graph should succeed")
	}
}

func TestSparseCoreOnTreePlusEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 20; it++ {
		n := 30 + rng.Intn(120)
		tree := treealg.RandomTree(rng, n, func() float64 { return 0.1 + 10*rng.Float64() })
		es := tree.Edges()
		// Add ~n/8 extra edges.
		for i := 0; i < n/8; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, graph.Edge{U: u, V: v, W: 0.1 + 10*rng.Float64()})
			}
		}
		b := graph.MustFromEdges(n, es)
		d, stats, err := SparseCore(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		r := Evaluate(d, graph.MaxExactConductance)
		if r.Phi <= 0 {
			t.Fatalf("n=%d: φ = %v", n, r.Phi)
		}
		if r.Rho < 1.1 {
			t.Errorf("n=%d: ρ = %v (stats %+v)", n, r.Rho, stats)
		}
	}
}

func TestSparseCoreCycle(t *testing.T) {
	// A pure cycle has no degree-3 vertex; the representative path trick
	// must still cut it.
	var es []graph.Edge
	n := 30
	for i := 0; i < n; i++ {
		es = append(es, graph.Edge{U: i, V: (i + 1) % n, W: 1 + float64(i%5)})
	}
	g := graph.MustFromEdges(n, es)
	d, stats, err := SparseCore(g)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CutEdges < 1 {
		t.Errorf("no edges cut on a cycle")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := Evaluate(d, graph.MaxExactConductance); r.Phi <= 0 {
		t.Errorf("φ = %v", r.Phi)
	}
}

func TestSparseCoreFallsBackToTree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tree := treealg.RandomTree(rng, 40, nil)
	d, stats, err := SparseCore(tree)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoreSize != 0 || stats.CutEdges != 0 {
		t.Errorf("tree input should bypass the core pipeline: %+v", stats)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCoreRejectsDisconnected(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, _, err := SparseCore(g); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSparseCoreWithMaxSpanningTreeBase(t *testing.T) {
	// Build B = max-weight spanning tree + 10% heaviest off-tree edges of a
	// planar mesh, then check the induced decomposition of the mesh itself.
	g := workload.GridDiag2D(12, 12, workload.Lognormal(1), 5)
	treeEdges := mst.Kruskal(g, mst.Max)
	inTree := make(map[[2]int]bool)
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for _, e := range treeEdges {
		inTree[key(e.U, e.V)] = true
	}
	bEdges := append([]graph.Edge(nil), treeEdges...)
	budget := g.N() / 10
	for _, e := range g.Edges() {
		if budget == 0 {
			break
		}
		if !inTree[key(e.U, e.V)] {
			bEdges = append(bEdges, e)
			budget--
		}
	}
	b := graph.MustFromEdges(g.N(), bEdges)
	d, _, err := SparseCore(b)
	if err != nil {
		t.Fatal(err)
	}
	// Rebind to the original planar graph (Theorem 2.2's final step).
	da, err := Rebind(d, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := da.Validate(); err != nil {
		t.Fatal(err)
	}
	rb := Evaluate(d, graph.MaxExactConductance)
	ra := Evaluate(da, graph.MaxExactConductance)
	if ra.Phi <= 0 {
		t.Errorf("φ in A = %v", ra.Phi)
	}
	if ra.Phi > rb.Phi+1e-9 {
		t.Errorf("conductance should not improve moving from B (%v) to A (%v)", rb.Phi, ra.Phi)
	}
}

func TestEvaluateGamma(t *testing.T) {
	// Cluster {0,1} in a path 0-1-2 with unit weights: vertex 1 keeps 1 of
	// its volume 2 inside → γ = 1/2; vertex 0 keeps everything → γ = 1.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	d := &Decomposition{G: g, Assign: []int{0, 0, 1}, Count: 2}
	r := Evaluate(d, graph.MaxExactConductance)
	if r.GammaMin != 0 { // singleton {2} has γ = 0
		t.Errorf("GammaMin = %v", r.GammaMin)
	}
	if r.Singletons != 1 {
		t.Errorf("Singletons = %d", r.Singletons)
	}
}

// Section 2's lemma: if a cluster's closure has conductance ≥ φ, at most
// one of its vertices can violate cap(v, C−v) ≥ φ·vol(v). We verify it with
// the measured exact φ on random tree decompositions.
func TestAtMostOneGammaViolationPerCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for it := 0; it < 30; it++ {
		n := 5 + rng.Intn(120)
		g := treealg.RandomTree(rng, n, func() float64 {
			return math.Exp(rng.NormFloat64())
		})
		d, err := Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		rep := Evaluate(d, graph.MaxExactConductance)
		if !rep.PhiExact {
			continue
		}
		// Strictly below φ the paper's argument applies; use φ−ε to stay on
		// the safe side of boundary cases.
		if mv := MaxGammaViolations(d, rep.Phi*(1-1e-9)); mv > 1 {
			t.Fatalf("n=%d it=%d: %d γ-violations in one cluster (φ=%v)", n, it, mv, rep.Phi)
		}
	}
}

func TestGammaViolationsCounts(t *testing.T) {
	// Path 0-1-2 clustered as {0,1},{2}: vertex 1 keeps 1/2 of its volume,
	// vertex 0 keeps all, singleton keeps none.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	d := &Decomposition{G: g, Assign: []int{0, 0, 1}, Count: 2}
	viol := GammaViolations(d, 0.75)
	if viol[0] != 1 { // only vertex 1 violates γ=0.75
		t.Errorf("cluster 0 violations = %d, want 1", viol[0])
	}
	if viol[1] != 1 { // the singleton keeps nothing
		t.Errorf("cluster 1 violations = %d, want 1", viol[1])
	}
	if MaxGammaViolations(d, 0.1) != 1 {
		t.Errorf("γ=0.1 violations = %d", MaxGammaViolations(d, 0.1))
	}
}

func TestValidateCatchesBrokenPartitions(t *testing.T) {
	g := workload.Grid2D(3, 3, nil, 1)
	d := &Decomposition{G: g, Assign: []int{0, 0, 0, 1, 1, 1, 2, 2, 5}, Count: 3}
	if err := d.Validate(); err == nil {
		t.Error("out-of-range cluster accepted")
	}
	// Disconnected cluster: two opposite corners.
	d = &Decomposition{G: g, Assign: []int{0, 1, 1, 1, 1, 1, 1, 1, 0}, Count: 2}
	if err := d.Validate(); err == nil {
		t.Error("disconnected cluster accepted")
	}
	// Empty cluster id.
	d = &Decomposition{G: g, Assign: []int{0, 0, 0, 0, 0, 0, 0, 0, 0}, Count: 2}
	if err := d.Validate(); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestAgreementMetrics(t *testing.T) {
	// Identical clusterings: purity 1, Rand 1.
	a := []int{0, 0, 1, 1, 2}
	rep, err := Agreement(a, a)
	if err != nil || rep.Purity != 1 || rep.RandIndex != 1 {
		t.Errorf("identical: %+v err=%v", rep, err)
	}
	// Relabeled clusterings are still perfect.
	b := []int{5, 5, 9, 9, 7}
	rep, _ = Agreement(a, b)
	if rep.Purity != 1 || rep.RandIndex != 1 {
		t.Errorf("relabel: %+v", rep)
	}
	// All-singletons vs all-one-cluster: every a-cluster is trivially pure
	// (purity 1), but every vertex pair disagrees about togetherness
	// (together in b, apart in a) → Rand index 0.
	rep, _ = Agreement([]int{0, 1, 2}, []int{0, 0, 0})
	if rep.Purity != 1 || rep.RandIndex != 0 {
		t.Errorf("singletons-vs-one: %+v", rep)
	}
	// The reverse direction is impure: one a-cluster spans 3 b-clusters.
	rep, _ = Agreement([]int{0, 0, 0}, []int{0, 1, 2})
	if rep.Purity != 1.0/3 || rep.RandIndex != 0 {
		t.Errorf("one-vs-singletons: %+v", rep)
	}
	if _, err := Agreement([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if rep, _ := Agreement(nil, nil); rep.Purity != 1 || rep.RandIndex != 1 {
		t.Errorf("empty agreement: %+v", rep)
	}
}

func TestMergeSingletonsImprovesRho(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for it := 0; it < 10; it++ {
		n := 50 + rng.Intn(200)
		g := treealg.RandomTree(rng, n, func() float64 { return 0.2 + rng.Float64()*5 })
		d, err := Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		before := Evaluate(d, graph.MaxExactConductance)
		minPhi := 1.0 / 3
		md, merges := MergeSingletons(d, minPhi, graph.MaxExactConductance)
		if err := md.Validate(); err != nil {
			t.Fatal(err)
		}
		after := Evaluate(md, graph.MaxExactConductance)
		if after.Rho < before.Rho-1e-12 {
			t.Fatalf("it=%d: ρ decreased %v -> %v", it, before.Rho, after.Rho)
		}
		if merges > 0 && after.Singletons >= before.Singletons {
			t.Fatalf("it=%d: %d merges but singletons %d -> %d",
				it, merges, before.Singletons, after.Singletons)
		}
		// Conductance floor preserved.
		if after.Phi < math.Min(before.Phi, minPhi)-1e-12 {
			t.Fatalf("it=%d: φ dropped below floor: %v -> %v", it, before.Phi, after.Phi)
		}
	}
}

func TestMergeSingletonsNoOpWhenNoSingletons(t *testing.T) {
	g := workload.Grid2D(8, 8, workload.Lognormal(1), 1)
	d, err := FixedDegree(g, 4, 1) // guaranteed singleton-free
	if err != nil {
		t.Fatal(err)
	}
	md, merges := MergeSingletons(d, 0.5, graph.MaxExactConductance)
	if merges != 0 || md.Count != d.Count {
		t.Errorf("unexpected merges: %d (count %d -> %d)", merges, d.Count, md.Count)
	}
}

func TestDetailsConsistentWithEvaluate(t *testing.T) {
	g := workload.Grid2D(10, 10, workload.Lognormal(1), 8)
	d, err := FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(d, graph.MaxExactConductance)
	det := Details(d, graph.MaxExactConductance)
	if len(det) != d.Count {
		t.Fatalf("details for %d clusters, want %d", len(det), d.Count)
	}
	// Sorted ascending by φ; the first entry must match the report's Phi.
	if math.Abs(det[0].Phi-rep.Phi) > 1e-12 {
		t.Errorf("min φ mismatch: details %v vs report %v", det[0].Phi, rep.Phi)
	}
	for i := 1; i < len(det); i++ {
		if det[i].Phi < det[i-1].Phi {
			t.Fatal("details not sorted by φ")
		}
	}
	totalVol := 0.0
	for _, s := range det {
		totalVol += s.Vol
		if s.BoundaryRatio < 0 || s.BoundaryRatio > 1+1e-12 {
			t.Errorf("cluster %d ψ = %v", s.ID, s.BoundaryRatio)
		}
		if s.Size < 1 {
			t.Errorf("cluster %d empty", s.ID)
		}
		if s.String() == "" {
			t.Error("empty string rendering")
		}
	}
	if math.Abs(totalVol-g.TotalVol()) > 1e-9 {
		t.Errorf("cluster volumes sum to %v, want %v", totalVol, g.TotalVol())
	}
}

func TestTreeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for it := 0; it < 20; it++ {
		n := 4 + rng.Intn(400)
		g := treealg.RandomTree(rng, n, func() float64 { return 0.2 + rng.Float64()*5 })
		seq, err := Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		parl, err := TreeParallel(g)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Count != parl.Count {
			t.Fatalf("n=%d: counts differ %d vs %d", n, seq.Count, parl.Count)
		}
		for v := range seq.Assign {
			if seq.Assign[v] != parl.Assign[v] {
				t.Fatalf("n=%d: assignment differs at %d", n, v)
			}
		}
	}
}

func BenchmarkTreeDecomposition(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	g := treealg.RandomTree(rng, 100000, func() float64 { return 0.1 + rng.Float64() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Tree(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedDegreeGrid32(b *testing.B) {
	g := workload.Grid3D(32, 32, 32, workload.Lognormal(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FixedDegree(g, 4, 1); err != nil {
			b.Fatal(err)
		}
	}
}
