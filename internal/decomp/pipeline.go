package decomp

// The build-path counterpart of internal/solver's outcome/metrics machinery:
// a Pipeline runs the named stages of a decomposition construction under a
// context, records per-stage wall time, problem sizes and scratch
// allocations into BuildMetrics, and converts context cancellation into the
// ErrBuildCancelled sentinel so callers can test either errors.Is target.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// ErrBuildCancelled reports that a decomposition build was stopped by its
// context. Errors carrying it also wrap the context's own error, so both
// errors.Is(err, ErrBuildCancelled) and errors.Is(err, context.Canceled)
// (or context.DeadlineExceeded) hold.
var ErrBuildCancelled = errors.New("decomp: build cancelled")

// Cancelled wraps the context's error in ErrBuildCancelled. Call it only
// after observing ctx.Err() != nil.
func Cancelled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrBuildCancelled, ctx.Err())
}

// pollMask bounds the cancellation-check interval of the tight build loops:
// ctx.Err() is consulted every pollMask+1 iterations.
const pollMask = 4095

// poll is the bounded-interval cancellation check for tight loops: it
// consults ctx.Err() once every pollMask+1 values of i and returns the
// ErrBuildCancelled-wrapped error when the context is done.
func poll(ctx context.Context, i int) error {
	if i&pollMask == 0 && ctx.Err() != nil {
		return Cancelled(ctx)
	}
	return nil
}

// Canonical stage names shared by the pipeline builders and their tests.
const (
	StageBaseTree  = "base-tree"       // spanning tree underlying the sparse subgraph
	StageSparsify  = "sparsify"        // stretch-driven off-tree edge selection
	StageCoreCut   = "strip-cut-core"  // degree-1/2 stripping + per-path lightest cut
	StageTree      = "tree-decompose"  // Theorem 2.1 forest decomposition
	StageCluster   = "cluster"         // Section 3.1 fixed-degree clustering
	StagePartition = "shard-partition" // split the vertex range into balanced shards
	StageStitch    = "stitch-boundary" // merge boundary singletons across shards
	StageSpectral  = "spectral-cut"    // recursive sweep-cut baseline
	StageRebind    = "rebind"          // read the partition over the original graph
	StageEvaluate  = "evaluate"        // measure φ, ρ, γ of the result
)

// StageMetrics instruments one pipeline stage, mirroring solver.Metrics on
// the build side.
type StageMetrics struct {
	Name     string
	Duration time.Duration
	// Vertices and Edges describe the stage's output size (what the next
	// stage consumes).
	Vertices, Edges int
	// ScratchAllocs counts heap allocations performed while the stage ran
	// (a mallocs delta, so it includes allocations by concurrent goroutines;
	// on the single-threaded build path it is the stage's own scratch).
	ScratchAllocs int
}

// BuildMetrics aggregates the per-stage costs of one decomposition build.
type BuildMetrics struct {
	Stages    []StageMetrics
	TotalTime time.Duration
	// Cert counts the exact-certification work of the evaluate stage: cores
	// enumerated, boundary stubs collapsed into anchor volumes, core
	// side-assignments visited, and sweep-bound fallbacks.
	Cert CertStats
	// PeakHeapBytes is the largest Go heap (HeapAlloc) observed at a stage
	// boundary during the build — an in-process view of the build's memory
	// high-water mark.
	PeakHeapBytes uint64
	// PeakRSSBytes is the process's resident-set high-water mark (VmHWM) as
	// of the end of the build, or 0 where the platform does not expose it.
	// Unlike PeakHeapBytes it covers the whole process lifetime, not just
	// this build.
	PeakRSSBytes int64
}

// Stage returns the metrics of the named stage, if it ran.
func (m *BuildMetrics) Stage(name string) (StageMetrics, bool) {
	for _, s := range m.Stages {
		if s.Name == name {
			return s, true
		}
	}
	return StageMetrics{}, false
}

// String renders one line per the -metrics CLI convention:
// "base-tree=1.2ms (v=4096 e=4095 allocs=12) | ... | total=5.4ms".
func (m BuildMetrics) String() string {
	var b strings.Builder
	for _, s := range m.Stages {
		fmt.Fprintf(&b, "%s=%v (v=%d e=%d allocs=%d) | ",
			s.Name, s.Duration.Round(time.Microsecond), s.Vertices, s.Edges, s.ScratchAllocs)
	}
	if m.Cert != (CertStats{}) {
		fmt.Fprintf(&b, "cert(cores=%d stubs=%d subsets=%d bounds=%d) | ",
			m.Cert.Cores, m.Cert.Stubs, m.Cert.Subsets, m.Cert.Bounds)
	}
	if m.PeakHeapBytes > 0 {
		fmt.Fprintf(&b, "peak(heap=%dB rss=%dB) | ", m.PeakHeapBytes, m.PeakRSSBytes)
	}
	fmt.Fprintf(&b, "total=%v", m.TotalTime.Round(time.Microsecond))
	return b.String()
}

// StageInfo is what a stage function reports back about its output.
type StageInfo struct {
	Vertices, Edges int
}

// Pipeline runs the named stages of a decomposition build under one context,
// accumulating BuildMetrics. Zero value is not usable; construct with
// NewPipeline.
type Pipeline struct {
	ctx     context.Context
	start   time.Time
	Metrics BuildMetrics
}

// NewPipeline starts a build under ctx (nil means context.Background()).
func NewPipeline(ctx context.Context) *Pipeline {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Pipeline{ctx: ctx, start: time.Now()}
}

// Context returns the pipeline's context, for stages that spawn work outside
// Run.
func (p *Pipeline) Context() context.Context { return p.ctx }

// Run executes one named stage. The stage is skipped (with an
// ErrBuildCancelled error) if the context is already done; a stage error that
// stems from cancellation is promoted to carry ErrBuildCancelled so every
// cancelled build surfaces the same sentinel regardless of which internal
// package noticed the context first. Metrics are recorded even for failed
// stages, so a cancelled build still reports where the time went.
//
// A panic inside the stage — including worker panics surfaced by
// internal/par — is recovered and returned as an error carrying the
// panicking goroutine's stack, so a build can fail but never crash the
// caller.
func (p *Pipeline) Run(name string, fn func(ctx context.Context) (StageInfo, error)) error {
	if p.ctx.Err() != nil {
		return fmt.Errorf("decomp: stage %s skipped: %w", name, Cancelled(p.ctx))
	}
	if faultinject.Enabled() {
		if err := faultinject.Err(faultinject.StageFail); err != nil {
			return fmt.Errorf("decomp: stage %s: %w", name, err)
		}
	}
	// The span name is only materialized when a tracer is installed, so the
	// disabled path performs no concatenation and no allocation.
	sctx := p.ctx
	var sp *obs.Span
	if obs.TracerFrom(p.ctx) != nil {
		sctx, sp = obs.StartSpan(p.ctx, "build/"+name)
	}
	defer sp.End()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	info, err := runStage(sctx, fn)
	dur := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	p.Metrics.Stages = append(p.Metrics.Stages, StageMetrics{
		Name:          name,
		Duration:      dur,
		Vertices:      info.Vertices,
		Edges:         info.Edges,
		ScratchAllocs: int(after.Mallocs - before.Mallocs),
	})
	if after.HeapAlloc > p.Metrics.PeakHeapBytes {
		p.Metrics.PeakHeapBytes = after.HeapAlloc
	}
	if before.HeapAlloc > p.Metrics.PeakHeapBytes {
		p.Metrics.PeakHeapBytes = before.HeapAlloc
	}
	p.Metrics.PeakRSSBytes = obs.PeakRSS()
	p.Metrics.TotalTime = time.Since(p.start)
	if sp != nil {
		sp.Arg("vertices", info.Vertices)
		sp.Arg("edges", info.Edges)
		if err != nil {
			sp.Arg("error", err.Error())
		}
	}
	if err != nil {
		if cancellation(err) && !errors.Is(err, ErrBuildCancelled) {
			err = fmt.Errorf("%w: %w", ErrBuildCancelled, err)
		}
		return fmt.Errorf("decomp: stage %s: %w", name, err)
	}
	return nil
}

// runStage invokes one stage function with panic containment.
func runStage(ctx context.Context, fn func(ctx context.Context) (StageInfo, error)) (info StageInfo, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("panic during stage: %w", par.AsError(v))
		}
	}()
	return fn(ctx)
}

func cancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
