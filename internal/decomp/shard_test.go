package decomp

import (
	"context"
	"runtime"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/workload"
)

// shardTestGraphs are the two workload families the sharded path must handle:
// regular meshes (long thin boundaries) and heavy-tailed power-law graphs
// (hubs with cross-shard edges everywhere).
func shardTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	pl, err := workload.PowerLaw(3000, 3, workload.UniformWeight(0.5, 5), 11)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"grid3d":   workload.Grid3D(12, 12, 12, workload.Lognormal(1), 3),
		"grid2d":   workload.Grid2D(40, 40, nil, 1),
		"powerlaw": pl,
	}
}

func sameAssign(a, b *Decomposition) bool {
	if a.Count != b.Count || len(a.Assign) != len(b.Assign) {
		return false
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			return false
		}
	}
	return true
}

// Shards ≤ 1 must be bit-identical to the unsharded construction — not just
// equivalent up to relabeling.
func TestShardedSingleShardBitIdentical(t *testing.T) {
	for name, g := range shardTestGraphs(t) {
		base, err := FixedDegree(g, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{0, 1} {
			d, stats, err := FixedDegreeSharded(g, 4, 7, shards)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Shards != 1 {
				t.Errorf("%s shards=%d: stats.Shards = %d, want 1", name, shards, stats.Shards)
			}
			if !sameAssign(base, d) {
				t.Errorf("%s shards=%d: sharded path diverges from FixedDegree", name, shards)
			}
		}
	}
}

// Every shard count must produce a valid decomposition with the same
// per-cluster γ-violation guarantee as the unsharded construction: at most
// one violating vertex per cluster.
func TestShardedInvariance(t *testing.T) {
	const sizeCap = 4
	for name, g := range shardTestGraphs(t) {
		for _, shards := range []int{1, 2, 8} {
			d, stats, err := FixedDegreeSharded(g, sizeCap, 7, shards)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%s shards=%d: invalid decomposition: %v", name, shards, err)
			}
			r := Evaluate(d, graph.MaxExactConductance)
			if r.Phi <= 0 {
				t.Errorf("%s shards=%d: φ = %v", name, shards, r.Phi)
			}
			if v := MaxGammaViolations(d, r.Phi); v > 1 {
				t.Errorf("%s shards=%d: %d γ-violations in one cluster, want ≤ 1", name, shards, v)
			}
			if shards > 1 {
				if stats.Shards != shards {
					t.Errorf("%s: stats.Shards = %d, want %d", name, stats.Shards, shards)
				}
				if stats.BoundaryEdges == 0 {
					t.Errorf("%s shards=%d: no boundary edges counted", name, shards)
				}
				if stats.Merged+stats.Rejected != stats.BoundarySingletons {
					t.Errorf("%s shards=%d: merged %d + rejected %d != singletons %d",
						name, shards, stats.Merged, stats.Rejected, stats.BoundarySingletons)
				}
				for v := range d.Assign {
					if c := d.Assign[v]; c < 0 || c >= d.Count {
						t.Fatalf("%s shards=%d: vertex %d assigned %d outside [0,%d)", name, shards, v, c, d.Count)
					}
				}
			}
		}
	}
}

// The sharded result is a pure function of (g, sizeCap, seed, shards): re-runs
// agree, and so do runs under a different GOMAXPROCS — the per-shard work is
// scheduled by internal/par but the output never depends on the schedule.
func TestShardedDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := workload.Grid3D(10, 10, 10, workload.Lognormal(1), 5)
	d1, s1, err := FixedDegreeSharded(g, 4, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	d2, s2, err := FixedDegreeSharded(g, 4, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAssign(d1, d2) || s1 != s2 {
		t.Fatal("sharded decomposition not deterministic across runs")
	}
	old := runtime.GOMAXPROCS(4)
	d3, s3, err := FixedDegreeSharded(g, 4, 9, 8)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAssign(d1, d3) || s1 != s3 {
		t.Fatal("sharded decomposition depends on GOMAXPROCS")
	}
}

// Oversharding degenerates gracefully: more shards than vertices falls back
// to the single-pass construction, and shard counts near n still validate.
func TestShardedDegenerateCounts(t *testing.T) {
	g := workload.Grid2D(5, 5, nil, 1)
	d, stats, err := FixedDegreeSharded(g, 4, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 1 {
		t.Errorf("oversharded: stats.Shards = %d, want fallback to 1", stats.Shards)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d, stats, err = FixedDegreeSharded(g, 4, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 12 {
		t.Errorf("stats.Shards = %d, want 12", stats.Shards)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// A star sharded away from its hub is the worst case for boundary damage:
// every leaf outside the hub's shard has only a cross-shard edge and comes
// out of per-shard clustering as a singleton. The stitch must absorb leaves
// into the hub's cluster until the merge size cap stops it, and reject the
// rest — never lose or duplicate a vertex.
func TestShardedStitchRepairsStar(t *testing.T) {
	const sizeCap = 4
	g := workload.Caterpillar(1, 20, nil, 1) // hub 0 with 20 leaves
	d, stats, err := FixedDegreeSharded(g, sizeCap, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.BoundarySingletons == 0 {
		t.Fatal("expected boundary singletons on a sharded star")
	}
	if stats.Merged == 0 {
		t.Error("stitch merged nothing")
	}
	mergeCap := stitchSizeFactor * sizeCap
	if mergeCap > graph.MaxExactConductance {
		mergeCap = graph.MaxExactConductance
	}
	size := make([]int, d.Count)
	for _, c := range d.Assign {
		size[c]++
	}
	for c, s := range size {
		if s == 0 {
			t.Errorf("cluster %d empty after compaction", c)
		}
		if s > mergeCap {
			t.Errorf("cluster %d has %d vertices, above the %d merge cap", c, s, mergeCap)
		}
	}
	// On a mesh the same invariants hold even when the stitch has little to
	// do: the sharded build must not leave more singletons than the stitch
	// explicitly rejected.
	gm := workload.Grid3D(12, 12, 12, workload.Lognormal(1), 3)
	base, err := FixedDegree(gm, sizeCap, 7)
	if err != nil {
		t.Fatal(err)
	}
	rb := Evaluate(base, graph.MaxExactConductance)
	dm, ms, err := FixedDegreeSharded(gm, sizeCap, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	rm := Evaluate(dm, graph.MaxExactConductance)
	if rm.Singletons > rb.Singletons+ms.Rejected {
		t.Errorf("singletons after stitch = %d, want ≤ base %d + rejected %d",
			rm.Singletons, rb.Singletons, ms.Rejected)
	}
}

func TestClusterShardsRejectsBadTiling(t *testing.T) {
	g := workload.Grid2D(6, 6, nil, 1)
	sh := graph.PartitionShards(g, 3)
	if _, _, err := ClusterShards(context.Background(), g, sh[:2], 4, 1); err == nil {
		t.Error("accepted shards that do not tile the vertex range")
	}
	if _, _, err := ClusterShards(context.Background(), g, sh, 1, 1); err == nil {
		t.Error("accepted sizeCap < 2")
	}
}

func TestShardedContextCancel(t *testing.T) {
	g := workload.Grid3D(10, 10, 10, workload.Lognormal(1), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := FixedDegreeShardedCtx(ctx, g, 4, 1, 4); err == nil {
		t.Error("cancelled context not observed")
	}
}
