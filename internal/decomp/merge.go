package decomp

import (
	"sort"

	"hcd/internal/graph"
)

// MergeSingletons greedily folds singleton clusters (typically the critical
// vertices Theorem 2.1 leaves alone) into the neighboring cluster with the
// heaviest connection, accepting a merge only if the merged closure's
// conductance stays at or above minPhi (checked exactly by the stub-aware
// certifier for merged clusters of up to exactLimit core vertices; larger
// merges are skipped). It returns a new decomposition together with the
// number of merges performed.
//
// This is the practical ρ-improvement pass: the theorems' reduction bounds
// hold without it, but on real meshes it typically removes most singletons
// at no conductance cost below minPhi.
func MergeSingletons(d *Decomposition, minPhi float64, exactLimit int) (*Decomposition, int) {
	clusters := d.Clusters()
	assign := append([]int(nil), d.Assign...)
	members := make([][]int, d.Count)
	for c, vs := range clusters {
		members[c] = append([]int(nil), vs...)
	}
	merged := 0
	cert := graph.NewCertifier(d.G)
	// Process singletons in ascending vertex order for determinism.
	var singles []int
	for _, vs := range clusters {
		if len(vs) == 1 {
			singles = append(singles, vs[0])
		}
	}
	sort.Ints(singles)
	for _, v := range singles {
		if len(members[assign[v]]) != 1 {
			continue // may have absorbed another singleton already
		}
		// Candidate neighbors by total connection weight.
		conn := make(map[int]float64)
		nbr, w := d.G.Neighbors(v)
		for i, u := range nbr {
			if assign[u] != assign[v] {
				conn[assign[u]] += w[i]
			}
		}
		type cand struct {
			c int
			w float64
		}
		var cands []cand
		for c, cw := range conn {
			cands = append(cands, cand{c: c, w: cw})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			return cands[i].c < cands[j].c
		})
		for _, cd := range cands {
			set := append([]int{v}, members[cd.c]...)
			if len(set) > exactLimit || len(set) > graph.MaxExactConductance {
				continue
			}
			if mustClusterPhi(cert, set) >= minPhi {
				members[cd.c] = append(members[cd.c], v)
				members[assign[v]] = nil
				assign[v] = cd.c
				merged++
				break
			}
		}
	}
	// Renumber cluster ids densely.
	remap := make(map[int]int)
	for _, c := range assign {
		if _, ok := remap[c]; !ok {
			remap[c] = len(remap)
		}
	}
	out := &Decomposition{G: d.G, Assign: make([]int, len(assign)), Count: len(remap)}
	for v, c := range assign {
		out.Assign[v] = remap[c]
	}
	return out, merged
}
