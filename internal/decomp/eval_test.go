package decomp

import (
	"math/rand"
	"runtime"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/treealg"
	"hcd/internal/workload"
)

// TestEvaluateParallelMatchesSerial pins the parallel fan-out of Evaluate to
// the sequential reference bit for bit on randomized instances: per-cluster
// work is independent and all float reductions stay in a fixed serial order,
// so the reports must be identical, not merely close.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	rng := rand.New(rand.NewSource(99))
	decomps := []*Decomposition{}
	for trial := 0; trial < 6; trial++ {
		tree := treealg.RandomTree(rng, 200+rng.Intn(400), func() float64 { return 0.5 + rng.Float64() })
		d, err := Tree(tree)
		if err != nil {
			t.Fatal(err)
		}
		decomps = append(decomps, d)
	}
	for seed := int64(1); seed <= 3; seed++ {
		g := workload.Grid3D(8, 8, 8, workload.Lognormal(1), seed)
		d, err := FixedDegree(g, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		decomps = append(decomps, d)
		g2 := workload.Grid2D(20, 20, workload.Lognormal(0.5), seed)
		d2, err := FixedDegree(g2, 3+int(seed), seed)
		if err != nil {
			t.Fatal(err)
		}
		decomps = append(decomps, d2)
	}
	for i, d := range decomps {
		for _, limit := range []int{0, graph.MaxExactConductance} {
			serial := EvaluateSerial(d, limit)
			parallel := Evaluate(d, limit)
			if serial != parallel {
				t.Errorf("instance %d limit %d: parallel %+v != serial %+v", i, limit, parallel, serial)
			}
		}
	}
}

// TestEvaluateParallelManyClusters forces the cluster count well past the
// parallel grain so the fan-out genuinely splits, and checks equality again.
func TestEvaluateParallelManyClusters(t *testing.T) {
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	g := workload.Grid3D(12, 12, 12, workload.Lognormal(1), 5)
	d, err := FixedDegree(g, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count <= evalGrain {
		t.Fatalf("want more than %d clusters to exercise the fan-out, got %d", evalGrain, d.Count)
	}
	serial := EvaluateSerial(d, graph.MaxExactConductance)
	parallel := Evaluate(d, graph.MaxExactConductance)
	if serial != parallel {
		t.Fatalf("parallel %+v != serial %+v", parallel, serial)
	}
}
