package decomp

import (
	"math/rand"
	"runtime"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/treealg"
	"hcd/internal/workload"
)

// TestEvaluateParallelMatchesSerial pins the parallel fan-out of Evaluate to
// the sequential reference bit for bit on randomized instances: per-cluster
// work is independent and all float reductions stay in a fixed serial order,
// so the reports must be identical, not merely close.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	rng := rand.New(rand.NewSource(99))
	decomps := []*Decomposition{}
	for trial := 0; trial < 6; trial++ {
		tree := treealg.RandomTree(rng, 200+rng.Intn(400), func() float64 { return 0.5 + rng.Float64() })
		d, err := Tree(tree)
		if err != nil {
			t.Fatal(err)
		}
		decomps = append(decomps, d)
	}
	for seed := int64(1); seed <= 3; seed++ {
		g := workload.Grid3D(8, 8, 8, workload.Lognormal(1), seed)
		d, err := FixedDegree(g, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		decomps = append(decomps, d)
		g2 := workload.Grid2D(20, 20, workload.Lognormal(0.5), seed)
		d2, err := FixedDegree(g2, 3+int(seed), seed)
		if err != nil {
			t.Fatal(err)
		}
		decomps = append(decomps, d2)
	}
	for i, d := range decomps {
		for _, limit := range []int{0, graph.MaxExactConductance} {
			serial := EvaluateSerial(d, limit)
			parallel := Evaluate(d, limit)
			if serial != parallel {
				t.Errorf("instance %d limit %d: parallel %+v != serial %+v", i, limit, parallel, serial)
			}
		}
	}
}

// TestEvaluateCertStats pins the certification work counters on a
// hand-checkable instance: a 6-path split into two 3-clusters has one
// boundary stub and 2² − 1 non-trivial core side-assignments per cluster.
func TestEvaluateCertStats(t *testing.T) {
	g, err := graph.NewFromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &Decomposition{G: g, Assign: []int{0, 0, 0, 1, 1, 1}, Count: 2}
	rep := Evaluate(d, graph.MaxExactConductance)
	want := CertStats{Cores: 2, Stubs: 2, Subsets: 6}
	if rep.Cert != want {
		t.Errorf("Cert = %+v, want %+v", rep.Cert, want)
	}
	if !rep.PhiExact {
		t.Error("PhiExact should hold when every core is under the limit")
	}
	// With exactLimit 0 every cluster falls back to a sweep bound.
	rep = Evaluate(d, 0)
	want = CertStats{Bounds: 2}
	if rep.Cert != want {
		t.Errorf("Cert with limit 0 = %+v, want %+v", rep.Cert, want)
	}
	if rep.PhiExact {
		t.Error("PhiExact must clear when clusters exceed the limit")
	}
}

// TestBuildMetricsCertString checks the metrics line renders the cert
// counters exactly when they are nonzero.
func TestBuildMetricsCertString(t *testing.T) {
	var m BuildMetrics
	if s := m.String(); s != "total=0s" {
		t.Errorf("zero metrics string = %q", s)
	}
	m.Cert = CertStats{Cores: 3, Stubs: 7, Subsets: 21, Bounds: 1}
	want := "cert(cores=3 stubs=7 subsets=21 bounds=1) | total=0s"
	if s := m.String(); s != want {
		t.Errorf("metrics string = %q, want %q", s, want)
	}
}

// TestEvaluateParallelManyClusters forces the cluster count well past the
// parallel grain so the fan-out genuinely splits, and checks equality again.
func TestEvaluateParallelManyClusters(t *testing.T) {
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	g := workload.Grid3D(12, 12, 12, workload.Lognormal(1), 5)
	d, err := FixedDegree(g, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count <= evalGrain {
		t.Fatalf("want more than %d clusters to exercise the fan-out, got %d", evalGrain, d.Count)
	}
	serial := EvaluateSerial(d, graph.MaxExactConductance)
	parallel := Evaluate(d, graph.MaxExactConductance)
	if serial != parallel {
		t.Fatalf("parallel %+v != serial %+v", parallel, serial)
	}
}
