package decomp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hcd/internal/workload"
)

func TestPipelineRecordsStageMetrics(t *testing.T) {
	p := NewPipeline(context.Background())
	if err := p.Run("alpha", func(context.Context) (StageInfo, error) {
		time.Sleep(time.Millisecond)
		return StageInfo{Vertices: 10, Edges: 9}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Run("beta", func(context.Context) (StageInfo, error) {
		return StageInfo{Vertices: 5, Edges: 4}, nil
	}); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics
	if len(m.Stages) != 2 || m.Stages[0].Name != "alpha" || m.Stages[1].Name != "beta" {
		t.Fatalf("stages = %+v", m.Stages)
	}
	if m.Stages[0].Duration <= 0 || m.Stages[1].Duration <= 0 {
		t.Errorf("non-positive stage durations: %v, %v", m.Stages[0].Duration, m.Stages[1].Duration)
	}
	if m.TotalTime < m.Stages[0].Duration {
		t.Errorf("total %v below first stage %v", m.TotalTime, m.Stages[0].Duration)
	}
	if s, ok := m.Stage("alpha"); !ok || s.Vertices != 10 || s.Edges != 9 {
		t.Errorf("Stage(alpha) = %+v, %v", s, ok)
	}
	if _, ok := m.Stage("missing"); ok {
		t.Error("Stage(missing) reported present")
	}
	str := m.String()
	for _, want := range []string{"alpha=", "beta=", "v=10", "e=9", "total="} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestPipelineSkipsStageWhenAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPipeline(ctx)
	ran := false
	err := p.Run("never", func(context.Context) (StageInfo, error) {
		ran = true
		return StageInfo{}, nil
	})
	if ran {
		t.Fatal("stage function ran under a cancelled context")
	}
	if !errors.Is(err, ErrBuildCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap both sentinels", err)
	}
	if len(p.Metrics.Stages) != 0 {
		t.Errorf("skipped stage recorded metrics: %+v", p.Metrics.Stages)
	}
}

func TestPipelinePromotesCancellationErrors(t *testing.T) {
	// Leaf packages (mst, lowstretch, sparsify) wrap only ctx.Err(); Run must
	// promote such errors to carry ErrBuildCancelled.
	p := NewPipeline(context.Background())
	leaf := fmt.Errorf("mst: cancelled: %w", context.Canceled)
	err := p.Run("leafy", func(context.Context) (StageInfo, error) {
		return StageInfo{}, leaf
	})
	if !errors.Is(err, ErrBuildCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap both sentinels", err)
	}
	if len(p.Metrics.Stages) != 1 {
		t.Fatalf("failed stage not recorded: %+v", p.Metrics.Stages)
	}
}

func TestPipelineKeepsPlainErrorsUnpromoted(t *testing.T) {
	p := NewPipeline(context.Background())
	boom := errors.New("boom")
	err := p.Run("failing", func(context.Context) (StageInfo, error) {
		return StageInfo{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v lost the cause", err)
	}
	if errors.Is(err, ErrBuildCancelled) {
		t.Fatalf("plain failure %v promoted to cancellation", err)
	}
	if !strings.Contains(err.Error(), "failing") {
		t.Errorf("error %v does not name the stage", err)
	}
}

func TestPipelineCancellationPromptness(t *testing.T) {
	// A synthetic slow stage that would spin ~forever, polling at the bounded
	// interval; a mid-build cancel must stop it promptly.
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPipeline(ctx)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Run("slow", func(ctx context.Context) (StageInfo, error) {
		for i := 0; ; i++ {
			if err := poll(ctx, i); err != nil {
				return StageInfo{}, err
			}
		}
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBuildCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap both sentinels", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	// The aborted stage still reports where the time went.
	if s, ok := p.Metrics.Stage("slow"); !ok || s.Duration <= 0 {
		t.Errorf("cancelled stage metrics missing or zero: %+v ok=%v", s, ok)
	}
}

func TestBuildersReturnCancelledSentinel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tree := workload.Caterpillar(30, 3, nil, 1)
	grid := workload.Grid2D(12, 12, nil, 1)
	if _, err := TreeCtx(ctx, tree); !errors.Is(err, ErrBuildCancelled) || !errors.Is(err, context.Canceled) {
		t.Errorf("TreeCtx error %v does not wrap both sentinels", err)
	}
	if _, err := TreeParallelCtx(ctx, tree); !errors.Is(err, ErrBuildCancelled) {
		t.Errorf("TreeParallelCtx error %v does not wrap ErrBuildCancelled", err)
	}
	if _, err := FixedDegreeCtx(ctx, grid, 4, 1); !errors.Is(err, ErrBuildCancelled) {
		t.Errorf("FixedDegreeCtx error %v does not wrap ErrBuildCancelled", err)
	}
}

func TestCtxVariantsMatchPlainBuilders(t *testing.T) {
	ctx := context.Background()
	tree := workload.Caterpillar(40, 2, workload.Lognormal(1), 7)
	grid := workload.Grid2D(15, 15, workload.Lognormal(1), 7)

	want, err := Tree(tree)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TreeCtx(ctx, tree)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDecomposition(t, "TreeCtx", want, got)

	want, err = FixedDegree(grid, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err = FixedDegreeCtx(ctx, grid, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDecomposition(t, "FixedDegreeCtx", want, got)
}

func assertSameDecomposition(t *testing.T, label string, want, got *Decomposition) {
	t.Helper()
	if got.Count != want.Count {
		t.Fatalf("%s: count %d != %d", label, got.Count, want.Count)
	}
	for v := range want.Assign {
		if got.Assign[v] != want.Assign[v] {
			t.Fatalf("%s: vertex %d assigned %d, want %d", label, v, got.Assign[v], want.Assign[v])
		}
	}
}
