package decomp

import (
	"context"
	"fmt"

	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/par"
	"hcd/internal/treealg"
)

// FixedDegree implements the Section 3.1 clustering:
//
//	[1] perturb each edge weight by an independent random factor in (1, 2);
//	[2] every vertex keeps its heaviest perturbed incident edge — the union
//	    is a forest by the unimodality argument;
//	[3] split each forest tree into clusters of at most sizeCap vertices.
//
// Every vertex lands in a cluster of size ≥ 2, so the reduction factor is at
// least 2 (the paper's ρ). The perturbation is a deterministic hash of the
// edge and seed, so step [2] is one independent pass per vertex — the
// "embarrassingly parallel" construction of Remark 1 — and runs across
// cores. For a degree-d graph the paper certifies conductance Ω(1/(d²k));
// Evaluate measures the actual value.
//
// sizeCap must be at least 2. Clusters may exceed sizeCap by a small factor
// at branchy vertices (at most 1 + d·(sizeCap−1) vertices); the cap controls
// the expected size, which is what the reduction/condition trade-off needs.
func FixedDegree(g *graph.Graph, sizeCap int, seed int64) (*Decomposition, error) {
	return FixedDegreeCtx(context.Background(), g, sizeCap, seed)
}

// FixedDegreeCtx is FixedDegree under a context: the sequential passes poll
// cancellation at bounded intervals and the parallel scan is bracketed by
// checks, so a cancelled build returns an error wrapping ErrBuildCancelled
// promptly.
func FixedDegreeCtx(ctx context.Context, g *graph.Graph, sizeCap int, seed int64) (*Decomposition, error) {
	if sizeCap < 2 {
		return nil, fmt.Errorf("decomp: sizeCap must be ≥ 2, got %d", sizeCap)
	}
	n := g.N()
	d := &Decomposition{G: g, Assign: make([]int, n)}
	if n == 0 {
		return d, nil
	}
	// Isolated vertices cannot be clustered with anyone; each becomes a
	// singleton (they contribute no edges, hence no conductance constraint).
	// [2] Per-vertex heaviest perturbed edge, in parallel.
	bestTo := make([]int, n)
	par.For(n, 2048, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			bestTo[v] = -1
			nbr, w := g.Neighbors(v)
			bestW := 0.0
			for i, u := range nbr {
				pw := w[i] * perturbFactor(v, u, n, seed)
				// Deterministic tie-break on the neighbor id keeps the
				// perturbed order total even under float ties.
				if bestTo[v] < 0 || pw > bestW || (pw == bestW && u < bestTo[v]) {
					bestTo[v], bestW = u, pw
				}
			}
		}
	})
	if ctx.Err() != nil {
		return nil, Cancelled(ctx)
	}
	if faultinject.Enabled() && faultinject.Fire(faultinject.PerturbCorrupt) {
		// Chaos: wipe the heaviest-edge selection, as if the parallel scan
		// produced garbage. Every vertex becomes an isolated singleton, so
		// the build "succeeds" with no reduction — the degenerate shape the
		// hierarchy's no-reduction guard must catch.
		for i := range bestTo {
			bestTo[i] = -1
		}
	}
	fEdges := make([]graph.Edge, 0, n)
	for v := 0; v < n; v++ {
		if err := poll(ctx, v); err != nil {
			return nil, err
		}
		u := bestTo[v]
		if u < 0 {
			continue
		}
		// Emit each undirected edge once: the lower endpoint owns it unless
		// it did not select it, in which case the upper endpoint emits.
		if v < u || bestTo[u] != v {
			w, _ := g.Weight(v, u)
			fEdges = append(fEdges, graph.Edge{U: minOf(v, u), V: maxOf(v, u), W: w})
		}
	}
	forest, err := graph.NewFromUniqueEdges(n, fEdges)
	if err != nil {
		return nil, err
	}
	if !forest.IsForest() {
		return nil, fmt.Errorf("decomp: heaviest-edge graph contains a cycle (tie-breaking failure)")
	}
	// [3] Split each tree into clusters of about sizeCap vertices.
	rooted, err := treealg.RootForest(forest)
	if err != nil {
		return nil, err
	}
	d.Count, err = splitForest(ctx, forest, rooted, sizeCap, d.Assign)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// splitForest performs step [3] of the Section 3.1 clustering: walk the
// rooted forest bottom-up, emitting a cluster whenever the pending subtree
// reaches sizeCap vertices, then sweep the roots for leftovers. It writes
// cluster ids starting at 0 into assign (len = forest vertex count) and
// returns the number of clusters. Shared by the single-pass build above and
// the per-shard build in shard.go, which runs it on shard-local forests.
func splitForest(ctx context.Context, forest *graph.Graph, rooted *treealg.Rooted, sizeCap int, assign []int) (int, error) {
	n := len(assign)
	for i := range assign {
		assign[i] = -1
	}
	count := 0
	children := rooted.Children()
	pend := make([]int, n)
	emit := func(v int) {
		id := count
		count++
		stack := []int{v}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			assign[x] = id
			for _, c := range children[x] {
				if assign[c] < 0 {
					stack = append(stack, c)
				}
			}
		}
	}
	for i := len(rooted.Order) - 1; i >= 0; i-- {
		if err := poll(ctx, i); err != nil {
			return 0, err
		}
		v := rooted.Order[i]
		pend[v] = 1
		for _, c := range children[v] {
			if assign[c] < 0 {
				pend[v] += pend[c]
			}
		}
		if pend[v] >= sizeCap {
			emit(v)
			pend[v] = 0
		}
	}
	for _, root := range rooted.Roots {
		if assign[root] >= 0 {
			continue
		}
		if pend[root] >= 2 {
			emit(root)
			continue
		}
		// A leftover singleton root: merge it into the cluster of an
		// adjacent forest vertex; isolated vertices become singletons.
		merged := false
		nbr, _ := forest.Neighbors(root)
		for _, u := range nbr {
			if assign[u] >= 0 {
				assign[root] = assign[u]
				merged = true
				break
			}
		}
		if !merged {
			emit(root)
		}
	}
	return count, nil
}

// perturbFactor returns a deterministic pseudo-random factor in (1, 2) for
// the unordered edge (u, v) under the given seed, via a splitmix64 hash. It
// is symmetric in u and v, so both endpoints see the same perturbed weight
// without any shared state — the property that makes the scan of Remark 1
// one independent pass per matrix column.
func perturbFactor(u, v, n int, seed int64) float64 {
	if u > v {
		u, v = v, u
	}
	x := uint64(u)*uint64(n) + uint64(v) + uint64(seed)*0x9e3779b97f4a7c15
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return 1 + float64(x>>11)/float64(1<<53)
}

func minOf(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
