package decomp

import (
	"context"
	"fmt"

	"hcd/internal/graph"
)

// SparseStats reports the intermediate structure of the SparseCore pipeline.
type SparseStats struct {
	CoreSize int // |W|: vertices kept after degree-1/2 reduction
	CutEdges int // |C|: one lightest edge cut per core path
}

// SparseCore runs the decomposition engine of Theorem 2.2 on a graph b that
// is a spanning tree plus a (small) set of extra edges:
//
//  1. Greedily strip degree-1 vertices; on the remainder, the core W is the
//     set of vertices of degree ≥ 3 (every other remaining vertex lies on a
//     path between core vertices, or on a cycle — cycles with no degree-3
//     vertex contribute one representative to W).
//  2. For every path between core vertices (including direct core-core
//     edges and core-to-itself loops through degree-2 chains), cut an edge
//     of minimum weight. This disconnects B into trees, each containing
//     exactly one core vertex.
//  3. Decompose the resulting forest with the Theorem 2.1 tree algorithm.
//
// The returned decomposition is over b itself, so closure conductances are
// measured with the cut edges contributing boundary stubs — the paper's
// "boundary cluster" factor-of-2 loss is part of the measurement.
//
// Steps 1–2 are exposed separately as CoreCutCtx so the pipeline can time
// the strip/cut phase apart from the tree decomposition.
func SparseCore(b *graph.Graph) (*Decomposition, SparseStats, error) {
	return SparseCoreCtx(context.Background(), b)
}

// SparseCoreCtx is SparseCore under a context.
func SparseCoreCtx(ctx context.Context, b *graph.Graph) (*Decomposition, SparseStats, error) {
	forest, stats, err := CoreCutCtx(ctx, b)
	if err != nil {
		return nil, SparseStats{}, err
	}
	td, err := TreeCtx(ctx, forest)
	if err != nil {
		return nil, SparseStats{}, err
	}
	d := &Decomposition{G: b, Assign: td.Assign, Count: td.Count}
	return d, stats, nil
}

// CoreCutCtx performs steps 1–2 of the Theorem 2.2 engine on a connected
// graph b: strip degree-1 vertices, identify the core W, and cut the
// lightest edge of every core path. It returns the resulting forest (over
// b's vertex set) and the core statistics. A forest input short-circuits:
// b itself is returned with zero stats.
func CoreCutCtx(ctx context.Context, b *graph.Graph) (*graph.Graph, SparseStats, error) {
	if !b.Connected() {
		return nil, SparseStats{}, fmt.Errorf("decomp: SparseCore requires a connected graph")
	}
	if b.IsForest() {
		return b, SparseStats{}, nil
	}
	n := b.N()
	// Step 1: strip degree-1 vertices.
	alive := make([]bool, n)
	deg := make([]int, n)
	var queue []int
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = b.Degree(v)
		if deg[v] == 1 {
			queue = append(queue, v)
		}
	}
	for pops := 0; len(queue) > 0; pops++ {
		if err := poll(ctx, pops); err != nil {
			return nil, SparseStats{}, err
		}
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !alive[v] || deg[v] > 1 {
			continue
		}
		alive[v] = false
		nbr, _ := b.Neighbors(v)
		for _, u := range nbr {
			if alive[u] {
				deg[u]--
				if deg[u] == 1 {
					queue = append(queue, u)
				}
			}
		}
	}
	// Core W: alive vertices of degree ≥ 3; cycle components with no such
	// vertex get their lowest-id vertex as representative.
	isW := make([]bool, n)
	wCount := 0
	for v := 0; v < n; v++ {
		if alive[v] && deg[v] >= 3 {
			isW[v] = true
			wCount++
		}
	}
	wCount += markCycleRepresentatives(b, alive, isW)
	// Step 2: walk every core path and cut its lightest edge.
	cut := make(map[[2]int]bool)
	visited := make(map[[2]int]bool)
	edgeKey := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	steps := 0
	for w := 0; w < n; w++ {
		if !isW[w] {
			continue
		}
		nbr, wts := b.Neighbors(w)
		for i, x := range nbr {
			if !alive[x] || visited[[2]int{w, x}] {
				continue
			}
			visited[[2]int{w, x}] = true
			minU, minV, minW := w, x, wts[i]
			prev, cur := w, x
			for !isW[cur] {
				steps++
				if err := poll(ctx, steps); err != nil {
					return nil, SparseStats{}, err
				}
				next, nw := otherAliveNeighbor(b, alive, cur, prev)
				visited[[2]int{cur, next}] = true
				if nw < minW {
					minU, minV, minW = cur, next, nw
				}
				prev, cur = cur, next
			}
			visited[[2]int{cur, prev}] = true
			cut[edgeKey(minU, minV)] = true
		}
	}
	// Remove the cut edges; Theorem 2.1 handles the resulting forest.
	var forestEdges []graph.Edge
	for _, e := range b.Edges() {
		if !cut[edgeKey(e.U, e.V)] {
			forestEdges = append(forestEdges, e)
		}
	}
	forest := graph.MustFromEdges(n, forestEdges)
	if !forest.IsForest() {
		return nil, SparseStats{}, fmt.Errorf("decomp: internal error: cut set did not break all cycles")
	}
	return forest, SparseStats{CoreSize: wCount, CutEdges: len(cut)}, nil
}

// otherAliveNeighbor returns the unique alive neighbor of the degree-2 chain
// vertex cur other than prev, with the connecting edge weight.
func otherAliveNeighbor(b *graph.Graph, alive []bool, cur, prev int) (int, float64) {
	nbr, w := b.Neighbors(cur)
	for i, u := range nbr {
		if u != prev && alive[u] {
			return u, w[i]
		}
	}
	// A degree-2 cycle vertex can have prev as its only continuation when
	// the cycle closes immediately (2-cycles are impossible in a simple
	// graph; this is unreachable but keeps the walker total).
	return prev, 0
}

// markCycleRepresentatives finds alive components with no degree-≥3 vertex
// (pure cycles after stripping) and marks their lowest-id vertex as a core
// representative, returning how many were added.
func markCycleRepresentatives(b *graph.Graph, alive []bool, isW []bool) int {
	n := b.N()
	seen := make([]bool, n)
	added := 0
	for s := 0; s < n; s++ {
		if !alive[s] || seen[s] {
			continue
		}
		// BFS over the alive component rooted at s.
		comp := []int{s}
		seen[s] = true
		hasW := false
		for i := 0; i < len(comp); i++ {
			v := comp[i]
			if isW[v] {
				hasW = true
			}
			nbr, _ := b.Neighbors(v)
			for _, u := range nbr {
				if alive[u] && !seen[u] {
					seen[u] = true
					comp = append(comp, u)
				}
			}
		}
		if !hasW {
			isW[comp[0]] = true
			added++
		}
	}
	return added
}
