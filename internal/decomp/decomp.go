// Package decomp implements the paper's central objects: [φ, ρ]
// decompositions — partitions of a weighted graph into vertex-disjoint
// clusters such that the closure of every cluster (induced subgraph plus one
// degree-1 stub per boundary edge) has conductance at least φ, with vertex
// reduction factor n/#clusters ≥ ρ.
//
// Three constructions are provided:
//
//   - Tree (Theorem 2.1): 3-critical-vertex clustering of trees and forests.
//   - SparseCore (the engine of Theorems 2.2/2.3): strip degree-1/degree-2
//     vertices of a tree-plus-few-edges subgraph to a core W, cut the
//     lightest edge of every W–W path, and run Tree on the resulting trees.
//   - FixedDegree (Section 3.1): the embarrassingly parallel
//     perturb/heaviest-edge/split clustering.
package decomp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// CertStats re-exports the certification work counters of the stub-aware
// exact conductance certifier (cores enumerated, stubs collapsed, core
// side-assignments visited, sweep-bound fallbacks).
type CertStats = graph.CertStats

// mustClusterPhi certifies the exact closure conductance of a cluster whose
// membership is unique, in-range, and under the core enumeration limit by
// construction (it came out of this package's own partition bookkeeping). An
// error here is an internal invariant violation, so it panics —
// caller-supplied clusters go through the certifier's error return.
func mustClusterPhi(c *graph.Certifier, vs []int) float64 {
	phi, err := c.ClusterPhi(vs)
	if err != nil {
		panic(err)
	}
	return phi
}

// mustBuilderClosure is ClosureBuilder.Closure for clusters valid by
// construction; the returned graph aliases the builder (valid until its next
// call).
func mustBuilderClosure(b *graph.ClosureBuilder, vs []int) *graph.Graph {
	clo, _, err := b.Closure(vs)
	if err != nil {
		panic(err)
	}
	return clo
}

// Decomposition is a partition of the vertices of G into Count clusters.
type Decomposition struct {
	G      *graph.Graph
	Assign []int // vertex -> cluster id in [0, Count)
	Count  int
}

// Clusters materializes the vertex lists of all clusters.
func (d *Decomposition) Clusters() [][]int {
	cs := make([][]int, d.Count)
	for v, c := range d.Assign {
		cs[c] = append(cs[c], v)
	}
	return cs
}

// ReductionFactor returns ρ = n / #clusters.
func (d *Decomposition) ReductionFactor() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.G.N()) / float64(d.Count)
}

// Validate checks the structural invariants: every vertex is assigned a
// cluster id in range, every cluster is non-empty, and every cluster induces
// a connected subgraph of G.
func (d *Decomposition) Validate() error {
	if len(d.Assign) != d.G.N() {
		return fmt.Errorf("decomp: assignment length %d != n %d", len(d.Assign), d.G.N())
	}
	seen := make([]bool, d.Count)
	for v, c := range d.Assign {
		if c < 0 || c >= d.Count {
			return fmt.Errorf("decomp: vertex %d assigned out-of-range cluster %d", v, c)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("decomp: cluster %d is empty", c)
		}
	}
	b := graph.NewClosureBuilder(d.G)
	order, start := d.clusterSpans()
	for c := 0; c < d.Count; c++ {
		vs := order[start[c]:start[c+1]]
		sub, _, err := b.InducedSubgraph(vs)
		if err != nil {
			return fmt.Errorf("decomp: cluster %d induced subgraph: %w", c, err)
		}
		if !sub.Connected() {
			return fmt.Errorf("decomp: cluster %d (size %d) is not connected", c, len(vs))
		}
	}
	return nil
}

// Report summarizes the quality of a decomposition.
type Report struct {
	Phi            float64 // minimum closure conductance over clusters
	PhiExact       bool    // true if every cluster's closure conductance was computed exactly
	Rho            float64 // vertex reduction factor
	Count          int     // number of clusters
	MaxClusterSize int
	Singletons     int     // clusters of size 1
	GammaMin       float64 // min over vertices of cap(v, cluster−v)/vol(v), the (φ,γ) γ
	// CutFraction is the total weight of inter-cluster edges over the total
	// edge weight — the γ_avg of Kannan–Vempala–Vetta (φ, γ_avg)
	// decompositions; small is good.
	CutFraction float64
	// Cert counts the certification work: cores enumerated, stubs collapsed
	// into anchor volumes, core side-assignments visited, and sweep-bound
	// fallbacks. Deterministic — parallel and serial evaluation agree.
	Cert CertStats
}

// clusterSpans returns the vertices of every cluster as slices of one shared
// order array: cluster c owns order[start[c]:start[c+1]]. Two allocations
// total, versus one slice per cluster for Clusters.
func (d *Decomposition) clusterSpans() (order, start []int) {
	start = make([]int, d.Count+1)
	for _, c := range d.Assign {
		start[c+1]++
	}
	for c := 0; c < d.Count; c++ {
		start[c+1] += start[c]
	}
	order = make([]int, len(d.Assign))
	fill := append([]int(nil), start[:d.Count]...)
	for v, c := range d.Assign {
		order[fill[c]] = v
		fill[c]++
	}
	return order, start
}

// evalGrain is the minimum per-chunk cluster count for the parallel Evaluate
// fan-out; at or below it the whole evaluation runs in one sequential call.
const evalGrain = 16

// evalWorker bundles the per-goroutine scratch of the evaluation fan-out: a
// stub-aware certifier for the common (core ≤ limit) case and a lazily
// created closure builder for the sweep-bound fallback on oversized clusters.
type evalWorker struct {
	cert *graph.Certifier
	cb   *graph.ClosureBuilder
}

// Evaluate measures a decomposition. Closure conductances are computed
// exactly for clusters of at most exactLimit core vertices (pass
// graph.MaxExactConductance for the largest exact setting) by the stub-aware
// certifier — boundary stubs are collapsed into anchor volumes in closed
// form, so the limit applies to the cluster size, not the closure size;
// larger clusters contribute a sweep-cut upper bound on the materialized
// closure and clear the PhiExact flag.
//
// Per-cluster measurements (the dominant cost: one core enumeration or
// closure build per cluster) fan out across cores; the reductions over
// clusters happen serially in cluster order, so the result is bit-identical
// to EvaluateSerial.
func Evaluate(d *Decomposition, exactLimit int) Report {
	r, _ := evaluate(context.Background(), d, exactLimit, true)
	return r
}

// EvaluateCtx is Evaluate with cancellation: the per-cluster measurement
// loop polls ctx between clusters (the exact-conductance enumerations make
// an unbounded evaluation the longest non-cancellable stretch of a build
// otherwise) and returns an ErrBuildCancelled-wrapped error when the
// context is done.
func EvaluateCtx(ctx context.Context, d *Decomposition, exactLimit int) (Report, error) {
	return evaluate(ctx, d, exactLimit, true)
}

// EvaluateSerial is the sequential reference implementation of Evaluate.
func EvaluateSerial(d *Decomposition, exactLimit int) Report {
	r, _ := evaluate(context.Background(), d, exactLimit, false)
	return r
}

func evaluate(ctx context.Context, d *Decomposition, exactLimit int, parallel bool) (Report, error) {
	ctx, sp := obs.StartSpan(ctx, "decomp/evaluate")
	defer sp.End()
	r := Report{Phi: math.Inf(1), PhiExact: true, Rho: d.ReductionFactor(), Count: d.Count, GammaMin: math.Inf(1)}
	// γ_avg: fraction of edge weight crossing between clusters. The float
	// sum stays serial in vertex order regardless of the parallel flag (a
	// reordered sum would not be bit-identical).
	cut, total := 0.0, 0.0
	for u := 0; u < d.G.N(); u++ {
		nbr, w := d.G.Neighbors(u)
		for i, v := range nbr {
			if u < v {
				total += w[i]
				if d.Assign[u] != d.Assign[v] {
					cut += w[i]
				}
			}
		}
	}
	if total > 0 {
		r.CutFraction = cut / total
	}
	order, start := d.clusterSpans()
	phi := make([]float64, d.Count)
	exact := make([]bool, d.Count)
	gamma := make([]float64, d.Count)
	// Each chunk of the fan-out borrows a worker holding a reusable
	// certifier (the common, core ≤ limit case — no closure materialized)
	// and a lazily created closure builder (the sweep-bound fallback).
	pool := sync.Pool{New: func() any {
		return &evalWorker{cert: graph.NewCertifier(d.G)}
	}}
	// Certification counters aggregate per-chunk deltas with integer atomic
	// adds — exact and commutative, so the totals are deterministic.
	var cCores, cStubs, cSubsets, cBounds atomic.Int64
	// stopped lets every chunk of the fan-out abandon its remaining
	// clusters as soon as one of them observes cancellation; the incomplete
	// arrays are discarded, so the early exit cannot skew a returned report.
	var stopped atomic.Bool
	measure := func(lo, hi int) {
		w := pool.Get().(*evalWorker)
		before := w.cert.Stats
		bounds := int64(0)
		defer func() {
			delta := w.cert.Stats
			cCores.Add(delta.Cores - before.Cores)
			cStubs.Add(delta.Stubs - before.Stubs)
			cSubsets.Add(delta.Subsets - before.Subsets)
			cBounds.Add(bounds)
			pool.Put(w)
		}()
		for c := lo; c < hi; c++ {
			if stopped.Load() {
				return
			}
			if ctx.Err() != nil {
				stopped.Store(true)
				return
			}
			vs := order[start[c]:start[c+1]]
			if len(vs) <= exactLimit && len(vs) <= graph.MaxExactConductance {
				phi[c] = mustClusterPhi(w.cert, vs)
				exact[c] = true
			} else {
				if w.cb == nil {
					w.cb = graph.NewClosureBuilder(d.G)
				}
				phi[c] = mustBuilderClosure(w.cb, vs).ConductanceUpperBound()
				bounds++
			}
			// γ per vertex: fraction of v's volume staying inside the
			// cluster; singletons keep nothing inside.
			gm := math.Inf(1)
			if len(vs) == 1 {
				gm = 0
			}
			for _, v := range vs {
				if len(vs) == 1 {
					continue
				}
				nbr, w := d.G.Neighbors(v)
				inside := 0.0
				for i, u := range nbr {
					if d.Assign[u] == c {
						inside += w[i]
					}
				}
				if g := inside / d.G.Vol(v); g < gm {
					gm = g
				}
			}
			gamma[c] = gm
		}
	}
	if parallel {
		par.For(d.Count, evalGrain, measure)
	} else {
		measure(0, d.Count)
	}
	if stopped.Load() || ctx.Err() != nil {
		return Report{}, Cancelled(ctx)
	}
	r.Cert = CertStats{
		Cores:   cCores.Load(),
		Stubs:   cStubs.Load(),
		Subsets: cSubsets.Load(),
		Bounds:  cBounds.Load(),
	}
	for c := 0; c < d.Count; c++ {
		size := start[c+1] - start[c]
		if size > r.MaxClusterSize {
			r.MaxClusterSize = size
		}
		if size == 1 {
			r.Singletons++
		}
		if phi[c] < r.Phi {
			r.Phi = phi[c]
		}
		if !exact[c] {
			r.PhiExact = false
		}
		if gamma[c] < r.GammaMin {
			r.GammaMin = gamma[c]
		}
	}
	if sp != nil {
		sp.Arg("clusters", r.Count)
		sp.Arg("phi", r.Phi)
		sp.Arg("subsets", r.Cert.Subsets)
	}
	publishReport(obs.RegistryFrom(ctx), &r)
	return r, nil
}

// GammaViolations counts, per cluster, the vertices v with
// cap(v, cluster−v) < γ·vol(v) — the vertices that keep a [φ, ρ]
// decomposition from being a full (φ, γ) decomposition. Section 2 of the
// paper proves that a cluster whose closure has conductance ≥ φ contains at
// most one vertex violating γ = φ; MaxGammaViolations verifies exactly that.
func GammaViolations(d *Decomposition, gamma float64) []int {
	out := make([]int, d.Count)
	for v, c := range d.Assign {
		nbr, w := d.G.Neighbors(v)
		inside := 0.0
		for i, u := range nbr {
			if d.Assign[u] == c {
				inside += w[i]
			}
		}
		if inside < gamma*d.G.Vol(v)-1e-12 {
			out[c]++
		}
	}
	return out
}

// MaxGammaViolations returns the maximum per-cluster γ-violation count.
func MaxGammaViolations(d *Decomposition, gamma float64) int {
	m := 0
	for _, v := range GammaViolations(d, gamma) {
		if v > m {
			m = v
		}
	}
	return m
}

// Rebind views the same partition as a decomposition of another graph on the
// same vertex set — the final step of Theorem 2.2, where a decomposition of
// the sparse subgraph B is read as a decomposition of the original graph A
// (clusters connected in a subgraph stay connected in the supergraph; the
// conductance degrades by at most the spectral distance between A and B).
func Rebind(d *Decomposition, a *graph.Graph) (*Decomposition, error) {
	if a.N() != d.G.N() {
		return nil, fmt.Errorf("decomp: Rebind vertex count mismatch %d vs %d", a.N(), d.G.N())
	}
	return &Decomposition{G: a, Assign: d.Assign, Count: d.Count}, nil
}

// SingleCluster returns the trivial decomposition putting every vertex of a
// connected graph into one cluster (used for tiny inputs).
func SingleCluster(g *graph.Graph) *Decomposition {
	return &Decomposition{G: g, Assign: make([]int, g.N()), Count: minClusters(g.N())}
}

func minClusters(n int) int {
	if n == 0 {
		return 0
	}
	return 1
}
