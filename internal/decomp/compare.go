package decomp

import "fmt"

// AgreementReport holds the external clustering metrics of one comparison.
type AgreementReport struct {
	// Purity of a against b: each a-cluster votes for its majority
	// b-cluster; the fraction of vertices on the winning side.
	Purity float64
	// RandIndex is the fraction of vertex pairs on which the two
	// clusterings agree about togetherness.
	RandIndex float64
}

// Agreement compares two cluster assignments over the same vertex set with
// the standard external clustering metrics (purity, Rand index). Used to
// score decompositions against planted ground truth.
func Agreement(a, b []int) (AgreementReport, error) {
	n := len(a)
	if n != len(b) {
		return AgreementReport{}, fmt.Errorf("decomp: assignments have different lengths %d vs %d", n, len(b))
	}
	if n == 0 {
		return AgreementReport{Purity: 1, RandIndex: 1}, nil
	}
	var purity, randIndex float64
	// Purity.
	votes := make(map[int]map[int]int)
	for v := range a {
		if votes[a[v]] == nil {
			votes[a[v]] = make(map[int]int)
		}
		votes[a[v]][b[v]]++
	}
	agree := 0
	for _, counts := range votes {
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		agree += best
	}
	purity = float64(agree) / float64(n)
	// Rand index via the pair-counting identity: with contingency counts
	// n_ij, cluster sizes a_i, b_j:
	//   agreements = C(n,2) + Σ n_ij² − ½(Σ a_i² + Σ b_j²)   [pairs]
	sizeA := make(map[int]int)
	sizeB := make(map[int]int)
	for v := range a {
		sizeA[a[v]]++
		sizeB[b[v]]++
	}
	var sumNij2, sumA2, sumB2 float64
	for _, counts := range votes {
		for _, c := range counts {
			sumNij2 += float64(c) * float64(c)
		}
	}
	for _, s := range sizeA {
		sumA2 += float64(s) * float64(s)
	}
	for _, s := range sizeB {
		sumB2 += float64(s) * float64(s)
	}
	pairs := float64(n) * float64(n-1) / 2
	if pairs == 0 {
		return AgreementReport{Purity: purity, RandIndex: 1}, nil
	}
	agreePairs := pairs + sumNij2 - (sumA2+sumB2)/2
	randIndex = agreePairs / pairs
	return AgreementReport{Purity: purity, RandIndex: randIndex}, nil
}
