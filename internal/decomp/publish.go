package decomp

import "hcd/internal/obs"

// Publish accumulates the build's per-stage costs into the registry under
// the hcd_build_* namespace, one labelled series per stage name.
// Certification counters (BuildMetrics.Cert) are NOT re-published here —
// they flow into the registry at their source, the evaluate measurement
// loop — so a build that already ran with a registry in its context never
// double-counts. DecomposeCtx calls Publish automatically when a registry
// travels in the build context. Nil registries are no-ops.
func (m BuildMetrics) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	for _, s := range m.Stages {
		r.Counter(`hcd_build_stage_runs_total{stage="` + s.Name + `"}`).Inc()
		r.Counter(`hcd_build_stage_ns_total{stage="` + s.Name + `"}`).Add(int64(s.Duration))
		r.Counter(`hcd_build_stage_allocs_total{stage="` + s.Name + `"}`).Add(int64(s.ScratchAllocs))
	}
	r.Counter("hcd_build_total").Inc()
	r.Counter("hcd_build_ns_total").Add(int64(m.TotalTime))
}

// publishReport records the quality measurements of one evaluation: the
// exact certification work counters plus last-evaluation gauges of the
// headline [φ, ρ] figures. Called from the evaluate loop when a registry
// travels in its context; the integer counters are aggregated with atomic
// adds from deterministic per-cluster work, so totals are identical at any
// GOMAXPROCS.
func publishReport(r *obs.Registry, rep *Report) {
	if r == nil {
		return
	}
	rep.Cert.Publish(r)
	r.Counter("hcd_evaluate_total").Inc()
	r.Counter("hcd_evaluate_clusters_total").Add(int64(rep.Count))
	r.Gauge("hcd_evaluate_last_phi").Set(rep.Phi)
	r.Gauge("hcd_evaluate_last_rho").Set(rep.Rho)
	r.Gauge("hcd_evaluate_last_gamma_min").Set(rep.GammaMin)
	r.Gauge("hcd_evaluate_last_clusters").Set(float64(rep.Count))
}
