package decomp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hcd/internal/faultinject"
	"hcd/internal/workload"
)

func TestPipelineStagePanicBecomesError(t *testing.T) {
	p := NewPipeline(context.Background())
	err := p.Run("exploding", func(ctx context.Context) (StageInfo, error) {
		panic("stage blew up")
	})
	if err == nil {
		t.Fatal("panicking stage must surface as an error")
	}
	if !strings.Contains(err.Error(), "panic during stage") || !strings.Contains(err.Error(), "stage blew up") {
		t.Errorf("error %q does not describe the panic", err)
	}
	// The pipeline itself survives: a later stage still runs.
	if err := p.Run("ok", func(ctx context.Context) (StageInfo, error) {
		return StageInfo{Vertices: 1}, nil
	}); err != nil {
		t.Fatalf("stage after a panic: %v", err)
	}
	if len(p.Metrics.Stages) != 2 {
		t.Errorf("metrics recorded %d stages, want 2", len(p.Metrics.Stages))
	}
}

func TestPipelineStageFailInjection(t *testing.T) {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.StageFail: {OnHit: 2, Count: 1},
	})
	defer restore()
	p := NewPipeline(context.Background())
	ok := func(ctx context.Context) (StageInfo, error) { return StageInfo{}, nil }
	if err := p.Run("first", ok); err != nil {
		t.Fatalf("first stage: %v", err)
	}
	err := p.Run("second", ok)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("second stage: err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "stage second") {
		t.Errorf("error %q does not name the failed stage", err)
	}
	if err := p.Run("third", ok); err != nil {
		t.Fatalf("third stage (past the fault window): %v", err)
	}
}

func TestPerturbCorruptDegeneratesClustering(t *testing.T) {
	g := workload.Grid2D(16, 16, workload.UniformWeight(1, 1), 1)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.PerturbCorrupt: {OnHit: 1, Count: 0},
	})
	defer restore()
	d, err := FixedDegreeCtx(context.Background(), g, 4, 1)
	if err != nil {
		t.Fatalf("FixedDegreeCtx: %v", err)
	}
	// The corrupted scan selects no edges, so every vertex must come out a
	// singleton — the degenerate no-reduction shape downstream guards catch.
	if d.Count != g.N() {
		t.Fatalf("corrupted clustering produced %d clusters on %d vertices, want all singletons", d.Count, g.N())
	}
}

func TestFixedDegreeCleanAfterFaultWindow(t *testing.T) {
	g := workload.Grid2D(16, 16, workload.UniformWeight(1, 1), 1)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.PerturbCorrupt: {OnHit: 1, Count: 1},
	})
	defer restore()
	if d, err := FixedDegreeCtx(context.Background(), g, 4, 1); err != nil || d.Count != g.N() {
		t.Fatalf("first build inside fault window: count=%d err=%v", d.Count, err)
	}
	d, err := FixedDegreeCtx(context.Background(), g, 4, 1)
	if err != nil {
		t.Fatalf("second build: %v", err)
	}
	if d.Count >= g.N()/2 {
		t.Errorf("post-window build got no reduction: %d clusters on %d vertices", d.Count, g.N())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("post-window decomposition invalid: %v", err)
	}
}
