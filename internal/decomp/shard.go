package decomp

// Shard-parallel fixed-degree decomposition. The Section 3.1 clustering is
// one independent pass per vertex (Remark 1), so it shards cleanly: partition
// the vertex range into contiguous shards of balanced adjacency mass, run
// the perturb/heaviest-edge/split construction per shard over *intra-shard*
// edges only, then stitch along the shard boundary.
//
// Sharding can only lose edges that cross a shard boundary, and losing an
// edge only matters to a vertex whose every forest candidate crossed: after
// shard-local clustering, any vertex with at least one intra-shard neighbor
// has selected a heaviest intra-shard edge and sits in a cluster of size
// ≥ 2 (or a leftover-root merge). Hence every cluster damaged by sharding
// is a *singleton whose vertex has cross-shard neighbors* — the stitch pass
// only needs to consider those.
//
// The stitch is deterministic and GOMAXPROCS-invariant: it runs serially
// over boundary singletons in ascending vertex id, merging each into the
// cluster of its heaviest-perturbed cross-shard neighbor if and only if the
// merged cluster stays small enough for exact certification and its
// certified closure conductance keeps at least half of the target cluster's
// pre-stitch value. Rejected candidates stay singletons — exactly what the
// unsharded construction produces for isolated vertices — so Validate and
// the γ-violation bound of Section 2 hold unconditionally.

import (
	"context"
	"fmt"
	"math"

	"hcd/internal/graph"
	"hcd/internal/par"
	"hcd/internal/treealg"
)

// ShardStats summarizes the sharded build: how much boundary the partition
// created and what the stitch did about it.
type ShardStats struct {
	Shards             int // shards actually used
	BoundaryEdges      int // edges crossing a shard boundary
	BoundarySingletons int // stitch candidates: singleton clusters with cross-shard neighbors
	Merged             int // candidates absorbed into a neighboring shard's cluster
	Rejected           int // candidates kept as singletons (size cap or conductance)
}

// stitchSizeFactor bounds a stitched cluster at stitchSizeFactor·sizeCap
// vertices (and never above graph.MaxExactConductance, so the certifier
// stays exact).
const stitchSizeFactor = 4

// stitchPhiKeep is the fraction of the target cluster's pre-stitch certified
// conductance a merge must preserve to be accepted.
const stitchPhiKeep = 0.5

// FixedDegreeSharded is FixedDegreeShardedCtx without a context.
func FixedDegreeSharded(g *graph.Graph, sizeCap int, seed int64, shards int) (*Decomposition, ShardStats, error) {
	return FixedDegreeShardedCtx(context.Background(), g, sizeCap, seed, shards)
}

// FixedDegreeShardedCtx builds a Section 3.1 fixed-degree decomposition in
// shards: partition, cluster every shard concurrently, stitch the boundary.
// With shards ≤ 1 (or a graph too small to split) it is exactly
// FixedDegreeCtx — same bits, same clusters. The result is a deterministic
// function of (g, sizeCap, seed, shards) regardless of GOMAXPROCS.
func FixedDegreeShardedCtx(ctx context.Context, g *graph.Graph, sizeCap int, seed int64, shards int) (*Decomposition, ShardStats, error) {
	if shards <= 1 || g.N() < 2*shards {
		d, err := FixedDegreeCtx(ctx, g, sizeCap, seed)
		return d, ShardStats{Shards: 1}, err
	}
	sh := graph.PartitionShards(g, shards)
	d, stats, err := ClusterShards(ctx, g, sh, sizeCap, seed)
	if err != nil {
		return nil, stats, err
	}
	if err := StitchShards(ctx, d, sh, sizeCap, seed, &stats); err != nil {
		return nil, stats, err
	}
	return d, stats, nil
}

// ClusterShards runs the fixed-degree clustering of every shard concurrently
// on internal/par workers. Each shard clusters over its intra-shard edges
// only, using the host-global edge perturbation, and writes shard-local
// cluster ids into its own disjoint slice of d.Assign; a serial pass then
// offsets the ids in shard order. Boundary singletons are left for
// StitchShards. The shards must tile [0, g.N()) — PartitionShards output.
func ClusterShards(ctx context.Context, g *graph.Graph, shards []graph.Shard, sizeCap int, seed int64) (*Decomposition, ShardStats, error) {
	if sizeCap < 2 {
		return nil, ShardStats{}, fmt.Errorf("decomp: sizeCap must be ≥ 2, got %d", sizeCap)
	}
	stats := ShardStats{Shards: len(shards)}
	n := g.N()
	d := &Decomposition{G: g, Assign: make([]int, n)}
	if n == 0 {
		return d, stats, nil
	}
	covered := 0
	for _, s := range shards {
		if s.Lo() != covered {
			return nil, stats, fmt.Errorf("decomp: shards do not tile the vertex range (gap at %d)", covered)
		}
		covered = s.Hi()
	}
	if covered != n {
		return nil, stats, fmt.Errorf("decomp: shards cover [0,%d), graph has %d vertices", covered, n)
	}
	counts := make([]int, len(shards))
	errs := make([]error, len(shards))
	par.For(len(shards), 1, func(lo, hi int) {
		for si := lo; si < hi; si++ {
			counts[si], errs[si] = clusterShard(ctx, shards[si], sizeCap, seed, d.Assign)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	// Shard-local ids become global by adding the shard's offset — a
	// deterministic function of the shard order, independent of which worker
	// finished first.
	offset := 0
	for si, s := range shards {
		if offset != 0 {
			a := d.Assign[s.Lo():s.Hi()]
			for i := range a {
				a[i] += offset
			}
		}
		offset += counts[si]
	}
	d.Count = offset
	return d, stats, nil
}

// clusterShard is FixedDegreeCtx restricted to one shard: heaviest
// intra-shard perturbed edge per vertex, shard-local forest, splitForest.
// Cluster ids are shard-local starting at 0, written into
// hostAssign[s.Lo():s.Hi()].
func clusterShard(ctx context.Context, s graph.Shard, sizeCap int, seed int64, hostAssign []int) (int, error) {
	ln := s.Len()
	if ln == 0 {
		return 0, nil
	}
	hostN := s.Host().N()
	assign := hostAssign[s.Lo():s.Hi()]
	// [2] Heaviest perturbed intra-shard edge per vertex. The perturbation
	// hashes host-global ids, so shard boundaries do not change which of the
	// surviving edges wins.
	bestTo := make([]int, ln)
	for li := 0; li < ln; li++ {
		if err := poll(ctx, li); err != nil {
			return 0, err
		}
		v := s.Global(li)
		bestTo[li] = -1
		nbr, w := s.Neighbors(v)
		bestW := 0.0
		for i, u := range nbr {
			if !s.Contains(u) {
				continue
			}
			pw := w[i] * perturbFactor(v, u, hostN, seed)
			if bestTo[li] < 0 || pw > bestW || (pw == bestW && u < s.Global(bestTo[li])) {
				bestTo[li], bestW = s.Local(u), pw
			}
		}
	}
	fEdges := make([]graph.Edge, 0, ln)
	for v := 0; v < ln; v++ {
		if err := poll(ctx, v); err != nil {
			return 0, err
		}
		u := bestTo[v]
		if u < 0 {
			continue
		}
		if v < u || bestTo[u] != v {
			w, _ := s.Host().Weight(s.Global(v), s.Global(u))
			fEdges = append(fEdges, graph.Edge{U: minOf(v, u), V: maxOf(v, u), W: w})
		}
	}
	forest, err := graph.NewFromUniqueEdges(ln, fEdges)
	if err != nil {
		return 0, err
	}
	if !forest.IsForest() {
		return 0, fmt.Errorf("decomp: shard [%d,%d) heaviest-edge graph contains a cycle (tie-breaking failure)", s.Lo(), s.Hi())
	}
	rooted, err := treealg.RootForest(forest)
	if err != nil {
		return 0, err
	}
	return splitForest(ctx, forest, rooted, sizeCap, assign)
}

// StitchShards repairs the boundary damage of a per-shard clustering, in
// place. It visits every boundary singleton in ascending vertex id and
// merges it into the cluster of its heaviest-perturbed cross-shard neighbor
// when (a) the merged cluster stays within
// min(stitchSizeFactor·sizeCap, graph.MaxExactConductance) vertices and
// (b) the exact certifier confirms the merged closure keeps at least
// stitchPhiKeep of the target cluster's pre-stitch conductance. The pass is
// serial, so the result is independent of GOMAXPROCS; cluster ids are
// compacted afterwards.
func StitchShards(ctx context.Context, d *Decomposition, shards []graph.Shard, sizeCap int, seed int64, stats *ShardStats) error {
	g := d.G
	n := g.N()
	if n == 0 {
		return nil
	}
	hostN := n
	size := make([]int, d.Count)
	for _, c := range d.Assign {
		size[c]++
	}
	order, start := d.clusterSpans()
	// Members of cluster c after merges: the original span plus extra[c].
	extra := make(map[int][]int)
	// phi0 caches each target cluster's certified conductance before any
	// stitch merge touched it.
	phi0 := make(map[int]float64)
	cert := graph.NewCertifier(g)
	mergeCap := stitchSizeFactor * sizeCap
	if mergeCap > graph.MaxExactConductance {
		mergeCap = graph.MaxExactConductance
	}
	scratch := make([]int, 0, mergeCap+1)
	for _, s := range shards {
		for v := s.Lo(); v < s.Hi(); v++ {
			if err := poll(ctx, v); err != nil {
				return err
			}
			nbr, w := s.Neighbors(v)
			boundary := false
			best, bestW := -1, 0.0
			for i, u := range nbr {
				if s.Contains(u) {
					continue
				}
				if u > v {
					stats.BoundaryEdges++
				}
				boundary = true
				pw := w[i] * perturbFactor(v, u, hostN, seed)
				if best < 0 || pw > bestW || (pw == bestW && u < best) {
					best, bestW = u, pw
				}
			}
			if !boundary || size[d.Assign[v]] != 1 {
				continue
			}
			stats.BoundarySingletons++
			c := d.Assign[best]
			if size[c]+1 > mergeCap {
				stats.Rejected++
				continue
			}
			if size[c] > 1 {
				// A real target cluster: the merge must not destroy its
				// certified closure conductance.
				members := scratch[:0]
				members = append(members, order[start[c]:start[c]+size[c]-len(extra[c])]...)
				members = append(members, extra[c]...)
				target, ok := phi0[c]
				if !ok {
					target = mustClusterPhi(cert, members)
					phi0[c] = target
				}
				merged := mustClusterPhi(cert, append(members, v))
				if merged < stitchPhiKeep*target && !math.IsInf(target, 1) {
					stats.Rejected++
					continue
				}
			}
			// A singleton target has nothing to degrade (its certified φ is
			// the degenerate single-stub cut): pairing two boundary
			// singletons is exactly what the unsharded construction does, so
			// only the size cap applies.
			size[d.Assign[v]]--
			d.Assign[v] = c
			size[c]++
			extra[c] = append(extra[c], v)
			stats.Merged++
		}
	}
	if stats.Merged == 0 {
		return nil
	}
	// Compact away the emptied singleton clusters, preserving relative id
	// order.
	remap := make([]int, d.Count)
	next := 0
	for c := 0; c < d.Count; c++ {
		if size[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = next
		next++
	}
	for v, c := range d.Assign {
		d.Assign[v] = remap[c]
	}
	d.Count = next
	return nil
}
