package decomp

import (
	"context"
	"fmt"
	"math"
	"sync"

	"hcd/internal/graph"
	"hcd/internal/par"
	"hcd/internal/treealg"
)

// Tree computes the Theorem 2.1 decomposition of a tree or forest.
//
// The construction follows the paper: compute the 3-critical vertices of
// each (rooted) component; the non-critical vertices then form maximal
// connected groups of at most three vertices ("3-bridge interiors"). Each
// group is clustered by the paper's case analysis — kept whole, split after
// cutting its lightest separating edge, or folded into the clusters of
// adjacent critical vertices — except that instead of hard-coding the figure
// cases we enumerate the (at most four) feasible local partitions and pick
// the one maximizing the minimum closure conductance. Components with at
// most three vertices become single clusters.
//
// On trees with ≥ 2 vertices the result has reduction factor ρ ≥ 6/5 and
// every closure conductance is at least 1/3 (the paper states 1/2; the
// worst-case constant certified by the local cut analysis is 1/3, and
// measured values on non-adversarial weights sit at 1/2 or above — see
// EXPERIMENTS.md E3).
func Tree(g *graph.Graph) (*Decomposition, error) {
	return treeImpl(context.Background(), g, false)
}

// TreeCtx is Tree under a context: cancellation mid-build returns an error
// wrapping ErrBuildCancelled (and the context's own error) within one poll
// interval.
func TreeCtx(ctx context.Context, g *graph.Graph) (*Decomposition, error) {
	return treeImpl(ctx, g, false)
}

// TreeParallel is Tree with the per-bridge case analysis fanned out across
// cores: 3-critical vertices come from the parallel machinery, the
// non-critical groups are independent and evaluated concurrently, and only
// the final cluster-id assignment is sequential — mirroring the "O(1)
// parallel time after the 3-critical computation" claim of Theorem 2.1.
// Results are identical to Tree.
func TreeParallel(g *graph.Graph) (*Decomposition, error) {
	return treeImpl(context.Background(), g, true)
}

// TreeParallelCtx is TreeParallel under a context.
func TreeParallelCtx(ctx context.Context, g *graph.Graph) (*Decomposition, error) {
	return treeImpl(ctx, g, true)
}

func treeImpl(ctx context.Context, g *graph.Graph, parallel bool) (*Decomposition, error) {
	if !g.IsForest() {
		return nil, fmt.Errorf("decomp: Tree requires an acyclic graph")
	}
	n := g.N()
	d := &Decomposition{G: g, Assign: make([]int, n)}
	if n == 0 {
		return d, nil
	}
	rooted, err := treealg.RootForest(g)
	if err != nil {
		return nil, err
	}
	crit := rooted.Critical3()
	compLabel, ncomp := g.Components()
	compSize := make([]int, ncomp)
	for _, c := range compLabel {
		compSize[c]++
	}
	for i := range d.Assign {
		d.Assign[i] = -1
	}
	// Small components become single clusters.
	smallCluster := make([]int, ncomp)
	for i := range smallCluster {
		smallCluster[i] = -1
	}
	for v := 0; v < n; v++ {
		if compSize[compLabel[v]] <= 3 {
			if smallCluster[compLabel[v]] < 0 {
				smallCluster[compLabel[v]] = d.Count
				d.Count++
			}
			d.Assign[v] = smallCluster[compLabel[v]]
		}
	}
	// One cluster per critical vertex (in large components).
	critCluster := make([]int, n)
	for v := 0; v < n; v++ {
		critCluster[v] = -1
		if crit[v] && d.Assign[v] < 0 {
			critCluster[v] = d.Count
			d.Assign[v] = d.Count
			d.Count++
		}
	}
	b := &treeBuilder{g: g, d: d, crit: crit, critCluster: critCluster}
	b.certs.New = func() any { return graph.NewCertifier(g) }
	// Collect the maximal non-critical groups, then choose each group's
	// best local partition (a pure, independent computation) and apply the
	// choices. The choose phase fans out across cores when requested.
	seen := make([]bool, n)
	var groups [][]int
	for v := 0; v < n; v++ {
		if err := poll(ctx, v); err != nil {
			return nil, err
		}
		if seen[v] || crit[v] || d.Assign[v] >= 0 {
			continue
		}
		group := collectGroup(g, crit, seen, v)
		if len(group) > 3 {
			return nil, fmt.Errorf("decomp: internal error: non-critical group of size %d", len(group))
		}
		groups = append(groups, group)
	}
	choices := make([]candidate, len(groups))
	errs := make([]error, len(groups))
	choose := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := poll(ctx, i); err != nil {
				errs[i] = err
				return
			}
			choices[i], errs[i] = b.chooseCandidate(groups[i])
		}
	}
	if parallel {
		par.For(len(groups), 64, choose)
	} else {
		choose(0, len(groups))
	}
	if ctx.Err() != nil {
		return nil, Cancelled(ctx)
	}
	for i := range groups {
		if errs[i] != nil {
			return nil, errs[i]
		}
		b.apply(choices[i])
	}
	return d, nil
}

// collectGroup gathers the maximal connected non-critical group containing v.
func collectGroup(g *graph.Graph, crit []bool, seen []bool, v int) []int {
	stack := []int{v}
	seen[v] = true
	var group []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		group = append(group, x)
		nbr, _ := g.Neighbors(x)
		for _, u := range nbr {
			if !crit[u] && !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return group
}

type treeBuilder struct {
	g           *graph.Graph
	d           *Decomposition
	crit        []bool
	critCluster []int
	certs       sync.Pool // *graph.Certifier: per-goroutine scoring scratch
}

// candidate is one feasible local partition of a non-critical group: some
// connected subsets become clusters of their own, the rest of the vertices
// join the cluster of an adjacent critical vertex.
type candidate struct {
	own      [][]int
	assignV  []int
	assignC  []int
	minScore float64
}

// chooseCandidate evaluates every feasible local partition of a group and
// returns the one maximizing the minimum closure-conductance score. It is a
// pure function of the (immutable) graph and critical structure, so groups
// can be chosen in parallel.
func (b *treeBuilder) chooseCandidate(group []int) (candidate, error) {
	var cands []candidate
	switch len(group) {
	case 1:
		if _, ok := b.addAssign(&cands, nil, group); !ok {
			return candidate{}, fmt.Errorf("decomp: isolated non-critical vertex %d has no critical neighbor", group[0])
		}
	case 2:
		b.addOwn(&cands, [][]int{group}, nil)
		b.addAssign(&cands, nil, group)
	case 3:
		// A 3-vertex tree group is a path end–mid–end.
		mid, ends := b.pathShape(group)
		b.addOwn(&cands, [][]int{group}, nil)
		b.addOwn(&cands, [][]int{{mid, ends[0]}}, []int{ends[1]})
		b.addOwn(&cands, [][]int{{mid, ends[1]}}, []int{ends[0]})
		b.addAssign(&cands, nil, group)
	}
	if len(cands) == 0 {
		return candidate{}, fmt.Errorf("decomp: no feasible clustering for group %v", group)
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.minScore > best.minScore {
			best = c
		}
	}
	return best, nil
}

// apply commits a chosen candidate: own-sets become fresh clusters, the
// rest join their critical neighbors' clusters.
func (b *treeBuilder) apply(best candidate) {
	for _, set := range best.own {
		id := b.d.Count
		b.d.Count++
		for _, v := range set {
			b.d.Assign[v] = id
		}
	}
	for i, v := range best.assignV {
		b.d.Assign[v] = b.critCluster[best.assignC[i]]
	}
}

// pathShape identifies the middle and end vertices of a 3-vertex tree group.
func (b *treeBuilder) pathShape(group []int) (mid int, ends [2]int) {
	in := map[int]bool{group[0]: true, group[1]: true, group[2]: true}
	ei := 0
	mid = -1
	for _, v := range group {
		nbr, _ := b.g.Neighbors(v)
		internal := 0
		for _, u := range nbr {
			if in[u] {
				internal++
			}
		}
		if internal == 2 {
			mid = v
		} else {
			ends[ei] = v
			ei++
		}
	}
	return mid, ends
}

// addOwn appends a candidate consisting of own-clusters plus assignments for
// the leftover vertices; it is dropped if a leftover has no critical
// neighbor. Own clusters are scored by their exact closure conductance,
// certified directly on the cluster core (no closure materialized).
func (b *treeBuilder) addOwn(cands *[]candidate, own [][]int, leftover []int) {
	cert := b.certs.Get().(*graph.Certifier)
	defer b.certs.Put(cert)
	c := candidate{own: own, minScore: math.Inf(1)}
	for _, set := range own {
		if len(set) > graph.MaxExactConductance {
			// Cannot happen for groups of ≤ 3 tree vertices; guard anyway.
			return
		}
		if phi := mustClusterPhi(cert, set); phi < c.minScore {
			c.minScore = phi
		}
	}
	for _, v := range leftover {
		cv, score, ok := b.bestCritical(v)
		if !ok {
			return
		}
		c.assignV = append(c.assignV, v)
		c.assignC = append(c.assignC, cv)
		if score < c.minScore {
			c.minScore = score
		}
	}
	*cands = append(*cands, c)
}

// addAssign appends the all-assigned candidate (own must be nil); it reports
// whether every vertex had a critical neighbor.
func (b *treeBuilder) addAssign(cands *[]candidate, own [][]int, vs []int) (candidate, bool) {
	c := candidate{own: own, minScore: math.Inf(1)}
	for _, v := range vs {
		cv, score, ok := b.bestCritical(v)
		if !ok {
			return c, false
		}
		c.assignV = append(c.assignV, v)
		c.assignC = append(c.assignC, cv)
		if score < c.minScore {
			c.minScore = score
		}
	}
	*cands = append(*cands, c)
	return c, true
}

// bestCritical returns the critical neighbor c of v maximizing the branch
// score a/(a+2s), where a = w(v,c) and s = vol(v) − a is the weight v brings
// into the critical cluster's closure as pendant stubs. The score lower-
// bounds the closure conductance contribution of the new branch.
func (b *treeBuilder) bestCritical(v int) (int, float64, bool) {
	nbr, w := b.g.Neighbors(v)
	best, bestScore := -1, -1.0
	for i, u := range nbr {
		if !b.crit[u] || b.critCluster[u] < 0 {
			continue
		}
		a := w[i]
		s := b.g.Vol(v) - a
		score := a / (a + 2*s)
		if score > bestScore {
			best, bestScore = u, score
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	return best, bestScore, true
}
