// Package support provides the support-theory numerics of the paper's
// appendix: generalized eigenvalue extremes of Laplacian pencils (Definition
// 5.2 / Lemma 5.3), support numbers σ(A,B) measured either densely or
// through PCG probes, and the congestion–dilation embedding bound behind the
// splitting-lemma argument of Theorem 3.5.
package support

import (
	"fmt"
	"math"

	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/solver"
)

// GeneralizedExtremes returns the smallest and largest generalized
// eigenvalues of the pencil (B, A) — λ with Bx = λAx — restricted to the
// subspace where A is positive (eigenvalues of A below relTol·λmax(A) are
// treated as the common null space). Both matrices must be symmetric PSD
// with the same null space for the numbers to mean support values.
func GeneralizedExtremes(b, a *dense.Matrix, relTol float64) (float64, float64, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return 0, 0, fmt.Errorf("support: shape mismatch")
	}
	n := a.Rows
	vals, vecs, err := dense.SymEig(a)
	if err != nil {
		return 0, 0, err
	}
	lmax := vals[n-1]
	if lmax <= 0 {
		return 0, 0, fmt.Errorf("support: A is zero or negative")
	}
	cut := relTol * lmax
	var keep []int
	for i, l := range vals {
		if l > cut {
			keep = append(keep, i)
		}
	}
	r := len(keep)
	if r == 0 {
		return 0, 0, fmt.Errorf("support: A has no positive spectrum above tolerance")
	}
	// W = U_r Λ_r^{−1/2}; M = Wᵀ B W is symmetric with eigenvalues equal to
	// the generalized eigenvalues of (B, A) on range(A).
	w := dense.NewMatrix(n, r)
	for j, idx := range keep {
		s := 1 / math.Sqrt(vals[idx])
		for i := 0; i < n; i++ {
			w.Set(i, j, vecs.At(i, idx)*s)
		}
	}
	m := w.Transpose().Mul(b.Mul(w))
	mv, _, err := dense.SymEig(m)
	if err != nil {
		return 0, 0, err
	}
	return mv[0], mv[r-1], nil
}

// Sigma returns σ(B, A) = λmax(B, A) for dense Laplacian pencils — the
// support number of Definition 5.1 via the Rayleigh characterization of
// Lemma 5.3.
func Sigma(b, a *dense.Matrix) (float64, error) {
	_, hi, err := GeneralizedExtremes(b, a, 1e-9)
	return hi, err
}

// ConditionNumber returns κ(A, B) = σ(A,B)·σ(B,A) for dense pencils.
func ConditionNumber(a, b *dense.Matrix) (float64, error) {
	lo, hi, err := GeneralizedExtremes(b, a, 1e-9)
	if err != nil {
		return 0, err
	}
	if lo <= 0 {
		return math.Inf(1), nil
	}
	return hi / lo, nil
}

// Numbers holds PCG-probed support values for a pair (A, B) where B is
// given through its (pseudo)inverse applier.
type Numbers struct {
	SigmaAB float64 // σ(A, B) = λmax(B⁺A)
	SigmaBA float64 // σ(B, A) = 1/λmin(B⁺A)
	Kappa   float64 // condition number κ(A,B)
}

// Probe estimates the support numbers of (A, B) from the Lanczos tridiagonal
// of a PCG run with preconditioner B⁺ and the given probe right-hand side.
// iters bounds the Lanczos depth; 50–100 gives 2–3 digits on well-behaved
// pencils.
func Probe(a solver.Operator, bInv solver.Preconditioner, probe []float64, iters int) (Numbers, error) {
	res := solver.PCG(a, bInv, probe, solver.Options{Tol: 1e-14, MaxIter: iters, ProjectMean: true})
	lmin, lmax, err := solver.SpectrumEstimate(res.Alphas, res.Betas)
	if err != nil {
		return Numbers{}, err
	}
	out := Numbers{SigmaAB: lmax}
	if lmin > 0 {
		out.SigmaBA = 1 / lmin
		out.Kappa = lmax / lmin
	} else {
		out.SigmaBA = math.Inf(1)
		out.Kappa = math.Inf(1)
	}
	return out, nil
}

// WeightedPath routes a fraction of an edge's weight along a path of
// B-edges.
type WeightedPath struct {
	Weight float64  // the portion of the A-edge's weight carried
	Edges  [][2]int // contiguous B-edges from the A-edge's U to its V
}

// FractionalEmbeddingBound generalizes EmbeddingBound to fractional
// routings: each A-edge's weight may be split across several paths (the
// routing Theorem 3.5 uses, where every crossing edge carries its own share
// of the quotient edge). For each A-edge the path weights must sum to the
// edge weight. The bound is
//
//	σ(A, B) ≤ max over f ∈ B of (Σ paths through f: weight·|path|) / w_B(f).
func FractionalEmbeddingBound(a, b *graph.Graph, routes [][]WeightedPath) (float64, error) {
	ea := a.Edges()
	if len(routes) != len(ea) {
		return 0, fmt.Errorf("support: need one route set per edge of A (%d vs %d)", len(routes), len(ea))
	}
	congestion := make(map[[2]int]float64)
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for i, e := range ea {
		total := 0.0
		for _, wp := range routes[i] {
			if wp.Weight <= 0 {
				return 0, fmt.Errorf("support: non-positive path weight for edge %d", i)
			}
			if len(wp.Edges) == 0 {
				return 0, fmt.Errorf("support: empty path for edge %d", i)
			}
			cur := e.U
			for _, f := range wp.Edges {
				if _, ok := b.Weight(f[0], f[1]); !ok {
					return 0, fmt.Errorf("support: path uses non-edge (%d,%d) of B", f[0], f[1])
				}
				switch cur {
				case f[0]:
					cur = f[1]
				case f[1]:
					cur = f[0]
				default:
					return 0, fmt.Errorf("support: path for edge %d is not contiguous", i)
				}
			}
			if cur != e.V {
				return 0, fmt.Errorf("support: path for edge %d ends at %d, want %d", i, cur, e.V)
			}
			total += wp.Weight
			load := wp.Weight * float64(len(wp.Edges))
			for _, f := range wp.Edges {
				congestion[key(f[0], f[1])] += load
			}
		}
		if mathAbs(total-e.W) > 1e-9*e.W {
			return 0, fmt.Errorf("support: edge %d routes %v of weight %v", i, total, e.W)
		}
	}
	bound := 0.0
	for k, c := range congestion {
		w, _ := b.Weight(k[0], k[1])
		if r := c / w; r > bound {
			bound = r
		}
	}
	return bound, nil
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// EmbeddingBound evaluates the congestion–dilation support bound: routing
// every edge e of A along a path of edges of B, the splitting lemma gives
//
//	σ(A, B) ≤ max over f ∈ B of (Σ_{e: f ∈ path(e)} w_A(e)·|path(e)|) / w_B(f).
//
// paths[i] lists the B-edges (as index pairs) routing the i-th edge of
// a.Edges(). It returns the bound, or an error if a path uses a non-edge of
// b or does not connect the endpoints of its A-edge.
func EmbeddingBound(a, b *graph.Graph, paths [][][2]int) (float64, error) {
	ea := a.Edges()
	if len(paths) != len(ea) {
		return 0, fmt.Errorf("support: need one path per edge of A (%d vs %d)", len(paths), len(ea))
	}
	congestion := make(map[[2]int]float64)
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for i, e := range ea {
		path := paths[i]
		if len(path) == 0 {
			return 0, fmt.Errorf("support: empty path for edge %d", i)
		}
		// Verify connectivity: the path must walk from e.U to e.V.
		cur := e.U
		for _, f := range path {
			if _, ok := b.Weight(f[0], f[1]); !ok {
				return 0, fmt.Errorf("support: path uses non-edge (%d,%d) of B", f[0], f[1])
			}
			switch cur {
			case f[0]:
				cur = f[1]
			case f[1]:
				cur = f[0]
			default:
				return 0, fmt.Errorf("support: path for edge %d is not contiguous", i)
			}
		}
		if cur != e.V {
			return 0, fmt.Errorf("support: path for edge %d ends at %d, want %d", i, cur, e.V)
		}
		load := e.W * float64(len(path))
		for _, f := range path {
			congestion[key(f[0], f[1])] += load
		}
	}
	bound := 0.0
	for k, c := range congestion {
		w, _ := b.Weight(k[0], k[1])
		if r := c / w; r > bound {
			bound = r
		}
	}
	return bound, nil
}
