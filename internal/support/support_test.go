package support

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/solver"
	"hcd/internal/workload"
)

func randomConnected(rng *rand.Rand, n, extra int) *graph.Graph {
	var es []graph.Edge
	for v := 1; v < n; v++ {
		es = append(es, graph.Edge{U: rng.Intn(v), V: v, W: 0.2 + rng.Float64()*3})
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			es = append(es, graph.Edge{U: u, V: v, W: 0.2 + rng.Float64()*3})
		}
	}
	return graph.MustFromEdges(n, es)
}

func lapDense(g *graph.Graph) *dense.Matrix {
	return dense.FromRowMajor(g.N(), g.N(), g.LapDense())
}

func TestGeneralizedExtremesScaledPencil(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 12, 10)
	a := lapDense(g)
	b := lapDense(g)
	for i := range b.Data {
		b.Data[i] *= 2.5
	}
	lo, hi, err := GeneralizedExtremes(b, a, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-2.5) > 1e-6 || math.Abs(hi-2.5) > 1e-6 {
		t.Errorf("extremes [%v, %v], want [2.5, 2.5]", lo, hi)
	}
}

func TestSigmaSubgraphBound(t *testing.T) {
	// For B a subgraph of A (same vertex set): σ(B, A) ≤ 1 and σ(A, B) ≥ 1.
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(rng, 10, 12)
	tree := graph.MustFromEdges(g.N(), g.Edges()[:0:0])
	// Build a spanning subgraph: drop ~30% of edges but keep connectivity
	// by keeping a BFS tree.
	_, parent := g.BFS(0)
	inTree := make(map[[2]int]bool)
	var es []graph.Edge
	for v := 1; v < g.N(); v++ {
		w, _ := g.Weight(v, parent[v])
		u, x := v, parent[v]
		if u > x {
			u, x = x, u
		}
		inTree[[2]int{u, x}] = true
		es = append(es, graph.Edge{U: u, V: x, W: w})
	}
	for _, e := range g.Edges() {
		u, x := e.U, e.V
		if u > x {
			u, x = x, u
		}
		if !inTree[[2]int{u, x}] && rng.Float64() < 0.5 {
			es = append(es, e)
		}
	}
	sub := graph.MustFromEdges(g.N(), es)
	_ = tree
	sig, err := Sigma(lapDense(sub), lapDense(g))
	if err != nil {
		t.Fatal(err)
	}
	if sig > 1+1e-6 {
		t.Errorf("σ(B,A) = %v > 1 for subgraph", sig)
	}
	sigBack, err := Sigma(lapDense(g), lapDense(sub))
	if err != nil {
		t.Fatal(err)
	}
	if sigBack < 1-1e-6 {
		t.Errorf("σ(A,B) = %v < 1 for supergraph", sigBack)
	}
}

func TestConditionNumberIdentityPencil(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 9, 6)
	k, err := ConditionNumber(lapDense(g), lapDense(g))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 1e-6 {
		t.Errorf("κ(A,A) = %v", k)
	}
}

func TestProbeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(rng, 40, 60)
	// B: the same graph with perturbed weights (×[1,3]).
	h, err := g.Reweight(func(u, v int, w float64) float64 {
		return w * (1 + 2*perturb01(u, v))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dense truth.
	lo, hi, err := GeneralizedExtremes(lapDense(g), lapDense(h), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Probe: preconditioner = exact H⁺ via dense pinned solve.
	comp := make([]int, g.N())
	pin, err := dense.NewPinnedLaplacian(lapDense(h), comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, g.N())
	for i := range probe {
		probe[i] = rng.NormFloat64()
	}
	nums, err := Probe(solver.LapOperator(g), solver.OpFunc{N: g.N(), F: pin.Solve}, probe, 80)
	if err != nil {
		t.Fatal(err)
	}
	// λ(H⁺A) extremes: λmax = σ(A,H), λmin = 1/σ(H,A).
	wantHi, wantLo := hi, lo // extremes of (A, H) pencil
	if math.Abs(nums.SigmaAB-wantHi)/wantHi > 0.05 {
		t.Errorf("σ(A,H) probe %v vs dense %v", nums.SigmaAB, wantHi)
	}
	if math.Abs(1/nums.SigmaBA-wantLo)/wantLo > 0.05 {
		t.Errorf("λmin probe %v vs dense %v", 1/nums.SigmaBA, wantLo)
	}
	if nums.Kappa < 1 {
		t.Errorf("κ = %v < 1", nums.Kappa)
	}
}

// perturb01 is a deterministic pseudo-random value in [0,1) per edge.
func perturb01(u, v int) float64 {
	if u > v {
		u, v = v, u
	}
	x := uint64(u)*1000003 + uint64(v) + 12345
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float64(x>>11) / float64(1<<53)
}

func TestEmbeddingBoundCycleIntoPath(t *testing.T) {
	// Route the cycle edge (0, n−1) along the path: classic example with
	// congestion·dilation = n−1 per edge.
	n := 6
	var cyc, path []graph.Edge
	for i := 0; i < n-1; i++ {
		e := graph.Edge{U: i, V: i + 1, W: 1}
		cyc = append(cyc, e)
		path = append(path, e)
	}
	cyc = append(cyc, graph.Edge{U: 0, V: n - 1, W: 1})
	a := graph.MustFromEdges(n, cyc)
	b := graph.MustFromEdges(n, path)
	paths := make([][][2]int, 0, a.M())
	for _, e := range a.Edges() {
		if (e.U == 0 && e.V == n-1) || (e.V == 0 && e.U == n-1) {
			var long [][2]int
			for i := 0; i < n-1; i++ {
				long = append(long, [2]int{i, i + 1})
			}
			paths = append(paths, long)
		} else {
			paths = append(paths, [][2]int{{e.U, e.V}})
		}
	}
	bound, err := EmbeddingBound(a, b, paths)
	if err != nil {
		t.Fatal(err)
	}
	// Each path edge carries its own unit load (dilation 1) plus the long
	// route's load (n−1): bound = 1 + (n−1) = n.
	if math.Abs(bound-float64(n)) > 1e-9 {
		t.Errorf("bound = %v, want %v", bound, n)
	}
	// The bound must dominate the true support number.
	sig, err := Sigma(lapDense(a), lapDense(b))
	if err != nil {
		t.Fatal(err)
	}
	if sig > bound+1e-9 {
		t.Errorf("true σ %v exceeds embedding bound %v", sig, bound)
	}
}

func TestGeneralizedExtremesErrors(t *testing.T) {
	a := dense.NewMatrix(2, 3)
	b := dense.NewMatrix(2, 2)
	if _, _, err := GeneralizedExtremes(b, a, 1e-9); err == nil {
		t.Error("non-square accepted")
	}
	zero := dense.NewMatrix(2, 2)
	if _, _, err := GeneralizedExtremes(b, zero, 1e-9); err == nil {
		t.Error("zero A accepted")
	}
}

func TestConditionNumberSingularPencil(t *testing.T) {
	// κ(A, B) with B = a disconnected subgraph of the path A: on range(A)
	// the pencil (B, A) has λmin = 0 (a vector varying only across B's
	// missing edge), so the condition number is +Inf.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	sub := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}})
	k, err := ConditionNumber(lapDense(g), lapDense(sub))
	if err != nil {
		t.Fatal(err)
	}
	// λmin is zero up to eigensolver roundoff, so κ is numerically infinite.
	if !(math.IsInf(k, 1) || k > 1e12) {
		t.Errorf("κ = %v, want (numerically) +Inf for rank-deficient B", k)
	}
}

func TestFractionalEmbeddingBoundValidation(t *testing.T) {
	a := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 2}})
	b := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := FractionalEmbeddingBound(a, b, nil); err == nil {
		t.Error("missing routes accepted")
	}
	// Underweight routing.
	routes := [][]WeightedPath{{{Weight: 1, Edges: [][2]int{{0, 1}}}}}
	if _, err := FractionalEmbeddingBound(a, b, routes); err == nil {
		t.Error("underweight routing accepted")
	}
	// Correct split routing: 2× weight-1 along the same edge.
	routes = [][]WeightedPath{{
		{Weight: 1, Edges: [][2]int{{0, 1}}},
		{Weight: 1, Edges: [][2]int{{1, 0}}},
	}}
	bound, err := FractionalEmbeddingBound(a, b, routes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bound-2) > 1e-12 { // load 2 over capacity 1, dilation 1
		t.Errorf("bound = %v, want 2", bound)
	}
	// Non-contiguous path.
	bad := [][]WeightedPath{{{Weight: 2, Edges: [][2]int{{1, 0}, {1, 0}}}}}
	if _, err := FractionalEmbeddingBound(a, b, bad); err == nil {
		t.Error("non-terminating path accepted")
	}
	// Negative weight.
	neg := [][]WeightedPath{{{Weight: -1, Edges: [][2]int{{0, 1}}}}}
	if _, err := FractionalEmbeddingBound(a, b, neg); err == nil {
		t.Error("negative path weight accepted")
	}
}

func TestEmbeddingBoundValidation(t *testing.T) {
	a := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	b := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := EmbeddingBound(a, b, nil); err == nil {
		t.Error("missing paths accepted")
	}
	if _, err := EmbeddingBound(a, b, [][][2]int{{{0, 1}, {0, 1}}}); err == nil {
		t.Error("non-terminating path accepted")
	}
	if _, err := EmbeddingBound(a, b, [][][2]int{{{1, 0}}}); err != nil {
		t.Errorf("reversed edge orientation rejected: %v", err)
	}
}

// Lemma 3.4 (star complement support): let A be a graph with volumes aᵢ and
// S the star whose i-th edge weight is cᵢ ≤ γ⁻¹·aᵢ (case (i): including the
// largest). Then σ(B, A) ≤ 2/(γ·φ²_A) where B is the Schur complement of
// the star root, bᵢⱼ = cᵢcⱼ/Σc.
func TestLemma34StarComplementSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 12; it++ {
		n := 5 + rng.Intn(8)
		g := randomConnected(rng, n, n)
		phi, err := g.ExactConductance()
		if err != nil {
			t.Fatal(err)
		}
		if phi <= 0 {
			continue
		}
		gamma := 0.3 + 0.7*rng.Float64()
		c := make([]float64, n)
		sum := 0.0
		for v := 0; v < n; v++ {
			// cᵢ = fᵢ·γ⁻¹·aᵢ with fᵢ ∈ (0,1]: any weights satisfying the
			// hypothesis.
			c[v] = (0.2 + 0.8*rng.Float64()) / gamma * g.Vol(v)
			sum += c[v]
		}
		b := dense.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					b.Add(i, i, c[i]*(sum-c[i])/sum)
				} else {
					b.Add(i, j, -c[i]*c[j]/sum)
				}
			}
		}
		sigma, err := Sigma(b, lapDense(g))
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 / (gamma * phi * phi)
		if sigma > bound+1e-7 {
			t.Fatalf("it=%d: σ(B,A) = %v exceeds Lemma 3.4 bound %v (γ=%v φ=%v)",
				it, sigma, bound, gamma, phi)
		}
	}
}

func TestProbeOnWorkloadGraph(t *testing.T) {
	g := workload.Grid2D(8, 8, workload.Lognormal(1), 5)
	rng := rand.New(rand.NewSource(6))
	probe := make([]float64, g.N())
	for i := range probe {
		probe[i] = rng.NormFloat64()
	}
	nums, err := Probe(solver.LapOperator(g), solver.Jacobi(g), probe, 60)
	if err != nil {
		t.Fatal(err)
	}
	if nums.Kappa < 1 || math.IsNaN(nums.Kappa) {
		t.Errorf("κ = %v", nums.Kappa)
	}
}
