package route

import (
	"math/rand"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/laminar"
	"hcd/internal/workload"
)

func buildRouter(t *testing.T, g *graph.Graph) *Router {
	t.Helper()
	lam, err := laminar.Build(g, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(g, lam)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoutePathsAreValid(t *testing.T) {
	g := workload.Grid2D(12, 12, workload.Lognormal(1), 1)
	r := buildRouter(t, g)
	rng := rand.New(rand.NewSource(2))
	for it := 0; it < 200; it++ {
		s, u := rng.Intn(g.N()), rng.Intn(g.N())
		path, err := r.Route(s, u)
		if err != nil {
			t.Fatalf("route(%d,%d): %v", s, u, err)
		}
		if err := Validate(g, path, s, u); err != nil {
			t.Fatalf("route(%d,%d): %v (path %v)", s, u, err, path)
		}
	}
}

func TestRouteIsOblivious(t *testing.T) {
	// Same endpoints → identical path, independent of other traffic.
	g := workload.Grid2D(10, 10, workload.Lognormal(1), 3)
	r := buildRouter(t, g)
	p1, err := r.Route(3, 87)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Route(3, 87)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatal("oblivious route changed between calls")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("oblivious route changed between calls")
		}
	}
}

func TestRouteTrivialAndErrors(t *testing.T) {
	g := workload.Grid2D(6, 6, nil, 1)
	r := buildRouter(t, g)
	p, err := r.Route(5, 5)
	if err != nil || len(p) != 1 {
		t.Errorf("self route = %v, %v", p, err)
	}
	if _, err := r.Route(-1, 3); err == nil {
		t.Error("negative endpoint accepted")
	}
	// Disconnected graph: endpoints in different components never share a
	// cluster.
	dg := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1},
	})
	lam, err := laminar.Build(dg, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lam.Depth() == 0 {
		t.Skip("no hierarchy levels on tiny graph")
	}
	rr, err := New(dg, lam)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Route(0, 5); err == nil {
		t.Error("cross-component route accepted")
	}
}

func TestCongestionComparison(t *testing.T) {
	// Route a random permutation demand set both ways and compare maximum
	// congestion: the oblivious scheme should stay within a moderate factor
	// of shortest-path routing on a mesh (and is adversarially robust,
	// which shortest-path is not).
	g := workload.Grid2D(14, 14, workload.Lognormal(1), 5)
	r := buildRouter(t, g)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(g.N())
	var hier, direct [][]int
	for v := 0; v < g.N(); v += 2 {
		s, u := perm[v], perm[(v+1)%g.N()]
		hp, err := r.Route(s, u)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := ShortestPath(g, s, u)
		if err != nil {
			t.Fatal(err)
		}
		hier = append(hier, hp)
		direct = append(direct, dp)
	}
	hMax, hMean, err := Congestion(g, hier)
	if err != nil {
		t.Fatal(err)
	}
	dMax, dMean, err := Congestion(g, direct)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("congestion max: oblivious %.2f vs shortest-path %.2f; mean: %.2f vs %.2f",
		hMax, dMax, hMean, dMean)
	if hMax > 100*dMax {
		t.Errorf("oblivious congestion %v wildly above shortest-path %v", hMax, dMax)
	}
}

func TestStretchFinite(t *testing.T) {
	g := workload.Grid2D(10, 10, workload.Lognormal(1), 9)
	r := buildRouter(t, g)
	rng := rand.New(rand.NewSource(11))
	worst := 0.0
	for it := 0; it < 100; it++ {
		s, u := rng.Intn(g.N()), rng.Intn(g.N())
		if s == u {
			continue
		}
		p, err := r.Route(s, u)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Stretch(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if st > worst {
			worst = st
		}
	}
	t.Logf("worst hop stretch over 100 demands: %.2f", worst)
	if worst > 50 {
		t.Errorf("stretch %v unreasonable", worst)
	}
}

func TestShortestPathBaseline(t *testing.T) {
	g := workload.Grid2D(5, 5, nil, 1)
	p, err := ShortestPath(g, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 9 { // manhattan distance 8 → 9 vertices
		t.Errorf("path length %d, want 9", len(p))
	}
	if err := Validate(g, p, 0, 24); err != nil {
		t.Error(err)
	}
	dg := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := ShortestPath(dg, 0, 3); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestSimplifyRemovesBacktracks(t *testing.T) {
	in := []int{1, 2, 3, 2, 4, 4, 5}
	out := simplify(in)
	want := []int{1, 2, 4, 5}
	if len(out) != len(want) {
		t.Fatalf("simplify = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("simplify = %v, want %v", out, want)
		}
	}
}

func BenchmarkRoute(b *testing.B) {
	g := workload.Grid2D(30, 30, workload.Lognormal(1), 1)
	lam, err := laminar.Build(g, 4, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := New(g, lam)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, u := rng.Intn(g.N()), rng.Intn(g.N())
		if _, err := r.Route(s, u); err != nil {
			b.Fatal(err)
		}
	}
}
