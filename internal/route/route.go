// Package route demonstrates the application that motivated (φ, γ)
// decompositions in the literature the paper builds on (Räcke;
// Bienkowski–Korzeniowski–Räcke; Harrelson–Hildrum–Rao): oblivious routing
// through a laminar decomposition. Every demand (s, t) follows a canonical
// path determined only by the hierarchy — up through cluster
// representatives to the first common cluster and back down — so routing
// decisions need no global coordination, and high-conductance clusters keep
// the congestion overhead low.
package route

import (
	"fmt"
	"math"

	"hcd/internal/graph"
	"hcd/internal/laminar"
)

// Router precomputes, for every level, a BFS tree of each composed cluster
// rooted at its representative (the maximum-volume vertex), giving O(1)
// next-hop lookups for canonical paths.
type Router struct {
	g   *graph.Graph
	lam *laminar.Laminar
	// assign[ℓ][v]: composed cluster of v at level ℓ.
	assign [][]int
	// rep[ℓ][c]: representative vertex of cluster c at level ℓ.
	rep [][]int
	// up[ℓ][v]: parent of v in the BFS tree of its level-ℓ cluster.
	up [][]int
}

// New builds a router over the hierarchy lam of graph g. The hierarchy must
// have at least one level.
func New(g *graph.Graph, lam *laminar.Laminar) (*Router, error) {
	if lam.Depth() == 0 {
		return nil, fmt.Errorf("route: empty hierarchy")
	}
	r := &Router{g: g, lam: lam}
	for level := 0; level < lam.Depth(); level++ {
		assign, err := lam.AssignAt(level)
		if err != nil {
			return nil, err
		}
		count := lam.Levels[level].Count
		rep := make([]int, count)
		bestVol := make([]float64, count)
		for i := range rep {
			rep[i] = -1
		}
		for v, c := range assign {
			if rep[c] < 0 || g.Vol(v) > bestVol[c] {
				rep[c] = v
				bestVol[c] = g.Vol(v)
			}
		}
		up, err := clusterBFSTrees(g, assign, rep)
		if err != nil {
			return nil, fmt.Errorf("route: level %d: %w", level, err)
		}
		r.assign = append(r.assign, assign)
		r.rep = append(r.rep, rep)
		r.up = append(r.up, up)
	}
	return r, nil
}

// clusterBFSTrees runs one BFS per cluster, restricted to the cluster,
// rooted at its representative. Composed clusters are connected (laminar
// invariant), so every vertex gets a parent.
func clusterBFSTrees(g *graph.Graph, assign []int, rep []int) ([]int, error) {
	n := g.N()
	up := make([]int, n)
	for i := range up {
		up[i] = -2
	}
	queue := make([]int, 0, n)
	for _, root := range rep {
		if root < 0 {
			continue
		}
		up[root] = -1
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			nbr, _ := g.Neighbors(v)
			for _, u := range nbr {
				if up[u] == -2 && assign[u] == assign[v] {
					up[u] = v
					queue = append(queue, u)
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if up[v] == -2 {
			return nil, fmt.Errorf("cluster of vertex %d is not connected", v)
		}
	}
	return up, nil
}

// Route returns the canonical oblivious path from s to t as a vertex
// sequence. It climbs representatives until the two endpoints share a
// cluster; if they never do (different top-level clusters), it returns an
// error — callers should ensure the hierarchy's top level is coarse enough,
// or the endpoints lie in different components.
func (r *Router) Route(s, t int) ([]int, error) {
	n := r.g.N()
	if s < 0 || s >= n || t < 0 || t >= n {
		return nil, fmt.Errorf("route: endpoint out of range")
	}
	if s == t {
		return []int{s}, nil
	}
	common := -1
	for level := 0; level < len(r.assign); level++ {
		if r.assign[level][s] == r.assign[level][t] {
			common = level
			break
		}
	}
	if common < 0 {
		return nil, fmt.Errorf("route: %d and %d share no cluster at any level", s, t)
	}
	// Ascend: s → rep₀(s) → rep₁(s) → … → rep_common; each segment walks
	// the BFS tree of the corresponding level.
	path := []int{s}
	cur := s
	for level := 0; level <= common; level++ {
		target := r.rep[level][r.assign[level][cur]]
		path = appendTreeWalk(path, r.up[level], cur, target)
		cur = target
	}
	// Descend on the t side: build its ascent, then splice reversed.
	tPath := []int{t}
	cur = t
	for level := 0; level < common; level++ {
		target := r.rep[level][r.assign[level][cur]]
		tPath = appendTreeWalk(tPath, r.up[level], cur, target)
		cur = target
	}
	// Connect rep_common-side: cur (= t's rep at level common−1, or t) up
	// to the common representative through the common level's tree.
	tPath = appendTreeWalk(tPath, r.up[common], cur, path[len(path)-1])
	for i := len(tPath) - 2; i >= 0; i-- {
		path = append(path, tPath[i])
	}
	return simplify(path), nil
}

// appendTreeWalk extends path from cur up the tree (parent pointers) to
// target, assuming target is an ancestor of cur in that tree.
func appendTreeWalk(path []int, up []int, cur, target int) []int {
	for cur != target {
		cur = up[cur]
		if cur < 0 {
			// target is the root; if we ran past, the walk is already there.
			break
		}
		path = append(path, cur)
	}
	return path
}

// simplify removes immediate backtracks (v, u, v) and consecutive
// duplicates from a vertex path.
func simplify(path []int) []int {
	out := path[:0:0]
	for _, v := range path {
		for {
			if len(out) >= 1 && out[len(out)-1] == v {
				break // duplicate: skip append below via flag
			}
			if len(out) >= 2 && out[len(out)-2] == v {
				out = out[:len(out)-1] // backtrack: drop the middle vertex
				continue
			}
			out = append(out, v)
			break
		}
	}
	return out
}

// Congestion accumulates per-edge load from a set of vertex paths: each
// traversal adds 1/w(e) to its edge (heavier edges absorb more traffic).
// It returns the maximum and mean load over edges actually used.
func Congestion(g *graph.Graph, paths [][]int) (maxLoad, meanLoad float64, err error) {
	load := make(map[[2]int]float64)
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			u, v := p[i], p[i+1]
			w, ok := g.Weight(u, v)
			if !ok {
				return 0, 0, fmt.Errorf("route: path uses non-edge (%d,%d)", u, v)
			}
			if u > v {
				u, v = v, u
			}
			load[[2]int{u, v}] += 1 / w
		}
	}
	if len(load) == 0 {
		return 0, 0, nil
	}
	total := 0.0
	for _, l := range load {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad, total / float64(len(load)), nil
}

// ShortestPath returns a min-hop path between s and t (BFS), the baseline
// "selfish" routing the oblivious scheme is compared against.
func ShortestPath(g *graph.Graph, s, t int) ([]int, error) {
	_, parent := g.BFS(s)
	if s != t && parent[t] == -1 {
		return nil, fmt.Errorf("route: %d unreachable from %d", t, s)
	}
	var rev []int
	for v := t; v != -1; v = parent[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	if rev[len(rev)-1] != s {
		return nil, fmt.Errorf("route: path reconstruction failed")
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out, nil
}

// Validate checks a path connects s to t through existing edges.
func Validate(g *graph.Graph, path []int, s, t int) error {
	if len(path) == 0 || path[0] != s || path[len(path)-1] != t {
		return fmt.Errorf("route: endpoints wrong")
	}
	for i := 0; i+1 < len(path); i++ {
		if _, ok := g.Weight(path[i], path[i+1]); !ok {
			return fmt.Errorf("route: (%d,%d) is not an edge", path[i], path[i+1])
		}
	}
	return nil
}

// Stretch returns the hop-count ratio of a path against the BFS distance.
func Stretch(g *graph.Graph, path []int) (float64, error) {
	if len(path) < 2 {
		return 1, nil
	}
	sp, err := ShortestPath(g, path[0], path[len(path)-1])
	if err != nil {
		return 0, err
	}
	if len(sp) <= 1 {
		return math.Inf(1), nil
	}
	return float64(len(path)-1) / float64(len(sp)-1), nil
}
