package workload

import (
	"math"
	"testing"

	"hcd/internal/graph"
)

func TestGrid2DShape(t *testing.T) {
	g := Grid2D(4, 5, nil, 1)
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	// Edges: 3*5 vertical + 4*4 horizontal = 31.
	if g.M() != 31 {
		t.Fatalf("M = %d, want 31", g.M())
	}
	if !g.Connected() {
		t.Error("grid disconnected")
	}
	// Corner degree 2, interior degree 4.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(1*5+1) != 4 {
		t.Errorf("interior degree = %d", g.Degree(6))
	}
}

func TestGrid3DShape(t *testing.T) {
	g := Grid3D(3, 4, 5, nil, 1)
	if g.N() != 60 {
		t.Fatalf("N = %d", g.N())
	}
	want := 2*4*5 + 3*3*5 + 3*4*4 // x-, y-, z-direction edge counts
	if g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if !g.Connected() {
		t.Error("grid disconnected")
	}
	if g.MaxDegree() != 6 {
		t.Errorf("max degree = %d, want 6", g.MaxDegree())
	}
}

func TestGridDeterminism(t *testing.T) {
	a := Grid3D(4, 4, 4, Lognormal(1), 42)
	b := Grid3D(4, 4, 4, Lognormal(1), 42)
	c := Grid3D(4, 4, 4, Lognormal(1), 43)
	ea, eb, ec := a.Edges(), b.Edges(), c.Edges()
	diff := false
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
		if ea[i].W != ec[i].W {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical weights")
	}
}

func TestAnisotropicWeights(t *testing.T) {
	g := Grid3DAnisotropic(2, 2, 2, 1, 10, 100)
	// Edge along z between (0,0,0)=0 and (0,0,1)=1 must weigh 100.
	if w, ok := g.Weight(0, 1); !ok || w != 100 {
		t.Errorf("z edge weight = %v", w)
	}
	// y edge between (0,0,0)=0 and (0,1,0)=2 weighs 10.
	if w, ok := g.Weight(0, 2); !ok || w != 10 {
		t.Errorf("y edge weight = %v", w)
	}
	// x edge between (0,0,0)=0 and (1,0,0)=4 weighs 1.
	if w, ok := g.Weight(0, 4); !ok || w != 1 {
		t.Errorf("x edge weight = %v", w)
	}
}

func TestOCT3DWeightVariation(t *testing.T) {
	g := OCT3D(6, 6, 12, OCTOptions{Layers: 4, Contrast: 100, NoiseSigma: 1, Seed: 7})
	if !g.Connected() {
		t.Fatal("OCT volume disconnected")
	}
	minW, maxW := math.Inf(1), math.Inf(-1)
	for _, e := range g.Edges() {
		if e.W < minW {
			minW = e.W
		}
		if e.W > maxW {
			maxW = e.W
		}
	}
	// Layered contrast 100^3 = 1e6 plus speckle: expect ≥ 5 orders of
	// magnitude spread.
	if maxW/minW < 1e5 {
		t.Errorf("weight spread only %.2g", maxW/minW)
	}
}

func TestOCT3DLayerMonotonicity(t *testing.T) {
	// With zero noise, deeper layers must have strictly lighter edges.
	g := OCT3D(2, 2, 8, OCTOptions{Layers: 4, Contrast: 10, NoiseSigma: 0, Seed: 1})
	id := func(i, j, k int) int { return (i*2+j)*8 + k }
	w0, _ := g.Weight(id(0, 0, 0), id(0, 0, 1))
	w7, _ := g.Weight(id(0, 0, 6), id(0, 0, 7))
	if !(w0 > w7) {
		t.Errorf("surface edge %v not heavier than deep edge %v", w0, w7)
	}
}

func TestGridDiag2DPlanarCounts(t *testing.T) {
	nx, ny := 6, 7
	g := GridDiag2D(nx, ny, nil, 3)
	if g.N() != nx*ny {
		t.Fatalf("N = %d", g.N())
	}
	wantEdges := (nx-1)*ny + nx*(ny-1) + (nx-1)*(ny-1) // grid + one diagonal per cell
	if g.M() != wantEdges {
		t.Fatalf("M = %d, want %d", g.M(), wantEdges)
	}
	// Planarity sanity: m ≤ 3n − 6.
	if g.M() > 3*g.N()-6 {
		t.Error("edge count violates planarity bound")
	}
	if !g.Connected() {
		t.Error("mesh disconnected")
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(50, 4, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d has degree %d", v, g.Degree(v))
		}
	}
	if _, err := RandomRegular(5, 3, nil, 1); err == nil {
		t.Error("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 4, nil, 1); err == nil {
		t.Error("d >= n accepted")
	}
}

func TestCaterpillarAndBinaryTree(t *testing.T) {
	c := Caterpillar(5, 3, nil, 1)
	if c.N() != 20 || !c.IsTree() {
		t.Errorf("caterpillar N=%d tree=%v", c.N(), c.IsTree())
	}
	b := BinaryTree(4, nil, 1)
	if b.N() != 15 || !b.IsTree() {
		t.Errorf("binary tree N=%d tree=%v", b.N(), b.IsTree())
	}
	if b.Degree(0) != 2 {
		t.Errorf("root degree = %d", b.Degree(0))
	}
}

func TestRoadNetworkBottlenecks(t *testing.T) {
	nx, ny, d := 24, 24, 8
	g, err := RoadNetwork(nx, ny, d, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != nx*ny {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("road network disconnected")
	}
	// Planarity: a subgraph of the grid.
	if g.M() > 3*g.N()-6 {
		t.Error("edge count violates planarity bound")
	}
	// Bottleneck property: between horizontally adjacent districts at most 2
	// crossings survive, and at least 1; inside a district the full grid is
	// present. Count crossings over the first vertical border.
	id := func(i, j int) int { return i*ny + j }
	crossings := 0
	for j := 0; j < ny; j++ {
		if _, ok := g.Weight(id(d-1, j), id(d, j)); ok {
			crossings++
		}
	}
	wantMax := 2 * (ny / d) // ≤ 2 per border segment
	if crossings < ny/d || crossings > wantMax {
		t.Errorf("border crossings = %d, want in [%d, %d]", crossings, ny/d, wantMax)
	}
	// Highways are 10× heavier than unit streets.
	heavy := false
	for _, e := range g.Edges() {
		if e.W == 10 {
			heavy = true
			break
		}
	}
	if !heavy {
		t.Error("no highway-weighted edge found")
	}
	// Parameter validation.
	if _, err := RoadNetwork(8, 8, 1, nil, 1); err == nil {
		t.Error("district=1 accepted")
	}
	if _, err := RoadNetwork(0, 8, 4, nil, 1); err == nil {
		t.Error("nx=0 accepted")
	}
}

func TestFEMeshShape(t *testing.T) {
	nx, ny := 12, 10
	g, err := FEMesh(nx, ny, -1, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != nx*ny {
		t.Fatalf("N = %d", g.N())
	}
	wantEdges := (nx-1)*ny + nx*(ny-1) + (nx-1)*(ny-1) // grid + one diagonal per cell
	if g.M() != wantEdges {
		t.Fatalf("M = %d, want %d", g.M(), wantEdges)
	}
	if !g.Connected() {
		t.Fatal("mesh disconnected")
	}
	if g.M() > 3*g.N()-6 {
		t.Error("edge count violates planarity bound")
	}
	// Graded refinement: elements near the (0,0) corner are smaller, so
	// their inverse-length weights are heavier than the far corner's.
	var nearMax, farMin float64 = 0, math.Inf(1)
	id := func(i, j int) int { return i*ny + j }
	if w, ok := g.Weight(id(0, 0), id(0, 1)); ok && w > nearMax {
		nearMax = w
	}
	if w, ok := g.Weight(id(nx-2, ny-1), id(nx-1, ny-1)); ok && w < farMin {
		farMin = w
	}
	if !(nearMax > farMin) {
		t.Errorf("no grading: near-corner weight %v <= far-corner weight %v", nearMax, farMin)
	}
	// Validation.
	if _, err := FEMesh(1, 5, -1, nil, 1); err == nil {
		t.Error("nx=1 accepted")
	}
	if _, err := FEMesh(4, 4, 0.6, nil, 1); err == nil {
		t.Error("jitter >= 0.5 accepted")
	}
}

// TestNewGeneratorDeterminism pins the fixed-seed reproducibility the replay
// harness depends on: same seed → bit-identical edge lists, different seed →
// different weights.
func TestNewGeneratorDeterminism(t *testing.T) {
	type gen func(seed int64) []graph.Edge
	gens := map[string]gen{
		"road": func(seed int64) []graph.Edge {
			g, err := RoadNetwork(20, 20, 5, Lognormal(0.5), seed)
			if err != nil {
				t.Fatal(err)
			}
			return g.Edges()
		},
		"femesh": func(seed int64) []graph.Edge {
			g, err := FEMesh(15, 15, -1, UniformWeight(0.5, 2), seed)
			if err != nil {
				t.Fatal(err)
			}
			return g.Edges()
		},
		"powerlaw": func(seed int64) []graph.Edge {
			g, err := PowerLaw(300, 3, nil, seed)
			if err != nil {
				t.Fatal(err)
			}
			return g.Edges()
		},
	}
	for name, f := range gens {
		a, b, c := f(42), f(42), f(43)
		if len(a) != len(b) {
			t.Fatalf("%s: same seed, different edge counts %d vs %d", name, len(a), len(b))
		}
		diff := false
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed produced different edge %d: %v vs %v", name, i, a[i], b[i])
			}
		}
		for i := 0; i < len(a) && i < len(c); i++ {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff && len(a) == len(c) {
			t.Errorf("%s: different seeds produced identical graphs", name)
		}
	}
}

func TestWeightSamplers(t *testing.T) {
	g := Grid2D(10, 10, UniformWeight(2, 3), 5)
	for _, e := range g.Edges() {
		if e.W < 2 || e.W > 3 {
			t.Fatalf("uniform weight %v out of [2,3]", e.W)
		}
	}
	h := Grid2D(10, 10, Lognormal(0), 5)
	for _, e := range h.Edges() {
		if math.Abs(e.W-1) > 1e-12 {
			t.Fatalf("σ=0 lognormal weight %v != 1", e.W)
		}
	}
}

func BenchmarkGrid3D40(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Grid3D(40, 40, 40, Lognormal(1), 1)
	}
}
