// Package workload generates the graph families used by the paper's
// evaluation and by this repo's tests and benchmarks: weighted 2D/3D grids
// (the regular meshes of Section 3.2), synthetic 3D optical coherence
// tomography volumes with layered structure and multiplicative speckle noise
// (the stand-in for the paper's proprietary OCT scans), random d-regular
// graphs (the fixed-degree class of Section 3.1), planar triangulated grids,
// and a few special tree shapes.
//
// All generators are deterministic given their seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"hcd/internal/graph"
)

// Grid2D returns an nx×ny grid graph. Edge weights are drawn by wf; pass nil
// for unit weights.
func Grid2D(nx, ny int, wf func(rng *rand.Rand) float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	id := func(i, j int) int { return i*ny + j }
	es := make([]graph.Edge, 0, 2*nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				es = append(es, graph.Edge{U: id(i, j), V: id(i+1, j), W: draw()})
			}
			if j+1 < ny {
				es = append(es, graph.Edge{U: id(i, j), V: id(i, j+1), W: draw()})
			}
		}
	}
	return graph.MustFromEdges(nx*ny, es)
}

// Grid3D returns an nx×ny×nz grid graph with weights drawn by wf (nil for
// unit weights). This is the paper's "weighted 3D regular grid".
func Grid3D(nx, ny, nz int, wf func(rng *rand.Rand) float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	es := make([]graph.Edge, 0, 3*nx*ny*nz)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				if i+1 < nx {
					es = append(es, graph.Edge{U: id(i, j, k), V: id(i+1, j, k), W: draw()})
				}
				if j+1 < ny {
					es = append(es, graph.Edge{U: id(i, j, k), V: id(i, j+1, k), W: draw()})
				}
				if k+1 < nz {
					es = append(es, graph.Edge{U: id(i, j, k), V: id(i, j, k+1), W: draw()})
				}
			}
		}
	}
	return graph.MustFromEdges(nx*ny*nz, es)
}

// Grid3DAnisotropic returns a 3D grid whose x/y/z edges carry fixed weights
// wx/wy/wz — the classic hard case for pointwise smoothers.
func Grid3DAnisotropic(nx, ny, nz int, wx, wy, wz float64) *graph.Graph {
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	es := make([]graph.Edge, 0, 3*nx*ny*nz)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				if i+1 < nx {
					es = append(es, graph.Edge{U: id(i, j, k), V: id(i+1, j, k), W: wx})
				}
				if j+1 < ny {
					es = append(es, graph.Edge{U: id(i, j, k), V: id(i, j+1, k), W: wy})
				}
				if k+1 < nz {
					es = append(es, graph.Edge{U: id(i, j, k), V: id(i, j, k+1), W: wz})
				}
			}
		}
	}
	return graph.MustFromEdges(nx*ny*nz, es)
}

// OCTOptions configures the synthetic optical-coherence-tomography volume.
type OCTOptions struct {
	Layers     int     // number of tissue layers stacked along z (≥ 1)
	Contrast   float64 // ratio between adjacent layer conductivities (e.g. 100)
	NoiseSigma float64 // σ of multiplicative lognormal speckle noise (e.g. 1.0)
	Seed       int64
}

// DefaultOCTOptions mirrors the regime the paper describes: "very large
// weight variations ... both at a global and a local scale (due to noise)".
func DefaultOCTOptions() OCTOptions {
	return OCTOptions{Layers: 4, Contrast: 100, NoiseSigma: 1.0, Seed: 1}
}

// OCT3D returns an nx×ny×nz grid whose vertex conductivities follow layered
// tissue (global variation: each deeper layer divides conductivity by
// Contrast) corrupted by multiplicative lognormal speckle (local variation).
// Edge weights are geometric means of endpoint conductivities, so weights
// span Contrast^(Layers−1)·e^(O(σ)) orders of magnitude.
func OCT3D(nx, ny, nz int, opt OCTOptions) *graph.Graph {
	if opt.Layers < 1 {
		opt.Layers = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	n := nx * ny * nz
	cond := make([]float64, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				layer := k * opt.Layers / maxInt(nz, 1)
				base := math.Pow(opt.Contrast, -float64(layer))
				speckle := math.Exp(rng.NormFloat64() * opt.NoiseSigma)
				cond[id(i, j, k)] = base * speckle
			}
		}
	}
	es := make([]graph.Edge, 0, 3*n)
	link := func(a, b int) {
		es = append(es, graph.Edge{U: a, V: b, W: math.Sqrt(cond[a] * cond[b])})
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				if i+1 < nx {
					link(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < ny {
					link(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < nz {
					link(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	return graph.MustFromEdges(n, es)
}

// GridDiag2D returns an nx×ny grid with one random diagonal added per unit
// cell: a planar triangulated mesh. Weights are drawn by wf (nil for unit).
func GridDiag2D(nx, ny int, wf func(rng *rand.Rand) float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	id := func(i, j int) int { return i*ny + j }
	var es []graph.Edge
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				es = append(es, graph.Edge{U: id(i, j), V: id(i+1, j), W: draw()})
			}
			if j+1 < ny {
				es = append(es, graph.Edge{U: id(i, j), V: id(i, j+1), W: draw()})
			}
			if i+1 < nx && j+1 < ny {
				if rng.Intn(2) == 0 {
					es = append(es, graph.Edge{U: id(i, j), V: id(i+1, j+1), W: draw()})
				} else {
					es = append(es, graph.Edge{U: id(i+1, j), V: id(i, j+1), W: draw()})
				}
			}
		}
	}
	return graph.MustFromEdges(nx*ny, es)
}

// RandomRegular returns a random simple d-regular graph on n vertices via
// the configuration model with restarts (n·d must be even, d < n). Weights
// are drawn by wf (nil for unit).
func RandomRegular(n, d int, wf func(rng *rand.Rand) float64, seed int64) (*graph.Graph, error) {
	if d < 0 || d >= n || (n*d)%2 != 0 {
		return nil, fmt.Errorf("workload: invalid regular graph parameters n=%d d=%d", n, d)
	}
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	const maxAttempts = 500
	for attempt := 0; attempt < maxAttempts; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		seen := make(map[[2]int]bool, n*d/2)
		var es []graph.Edge
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			key := [2]int{minInt(u, v), maxInt(u, v)}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			es = append(es, graph.Edge{U: u, V: v, W: draw()})
		}
		if ok {
			return graph.MustFromEdges(n, es), nil
		}
	}
	return nil, fmt.Errorf("workload: failed to build %d-regular graph on %d vertices after %d attempts", d, n, maxAttempts)
}

// PowerLaw returns a preferential-attachment (Barabási–Albert) graph on n
// vertices: after an initial star over the first m+1 vertices, each arriving
// vertex attaches m edges to existing vertices chosen proportionally to their
// current degree, producing the heavy-tailed degree distribution of power-law
// networks — the irregular counterpart to the grid workloads, with hubs that
// stress boundary handling in sharded decompositions. Weights are drawn by wf
// (nil for unit). Deterministic given seed. Requires 1 ≤ m < n.
func PowerLaw(n, m int, wf func(rng *rand.Rand) float64, seed int64) (*graph.Graph, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("workload: invalid power-law parameters n=%d m=%d (want 1 <= m < n)", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	// targets holds one entry per half-edge endpoint; a uniform sample from it
	// is a degree-proportional sample of the existing vertices.
	targets := make([]int, 0, 2*m*(n-m))
	es := make([]graph.Edge, 0, m*(n-m))
	chosen := make([]int, 0, m)
	for v := m; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			var t int
			if len(targets) > 0 {
				t = targets[rng.Intn(len(targets))]
			} else {
				t = rng.Intn(v)
			}
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if dup {
				continue // resample; m < n keeps a fresh target available
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			es = append(es, graph.Edge{U: v, V: t, W: draw()})
			targets = append(targets, v, t)
		}
	}
	return graph.MustFromEdges(n, es), nil
}

// RoadNetwork returns a planar-with-bottlenecks graph: an nx×ny grid carved
// into district×district blocks of dense "street" connectivity, with adjacent
// districts joined only through one or two "highway" crossings per shared
// border. The cut between any two districts is a handful of edges while each
// district is a well-connected grid — the road-network cut structure that
// makes these instances qualitatively different from uniform grids (natural
// clusters are the districts; the sparse highway cuts are the bottlenecks a
// conductance-based decomposition should find). Highway edges carry 10× the
// street weight, modeling capacity. Planar by construction (a subgraph of the
// grid), connected, deterministic given seed. Requires nx, ny ≥ 1 and
// district ≥ 2.
func RoadNetwork(nx, ny, district int, wf func(rng *rand.Rand) float64, seed int64) (*graph.Graph, error) {
	if nx < 1 || ny < 1 || district < 2 {
		return nil, fmt.Errorf("workload: invalid road network parameters nx=%d ny=%d district=%d (want nx,ny >= 1, district >= 2)", nx, ny, district)
	}
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	id := func(i, j int) int { return i*ny + j }
	es := make([]graph.Edge, 0, 2*nx*ny)
	// Streets: every grid edge that does not cross a district border.
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx && (i+1)%district != 0 {
				es = append(es, graph.Edge{U: id(i, j), V: id(i+1, j), W: draw()})
			}
			if j+1 < ny && (j+1)%district != 0 {
				es = append(es, graph.Edge{U: id(i, j), V: id(i, j+1), W: draw()})
			}
		}
	}
	// Highways: per border segment between two adjacent districts, open one
	// or two crossings at rng-chosen positions. Borders are visited in a
	// fixed order (vertical borders west→east then horizontal south→north,
	// district by district), so the construction is deterministic.
	crossings := func(lo, hi int) []int {
		span := hi - lo
		k := 1
		if span > 1 && rng.Intn(2) == 1 {
			k = 2
		}
		a := lo + rng.Intn(span)
		if k == 1 {
			return []int{a}
		}
		b := lo + rng.Intn(span-1)
		if b >= a {
			b++ // distinct second crossing
		}
		return []int{a, b}
	}
	for x := district; x < nx; x += district {
		for lo := 0; lo < ny; lo += district {
			hi := minInt(lo+district, ny)
			for _, j := range crossings(lo, hi) {
				es = append(es, graph.Edge{U: id(x-1, j), V: id(x, j), W: 10 * draw()})
			}
		}
	}
	for y := district; y < ny; y += district {
		for lo := 0; lo < nx; lo += district {
			hi := minInt(lo+district, nx)
			for _, i := range crossings(lo, hi) {
				es = append(es, graph.Edge{U: id(i, y-1), V: id(i, y), W: 10 * draw()})
			}
		}
	}
	return graph.NewFromEdges(nx*ny, es)
}

// FEMesh returns a finite-element-style triangulated mesh: an nx×ny point
// lattice with geometrically graded spacing (elements shrink toward the
// (0,0) corner, as around a refined feature), per-vertex position jitter, and
// each quad cell split along its shorter diagonal. Edge weights are inverse
// edge lengths — the magnitude profile of a first-order FEM stiffness matrix
// on the same mesh — optionally scaled by a wf material coefficient. The
// grading plus jitter give smoothly varying, locally irregular weights,
// unlike the i.i.d. draws of the grid workloads. Planar, connected,
// deterministic given seed. jitter < 0 selects the default 0.25; values
// ≥ 0.5 would let adjacent points collide and are rejected.
func FEMesh(nx, ny int, jitter float64, wf func(rng *rand.Rand) float64, seed int64) (*graph.Graph, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("workload: FE mesh needs nx, ny >= 2, got %d×%d", nx, ny)
	}
	if jitter < 0 {
		jitter = 0.25
	}
	if jitter >= 0.5 {
		return nil, fmt.Errorf("workload: FE mesh jitter %v >= 0.5 would collapse elements", jitter)
	}
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	id := func(i, j int) int { return i*ny + j }
	// Graded lattice coordinates: t^1.5 concentrates points near 0.
	grade := func(k, n int) float64 {
		t := float64(k) / float64(n-1)
		return math.Pow(t, 1.5) * float64(n-1)
	}
	n := nx * ny
	px := make([]float64, n)
	py := make([]float64, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			v := id(i, j)
			px[v] = grade(i, nx) + jitter*(2*rng.Float64()-1)
			py[v] = grade(j, ny) + jitter*(2*rng.Float64()-1)
		}
	}
	dist := func(u, v int) float64 {
		dx, dy := px[u]-px[v], py[u]-py[v]
		d := math.Sqrt(dx*dx + dy*dy)
		if d < 1e-9 {
			d = 1e-9
		}
		return d
	}
	weight := func(u, v int) float64 { return draw() / dist(u, v) }
	es := make([]graph.Edge, 0, 3*n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				es = append(es, graph.Edge{U: id(i, j), V: id(i+1, j), W: weight(id(i, j), id(i+1, j))})
			}
			if j+1 < ny {
				es = append(es, graph.Edge{U: id(i, j), V: id(i, j+1), W: weight(id(i, j), id(i, j+1))})
			}
			if i+1 < nx && j+1 < ny {
				// Split the cell along its shorter diagonal — the standard
				// quality heuristic, decided by geometry alone so the choice
				// is independent of the material-coefficient draws.
				u, v := id(i, j), id(i+1, j+1)
				if dist(id(i+1, j), id(i, j+1)) < dist(u, v) {
					u, v = id(i+1, j), id(i, j+1)
				}
				es = append(es, graph.Edge{U: u, V: v, W: weight(u, v)})
			}
		}
	}
	return graph.NewFromEdges(n, es)
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs leaves attached to every spine vertex; unit weights unless wf given.
func Caterpillar(spine, legs int, wf func(rng *rand.Rand) float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	n := spine * (1 + legs)
	var es []graph.Edge
	for i := 0; i < spine-1; i++ {
		es = append(es, graph.Edge{U: i, V: i + 1, W: draw()})
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			es = append(es, graph.Edge{U: i, V: next, W: draw()})
			next++
		}
	}
	return graph.MustFromEdges(n, es)
}

// BinaryTree returns a complete binary tree with the given number of levels
// (level 1 is a single vertex).
func BinaryTree(levels int, wf func(rng *rand.Rand) float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	draw := unitOr(wf, rng)
	n := (1 << levels) - 1
	var es []graph.Edge
	for v := 1; v < n; v++ {
		es = append(es, graph.Edge{U: (v - 1) / 2, V: v, W: draw()})
	}
	return graph.MustFromEdges(n, es)
}

// Lognormal returns a weight sampler exp(σ·N(0,1)); the paper's large-
// variation regime uses σ ≥ 1.
func Lognormal(sigma float64) func(rng *rand.Rand) float64 {
	return func(rng *rand.Rand) float64 { return math.Exp(rng.NormFloat64() * sigma) }
}

// UniformWeight returns a sampler of Uniform(lo, hi) weights.
func UniformWeight(lo, hi float64) func(rng *rand.Rand) float64 {
	return func(rng *rand.Rand) float64 { return lo + rng.Float64()*(hi-lo) }
}

func unitOr(wf func(rng *rand.Rand) float64, rng *rand.Rand) func() float64 {
	if wf == nil {
		return func() float64 { return 1 }
	}
	return func() float64 { return wf(rng) }
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
