package obs

import (
	"bytes"
	"os"
	"strconv"
)

// PeakRSS returns the process's resident-set high-water mark in bytes, read
// from the VmHWM line of /proc/self/status. It returns 0 on platforms (or
// sandboxes) that do not expose it — callers treat 0 as "unknown", never as
// a measurement. Unlike Go heap statistics this covers everything the
// process ever had resident: Go heap, stacks, runtime, and mapped files.
func PeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	return parseVmHWM(data)
}

// parseVmHWM extracts the VmHWM value (reported in kB) from a
// /proc/self/status image.
func parseVmHWM(data []byte) int64 {
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		rest, ok := bytes.CutPrefix(line, []byte("VmHWM:"))
		if !ok {
			continue
		}
		fields := bytes.Fields(rest)
		if len(fields) == 0 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
