package obs

import "context"

// The tracer, the current parent span, and the metric registry travel in a
// context.Context. The disabled path — no tracer or registry installed — is
// a plain Value lookup returning nil, with no allocation and no branch
// beyond the nil check at the call site.

type tracerKey struct{}
type spanKey struct{}
type registryKey struct{}

// WithTracer installs a tracer; spans started with StartSpan under the
// returned context record into it. A nil tracer returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the installed tracer, or nil (including for nil ctx).
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithRegistry installs a metric registry; instrumented layers publish
// into it at their natural aggregation points (solve finish, build finish,
// evaluate finish). A nil registry returns ctx unchanged.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// RegistryFrom returns the installed registry, or nil (including for nil
// ctx).
func RegistryFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}

// StartSpan opens a span named name under the context's current span (a
// root span if none) and returns a derived context carrying the new span as
// parent for its descendants. With no tracer installed — the production
// fast path — it returns ctx unchanged and a nil span, allocating nothing;
// the caller unconditionally defers sp.End().
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	sp := t.start(name, parent)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
