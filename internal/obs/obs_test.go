package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	_, sib := StartSpan(ctx, "sibling")
	sib.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root has parent %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root id %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %d, want child id %d", byName["grandchild"].Parent, byName["child"].ID)
	}
	if byName["sibling"].Parent != byName["root"].ID {
		t.Errorf("sibling parent = %d, want root id %d", byName["sibling"].Parent, byName["root"].ID)
	}
	if err := tr.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestSpanEndIdempotentAndCheck(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "once")
	sp.End()
	sp.End() // second End must not double-decrement the open count
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after double End: %v", err)
	}

	_, open := StartSpan(ctx, "left-open")
	if err := tr.Check(); err == nil {
		t.Fatal("Check passed with an unclosed span")
	} else if !strings.Contains(err.Error(), "left-open") {
		t.Fatalf("Check error %q does not name the unclosed span", err)
	}
	open.End()
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after closing: %v", err)
	}
}

func TestSpanSurvivesPanic(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	func() {
		defer func() { _ = recover() }()
		_, sp := StartSpan(ctx, "panicky")
		defer sp.End()
		panic("boom")
	}()
	if err := tr.Check(); err != nil {
		t.Fatalf("deferred End did not close the span across a panic: %v", err)
	}
}

// chromeTrace is the decoded shape of WriteChromeTrace output.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "solve")
	root.Arg("outcome", "converged")
	root.Arg("final_residual", 1.5e-9)
	root.Arg("weird\"name", math.Inf(1))
	tr.Instant("fault/solver/matvec-nan")
	tr.Counter("residual", 0.25)
	_, inner := StartSpan(ctx, "attempt")
	inner.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
	}
	if phases["X"] != 2 || phases["i"] != 1 || phases["C"] != 1 {
		t.Fatalf("event phases = %v, want 2 X, 1 i, 1 C", phases)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		var args map[string]any
		if err := json.Unmarshal(ev.Args, &args); err != nil {
			t.Fatalf("span %q args not an object: %v", ev.Name, err)
		}
		if _, ok := args["id"]; !ok {
			t.Fatalf("span %q args missing id: %v", ev.Name, args)
		}
	}

	// A nil tracer still writes a valid (empty) document.
	buf.Reset()
	var nilT *Tracer
	if err := nilT.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer trace invalid: %v", err)
	}
}

func TestWriteChromeTraceOpenSpan(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "still-running")
	time.Sleep(time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace with open span invalid: %v", err)
	}
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Dur <= 0 {
		t.Fatalf("open span exported with dur %v, want > 0", doc.TraceEvents)
	}
	sp.End()
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("hcd_test_total").Add(3)
	r.Counter("hcd_test_total").Inc()
	if v := r.Counter("hcd_test_total").Value(); v != 4 {
		t.Fatalf("counter = %d, want 4", v)
	}
	r.Gauge("hcd_test_gauge").Set(2.5)
	if v := r.Gauge("hcd_test_gauge").Value(); v != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", v)
	}
	h := r.Histogram("hcd_test_hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("hist sum = %v, want 555.5", h.Sum())
	}
	snap := r.Snapshot()
	if snap["hcd_test_total"] != 4 || snap["hcd_test_hist_count"] != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["hcd_test_hist_bucket_10"] != 1 {
		t.Fatalf("bucket(10) = %v, want 1 (non-cumulative)", snap["hcd_test_hist_bucket_10"])
	}
}

func TestRegistryConcurrentCountsExact(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hcd_parallel_total")
			h := r.Histogram("hcd_parallel_hist", []float64{0.5})
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("hcd_parallel_total").Value(); v != workers*each {
		t.Fatalf("counter = %d, want %d", v, workers*each)
	}
	h := r.Histogram("hcd_parallel_hist", nil)
	if h.Count() != workers*each || h.Sum() != float64(workers*each) {
		t.Fatalf("hist count=%d sum=%v, want %d", h.Count(), h.Sum(), workers*each)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`hcd_build_stage_ns_total{stage="sparsify"}`).Add(42)
	r.Counter(`hcd_build_stage_ns_total{stage="rebind"}`).Add(7)
	r.Gauge("hcd_evaluate_last_phi").Set(0.25)
	r.Histogram("hcd_residual", []float64{1e-8, 1}).Observe(1e-9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE hcd_build_stage_ns_total counter",
		`hcd_build_stage_ns_total{stage="sparsify"} 42`,
		`hcd_build_stage_ns_total{stage="rebind"} 7`,
		"# TYPE hcd_evaluate_last_phi gauge",
		"hcd_evaluate_last_phi 0.25",
		"# TYPE hcd_residual histogram",
		`hcd_residual_bucket{le="1e-08"} 1`,
		`hcd_residual_bucket{le="+Inf"} 1`,
		"hcd_residual_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The TYPE header for a labelled family must appear exactly once.
	if n := strings.Count(out, "# TYPE hcd_build_stage_ns_total"); n != 1 {
		t.Errorf("family typed %d times, want once", n)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hcd_a_total").Inc()
	r.Gauge("hcd_g").Set(1.5)
	r.Histogram("hcd_h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Sum     float64          `json:"sum"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["hcd_a_total"] != 1 || doc.Gauges["hcd_g"] != 1.5 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Histograms["hcd_h"].Count != 1 || doc.Histograms["hcd_h"].Buckets["1"] != 1 {
		t.Fatalf("histogram = %+v", doc.Histograms["hcd_h"])
	}
}

func TestNilSafety(t *testing.T) {
	// Every handle and receiver must be inert at nil: this test passing at
	// all (no panic) is the assertion.
	var tr *Tracer
	tr.Instant("x")
	tr.Counter("x", 1)
	if tr.Spans() != nil || tr.Check() != nil {
		t.Fatal("nil tracer not inert")
	}
	var sp *Span
	sp.End()
	sp.Arg("k", "v")
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	ctx, nsp := StartSpan(context.Background(), "noop")
	if nsp != nil || ctx != context.Background() {
		t.Fatal("StartSpan without tracer must return ctx unchanged and nil span")
	}
	if TracerFrom(nil) != nil || RegistryFrom(nil) != nil || SpanFrom(nil) != nil {
		t.Fatal("nil-ctx lookups must return nil")
	}
}

// TestDisabledPathAllocs pins the zero-allocation guarantee of the disabled
// layer: with no tracer or registry installed, span starts, metric lookups,
// and observer-free iteration cost no heap allocations — the property that
// preserves the engine's zero-alloc warm solves.
func TestDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	var nilReg *Registry
	var nilHist *Histogram
	var nilSpan *Span
	allocs := testing.AllocsPerRun(200, func() {
		c2, sp := StartSpan(ctx, "solve/pcg")
		sp.End()
		_ = c2
		_ = TracerFrom(ctx)
		nilReg.Counter("hcd_solve_total").Inc()
		nilReg.Gauge("hcd_solve_last_iterations").Set(1)
		nilHist.Observe(1e-9)
		_ = nilHist.Quantile(0.99)
		nilSpan.Arg("k", 1)
		_ = nilSpan.ID()
		_ = (*Tracer)(nil).ID()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	h := NewRegistry().Histogram("q", bounds)
	// Empty histogram: every quantile is 0.
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 4 samples, one per bucket: cumulative counts 1,2,3,4.
	for _, v := range []float64{0.5, 1.5, 3, 7} {
		h.Observe(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 0},       // rank 0 interpolates to the bottom of the first bucket
		{0.25, 1},    // exactly the first bucket's upper bound
		{0.5, 2},     // second bucket's upper bound
		{0.75, 4},    // third
		{1, 8},       // top
		{0.125, 0.5}, // halfway into the first bucket
		{-1, 0},      // clamped
		{2, 8},       // clamped
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Overflow mass clamps to the last finite bound.
	h2 := NewRegistry().Histogram("q2", bounds)
	h2.Observe(100)
	h2.Observe(200)
	if got := h2.Quantile(0.99); got != 8 {
		t.Errorf("overflow quantile = %v, want last bound 8", got)
	}
	// Determinism: identical sample multisets give bit-identical quantiles
	// regardless of observation order.
	h3 := NewRegistry().Histogram("q3", bounds)
	for _, v := range []float64{7, 3, 0.5, 1.5} {
		h3.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if h.Quantile(q) != h3.Quantile(q) {
			t.Errorf("quantile %v order-dependent: %v vs %v", q, h.Quantile(q), h3.Quantile(q))
		}
	}
}

func TestTracerAndSpanIDs(t *testing.T) {
	a, b := NewTracer(), NewTracer()
	if a.ID() == 0 || b.ID() == 0 || a.ID() == b.ID() {
		t.Fatalf("tracer IDs not unique/non-zero: %d %d", a.ID(), b.ID())
	}
	ctx := WithTracer(context.Background(), a)
	_, sp := StartSpan(ctx, "x")
	defer sp.End()
	if sp.ID() == 0 {
		t.Fatal("span ID zero")
	}
	spans := a.Spans()
	if len(spans) != 1 || spans[0].ID != sp.ID() {
		t.Fatalf("Span.ID %d does not match SpanInfo.ID %v", sp.ID(), spans)
	}
}

func TestObservers(t *testing.T) {
	var buf bytes.Buffer
	StreamResiduals(&buf).ObserveIteration(3, 1.25e-4)
	if got := buf.String(); got != "3 1.250000e-04\n" {
		t.Fatalf("stream line = %q", got)
	}
	r := NewRegistry()
	HistogramResiduals(r, "hcd_res").ObserveIteration(1, 1e-9)
	if r.Histogram("hcd_res", nil).Count() != 1 {
		t.Fatal("histogram observer did not record")
	}
	tr := NewTracer()
	TraceResiduals(tr, "residual").ObserveIteration(1, 0.5)
	var tb bytes.Buffer
	if err := tr.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), `"ph":"C"`) {
		t.Fatal("trace observer did not emit a counter event")
	}
	// Nil components are skipped, including inside MultiObserver.
	HistogramResiduals(nil, "x").ObserveIteration(1, 1)
	TraceResiduals(nil, "x").ObserveIteration(1, 1)
	n := 0
	MultiObserver(nil, ObserverFunc(func(int, float64) { n++ }), nil).ObserveIteration(1, 1)
	if n != 1 {
		t.Fatalf("multi observer fan-out = %d, want 1", n)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hcd_http_total").Inc()
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return b.String(), resp.Header.Get("Content-Type")
	}
	body, ctype := get("/metrics")
	if !strings.Contains(body, "hcd_http_total 1") || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics = %q (%s)", body, ctype)
	}
	body, _ = get("/metrics.json")
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	body, _ = get("/debug/vars")
	if !strings.Contains(body, `"hcd"`) {
		t.Fatalf("/debug/vars missing hcd leaf: %q", body)
	}
	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
