package obs

import (
	"fmt"
	"io"
)

// IterationObserver receives the convergence history of an iterative solve
// as it happens: the solver cores (PCG, Chebyshev) invoke ObserveIteration
// after every iteration with the 1-based iteration number and the current
// residual norm. Observers run on the solve goroutine between iterations —
// keep them cheap, or hand off to a channel/writer with its own buffering.
//
// This is the streaming alternative to the post-hoc Result.Residuals copy:
// a long solve can be watched live (and its history histogrammed or traced)
// without waiting for, or allocating, the full residual slice downstream.
type IterationObserver interface {
	ObserveIteration(iter int, residual float64)
}

// ObserverFunc adapts a plain function to IterationObserver.
type ObserverFunc func(iter int, residual float64)

// ObserveIteration invokes the function.
func (f ObserverFunc) ObserveIteration(iter int, residual float64) { f(iter, residual) }

// StreamResiduals returns an observer that writes one "iter residual" line
// per iteration to w. Wrap w in a bufio.Writer for hot loops.
func StreamResiduals(w io.Writer) IterationObserver {
	return ObserverFunc(func(iter int, residual float64) {
		fmt.Fprintf(w, "%d %.6e\n", iter, residual)
	})
}

// HistogramResiduals returns an observer recording every residual norm into
// the named registry histogram (DefaultResidualBuckets decade buckets). A
// nil registry yields a no-op observer.
func HistogramResiduals(r *Registry, name string) IterationObserver {
	h := r.Histogram(name, nil)
	return ObserverFunc(func(_ int, residual float64) { h.Observe(residual) })
}

// TraceResiduals returns an observer emitting the residual norm as a Chrome
// counter-event series into t, so the convergence curve renders under the
// solve's span tree. A nil tracer yields a no-op observer.
func TraceResiduals(t *Tracer, name string) IterationObserver {
	return ObserverFunc(func(_ int, residual float64) { t.Counter(name, residual) })
}

// MultiObserver fans one iteration stream out to several observers, in
// order. Nil entries are skipped.
func MultiObserver(obs ...IterationObserver) IterationObserver {
	flat := make([]IterationObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	return ObserverFunc(func(iter int, residual float64) {
		for _, o := range flat {
			o.ObserveIteration(iter, residual)
		}
	})
}
