package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// The runtime profiling surface: NewMux assembles the standard diagnostic
// endpoints over a registry without touching http.DefaultServeMux, so CLIs
// opt in with -listen and libraries embedding hcd can mount the mux under
// their own server.
//
//	/metrics        Prometheus text exposition of the registry
//	/metrics.json   the registry's JSON encoding
//	/debug/vars     expvar (cmdline, memstats, plus an "hcd" snapshot)
//	/debug/pprof/*  the net/http/pprof profile family (heap, goroutine,
//	                profile, trace, ...)

var expvarOnce sync.Once

// NewMux returns an http.ServeMux serving the observability endpoints for
// r (which may be nil: the metric endpoints then serve empty documents —
// the pprof and expvar endpoints remain fully functional).
func NewMux(r *Registry) *http.ServeMux {
	expvarOnce.Do(func() {
		// One process-wide expvar leaf; it snapshots whichever registry a
		// mux was most recently built over. Registered lazily so processes
		// that never serve diagnostics never publish it.
		expvar.Publish("hcd", expvar.Func(func() any { return currentExpvarRegistry().Snapshot() }))
	})
	setExpvarRegistry(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

var (
	expvarMu  sync.Mutex
	expvarReg *Registry
)

func setExpvarRegistry(r *Registry) {
	expvarMu.Lock()
	expvarReg = r
	expvarMu.Unlock()
}

func currentExpvarRegistry() *Registry {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	return expvarReg
}

// Serve starts an HTTP server for NewMux(r) on addr in a background
// goroutine and returns it once the listener is bound (so ":0" callers can
// read the final address from Server.Addr). Shut it down with
// Server.Close/Shutdown.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
