package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process- or run-scoped set of named metrics: monotonic
// counters, last-value gauges, and fixed-bucket histograms. All updates are
// single atomic operations, so publishing from parallel workers is safe and
// — for the integer counters — exactly commutative: aggregated totals are
// identical at any GOMAXPROCS.
//
// Metric names follow the Prometheus convention (`hcd_solve_matvecs_total`)
// and may carry a label suffix in braces (`...{stage="sparsify"}`); the
// registry treats the full string as the key and the encoders group names
// by family (the part before '{').
//
// A nil *Registry is the disabled state: lookups return nil metric handles
// whose update methods are no-ops, so instrumented code never branches on
// enablement.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing atomic count. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta (no-op on nil).
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically stored last-value float. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets with upper bounds
// Bounds[i] (observations ≤ bound land in the bucket; larger ones in the
// implicit +Inf bucket). The observation sum is accumulated with a CAS loop.
// Nil-safe.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefaultResidualBuckets spans the residual-norm range of a Laplacian solve
// from convergence (≤1e-14) to divergence-guard territory, one decade per
// bucket.
func DefaultResidualBuckets() []float64 {
	b := make([]float64, 0, 20)
	for e := -14; e <= 4; e++ {
		b = append(b, math.Pow(10, float64(e)))
	}
	return b
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution from the bucket counts, interpolating linearly inside the
// containing bucket (the first bucket interpolates up from zero — the
// registry's histograms observe non-negative durations and residuals).
// Observations that landed past the last finite bound clamp to that bound:
// a fixed-bucket histogram cannot see further, and reporting the bound keeps
// the estimate monotone instead of inventing mass at infinity. Returns 0 for
// an empty or nil histogram.
//
// The estimate is deterministic in the bucket counts, so two runs that
// observe the same multiset of samples report bit-identical quantiles — the
// property the replay harness's SLO report relies on.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += n
	}
	// Remaining mass sits in the implicit +Inf bucket.
	return h.bounds[len(h.bounds)-1]
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter returns (creating on first use) the named counter. Nil registries
// return nil handles.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge. Nil registries
// return nil handles.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. bounds are
// the bucket upper bounds, strictly increasing; they are fixed by the first
// call for a name (nil selects DefaultResidualBuckets). Nil registries
// return nil handles.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if bounds == nil {
			bounds = DefaultResidualBuckets()
		}
		h = &Histogram{bounds: append([]float64(nil), bounds...), buckets: make([]atomic.Int64, len(bounds))}
		r.hists[name] = h
	}
	return h
}

// Snapshot flattens every metric to name → value: counters and gauges
// directly, histograms as name_count / name_sum plus one name_bucket_<le>
// entry per bucket. The deterministic flat form is what the
// GOMAXPROCS-invariance tests compare.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
		for i, b := range h.bounds {
			out[fmt.Sprintf("%s_bucket_%g", name, b)] = float64(h.buckets[i].Load())
		}
	}
	return out
}

// family splits a metric key into its family name and label block:
// `a_total{x="y"}` → (`a_total`, `x="y"`).
func family(name string) (string, string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric family, counters
// and gauges as plain samples, histograms as cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type sample struct {
		key  string
		kind string
	}
	samples := make([]sample, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		samples = append(samples, sample{name, "counter"})
	}
	for name := range r.gauges {
		samples = append(samples, sample{name, "gauge"})
	}
	for name := range r.hists {
		samples = append(samples, sample{name, "histogram"})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].key < samples[j].key })

	var b strings.Builder
	typed := make(map[string]bool)
	for _, s := range samples {
		fam, labels := family(s.key)
		if !typed[fam] {
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, s.kind)
			typed[fam] = true
		}
		switch s.kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", s.key, r.counters[s.key].Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %s\n", s.key, formatFloat(r.gauges[s.key].Value()))
		case "histogram":
			h := r.hists[s.key]
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", fam, labelPrefix(labels), formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, labelPrefix(labels), h.Count())
			fmt.Fprintf(&b, "%s_sum%s %s\n", fam, braced(labels), formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", fam, braced(labels), h.Count())
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histogramJSON is the JSON shape of one histogram.
type histogramJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound → count (non-cumulative)
}

// WriteJSON encodes the registry as a single JSON document with "counters",
// "gauges" and "histograms" sections (keys sorted, trailing newline) — the
// machine-consumption form behind `hcd-decompose -json` and the
// /metrics.json endpoint.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]histogramJSON `json:"histograms"`
	}{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histogramJSON{},
	}
	if r != nil {
		r.mu.Lock()
		for name, c := range r.counters {
			doc.Counters[name] = c.Value()
		}
		for name, g := range r.gauges {
			doc.Gauges[name] = g.Value()
		}
		for name, h := range r.hists {
			hj := histogramJSON{Count: h.Count(), Sum: h.Sum(), Buckets: map[string]int64{}}
			for i, bound := range h.bounds {
				if n := h.buckets[i].Load(); n > 0 {
					hj.Buckets[formatFloat(bound)] = n
				}
			}
			doc.Histograms[name] = hj
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// quote returns the JSON string encoding of s.
func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// jsonValue renders a span-arg or counter value as a JSON token.
func jsonValue(v any) string {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return quote(formatFloat(x))
		}
	}
	b, err := json.Marshal(v)
	if err != nil {
		return quote(fmt.Sprint(v))
	}
	return string(b)
}
