// Package obs is the unified observability core of the hcd reproduction: a
// hierarchical span tracer with Chrome trace_event export, a registry of
// atomic counters/gauges/histograms with JSON and Prometheus text-exposition
// encoders, residual-streaming iteration observers for the solver cores, and
// HTTP endpoints (/metrics, /debug/pprof, expvar) for long-running processes.
//
// The package has no dependencies outside the standard library, and the
// entire layer is free when unused: a tracer and a registry travel in a
// context.Context, every instrumented call site does a plain Value lookup
// that returns nil when nothing was installed, and all span/metric methods
// are no-ops on nil receivers. The disabled path performs zero heap
// allocations (asserted by TestDisabledPathAllocs), which preserves the
// solver engine's zero-alloc warm-solve guarantee and the Evaluate hot path.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records a tree of timed spans plus instant and counter events, all
// against one monotonic clock (time.Since of the tracer's birth, so spans
// are immune to wall-clock steps). A Tracer is safe for concurrent use; the
// zero value is not usable — construct with NewTracer. A nil *Tracer is the
// documented disabled state: every method is a cheap no-op.
type Tracer struct {
	id     uint64
	mu     sync.Mutex
	base   time.Time
	events []event
	open   int
	nextID uint64
}

// traceIDs hands each tracer a process-unique identity, so log lines can
// name which trace their span IDs resolve in.
var traceIDs atomic.Uint64

// event is one recorded trace entry. Spans are 'X' (complete) events whose
// duration is filled in by Span.End; instants are 'i', counters are 'C'.
type event struct {
	name   string
	ph     byte
	start  time.Duration
	dur    time.Duration
	id     uint64
	parent uint64
	tid    uint64
	args   []Arg
	value  float64 // counter events
	open   bool    // span started but not yet ended
}

// Arg is one key/value annotation on a span.
type Arg struct {
	Key   string
	Value any
}

// NewTracer starts an empty trace; the moment of the call is time zero of
// the trace clock.
func NewTracer() *Tracer {
	return &Tracer{id: traceIDs.Add(1), base: time.Now()}
}

// ID returns the tracer's process-unique identity (0 on nil) — the trace_id
// the serve layer stamps on structured request logs so a log line can be
// joined back to the span tree that recorded the same request.
func (t *Tracer) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Span is one open (or ended) interval in a trace. The zero of the API is
// nil: StartSpan returns a nil *Span when no tracer is installed, and every
// Span method is a no-op on nil, so call sites need no enabled-checks.
type Span struct {
	t   *Tracer
	idx int
	id  uint64
	tid uint64
}

// ID returns the span's identity within its trace (0 on nil) — the span_id
// of structured request logs, matching SpanInfo.ID in Tracer.Spans.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// start opens a span under the given parent (nil for a root span).
func (t *Tracer) start(name string, parent *Span) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	sp := &Span{t: t, idx: len(t.events), id: t.nextID, tid: 1}
	var pid uint64
	if parent != nil {
		pid = parent.id
		sp.tid = parent.tid
	}
	t.events = append(t.events, event{
		name:   name,
		ph:     'X',
		start:  time.Since(t.base),
		id:     sp.id,
		parent: pid,
		tid:    sp.tid,
		open:   true,
	})
	t.open++
	return sp
}

// End closes the span, fixing its duration. Safe to call more than once
// (later calls are no-ops), and always safe on nil — instrumented functions
// simply `defer sp.End()` so spans close on every exit path, panics
// included.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := &t.events[s.idx]
	if !ev.open {
		return
	}
	ev.dur = time.Since(t.base) - ev.start
	ev.open = false
	t.open--
}

// Arg annotates the span with a key/value pair, rendered into the Chrome
// trace "args" object. No-op on nil.
func (s *Span) Arg(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	ev := &s.t.events[s.idx]
	ev.args = append(ev.args, Arg{Key: key, Value: value})
}

// Instant records a zero-duration marker event (e.g. an injected-fault hit).
// No-op on nil.
func (t *Tracer) Instant(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, event{name: name, ph: 'i', start: time.Since(t.base), tid: 1})
}

// Counter records a sampled numeric series point (Chrome renders 'C' events
// as a per-name area chart — the natural encoding of a residual history).
// No-op on nil.
func (t *Tracer) Counter(name string, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, event{name: name, ph: 'C', start: time.Since(t.base), tid: 1, value: value})
}

// SpanInfo is the introspection view of one recorded span, for tests and
// well-formedness checks.
type SpanInfo struct {
	Name     string
	ID       uint64
	Parent   uint64 // 0 for root spans
	Start    time.Duration
	Duration time.Duration
	Open     bool
	Args     []Arg
}

// Spans returns the recorded spans in start order. No-op (nil result) on a
// nil tracer.
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanInfo
	for _, ev := range t.events {
		if ev.ph != 'X' {
			continue
		}
		out = append(out, SpanInfo{
			Name: ev.name, ID: ev.id, Parent: ev.parent,
			Start: ev.start, Duration: ev.dur, Open: ev.open,
			Args: append([]Arg(nil), ev.args...),
		})
	}
	return out
}

// Check verifies the well-formedness of the recorded span tree: every span
// ended, and every non-root span's parent recorded. It returns an error
// naming the offending spans otherwise. Nil tracers trivially pass.
func (t *Tracer) Check() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make(map[uint64]bool, len(t.events))
	for _, ev := range t.events {
		if ev.ph == 'X' {
			ids[ev.id] = true
		}
	}
	for _, ev := range t.events {
		if ev.ph != 'X' {
			continue
		}
		if ev.open {
			return fmt.Errorf("obs: span %q (id %d) was never ended", ev.name, ev.id)
		}
		if ev.parent != 0 && !ids[ev.parent] {
			return fmt.Errorf("obs: span %q (id %d) has unknown parent %d", ev.name, ev.id, ev.parent)
		}
	}
	return nil
}

// WriteChromeTrace encodes the trace in Chrome trace_event JSON (the format
// of chrome://tracing and https://ui.perfetto.dev): one "X" complete event
// per span with microsecond timestamps, plus instant and counter events.
// Span parentage is carried both structurally (nesting by time containment
// per tid) and explicitly in args.parent. Open spans are exported with their
// current duration, so a trace of a cancelled run is still viewable.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	// Copy under lock; format outside it.
	events := make([]event, len(t.events))
	copy(events, t.events)
	now := time.Since(t.base)
	t.mu.Unlock()

	// Sort by start time so time-containment nesting is stable in viewers.
	sort.SliceStable(events, func(i, j int) bool { return events[i].start < events[j].start })

	var b []byte
	b = append(b, `{"displayTimeUnit":"ms","traceEvents":[`...)
	for i, ev := range events {
		if i > 0 {
			b = append(b, ',')
		}
		us := float64(ev.start) / float64(time.Microsecond)
		switch ev.ph {
		case 'X':
			dur := ev.dur
			if ev.open {
				dur = now - ev.start
			}
			b = appendf(b, `{"name":%s,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{`,
				quote(ev.name), us, float64(dur)/float64(time.Microsecond), ev.tid)
			b = appendf(b, `"id":%d,"parent":%d`, ev.id, ev.parent)
			for _, a := range ev.args {
				b = appendf(b, `,%s:%s`, quote(a.Key), jsonValue(a.Value))
			}
			b = append(b, `}}`...)
		case 'i':
			b = appendf(b, `{"name":%s,"ph":"i","s":"g","ts":%.3f,"pid":1,"tid":%d}`,
				quote(ev.name), us, ev.tid)
		case 'C':
			b = appendf(b, `{"name":%s,"ph":"C","ts":%.3f,"pid":1,"tid":%d,"args":{"value":%s}}`,
				quote(ev.name), us, ev.tid, jsonValue(ev.value))
		}
	}
	b = append(b, `]}`...)
	_, err := w.Write(b)
	return err
}

func appendf(b []byte, format string, args ...any) []byte {
	return fmt.Appendf(b, format, args...)
}
