package laminar

import (
	"testing"

	"hcd/internal/graph"
	"hcd/internal/workload"
)

func TestBuildAndSizes(t *testing.T) {
	g := workload.Grid3D(8, 8, 8, workload.Lognormal(1), 1)
	l, err := Build(g, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Depth() < 2 {
		t.Fatalf("depth = %d", l.Depth())
	}
	sizes := l.Sizes()
	if sizes[0] != g.N() {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if float64(sizes[i]) > float64(sizes[i-1])/2+1 {
			t.Errorf("level %d reduction below 2: %v", i, sizes)
		}
	}
	if sizes[len(sizes)-1] > 10 && l.Depth() > 0 {
		// Build stops at ≤ coarse unless reduction stalled.
		t.Logf("final size %d (coarse=10): reduction stalled", sizes[len(sizes)-1])
	}
	if l.TotalReduction() < 2 {
		t.Errorf("total reduction %v", l.TotalReduction())
	}
}

func TestComposedDecompositionsValid(t *testing.T) {
	g := workload.Grid2D(16, 16, workload.Lognormal(1), 2)
	l, err := Build(g, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for depth := 0; depth < l.Depth(); depth++ {
		d, err := l.ComposedAt(depth)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if d.Count != l.Levels[depth].Count {
			t.Fatalf("depth %d: count %d vs %d", depth, d.Count, l.Levels[depth].Count)
		}
	}
}

func TestRefinementProperty(t *testing.T) {
	g := workload.Grid2D(14, 14, workload.Lognormal(1), 3)
	l, err := Build(g, 3, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for d1 := 0; d1 < l.Depth(); d1++ {
		for d2 := d1; d2 < l.Depth(); d2++ {
			ok, err := l.Refines(d1, d2)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("depth %d does not refine depth %d", d1, d2)
			}
		}
	}
	// And the converse must fail when clusters genuinely merge.
	if l.Depth() >= 2 {
		a0, _ := l.AssignAt(0)
		a1, _ := l.AssignAt(1)
		distinct0 := countDistinct(a0)
		distinct1 := countDistinct(a1)
		if distinct1 >= distinct0 {
			t.Errorf("no merging between depths: %d vs %d", distinct0, distinct1)
		}
	}
}

func countDistinct(xs []int) int {
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

func TestLevelReports(t *testing.T) {
	g := workload.Grid2D(12, 12, workload.Lognormal(1), 5)
	l, err := Build(g, 4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for depth := 0; depth < l.Depth(); depth++ {
		rep, err := l.LevelReport(depth, graph.MaxExactConductance)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Phi <= 0 {
			t.Errorf("depth %d: φ = %v", depth, rep.Phi)
		}
		if rep.Rho < 2 {
			t.Errorf("depth %d: ρ = %v", depth, rep.Rho)
		}
	}
	if _, err := l.LevelReport(99, 24); err == nil {
		t.Error("out-of-range depth accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	g := workload.Grid2D(4, 4, nil, 1)
	if _, err := Build(g, 4, 0, 1); err == nil {
		t.Error("coarse 0 accepted")
	}
	l, err := Build(g, 4, 100, 1) // already small: zero levels
	if err != nil {
		t.Fatal(err)
	}
	if l.Depth() != 0 || l.TotalReduction() != 1 {
		t.Errorf("trivial build: depth=%d reduction=%v", l.Depth(), l.TotalReduction())
	}
	if _, err := l.AssignAt(0); err == nil {
		t.Error("AssignAt on empty hierarchy accepted")
	}
}

func BenchmarkBuildLaminarGrid(b *testing.B) {
	g := workload.Grid3D(20, 20, 20, workload.Lognormal(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, 4, 50, 1); err != nil {
			b.Fatal(err)
		}
	}
}
