// Package laminar builds and queries laminar decompositions: hierarchies
// G = G₁, …, G_L where G_{i+1} is the contraction of G_i by a [φ, ρ]
// decomposition P_i (the structure of Bienkowski–Korzeniowski–Räcke that the
// paper's introduction discusses, obtained here with the paper's own
// bottom-up clustering and a *guaranteed* per-level reduction factor ≥ 2 —
// the property the top-down constructions lack).
package laminar

import (
	"context"
	"fmt"

	"hcd/internal/decomp"
	"hcd/internal/graph"
)

// Laminar is a hierarchy of decompositions. Levels[i] partitions the level-i
// quotient graph; Levels[0].G is the original graph.
type Laminar struct {
	Levels []*decomp.Decomposition
}

// Build clusters g recursively with the Section 3.1 algorithm until the
// quotient has at most coarse vertices (or no further reduction happens).
func Build(g *graph.Graph, sizeCap, coarse int, seed int64) (*Laminar, error) {
	return BuildCtx(context.Background(), g, sizeCap, coarse, seed)
}

// BuildCtx is Build under a context, checked once per level on top of the
// per-level clustering's own polling; cancellation returns an error wrapping
// decomp.ErrBuildCancelled.
func BuildCtx(ctx context.Context, g *graph.Graph, sizeCap, coarse int, seed int64) (*Laminar, error) {
	if coarse < 1 {
		return nil, fmt.Errorf("laminar: coarse must be ≥ 1")
	}
	l := &Laminar{}
	cur := g
	for level := 0; cur.N() > coarse; level++ {
		if ctx.Err() != nil {
			return nil, decomp.Cancelled(ctx)
		}
		d, err := decomp.FixedDegreeCtx(ctx, cur, sizeCap, seed+int64(level))
		if err != nil {
			return nil, err
		}
		if d.Count >= cur.N() {
			break
		}
		l.Levels = append(l.Levels, d)
		cur = cur.Contract(d.Assign, d.Count)
	}
	return l, nil
}

// Depth returns the number of levels.
func (l *Laminar) Depth() int { return len(l.Levels) }

// Sizes returns the vertex counts of every level graph plus the final
// quotient.
func (l *Laminar) Sizes() []int {
	if len(l.Levels) == 0 {
		return nil
	}
	out := make([]int, 0, len(l.Levels)+1)
	for _, d := range l.Levels {
		out = append(out, d.G.N())
	}
	return append(out, l.Levels[len(l.Levels)-1].Count)
}

// AssignAt returns the composed assignment of original vertices to the
// clusters of level depth (depth ∈ [0, Depth)): the flattening of the
// laminar family at that height.
func (l *Laminar) AssignAt(depth int) ([]int, error) {
	if depth < 0 || depth >= len(l.Levels) {
		return nil, fmt.Errorf("laminar: depth %d out of range [0,%d)", depth, len(l.Levels))
	}
	n := l.Levels[0].G.N()
	assign := make([]int, n)
	for v := range assign {
		assign[v] = v
	}
	for i := 0; i <= depth; i++ {
		lv := l.Levels[i].Assign
		for v := range assign {
			assign[v] = lv[assign[v]]
		}
	}
	return assign, nil
}

// ComposedAt returns the composed partition at the given depth as a
// decomposition of the *original* graph. Composed clusters are connected:
// a level-k cluster is connected in the level-k quotient, quotient edges
// witness fine edges, so the preimage is connected by induction.
func (l *Laminar) ComposedAt(depth int) (*decomp.Decomposition, error) {
	assign, err := l.AssignAt(depth)
	if err != nil {
		return nil, err
	}
	return &decomp.Decomposition{
		G:      l.Levels[0].G,
		Assign: assign,
		Count:  l.Levels[depth].Count,
	}, nil
}

// Refines reports whether the composed partition at depth d1 refines the
// one at depth d2 ≥ d1: every d1-cluster is contained in a single
// d2-cluster. This is the defining laminar-family property.
func (l *Laminar) Refines(d1, d2 int) (bool, error) {
	a1, err := l.AssignAt(d1)
	if err != nil {
		return false, err
	}
	a2, err := l.AssignAt(d2)
	if err != nil {
		return false, err
	}
	parent := make(map[int]int)
	for v := range a1 {
		if p, ok := parent[a1[v]]; ok {
			if p != a2[v] {
				return false, nil
			}
		} else {
			parent[a1[v]] = a2[v]
		}
	}
	return true, nil
}

// LevelReport evaluates the decomposition of one level (φ and ρ are
// measured on that level's quotient graph).
func (l *Laminar) LevelReport(depth int, exactLimit int) (decomp.Report, error) {
	if depth < 0 || depth >= len(l.Levels) {
		return decomp.Report{}, fmt.Errorf("laminar: depth %d out of range", depth)
	}
	return decomp.Evaluate(l.Levels[depth], exactLimit), nil
}

// TotalReduction returns n / (size of the final quotient).
func (l *Laminar) TotalReduction() float64 {
	if len(l.Levels) == 0 {
		return 1
	}
	return float64(l.Levels[0].G.N()) / float64(l.Levels[len(l.Levels)-1].Count)
}
