package gio

// Binary snapshot codec for graphs and built hierarchies — the persistence
// format behind hcd-server's -state-dir. Layout (all little-endian):
//
//	header   : magic "HCDSNAP1" (8 bytes), version u32, kind u32
//	sections : { tag u32, reserved u32, payloadLen u64,
//	             payload (padded to 8 bytes), crc64-ECMA u64 }
//
// The CRC covers the section header and the unpadded payload, and is
// computed per section rather than as a whole-file trailer so corruption is
// attributable: a hierarchy snapshot whose graph section verifies but whose
// level sections do not yields the graph and an error, letting the serving
// layer rebuild the hierarchy instead of discarding everything. Fixed-width
// fields and 8-byte section alignment keep the layout mmap-friendly.
//
// A graph snapshot (kind 1) holds one graph section. A hierarchy snapshot
// (kind 2) holds a graph section, a meta section (smoothing sweeps, level
// count), and one level section per clustering level; the quotient graphs
// and coarse factorization are deterministic functions of these and are
// recomputed on read (hierarchy.Rebuild), never stored.
//
// Readers never trust a length field: payloads are size-bounded by the same
// MaxVertices/MaxEntries limits as the text parsers and read in chunks, so a
// hostile header cannot make the decoder allocate more than the bytes
// actually present.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// ErrCorruptSnapshot is the sentinel wrapped by every decode failure that
// indicates a damaged or foreign file — bad magic, checksum mismatch,
// truncation, or payloads that fail structural validation. I/O errors from
// the underlying reader are returned as-is, without the sentinel.
var ErrCorruptSnapshot = errors.New("gio: corrupt snapshot")

// Snapshot kinds (header field).
const (
	snapKindGraph     = 1
	snapKindHierarchy = 2
)

// snapVersion is the current format version. Readers reject other versions
// as corrupt; there is no cross-version migration — a snapshot is a cache
// of recomputable state, so "rebuild" is the upgrade path.
const snapVersion = 1

// Section tags.
const (
	tagGraph = 0x48505247 // "GRPH"
	tagMeta  = 0x4154454d // "META"
	tagLevel = 0x4c56454c // "LEVL"
)

// maxSnapshotLevels bounds the declared level count of a hierarchy snapshot.
// Real hierarchies are capped at Options.MaxLevels (~40); 64 leaves headroom
// while keeping a hostile header from driving a long decode loop.
const maxSnapshotLevels = 64

var snapMagic = [8]byte{'H', 'C', 'D', 'S', 'N', 'A', 'P', '1'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// WriteGraphSnapshot writes g as a kind-1 snapshot.
func WriteGraphSnapshot(w io.Writer, g *graph.Graph) error {
	if faultinject.Enabled() {
		if err := faultinject.Err(faultinject.SnapshotWrite); err != nil {
			return err
		}
	}
	sw := &snapWriter{w: w}
	sw.header(snapKindGraph)
	sw.section(tagGraph, encodeGraph(g))
	return sw.err
}

// ReadGraphSnapshot reads a kind-1 snapshot back into a graph.
func ReadGraphSnapshot(r io.Reader) (*graph.Graph, error) {
	if faultinject.Enabled() {
		if err := faultinject.Err(faultinject.SnapshotRead); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorruptSnapshot, err)
		}
	}
	if err := readHeader(r, snapKindGraph); err != nil {
		return nil, err
	}
	payload, err := readSection(r, tagGraph)
	if err != nil {
		return nil, err
	}
	return decodeGraph(payload)
}

// WriteHierarchySnapshot writes g and its built hierarchy h as a kind-2
// snapshot. h must have been built on g (or rebuilt from an equivalent
// dump); the codec stores only the fine graph and per-level assignments.
func WriteHierarchySnapshot(w io.Writer, g *graph.Graph, h *hierarchy.Hierarchy) error {
	if faultinject.Enabled() {
		if err := faultinject.Err(faultinject.SnapshotWrite); err != nil {
			return err
		}
	}
	levels, smooth := h.DumpLevels()
	if len(levels) > maxSnapshotLevels {
		return fmt.Errorf("gio: hierarchy has %d levels, snapshot format caps at %d", len(levels), maxSnapshotLevels)
	}
	sw := &snapWriter{w: w}
	sw.header(snapKindHierarchy)
	sw.section(tagGraph, encodeGraph(g))
	meta := make([]byte, 16)
	binary.LittleEndian.PutUint64(meta[0:], uint64(smooth))
	binary.LittleEndian.PutUint64(meta[8:], uint64(len(levels)))
	sw.section(tagMeta, meta)
	for _, la := range levels {
		sw.section(tagLevel, encodeLevel(la))
	}
	return sw.err
}

// ReadHierarchySnapshot reads a kind-2 snapshot, returning the fine graph
// and the hierarchy rebuilt from the persisted level assignments.
//
// Partial recovery: if the graph section verifies but the hierarchy portion
// (meta or level sections) is corrupt, the graph is returned alongside the
// error, so callers can rebuild the hierarchy from scratch instead of losing
// the graph too. A nil graph with an error means total corruption.
func ReadHierarchySnapshot(ctx context.Context, r io.Reader) (*graph.Graph, *hierarchy.Hierarchy, error) {
	if faultinject.Enabled() {
		if err := faultinject.Err(faultinject.SnapshotRead); err != nil {
			return nil, nil, fmt.Errorf("%w: %w", ErrCorruptSnapshot, err)
		}
	}
	if err := readHeader(r, snapKindHierarchy); err != nil {
		return nil, nil, err
	}
	payload, err := readSection(r, tagGraph)
	if err != nil {
		return nil, nil, err
	}
	g, err := decodeGraph(payload)
	if err != nil {
		return nil, nil, err
	}
	// From here on the graph is good: failures return it with the error.
	meta, err := readSection(r, tagMeta)
	if err != nil {
		return g, nil, err
	}
	if len(meta) != 16 {
		return g, nil, fmt.Errorf("%w: meta section is %d bytes, want 16", ErrCorruptSnapshot, len(meta))
	}
	smooth := binary.LittleEndian.Uint64(meta[0:])
	nlevels := binary.LittleEndian.Uint64(meta[8:])
	if smooth > 64 || nlevels > maxSnapshotLevels {
		return g, nil, fmt.Errorf("%w: implausible meta (smooth %d, levels %d)", ErrCorruptSnapshot, smooth, nlevels)
	}
	levels := make([]hierarchy.LevelAssign, 0, nlevels)
	for i := uint64(0); i < nlevels; i++ {
		payload, err := readSection(r, tagLevel)
		if err != nil {
			return g, nil, err
		}
		la, err := decodeLevel(payload)
		if err != nil {
			return g, nil, err
		}
		levels = append(levels, la)
	}
	h, err := hierarchy.Rebuild(ctx, g, levels, int(smooth))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return g, nil, err
		}
		return g, nil, fmt.Errorf("%w: rebuild rejected levels: %w", ErrCorruptSnapshot, err)
	}
	return g, h, nil
}

// --- encoding ---

type snapWriter struct {
	w   io.Writer
	err error
}

func (sw *snapWriter) write(b []byte) {
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.Write(b)
}

func (sw *snapWriter) header(kind uint32) {
	hdr := make([]byte, 16)
	copy(hdr, snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], snapVersion)
	binary.LittleEndian.PutUint32(hdr[12:], kind)
	sw.write(hdr)
}

var zeroPad [8]byte

func (sw *snapWriter) section(tag uint32, payload []byte) {
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], tag)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	crc := crc64.Update(crc64.Update(0, crcTable, hdr), crcTable, payload)
	sw.write(hdr)
	sw.write(payload)
	if pad := (8 - len(payload)%8) % 8; pad > 0 {
		sw.write(zeroPad[:pad])
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], crc)
	sw.write(tail[:])
}

// encodeGraph lays out: n u64, half u64 (=len(adj)), off (n+1)×u64,
// adj half×u32, w half×f64.
func encodeGraph(g *graph.Graph) []byte {
	off, adj, w := g.CSR()
	n, half := len(off)-1, len(adj)
	buf := make([]byte, 16+8*(n+1)+4*half+8*half)
	binary.LittleEndian.PutUint64(buf[0:], uint64(n))
	binary.LittleEndian.PutUint64(buf[8:], uint64(half))
	p := 16
	for _, o := range off {
		binary.LittleEndian.PutUint64(buf[p:], uint64(o))
		p += 8
	}
	for _, u := range adj {
		binary.LittleEndian.PutUint32(buf[p:], uint32(u))
		p += 4
	}
	for _, x := range w {
		binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(x))
		p += 8
	}
	return buf
}

func decodeGraph(payload []byte) (*graph.Graph, error) {
	if len(payload) < 16 {
		return nil, fmt.Errorf("%w: graph section is %d bytes, want at least 16", ErrCorruptSnapshot, len(payload))
	}
	n := binary.LittleEndian.Uint64(payload[0:])
	half := binary.LittleEndian.Uint64(payload[8:])
	if n > MaxVertices || half > 2*MaxEntries {
		return nil, fmt.Errorf("%w: graph section declares %d vertices, %d adjacency entries (limits %d, %d)",
			ErrCorruptSnapshot, n, half, MaxVertices, 2*MaxEntries)
	}
	want := 16 + 8*(int(n)+1) + 4*int(half) + 8*int(half)
	if len(payload) != want {
		return nil, fmt.Errorf("%w: graph section is %d bytes, header implies %d", ErrCorruptSnapshot, len(payload), want)
	}
	p := 16
	off := make([]int, n+1)
	for i := range off {
		v := binary.LittleEndian.Uint64(payload[p:])
		if v > half {
			return nil, fmt.Errorf("%w: graph offset %d exceeds adjacency length %d", ErrCorruptSnapshot, v, half)
		}
		off[i] = int(v)
		p += 8
	}
	adj := make([]int, half)
	for i := range adj {
		adj[i] = int(binary.LittleEndian.Uint32(payload[p:]))
		p += 4
	}
	w := make([]float64, half)
	for i := range w {
		w[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[p:]))
		p += 8
	}
	g, err := graph.NewFromCSR(off, adj, w)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptSnapshot, err)
	}
	return g, nil
}

// encodeLevel lays out: count u64, n u64, assign n×u32.
func encodeLevel(la hierarchy.LevelAssign) []byte {
	buf := make([]byte, 16+4*len(la.Assign))
	binary.LittleEndian.PutUint64(buf[0:], uint64(la.Count))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(la.Assign)))
	p := 16
	for _, c := range la.Assign {
		binary.LittleEndian.PutUint32(buf[p:], uint32(c))
		p += 4
	}
	return buf
}

func decodeLevel(payload []byte) (hierarchy.LevelAssign, error) {
	if len(payload) < 16 {
		return hierarchy.LevelAssign{}, fmt.Errorf("%w: level section is %d bytes, want at least 16", ErrCorruptSnapshot, len(payload))
	}
	count := binary.LittleEndian.Uint64(payload[0:])
	n := binary.LittleEndian.Uint64(payload[8:])
	if n > MaxVertices || count > n {
		return hierarchy.LevelAssign{}, fmt.Errorf("%w: level section declares %d clusters on %d vertices", ErrCorruptSnapshot, count, n)
	}
	if want := 16 + 4*int(n); len(payload) != want {
		return hierarchy.LevelAssign{}, fmt.Errorf("%w: level section is %d bytes, header implies %d", ErrCorruptSnapshot, len(payload), want)
	}
	assign := make([]int, n)
	p := 16
	for i := range assign {
		assign[i] = int(binary.LittleEndian.Uint32(payload[p:]))
		p += 4
	}
	// Deeper validation (assignment ranges against the actual level graphs)
	// belongs to hierarchy.Rebuild, which knows the contracted sizes.
	return hierarchy.LevelAssign{Assign: assign, Count: int(count)}, nil
}

// --- decoding primitives ---

func readHeader(r io.Reader, wantKind uint32) error {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return corruptIO("header", err)
	}
	if !bytes.Equal(hdr[:8], snapMagic[:]) {
		return fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != snapVersion {
		return fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorruptSnapshot, v, snapVersion)
	}
	if k := binary.LittleEndian.Uint32(hdr[12:]); k != wantKind {
		return fmt.Errorf("%w: snapshot kind %d, want %d", ErrCorruptSnapshot, k, wantKind)
	}
	return nil
}

// maxSectionBytes bounds a declared section length before any allocation:
// the largest legitimate section is a maximal graph payload (offsets +
// adjacency + weights at the MaxVertices/MaxEntries limits).
const maxSectionBytes = 16 + 8*(MaxVertices+1) + (4+8)*2*MaxEntries

// readSection reads one section, verifies its checksum, and returns the
// payload. The payload is read through a bounded chunked copy so a hostile
// length field cannot force a large up-front allocation.
func readSection(r io.Reader, wantTag uint32) ([]byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, corruptIO("section header", err)
	}
	tag := binary.LittleEndian.Uint32(hdr[0:])
	if tag != wantTag {
		return nil, fmt.Errorf("%w: section tag %#x, want %#x", ErrCorruptSnapshot, tag, wantTag)
	}
	length := binary.LittleEndian.Uint64(hdr[8:])
	if length > maxSectionBytes {
		return nil, fmt.Errorf("%w: section length %d exceeds format maximum", ErrCorruptSnapshot, length)
	}
	var buf bytes.Buffer
	if n, err := io.CopyN(&buf, r, int64(length)); err != nil {
		return nil, corruptIO(fmt.Sprintf("section payload (%d of %d bytes)", n, length), err)
	}
	payload := buf.Bytes()
	if pad := (8 - int(length%8)) % 8; pad > 0 {
		var pb [8]byte
		if _, err := io.ReadFull(r, pb[:pad]); err != nil {
			return nil, corruptIO("section padding", err)
		}
	}
	var tail [8]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, corruptIO("section checksum", err)
	}
	crc := crc64.Update(crc64.Update(0, crcTable, hdr[:]), crcTable, payload)
	if got := binary.LittleEndian.Uint64(tail[:]); got != crc {
		return nil, fmt.Errorf("%w: section %#x checksum mismatch", ErrCorruptSnapshot, tag)
	}
	return payload, nil
}

// corruptIO classifies a read failure: EOF-family errors mean a truncated
// file (corruption); anything else is a real I/O error passed through.
func corruptIO(what string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: truncated in %s", ErrCorruptSnapshot, what)
	}
	return fmt.Errorf("gio: reading snapshot %s: %w", what, err)
}
