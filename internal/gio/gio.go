// Package gio reads and writes graphs in two interchange formats:
//
//   - a plain edge-list text format ("u v w" per line, '#' comments,
//     0-based vertex ids, an optional "n <count>" header line), and
//   - the MatrixMarket coordinate format (symmetric real/integer/pattern),
//     the lingua franca of sparse-matrix collections, interpreting
//     off-diagonal entries as edge weights |a_ij| and ignoring the
//     diagonal — the standard way Laplacian test problems are shipped.
package gio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"hcd/internal/graph"
)

// WriteEdgeList writes g in the edge-list format, one "u v w" line per
// edge, preceded by an "n <count>" header so isolated vertices round-trip.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parser hardening limits. Both formats carry attacker-controllable size
// declarations ("n <count>" headers, MatrixMarket size lines); the limits
// bound what a malformed or hostile file can make the parser allocate before
// any real data is seen.
const (
	// MaxVertices bounds declared and implied vertex counts (~67M).
	MaxVertices = 1 << 26
	// MaxEntries bounds the declared MatrixMarket entry count (~268M).
	MaxEntries = 1 << 28
)

// Format names accepted by Read. "edgelist" is the plain text format,
// "mm" (alias "matrixmarket") the MatrixMarket coordinate format.
const (
	FormatEdgeList     = "edgelist"
	FormatMatrixMarket = "mm"
)

// Read parses a graph from r in the named format — the single wire-format
// dispatch shared by the CLI's file:/mm: specs and the hcd-server graph
// submission endpoint. An empty format defaults to the edge-list format;
// unknown formats return an error wrapping graph.ErrInvalidInput.
func Read(r io.Reader, format string) (*graph.Graph, error) {
	switch format {
	case "", FormatEdgeList:
		return ReadEdgeList(r)
	case FormatMatrixMarket, "matrixmarket":
		return ReadMatrixMarket(r)
	default:
		return nil, fmt.Errorf("gio: unknown graph format %q (want %q or %q): %w",
			format, FormatEdgeList, FormatMatrixMarket, graph.ErrInvalidInput)
	}
}

// badInput builds a line-numbered parse error wrapping graph.ErrInvalidInput,
// so callers can distinguish malformed input (errors.Is) from I/O failures.
func badInput(line int, format string, args ...interface{}) error {
	return fmt.Errorf("gio: line %d: %s: %w", line, fmt.Sprintf(format, args...), graph.ErrInvalidInput)
}

// checkWeight validates a parsed edge weight: it must be finite and
// positive. NaN, ±Inf, zero and negative weights are data corruption for a
// Laplacian (a negative weight even breaks positive semidefiniteness), so
// they are rejected at the parse boundary with the offending line number
// rather than deep inside graph construction.
func checkWeight(line int, w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return badInput(line, "non-finite weight %v", w)
	}
	if w <= 0 {
		return badInput(line, "non-positive weight %v", w)
	}
	return nil
}

// ReadEdgeList parses the edge-list format. Lines are "u v w" (w optional,
// default 1); blank lines and '#' comments are skipped; an optional
// "n <count>" line fixes the vertex count (otherwise 1 + max id).
//
// The reader streams: once the vertex count is known — from an "n <count>"
// header, which our own writer always emits first — every subsequent edge
// feeds a chunked CSR builder directly, so peak memory tracks the graph
// under construction, never a full []Edge materialization of the input.
// Edges seen before a header are buffered and replayed into the builder
// when the count is learned (at the header, or at EOF from 1 + max id).
//
// Malformed input — syntax errors, negative or oversized vertex ids,
// non-finite or non-positive weights, conflicting "n" headers, more than
// MaxEntries edges — returns a line-numbered error wrapping
// graph.ErrInvalidInput. The MaxEntries bound fires mid-stream and its
// error reports how many bytes the reader held at that point.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *graph.Builder     // live once the vertex count is known
	var pending []graph.Edge // edges seen before any "n" header
	n := -1
	maxID := -1
	line := 0
	entries := int64(0)
	buffered := func() int64 {
		if b != nil {
			return b.BufferedBytes()
		}
		return int64(24 * cap(pending))
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, badInput(line, "bad n header")
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, badInput(line, "bad vertex count %q", fields[1])
			}
			if v > MaxVertices {
				return nil, badInput(line, "vertex count %d exceeds the %d limit", v, MaxVertices)
			}
			if b != nil {
				if v != n {
					return nil, badInput(line, "conflicting vertex counts %d and %d", n, v)
				}
				continue
			}
			n = v
			if b, err = graph.NewBuilder(n, graph.MergeSum); err != nil {
				return nil, badInput(line, "%v", err)
			}
			for _, e := range pending {
				if err := b.Add(e.U, e.V, e.W); err != nil {
					return nil, badInput(line, "%v", err)
				}
			}
			pending = nil
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, badInput(line, "want 'u v [w]', got %q", text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, badInput(line, "bad vertex %q", fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, badInput(line, "bad vertex %q", fields[1])
		}
		if u < 0 || v < 0 {
			return nil, badInput(line, "negative vertex id in %q", text)
		}
		if u > MaxVertices || v > MaxVertices {
			return nil, badInput(line, "vertex id exceeds the %d limit in %q", MaxVertices, text)
		}
		if u == v {
			return nil, badInput(line, "self-loop %d-%d", u, v)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, badInput(line, "bad weight %q", fields[2])
			}
			if err := checkWeight(line, w); err != nil {
				return nil, err
			}
		}
		entries++
		if entries > MaxEntries {
			return nil, badInput(line, "entry count exceeds the %d limit (%d bytes buffered)", MaxEntries, buffered())
		}
		if b != nil {
			if err := b.Add(u, v, w); err != nil {
				return nil, badInput(line, "%v", err)
			}
		} else {
			pending = append(pending, graph.Edge{U: u, V: v, W: w})
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b != nil {
		if maxID >= n {
			return nil, fmt.Errorf("gio: vertex id %d outside declared count %d: %w", maxID, n, graph.ErrInvalidInput)
		}
		return b.Finish()
	}
	// Headerless input: the count was only known at EOF.
	return graph.NewFromEdges(maxID+1, pending)
}

// ReadMatrixMarket parses a MatrixMarket coordinate file as a weighted
// graph: the matrix must be square; symmetric files use each stored entry
// once, general files must contain both triangles consistently (entries are
// merged by absolute-value max). Diagonal entries are skipped; entry values
// become |a_ij|; pattern files get unit weights.
// Malformed input returns a line-numbered error wrapping
// graph.ErrInvalidInput; the declared sizes are bounded by MaxVertices and
// MaxEntries, and nothing is allocated proportional to a declared size
// before the corresponding data has actually been read.
func ReadMatrixMarket(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 1
	if !sc.Scan() {
		return nil, fmt.Errorf("gio: empty MatrixMarket stream: %w", graph.ErrInvalidInput)
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, badInput(line, "unsupported MatrixMarket header %q", sc.Text())
	}
	pattern := header[3] == "pattern"
	if !pattern && header[3] != "real" && header[3] != "integer" {
		return nil, badInput(line, "unsupported field type %q", header[3])
	}
	symmetric := false
	if len(header) >= 5 {
		switch header[4] {
		case "symmetric", "skew-symmetric":
			symmetric = true
		case "general":
		default:
			return nil, badInput(line, "unsupported symmetry %q", header[4])
		}
	}
	// Skip comments, read the size line.
	var rows, cols, nnz int
	sized := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		if _, err := fmt.Sscanf(text, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, badInput(line, "bad size line %q: %v", text, err)
		}
		sized = true
		break
	}
	if !sized {
		return nil, fmt.Errorf("gio: missing MatrixMarket size line: %w", graph.ErrInvalidInput)
	}
	if rows != cols {
		return nil, badInput(line, "matrix is %dx%d, need square", rows, cols)
	}
	if rows < 0 || nnz < 0 {
		return nil, badInput(line, "negative size %d %d %d", rows, cols, nnz)
	}
	if rows > MaxVertices {
		return nil, badInput(line, "dimension %d exceeds the %d limit", rows, MaxVertices)
	}
	if nnz > MaxEntries {
		return nil, badInput(line, "entry count %d exceeds the %d limit", nnz, MaxEntries)
	}
	// Entries stream straight into a chunked CSR builder under the
	// MergeMax policy (the symmetric mirror of a stored entry must not
	// double the weight). The builder allocates in proportion to the data
	// actually read — the declared sizes remain untrusted hints, so a
	// hostile size line with no data behind it costs nothing.
	b, err := graph.NewBuilder(rows, graph.MergeMax)
	if err != nil {
		return nil, badInput(line, "%v", err)
	}
	read := 0
	for read < nnz && sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		want := 3
		if pattern {
			want = 2
		}
		if len(fields) < want {
			return nil, badInput(line, "short entry line %q", text)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, badInput(line, "bad row index %q", fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, badInput(line, "bad col index %q", fields[1])
		}
		if i < 1 || i > rows || j < 1 || j > rows {
			return nil, badInput(line, "entry (%d, %d) outside the declared %dx%d matrix", i, j, rows, rows)
		}
		read++
		if i == j {
			continue // diagonal: Laplacian diagonals are implied
		}
		w := 1.0
		if !pattern {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, badInput(line, "bad value %q", fields[2])
			}
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, badInput(line, "non-finite value %v", w)
			}
			w = math.Abs(w)
			if w == 0 {
				continue // explicit zero: no edge
			}
		}
		u, v := i-1, j-1 // MatrixMarket is 1-based
		if err := b.Add(u, v, w); err != nil {
			return nil, badInput(line, "%v", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < nnz {
		return nil, fmt.Errorf("gio: expected %d entries, found %d: %w", nnz, read, graph.ErrInvalidInput)
	}
	_ = symmetric // both triangles collapse into the same undirected edge
	return b.Finish()
}

// WriteMatrixMarket writes the Laplacian of g as a symmetric real
// coordinate MatrixMarket matrix (lower triangle + diagonal).
func WriteMatrixMarket(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	n := g.N()
	nnz := g.M() + n
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real symmetric\n%d %d %d\n", n, n, nnz); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", v+1, v+1, g.Vol(v)); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		hi, lo := e.U, e.V
		if hi < lo {
			hi, lo = lo, hi
		}
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", hi+1, lo+1, -e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}
