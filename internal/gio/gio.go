// Package gio reads and writes graphs in two interchange formats:
//
//   - a plain edge-list text format ("u v w" per line, '#' comments,
//     0-based vertex ids, an optional "n <count>" header line), and
//   - the MatrixMarket coordinate format (symmetric real/integer/pattern),
//     the lingua franca of sparse-matrix collections, interpreting
//     off-diagonal entries as edge weights |a_ij| and ignoring the
//     diagonal — the standard way Laplacian test problems are shipped.
package gio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"hcd/internal/graph"
)

// WriteEdgeList writes g in the edge-list format, one "u v w" line per
// edge, preceded by an "n <count>" header so isolated vertices round-trip.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format. Lines are "u v w" (w optional,
// default 1); blank lines and '#' comments are skipped; an optional
// "n <count>" line fixes the vertex count (otherwise 1 + max id).
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var edges []graph.Edge
	n := -1
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("gio: line %d: bad n header", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("gio: line %d: bad vertex count %q", line, fields[1])
			}
			n = v
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("gio: line %d: want 'u v [w]', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad vertex %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad vertex %q", line, fields[1])
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad weight %q", line, fields[2])
			}
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxID + 1
	}
	return graph.NewFromEdges(n, edges)
}

// ReadMatrixMarket parses a MatrixMarket coordinate file as a weighted
// graph: the matrix must be square; symmetric files use each stored entry
// once, general files must contain both triangles consistently (entries are
// merged by absolute-value max). Diagonal entries are skipped; entry values
// become |a_ij|; pattern files get unit weights.
func ReadMatrixMarket(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("gio: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("gio: unsupported MatrixMarket header %q", sc.Text())
	}
	pattern := header[3] == "pattern"
	if !pattern && header[3] != "real" && header[3] != "integer" {
		return nil, fmt.Errorf("gio: unsupported field type %q", header[3])
	}
	symmetric := false
	if len(header) >= 5 {
		switch header[4] {
		case "symmetric", "skew-symmetric":
			symmetric = true
		case "general":
		default:
			return nil, fmt.Errorf("gio: unsupported symmetry %q", header[4])
		}
	}
	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		if _, err := fmt.Sscanf(text, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("gio: bad size line %q: %w", text, err)
		}
		break
	}
	if rows != cols {
		return nil, fmt.Errorf("gio: matrix is %dx%d, need square", rows, cols)
	}
	type key struct{ u, v int }
	weights := make(map[key]float64, nnz)
	read := 0
	for read < nnz && sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		want := 3
		if pattern {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("gio: short entry line %q", text)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("gio: bad row index %q", fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("gio: bad col index %q", fields[1])
		}
		read++
		if i == j {
			continue // diagonal: Laplacian diagonals are implied
		}
		w := 1.0
		if !pattern {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("gio: bad value %q", fields[2])
			}
			w = math.Abs(w)
			if w == 0 {
				continue // explicit zero: no edge
			}
		}
		u, v := i-1, j-1 // MatrixMarket is 1-based
		if u > v {
			u, v = v, u
		}
		k := key{u, v}
		if prev, ok := weights[k]; !ok || w > prev {
			weights[k] = w
		}
	}
	if read < nnz {
		return nil, fmt.Errorf("gio: expected %d entries, found %d", nnz, read)
	}
	_ = symmetric // both triangles collapse into the same undirected edge
	edges := make([]graph.Edge, 0, len(weights))
	for k, w := range weights {
		edges = append(edges, graph.Edge{U: k.u, V: k.v, W: w})
	}
	return graph.NewFromEdges(rows, edges)
}

// WriteMatrixMarket writes the Laplacian of g as a symmetric real
// coordinate MatrixMarket matrix (lower triangle + diagonal).
func WriteMatrixMarket(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	n := g.N()
	nnz := g.M() + n
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real symmetric\n%d %d %d\n", n, n, nnz); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", v+1, v+1, g.Vol(v)); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		hi, lo := e.U, e.V
		if hi < lo {
			hi, lo = lo, hi
		}
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", hi+1, lo+1, -e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}
