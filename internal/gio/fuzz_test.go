package gio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"hcd/internal/graph"
)

// Hardening tests: every malformed input must come back as a line-numbered
// error wrapping graph.ErrInvalidInput, never a panic or a huge allocation.

func TestReadEdgeListRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"nan weight", "0 1 NaN\n", "line 1"},
		{"inf weight", "0 1 +Inf\n", "line 1"},
		{"negative weight", "0 1 -2\n", "line 1"},
		{"zero weight", "0 1 0\n", "line 1"},
		{"negative id", "-1 1\n", "line 1"},
		{"self loop", "3 3\n", "line 1"},
		{"short line", "7\n", "line 1"},
		{"long line", "0 1 2 3\n", "line 1"},
		{"bad header", "n\n", "line 1"},
		{"huge header", "n 99999999999\n", "line 1"},
		{"bad vertex", "a b\n", "line 1"},
		{"late error has late line", "# comment\n0 1 1\n0 2 bogus\n", "line 3"},
		{"id outside declared n", "n 2\n0 5\n", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(c.in))
			if !errors.Is(err, graph.ErrInvalidInput) {
				t.Fatalf("err = %v, want ErrInvalidInput", err)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("err %q does not carry %q", err, c.want)
			}
		})
	}
}

func TestReadMatrixMarketRejectsMalformed(t *testing.T) {
	const hdr = "%%MatrixMarket matrix coordinate real symmetric\n"
	cases := []struct {
		name, in, want string
	}{
		{"nan value", hdr + "2 2 1\n2 1 NaN\n", "line 3"},
		{"inf value", hdr + "2 2 1\n2 1 Inf\n", "line 3"},
		{"out of range entry", hdr + "2 2 1\n5 1 1.0\n", "line 3"},
		{"zero index entry", hdr + "2 2 1\n0 1 1.0\n", "line 3"},
		{"nonsquare", hdr + "2 3 1\n", "need square"},
		{"negative nnz", hdr + "2 2 -1\n", "negative size"},
		{"huge dimension", hdr + "999999999 999999999 1\n", "limit"},
		{"huge nnz", hdr + "2 2 99999999999\n", "limit"},
		{"truncated entries", hdr + "2 2 2\n2 1 1.0\n", "found 1"},
		{"bad header", "%%MatrixMarket matrix array real general\n", "header"},
		{"bad field type", "%%MatrixMarket matrix coordinate complex general\n", "field type"},
		{"empty", "", "empty"},
		{"no size line", hdr + "% only comments\n", "size line"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadMatrixMarket(strings.NewReader(c.in))
			if !errors.Is(err, graph.ErrInvalidInput) {
				t.Fatalf("err = %v, want ErrInvalidInput", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("err %q does not carry %q", err, c.want)
			}
		})
	}
}

// sameGraph compares two graphs edge-by-edge with a tolerance for the
// text-format round trip.
func sameGraph(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		na, wa := a.Neighbors(v)
		nb, wb := b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
			if d := math.Abs(wa[i] - wb[i]); d > 1e-12*math.Abs(wa[i]) {
				return false
			}
		}
	}
	return true
}

// FuzzReadEdgeList asserts the parser never panics, and that accepted inputs
// survive a write/reparse round trip (the serializer is the oracle).
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 4\n0 1 1.5\n1 2 2\n2 3 0.25\n")
	f.Add("0 1\n1 2\n# comment\n\n2 3 7\n")
	f.Add("n 0\n")
	f.Add("0 1 NaN\n")
	f.Add("0 1 -Inf\n")
	f.Add("-1 5\n")
	f.Add("n 99999999999\n")
	f.Add("1 1\n")
	f.Add("0 1 1e308\n0 1 2\n")
	f.Add("x y z\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return // bound fuzz-case cost, not parser capability
		}
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics and hangs are the bug
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse of serialized graph failed: %v\noriginal input %q", err, in)
		}
		if !sameGraph(g, g2) {
			t.Fatalf("round trip changed the graph (n=%d m=%d -> n=%d m=%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// FuzzReadMatrixMarket asserts the parser never panics, and that accepted
// inputs survive a WriteMatrixMarket/reparse round trip.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n2 1 1.0\n3 2 2.0\n3 1 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer symmetric\n2 2 1\n2 1 3\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 NaN\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n9 9 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 99999999999\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n999999999 999999999 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 4.0\n")
	f.Add("garbage\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		g, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			t.Fatalf("write accepted graph: %v", err)
		}
		g2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("reparse of serialized graph failed: %v\noriginal input %q", err, in)
		}
		if !sameGraph(g, g2) {
			t.Fatalf("round trip changed the graph (n=%d m=%d -> n=%d m=%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}
