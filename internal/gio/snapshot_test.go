package gio

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// testGraph builds a connected weighted graph: a ring plus seeded random
// chords, deterministic per (n, seed).
func testGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, 2*n)
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: (v + 1) % n, W: 1 + rng.Float64()})
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v, W: 0.5 + rng.Float64()})
		}
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatalf("test graph: %v", err)
	}
	return g
}

func sameCSR(a, b *graph.Graph) bool {
	ao, aa, aw := a.CSR()
	bo, ba, bw := b.CSR()
	if len(ao) != len(bo) || len(aa) != len(ba) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	for i := range aa {
		if aa[i] != ba[i] || aw[i] != bw[i] {
			return false
		}
	}
	return true
}

func TestGraphSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{2, 7, 200} {
		g := testGraph(t, n, int64(n))
		var buf bytes.Buffer
		if err := WriteGraphSnapshot(&buf, g); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		got, err := ReadGraphSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if !sameCSR(g, got) {
			t.Fatalf("n=%d: CSR arrays changed across the round trip", n)
		}
	}
}

func TestHierarchySnapshotRoundTrip(t *testing.T) {
	g := testGraph(t, 800, 42)
	opt := hierarchy.DefaultOptions()
	opt.DirectLimit = 50
	h, err := hierarchy.New(g, opt)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteHierarchySnapshot(&buf, g, h); err != nil {
		t.Fatalf("write: %v", err)
	}
	g2, h2, err := ReadHierarchySnapshot(context.Background(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !sameCSR(g, g2) {
		t.Fatal("graph changed across the round trip")
	}
	if h2.Depth() != h.Depth() || h2.CoarseSize() != h.CoarseSize() {
		t.Fatalf("shape changed: depth %d→%d, coarse %d→%d", h.Depth(), h2.Depth(), h.CoarseSize(), h2.CoarseSize())
	}
	// The rebuilt hierarchy must be the same linear operator bit-for-bit:
	// assignments are persisted and everything else is deterministic.
	r := make([]float64, g.N())
	rng := rand.New(rand.NewSource(7))
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	want := make([]float64, g.N())
	got := make([]float64, g.N())
	h.Apply(want, r)
	h2.Apply(got, r)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Apply diverges at %d: %v vs %v", i, want[i], got[i])
		}
	}
}

// TestSnapshotEveryByteFlip flips every byte of an encoded snapshot and
// requires the decoder to either reject the file as corrupt or — for the
// few bytes outside checksum coverage (section padding) — decode a graph
// identical to the original. Nothing in between, and never a panic.
func TestSnapshotEveryByteFlip(t *testing.T) {
	g := testGraph(t, 31, 3)
	var buf bytes.Buffer
	if err := WriteGraphSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5a
		got, err := ReadGraphSnapshot(bytes.NewReader(mut))
		if err == nil {
			if !sameCSR(g, got) {
				t.Fatalf("flip at byte %d: decoded a different graph without error", i)
			}
			continue
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorruptSnapshot", i, err)
		}
	}
}

func TestSnapshotTruncation(t *testing.T) {
	g := testGraph(t, 20, 9)
	var buf bytes.Buffer
	if err := WriteGraphSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		_, err := ReadGraphSnapshot(bytes.NewReader(enc[:cut]))
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrCorruptSnapshot", cut, err)
		}
	}
}

// TestHierarchySnapshotPartialRecovery corrupts the hierarchy portion of a
// snapshot while leaving the graph section intact: the reader must hand back
// the verified graph alongside the corruption error, so the serving layer
// can rebuild instead of losing the graph.
func TestHierarchySnapshotPartialRecovery(t *testing.T) {
	g := testGraph(t, 400, 5)
	opt := hierarchy.DefaultOptions()
	opt.DirectLimit = 40
	h, err := hierarchy.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHierarchySnapshot(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	t.Run("corrupt level section", func(t *testing.T) {
		mut := append([]byte(nil), enc...)
		mut[len(mut)-1] ^= 0xff // last byte: final level section's checksum
		g2, h2, err := ReadHierarchySnapshot(context.Background(), bytes.NewReader(mut))
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
		}
		if h2 != nil {
			t.Fatal("returned a hierarchy from a corrupt dump")
		}
		if g2 == nil || !sameCSR(g, g2) {
			t.Fatal("intact graph section not recovered")
		}
	})

	t.Run("corrupt graph section", func(t *testing.T) {
		mut := append([]byte(nil), enc...)
		mut[40] ^= 0xff // inside the graph payload
		g2, h2, err := ReadHierarchySnapshot(context.Background(), bytes.NewReader(mut))
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
		}
		if g2 != nil || h2 != nil {
			t.Fatal("returned data from a snapshot with a corrupt graph section")
		}
	})

	t.Run("truncated after graph section", func(t *testing.T) {
		// End of the graph section: file header 16 + section header 16 +
		// padded payload + checksum 8.
		gEnd := 16 + 16 + pad8(len(encodeGraph(g))) + 8
		g2, _, err := ReadHierarchySnapshot(context.Background(), bytes.NewReader(enc[:gEnd]))
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
		}
		if g2 == nil || !sameCSR(g, g2) {
			t.Fatal("intact graph section not recovered from truncated snapshot")
		}
	})
}

func pad8(n int) int { return n + (8-n%8)%8 }

func TestSnapshotKindMismatch(t *testing.T) {
	g := testGraph(t, 10, 1)
	var buf bytes.Buffer
	if err := WriteGraphSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadHierarchySnapshot(context.Background(), bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("hierarchy read of a graph snapshot: err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestSnapshotFaultInjection(t *testing.T) {
	g := testGraph(t, 12, 2)
	var buf bytes.Buffer
	if err := WriteGraphSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}

	t.Run("write", func(t *testing.T) {
		restore := faultinject.Activate(map[string]faultinject.Spec{
			faultinject.SnapshotWrite: {},
		})
		defer restore()
		var out bytes.Buffer
		if err := WriteGraphSnapshot(&out, g); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
		if out.Len() != 0 {
			t.Fatal("injected write failure still produced output")
		}
	})

	t.Run("read", func(t *testing.T) {
		restore := faultinject.Activate(map[string]faultinject.Spec{
			faultinject.SnapshotRead: {},
		})
		defer restore()
		_, err := ReadGraphSnapshot(bytes.NewReader(buf.Bytes()))
		if !errors.Is(err, faultinject.ErrInjected) || !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("err = %v, want ErrInjected wrapped as ErrCorruptSnapshot", err)
		}
	})
}

// FuzzSnapshotRoundTrip feeds arbitrary bytes to both snapshot readers: they
// must never panic and never over-allocate, and anything that decodes as a
// graph must re-encode and re-decode to the identical graph.
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, n := range []int{2, 9} {
		g := testGraph(f, n, int64(n))
		var buf bytes.Buffer
		if err := WriteGraphSnapshot(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	{
		g := testGraph(f, 120, 11)
		opt := hierarchy.DefaultOptions()
		opt.DirectLimit = 20
		if h, err := hierarchy.New(g, opt); err == nil {
			var buf bytes.Buffer
			if err := WriteHierarchySnapshot(&buf, g, h); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte("HCDSNAP1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if g, err := ReadGraphSnapshot(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteGraphSnapshot(&buf, g); err != nil {
				t.Fatalf("re-encode of decoded graph failed: %v", err)
			}
			g2, err := ReadGraphSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !sameCSR(g, g2) {
				t.Fatal("decoded graph did not round-trip")
			}
		}
		ctx := context.Background()
		if g, h, err := ReadHierarchySnapshot(ctx, bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteHierarchySnapshot(&buf, g, h); err != nil {
				t.Fatalf("re-encode of decoded hierarchy failed: %v", err)
			}
			if _, _, err := ReadHierarchySnapshot(ctx, bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("re-decode of hierarchy failed: %v", err)
			}
		}
	})
}
