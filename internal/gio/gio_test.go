package gio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/workload"
)

func graphsEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i].U != eb[i].U || ea[i].V != eb[i].V || math.Abs(ea[i].W-eb[i].W) > 1e-15 {
			return false
		}
	}
	return true
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := workload.GridDiag2D(7, 9, workload.Lognormal(1), 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, h) {
		t.Error("edge-list round trip changed the graph")
	}
}

func TestEdgeListIsolatedVerticesRoundTrip(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, V: 1, W: 2}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 5 {
		t.Errorf("N = %d, want 5", h.N())
	}
}

func TestReadEdgeListFormats(t *testing.T) {
	in := `
# a comment
0 1 2.5

1 2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if w, _ := g.Weight(1, 2); w != 1 {
		t.Errorf("default weight = %v, want 1", w)
	}
	if w, _ := g.Weight(0, 1); w != 2.5 {
		t.Errorf("weight = %v", w)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0 1 x",
		"0",
		"a b",
		"n -3",
		"0 0 1", // self loop -> NewFromEdges error
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := workload.Grid2D(6, 5, workload.Lognormal(1), 7)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, h) {
		t.Error("MatrixMarket round trip changed the graph")
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% triangle
3 3 3
2 1
3 1
3 2
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if w, _ := g.Weight(0, 2); w != 1 {
		t.Errorf("pattern weight = %v", w)
	}
}

func TestReadMatrixMarketSkipsDiagonalAndZeros(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 5.0
2 1 -2.0
3 2 0.0
3 1 1.5
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if w, _ := g.Weight(0, 1); w != 2 { // |−2|
		t.Errorf("weight = %v, want 2", w)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate complex symmetric\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 3 0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n",      // missing entry
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1\n", // short line
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMatrixMarketGeneralBothTriangles(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 2 -3
2 1 -3
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d", g.M())
	}
	if w, _ := g.Weight(0, 1); w != 3 {
		t.Errorf("weight = %v", w)
	}
}

// The streamed (header-first) and buffered (headerless) edge-list paths must
// agree: same graph whether the "n" line arrives first, last, or never.
func TestReadEdgeListHeaderPlacement(t *testing.T) {
	body := "0 1 2.5\n1 2 0.5\n0 2 1.25\n"
	headerFirst, err := ReadEdgeList(strings.NewReader("n 4\n" + body))
	if err != nil {
		t.Fatal(err)
	}
	headerLast, err := ReadEdgeList(strings.NewReader(body + "n 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(headerFirst, headerLast) {
		t.Error("header placement changed the parsed graph")
	}
	headerless, err := ReadEdgeList(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if headerless.N() != 3 || headerless.M() != 3 {
		t.Errorf("headerless parse: n=%d m=%d", headerless.N(), headerless.M())
	}
	// A repeated identical header is tolerated; a conflicting one is not.
	if _, err := ReadEdgeList(strings.NewReader("n 4\nn 4\n" + body)); err != nil {
		t.Errorf("repeated identical header rejected: %v", err)
	}
	if _, err := ReadEdgeList(strings.NewReader("n 4\n" + body + "n 5\n")); !errors.Is(err, graph.ErrInvalidInput) {
		t.Errorf("conflicting header: got %v, want ErrInvalidInput", err)
	}
}

// Streamed parses enforce vertex bounds against the declared count as each
// edge arrives, with the offending line number.
func TestReadEdgeListStreamedBounds(t *testing.T) {
	_, err := ReadEdgeList(strings.NewReader("n 3\n0 1 1\n1 7 1\n"))
	if !errors.Is(err, graph.ErrInvalidInput) {
		t.Fatalf("out-of-range streamed edge: got %v", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error lacks the offending line number: %v", err)
	}
	// Duplicate edges merge by summing, matching NewFromEdges semantics.
	g, err := ReadEdgeList(strings.NewReader("n 2\n0 1 1.5\n1 0 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.Weight(0, 1); w != 3.5 {
		t.Errorf("duplicate merge: w = %v, want 3.5", w)
	}
}
