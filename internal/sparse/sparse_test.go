package sparse

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/graph"
)

func randomConnected(rng *rand.Rand, n, extra int) *graph.Graph {
	var es []graph.Edge
	for v := 1; v < n; v++ {
		es = append(es, graph.Edge{U: rng.Intn(v), V: v, W: 0.5 + rng.Float64()})
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			es = append(es, graph.Edge{U: u, V: v, W: 0.5 + rng.Float64()})
		}
	}
	return graph.MustFromEdges(n, es)
}

func TestTripletAssemblyAndAt(t *testing.T) {
	m, err := NewFromTriplets(2, 3, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {0, 2, 0.5}, // duplicate (0,2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 2) != 2.5 || m.At(1, 1) != 3 || m.At(1, 0) != 0 {
		t.Errorf("At values wrong: %v %v %v", m.At(0, 2), m.At(1, 1), m.At(1, 0))
	}
	if _, err := NewFromTriplets(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Error("out-of-range triplet accepted")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewFromTriplets(2, 2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("MulVec = %v", dst)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ts []Triplet
	for i := 0; i < 200; i++ {
		ts = append(ts, Triplet{Row: rng.Intn(13), Col: rng.Intn(17), Val: rng.NormFloat64()})
	}
	m, _ := NewFromTriplets(13, 17, ts)
	tt := m.Transpose().Transpose()
	if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
		t.Fatal("shape changed under double transpose")
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if tt.At(i, m.ColIdx[k]) != m.Val[k] {
				t.Fatalf("entry (%d,%d) changed", i, m.ColIdx[k])
			}
		}
	}
}

func TestMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ra, ca, cb := 9, 7, 11
	var ta, tb []Triplet
	da := make([]float64, ra*ca)
	db := make([]float64, ca*cb)
	for i := 0; i < 40; i++ {
		r, c, v := rng.Intn(ra), rng.Intn(ca), rng.NormFloat64()
		ta = append(ta, Triplet{r, c, v})
		da[r*ca+c] += v
	}
	for i := 0; i < 40; i++ {
		r, c, v := rng.Intn(ca), rng.Intn(cb), rng.NormFloat64()
		tb = append(tb, Triplet{r, c, v})
		db[r*cb+c] += v
	}
	a, _ := NewFromTriplets(ra, ca, ta)
	b, _ := NewFromTriplets(ca, cb, tb)
	prod := a.Mul(b)
	for i := 0; i < ra; i++ {
		for j := 0; j < cb; j++ {
			want := 0.0
			for k := 0; k < ca; k++ {
				want += da[i*ca+k] * db[k*cb+j]
			}
			if math.Abs(prod.At(i, j)-want) > 1e-10 {
				t.Fatalf("(%d,%d): %v vs %v", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestLaplacianMatchesGraphOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 30, 40)
	a := Laplacian(g)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, g.N())
	g.LapMul(want, x)
	got := make([]float64, g.N())
	a.MulVec(got, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestIndicatorShape(t *testing.T) {
	r := Indicator([]int{0, 1, 1, 2}, 3)
	if r.Rows != 4 || r.Cols != 3 || r.NNZ() != 4 {
		t.Fatalf("indicator shape wrong")
	}
	if r.At(2, 1) != 1 || r.At(2, 0) != 0 {
		t.Error("indicator entries wrong")
	}
}

// The key algebraic identity of Definition 3.1 / Remark 1: RᵀAR is the
// Laplacian of the contracted (quotient) graph.
func TestQuotientLaplacianEqualsContraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for it := 0; it < 10; it++ {
		g := randomConnected(rng, 25, 30)
		m := 5
		assign := make([]int, g.N())
		for v := range assign {
			assign[v] = rng.Intn(m)
		}
		q := QuotientLaplacian(Laplacian(g), Indicator(assign, m))
		qg := g.Contract(assign, m)
		lq := Laplacian(qg)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				got, want := q.At(i, j), lq.At(i, j)
				if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("quotient (%d,%d): RᵀAR=%v contraction=%v", i, j, got, want)
				}
			}
		}
	}
}

func TestJacobiSweepReducesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(rng, 50, 80)
	a := Laplacian(g)
	n := g.N()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	x := make([]float64, n)
	scratch := make([]float64, n)
	res := func() float64 {
		a.MulVec(scratch, x)
		s := 0.0
		for i := range scratch {
			d := scratch[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	r0 := res()
	for i := 0; i < 30; i++ {
		JacobiSweep(a, x, b, scratch, 2.0/3.0)
	}
	if r1 := res(); r1 >= r0*0.9 {
		t.Errorf("Jacobi did not reduce residual: %v -> %v", r0, r1)
	}
}

func TestGaussSeidelSweepReducesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnected(rng, 50, 80)
	a := Laplacian(g)
	n := g.N()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	x := make([]float64, n)
	scratch := make([]float64, n)
	res := func() float64 {
		a.MulVec(scratch, x)
		s := 0.0
		for i := range scratch {
			d := scratch[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	r0 := res()
	for i := 0; i < 15; i++ {
		GaussSeidelSweep(a, x, b, false)
		GaussSeidelSweep(a, x, b, true)
	}
	if r1 := res(); r1 >= r0*0.5 {
		t.Errorf("Gauss-Seidel did not reduce residual: %v -> %v", r0, r1)
	}
}

func BenchmarkSpMVGrid(b *testing.B) {
	// 100x100 grid graph Laplacian SpMV.
	var es []graph.Edge
	id := func(i, j int) int { return i*100 + j }
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			if i+1 < 100 {
				es = append(es, graph.Edge{U: id(i, j), V: id(i+1, j), W: 1})
			}
			if j+1 < 100 {
				es = append(es, graph.Edge{U: id(i, j), V: id(i, j+1), W: 1})
			}
		}
	}
	g := graph.MustFromEdges(100*100, es)
	a := Laplacian(g)
	x := make([]float64, g.N())
	dst := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 31)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(dst, x)
	}
}

func BenchmarkQuotientTripleProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(rng, 5000, 10000)
	a := Laplacian(g)
	assign := make([]int, g.N())
	for v := range assign {
		assign[v] = v / 4
	}
	r := Indicator(assign, (g.N()+3)/4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = QuotientLaplacian(a, r)
	}
}
