package sparse

// Smoothers for Laplacian-like systems A·x = b. Both sweeps assume A stores
// its diagonal explicitly and the diagonal is strictly positive on rows that
// have off-diagonal entries; rows with zero diagonal are skipped (isolated
// vertices of a Laplacian).

// JacobiSweep performs one damped Jacobi iteration
// x ← x + ω·D⁻¹(b − A·x), writing the result into x and using scratch (same
// length) as workspace.
func JacobiSweep(a *CSR, x, b, scratch []float64, omega float64) {
	a.MulVec(scratch, x)
	for i := 0; i < a.Rows; i++ {
		d := a.At(i, i)
		if d <= 0 {
			continue
		}
		x[i] += omega * (b[i] - scratch[i]) / d
	}
}

// GaussSeidelSweep performs one forward Gauss–Seidel sweep in place. When
// backward is true it sweeps rows in reverse order (use a forward+backward
// pair for a symmetric smoother inside PCG).
func GaussSeidelSweep(a *CSR, x, b []float64, backward bool) {
	update := func(i int) {
		var diag, acc float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i {
				diag = a.Val[k]
			} else {
				acc += a.Val[k] * x[j]
			}
		}
		if diag > 0 {
			x[i] = (b[i] - acc) / diag
		}
	}
	if backward {
		for i := a.Rows - 1; i >= 0; i-- {
			update(i)
		}
	} else {
		for i := 0; i < a.Rows; i++ {
			update(i)
		}
	}
}
