// Package sparse provides compressed sparse row (CSR) matrices and the
// kernels the Steiner-preconditioner pipeline needs: parallel SpMV,
// transpose, CSR×CSR products, the RᵀAR triple product that assembles
// quotient Laplacians algebraically (paper Remark 1), and Jacobi /
// Gauss–Seidel smoothing sweeps.
package sparse

import (
	"fmt"
	"sort"

	"hcd/internal/graph"
	"hcd/internal/par"
)

// CSR is a sparse matrix in compressed sparse row form.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int // len nnz
	Val        []float64
}

// Triplet is a single (row, col, value) entry used for assembly.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewFromTriplets assembles a CSR matrix, summing duplicate coordinates.
func NewFromTriplets(rows, cols int, ts []Triplet) (*CSR, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) out of %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	sorted := append([]Triplet(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, sorted[i].Col)
		m.Val = append(m.Val, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns entry (i, j), zero if not stored. O(row nnz).
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Val[k]
		}
	}
	return 0
}

// MulVec computes dst = M·x in parallel over rows.
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("sparse: MulVec shape mismatch")
	}
	par.For(m.Rows, 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := 0.0
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				acc += m.Val[k] * x[m.ColIdx[k]]
			}
			dst[i] = acc
		}
	})
}

// Transpose returns Mᵀ.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int, m.Cols+1)}
	t.ColIdx = make([]int, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		t.RowPtr[c+1] += t.RowPtr[c]
	}
	fill := append([]int(nil), t.RowPtr[:m.Cols]...)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.ColIdx[k]
			t.ColIdx[fill[c]] = r
			t.Val[fill[c]] = m.Val[k]
			fill[c]++
		}
	}
	return t
}

// Mul returns M·B using a row-wise sparse accumulator. Rows are processed in
// parallel; each worker keeps its own dense scratch of size B.Cols.
func (m *CSR) Mul(b *CSR) *CSR {
	if m.Cols != b.Rows {
		panic("sparse: Mul shape mismatch")
	}
	type rowResult struct {
		cols []int
		vals []float64
	}
	results := make([]rowResult, m.Rows)
	par.For(m.Rows, 256, func(lo, hi int) {
		scratch := make([]float64, b.Cols)
		mark := make([]int, b.Cols)
		for i := range mark {
			mark[i] = -1
		}
		var touched []int
		for i := lo; i < hi; i++ {
			touched = touched[:0]
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				a := m.Val[k]
				r := m.ColIdx[k]
				for kb := b.RowPtr[r]; kb < b.RowPtr[r+1]; kb++ {
					c := b.ColIdx[kb]
					if mark[c] != i {
						mark[c] = i
						scratch[c] = 0
						touched = append(touched, c)
					}
					scratch[c] += a * b.Val[kb]
				}
			}
			sort.Ints(touched)
			cols := make([]int, len(touched))
			vals := make([]float64, len(touched))
			for j, c := range touched {
				cols[j] = c
				vals[j] = scratch[c]
			}
			results[i] = rowResult{cols: cols, vals: vals}
		}
	})
	out := &CSR{Rows: m.Rows, Cols: b.Cols, RowPtr: make([]int, m.Rows+1)}
	for i, r := range results {
		out.RowPtr[i+1] = out.RowPtr[i] + len(r.cols)
	}
	out.ColIdx = make([]int, out.RowPtr[m.Rows])
	out.Val = make([]float64, out.RowPtr[m.Rows])
	for i, r := range results {
		copy(out.ColIdx[out.RowPtr[i]:], r.cols)
		copy(out.Val[out.RowPtr[i]:], r.vals)
	}
	return out
}

// Laplacian returns the Laplacian of g as a CSR matrix (diagonal included).
func Laplacian(g *graph.Graph) *CSR {
	n := g.N()
	ts := make([]Triplet, 0, 2*g.M()+n)
	for v := 0; v < n; v++ {
		nbr, w := g.Neighbors(v)
		for i, u := range nbr {
			ts = append(ts, Triplet{Row: v, Col: u, Val: -w[i]})
		}
		ts = append(ts, Triplet{Row: v, Col: v, Val: g.Vol(v)})
	}
	m, err := NewFromTriplets(n, n, ts)
	if err != nil {
		panic(err) // impossible by construction
	}
	return m
}

// Indicator returns the n×m 0-1 cluster membership matrix R with
// R[v, assign[v]] = 1, as in the paper's Remark 1 and Theorem 4.1.
func Indicator(assign []int, m int) *CSR {
	n := len(assign)
	r := &CSR{Rows: n, Cols: m, RowPtr: make([]int, n+1), ColIdx: make([]int, n), Val: make([]float64, n)}
	for v, c := range assign {
		if c < 0 || c >= m {
			panic("sparse: Indicator assignment out of range")
		}
		r.RowPtr[v+1] = v + 1
		r.ColIdx[v] = c
		r.Val[v] = 1
	}
	return r
}

// QuotientLaplacian computes RᵀAR — algebraically the Laplacian of the
// quotient graph Q of Definition 3.1 — via parallel sparse products.
func QuotientLaplacian(a *CSR, r *CSR) *CSR {
	return r.Transpose().Mul(a.Mul(r))
}
