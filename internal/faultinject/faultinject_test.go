package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisabledByDefault(t *testing.T) {
	if Enabled() {
		t.Fatal("Enabled() true with no plan active")
	}
	if Fire(MatvecNaN) {
		t.Fatal("Fire fired with no plan active")
	}
	if err := Err(StageFail); err != nil {
		t.Fatalf("Err returned %v with no plan active", err)
	}
	if Hits(MatvecNaN) != 0 {
		t.Fatal("hits counted with no plan active")
	}
}

func TestFireWindow(t *testing.T) {
	restore := Activate(map[string]Spec{
		MatvecNaN: {OnHit: 3, Count: 2},
	})
	defer restore()
	if !Enabled() {
		t.Fatal("Enabled() false with a plan active")
	}
	want := []bool{false, false, true, true, false, false}
	for i, w := range want {
		if got := Fire(MatvecNaN); got != w {
			t.Fatalf("hit %d: Fire = %v, want %v", i+1, got, w)
		}
	}
	if Hits(MatvecNaN) != len(want) {
		t.Fatalf("Hits = %d, want %d", Hits(MatvecNaN), len(want))
	}
	// An unconfigured point never fires and never counts.
	if Fire(WorkerPanic) {
		t.Fatal("unconfigured point fired")
	}
	if Hits(WorkerPanic) != 0 {
		t.Fatal("unconfigured point counted hits")
	}
}

func TestOpenEndedCount(t *testing.T) {
	restore := Activate(map[string]Spec{StageFail: {OnHit: 2}})
	defer restore()
	if Fire(StageFail) {
		t.Fatal("fired before OnHit")
	}
	for i := 0; i < 10; i++ {
		if err := Err(StageFail); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: Err = %v, want ErrInjected", i+2, err)
		}
	}
}

func TestRestoreAndReactivate(t *testing.T) {
	restore := Activate(map[string]Spec{MatvecNaN: {}})
	if !Fire(MatvecNaN) {
		t.Fatal("default spec should fire on the first hit")
	}
	restore()
	if Enabled() || Fire(MatvecNaN) {
		t.Fatal("plan still live after restore")
	}
	restore2 := Activate(map[string]Spec{MatvecNaN: {}})
	defer restore2()
	if Hits(MatvecNaN) != 0 {
		t.Fatal("hit counter leaked across plans")
	}
}

func TestActivateOverLivePlanPanics(t *testing.T) {
	restore := Activate(nil)
	defer restore()
	defer func() {
		if recover() == nil {
			t.Fatal("Activate over a live plan did not panic")
		}
	}()
	Activate(nil)
}

func TestDelaySleepsThenFires(t *testing.T) {
	const d = 30 * time.Millisecond
	restore := Activate(map[string]Spec{SolveDelay: {Delay: d, Count: 1}})
	defer restore()
	start := time.Now()
	if !Fire(SolveDelay) {
		t.Fatal("delayed spec without DelayOnly must still fire")
	}
	if took := time.Since(start); took < d {
		t.Fatalf("firing hit slept %v, want at least %v", took, d)
	}
	// Past the window: no sleep, no fire.
	start = time.Now()
	if Fire(SolveDelay) {
		t.Fatal("fired past the window")
	}
	if took := time.Since(start); took >= d {
		t.Fatalf("non-firing hit slept %v", took)
	}
}

func TestDelayOnlySuppressesFault(t *testing.T) {
	const d = 20 * time.Millisecond
	restore := Activate(map[string]Spec{SolveDelay: {Delay: d, DelayOnly: true}})
	defer restore()
	var observed int
	SetObserver(func(string) { observed++ })
	defer SetObserver(nil)
	start := time.Now()
	if Fire(SolveDelay) {
		t.Fatal("DelayOnly spec reported a fault")
	}
	if took := time.Since(start); took < d {
		t.Fatalf("DelayOnly hit slept %v, want at least %v", took, d)
	}
	if err := Err(SolveDelay); err != nil {
		t.Fatalf("DelayOnly Err = %v, want nil", err)
	}
	if observed != 2 {
		t.Fatalf("observer saw %d DelayOnly firings, want 2", observed)
	}
	if Hits(SolveDelay) != 2 {
		t.Fatalf("Hits = %d, want 2", Hits(SolveDelay))
	}
}

func TestConcurrentFire(t *testing.T) {
	restore := Activate(map[string]Spec{WorkerPanic: {OnHit: 1, Count: 5}})
	defer restore()
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	fires := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if Fire(WorkerPanic) {
					fires[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, f := range fires {
		total += f
	}
	if total != 5 {
		t.Fatalf("fired %d times across goroutines, want exactly 5", total)
	}
	if Hits(WorkerPanic) != goroutines*per {
		t.Fatalf("Hits = %d, want %d", Hits(WorkerPanic), goroutines*per)
	}
}
