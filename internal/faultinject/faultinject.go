// Package faultinject provides deterministic fault points for exercising
// the library's recovery paths: NaN injection into a solver matvec,
// forced PCG breakdown, panics inside parallel workers, pipeline-stage
// failures, and corruption of the randomized clustering perturbation.
//
// The package is a no-op by default. Every instrumented call site guards
// its hook with Enabled() — a single atomic load that branch-predicts
// perfectly false in production — so the instrumented hot paths pay no
// measurable cost when no fault plan is active.
//
// Faults are deterministic, not random: each point counts its hits with an
// atomic counter and fires on a configured, reproducible window of hit
// indices (Spec.OnHit/Count). A test that activates
//
//	restore := faultinject.Activate(map[string]faultinject.Spec{
//	    faultinject.MatvecNaN: {OnHit: 5, Count: 1},
//	})
//	defer restore()
//
// corrupts exactly the 5th matvec of the process from that moment on —
// the same matvec on every run — which is what lets the recovery branches
// be asserted by ordinary unit tests.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fault point names. Each names one instrumented site; the site documents
// what a fire does there.
const (
	// MatvecNaN overwrites entry 0 of a solver matvec result with NaN
	// (internal/solver pcgCore and chebyshevCore), modeling a corrupted
	// operator apply. The solver's NaN guard must classify the solve as
	// OutcomeBreakdown instead of iterating on garbage.
	MatvecNaN = "solver/matvec-nan"

	// ForceBreakdown makes the PCG curvature pᵀAp appear negative for one
	// iteration, forcing the historical OutcomeBreakdown exit.
	ForceBreakdown = "solver/force-breakdown"

	// WorkerPanic panics inside an internal/par worker goroutine. The pool
	// must recover it, cancel the sibling workers, and surface a
	// *par.PanicError on the caller's goroutine instead of crashing the
	// process.
	WorkerPanic = "par/worker-panic"

	// StageFail fails a decomposition pipeline stage (internal/decomp
	// Pipeline.Run) with an ErrInjected-wrapped error. Hit j = the j-th
	// stage executed since activation.
	StageFail = "decomp/stage-fail"

	// PerturbCorrupt degenerates the Section 3.1 fixed-degree clustering:
	// the perturbed heaviest-edge selection is discarded, so every vertex
	// becomes a singleton and the clustering achieves no reduction —
	// the failure mode a re-seeded rebuild must recover from.
	PerturbCorrupt = "decomp/perturb-corrupt"

	// SnapshotWrite fails a gio snapshot encode (graph or hierarchy),
	// modeling a full disk or I/O error during hierarchy persistence. The
	// serving layer must keep the in-memory handle alive and count the
	// failure instead of crashing or poisoning the handle.
	SnapshotWrite = "gio/snapshot-write"

	// SnapshotRead fails a gio snapshot decode, modeling on-disk corruption
	// beyond what a flipped payload byte exercises. The serving layer must
	// quarantine the snapshot and fall back to a rebuild.
	SnapshotRead = "gio/snapshot-read"

	// BuildFail fails a serve-layer hierarchy build (internal/serve
	// store.build) before construction starts. Consecutive firings drive a
	// handle's circuit breaker into the degraded state.
	BuildFail = "serve/build-fail"

	// SolveDelay stalls a serve-layer solve request just before the solver
	// runs, for the configured Spec.Delay. Used with DelayOnly it injects
	// pure latency — the tool for exercising deadline budgets (504s) and
	// client-cancellation paths without slowing the solver itself.
	SolveDelay = "serve/solve-delay"
)

// ErrInjected is the sentinel wrapped by every error manufactured by an
// injected fault, so tests can tell injected failures from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Spec configures when a fault point fires, in terms of the point's hit
// counter (each call to Fire on the point is one hit, starting at 1).
type Spec struct {
	// OnHit is the first hit index that fires (default 1: fire immediately).
	OnHit int
	// Count is the number of consecutive hits that fire starting at OnHit;
	// 0 means every hit from OnHit on.
	Count int
	// Delay, when positive, makes a firing hit sleep for this duration on
	// the goroutine that hit the point — deterministic latency injection.
	// The fault itself still fires afterwards unless DelayOnly is set.
	Delay time.Duration
	// DelayOnly suppresses the fault behavior of a firing hit: the hit
	// sleeps for Delay (and notifies the observer) but Fire reports false
	// and Err returns nil. Pure latency, no error.
	DelayOnly bool
}

type point struct {
	spec Spec
	hits atomic.Int64
}

type plan struct {
	points map[string]*point
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	active  atomic.Pointer[plan]

	// observer, when set, is invoked with the point name every time a fault
	// actually fires — the hook the observability layer uses to drop an
	// instant event into the active trace at the exact moment of injection.
	observer atomic.Pointer[observerFunc]
)

type observerFunc struct{ fn func(point string) }

// SetObserver installs fn to be called (on the goroutine that hit the fault
// point) whenever a fault fires; nil removes it. Only one observer is held;
// the caller is responsible for keeping fn cheap and concurrency-safe.
func SetObserver(fn func(point string)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&observerFunc{fn: fn})
}

// Enabled reports whether a fault plan is active. Instrumented call sites
// use it as the zero-cost production guard:
//
//	if faultinject.Enabled() && faultinject.Fire(faultinject.MatvecNaN) { ... }
func Enabled() bool { return enabled.Load() }

// Activate installs a fault plan and returns the function that removes it.
// Only one plan may be active at a time; activating over a live plan
// panics, because overlapping plans would make hit counts meaningless.
// Tests must call the returned restore (typically via defer).
func Activate(specs map[string]Spec) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	if active.Load() != nil {
		panic("faultinject: a fault plan is already active")
	}
	p := &plan{points: make(map[string]*point, len(specs))}
	for name, spec := range specs {
		if spec.OnHit <= 0 {
			spec.OnHit = 1
		}
		if spec.Count < 0 {
			spec.Count = 0
		}
		p.points[name] = &point{spec: spec}
	}
	active.Store(p)
	enabled.Store(true)
	return func() {
		mu.Lock()
		defer mu.Unlock()
		enabled.Store(false)
		active.Store(nil)
	}
}

// Fire registers one hit on the named point and reports whether the fault
// fires on this hit. With no active plan, or no spec for the point, it
// reports false without counting. A firing hit with a Delay sleeps first;
// a DelayOnly spec sleeps and notifies the observer but reports false —
// latency without a fault.
func Fire(name string) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	pt := p.points[name]
	if pt == nil {
		return false
	}
	h := pt.hits.Add(1)
	if h < int64(pt.spec.OnHit) {
		return false
	}
	if pt.spec.Count > 0 && h >= int64(pt.spec.OnHit+pt.spec.Count) {
		return false
	}
	if pt.spec.Delay > 0 {
		time.Sleep(pt.spec.Delay)
	}
	if o := observer.Load(); o != nil {
		o.fn(name)
	}
	return !pt.spec.DelayOnly
}

// Err is the error-shaped form of Fire: it returns an ErrInjected-wrapped
// error naming the point when the fault fires, nil otherwise.
func Err(name string) error {
	if Fire(name) {
		return fmt.Errorf("%w: %s", ErrInjected, name)
	}
	return nil
}

// Hits reports how many times the named point has been hit under the
// current plan (0 with no plan or an untracked point). For test assertions.
func Hits(name string) int {
	p := active.Load()
	if p == nil {
		return 0
	}
	pt := p.points[name]
	if pt == nil {
		return 0
	}
	return int(pt.hits.Load())
}
