package subgraph

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/solver"
	"hcd/internal/sparsify"
	"hcd/internal/treealg"
	"hcd/internal/workload"
)

func meanFree(rng *rand.Rand, n int) []float64 {
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

// Apply must equal the pseudo-inverse of the subgraph Laplacian.
func TestApplyIsExactInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 10; it++ {
		n := 10 + rng.Intn(30)
		// tree + a few extra edges.
		g := treealg.RandomTree(rng, n, func() float64 { return 0.2 + rng.Float64()*3 })
		es := g.Edges()
		for i := 0; i < n/5; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, graph.Edge{U: u, V: v, W: 0.2 + rng.Float64()})
			}
		}
		b := graph.MustFromEdges(n, es)
		p, st, err := New(b, n)
		if err != nil {
			t.Fatal(err)
		}
		if st.CoreSize+st.Eliminated != n {
			t.Fatalf("stats inconsistent: %+v", st)
		}
		r := meanFree(rng, n)
		x := make([]float64, n)
		p.Apply(x, r)
		ax := make([]float64, n)
		b.LapMul(ax, x)
		for i := range ax {
			if math.Abs(ax[i]-r[i]) > 1e-7 {
				t.Fatalf("it=%d: residual[%d] = %v", it, i, ax[i]-r[i])
			}
		}
		// Zero mean (pseudo-inverse property on a connected graph).
		s := 0.0
		for _, v := range x {
			s += v
		}
		if math.Abs(s) > 1e-8 {
			t.Errorf("it=%d: mean %v", it, s)
		}
	}
}

func TestApplyMatchesDensePseudoInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := treealg.RandomTree(rng, 20, func() float64 { return 0.5 + rng.Float64() })
	es := append(g.Edges(), graph.Edge{U: 0, V: 10, W: 1.3}, graph.Edge{U: 3, V: 17, W: 0.7})
	b := graph.MustFromEdges(20, es)
	p, _, err := New(b, 20)
	if err != nil {
		t.Fatal(err)
	}
	comp := make([]int, b.N())
	pin, err := dense.NewPinnedLaplacian(dense.FromRowMajor(b.N(), b.N(), b.LapDense()), comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := meanFree(rng, b.N())
	got := make([]float64, b.N())
	want := make([]float64, b.N())
	p.Apply(got, r)
	pin.Solve(want, r)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPureTreeEliminatesCompletely(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := treealg.RandomTree(rng, 50, func() float64 { return 0.1 + rng.Float64() })
	p, st, err := New(g, 0) // core limit 0: trees must fully eliminate
	if err != nil {
		t.Fatal(err)
	}
	if st.CoreSize != 0 {
		t.Fatalf("tree left a core of %d", st.CoreSize)
	}
	r := meanFree(rng, g.N())
	x := make([]float64, g.N())
	p.Apply(x, r)
	ax := make([]float64, g.N())
	g.LapMul(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-r[i]) > 1e-8 {
			t.Fatalf("residual[%d] = %v", i, ax[i]-r[i])
		}
	}
}

func TestDisconnectedForest(t *testing.T) {
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
	})
	p, _, err := New(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{1, 0, -1, 2, -1, -1, 0}
	x := make([]float64, 7)
	p.Apply(x, r)
	ax := make([]float64, 7)
	g.LapMul(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-r[i]) > 1e-8 {
			t.Fatalf("residual[%d] = %v", i, ax[i]-r[i])
		}
	}
	if x[6] != 0 {
		t.Errorf("isolated vertex got %v", x[6])
	}
}

func TestCoreLimitEnforced(t *testing.T) {
	g := workload.GridDiag2D(10, 10, nil, 1) // plenty of degree-≥3 vertices
	if _, _, err := New(g, 1); err == nil {
		t.Error("tiny core limit accepted")
	}
}

func TestSubgraphPreconditionedPCG(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := workload.Grid3D(8, 8, 8, workload.Lognormal(1), 5)
	res, err := sparsify.Sparsify(g, sparsify.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, st, err := New(res.B, g.N())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("core %d of %d", st.CoreSize, g.N())
	b := meanFree(rng, g.N())
	pcg := solver.PCG(solver.LapOperator(g), p, b, solver.DefaultOptions())
	if !pcg.Converged {
		t.Fatalf("subgraph PCG did not converge (%d iters)", pcg.Iterations)
	}
	cg := solver.CG(solver.LapOperator(g), b, solver.DefaultOptions())
	t.Logf("subgraph PCG iters=%d, plain CG iters=%d", pcg.Iterations, cg.Iterations)
	if cg.Converged && pcg.Iterations > cg.Iterations {
		t.Errorf("subgraph preconditioner slower than plain CG: %d vs %d", pcg.Iterations, cg.Iterations)
	}
}

func TestProbeCoreSizeMatchesElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for it := 0; it < 8; it++ {
		n := 20 + rng.Intn(60)
		g := treealg.RandomTree(rng, n, func() float64 { return 0.5 + rng.Float64() })
		es := g.Edges()
		for i := 0; i < n/4; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, graph.Edge{U: u, V: v, W: 0.5 + rng.Float64()})
			}
		}
		b := graph.MustFromEdges(n, es)
		probed := ProbeCoreSize(b)
		_, st, err := New(b, n)
		if err != nil {
			t.Fatal(err)
		}
		if probed != st.CoreSize {
			t.Fatalf("it=%d: probe %d vs elimination %d", it, probed, st.CoreSize)
		}
	}
}

func BenchmarkSubgraphApply(b *testing.B) {
	g := workload.Grid3D(20, 20, 20, workload.Lognormal(1), 1)
	res, err := sparsify.Sparsify(g, sparsify.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	p, _, err := New(res.B, 4000)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r := meanFree(rng, g.N())
	x := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(x, r)
	}
}
