// Package subgraph implements classical subgraph (Vaidya-style)
// preconditioners: a spanning tree plus a few off-tree edges, applied by
// greedy partial Cholesky elimination of degree-1 and degree-2 vertices down
// to a dense-factored core. This is the baseline the paper compares Steiner
// preconditioners against in Figure 6, and Remark 2's foil: the elimination
// order here is an inherently sequential chain, in contrast to the
// cluster-wise sums of the Steiner apply.
package subgraph

import (
	"fmt"

	"hcd/internal/dense"
	"hcd/internal/graph"
)

type opKind uint8

const (
	opDeg0 opKind = iota // isolated vertex: x = 0
	opDeg1               // leaf elimination
	opDeg2               // series elimination
)

type elimOp struct {
	kind   opKind
	v      int
	u1, u2 int
	w1, w2 float64
}

// Preconditioner applies B⁺ for the subgraph B via partial Cholesky plus a
// dense core factorization.
type Preconditioner struct {
	n        int
	ops      []elimOp
	core     []int // core vertex ids
	coreIdx  []int // vertex -> core index or −1
	pin      *dense.PinnedLaplacian
	comp     []int // component of B per vertex (for de-meaning)
	compSize []int
	// scratch
	work, coreRHS, coreSol, compSum []float64
}

// Stats describes the elimination outcome.
type Stats struct {
	CoreSize   int
	Eliminated int
}

// New builds the preconditioner for the graph b. CoreLimit guards the dense
// factorization: if the remaining core exceeds it, New returns an error
// (choose a sparser b or a bigger limit).
func New(b *graph.Graph, coreLimit int) (*Preconditioner, Stats, error) {
	n := b.N()
	adj := make([]map[int]float64, n)
	for v := 0; v < n; v++ {
		m := make(map[int]float64)
		nbr, w := b.Neighbors(v)
		for i, u := range nbr {
			m[u] = w[i]
		}
		adj[v] = m
	}
	alive := make([]bool, n)
	var queue []int
	for v := 0; v < n; v++ {
		alive[v] = true
		if len(adj[v]) <= 2 {
			queue = append(queue, v)
		}
	}
	p := &Preconditioner{n: n, coreIdx: make([]int, n)}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !alive[v] || len(adj[v]) > 2 {
			continue
		}
		alive[v] = false
		switch len(adj[v]) {
		case 0:
			p.ops = append(p.ops, elimOp{kind: opDeg0, v: v})
		case 1:
			var u int
			var w float64
			for uu, ww := range adj[v] {
				u, w = uu, ww
			}
			delete(adj[u], v)
			p.ops = append(p.ops, elimOp{kind: opDeg1, v: v, u1: u, w1: w})
			if alive[u] && len(adj[u]) <= 2 {
				queue = append(queue, u)
			}
		case 2:
			us := make([]int, 0, 2)
			ws := make([]float64, 0, 2)
			for uu, ww := range adj[v] {
				us = append(us, uu)
				ws = append(ws, ww)
			}
			u1, u2 := us[0], us[1]
			w1, w2 := ws[0], ws[1]
			delete(adj[u1], v)
			delete(adj[u2], v)
			adj[u1][u2] += w1 * w2 / (w1 + w2)
			adj[u2][u1] += w1 * w2 / (w1 + w2)
			p.ops = append(p.ops, elimOp{kind: opDeg2, v: v, u1: u1, u2: u2, w1: w1, w2: w2})
			if alive[u1] && len(adj[u1]) <= 2 {
				queue = append(queue, u1)
			}
			if alive[u2] && len(adj[u2]) <= 2 {
				queue = append(queue, u2)
			}
		}
	}
	for v := 0; v < n; v++ {
		p.coreIdx[v] = -1
		if alive[v] {
			p.coreIdx[v] = len(p.core)
			p.core = append(p.core, v)
		}
	}
	st := Stats{CoreSize: len(p.core), Eliminated: n - len(p.core)}
	if len(p.core) > coreLimit {
		return nil, st, fmt.Errorf("subgraph: core size %d exceeds limit %d", len(p.core), coreLimit)
	}
	if len(p.core) > 0 {
		m := len(p.core)
		lap := dense.NewMatrix(m, m)
		for i, v := range p.core {
			for u, w := range adj[v] {
				j := p.coreIdx[u]
				lap.Add(i, j, -w)
				lap.Add(i, i, w)
			}
		}
		coreGraphComp, nc := coreComponents(adj, p.core, p.coreIdx)
		pin, err := dense.NewPinnedLaplacian(lap, coreGraphComp, nc)
		if err != nil {
			return nil, st, fmt.Errorf("subgraph: core factorization failed: %w", err)
		}
		p.pin = pin
		p.coreRHS = make([]float64, m)
		p.coreSol = make([]float64, m)
	}
	p.comp, _ = b.Components()
	nc := 0
	for _, c := range p.comp {
		if c+1 > nc {
			nc = c + 1
		}
	}
	p.compSize = make([]int, nc)
	for _, c := range p.comp {
		p.compSize[c]++
	}
	p.compSum = make([]float64, nc)
	p.work = make([]float64, n)
	return p, st, nil
}

func coreComponents(adj []map[int]float64, core []int, coreIdx []int) ([]int, int) {
	comp := make([]int, len(core))
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	for i := range core {
		if comp[i] >= 0 {
			continue
		}
		stack := []int{i}
		comp[i] = nc
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for u := range adj[core[x]] {
				j := coreIdx[u]
				if j >= 0 && comp[j] < 0 {
					comp[j] = nc
					stack = append(stack, j)
				}
			}
		}
		nc++
	}
	return comp, nc
}

// ProbeCoreSize runs only the degree-1/2 elimination (no numerics) and
// returns the size of the remaining core — cheap enough to drive parameter
// searches like the matched-reduction construction of Figure 6.
func ProbeCoreSize(b *graph.Graph) int {
	n := b.N()
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		m := make(map[int]bool)
		nbr, _ := b.Neighbors(v)
		for _, u := range nbr {
			m[u] = true
		}
		adj[v] = m
	}
	alive := make([]bool, n)
	var queue []int
	for v := 0; v < n; v++ {
		alive[v] = true
		if len(adj[v]) <= 2 {
			queue = append(queue, v)
		}
	}
	count := n
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !alive[v] || len(adj[v]) > 2 {
			continue
		}
		alive[v] = false
		count--
		var us []int
		for u := range adj[v] {
			us = append(us, u)
		}
		for _, u := range us {
			delete(adj[u], v)
		}
		if len(us) == 2 {
			adj[us[0]][us[1]] = true
			adj[us[1]][us[0]] = true
		}
		for _, u := range us {
			if alive[u] && len(adj[u]) <= 2 {
				queue = append(queue, u)
			}
		}
	}
	return count
}

// Dim returns the system dimension.
func (p *Preconditioner) Dim() int { return p.n }

// Apply computes dst = B⁺·r: forward elimination of the recorded ops, a
// dense core solve, and back-substitution, followed by per-component
// de-meaning so the result matches the pseudo-inverse on range(B).
func (p *Preconditioner) Apply(dst, r []float64) {
	copy(p.work, r)
	for _, op := range p.ops {
		switch op.kind {
		case opDeg1:
			p.work[op.u1] += p.work[op.v]
		case opDeg2:
			s := p.work[op.v] / (op.w1 + op.w2)
			p.work[op.u1] += op.w1 * s
			p.work[op.u2] += op.w2 * s
		}
	}
	if p.pin != nil {
		for i, v := range p.core {
			p.coreRHS[i] = p.work[v]
		}
		p.pin.Solve(p.coreSol, p.coreRHS)
		for i, v := range p.core {
			dst[v] = p.coreSol[i]
		}
	}
	for i := len(p.ops) - 1; i >= 0; i-- {
		op := p.ops[i]
		switch op.kind {
		case opDeg0:
			dst[op.v] = 0
		case opDeg1:
			dst[op.v] = dst[op.u1] + p.work[op.v]/op.w1
		case opDeg2:
			dst[op.v] = (p.work[op.v] + op.w1*dst[op.u1] + op.w2*dst[op.u2]) / (op.w1 + op.w2)
		}
	}
	for c := range p.compSum {
		p.compSum[c] = 0
	}
	for v := 0; v < p.n; v++ {
		p.compSum[p.comp[v]] += dst[v]
	}
	for v := 0; v < p.n; v++ {
		dst[v] -= p.compSum[p.comp[v]] / float64(p.compSize[p.comp[v]])
	}
}
