package mst

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/graph"
)

func randomConnected(rng *rand.Rand, n, extra int) *graph.Graph {
	var es []graph.Edge
	for v := 1; v < n; v++ {
		es = append(es, graph.Edge{U: rng.Intn(v), V: v, W: 0.5 + rng.Float64()*9})
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			es = append(es, graph.Edge{U: u, V: v, W: 0.5 + rng.Float64()*9})
		}
	}
	return graph.MustFromEdges(n, es)
}

func TestAllAlgorithmsAgreeOnWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 25; it++ {
		g := randomConnected(rng, 3+rng.Intn(60), rng.Intn(120))
		for _, obj := range []Objective{Min, Max} {
			wk := TotalWeight(Kruskal(g, obj))
			wp := TotalWeight(Prim(g, obj))
			wb := TotalWeight(Boruvka(g, obj, false))
			wbp := TotalWeight(Boruvka(g, obj, true))
			if math.Abs(wk-wp) > 1e-9 || math.Abs(wk-wb) > 1e-9 || math.Abs(wk-wbp) > 1e-9 {
				t.Fatalf("obj=%d weights differ: kruskal=%v prim=%v boruvka=%v parallel=%v",
					obj, wk, wp, wb, wbp)
			}
		}
	}
}

func TestResultIsSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for it := 0; it < 15; it++ {
		n := 2 + rng.Intn(50)
		g := randomConnected(rng, n, rng.Intn(80))
		for name, edges := range map[string][]graph.Edge{
			"kruskal":      Kruskal(g, Max),
			"prim":         Prim(g, Max),
			"boruvka":      Boruvka(g, Max, false),
			"boruvka(par)": Boruvka(g, Max, true),
		} {
			if len(edges) != n-1 {
				t.Fatalf("%s: %d edges for n=%d", name, len(edges), n)
			}
			f := ForestGraph(n, edges)
			if !f.IsTree() {
				t.Fatalf("%s: result is not a spanning tree", name)
			}
		}
	}
}

func TestSpanningForestOnDisconnected(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 2},
		{U: 3, V: 4, W: 5}, {U: 4, V: 5, W: 4}, {U: 3, V: 5, W: 6},
	})
	for name, edges := range map[string][]graph.Edge{
		"kruskal": Kruskal(g, Max),
		"prim":    Prim(g, Max),
		"boruvka": Boruvka(g, Max, false),
	} {
		if len(edges) != 4 {
			t.Fatalf("%s: %d edges, want 4 (two trees)", name, len(edges))
		}
		want := 3.0 + 2 + 5 + 6
		if got := TotalWeight(edges); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: weight %v, want %v", name, got, want)
		}
	}
}

func TestKnownMST(t *testing.T) {
	// Square with diagonal: MaxST must pick the three heaviest acyclic edges.
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3},
		{U: 3, V: 0, W: 4}, {U: 0, V: 2, W: 5},
	})
	// Max ST: take 5 (0-2) and 4 (3-0); 3 (2-3) would close the cycle
	// 0-2-3-0, so the next edge is 2 (1-2): total 11.
	if w := TotalWeight(Kruskal(g, Max)); math.Abs(w-11) > 1e-12 {
		t.Errorf("max ST weight = %v, want 11", w)
	}
	if w := TotalWeight(Kruskal(g, Min)); math.Abs(w-6) > 1e-12 { // 1+2+3
		t.Errorf("min ST weight = %v, want 6", w)
	}
}

func TestMaxSpanningTreeIsOptimal(t *testing.T) {
	// Brute-force check on tiny graphs: no spanning tree is heavier.
	rng := rand.New(rand.NewSource(3))
	for it := 0; it < 10; it++ {
		n := 5
		g := randomConnected(rng, n, 4)
		best := TotalWeight(Kruskal(g, Max))
		es := g.Edges()
		m := len(es)
		// Enumerate all edge subsets of size n−1 that form a tree.
		var rec func(start int, chosen []graph.Edge)
		heaviest := 0.0
		rec = func(start int, chosen []graph.Edge) {
			if len(chosen) == n-1 {
				f := ForestGraph(n, chosen)
				if f.IsTree() {
					if w := TotalWeight(chosen); w > heaviest {
						heaviest = w
					}
				}
				return
			}
			for i := start; i < m; i++ {
				rec(i+1, append(chosen, es[i]))
			}
		}
		rec(0, nil)
		if math.Abs(best-heaviest) > 1e-9 {
			t.Fatalf("kruskal max %v but brute force found %v", best, heaviest)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := graph.MustFromEdges(0, nil)
	single := graph.MustFromEdges(1, nil)
	for _, g := range []*graph.Graph{empty, single} {
		if len(Kruskal(g, Max)) != 0 || len(Prim(g, Max)) != 0 || len(Boruvka(g, Max, false)) != 0 {
			t.Error("trivial graphs should yield empty forests")
		}
	}
}

func BenchmarkKruskalGrid(b *testing.B) { benchMST(b, func(g *graph.Graph) { Kruskal(g, Max) }) }
func BenchmarkPrimGrid(b *testing.B)    { benchMST(b, func(g *graph.Graph) { Prim(g, Max) }) }
func BenchmarkBoruvkaGrid(b *testing.B) { benchMST(b, func(g *graph.Graph) { Boruvka(g, Max, false) }) }
func BenchmarkBoruvkaParGrid(b *testing.B) {
	benchMST(b, func(g *graph.Graph) { Boruvka(g, Max, true) })
}

func benchMST(b *testing.B, run func(*graph.Graph)) {
	rng := rand.New(rand.NewSource(4))
	side := 60 // 3600-vertex weighted grid
	var es []graph.Edge
	id := func(i, j int) int { return i*side + j }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if i+1 < side {
				es = append(es, graph.Edge{U: id(i, j), V: id(i+1, j), W: 0.5 + rng.Float64()})
			}
			if j+1 < side {
				es = append(es, graph.Edge{U: id(i, j), V: id(i, j+1), W: 0.5 + rng.Float64()})
			}
		}
	}
	g := graph.MustFromEdges(side*side, es)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(g)
	}
}
