// Package mst computes maximum- and minimum-weight spanning forests. The
// maximum-weight spanning tree is the classical base of subgraph
// preconditioners (Vaidya/Joshi) and the timing baseline of the paper's
// Remark 1; Borůvka additionally ships a multi-core variant to mirror the
// paper's parallel construction claims.
package mst

import (
	"context"
	"fmt"
	"sort"

	"hcd/internal/graph"
	"hcd/internal/par"
)

// cancelled wraps the context's error for the build pipeline, which promotes
// it to its ErrBuildCancelled sentinel; errors.Is(err, context.Canceled)
// holds either way.
func cancelled(ctx context.Context) error {
	return fmt.Errorf("mst: cancelled: %w", ctx.Err())
}

// Objective selects between minimum- and maximum-weight spanning forests.
type Objective int

const (
	Min Objective = iota
	Max
)

// unionFind is a standard disjoint-set forest with path halving and union by
// size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// Kruskal returns the edges of a spanning forest optimizing obj by sorting
// all edges and greedily joining components.
func Kruskal(g *graph.Graph, obj Objective) []graph.Edge {
	out, _ := KruskalCtx(context.Background(), g, obj)
	return out
}

// KruskalCtx is Kruskal under a context: the greedy union loop polls
// cancellation at bounded intervals (the initial edge sort runs to
// completion first). Results are identical to Kruskal.
func KruskalCtx(ctx context.Context, g *graph.Graph, obj Objective) ([]graph.Edge, error) {
	es := g.Edges()
	if obj == Min {
		sort.Slice(es, func(i, j int) bool { return es[i].W < es[j].W })
	} else {
		sort.Slice(es, func(i, j int) bool { return es[i].W > es[j].W })
	}
	uf := newUnionFind(g.N())
	out := make([]graph.Edge, 0, max(g.N()-1, 0))
	for i, e := range es {
		if i&4095 == 0 && ctx.Err() != nil {
			return nil, cancelled(ctx)
		}
		if uf.union(e.U, e.V) {
			out = append(out, e)
			if len(out) == g.N()-1 {
				break
			}
		}
	}
	return out, nil
}

// Prim returns the edges of a spanning forest optimizing obj using a binary
// heap over candidate edges, restarted once per component.
func Prim(g *graph.Graph, obj Objective) []graph.Edge {
	n := g.N()
	inTree := make([]bool, n)
	out := make([]graph.Edge, 0, max(n-1, 0))
	h := &edgeHeap{obj: obj}
	for s := 0; s < n; s++ {
		if inTree[s] {
			continue
		}
		inTree[s] = true
		pushNeighbors(g, h, s)
		for h.Len() > 0 {
			e := h.pop()
			if inTree[e.V] {
				continue
			}
			inTree[e.V] = true
			out = append(out, e)
			pushNeighbors(g, h, e.V)
		}
	}
	return out
}

func pushNeighbors(g *graph.Graph, h *edgeHeap, v int) {
	nbr, w := g.Neighbors(v)
	for i, u := range nbr {
		h.push(graph.Edge{U: v, V: u, W: w[i]})
	}
}

// edgeHeap is a hand-rolled binary heap keyed by weight (direction depends
// on the objective); avoiding container/heap interface indirection keeps the
// baseline honest for the Remark 1 timing comparison.
type edgeHeap struct {
	es  []graph.Edge
	obj Objective
}

func (h *edgeHeap) Len() int { return len(h.es) }

func (h *edgeHeap) before(a, b graph.Edge) bool {
	if h.obj == Min {
		return a.W < b.W
	}
	return a.W > b.W
}

func (h *edgeHeap) push(e graph.Edge) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(h.es[i], h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *edgeHeap) pop() graph.Edge {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.before(h.es[l], h.es[best]) {
			best = l
		}
		if r < last && h.before(h.es[r], h.es[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.es[i], h.es[best] = h.es[best], h.es[i]
		i = best
	}
	return top
}

// Boruvka returns the edges of a spanning forest optimizing obj. Each round
// every component selects its best incident edge and components merge; the
// number of rounds is O(log n). When parallel is true the per-vertex best
// edge scan and per-component reduction run across cores.
func Boruvka(g *graph.Graph, obj Objective, parallel bool) []graph.Edge {
	out, _ := BoruvkaCtx(context.Background(), g, obj, parallel)
	return out
}

// BoruvkaCtx is Boruvka under a context, polling cancellation once per
// merge round (each round is one O(m) scan, so the check interval is
// bounded by a single pass over the graph). Results are identical to
// Boruvka.
func BoruvkaCtx(ctx context.Context, g *graph.Graph, obj Objective, parallel bool) ([]graph.Edge, error) {
	n := g.N()
	uf := newUnionFind(n)
	var out []graph.Edge
	type cand struct {
		w    float64
		u, v int
		ok   bool
	}
	better := func(a, b cand) bool {
		if !b.ok {
			return true
		}
		if obj == Min {
			if a.w != b.w {
				return a.w < b.w
			}
		} else {
			if a.w != b.w {
				return a.w > b.w
			}
		}
		// Deterministic tie-break so parallel and sequential agree.
		if a.u != b.u {
			return a.u < b.u
		}
		return a.v < b.v
	}
	vertexBest := make([]cand, n)
	comp := make([]int, n)
	for {
		if ctx.Err() != nil {
			return nil, cancelled(ctx)
		}
		// Snapshot component labels so the parallel scan is read-only (find
		// performs path halving and must not race).
		for v := 0; v < n; v++ {
			comp[v] = uf.find(v)
		}
		// Per-vertex best incident cross-component edge.
		scan := func(lo, hi int) {
			for v := lo; v < hi; v++ {
				vertexBest[v] = cand{}
				rv := comp[v]
				nbr, w := g.Neighbors(v)
				for i, u := range nbr {
					if comp[u] == rv {
						continue
					}
					c := cand{w: w[i], u: v, v: u, ok: true}
					if c.u > c.v {
						c.u, c.v = c.v, c.u
					}
					if better(c, vertexBest[v]) {
						vertexBest[v] = c
					}
				}
			}
		}
		if parallel {
			par.For(n, 2048, scan)
		} else {
			scan(0, n)
		}
		// Reduce per-vertex candidates into per-component winners.
		compBest := make(map[int]cand)
		for v := 0; v < n; v++ {
			if !vertexBest[v].ok {
				continue
			}
			r := comp[v]
			if cur, ok := compBest[r]; !ok || better(vertexBest[v], cur) {
				compBest[r] = vertexBest[v]
			}
		}
		if len(compBest) == 0 {
			break
		}
		merged := false
		for _, c := range compBest {
			if uf.union(c.u, c.v) {
				out = append(out, graph.Edge{U: c.u, V: c.v, W: c.w})
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	return out, nil
}

// ForestGraph rebuilds a graph from forest edges over n vertices.
func ForestGraph(n int, edges []graph.Edge) *graph.Graph {
	return graph.MustFromEdges(n, edges)
}

// TotalWeight sums the weights of a set of edges.
func TotalWeight(edges []graph.Edge) float64 {
	t := 0.0
	for _, e := range edges {
		t += e.W
	}
	return t
}
