// Package cli holds the shared plumbing of the hcd command-line tools:
// generator specs, right-hand-side construction, and table formatting.
package cli

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"hcd/internal/gio"
	"hcd/internal/graph"
	"hcd/internal/par"
	"hcd/internal/treealg"
	"hcd/internal/workload"
)

// BuildGraph constructs a workload graph from a spec string:
//
//	grid2d:SIDE      2D grid, lognormal(σ=1) weights
//	grid3d:SIDE      3D grid, lognormal(σ=1) weights
//	mesh:SIDE        planar triangulated grid
//	oct:SIDE         synthetic OCT volume (side×side×side)
//	tree:N           uniform random tree
//	regular:N,D      random D-regular graph
//	unit2d:SIDE      2D grid, unit weights
//	road:SIDE        planar road network with district bottlenecks
//	femesh:SIDE      graded, jittered FE triangulation, 1/length weights
//	plaw:N,M         preferential-attachment power-law graph
//	file:PATH        edge-list file ("u v w" lines)
//	mm:PATH          MatrixMarket coordinate file
//
// seed controls all randomness (ignored for file inputs).
func BuildGraph(spec string, seed int64) (*graph.Graph, error) {
	kind, arg, found := strings.Cut(spec, ":")
	if !found {
		return nil, fmt.Errorf("cli: graph spec %q must be kind:size", spec)
	}
	switch kind {
	case "file", "mm":
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		format := gio.FormatEdgeList
		if kind == "mm" {
			format = gio.FormatMatrixMarket
		}
		return gio.Read(f, format)
	}
	var a, b int
	switch kind {
	case "regular", "plaw":
		if _, err := fmt.Sscanf(arg, "%d,%d", &a, &b); err != nil {
			return nil, fmt.Errorf("cli: %s spec needs N,M: %w", kind, err)
		}
	default:
		if _, err := fmt.Sscanf(arg, "%d", &a); err != nil {
			return nil, fmt.Errorf("cli: bad size in %q: %w", spec, err)
		}
	}
	if a < 1 {
		return nil, fmt.Errorf("cli: size must be positive in %q", spec)
	}
	switch kind {
	case "grid2d":
		return workload.Grid2D(a, a, workload.Lognormal(1), seed), nil
	case "grid3d":
		return workload.Grid3D(a, a, a, workload.Lognormal(1), seed), nil
	case "mesh":
		return workload.GridDiag2D(a, a, workload.Lognormal(1), seed), nil
	case "oct":
		opt := workload.DefaultOCTOptions()
		opt.Seed = seed
		return workload.OCT3D(a, a, a, opt), nil
	case "tree":
		rng := rand.New(rand.NewSource(seed))
		return treealg.RandomTree(rng, a, func() float64 { return 0.1 + rng.Float64()*10 }), nil
	case "regular":
		return workload.RandomRegular(a, b, workload.UniformWeight(0.5, 5), seed)
	case "plaw":
		return workload.PowerLaw(a, b, workload.UniformWeight(0.5, 5), seed)
	case "unit2d":
		return workload.Grid2D(a, a, nil, seed), nil
	case "road":
		// District side scales with the map: bigger maps get more districts
		// of a fixed-ish size rather than bigger districts.
		district := a / 4
		if district < 2 {
			district = 2
		}
		if district > 16 {
			district = 16
		}
		return workload.RoadNetwork(a, a, district, workload.Lognormal(0.5), seed)
	case "femesh":
		return workload.FEMesh(a, a, -1, nil, seed)
	default:
		return nil, fmt.Errorf("cli: unknown graph kind %q", kind)
	}
}

// MeanFreeRHS returns a deterministic Gaussian right-hand side orthogonal to
// the constant vector.
func MeanFreeRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

// Table accumulates aligned rows for terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Main runs the body of a command and guarantees a clean exit: a returned
// error prints to stderr and exits 1, and an escaped panic — from a corrupted
// input driving library code somewhere off its tested paths — is recovered
// and reported the same way instead of crashing with a raw goroutine dump.
// Commands keep their logic in a plain run() error and call cli.Main(run).
func Main(run func() error) {
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("internal error: %w", par.AsError(v))
			}
		}()
		return run()
	}()
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}
