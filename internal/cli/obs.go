package cli

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

// Obs bundles the observability flags every hcd command shares:
//
//	-trace FILE    record a hierarchical span trace of the run and write it
//	               as Chrome trace_event JSON (chrome://tracing, Perfetto)
//	-listen ADDR   serve /metrics (Prometheus text), /metrics.json,
//	               /debug/vars (expvar) and /debug/pprof/* on ADDR for the
//	               duration of the run
//
// Commands call ObsFlags() before flag.Parse, Start to install the
// instruments into their root context, and defer Close to flush the trace
// and stop the server. With neither flag set, all three are no-ops and the
// returned context is untouched — the library's disabled fast path.
type Obs struct {
	TracePath string
	Listen    string

	Tracer   *obs.Tracer
	Registry *obs.Registry
	server   *http.Server
}

// ObsFlags registers -trace and -listen on the default flag set and returns
// the handle the command later Starts and Closes.
func ObsFlags() *Obs {
	o := &Obs{}
	flag.StringVar(&o.TracePath, "trace", "", "write a Chrome trace-event JSON span trace to this file")
	flag.StringVar(&o.Listen, "listen", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof/* on this address (e.g. :6060)")
	return o
}

// Start installs the instruments the parsed flags ask for into ctx and
// returns the instrumented context. A -trace flag creates the Tracer (and a
// Registry, so the trace run also aggregates metrics) and hooks fault
// injections into the trace as instant events; a -listen flag creates the
// Registry and starts the diagnostics server, printing the bound address —
// ":0" picks a free port.
func (o *Obs) Start(ctx context.Context) (context.Context, error) {
	if o.TracePath != "" {
		o.Tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, o.Tracer)
		tr := o.Tracer
		faultinject.SetObserver(func(point string) { tr.Instant("fault/" + point) })
	}
	if o.TracePath != "" || o.Listen != "" {
		o.Registry = obs.NewRegistry()
		ctx = obs.WithRegistry(ctx, o.Registry)
	}
	if o.Listen != "" {
		srv, err := obs.Serve(o.Listen, o.Registry)
		if err != nil {
			return ctx, fmt.Errorf("cli: -listen %s: %w", o.Listen, err)
		}
		o.server = srv
		fmt.Fprintf(os.Stderr, "serving diagnostics on http://%s/metrics\n", srv.Addr)
	}
	return ctx, nil
}

// EnsureRegistry installs a metric registry into ctx even when no flag asked
// for one — commands with their own -metrics flag call it so the registry
// aggregates regardless of -trace/-listen. Idempotent: an existing registry
// is kept.
func (o *Obs) EnsureRegistry(ctx context.Context) context.Context {
	if o.Registry != nil {
		return ctx
	}
	o.Registry = obs.NewRegistry()
	return obs.WithRegistry(ctx, o.Registry)
}

// Close flushes the trace file, verifies the span tree closed cleanly
// (a malformed tree is a warning, not a failure — the partial trace is still
// written), detaches the fault-injection observer, and stops the server.
func (o *Obs) Close() error {
	faultinject.SetObserver(nil)
	if o.server != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = o.server.Shutdown(sctx)
		cancel()
		o.server = nil
	}
	if o.Tracer == nil || o.TracePath == "" {
		return nil
	}
	if err := o.Tracer.Check(); err != nil {
		fmt.Fprintf(os.Stderr, "warning: span trace is not well-formed: %v\n", err)
	}
	f, err := os.Create(o.TracePath)
	if err != nil {
		return fmt.Errorf("cli: -trace: %w", err)
	}
	werr := o.Tracer.WriteChromeTrace(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("cli: -trace %s: %w", o.TracePath, werr)
	}
	if cerr != nil {
		return fmt.Errorf("cli: -trace %s: %w", o.TracePath, cerr)
	}
	fmt.Fprintf(os.Stderr, "wrote trace to %s (%d spans)\n", o.TracePath, len(o.Tracer.Spans()))
	return nil
}
