package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildGraphSpecs(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"grid2d:5", 25},
		{"grid3d:3", 27},
		{"mesh:4", 16},
		{"oct:3", 27},
		{"tree:40", 40},
		{"regular:20,4", 20},
		{"unit2d:4", 16},
		{"road:16", 256},
		{"femesh:6", 36},
		{"plaw:50,3", 50},
	}
	for _, c := range cases {
		g, err := BuildGraph(c.spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if g.N() != c.n {
			t.Errorf("%s: n=%d, want %d", c.spec, g.N(), c.n)
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	for _, spec := range []string{
		"grid2d", "nope:5", "grid2d:x", "grid2d:0", "regular:5", "regular:5,3",
		"plaw:5", "plaw:5,0", "femesh:1",
		"file:/nonexistent/path.el",
	} {
		if _, err := BuildGraph(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestBuildGraphFromFiles(t *testing.T) {
	dir := t.TempDir()
	el := filepath.Join(dir, "g.el")
	if err := os.WriteFile(el, []byte("n 4\n0 1 2\n1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph("file:"+el, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Errorf("file graph N=%d M=%d", g.N(), g.M())
	}
	mm := filepath.Join(dir, "g.mtx")
	content := "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 -1.5\n3 2 -2\n"
	if err := os.WriteFile(mm, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = BuildGraph("mm:"+mm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("mm graph N=%d M=%d", g.N(), g.M())
	}
}

func TestMeanFreeRHS(t *testing.T) {
	b := MeanFreeRHS(100, 3)
	s := 0.0
	for _, v := range b {
		s += v
	}
	if s > 1e-10 || s < -1e-10 {
		t.Errorf("mean %v", s)
	}
	b2 := MeanFreeRHS(100, 3)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("alpha", 1.5)
	tab.Row("b", 100)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[2], "alpha") {
		t.Errorf("table malformed:\n%s", out)
	}
	// Columns aligned: header and separator equal width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator misaligned:\n%s", out)
	}
}
