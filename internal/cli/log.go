package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
)

// Log bundles the structured-logging flags of the serving commands:
//
//	-log-json      emit one JSON access-log record per request on stdout
//	-log-level L   minimum record level: debug | info | warn | error
//
// Commands call LogFlags() before flag.Parse and Logger() after. With
// neither flag set, Logger returns nil and the serve layer's zero-alloc
// disabled path stays engaged.
type Log struct {
	JSON  bool
	Level string
}

// LogFlags registers -log-json and -log-level on the default flag set.
func LogFlags() *Log {
	l := &Log{}
	flag.BoolVar(&l.JSON, "log-json", false, "write structured JSON access logs to stdout")
	flag.StringVar(&l.Level, "log-level", "", "minimum log level: debug | info | warn | error (setting it enables text logs unless -log-json)")
	return l
}

// Logger materializes the parsed flags into a *slog.Logger writing to w
// (commands pass os.Stdout), or nil when logging was not requested.
func (l *Log) Logger(w io.Writer) (*slog.Logger, error) {
	if !l.JSON && l.Level == "" {
		return nil, nil
	}
	level := slog.LevelInfo
	switch l.Level {
	case "", "info":
	case "debug":
		level = slog.LevelDebug
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("cli: -log-level %q: want debug, info, warn or error", l.Level)
	}
	if w == nil {
		w = os.Stdout
	}
	opts := &slog.HandlerOptions{Level: level}
	if l.JSON {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}
