package benchfmt

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := ParseBenchLine("BenchmarkEvaluate-8   \t       3\t 412345678 ns/op\t 1234 B/op\t  56 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkEvaluate-8" || r.BaseName() != "BenchmarkEvaluate" || r.Procs != 8 {
		t.Errorf("name decode: %+v", r)
	}
	if r.Iterations != 3 || r.NsPerOp != 412345678 || r.BytesPerOp != 1234 || r.AllocsPerOp != 56 {
		t.Errorf("metric decode: %+v", r)
	}

	r, ok = ParseBenchLine("BenchmarkBlockSolve-4   10   9999 ns/op   128.5 rhs/sec")
	if !ok || r.Metrics["rhs/sec"] != 128.5 {
		t.Errorf("custom metric decode: %+v ok=%v", r, ok)
	}

	for _, line := range []string{
		"ok  \thcd\t1.2s",
		"goos: linux",
		"PASS",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkNoNs-8 10 5 B/op",
	} {
		if _, ok := ParseBenchLine(line); ok {
			t.Errorf("non-result line accepted: %q", line)
		}
	}
}

func TestRecordRoundTripAndStamp(t *testing.T) {
	rec := NewRecord("evaluate", "ci")
	rec.Benchmarks = []Result{{Name: "BenchmarkX-2", Iterations: 10, NsPerOp: 100}}
	if rec.Date == "" || rec.GoVersion == "" || rec.NumCPU <= 0 {
		t.Fatalf("environment stamp missing: %+v", rec)
	}
	// This test runs inside the repo checkout, so the commit stamp resolves.
	if len(rec.Commit) < 7 {
		t.Errorf("commit stamp %q, want a git hash", rec.Commit)
	}
	buf, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(buf), "\n") {
		t.Error("marshal without trailing newline")
	}
	back, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Commit != rec.Commit || len(back.Tags) != 2 || len(back.Benchmarks) != 1 {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Error("bad record accepted")
	}
}

func withReplay(score float64) Record {
	rec := Record{}
	raw, _ := json.Marshal(map[string]any{"score": score, "scenario": "steady"})
	rec.Replay = raw
	return rec
}

func TestReplayScore(t *testing.T) {
	if s, ok := withReplay(87.5).ReplayScore(); !ok || s != 87.5 {
		t.Fatalf("score %v ok=%v", s, ok)
	}
	if _, ok := (Record{}).ReplayScore(); ok {
		t.Fatal("score extracted from a record without a replay section")
	}
}

// TestDiffInjectedRegression is the gate's core acceptance test: a synthetic
// slowdown past the threshold is flagged, one inside the threshold is not.
func TestDiffInjectedRegression(t *testing.T) {
	old := Record{Benchmarks: []Result{
		{Name: "BenchmarkEvaluate-8", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "BenchmarkSolve-8", NsPerOp: 2000, AllocsPerOp: 10},
		{Name: "BenchmarkRetired-8", NsPerOp: 5},
	}}
	fresh := Record{Benchmarks: []Result{
		// 2x slowdown: regression.
		{Name: "BenchmarkEvaluate-4", NsPerOp: 2000, AllocsPerOp: 0},
		// +10% at a 30% threshold: fine. Allocs 10 -> 11 at 30%: fine.
		{Name: "BenchmarkSolve-4", NsPerOp: 2200, AllocsPerOp: 11},
		// New benchmark with no baseline: ignored.
		{Name: "BenchmarkNew-4", NsPerOp: 1},
	}}
	regs := Diff(old, fresh, Thresholds{})
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %+v", regs)
	}
	if regs[0].Name != "BenchmarkEvaluate" || regs[0].Metric != "ns/op" {
		t.Errorf("wrong regression flagged: %+v", regs[0])
	}
	if regs[0].String() == "" {
		t.Error("empty regression rendering")
	}

	// A clean run gates green.
	if regs := Diff(old, old, Thresholds{}); len(regs) != 0 {
		t.Errorf("identical records regressed: %+v", regs)
	}
}

// TestDiffZeroAllocInvariant: a baseline of 0 allocs/op is an invariant —
// any increase is flagged regardless of the percentage threshold.
func TestDiffZeroAllocInvariant(t *testing.T) {
	old := Record{Benchmarks: []Result{{Name: "BenchmarkHot-8", NsPerOp: 100, AllocsPerOp: 0}}}
	fresh := Record{Benchmarks: []Result{{Name: "BenchmarkHot-8", NsPerOp: 100, AllocsPerOp: 1}}}
	regs := Diff(old, fresh, Thresholds{MaxRegress: 10})
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("zero-alloc break not flagged: %+v", regs)
	}
}

// TestDiffReplayScore: the deterministic replay score gates on absolute
// drops past ScoreDrop.
func TestDiffReplayScore(t *testing.T) {
	if regs := Diff(withReplay(90), withReplay(80), Thresholds{ScoreDrop: 5}); len(regs) != 1 {
		t.Fatalf("10-point drop at 5-point threshold not flagged: %+v", regs)
	} else if regs[0].Metric != "replay_score" || regs[0].Change != 10 {
		t.Errorf("wrong replay regression: %+v", regs[0])
	}
	if regs := Diff(withReplay(90), withReplay(88), Thresholds{ScoreDrop: 5}); len(regs) != 0 {
		t.Errorf("2-point drop at 5-point threshold flagged: %+v", regs)
	}
	// Improvement never regresses; missing sections never gate.
	if regs := Diff(withReplay(80), withReplay(95), Thresholds{}); len(regs) != 0 {
		t.Errorf("improvement flagged: %+v", regs)
	}
	if regs := Diff(Record{}, withReplay(0), Thresholds{}); len(regs) != 0 {
		t.Errorf("missing baseline section gated: %+v", regs)
	}
}
