// Package benchfmt is the shared format layer of the performance tooling:
// the JSON record committed as BENCH_*.json, the `go test -bench` line
// parser behind hcd-benchjson, and the regression differ behind
// hcd-benchdiff. Keeping it in one package means the writer and the gate
// can never drift apart on field names.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line in the emitted JSON.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Procs is the GOMAXPROCS the benchmark ran at, decoded from the "-N"
	// suffix go test appends to the name (0 when the name carries none).
	Procs int `json:"procs,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "rhs/sec" from the
	// block-solve benchmark) keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BaseName strips the "-N" GOMAXPROCS suffix, the key the differ matches
// benchmarks on — a record taken at -cpu 8 still gates a run at -cpu 4.
func (r Result) BaseName() string {
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil && p > 0 {
			return r.Name[:i]
		}
	}
	return r.Name
}

// Record is the top-level committed JSON document.
type Record struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Commit is the git commit hash of the tree the record was taken from
	// (empty outside a git checkout).
	Commit string `json:"commit,omitempty"`
	// Tags label the record ("evaluate", "replay", "ci"...), so a directory
	// of BENCH files stays self-describing.
	Tags       []string `json:"tags,omitempty"`
	Benchmarks []Result `json:"benchmarks,omitempty"`
	// Replay carries a replay.Report verbatim when the record came from
	// cmd/hcd-replay. It stays raw here: benchfmt gates on the score without
	// importing the replay engine.
	Replay json.RawMessage `json:"replay,omitempty"`
}

// NewRecord stamps a record with the run environment: date, toolchain,
// host shape, git commit, and the caller's tags.
func NewRecord(tags ...string) Record {
	return Record{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     GitCommit(),
		Tags:       tags,
	}
}

// GitCommit returns the full commit hash of HEAD, or "" when the working
// directory is not a git checkout (or git is unavailable) — absence of
// provenance is not an error.
func GitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Marshal renders the record as the committed file format (indented,
// trailing newline).
func (rec Record) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Unmarshal decodes a committed record.
func Unmarshal(data []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("benchfmt: bad record: %w", err)
	}
	return rec, nil
}

// ReplayScore extracts the fitness score from a record's replay section.
// ok is false when the record carries no replay report.
func (rec Record) ReplayScore() (float64, bool) {
	if len(rec.Replay) == 0 {
		return 0, false
	}
	var rep struct {
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(rec.Replay, &rep); err != nil {
		return 0, false
	}
	return rep.Score, true
}

// ParseBenchLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkEvaluate-8   	       3	 412345678 ns/op	 1234 B/op	  56 allocs/op
//
// returning ok=false for anything that is not a benchmark result.
func ParseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, perr := strconv.Atoi(r.Name[i+1:]); perr == nil && p > 0 {
			r.Procs = p
		}
	}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
			seen = true
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		default:
			// Custom b.ReportMetric units ("rhs/sec", "MB/s", ...).
			if strings.ContainsRune(unit, '/') {
				if v, verr := strconv.ParseFloat(val, 64); verr == nil {
					if r.Metrics == nil {
						r.Metrics = make(map[string]float64)
					}
					r.Metrics[unit] = v
				}
			}
		}
	}
	return r, seen
}
