package benchfmt

import (
	"fmt"
	"sort"
)

// Thresholds tune the regression gate. Zero values take the noted defaults.
type Thresholds struct {
	// MaxRegress is the tolerated fractional ns/op increase before a
	// benchmark counts as regressed (default 0.30 — generous, because CI
	// machines are noisy; tighten locally).
	MaxRegress float64
	// MaxAllocRegress is the tolerated fractional allocs/op increase
	// (default: same as MaxRegress). Benchmarks whose baseline is zero
	// allocations regress on any increase — zero-alloc paths are an
	// invariant here, not a measurement.
	MaxAllocRegress float64
	// ScoreDrop is the tolerated absolute replay-score drop in points
	// (default 5).
	ScoreDrop float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.MaxRegress <= 0 {
		t.MaxRegress = 0.30
	}
	if t.MaxAllocRegress <= 0 {
		t.MaxAllocRegress = t.MaxRegress
	}
	if t.ScoreDrop <= 0 {
		t.ScoreDrop = 5
	}
	return t
}

// Regression is one gate violation.
type Regression struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"` // "ns/op", "allocs/op", "replay_score"
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Change is the fractional increase for per-op metrics and the absolute
	// drop for the replay score.
	Change float64 `json:"change"`
}

func (r Regression) String() string {
	if r.Metric == "replay_score" {
		return fmt.Sprintf("%s: %s %.4f -> %.4f (dropped %.4f)", r.Name, r.Metric, r.Old, r.New, r.Change)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (+%.1f%%)", r.Name, r.Metric, r.Old, r.New, r.Change*100)
}

// Diff gates a new record against a committed baseline and returns every
// violation, sorted by benchmark name. Benchmarks are matched on BaseName
// (the GOMAXPROCS suffix is stripped); entries present in only one record
// are ignored — adding or retiring a benchmark is not a regression. When
// both records carry replay reports, the fitness score gates too: the score
// is deterministic by construction, so a drop is a real behaviour change,
// not noise.
func Diff(old, new Record, th Thresholds) []Regression {
	th = th.withDefaults()
	base := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		base[r.BaseName()] = r
	}
	var regs []Regression
	for _, nr := range new.Benchmarks {
		or, ok := base[nr.BaseName()]
		if !ok {
			continue
		}
		if or.NsPerOp > 0 && nr.NsPerOp > or.NsPerOp*(1+th.MaxRegress) {
			regs = append(regs, Regression{
				Name: nr.BaseName(), Metric: "ns/op",
				Old: or.NsPerOp, New: nr.NsPerOp,
				Change: nr.NsPerOp/or.NsPerOp - 1,
			})
		}
		switch {
		case or.AllocsPerOp == 0 && nr.AllocsPerOp > 0:
			regs = append(regs, Regression{
				Name: nr.BaseName(), Metric: "allocs/op",
				Old: 0, New: float64(nr.AllocsPerOp), Change: float64(nr.AllocsPerOp),
			})
		case or.AllocsPerOp > 0 && float64(nr.AllocsPerOp) > float64(or.AllocsPerOp)*(1+th.MaxAllocRegress):
			regs = append(regs, Regression{
				Name: nr.BaseName(), Metric: "allocs/op",
				Old: float64(or.AllocsPerOp), New: float64(nr.AllocsPerOp),
				Change: float64(nr.AllocsPerOp)/float64(or.AllocsPerOp) - 1,
			})
		}
	}
	if oldScore, ok := old.ReplayScore(); ok {
		if newScore, ok2 := new.ReplayScore(); ok2 && oldScore-newScore > th.ScoreDrop {
			regs = append(regs, Regression{
				Name: "replay", Metric: "replay_score",
				Old: oldScore, New: newScore, Change: oldScore - newScore,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
