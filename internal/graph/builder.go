package graph

// Builder assembles a CSR graph from a stream of edges without ever holding
// one flat []Edge: edges land in fixed-size chunks, per-vertex degrees are
// counted as they arrive, and Finish fills the CSR arrays directly from the
// chunks and merges parallel edges per vertex. Compared to collecting a full
// edge list and calling NewFromEdges, this avoids both the append-growth
// overshoot (up to 2× the final size) and the global O(m log m) sort — the
// merge is a per-vertex stable sort over each adjacency run instead. The
// streaming readers in internal/gio feed this builder chunk by chunk so peak
// memory tracks the graph, not the input file.

import (
	"fmt"
	"math"
	"sort"
)

// MergePolicy says how Builder combines parallel (duplicate) edges.
type MergePolicy int

const (
	// MergeSum adds the weights of parallel edges — the edge-list and
	// NewFromEdges semantics.
	MergeSum MergePolicy = iota
	// MergeMax keeps the heaviest of parallel edges — the MatrixMarket
	// semantics, where the symmetric mirror of an explicitly stored entry
	// must not double the weight.
	MergeMax
)

// builderChunk is the number of edges buffered per chunk. Chunks are
// allocated at exactly this size, so the buffer never over-allocates the way
// a grown []Edge does.
const builderChunk = 1 << 16

// Builder accumulates a stream of edges for a graph with a fixed vertex
// count and produces the CSR form in one Finish call. It is not safe for
// concurrent use.
//
// The degree array grows lazily with the largest vertex id actually
// referenced, so a Builder declared for a huge n costs nothing until edges
// mentioning high ids arrive — the property the hardened input parsers rely
// on against hostile size declarations.
type Builder struct {
	n      int
	policy MergePolicy
	deg    []int // per-vertex half-edge count, pre-merge; grows with max id seen
	chunks [][]Edge
	count  int64
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int, policy MergePolicy) (*Builder, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d: %w", n, ErrBadDimension)
	}
	return &Builder{n: n, policy: policy}, nil
}

// N returns the declared vertex count.
func (b *Builder) N() int { return b.n }

// Count returns the number of edges added so far (before merging).
func (b *Builder) Count() int64 { return b.count }

// BufferedBytes returns the bytes currently held by the builder: buffered
// edge chunks plus the degree array. This is the figure the streaming
// readers report when an input exceeds its entry budget mid-stream.
func (b *Builder) BufferedBytes() int64 {
	edges := 0
	for _, c := range b.chunks {
		edges += cap(c)
	}
	return int64(24*edges + 8*len(b.deg))
}

// Add appends one undirected edge. It validates endpoints and weight with
// the same rules as NewFromEdges: in-range, no self-loops, weight strictly
// positive and finite.
func (b *Builder) Add(u, v int, w float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d): %w", u, v, b.n, ErrBadDimension)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	last := len(b.chunks) - 1
	if last < 0 || len(b.chunks[last]) == builderChunk {
		b.chunks = append(b.chunks, make([]Edge, 0, builderChunk))
		last++
	}
	b.chunks[last] = append(b.chunks[last], Edge{U: u, V: v, W: w})
	hi := u
	if v > hi {
		hi = v
	}
	for hi >= len(b.deg) {
		b.deg = append(b.deg, 0)
	}
	b.deg[u]++
	b.deg[v]++
	b.count++
	return nil
}

// Finish merges parallel edges and returns the CSR graph. The builder keeps
// no reference to the result and must not be reused afterwards.
//
// Parallel edges are merged per adjacency run with a stable sort by neighbor
// id, so duplicates combine in insertion order — both endpoints of a
// duplicated edge see the identical merged weight, and the resulting
// adjacency is neighbor-sorted exactly like NewFromEdges output.
func (b *Builder) Finish() (*Graph, error) {
	n := b.n
	g := &Graph{
		off: make([]int, n+1),
		adj: make([]int, 2*b.count),
		w:   make([]float64, 2*b.count),
		vol: make([]float64, n),
	}
	for v := 0; v < n; v++ {
		d := 0
		if v < len(b.deg) {
			d = b.deg[v]
		}
		g.off[v+1] = g.off[v] + d
	}
	fill := make([]int, n)
	copy(fill, g.off[:n])
	for _, c := range b.chunks {
		for _, e := range c {
			g.adj[fill[e.U]], g.w[fill[e.U]] = e.V, e.W
			fill[e.U]++
			g.adj[fill[e.V]], g.w[fill[e.V]] = e.U, e.W
			fill[e.V]++
		}
	}
	b.chunks = nil
	// Sort each adjacency run by neighbor id (stable, so parallel edges stay
	// in insertion order) and merge duplicates in place.
	out := 0
	for v := 0; v < n; v++ {
		lo, hi := g.off[v], g.off[v+1]
		run := adjRun{adj: g.adj[lo:hi], w: g.w[lo:hi]}
		if !sort.IsSorted(run) {
			sort.Stable(run)
		}
		g.off[v] = out
		for i := lo; i < hi; i++ {
			if out > g.off[v] && g.adj[out-1] == g.adj[i] {
				switch b.policy {
				case MergeSum:
					g.w[out-1] += g.w[i]
				case MergeMax:
					if g.w[i] > g.w[out-1] {
						g.w[out-1] = g.w[i]
					}
				}
				continue
			}
			g.adj[out], g.w[out] = g.adj[i], g.w[i]
			out++
		}
		for i := g.off[v]; i < out; i++ {
			g.vol[v] += g.w[i]
		}
	}
	g.off[n] = out
	if out < len(g.adj) {
		g.adj = g.adj[:out:out]
		g.w = g.w[:out:out]
	}
	return g, nil
}

// adjRun sorts one vertex's adjacency slice by neighbor id, keeping weights
// parallel.
type adjRun struct {
	adj []int
	w   []float64
}

func (r adjRun) Len() int           { return len(r.adj) }
func (r adjRun) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r adjRun) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}
