package graph

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func blockTestGraph(t *testing.T, n int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	// A ring for connectivity plus random chords: irregular degrees exercise
	// the per-row neighbor loop more honestly than a grid.
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{U: v, V: (v + 1) % n, W: 0.5 + rng.Float64()})
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: u, V: v, W: 0.1 + 2*rng.Float64()})
		}
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLapMulBlockMatchesColumns: the blocked matvec agrees with k independent
// scalar matvecs column by column (to rounding — the block path accumulates
// the neighbor sum and diagonal term separately).
func TestLapMulBlockMatchesColumns(t *testing.T) {
	g := blockTestGraph(t, 300, 1)
	n := g.N()
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 3, 7, 16} {
		x := make([]float64, n*k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		dst := make([]float64, n*k)
		g.LapMulBlock(dst, x, k)
		col := make([]float64, n)
		ref := make([]float64, n)
		for j := 0; j < k; j++ {
			for v := 0; v < n; v++ {
				col[v] = x[v*k+j]
			}
			g.LapMulSerial(ref, col)
			for v := 0; v < n; v++ {
				if d := math.Abs(dst[v*k+j] - ref[v]); d > 1e-10*(1+math.Abs(ref[v])) {
					t.Fatalf("k=%d col %d row %d: block %v vs scalar %v", k, j, v, dst[v*k+j], ref[v])
				}
			}
		}
	}
}

// TestLapMulBlockK1BitIdentical: width-1 blocks take the scalar LapMul path
// exactly.
func TestLapMulBlockK1BitIdentical(t *testing.T) {
	g := blockTestGraph(t, 500, 3)
	n := g.N()
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	want := make([]float64, n)
	g.LapMulBlock(got, x, 1)
	g.LapMul(want, x)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("row %d: %v != %v", v, got[v], want[v])
		}
	}
}

// TestLapMulBlockGOMAXPROCSInvariant: rows are independent, so the block
// matvec must be bit-identical at any worker count — including on graphs
// large enough to cross the parallel grain.
func TestLapMulBlockGOMAXPROCSInvariant(t *testing.T) {
	const k = 4
	g := blockTestGraph(t, 4096, 5)
	n := g.N()
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, n*k)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, n*k)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	g.LapMulBlock(ref, x, k)
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		dst := make([]float64, n*k)
		g.LapMulBlock(dst, x, k)
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("procs=%d entry %d: %v != %v", procs, i, dst[i], ref[i])
			}
		}
	}
}
