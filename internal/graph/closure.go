package graph

import "fmt"

// InducedSubgraph returns the subgraph induced by the vertex set s, together
// with the mapping from new vertex ids (0..len(s)−1) back to the originals.
// Duplicate or out-of-range entries in s return an error (a malformed
// cluster, not a programming invariant of this package).
func (g *Graph) InducedSubgraph(s []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(s))
	back := make([]int, len(s))
	for i, v := range s {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: InducedSubgraph vertex %d out of range [0,%d)", v, g.N())
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in InducedSubgraph", v)
		}
		idx[v] = i
		back[i] = v
	}
	var es []Edge
	for i, v := range s {
		nbr, w := g.Neighbors(v)
		for k, u := range nbr {
			if j, ok := idx[u]; ok && i < j {
				es = append(es, Edge{U: i, V: j, W: w[k]})
			}
		}
	}
	sub, err := NewFromEdges(len(s), es)
	if err != nil {
		return nil, nil, err
	}
	return sub, back, nil
}

// Closure returns the closure graph of cluster s: the induced subgraph on s
// plus one new degree-1 "stub" vertex for every edge leaving s, attached with
// that edge's weight. Cluster vertices keep ids 0..len(s)−1 (in the order of
// s); stubs follow. This is the graph G°ᵢ of the paper's Section 2, whose
// conductance defines a [φ, ρ] decomposition.
//
// Duplicate or out-of-range vertices in s describe a malformed cluster, not
// a package invariant: they return an error wrapping ErrInvalidInput.
func (g *Graph) Closure(s []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(s))
	back := make([]int, len(s))
	for i, v := range s {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: Closure vertex %d out of range [0,%d): %w", v, g.N(), ErrInvalidInput)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in Closure: %w", v, ErrInvalidInput)
		}
		idx[v] = i
		back[i] = v
	}
	var es []Edge
	next := len(s)
	for i, v := range s {
		nbr, w := g.Neighbors(v)
		for k, u := range nbr {
			if j, ok := idx[u]; ok {
				if i < j {
					es = append(es, Edge{U: i, V: j, W: w[k]})
				}
			} else {
				es = append(es, Edge{U: i, V: next, W: w[k]})
				next++
			}
		}
	}
	return MustFromEdges(next, es), back, nil
}

// Contract returns the quotient graph of g under the cluster assignment:
// assign[v] ∈ [0, m) names v's cluster, and the quotient has one vertex per
// cluster with w(ri, rj) = cap(Vi, Vj). Intra-cluster edges vanish. This is
// the graph Q of Definition 3.1 and algebraically equals RᵀAR off-diagonal.
func (g *Graph) Contract(assign []int, m int) *Graph {
	var es []Edge
	for u := 0; u < g.N(); u++ {
		nbr, w := g.Neighbors(u)
		cu := assign[u]
		for k, v := range nbr {
			if u < v && assign[v] != cu {
				es = append(es, Edge{U: cu, V: assign[v], W: w[k]})
			}
		}
	}
	return MustFromEdges(m, es)
}
