package graph

import (
	"math"
	"testing"
)

// FuzzExactConductance differentially fuzzes the three conductance
// computations: the stub-aware certifier (ExactConductance and
// Certifier.ClusterPhi) must agree bit-for-bit with the brute-force cut
// enumeration, and ConductanceUpperBound must dominate the exact value. The
// fuzzer decodes the input bytes into a small graph with small-integer edge
// weights, so every cut weight and volume is exactly representable and both
// enumerations evaluate identical candidate values — exact float64 equality
// is the correct oracle, not a tolerance.
func FuzzExactConductance(f *testing.F) {
	f.Add([]byte{6, 0, 1, 3, 1, 2, 5, 2, 3, 1, 3, 4, 2, 4, 5, 9})
	f.Add([]byte{3, 0, 1, 1, 1, 2, 1})
	f.Add([]byte{9, 0, 1, 15, 0, 2, 15, 0, 3, 1, 3, 4, 1, 4, 5, 2, 2, 6, 3, 6, 7, 3, 7, 8, 4})
	f.Add([]byte{2, 0, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		// Byte 0: vertex count in [2, 12]; triples (u, v, w) follow.
		n := 2 + int(data[0])%11
		var es []Edge
		for i := 1; i+2 < len(data); i += 3 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			es = append(es, Edge{U: u, V: v, W: float64(1 + int(data[i+2])%16)})
		}
		g, err := NewFromEdges(n, es)
		if err != nil {
			t.Fatalf("construction from valid edges failed: %v", err)
		}
		brute, err := g.ExactConductanceBruteForce()
		if err != nil {
			t.Fatal(err)
		}
		fast, err := g.ExactConductance()
		if err != nil {
			t.Fatal(err)
		}
		if fast != brute {
			t.Fatalf("stub-aware %v != brute force %v (n=%d core=%d edges=%v)",
				fast, brute, n, g.CoreSize(), g.Edges())
		}
		if bound := g.ConductanceUpperBound(); !math.IsInf(brute, 1) && bound < brute {
			t.Fatalf("upper bound %v < exact %v", bound, brute)
		}
		// Cluster-direct certification: certify the cluster made of the
		// first half of the vertices against the materialized closure.
		s := make([]int, 0, n/2)
		for v := 0; v < (n+1)/2; v++ {
			s = append(s, v)
		}
		clo, _, err := g.Closure(s)
		if err != nil {
			t.Fatal(err)
		}
		if clo.N() <= MaxExactConductance {
			want, err := clo.ExactConductanceBruteForce()
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewCertifier(g).ClusterPhi(s)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("ClusterPhi %v != closure brute force %v (cluster %v of %v)",
					got, want, s, g.Edges())
			}
		}
	})
}
