package graph

import "hcd/internal/par"

// Block (multi-vector) Laplacian matvec: dst = A·X where X packs k column
// vectors row-major — X[v*k+j] is column j's entry at vertex v. One CSR
// traversal serves all k columns: each row's neighbor indices and edge
// weights are loaded once and reused across the k columns, which is the
// memory-hierarchy win that makes block-PCG multi-RHS solves faster than k
// sequential matvecs. The row-major layout keeps the k values of one vertex
// contiguous, so the inner column loop is a unit-stride sweep the compiler
// can keep in registers (or vectorize) instead of k strided gathers.
//
// Rows are independent, so the traversal is row-chunked across cores exactly
// like LapMul, and the result is bit-identical at any GOMAXPROCS.

// blockRowGrain returns the per-chunk row count for width-k block sweeps:
// the scalar matvec grain scaled down by the block width so one chunk still
// touches roughly the same number of floats, floored to keep scheduling
// overhead bounded.
func blockRowGrain(k int) int {
	g := 8192 / k
	if g < 256 {
		g = 256
	}
	return g
}

// LapMulBlock computes dst = A·X for the row-major [n][k] block X, where A
// is the Laplacian of g: dst[v*k+j] = Σ_u w(v,u)·(X[v*k+j] − X[u*k+j]).
// dst and x must have length N()·k. For k = 1 it is LapMul with the same
// serial short-circuit behavior.
func (g *Graph) LapMulBlock(dst, x []float64, k int) {
	g.lapMulBlockDispatch(dst, nil, x, k)
}

// LapMulBlockResidual computes dst = R − A·X in one CSR traversal — the
// fused form of LapMulBlock followed by an elementwise subtraction, saving a
// full read+write pass over the block. Per column the matvec value is
// completed first and then subtracted from r, exactly the two-step operation
// order, so the result is bit-identical to the unfused sequence.
func (g *Graph) LapMulBlockResidual(dst, r, x []float64, k int) {
	if k == 1 {
		g.LapMul(dst, x)
		for v := range dst {
			dst[v] = r[v] - dst[v]
		}
		return
	}
	g.lapMulBlockDispatch(dst, r, x, k)
}

// lapMulBlockDispatch runs the (possibly fused-residual: r non-nil) block
// matvec with the shared serial short-circuit and row-chunked parallel path.
func (g *Graph) lapMulBlockDispatch(dst, r, x []float64, k int) {
	if k == 1 && r == nil {
		g.LapMul(dst, x)
		return
	}
	n := g.N()
	grain := blockRowGrain(k)
	if n <= grain || par.Workers() == 1 {
		g.lapMulBlockRange(dst, r, x, k, 0, n)
		return
	}
	par.For(n, grain, func(lo, hi int) {
		g.lapMulBlockRange(dst, r, x, k, lo, hi)
	})
}

// lapMulBlockRange computes rows [lo, hi) of dst = A·X — or dst = R − A·X
// when r is non-nil — in fixed-width column tiles: 8-wide, then 4-wide, then
// a 1–3 column tail. Each tile keeps its accumulators in locals, so the
// neighbor loop runs register-to-register — a slice accumulator into dst
// would force a store/reload per neighbor because the compiler cannot prove
// dst and x do not alias. A tile re-reads the row's neighbor indices and
// weights, but those are L1-resident after the first pass; per column the
// operation order (ascending neighbors, then wsum·xv − acc, then the
// optional subtraction from r) is identical across tile widths, so results
// match the untiled form bit for bit.
func (g *Graph) lapMulBlockRange(dst, r, x []float64, k, lo, hi int) {
	j := 0
	for ; j+8 <= k; j += 8 {
		g.lapMulBlockTile8(dst, r, x, k, j, lo, hi)
	}
	if j+4 <= k {
		g.lapMulBlockTile4(dst, r, x, k, j, lo, hi)
		j += 4
	}
	if j < k {
		g.lapMulBlockTail(dst, r, x, k, j, lo, hi)
	}
}

func (g *Graph) lapMulBlockTile8(dst, r, x []float64, k, j0, lo, hi int) {
	for v := lo; v < hi; v++ {
		nbr, w := g.Neighbors(v)
		var a0, a1, a2, a3, a4, a5, a6, a7, wsum float64
		for i, u := range nbr {
			wi := w[i]
			wsum += wi
			b := u*k + j0
			xu := x[b : b+8 : b+8]
			a0 += wi * xu[0]
			a1 += wi * xu[1]
			a2 += wi * xu[2]
			a3 += wi * xu[3]
			a4 += wi * xu[4]
			a5 += wi * xu[5]
			a6 += wi * xu[6]
			a7 += wi * xu[7]
		}
		b := v*k + j0
		xv := x[b : b+8 : b+8]
		a0 = wsum*xv[0] - a0
		a1 = wsum*xv[1] - a1
		a2 = wsum*xv[2] - a2
		a3 = wsum*xv[3] - a3
		a4 = wsum*xv[4] - a4
		a5 = wsum*xv[5] - a5
		a6 = wsum*xv[6] - a6
		a7 = wsum*xv[7] - a7
		if r != nil {
			rv := r[b : b+8 : b+8]
			a0 = rv[0] - a0
			a1 = rv[1] - a1
			a2 = rv[2] - a2
			a3 = rv[3] - a3
			a4 = rv[4] - a4
			a5 = rv[5] - a5
			a6 = rv[6] - a6
			a7 = rv[7] - a7
		}
		row := dst[b : b+8 : b+8]
		row[0], row[1], row[2], row[3] = a0, a1, a2, a3
		row[4], row[5], row[6], row[7] = a4, a5, a6, a7
	}
}

func (g *Graph) lapMulBlockTile4(dst, r, x []float64, k, j0, lo, hi int) {
	for v := lo; v < hi; v++ {
		nbr, w := g.Neighbors(v)
		var a0, a1, a2, a3, wsum float64
		for i, u := range nbr {
			wi := w[i]
			wsum += wi
			b := u*k + j0
			xu := x[b : b+4 : b+4]
			a0 += wi * xu[0]
			a1 += wi * xu[1]
			a2 += wi * xu[2]
			a3 += wi * xu[3]
		}
		b := v*k + j0
		xv := x[b : b+4 : b+4]
		a0 = wsum*xv[0] - a0
		a1 = wsum*xv[1] - a1
		a2 = wsum*xv[2] - a2
		a3 = wsum*xv[3] - a3
		if r != nil {
			rv := r[b : b+4 : b+4]
			a0 = rv[0] - a0
			a1 = rv[1] - a1
			a2 = rv[2] - a2
			a3 = rv[3] - a3
		}
		row := dst[b : b+4 : b+4]
		row[0], row[1], row[2], row[3] = a0, a1, a2, a3
	}
}

// lapMulBlockTail handles the final k−j0 ∈ {1, 2, 3} columns.
func (g *Graph) lapMulBlockTail(dst, r, x []float64, k, j0, lo, hi int) {
	kk := k - j0
	for v := lo; v < hi; v++ {
		nbr, w := g.Neighbors(v)
		var acc [3]float64
		wsum := 0.0
		for i, u := range nbr {
			wi := w[i]
			wsum += wi
			b := u * k
			for j := 0; j < kk; j++ {
				acc[j] += wi * x[b+j0+j]
			}
		}
		b := v * k
		for j := 0; j < kk; j++ {
			t := wsum*x[b+j0+j] - acc[j]
			if r != nil {
				t = r[b+j0+j] - t
			}
			dst[b+j0+j] = t
		}
	}
}
