package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	es := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		es = append(es, Edge{U: i, V: i + 1, W: 1})
	}
	return MustFromEdges(n, es)
}

func cycleGraph(n int) *Graph {
	es := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		es = append(es, Edge{U: i, V: (i + 1) % n, W: 1})
	}
	return MustFromEdges(n, es)
}

func starGraph(n int) *Graph { // center 0, n−1 leaves
	es := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		es = append(es, Edge{U: 0, V: i, W: 1})
	}
	return MustFromEdges(n, es)
}

func completeGraph(n int) *Graph {
	var es []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			es = append(es, Edge{U: i, V: j, W: 1})
		}
	}
	return MustFromEdges(n, es)
}

func randomConnected(rng *rand.Rand, n int, extra int) *Graph {
	var es []Edge
	for v := 1; v < n; v++ {
		es = append(es, Edge{U: rng.Intn(v), V: v, W: 0.5 + rng.Float64()})
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			es = append(es, Edge{U: u, V: v, W: 0.5 + rng.Float64()})
		}
	}
	return MustFromEdges(n, es)
}

func TestNewFromEdgesValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"negative n", -1, nil},
		{"out of range", 2, []Edge{{U: 0, V: 2, W: 1}}},
		{"negative endpoint", 2, []Edge{{U: -1, V: 1, W: 1}}},
		{"self loop", 2, []Edge{{U: 1, V: 1, W: 1}}},
		{"zero weight", 2, []Edge{{U: 0, V: 1, W: 0}}},
		{"negative weight", 2, []Edge{{U: 0, V: 1, W: -2}}},
		{"NaN weight", 2, []Edge{{U: 0, V: 1, W: math.NaN()}}},
		{"Inf weight", 2, []Edge{{U: 0, V: 1, W: math.Inf(1)}}},
	}
	for _, c := range cases {
		if _, err := NewFromEdges(c.n, c.edges); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	g, err := NewFromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 || !g.Connected() {
		t.Errorf("empty graph: N=%d M=%d connected=%v", g.N(), g.M(), g.Connected())
	}
	g = MustFromEdges(1, nil)
	if !g.Connected() || g.TotalVol() != 0 {
		t.Errorf("singleton: connected=%v vol=%v", g.Connected(), g.TotalVol())
	}
	if exactPhi(t, g) != math.Inf(1) {
		t.Errorf("singleton conductance should be +Inf")
	}
}

func TestParallelEdgeMerging(t *testing.T) {
	g := MustFromEdges(2, []Edge{{0, 1, 1.5}, {1, 0, 2.5}})
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if w, ok := g.Weight(0, 1); !ok || w != 4 {
		t.Errorf("merged weight = %v, want 4", w)
	}
	if g.Vol(0) != 4 || g.Vol(1) != 4 {
		t.Errorf("volumes = %v %v, want 4 4", g.Vol(0), g.Vol(1))
	}
}

func TestDegreesAndVolumes(t *testing.T) {
	g := starGraph(5)
	if g.Degree(0) != 4 || g.MaxDegree() != 4 {
		t.Errorf("star degrees wrong: %d %d", g.Degree(0), g.MaxDegree())
	}
	if g.Vol(0) != 4 || g.Vol(3) != 1 {
		t.Errorf("star volumes wrong")
	}
	if g.TotalVol() != 8 {
		t.Errorf("TotalVol = %v, want 8", g.TotalVol())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(rng, 40, 60)
	h := MustFromEdges(g.N(), g.Edges())
	if h.M() != g.M() {
		t.Fatalf("edge count changed: %d vs %d", h.M(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if math.Abs(h.Vol(v)-g.Vol(v)) > 1e-12 {
			t.Fatalf("vol mismatch at %d", v)
		}
	}
}

func TestWeightLookup(t *testing.T) {
	g := pathGraph(4)
	if _, ok := g.Weight(0, 2); ok {
		t.Error("nonexistent edge reported present")
	}
	if w, ok := g.Weight(2, 1); !ok || w != 1 {
		t.Error("edge (1,2) lookup failed")
	}
}

func TestBFSAndComponents(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	order, parent := g.BFS(0)
	if len(order) != 3 || order[0] != 0 {
		t.Errorf("BFS order = %v", order)
	}
	if parent[1] != 0 || parent[2] != 1 || parent[5] != -1 {
		t.Errorf("BFS parents = %v", parent)
	}
	label, k := g.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if label[0] != label[2] || label[3] != label[4] || label[0] == label[3] || label[5] == label[0] {
		t.Errorf("labels = %v", label)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestForestAndTreePredicates(t *testing.T) {
	if !pathGraph(5).IsTree() || !pathGraph(5).IsForest() {
		t.Error("path should be tree and forest")
	}
	if cycleGraph(4).IsForest() {
		t.Error("cycle is not a forest")
	}
	forest := MustFromEdges(5, []Edge{{0, 1, 1}, {2, 3, 1}})
	if !forest.IsForest() || forest.IsTree() {
		t.Error("two-component forest misclassified")
	}
}

func TestCutMetrics(t *testing.T) {
	// Two triangles joined by one light edge.
	es := []Edge{{0, 1, 2}, {1, 2, 2}, {0, 2, 2}, {3, 4, 2}, {4, 5, 2}, {3, 5, 2}, {2, 3, 0.5}}
	g := MustFromEdges(6, es)
	s := []int{0, 1, 2}
	if out := g.Out(s); math.Abs(out-0.5) > 1e-12 {
		t.Errorf("Out = %v, want 0.5", out)
	}
	if c := g.Cap(s, []int{3, 4, 5}); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("Cap = %v, want 0.5", c)
	}
	wantVol := 2.0*2*3 + 0.5 // per side: three weight-2 edges fully inside + half... compute directly
	_ = wantVol
	if v := g.VolSet(s); math.Abs(v-(4+4+4.5)) > 1e-12 {
		t.Errorf("VolSet = %v, want 12.5", v)
	}
	sp := g.CutSparsity(s)
	if math.Abs(sp-0.5/12.5) > 1e-12 {
		t.Errorf("CutSparsity = %v", sp)
	}
	// Exact conductance must find this (or a better) cut.
	phi := exactPhi(t, g)
	if phi > sp+1e-12 {
		t.Errorf("ExactConductance %v > sparsity of known cut %v", phi, sp)
	}
	if phi <= 0 {
		t.Errorf("conductance should be positive on connected graph, got %v", phi)
	}
}

func TestExactConductanceKnownValues(t *testing.T) {
	// Complete graph K4, unit weights: conductance = min over |S|=1,2.
	// |S|=1: cut 3, vol 3 → 1. |S|=2: cut 4, vol 6 → 2/3.
	if phi := exactPhi(t, completeGraph(4)); math.Abs(phi-2.0/3.0) > 1e-12 {
		t.Errorf("K4 conductance = %v, want 2/3", phi)
	}
	// Path P3 (unit): best cut splits an end edge: cut 1, min vol 1 → 1.
	if phi := exactPhi(t, pathGraph(3)); math.Abs(phi-1) > 1e-12 {
		t.Errorf("P3 conductance = %v, want 1", phi)
	}
	// Path P4: cut middle edge: cut 1, vol 3 each side → 1/3.
	if phi := exactPhi(t, pathGraph(4)); math.Abs(phi-1.0/3.0) > 1e-12 {
		t.Errorf("P4 conductance = %v, want 1/3", phi)
	}
	// Star on 5 vertices: any leaf subset S (not containing center) has
	// cut=|S|, vol=|S| → 1; best is 1... with center: S={center} cut 4 vol 4 → 1.
	if phi := exactPhi(t, starGraph(5)); math.Abs(phi-1) > 1e-12 {
		t.Errorf("star conductance = %v, want 1", phi)
	}
	// Disconnected graph: conductance 0.
	g := MustFromEdges(4, []Edge{{0, 1, 1}, {2, 3, 1}})
	if phi := exactPhi(t, g); phi != 0 {
		t.Errorf("disconnected conductance = %v, want 0", phi)
	}
}

func TestSweepCutMatchesExactOnPath(t *testing.T) {
	g := pathGraph(8)
	perm := make([]int, 8)
	for i := range perm {
		perm[i] = i
	}
	s, set := g.SweepCut(perm)
	if exact := exactPhi(t, g); math.Abs(s-exact) > 1e-12 {
		t.Errorf("sweep %v vs exact %v", s, exact)
	}
	if len(set) != 4 {
		t.Errorf("sweep set = %v, want the middle cut", set)
	}
}

func TestConductanceUpperBoundIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for it := 0; it < 25; it++ {
		n := 4 + rng.Intn(10)
		g := randomConnected(rng, n, rng.Intn(12))
		exact := exactPhi(t, g)
		ub := g.ConductanceUpperBound()
		if ub < exact-1e-9 {
			t.Fatalf("upper bound %v below exact %v (n=%d)", ub, exact, n)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycleGraph(6)
	sub, back, err := g.InducedSubgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced N=%d M=%d", sub.N(), sub.M())
	}
	if back[0] != 1 || back[2] != 3 {
		t.Errorf("back map = %v", back)
	}
	if !sub.IsTree() {
		t.Error("induced path should be a tree")
	}
	if _, _, err := g.InducedSubgraph([]int{1, 1}); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestClosure(t *testing.T) {
	g := cycleGraph(6)
	clo, back, err := g.Closure([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster path 1-2-3 has two boundary edges (0,1) and (3,4): two stubs.
	if clo.N() != 5 || clo.M() != 4 {
		t.Fatalf("closure N=%d M=%d, want 5 4", clo.N(), clo.M())
	}
	if len(back) != 3 {
		t.Fatalf("back = %v", back)
	}
	// Stubs must be degree 1.
	for v := 3; v < 5; v++ {
		if clo.Degree(v) != 1 {
			t.Errorf("stub %d degree %d", v, clo.Degree(v))
		}
	}
	// Cluster vertex volumes in closure equal their volumes in g.
	for i, orig := range back {
		if math.Abs(clo.Vol(i)-g.Vol(orig)) > 1e-12 {
			t.Errorf("closure vol mismatch at %d", orig)
		}
	}
}

func TestClosureConductanceSmallerThanInduced(t *testing.T) {
	// Adding boundary stubs can only create sparser cuts.
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 20; it++ {
		g := randomConnected(rng, 12, 8)
		s := []int{0, 1, 2, 3}
		clo, _, cerr := g.Closure(s)
		if cerr != nil {
			t.Fatal(cerr)
		}
		ind, _, err := g.InducedSubgraph(s)
		if err != nil {
			t.Fatal(err)
		}
		if clo.N() > MaxExactConductance || !ind.Connected() {
			continue
		}
		pc := exactPhi(t, clo)
		pi := exactPhi(t, ind)
		if pc > pi+1e-9 {
			t.Fatalf("closure conductance %v > induced %v", pc, pi)
		}
	}
}

func TestContract(t *testing.T) {
	// 6-cycle contracted into 3 consecutive pairs → triangle with weights 1.
	g := cycleGraph(6)
	assign := []int{0, 0, 1, 1, 2, 2}
	q := g.Contract(assign, 3)
	if q.N() != 3 || q.M() != 3 {
		t.Fatalf("quotient N=%d M=%d", q.N(), q.M())
	}
	for _, pr := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if w, ok := q.Weight(pr[0], pr[1]); !ok || math.Abs(w-1) > 1e-12 {
			t.Errorf("quotient edge %v weight %v", pr, w)
		}
	}
	// Total quotient edge weight = total cut weight between clusters.
	if tv := q.TotalVol(); math.Abs(tv-6) > 1e-12 {
		t.Errorf("quotient total vol %v, want 6", tv)
	}
}

func TestContractMatchesCap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for it := 0; it < 15; it++ {
		g := randomConnected(rng, 20, 25)
		m := 4
		assign := make([]int, 20)
		clusters := make([][]int, m)
		for v := range assign {
			c := rng.Intn(m)
			assign[v] = c
			clusters[c] = append(clusters[c], v)
		}
		q := g.Contract(assign, m)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				want := g.Cap(clusters[i], clusters[j])
				got, ok := q.Weight(i, j)
				if want == 0 {
					if ok {
						t.Fatalf("phantom quotient edge %d-%d", i, j)
					}
					continue
				}
				if math.Abs(got-want) > 1e-9*math.Max(1, want) {
					t.Fatalf("quotient weight %d-%d = %v, want %v", i, j, got, want)
				}
			}
		}
	}
}

func TestLapMulAndQuad(t *testing.T) {
	g := pathGraph(3)
	x := []float64{1, 0, -1}
	dst := make([]float64, 3)
	g.LapMul(dst, x)
	want := []float64{1, 0, -1}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Errorf("LapMul[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if q := g.LapQuad(x); math.Abs(q-2) > 1e-12 {
		t.Errorf("LapQuad = %v, want 2", q)
	}
}

func TestLapDenseAgreesWithLapMul(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnected(rng, 15, 20)
	n := g.N()
	a := g.LapDense()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	g.LapMul(got, x)
	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += a[i*n+j] * x[j]
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("row %d: %v vs %v", i, got[i], want)
		}
	}
}

func TestLaplacianPSDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomConnected(rng, 25, 30)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, g.N())
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		return g.LapQuad(x) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLapQuadZeroOnConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomConnected(rng, 20, 10)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = 42.5
	}
	if q := g.LapQuad(x); math.Abs(q) > 1e-9 {
		t.Errorf("quad on constants = %v", q)
	}
	dst := make([]float64, g.N())
	g.LapMul(dst, x)
	for _, v := range dst {
		if math.Abs(v) > 1e-9 {
			t.Errorf("LapMul on constants nonzero: %v", v)
		}
	}
}

func TestVolumesIsDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomConnected(rng, 12, 10)
	a := g.LapDense()
	vols := g.Volumes()
	for i := 0; i < g.N(); i++ {
		if math.Abs(a[i*g.N()+i]-vols[i]) > 1e-12 {
			t.Fatalf("diagonal mismatch at %d", i)
		}
	}
}

func TestReweight(t *testing.T) {
	g := pathGraph(3)
	h, err := g.Reweight(func(u, v int, w float64) float64 { return w * 3 })
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := h.Weight(0, 1); w != 3 {
		t.Errorf("reweighted = %v", w)
	}
	if _, err := g.Reweight(func(u, v int, w float64) float64 { return -1 }); err == nil {
		t.Error("negative reweight should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := pathGraph(3)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("clone shape mismatch")
	}
	c.w[0] = 99
	if g.w[0] == 99 {
		t.Error("clone shares storage with original")
	}
}

func TestNewFromUniqueEdgesMatchesNewFromEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		seen := map[[2]int]bool{}
		var es []Edge
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			es = append(es, Edge{U: u, V: v, W: 0.1 + rng.Float64()})
		}
		a, err := NewFromEdges(n, es)
		if err != nil {
			return false
		}
		b, err := NewFromUniqueEdges(n, es)
		if err != nil {
			return false
		}
		if a.N() != b.N() || a.M() != b.M() {
			return false
		}
		for v := 0; v < n; v++ {
			if math.Abs(a.Vol(v)-b.Vol(v)) > 1e-12 {
				return false
			}
		}
		// Adjacency order may differ (sorted vs input order); compare the
		// edge sets, not the sequences.
		ea, eb := a.Edges(), b.Edges()
		key := func(e Edge) [2]int { return [2]int{e.U, e.V} }
		wa := map[[2]int]float64{}
		for _, e := range ea {
			wa[key(e)] = e.W
		}
		for _, e := range eb {
			w, ok := wa[key(e)]
			if !ok || math.Abs(w-e.W) > 1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestNewFromUniqueEdgesValidation(t *testing.T) {
	if _, err := NewFromUniqueEdges(2, []Edge{{U: 0, V: 0, W: 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewFromUniqueEdges(2, []Edge{{U: 0, V: 3, W: 1}}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := NewFromUniqueEdges(2, []Edge{{U: 0, V: 1, W: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewFromUniqueEdges(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
}

func BenchmarkLapMulPath(b *testing.B) {
	g := pathGraph(100000)
	x := make([]float64, g.N())
	dst := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LapMul(dst, x)
	}
}

func BenchmarkExactConductance16(b *testing.B) {
	g := completeGraph(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.ExactConductance()
	}
}

// exactPhi is ExactConductance for test graphs known to be under the
// enumeration limit.
func exactPhi(t *testing.T, g *Graph) float64 {
	t.Helper()
	phi, err := g.ExactConductance()
	if err != nil {
		t.Fatalf("ExactConductance: %v", err)
	}
	return phi
}

func TestClosureInvalidInput(t *testing.T) {
	g := cycleGraph(6)
	if _, _, err := g.Closure([]int{1, 2, 1}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("duplicate vertex: err = %v, want ErrInvalidInput", err)
	}
	if _, _, err := g.Closure([]int{1, 99}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("out-of-range vertex: err = %v, want ErrInvalidInput", err)
	}
	if _, _, err := g.Closure([]int{1, -1}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("negative vertex: err = %v, want ErrInvalidInput", err)
	}
}

func TestExactConductanceTooLarge(t *testing.T) {
	// A cycle has no pendant stubs, so its core is the whole vertex set and
	// the enumeration limit applies to it directly.
	g := cycleGraph(MaxExactConductance + 1)
	if _, err := g.ExactConductance(); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("oversized core: err = %v, want ErrInvalidInput", err)
	}
	// A path of the same size certifies fine: its two endpoints are stubs,
	// leaving a core of MaxExactConductance − 1 vertices.
	p := pathGraph(MaxExactConductance + 1)
	if _, err := p.ExactConductance(); err != nil {
		t.Fatalf("path with %d-vertex core: %v", p.CoreSize(), err)
	}
	if _, err := p.ExactConductanceBruteForce(); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("oversized brute force: err = %v, want ErrInvalidInput", err)
	}
}
