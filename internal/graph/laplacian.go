package graph

import "hcd/internal/par"

// LapMul computes dst = A·x where A is the Laplacian of g:
// dst[v] = Σ_u w(v,u)·(x[v] − x[u]). dst and x must have length N().
// Rows are independent, so large graphs are processed across cores; the
// result is bit-identical to the sequential loop.
func (g *Graph) LapMul(dst, x []float64) {
	n := g.N()
	// Serial short-circuit below the grain (and on one worker): the closure
	// below escapes to worker goroutines and would heap-allocate per call,
	// which matters for the solver engine's zero-allocation small solves.
	if n <= 8192 || par.Workers() == 1 {
		g.lapMulRange(dst, x, 0, n)
		return
	}
	par.For(n, 8192, func(lo, hi int) {
		g.lapMulRange(dst, x, lo, hi)
	})
}

// LapMulSerial is the single-goroutine matvec, bit-identical to LapMul. It
// exists as the reference implementation for equality tests and for
// benchmarking the parallel row-blocked path against a fixed serial baseline.
func (g *Graph) LapMulSerial(dst, x []float64) {
	g.lapMulRange(dst, x, 0, g.N())
}

func (g *Graph) lapMulRange(dst, x []float64, lo, hi int) {
	for v := lo; v < hi; v++ {
		nbr, w := g.Neighbors(v)
		acc := 0.0
		xv := x[v]
		for i, u := range nbr {
			acc += w[i] * (xv - x[u])
		}
		dst[v] = acc
	}
}

// LapQuad returns the Laplacian quadratic form xᵀAx = Σ_{(u,v)∈E} w·(x[u]−x[v])².
func (g *Graph) LapQuad(x []float64) float64 {
	q := 0.0
	for u := 0; u < g.N(); u++ {
		nbr, w := g.Neighbors(u)
		xu := x[u]
		for i, v := range nbr {
			if u < v {
				d := xu - x[v]
				q += w[i] * d * d
			}
		}
	}
	return q
}

// LapDense returns the Laplacian of g as a dense row-major n×n matrix; for
// tests and small direct factorizations only.
func (g *Graph) LapDense() []float64 {
	n := g.N()
	a := make([]float64, n*n)
	for v := 0; v < n; v++ {
		nbr, w := g.Neighbors(v)
		for i, u := range nbr {
			a[v*n+u] -= w[i]
			a[v*n+v] += w[i]
		}
	}
	return a
}

// Volumes returns a copy of the vertex volume vector, i.e. the diagonal D of
// the Laplacian.
func (g *Graph) Volumes() []float64 {
	return append([]float64(nil), g.vol...)
}
