package graph

// Shard views for partition-parallel decomposition builds. A Shard is a
// contiguous vertex range [Lo, Hi) of a host graph together with the host's
// CSR storage — no induced subgraph is materialized. Per-shard work reads the
// host adjacency through the view and classifies each incident edge as
// internal (both endpoints in range) or boundary (the far endpoint in some
// other shard). The fixed-degree clustering of Section 3.1 is one
// independent pass per vertex, so shards can be clustered concurrently and
// stitched along the boundary afterwards; see internal/decomp's sharded
// build path.

import "fmt"

// Shard is a zero-copy view of the contiguous vertex range [Lo, Hi) of a
// host graph. The zero value is an empty view of no graph; construct shards
// with PartitionShards (or NewShard for tests).
type Shard struct {
	g      *Graph
	lo, hi int
}

// NewShard returns the view of host vertices [lo, hi). It errors on an
// inverted or out-of-range interval.
func NewShard(g *Graph, lo, hi int) (Shard, error) {
	if lo < 0 || hi > g.N() || lo > hi {
		return Shard{}, fmt.Errorf("graph: shard [%d,%d) outside [0,%d): %w", lo, hi, g.N(), ErrBadDimension)
	}
	return Shard{g: g, lo: lo, hi: hi}, nil
}

// Host returns the graph the shard views.
func (s Shard) Host() *Graph { return s.g }

// Lo returns the first vertex of the range.
func (s Shard) Lo() int { return s.lo }

// Hi returns one past the last vertex of the range.
func (s Shard) Hi() int { return s.hi }

// Len returns the number of vertices in the shard.
func (s Shard) Len() int { return s.hi - s.lo }

// Contains reports whether host vertex v lies in the shard's range.
func (s Shard) Contains(v int) bool { return v >= s.lo && v < s.hi }

// Local converts a host vertex id to its shard-local id in [0, Len()).
func (s Shard) Local(v int) int { return v - s.lo }

// Global converts a shard-local id back to the host vertex id.
func (s Shard) Global(local int) int { return s.lo + local }

// Neighbors returns host vertex v's neighbor ids and weights straight from
// the host CSR (callers must not modify them). Neighbor ids are host ids;
// use Contains to classify each as internal or boundary.
func (s Shard) Neighbors(v int) ([]int, []float64) { return s.g.Neighbors(v) }

// BoundaryDegree returns the number of edges of host vertex v that leave
// the shard.
func (s Shard) BoundaryDegree(v int) int {
	nbr, _ := s.g.Neighbors(v)
	b := 0
	for _, u := range nbr {
		if !s.Contains(u) {
			b++
		}
	}
	return b
}

// InternalEdges counts the edges with both endpoints inside the shard (each
// counted once) and the boundary half-edges leaving it.
func (s Shard) InternalEdges() (internal, boundary int) {
	for v := s.lo; v < s.hi; v++ {
		nbr, _ := s.g.Neighbors(v)
		for _, u := range nbr {
			switch {
			case !s.Contains(u):
				boundary++
			case u > v:
				internal++
			}
		}
	}
	return internal, boundary
}

// PartitionShards splits g into at most k contiguous vertex-range shards of
// roughly equal adjacency mass (CSR entries, i.e. twice the incident edge
// weight count) — the balance that matters for per-shard clustering work.
// Fewer than k shards are returned when g has fewer than k vertices; every
// returned shard is non-empty. The split is a deterministic function of the
// graph and k.
func PartitionShards(g *Graph, k int) []Shard {
	n := g.N()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if n == 0 {
		return nil
	}
	shards := make([]Shard, 0, k)
	total := len(g.adj)
	lo := 0
	for i := 0; i < k; i++ {
		if lo >= n {
			break
		}
		// Remaining shards must each get at least one vertex; cap hi so the
		// tail never starves.
		hi := n - (k - 1 - i)
		if i < k-1 {
			// Advance to the adjacency-mass target for this cut, but at
			// least one vertex.
			target := (total * (i + 1)) / k
			h := lo + 1
			for h < hi && g.off[h] < target {
				h++
			}
			hi = h
		}
		shards = append(shards, Shard{g: g, lo: lo, hi: hi})
		lo = hi
	}
	return shards
}
