package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randGraph builds a random connected-ish weighted graph on n vertices whose
// edge weights come from weight(). Edges are sampled with probability p plus
// a random spanning-tree backbone when connect is set.
func randGraph(t *testing.T, rng *rand.Rand, n int, p float64, connect bool, weight func() float64) *Graph {
	t.Helper()
	var es []Edge
	if connect {
		for v := 1; v < n; v++ {
			es = append(es, Edge{U: rng.Intn(v), V: v, W: weight()})
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				es = append(es, Edge{U: u, V: v, W: weight()})
			}
		}
	}
	g, err := NewFromEdges(n, es)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestExactConductanceMatchesBruteForceIntegerWeights pins the stub-aware
// certifier to the brute-force enumeration bit for bit: with integer edge
// weights every cut and volume sum is exactly representable, so both
// algorithms evaluate identical candidate values and must return the same
// float64.
func TestExactConductanceMatchesBruteForceIntegerWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	intWeight := func() float64 { return float64(1 + rng.Intn(16)) }
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(11)
		g := randGraph(t, rng, n, 0.3, trial%2 == 0, intWeight)
		fast, err := g.ExactConductance()
		if err != nil {
			t.Fatal(err)
		}
		brute, err := g.ExactConductanceBruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if fast != brute {
			t.Fatalf("trial %d (n=%d, core=%d): stub-aware %v != brute %v\nedges: %v",
				trial, n, g.CoreSize(), fast, brute, g.Edges())
		}
	}
}

// TestExactConductanceMatchesBruteForceFloatWeights repeats the differential
// check with float weights on connected graphs under a relative tolerance:
// the two enumerations accumulate sums along different paths, so agreement
// is mathematical, not bitwise. Connectivity matters — on disconnected
// graphs the brute force's incrementally drifted volumes can turn a
// degenerate cut (true denominator 0) into a spurious near-zero ratio, which
// is a weakness of the oracle, not of the certifier (the integer-weight test
// above is exact and bit-identical either way).
func TestExactConductanceMatchesBruteForceFloatWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	floatWeight := func() float64 { return math.Exp(rng.NormFloat64()) }
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(11)
		g := randGraph(t, rng, n, 0.35, true, floatWeight)
		fast, err := g.ExactConductance()
		if err != nil {
			t.Fatal(err)
		}
		brute, err := g.ExactConductanceBruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(fast, 1) != math.IsInf(brute, 1) {
			t.Fatalf("trial %d: stub-aware %v vs brute %v", trial, fast, brute)
		}
		if !math.IsInf(brute, 1) && math.Abs(fast-brute) > 1e-8*math.Max(1, brute) {
			t.Fatalf("trial %d (n=%d): stub-aware %v vs brute %v (diff %g)",
				trial, n, fast, brute, fast-brute)
		}
	}
}

// TestClusterPhiMatchesClosureBruteForce checks the cluster-direct certifier
// against materializing the closure and brute-forcing it, bit for bit on
// integer weights.
func TestClusterPhiMatchesClosureBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	intWeight := func() float64 { return float64(1 + rng.Intn(16)) }
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(14)
		g := randGraph(t, rng, n, 0.25, true, intWeight)
		cert := NewCertifier(g)
		cb := NewClosureBuilder(g)
		for rep := 0; rep < 6; rep++ {
			k := 1 + rng.Intn(5)
			if k > n {
				k = n
			}
			s := rng.Perm(n)[:k]
			clo, _, err := g.Closure(s)
			if err != nil {
				t.Fatal(err)
			}
			if clo.N() > MaxExactConductance {
				continue
			}
			brute, err := clo.ExactConductanceBruteForce()
			if err != nil {
				t.Fatal(err)
			}
			phi, err := cert.ClusterPhi(s)
			if err != nil {
				t.Fatal(err)
			}
			if phi != brute {
				t.Fatalf("trial %d rep %d (cluster %v): ClusterPhi %v != closure brute force %v",
					trial, rep, s, phi, brute)
			}
			// The builder's closure must agree with Graph.Closure on the
			// stub-aware certification too.
			bclo, _, err := cb.Closure(s)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := bclo.ExactConductance()
			if err != nil {
				t.Fatal(err)
			}
			if fast != brute {
				t.Fatalf("trial %d rep %d: builder-closure stub-aware %v != brute %v", trial, rep, fast, brute)
			}
		}
	}
}

// TestClusterPhiErrors exercises the malformed-cluster paths.
func TestClusterPhiErrors(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}})
	cert := NewCertifier(g)
	if _, err := cert.ClusterPhi([]int{1, 1}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("duplicate member: got %v", err)
	}
	if _, err := cert.ClusterPhi([]int{1, 9}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("out of range: got %v", err)
	}
	if _, err := cert.ClusterPhi([]int{1, -1}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("negative: got %v", err)
	}
	big := make([]int, MaxExactConductance+1)
	if _, err := cert.ClusterPhi(big); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("oversized core: got %v", err)
	}
	if phi, err := cert.ClusterPhi(nil); err != nil || !math.IsInf(phi, 1) {
		t.Fatalf("empty cluster: got %v, %v", phi, err)
	}
	// A valid call after the failures must still work (epoch hygiene).
	phi, err := cert.ClusterPhi([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	clo, _, _ := g.Closure([]int{1, 2})
	want, _ := clo.ExactConductanceBruteForce()
	if phi != want {
		t.Fatalf("post-error certification: got %v want %v", phi, want)
	}
}

// TestEnumerateCoreCutsParallelDeterminism forces the prefix-partitioned
// enumeration (core > serialEnumBits+1) and checks it against the brute
// force on a pendant-free graph, proving the chunked walk visits every
// side-assignment. Run with -short to skip (the 2^17-step enumeration is
// fast, but the brute force on 18 vertices is 2^17 too).
func TestEnumerateCoreCutsParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	intWeight := func() float64 { return float64(1 + rng.Intn(8)) }
	// 18 core vertices: nbits = 17 > serialEnumBits = 16 → chunked path.
	n := serialEnumBits + 2
	g := randGraph(t, rng, n, 0.3, true, intWeight)
	if g.CoreSize() != n {
		t.Fatalf("want pendant-free graph, core %d of %d", g.CoreSize(), n)
	}
	fast, err := g.ExactConductance()
	if err != nil {
		t.Fatal(err)
	}
	brute, err := g.ExactConductanceBruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if fast != brute {
		t.Fatalf("chunked enumeration %v != brute %v", fast, brute)
	}
}

// TestCertifierStats checks the certification counters: one core per call,
// every boundary edge collapsed, 2^(k−1)−1 subsets visited.
func TestCertifierStats(t *testing.T) {
	// Path 0-1-2-3-4; cluster {1,2,3} has 2 boundary edges and a 3-core.
	g := MustFromEdges(5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}})
	cert := NewCertifier(g)
	if _, err := cert.ClusterPhi([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	want := CertStats{Cores: 1, Stubs: 2, Subsets: 3}
	if cert.Stats != want {
		t.Fatalf("stats %+v, want %+v", cert.Stats, want)
	}
	if _, err := cert.ClusterPhi([]int{0}); err != nil {
		t.Fatal(err)
	}
	want = CertStats{Cores: 2, Stubs: 3, Subsets: 3}
	if cert.Stats != want {
		t.Fatalf("stats %+v, want %+v", cert.Stats, want)
	}
}

// TestClosureBuilderMatchesClosure compares the reusable builder against the
// allocating Graph.Closure / Graph.InducedSubgraph on random clusters:
// identical vertex counts, volumes, back maps, and edge multisets.
func TestClosureBuilderMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	weight := func() float64 { return math.Exp(rng.NormFloat64()) }
	for trial := 0; trial < 120; trial++ {
		n := 5 + rng.Intn(20)
		g := randGraph(t, rng, n, 0.25, true, weight)
		cb := NewClosureBuilder(g)
		for rep := 0; rep < 5; rep++ {
			k := 1 + rng.Intn(6)
			if k > n {
				k = n
			}
			s := rng.Perm(n)[:k]
			wantClo, wantBack, err := g.Closure(s)
			if err != nil {
				t.Fatal(err)
			}
			gotClo, gotBack, err := cb.Closure(s)
			if err != nil {
				t.Fatal(err)
			}
			compareGraphs(t, "Closure", gotClo, wantClo)
			compareBacks(t, gotBack, wantBack[:k])
			wantSub, wantBack2, err := g.InducedSubgraph(s)
			if err != nil {
				t.Fatal(err)
			}
			gotSub, gotBack2, err := cb.InducedSubgraph(s)
			if err != nil {
				t.Fatal(err)
			}
			compareGraphs(t, "InducedSubgraph", gotSub, wantSub)
			compareBacks(t, gotBack2, wantBack2)
		}
	}
	// Error paths mirror Graph.Closure.
	g := MustFromEdges(3, []Edge{{0, 1, 1}, {1, 2, 1}})
	cb := NewClosureBuilder(g)
	if _, _, err := cb.Closure([]int{0, 0}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("duplicate: got %v", err)
	}
	if _, _, err := cb.InducedSubgraph([]int{5}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("out of range: got %v", err)
	}
}

func compareGraphs(t *testing.T, op string, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: size %d/%d edges %d/%d", op, got.N(), want.N(), got.M(), want.M())
	}
	for v := 0; v < got.N(); v++ {
		if math.Abs(got.Vol(v)-want.Vol(v)) > 1e-12*math.Max(1, want.Vol(v)) {
			t.Fatalf("%s: vol[%d] %v != %v", op, v, got.Vol(v), want.Vol(v))
		}
	}
	gw := map[[2]int]float64{}
	for _, e := range got.Edges() {
		gw[[2]int{e.U, e.V}] = e.W
	}
	for _, e := range want.Edges() {
		if gw[[2]int{e.U, e.V}] != e.W {
			t.Fatalf("%s: edge (%d,%d) weight %v != %v", op, e.U, e.V, gw[[2]int{e.U, e.V}], e.W)
		}
	}
}

func compareBacks(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("back map length %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("back[%d] = %d != %d", i, got[i], want[i])
		}
	}
}

// TestClosureBuilderZeroAlloc asserts the warm builder allocates nothing.
func TestClosureBuilderZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randGraph(t, rng, 40, 0.15, true, func() float64 { return 1 + rng.Float64() })
	cb := NewClosureBuilder(g)
	cert := NewCertifier(g)
	s := []int{3, 7, 11, 19}
	if _, _, err := cb.Closure(s); err != nil { // warm the buffers
		t.Fatal(err)
	}
	if _, err := cert.ClusterPhi(s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := cb.Closure(s); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cb.InducedSubgraph(s); err != nil {
			t.Fatal(err)
		}
		if _, err := cert.ClusterPhi(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm builder+certifier allocated %v times per run", allocs)
	}
}
