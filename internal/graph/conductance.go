package graph

import (
	"fmt"
	"math"
	"sort"
)

// MaxExactConductance is the largest vertex count for which
// ExactConductance enumerates all cuts. 2^(MaxExactConductance−1) subsets are
// visited with O(1) incremental updates via a Gray code, so 24 vertices cost
// about 8M flips.
const MaxExactConductance = 24

// ExactConductance computes the conductance of g by enumerating every cut.
// It returns +Inf for graphs with fewer than 2 vertices or with isolated
// structure making all cuts trivial, and an error wrapping ErrInvalidInput
// if g has more than MaxExactConductance vertices (use SweepCut / spectral
// bounds instead — the enumeration would be astronomically large).
//
// Enumeration fixes vertex 0 on the "outside" (cuts are symmetric) and walks
// the remaining 2^(n−1) subsets in Gray-code order, maintaining the cut
// weight and the set volume incrementally.
func (g *Graph) ExactConductance() (float64, error) {
	n := g.N()
	if n < 2 {
		return math.Inf(1), nil
	}
	if n > MaxExactConductance {
		return 0, fmt.Errorf("graph: ExactConductance on %d vertices exceeds the %d-vertex enumeration limit: %w",
			n, MaxExactConductance, ErrInvalidInput)
	}
	totalVol := g.TotalVol()
	in := make([]bool, n)
	cut, volS := 0.0, 0.0
	best := math.Inf(1)
	// Gray code over vertices 1..n−1: subset(i) and subset(i+1) differ in
	// exactly bit tz(i+1).
	steps := uint64(1) << uint(n-1)
	for i := uint64(1); i < steps; i++ {
		v := trailingZeros(i) + 1 // vertex to flip (1-based over vertices 1..n−1)
		nbr, w := g.Neighbors(v)
		if !in[v] {
			for k, u := range nbr {
				if in[u] {
					cut -= w[k]
				} else {
					cut += w[k]
				}
			}
			in[v] = true
			volS += g.vol[v]
		} else {
			in[v] = false
			volS -= g.vol[v]
			for k, u := range nbr {
				if in[u] {
					cut += w[k]
				} else {
					cut -= w[k]
				}
			}
		}
		den := math.Min(volS, totalVol-volS)
		if den > 0 {
			if s := cut / den; s < best {
				best = s
			}
		}
	}
	return best, nil
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// ConductanceUpperBound returns an upper bound on the conductance of g
// obtained from sweep cuts over several deterministic vertex orders (BFS
// orders from a few roots and a volume order). It is exact for many small
// graphs and always ≥ the true conductance.
func (g *Graph) ConductanceUpperBound() float64 {
	n := g.N()
	if n < 2 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	try := func(perm []int) {
		if s, _ := g.SweepCut(perm); s < best {
			best = s
		}
	}
	roots := []int{0, n / 2, n - 1}
	for _, r := range roots {
		order, _ := g.BFS(r)
		if len(order) == n {
			try(order)
		}
	}
	// Order by increasing volume: light vertices peel off first.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return g.vol[perm[i]] < g.vol[perm[j]] })
	try(perm)
	return best
}
