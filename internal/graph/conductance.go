package graph

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// MaxExactConductance is the largest *core* size for which ExactConductance
// (and Certifier.ClusterPhi) certifies conductance exactly. The core of a
// graph is its vertex set minus pendant stubs (degree-1 vertices hanging off
// the rest); stubs are placed in closed form, so a closure with a 4-vertex
// cluster and dozens of boundary stubs costs 2^3 side-assignments, not 2^n.
// 2^(MaxExactConductance−1) core assignments are visited with O(1)
// incremental updates via a Gray code (prefix-partitioned across cores for
// large enumerations), so a 24-vertex core costs about 8M flips.
const MaxExactConductance = 24

// ExactConductance computes the conductance of g exactly. Pendant (degree-1)
// vertices are treated as stubs and never enumerated: the enumeration runs
// over the 2^(k−1) side-assignments of the k core vertices with each stub's
// weight folded into its anchor's effective volume, which is exact by the
// stub-placement lemma (see certify.go and DESIGN.md §"Exact certification
// on closures"). It returns +Inf for graphs with fewer than 2 vertices, and
// an error wrapping ErrInvalidInput if the core exceeds MaxExactConductance
// vertices (use SweepCut / spectral bounds instead — the enumeration would
// be astronomically large).
func (g *Graph) ExactConductance() (float64, error) {
	n := g.N()
	if n < 2 {
		return math.Inf(1), nil
	}
	stub := g.markStubs(make([]bool, n))
	k := 0
	for _, s := range stub {
		if !s {
			k++
		}
	}
	if k > MaxExactConductance {
		return 0, fmt.Errorf("graph: ExactConductance on a %d-vertex core (%d vertices) exceeds the %d-core enumeration limit: %w",
			k, n, MaxExactConductance, ErrInvalidInput)
	}
	// Build the core-local CSR and effective volumes eff(i) = vol(v) + total
	// weight of v's pendant stubs (the stub vertex's own volume joins its
	// anchor's side).
	pos := make([]int, n)
	core := coreCSR{off: make([]int, k+1), eff: make([]float64, k)}
	i := 0
	for v := 0; v < n; v++ {
		if stub[v] {
			continue
		}
		pos[v] = i
		i++
	}
	entries := 0
	i = 0
	for v := 0; v < n; v++ {
		if stub[v] {
			continue
		}
		nbr, w := g.Neighbors(v)
		anchored := 0.0
		deg := 0
		for e, u := range nbr {
			if stub[u] {
				anchored += w[e]
			} else {
				deg++
			}
		}
		core.off[i+1] = deg
		core.eff[i] = g.vol[v] + anchored
		entries += deg
		i++
	}
	for i := 0; i < k; i++ {
		core.off[i+1] += core.off[i]
	}
	core.nbr = make([]int, entries)
	core.w = make([]float64, entries)
	fill := 0
	for v := 0; v < n; v++ {
		if stub[v] {
			continue
		}
		nbr, w := g.Neighbors(v)
		for e, u := range nbr {
			if !stub[u] {
				core.nbr[fill] = pos[u]
				core.w[fill] = w[e]
				fill++
			}
		}
	}
	total := 0.0
	for _, e := range core.eff {
		total += e
	}
	return enumerateCoreCuts(&core, total, k < n), nil
}

// markStubs flags the pendant stub vertices of g in the caller-provided
// slice (length n) and returns it. A vertex is a stub when it has exactly
// one neighbor and that neighbor is not itself classified as a stub: for an
// isolated edge (both endpoints degree 1) the higher-numbered endpoint is
// the stub, so every stub's anchor is a core vertex.
func (g *Graph) markStubs(stub []bool) []bool {
	for v := range stub {
		if g.Degree(v) != 1 {
			stub[v] = false
			continue
		}
		u := g.adj[g.off[v]]
		stub[v] = g.Degree(u) > 1 || u < v
	}
	return stub
}

// CoreSize returns the number of non-stub vertices of g — the size that
// decides ExactConductance eligibility against MaxExactConductance.
func (g *Graph) CoreSize() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	stub := g.markStubs(make([]bool, n))
	k := 0
	for _, s := range stub {
		if !s {
			k++
		}
	}
	return k
}

// ExactConductanceBruteForce computes the conductance of g by enumerating
// every cut of every vertex — including the stub placements that
// ExactConductance resolves in closed form. It is kept as the differential
// oracle for the stub-aware certifier (the two agree bit-for-bit whenever
// all edge weights, and hence all cut and volume sums, are exactly
// representable, e.g. integer weights) and for tests. It returns +Inf for
// graphs with fewer than 2 vertices, and an error wrapping ErrInvalidInput
// beyond MaxExactConductance total vertices.
//
// Enumeration fixes vertex 0 on the "outside" (cuts are symmetric) and walks
// the remaining 2^(n−1) subsets in Gray-code order, maintaining the cut
// weight and the set volume incrementally.
func (g *Graph) ExactConductanceBruteForce() (float64, error) {
	n := g.N()
	if n < 2 {
		return math.Inf(1), nil
	}
	if n > MaxExactConductance {
		return 0, fmt.Errorf("graph: ExactConductanceBruteForce on %d vertices exceeds the %d-vertex enumeration limit: %w",
			n, MaxExactConductance, ErrInvalidInput)
	}
	totalVol := g.TotalVol()
	in := make([]bool, n)
	cut, volS := 0.0, 0.0
	best := math.Inf(1)
	// Gray code over vertices 1..n−1: subset(i) and subset(i+1) differ in
	// exactly bit tz(i+1).
	steps := uint64(1) << uint(n-1)
	for i := uint64(1); i < steps; i++ {
		v := bits.TrailingZeros64(i) + 1 // vertex to flip (1-based over vertices 1..n−1)
		nbr, w := g.Neighbors(v)
		if !in[v] {
			for k, u := range nbr {
				if in[u] {
					cut -= w[k]
				} else {
					cut += w[k]
				}
			}
			in[v] = true
			volS += g.vol[v]
		} else {
			in[v] = false
			volS -= g.vol[v]
			for k, u := range nbr {
				if in[u] {
					cut += w[k]
				} else {
					cut -= w[k]
				}
			}
		}
		den := math.Min(volS, totalVol-volS)
		if den > 0 {
			if s := cut / den; s < best {
				best = s
			}
		}
	}
	return best, nil
}

// ConductanceUpperBound returns an upper bound on the conductance of g
// obtained from sweep cuts over several deterministic vertex orders (BFS
// orders from a few roots and a volume order). It is exact for many small
// graphs and always ≥ the true conductance.
func (g *Graph) ConductanceUpperBound() float64 {
	n := g.N()
	if n < 2 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	try := func(perm []int) {
		if s, _ := g.SweepCut(perm); s < best {
			best = s
		}
	}
	roots := []int{0, n / 2, n - 1}
	for _, r := range roots {
		order, _ := g.BFS(r)
		if len(order) == n {
			try(order)
		}
	}
	// Order by increasing volume: light vertices peel off first.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return g.vol[perm[i]] < g.vol[perm[j]] })
	try(perm)
	return best
}
