// Package graph provides weighted undirected graphs in compressed sparse row
// (CSR) form, together with the volume/cut/conductance machinery used
// throughout the decomposition and preconditioning code.
//
// Terminology follows Koutis & Miller (SPAA 2008):
//
//   - vol(v) is the total weight incident to vertex v.
//   - cap(U, V) is the total weight of edges with one endpoint in U and the
//     other in V.
//   - out(S) is cap(S, V−S).
//   - The sparsity of a cut (S, V−S) is out(S)/min(vol(S), vol(V−S)) and the
//     conductance of a graph is the minimum sparsity over all cuts.
//   - The closure of a cluster C is the graph induced by C plus one degree-1
//     stub vertex per edge leaving C.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected weighted edge. The orientation of (U, V) carries no
// meaning.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an immutable weighted undirected graph stored in CSR form. Every
// edge appears twice in the adjacency arrays, once per endpoint. Weights are
// strictly positive and self-loops are not representable.
type Graph struct {
	off []int     // len n+1; adjacency offsets
	adj []int     // len 2m; neighbor ids
	w   []float64 // len 2m; edge weights, parallel to adj
	vol []float64 // len n; total incident weight per vertex
}

// NewFromEdges builds a graph on n vertices from an edge list. Parallel edges
// are merged by summing their weights. It returns an error for out-of-range
// endpoints, self-loops, and non-positive or non-finite weights.
func NewFromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d: %w", n, ErrBadDimension)
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d): %w", e.U, e.V, n, ErrBadDimension)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e.U)
		}
		if !(e.W > 0) || math.IsInf(e.W, 0) {
			return nil, fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", e.U, e.V, e.W)
		}
	}
	merged := mergeParallel(edges)
	g := &Graph{
		off: make([]int, n+1),
		adj: make([]int, 2*len(merged)),
		w:   make([]float64, 2*len(merged)),
		vol: make([]float64, n),
	}
	for _, e := range merged {
		g.off[e.U+1]++
		g.off[e.V+1]++
	}
	for i := 0; i < n; i++ {
		g.off[i+1] += g.off[i]
	}
	fill := make([]int, n)
	copy(fill, g.off[:n])
	for _, e := range merged {
		g.adj[fill[e.U]], g.w[fill[e.U]] = e.V, e.W
		fill[e.U]++
		g.adj[fill[e.V]], g.w[fill[e.V]] = e.U, e.W
		fill[e.V]++
		g.vol[e.U] += e.W
		g.vol[e.V] += e.W
	}
	return g, nil
}

// MustFromEdges is NewFromEdges that panics on error; for tests and
// generators whose inputs are correct by construction.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := NewFromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NewFromUniqueEdges builds a graph from an edge list the caller guarantees
// to be free of duplicates (parallel edges). It skips the sort-and-merge
// pass of NewFromEdges — O(n+m) instead of O(m log m) — which matters on
// the hot construction paths of the Section 3.1 clustering. Validation of
// ranges, self-loops and weights still applies; duplicate pairs silently
// produce a multigraph, so only use this when uniqueness holds by
// construction.
func NewFromUniqueEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d: %w", n, ErrBadDimension)
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d): %w", e.U, e.V, n, ErrBadDimension)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e.U)
		}
		if !(e.W > 0) || math.IsInf(e.W, 0) {
			return nil, fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", e.U, e.V, e.W)
		}
	}
	g := &Graph{
		off: make([]int, n+1),
		adj: make([]int, 2*len(edges)),
		w:   make([]float64, 2*len(edges)),
		vol: make([]float64, n),
	}
	for _, e := range edges {
		g.off[e.U+1]++
		g.off[e.V+1]++
	}
	for i := 0; i < n; i++ {
		g.off[i+1] += g.off[i]
	}
	fill := make([]int, n)
	copy(fill, g.off[:n])
	for _, e := range edges {
		g.adj[fill[e.U]], g.w[fill[e.U]] = e.V, e.W
		fill[e.U]++
		g.adj[fill[e.V]], g.w[fill[e.V]] = e.U, e.W
		fill[e.V]++
		g.vol[e.U] += e.W
		g.vol[e.V] += e.W
	}
	return g, nil
}

func mergeParallel(edges []Edge) []Edge {
	if len(edges) == 0 {
		return nil
	}
	es := make([]Edge, len(edges))
	for i, e := range edges {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		es[i] = e
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	out := es[:1]
	for _, e := range es[1:] {
		last := &out[len(out)-1]
		if e.U == last.U && e.V == last.V {
			last.W += e.W
		} else {
			out = append(out, e)
		}
	}
	return out
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.vol) }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return g.off[v+1] - g.off[v] }

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.N(); v++ {
		if dv := g.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// Neighbors returns the neighbor ids and edge weights of v as slices backed
// by the graph's storage; callers must not modify them.
func (g *Graph) Neighbors(v int) ([]int, []float64) {
	return g.adj[g.off[v]:g.off[v+1]], g.w[g.off[v]:g.off[v+1]]
}

// Vol returns the total weight incident to v.
func (g *Graph) Vol(v int) float64 { return g.vol[v] }

// TotalVol returns the sum of all vertex volumes (twice the total edge
// weight).
func (g *Graph) TotalVol() float64 {
	t := 0.0
	for _, v := range g.vol {
		t += v
	}
	return t
}

// Weight returns the weight of edge (u,v) and whether it exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	nbr, w := g.Neighbors(u)
	for i, x := range nbr {
		if x == v {
			return w[i], true
		}
	}
	return 0, false
}

// Edges returns all edges with U < V, in deterministic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.M())
	for u := 0; u < g.N(); u++ {
		nbr, w := g.Neighbors(u)
		for i, v := range nbr {
			if u < v {
				es = append(es, Edge{U: u, V: v, W: w[i]})
			}
		}
	}
	return es
}

// Bytes estimates the resident memory of the graph: the CSR offset,
// adjacency, weight and volume arrays. It is an accounting figure (used by
// the serving layer's byte-budgeted handle cache), not an exact heap
// measurement.
func (g *Graph) Bytes() int64 {
	return int64(8 * (len(g.off) + len(g.adj) + len(g.w) + len(g.vol)))
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		off: append([]int(nil), g.off...),
		adj: append([]int(nil), g.adj...),
		w:   append([]float64(nil), g.w...),
		vol: append([]float64(nil), g.vol...),
	}
	return c
}

// Reweight returns a copy of g whose edge weights are f(u, v, w) for each
// edge; f must return a strictly positive weight and must be symmetric in
// (u, v) in the sense that it only depends on the unordered pair.
func (g *Graph) Reweight(f func(u, v int, w float64) float64) (*Graph, error) {
	es := g.Edges()
	for i := range es {
		es[i].W = f(es[i].U, es[i].V, es[i].W)
	}
	return NewFromEdges(g.N(), es)
}
