package graph

import (
	"math"
	"math/rand"
	"testing"
)

func buildAll(t *testing.T, n int, es []Edge, policy MergePolicy) *Graph {
	t.Helper()
	b, err := NewBuilder(n, policy)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		if err := b.Add(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func graphsIdentical(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		an, aw := a.Neighbors(v)
		bn, bw := b.Neighbors(v)
		if len(an) != len(bn) {
			return false
		}
		for i := range an {
			if an[i] != bn[i] || aw[i] != bw[i] {
				return false
			}
		}
		if a.Vol(v) != b.Vol(v) {
			return false
		}
	}
	return true
}

// The builder must be bit-identical to NewFromEdges on duplicate-free input:
// same neighbor order, same weights, same volumes — this is what makes the
// streaming readers a drop-in replacement.
func TestBuilderMatchesNewFromEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		seen := make(map[[2]int]bool)
		var es []Edge
		m := rng.Intn(3 * n)
		for len(es) < m {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			key := [2]int{u, v}
			if u > v {
				key = [2]int{v, u}
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			es = append(es, Edge{U: u, V: v, W: math.Exp(rng.NormFloat64())})
		}
		want, err := NewFromEdges(n, es)
		if err != nil {
			t.Fatal(err)
		}
		got := buildAll(t, n, es, MergeSum)
		if !graphsIdentical(want, got) {
			t.Fatalf("trial %d: builder output differs from NewFromEdges", trial)
		}
	}
}

// Duplicate edges merge per policy, and both directions see the same weight.
func TestBuilderMergePolicies(t *testing.T) {
	es := []Edge{
		{U: 0, V: 1, W: 2},
		{U: 1, V: 0, W: 3},
		{U: 1, V: 2, W: 1},
	}
	sum := buildAll(t, 3, es, MergeSum)
	if w, _ := sum.Weight(0, 1); w != 5 {
		t.Errorf("MergeSum: w(0,1) = %v, want 5", w)
	}
	if w, _ := sum.Weight(1, 0); w != 5 {
		t.Errorf("MergeSum: w(1,0) = %v, want 5 (asymmetric merge)", w)
	}
	maxg := buildAll(t, 3, es, MergeMax)
	if w, _ := maxg.Weight(0, 1); w != 3 {
		t.Errorf("MergeMax: w(0,1) = %v, want 3", w)
	}
	if sum.M() != 2 || maxg.M() != 2 {
		t.Errorf("edge counts: sum %d, max %d, want 2", sum.M(), maxg.M())
	}
	// MergeSum semantics must match NewFromEdges' duplicate handling.
	want, err := NewFromEdges(3, es)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsIdentical(want, sum) {
		t.Error("MergeSum duplicate merge differs from NewFromEdges")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(-1, MergeSum); err == nil {
		t.Error("negative n accepted")
	}
	b, err := NewBuilder(4, MergeSum)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(0, 4, 1); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := b.Add(2, 2, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.Add(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := b.Add(0, 1, math.Inf(1)); err == nil {
		t.Error("infinite weight accepted")
	}
	if err := b.Add(0, 1, math.NaN()); err == nil {
		t.Error("NaN weight accepted")
	}
}

// The degree array grows with the largest id actually referenced — a builder
// declared for a huge n must cost nothing until edges arrive. This is the
// property the hardened parsers rely on against hostile size declarations.
func TestBuilderLazyAllocation(t *testing.T) {
	b, err := NewBuilder(1<<26, MergeSum)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.BufferedBytes(); got != 0 {
		t.Errorf("fresh builder buffers %d bytes, want 0", got)
	}
	if err := b.Add(3, 7, 1); err != nil {
		t.Fatal(err)
	}
	// One chunk plus eight tracked degrees — nowhere near 8*2^26.
	if got := b.BufferedBytes(); got > 4<<20 {
		t.Errorf("builder buffers %d bytes after one edge", got)
	}
	if b.Count() != 1 {
		t.Errorf("Count = %d", b.Count())
	}
}

// An empty builder finishes into an edgeless graph with every declared
// vertex isolated.
func TestBuilderEmpty(t *testing.T) {
	g := buildAll(t, 5, nil, MergeSum)
	if g.N() != 5 || g.M() != 0 {
		t.Errorf("n=%d m=%d, want 5 and 0", g.N(), g.M())
	}
}

// Enough edges to cross several chunk boundaries.
func TestBuilderManyChunks(t *testing.T) {
	n := 1000
	var es []Edge
	for i := 0; i+1 < n; i++ {
		for r := 0; r < 150; r++ {
			es = append(es, Edge{U: i, V: i + 1, W: 1})
		}
	}
	g := buildAll(t, n, es, MergeSum)
	if g.M() != n-1 {
		t.Fatalf("m = %d, want %d merged edges", g.M(), n-1)
	}
	if w, _ := g.Weight(0, 1); w != 150 {
		t.Errorf("merged weight %v, want 150", w)
	}
}
