package graph

import "hcd/internal/obs"

// Publish accumulates the certification work counters into the registry
// under the hcd_cert_* namespace. The counters are deterministic functions
// of the certified clusters (see the CertStats doc), so published totals
// are identical at any GOMAXPROCS. Nil registries are no-ops.
func (s CertStats) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("hcd_cert_cores_total").Add(s.Cores)
	r.Counter("hcd_cert_stubs_total").Add(s.Stubs)
	r.Counter("hcd_cert_subsets_total").Add(s.Subsets)
	r.Counter("hcd_cert_bounds_total").Add(s.Bounds)
}
