package graph

import "math"

// VolSet returns the total volume of the vertex set S (given as vertex ids).
func (g *Graph) VolSet(s []int) float64 {
	t := 0.0
	for _, v := range s {
		t += g.vol[v]
	}
	return t
}

// Out returns out(S) = cap(S, V−S): the total weight of edges with exactly
// one endpoint in S.
func (g *Graph) Out(s []int) float64 {
	in := make([]bool, g.N())
	for _, v := range s {
		in[v] = true
	}
	t := 0.0
	for _, v := range s {
		nbr, w := g.Neighbors(v)
		for i, u := range nbr {
			if !in[u] {
				t += w[i]
			}
		}
	}
	return t
}

// Cap returns cap(U, V): the total weight of edges between the disjoint
// vertex sets U and V. Overlapping sets yield an unspecified result.
func (g *Graph) Cap(us, vs []int) float64 {
	inV := make([]bool, g.N())
	for _, v := range vs {
		inV[v] = true
	}
	t := 0.0
	for _, u := range us {
		nbr, w := g.Neighbors(u)
		for i, x := range nbr {
			if inV[x] {
				t += w[i]
			}
		}
	}
	return t
}

// CutSparsity returns the sparsity out(S)/min(vol(S), vol(V−S)) of the cut
// (S, V−S). It returns +Inf for trivial cuts (S empty or S = V) and for cuts
// whose smaller side has zero volume.
func (g *Graph) CutSparsity(s []int) float64 {
	volS := g.VolSet(s)
	volRest := g.TotalVol() - volS
	den := math.Min(volS, volRest)
	if den <= 0 {
		return math.Inf(1)
	}
	return g.Out(s) / den
}

// SweepCut orders vertices by score and returns the best prefix cut: the
// minimum sparsity over cuts {π(0..k)} for k = 0..n−2, together with the
// achieving prefix. It is an upper bound on the conductance and the standard
// rounding step for spectral partitioning. perm must be a permutation of the
// vertex ids (typically vertices sorted by a Fiedler-style score).
func (g *Graph) SweepCut(perm []int) (float64, []int) {
	n := g.N()
	if len(perm) != n || n < 2 {
		return math.Inf(1), nil
	}
	in := make([]bool, n)
	totalVol := g.TotalVol()
	cut, volS := 0.0, 0.0
	best, bestK := math.Inf(1), -1
	for k := 0; k < n-1; k++ {
		v := perm[k]
		nbr, w := g.Neighbors(v)
		for i, u := range nbr {
			if in[u] {
				cut -= w[i]
			} else {
				cut += w[i]
			}
		}
		in[v] = true
		volS += g.vol[v]
		den := math.Min(volS, totalVol-volS)
		if den > 0 {
			if s := cut / den; s < best {
				best, bestK = s, k
			}
		}
	}
	if bestK < 0 {
		return math.Inf(1), nil
	}
	return best, append([]int(nil), perm[:bestK+1]...)
}
