package graph

// Raw CSR access for the snapshot codec (internal/gio). A Graph is immutable
// and its CSR arrays fully determine it, so persistence serializes the arrays
// verbatim and reconstruction adopts them after validation — no edge-list
// round trip, no O(m log m) merge pass.

import (
	"fmt"
	"math"
)

// CSR exposes the graph's raw arrays: off (len n+1, adjacency offsets), adj
// (len 2m, neighbor ids) and w (len 2m, weights parallel to adj). The slices
// are backed by the graph's own storage — callers must treat them as
// read-only.
func (g *Graph) CSR() (off []int, adj []int, w []float64) {
	return g.off, g.adj, g.w
}

// NewFromCSR adopts CSR arrays as a graph, taking ownership of the slices.
// It validates the structural invariants a corrupted or hostile encoding
// could break — offset monotonicity and bounds, neighbor ranges, self-loops,
// finite positive weights — and recomputes the volume array. Symmetry (every
// edge appearing once per endpoint with equal weight) is the caller's
// contract: the snapshot codec guards it with checksums rather than an
// O(m·d) verification pass.
func NewFromCSR(off []int, adj []int, w []float64) (*Graph, error) {
	if len(off) < 1 || off[0] != 0 {
		return nil, fmt.Errorf("graph: CSR offsets must start at 0: %w", ErrInvalidInput)
	}
	n := len(off) - 1
	if len(adj) != len(w) {
		return nil, fmt.Errorf("graph: CSR adjacency/weight length mismatch %d vs %d: %w", len(adj), len(w), ErrInvalidInput)
	}
	if off[n] != len(adj) {
		return nil, fmt.Errorf("graph: CSR final offset %d does not match adjacency length %d: %w", off[n], len(adj), ErrInvalidInput)
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: CSR adjacency length %d is odd: %w", len(adj), ErrInvalidInput)
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, fmt.Errorf("graph: CSR offsets decrease at vertex %d: %w", v, ErrInvalidInput)
		}
	}
	g := &Graph{off: off, adj: adj, w: w, vol: make([]float64, n)}
	for v := 0; v < n; v++ {
		for i := off[v]; i < off[v+1]; i++ {
			u := adj[i]
			if u < 0 || u >= n {
				return nil, fmt.Errorf("graph: CSR neighbor %d of vertex %d out of range [0,%d): %w", u, v, n, ErrInvalidInput)
			}
			if u == v {
				return nil, fmt.Errorf("graph: CSR self-loop at vertex %d: %w", v, ErrInvalidInput)
			}
			if !(w[i] > 0) || math.IsInf(w[i], 0) {
				return nil, fmt.Errorf("graph: CSR weight %v on edge (%d,%d) invalid: %w", w[i], v, u, ErrInvalidInput)
			}
			g.vol[v] += w[i]
		}
	}
	return g, nil
}
