package graph

import "fmt"

// ClosureBuilder builds closures and induced subgraphs of clusters of one
// host graph into reusable storage: membership is tracked with an
// epoch-stamped index array instead of a per-call map, and the CSR arrays of
// the produced graph are reused across calls. The evaluate fan-out builds
// one closure per cluster; with a per-goroutine builder those builds stop
// allocating entirely once the scratch has grown to the largest cluster.
//
// The *Graph returned by Closure and InducedSubgraph aliases the builder's
// buffers and is valid only until the next call on the same builder; callers
// that need to retain it must Clone it. A ClosureBuilder is not safe for
// concurrent use.
type ClosureBuilder struct {
	g     *Graph
	stamp []uint64 // per host vertex: epoch when last made a member
	pos   []int    // host vertex -> local index, valid when stamp matches
	epoch uint64

	out  Graph // reused output graph; slice headers re-point into the scratch below
	back []int
}

// NewClosureBuilder returns a builder for clusters of g.
func NewClosureBuilder(g *Graph) *ClosureBuilder {
	return &ClosureBuilder{
		g:     g,
		stamp: make([]uint64, g.N()),
		pos:   make([]int, g.N()),
	}
}

// mark stamps the membership of s and fills pos; it returns an error for
// duplicate or out-of-range vertices (a malformed cluster, mirroring
// Graph.Closure).
func (b *ClosureBuilder) mark(s []int, op string) error {
	b.epoch++
	for i, v := range s {
		if v < 0 || v >= b.g.N() {
			return fmt.Errorf("graph: %s vertex %d out of range [0,%d): %w", op, v, b.g.N(), ErrInvalidInput)
		}
		if b.stamp[v] == b.epoch {
			return fmt.Errorf("graph: duplicate vertex %d in %s: %w", v, op, ErrInvalidInput)
		}
		b.stamp[v] = b.epoch
		b.pos[v] = i
	}
	return nil
}

// Closure returns the closure graph of cluster s — the induced subgraph on s
// plus one degree-1 stub per boundary edge (the G°ᵢ of Section 2) — along
// with the core's back-mapping to host vertex ids. Equivalent to
// Graph.Closure, but allocation-free once the builder's scratch has grown.
// The result aliases the builder and is valid until the next call.
func (b *ClosureBuilder) Closure(s []int) (*Graph, []int, error) {
	if err := b.mark(s, "Closure"); err != nil {
		return nil, nil, err
	}
	g := b.g
	k := len(s)
	// Pass 1: closure sizes. Every host edge of a member survives (core-core
	// edges keep both endpoints, boundary edges become stubs), so a core
	// vertex's closure degree equals its host degree; each stub adds one
	// vertex with one adjacency entry.
	entries, stubs := 0, 0
	for _, v := range s {
		nbr, _ := g.Neighbors(v)
		entries += len(nbr)
		for _, u := range nbr {
			if b.stamp[u] != b.epoch {
				stubs++
			}
		}
	}
	n := k + stubs
	b.out.off = growInts(b.out.off, n+1)
	b.out.adj = growInts(b.out.adj, entries+stubs)
	b.out.w = growFloats(b.out.w, entries+stubs)
	b.out.vol = growFloats(b.out.vol, n)
	b.back = growInts(b.back, k)
	off := b.out.off
	off[0] = 0
	for i, v := range s {
		off[i+1] = off[i] + g.Degree(v)
		b.back[i] = v
	}
	for j := 0; j < stubs; j++ {
		off[k+j+1] = off[k+j] + 1
	}
	// Pass 2: fill adjacency in host CSR order; stubs are numbered in
	// encounter order, matching Graph.Closure.
	next := k
	for i, v := range s {
		nbr, w := g.Neighbors(v)
		fill := off[i]
		for e, u := range nbr {
			if b.stamp[u] == b.epoch {
				b.out.adj[fill] = b.pos[u]
			} else {
				b.out.adj[fill] = next
				b.out.adj[off[next]] = i
				b.out.w[off[next]] = w[e]
				b.out.vol[next] = w[e]
				next++
			}
			b.out.w[fill] = w[e]
			fill++
		}
		b.out.vol[i] = g.vol[v]
	}
	return &b.out, b.back, nil
}

// InducedSubgraph returns the subgraph induced by the vertex set s together
// with the mapping back to host ids — Graph.InducedSubgraph without the
// per-call map and edge-list allocations. The result aliases the builder and
// is valid until the next call.
func (b *ClosureBuilder) InducedSubgraph(s []int) (*Graph, []int, error) {
	if err := b.mark(s, "InducedSubgraph"); err != nil {
		return nil, nil, err
	}
	g := b.g
	k := len(s)
	b.out.off = growInts(b.out.off, k+1)
	b.back = growInts(b.back, k)
	off := b.out.off
	off[0] = 0
	for i, v := range s {
		nbr, _ := g.Neighbors(v)
		deg := 0
		for _, u := range nbr {
			if b.stamp[u] == b.epoch {
				deg++
			}
		}
		off[i+1] = off[i] + deg
		b.back[i] = v
	}
	entries := off[k]
	b.out.adj = growInts(b.out.adj, entries)
	b.out.w = growFloats(b.out.w, entries)
	b.out.vol = growFloats(b.out.vol, k)
	fill := 0
	for i, v := range s {
		nbr, w := g.Neighbors(v)
		vol := 0.0
		for e, u := range nbr {
			if b.stamp[u] == b.epoch {
				b.out.adj[fill] = b.pos[u]
				b.out.w[fill] = w[e]
				vol += w[e]
				fill++
			}
		}
		b.out.vol[i] = vol
	}
	return &b.out, b.back, nil
}
