package graph

import (
	"fmt"
	"math"
	"math/bits"

	"hcd/internal/par"
)

// This file holds the stub-aware exact conductance certifier. The closure of
// a cluster C (Section 2) is the induced subgraph on C plus one degree-1
// "stub" vertex per boundary edge. A naive exact certification Gray-codes
// 2^(n−1) cuts of the whole closure, paying exponential cost in the boundary
// size even when the cluster itself is tiny. The certifier below enumerates
// only the 2^(k−1) side-assignments of the k core (cluster) vertices and
// places the stubs in closed form, which is exact by the following argument
// (proved in DESIGN.md §"Exact certification on closures"):
//
// Fix a side-assignment (P, Q) of the core with both sides non-empty, and
// write D_P, D_Q for the side volumes when every stub sits with its anchor
// (D_P = Σ_{v∈P} eff(v) with eff(v) = vol°(v) + stubweight(v)). Moving stubs
// of total weight x from P's anchors and y from Q's anchors to the opposite
// side yields a cut of value c0 + x + y over min(D_P + y − x, D_Q + x − y).
// Since min(D_P + s, D_Q − s) ≤ min(D_P, D_Q) + |s| and |y − x| ≤ x + y, the
// mediant inequality (a+t)/(b+t) ≥ min(a/b, 1) gives
//
//	sparsity ≥ min(c0/min(D_P, D_Q), 1).
//
// Cuts whose core part is trivial consist of stubs only and have sparsity
// ≥ 1, with 1 attained exactly by isolating any single stub (a stub of
// weight w always satisfies 2w ≤ vol(G°)). Hence
//
//	φ(G°) = min( min over core assignments of c0/min(D_P, D_Q),  1 if a stub exists ),
//
// and no stub subset ever needs to be enumerated: stubs on the same anchor
// collapse into the anchor's effective volume (a second multiplicity
// collapse — anchored stubs are interchangeable).

// CertStats counts the work performed by exact closure-conductance
// certification. The counters are deterministic functions of the certified
// clusters, so parallel and serial evaluations report identical values.
type CertStats struct {
	Cores   int64 // clusters certified by core side-assignment enumeration
	Stubs   int64 // boundary stubs collapsed into anchor volumes (never enumerated)
	Subsets int64 // core side-assignments visited across all certifications
	Bounds  int64 // clusters that exceeded the core limit and fell back to a sweep bound
}

// Add accumulates other into s.
func (s *CertStats) Add(other CertStats) {
	s.Cores += other.Cores
	s.Stubs += other.Stubs
	s.Subsets += other.Subsets
	s.Bounds += other.Bounds
}

// serialEnumBits is the largest core enumeration (in bits, i.e. k−1) run as
// a single sequential Gray-code walk. Larger cores are split into
// prefix-partitioned chunks enumerated via internal/par. The threshold is a
// constant — never a function of the worker count — so the certified value
// is identical on every machine and at every GOMAXPROCS.
const serialEnumBits = 16

// maxChunkBits bounds the number of prefix-partitioned chunks at 2^maxChunkBits.
const maxChunkBits = 8

// coreCSR is the scratch representation of a closure's core: core-local CSR
// adjacency of the induced (core–core) edges plus per-vertex effective
// volumes eff(i) = vol°(core i) + total anchored stub weight.
type coreCSR struct {
	off []int
	nbr []int
	w   []float64
	eff []float64
	in  []bool // serial-walk scratch, reused across certifications
}

// enumerateCoreCuts returns the minimum, over the 2^(k−1) non-trivial core
// side-assignments with stubs glued to their anchors, of cut/min(vol, T−vol),
// folding in the constant-1 candidate realized by single-stub cuts when
// hasStub is set. total is the closure's total volume Σ eff. It returns +Inf
// when no cut with a positive smaller side exists (k < 2 and no stub).
func enumerateCoreCuts(c *coreCSR, total float64, hasStub bool) float64 {
	k := len(c.eff)
	best := math.Inf(1)
	if hasStub {
		best = 1
	}
	if k < 2 {
		return best
	}
	nbits := k - 1
	if nbits <= serialEnumBits {
		c.in = growBools(c.in, k)
		if v := enumCoreRange(c, total, c.in, 0, uint64(1)<<uint(nbits)); v < best {
			best = v
		}
		return best
	}
	// Prefix-partitioned parallel enumeration: fix the top p Gray-index bits
	// per chunk, rebuild the incremental state at each chunk boundary in
	// O(k + m°) and walk 2^(nbits−p) flips inside. Chunk boundaries depend
	// only on k, so the result is bit-identical at any worker count.
	p := nbits - serialEnumBits
	if p > maxChunkBits {
		p = maxChunkBits
	}
	chunks := 1 << uint(p)
	size := uint64(1) << uint(nbits-p)
	partial := make([]float64, chunks)
	par.For(chunks, 1, func(lo, hi int) {
		in := make([]bool, k)
		for i := lo; i < hi; i++ {
			partial[i] = enumCoreRange(c, total, in, uint64(i)*size, uint64(i+1)*size)
		}
	})
	for _, v := range partial {
		if v < best {
			best = v
		}
	}
	return best
}

// enumCoreRange walks Gray-code subset indices [start, end) over core
// vertices 1..k−1 (vertex 0 is fixed outside; bit j ↔ vertex j+1),
// maintaining the core cut weight and the in-side effective volume
// incrementally, and returns the minimum sparsity seen. in is caller scratch
// of length k; its contents are overwritten.
func enumCoreRange(c *coreCSR, total float64, in []bool, start, end uint64) float64 {
	// Rebuild the state of subset(start) = start ^ (start>>1) from scratch.
	code := start ^ (start >> 1)
	for j := range in {
		in[j] = false
	}
	for j := 0; j < len(in)-1; j++ {
		if code&(uint64(1)<<uint(j)) != 0 {
			in[j+1] = true
		}
	}
	cut, volS := 0.0, 0.0
	for v := 1; v < len(in); v++ {
		if !in[v] {
			continue
		}
		volS += c.eff[v]
		for e := c.off[v]; e < c.off[v+1]; e++ {
			if !in[c.nbr[e]] {
				cut += c.w[e]
			}
		}
	}
	best := math.Inf(1)
	consider := func() {
		den := math.Min(volS, total-volS)
		if den > 0 {
			if s := cut / den; s < best {
				best = s
			}
		}
	}
	if start > 0 {
		consider()
	}
	for i := start + 1; i < end; i++ {
		v := bits.TrailingZeros64(i) + 1
		nb, w := c.nbr[c.off[v]:c.off[v+1]], c.w[c.off[v]:c.off[v+1]]
		if !in[v] {
			for e, u := range nb {
				if in[u] {
					cut -= w[e]
				} else {
					cut += w[e]
				}
			}
			in[v] = true
			volS += c.eff[v]
		} else {
			in[v] = false
			volS -= c.eff[v]
			for e, u := range nb {
				if in[u] {
					cut += w[e]
				} else {
					cut -= w[e]
				}
			}
		}
		consider()
	}
	return best
}

// Certifier certifies the exact closure conductance of clusters of one host
// graph without materializing the closures: the core–core edges are gathered
// into reusable scratch, boundary edges collapse into per-anchor effective
// volumes, and the 2^(k−1) core side-assignments are enumerated by
// enumerateCoreCuts. A Certifier is not safe for concurrent use; create one
// per goroutine (they are cheap: two O(n) arrays plus core-sized scratch).
type Certifier struct {
	g     *Graph
	stamp []uint64 // per host vertex: epoch when last made a member
	pos   []int    // host vertex -> core-local index, valid when stamp matches
	epoch uint64
	core  coreCSR

	// Stats accumulates certification counters across calls.
	Stats CertStats
}

// NewCertifier returns a Certifier for clusters of g.
func NewCertifier(g *Graph) *Certifier {
	return &Certifier{
		g:     g,
		stamp: make([]uint64, g.N()),
		pos:   make([]int, g.N()),
	}
}

// ClusterPhi returns the exact conductance of the closure G° of cluster s —
// bit-identical to materializing the closure with Graph.Closure and running
// the brute-force enumeration, at 2^(k−1) cost in the core size k = len(s)
// instead of 2^(n°−1) in the closure size. Clusters larger than
// MaxExactConductance, duplicate members, and out-of-range members return an
// error wrapping ErrInvalidInput.
func (c *Certifier) ClusterPhi(s []int) (float64, error) {
	g := c.g
	k := len(s)
	if k == 0 {
		return math.Inf(1), nil
	}
	if k > MaxExactConductance {
		return 0, fmt.Errorf("graph: ClusterPhi on a %d-vertex core exceeds the %d-core enumeration limit: %w",
			k, MaxExactConductance, ErrInvalidInput)
	}
	c.epoch++
	for i, v := range s {
		if v < 0 || v >= g.N() {
			return 0, fmt.Errorf("graph: ClusterPhi vertex %d out of range [0,%d): %w", v, g.N(), ErrInvalidInput)
		}
		if c.stamp[v] == c.epoch {
			return 0, fmt.Errorf("graph: duplicate vertex %d in ClusterPhi: %w", v, ErrInvalidInput)
		}
		c.stamp[v] = c.epoch
		c.pos[v] = i
	}
	c.core.off = growInts(c.core.off, k+1)
	c.core.eff = growFloats(c.core.eff, k)
	off, eff := c.core.off, c.core.eff
	// Pass 1: core degrees and effective volumes. eff(i) = vol°(v) +
	// anchored stub weight = vol_G(v) + boundary(v), since the closure keeps
	// every edge of v (in-cluster edges as core edges, boundary edges as
	// stub edges).
	for i := range off {
		off[i] = 0
	}
	stubs := int64(0)
	for i, v := range s {
		nbr, w := g.Neighbors(v)
		boundary := 0.0
		deg := 0
		for e, u := range nbr {
			if c.stamp[u] == c.epoch {
				deg++
			} else {
				boundary += w[e]
				stubs++
			}
		}
		off[i+1] = deg
		eff[i] = g.vol[v] + boundary
	}
	for i := 0; i < k; i++ {
		off[i+1] += off[i]
	}
	entries := off[k]
	c.core.nbr = growInts(c.core.nbr, entries)
	c.core.w = growFloats(c.core.w, entries)
	// Pass 2: fill the core-local CSR in host adjacency order.
	fill := 0
	for _, v := range s {
		nbr, w := g.Neighbors(v)
		for e, u := range nbr {
			if c.stamp[u] == c.epoch {
				c.core.nbr[fill] = c.pos[u]
				c.core.w[fill] = w[e]
				fill++
			}
		}
	}
	total := 0.0
	for i := 0; i < k; i++ {
		total += eff[i]
	}
	c.Stats.Cores++
	c.Stats.Stubs += stubs
	c.Stats.Subsets += int64(uint64(1)<<uint(k-1)) - 1
	return enumerateCoreCuts(&c.core, total, stubs > 0), nil
}

// growInts returns s resized to n, reusing capacity.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// growFloats returns s resized to n, reusing capacity.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// growBools returns s resized to n, reusing capacity.
func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}
