package graph

// BFS performs a breadth-first search from root and returns the visit order
// and the parent of each visited vertex (−1 for the root and for unreached
// vertices). The order contains only vertices reachable from root.
func (g *Graph) BFS(root int) (order []int, parent []int) {
	n := g.N()
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	seen := make([]bool, n)
	order = make([]int, 0, n)
	queue := []int{root}
	seen[root] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		nbr, _ := g.Neighbors(v)
		for _, u := range nbr {
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	return order, parent
}

// Components labels each vertex with a connected-component id in [0, k) and
// returns the labels and the component count k.
func (g *Graph) Components() (label []int, k int) {
	n := g.N()
	label = make([]int, n)
	for i := range label {
		label[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = k
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nbr, _ := g.Neighbors(v)
			for _, u := range nbr {
				if label[u] < 0 {
					label[u] = k
					stack = append(stack, u)
				}
			}
		}
		k++
	}
	return label, k
}

// Connected reports whether g is connected. The empty graph and single
// vertices count as connected.
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	_, k := g.Components()
	return k == 1
}

// IsForest reports whether g contains no cycles.
func (g *Graph) IsForest() bool {
	_, k := g.Components()
	return g.M() == g.N()-k
}

// IsTree reports whether g is connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.N() >= 1 && g.M() == g.N()-1 && g.Connected()
}
