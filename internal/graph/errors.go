package graph

import "errors"

// Sentinel errors shared across the solver stack. They are re-exported from
// the root hcd package so callers can errors.Is against one identity instead
// of string-matching messages.
var (
	// ErrBadDimension marks size mismatches: negative vertex counts,
	// out-of-range edge endpoints, or vectors whose length disagrees with
	// an operator's dimension.
	ErrBadDimension = errors.New("dimension mismatch")

	// ErrDisconnected marks operations that require a connected graph
	// (e.g. effective-resistance queries).
	ErrDisconnected = errors.New("graph not connected")

	// ErrInvalidInput marks caller-supplied arguments that violate an
	// operation's documented preconditions: duplicate or out-of-range
	// vertices in a cluster handed to Closure, a graph too large for
	// ExactConductance's cut enumeration. Internal invariant violations
	// still panic; only caller-reachable misuse returns this sentinel.
	ErrInvalidInput = errors.New("invalid input")
)
