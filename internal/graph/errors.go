package graph

import "errors"

// Sentinel errors shared across the solver stack. They are re-exported from
// the root hcd package so callers can errors.Is against one identity instead
// of string-matching messages.
var (
	// ErrBadDimension marks size mismatches: negative vertex counts,
	// out-of-range edge endpoints, or vectors whose length disagrees with
	// an operator's dimension.
	ErrBadDimension = errors.New("dimension mismatch")

	// ErrDisconnected marks operations that require a connected graph
	// (e.g. effective-resistance queries).
	ErrDisconnected = errors.New("graph not connected")
)
