package graph

import (
	"math/rand"
	"testing"
)

func shardTestGraph(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool)
	es := make([]Edge, 0, m)
	for len(es) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		es = append(es, Edge{U: u, V: v, W: 1 + rng.Float64()})
	}
	return MustFromEdges(n, es)
}

func TestPartitionShardsTiling(t *testing.T) {
	g := shardTestGraph(t, 200, 600, 1)
	for _, k := range []int{1, 2, 3, 7, 8, 199, 200, 500} {
		sh := PartitionShards(g, k)
		want := k
		if want > g.N() {
			want = g.N()
		}
		if len(sh) != want {
			t.Fatalf("k=%d: got %d shards, want %d", k, len(sh), want)
		}
		at := 0
		for i, s := range sh {
			if s.Lo() != at {
				t.Fatalf("k=%d: shard %d starts at %d, want %d", k, i, s.Lo(), at)
			}
			if s.Len() <= 0 {
				t.Fatalf("k=%d: shard %d is empty", k, i)
			}
			at = s.Hi()
		}
		if at != g.N() {
			t.Fatalf("k=%d: shards cover [0,%d), want [0,%d)", k, at, g.N())
		}
	}
	if sh := PartitionShards(MustFromEdges(0, nil), 4); sh != nil {
		t.Errorf("empty graph: got %d shards, want none", len(sh))
	}
}

func TestPartitionShardsBalance(t *testing.T) {
	// A uniform random graph has near-uniform adjacency mass, so an 8-way
	// split should put roughly 1/8 of the half-edges in each shard.
	g := shardTestGraph(t, 4000, 16000, 2)
	sh := PartitionShards(g, 8)
	mass := make([]int, len(sh))
	total := 0
	for i, s := range sh {
		internal, boundary := s.InternalEdges()
		mass[i] = 2*internal + boundary
		total += mass[i]
	}
	for i := range sh {
		if mass[i] < total/16 || mass[i] > total/4 {
			t.Errorf("shard %d holds %d/%d half-edge mass, far from balanced", i, mass[i], total)
		}
	}
}

func TestShardViews(t *testing.T) {
	g := shardTestGraph(t, 100, 400, 3)
	sh := PartitionShards(g, 4)
	totalInternal, totalBoundary := 0, 0
	for _, s := range sh {
		bd := 0
		for v := s.Lo(); v < s.Hi(); v++ {
			if !s.Contains(v) {
				t.Fatalf("shard does not contain its own vertex %d", v)
			}
			if got := s.Global(s.Local(v)); got != v {
				t.Fatalf("Local/Global round-trip: %d -> %d", v, got)
			}
			nbr, w := s.Neighbors(v)
			if len(nbr) != len(w) {
				t.Fatalf("Neighbors(%d) length mismatch", v)
			}
			bd += s.BoundaryDegree(v)
		}
		internal, boundary := s.InternalEdges()
		if boundary != bd {
			t.Fatalf("InternalEdges boundary = %d, per-vertex BoundaryDegree sum = %d", boundary, bd)
		}
		if 2*internal+boundary != countHalfEdges(g, s) {
			t.Fatalf("shard mass %d, recount %d", 2*internal+boundary, countHalfEdges(g, s))
		}
		totalInternal += internal
		totalBoundary += boundary
	}
	if totalInternal+totalBoundary/2 != g.M() {
		t.Fatalf("edge accounting: %d internal + %d boundary half-edges vs m=%d", totalInternal, totalBoundary, g.M())
	}
	if _, err := NewShard(g, 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewShard(g, -1, 5); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := NewShard(g, 0, g.N()+1); err == nil {
		t.Error("hi past n accepted")
	}
}

func countHalfEdges(g *Graph, s Shard) int {
	c := 0
	for v := s.Lo(); v < s.Hi(); v++ {
		nbr, _ := g.Neighbors(v)
		c += len(nbr)
	}
	return c
}
