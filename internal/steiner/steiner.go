// Package steiner implements the Steiner-graph preconditioners of Section 3.
// Given a decomposition P of a graph A, Definition 3.1 attaches to each
// cluster Vi a star Ti whose root ri connects to every u ∈ Vi with weight
// vol(u), and joins the roots by the quotient graph Q with
// w(ri, rj) = cap(Vi, Vj): the Steiner graph S_P = Q + Σ Ti.
//
// Gremban showed preconditioning with S_P is equivalent to preconditioning
// with its Schur complement B = D − V(Q+D_Q)⁻¹Vᵀ on the original vertices.
// Eliminating the leaf block analytically collapses the whole apply to
//
//	B⁺ r = D⁻¹ r + R Q⁺ (Rᵀ r)
//
// — one diagonal scale, one restriction, a quotient Laplacian solve, and one
// prolongation. This is the "weighted cluster-wise sums" remark (Remark 2)
// and the reason the preconditioner is embarrassingly parallel to apply.
package steiner

import (
	"fmt"

	"hcd/internal/decomp"
	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/par"
	"hcd/internal/solver"
)

// Options configures the quotient solve inside the preconditioner.
type Options struct {
	// DirectLimit is the largest quotient size solved by dense Cholesky;
	// larger quotients fall back to an inner Jacobi-PCG solve.
	DirectLimit int
	// InnerTol and InnerMaxIter bound the fallback inner solve.
	InnerTol     float64
	InnerMaxIter int
}

// DefaultOptions uses a 2500-vertex dense direct limit.
func DefaultOptions() Options {
	return Options{DirectLimit: 2500, InnerTol: 1e-10, InnerMaxIter: 2000}
}

// Preconditioner applies B⁺ for the Steiner graph of a decomposition.
type Preconditioner struct {
	n, m   int
	assign []int
	dInv   []float64
	qSolve func(dst, r []float64)
	// order lists vertices sorted by cluster and start[c] delimits cluster
	// c's segment, so the restriction Rᵀr is a conflict-free segmented sum
	// (the "weighted cluster-wise sums" of Remark 2, run across cores).
	order, start []int
	// scratch
	rq, yq []float64
	// Quotient is the quotient graph (exported for hierarchies/inspection).
	Quotient *graph.Graph
}

// New builds the Steiner preconditioner for the graph underlying d.
func New(d *decomp.Decomposition, opt Options) (*Preconditioner, error) {
	g := d.G
	n := g.N()
	if len(d.Assign) != n {
		return nil, fmt.Errorf("steiner: decomposition does not match graph")
	}
	q := g.Contract(d.Assign, d.Count)
	p := &Preconditioner{
		n: n, m: d.Count, assign: d.Assign,
		dInv:     make([]float64, n),
		rq:       make([]float64, d.Count),
		yq:       make([]float64, d.Count),
		Quotient: q,
	}
	for v := 0; v < n; v++ {
		if vol := g.Vol(v); vol > 0 {
			p.dInv[v] = 1 / vol
		}
	}
	// Counting sort of vertices by cluster for the segmented restriction.
	p.start = make([]int, d.Count+1)
	for _, c := range d.Assign {
		p.start[c+1]++
	}
	for c := 0; c < d.Count; c++ {
		p.start[c+1] += p.start[c]
	}
	p.order = make([]int, n)
	fill := append([]int(nil), p.start[:d.Count]...)
	for v, c := range d.Assign {
		p.order[fill[c]] = v
		fill[c]++
	}
	if q.N() <= opt.DirectLimit {
		comp, ncomp := q.Components()
		lap := dense.FromRowMajor(q.N(), q.N(), q.LapDense())
		pin, err := dense.NewPinnedLaplacian(lap, comp, ncomp)
		if err != nil {
			return nil, fmt.Errorf("steiner: quotient factorization failed: %w", err)
		}
		p.qSolve = pin.Solve
	} else {
		op := solver.LapOperator(q)
		jac := solver.Jacobi(q)
		tol, maxIter := opt.InnerTol, opt.InnerMaxIter
		p.qSolve = func(dst, r []float64) {
			res := solver.PCG(op, jac, r, solver.Options{Tol: tol, MaxIter: maxIter, ProjectMean: true})
			copy(dst, res.X)
		}
	}
	return p, nil
}

// Dim returns the number of original vertices.
func (p *Preconditioner) Dim() int { return p.n }

// Apply computes dst = B⁺ r via the two-level identity. Restriction and
// prolongation are embarrassingly parallel (Remark 2) and run across cores.
func (p *Preconditioner) Apply(dst, r []float64) {
	par.For(p.m, 512, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			acc := 0.0
			for i := p.start[c]; i < p.start[c+1]; i++ {
				acc += r[p.order[i]]
			}
			p.rq[c] = acc
		}
	})
	p.qSolve(p.yq, p.rq)
	par.For(p.n, 8192, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			dst[v] = r[v]*p.dInv[v] + p.yq[p.assign[v]]
		}
	})
}

// SteinerGraph materializes S_P itself: vertices 0..n−1 are the leaves
// (original vertices), n..n+m−1 the cluster roots. Used by the verification
// tests and the spectral experiments of Section 4.
func SteinerGraph(d *decomp.Decomposition) *graph.Graph {
	g := d.G
	n := g.N()
	var es []graph.Edge
	for v := 0; v < n; v++ {
		if g.Vol(v) > 0 {
			es = append(es, graph.Edge{U: v, V: n + d.Assign[v], W: g.Vol(v)})
		}
	}
	q := g.Contract(d.Assign, d.Count)
	for _, e := range q.Edges() {
		es = append(es, graph.Edge{U: n + e.U, V: n + e.V, W: e.W})
	}
	return graph.MustFromEdges(n+d.Count, es)
}

// SchurDense computes the Schur complement B = D − V(Q+D_Q)⁻¹Vᵀ densely;
// for tests and the Theorem 3.5 / 4.1 verifications on small graphs only.
func SchurDense(d *decomp.Decomposition) (*dense.Matrix, error) {
	g := d.G
	n, m := g.N(), d.Count
	q := g.Contract(d.Assign, d.Count)
	// Q + D_Q is strictly diagonally dominant wherever a cluster has
	// volume, hence SPD after dropping zero rows; assemble densely.
	qd := dense.FromRowMajor(m, m, q.LapDense())
	for v := 0; v < n; v++ {
		c := d.Assign[v]
		qd.Add(c, c, g.Vol(v))
	}
	ch, err := dense.NewCholesky(qd)
	if err != nil {
		return nil, fmt.Errorf("steiner: Q+D_Q not SPD: %w", err)
	}
	// B = D − V (Q+D_Q)⁻¹ Vᵀ with V = DR: column c of Vᵀ is the volume
	// vector of cluster c.
	b := dense.NewMatrix(n, n)
	// Compute X = (Q+D_Q)⁻¹ Vᵀ column by column over original vertices.
	col := make([]float64, m)
	sol := make([]float64, m)
	for u := 0; u < n; u++ {
		for i := range col {
			col[i] = 0
		}
		col[d.Assign[u]] = g.Vol(u)
		ch.Solve(sol, col)
		for v := 0; v < n; v++ {
			b.Add(v, u, -g.Vol(v)*sol[d.Assign[v]])
		}
	}
	for v := 0; v < n; v++ {
		b.Add(v, v, g.Vol(v))
	}
	return b, nil
}
