package steiner

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/decomp"
	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/solver"
	"hcd/internal/support"
	"hcd/internal/treealg"
	"hcd/internal/workload"
)

func meanFree(rng *rand.Rand, n int) []float64 {
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

func fixedDecomp(t *testing.T, g *graph.Graph) *decomp.Decomposition {
	t.Helper()
	d, err := decomp.FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSteinerGraphStructure(t *testing.T) {
	g := workload.Grid2D(4, 4, workload.Lognormal(1), 1)
	d := fixedDecomp(t, g)
	s := SteinerGraph(d)
	if s.N() != g.N()+d.Count {
		t.Fatalf("S_P has %d vertices, want %d", s.N(), g.N()+d.Count)
	}
	// Leaf degrees: each original vertex connects only to its root.
	for v := 0; v < g.N(); v++ {
		if s.Degree(v) != 1 {
			t.Fatalf("leaf %d has degree %d", v, s.Degree(v))
		}
		w, ok := s.Weight(v, g.N()+d.Assign[v])
		if !ok || math.Abs(w-g.Vol(v)) > 1e-12 {
			t.Fatalf("leaf %d weight %v, want vol %v", v, w, g.Vol(v))
		}
	}
	if !s.Connected() {
		t.Error("S_P disconnected for connected input")
	}
}

// The analytic two-level apply must invert the dense Schur complement.
func TestApplyMatchesSchurComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for it := 0; it < 8; it++ {
		g := treealg.RandomTree(rng, 12+rng.Intn(20), func() float64 { return 0.2 + rng.Float64()*4 })
		d, err := decomp.Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(d, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := SchurDense(d)
		if err != nil {
			t.Fatal(err)
		}
		r := meanFree(rng, g.N())
		x := make([]float64, g.N())
		p.Apply(x, r)
		// Check B·x = r (up to the constant null component).
		bx := make([]float64, g.N())
		b.MulVec(bx, x)
		// Remove means of both sides before comparing.
		demean(bx)
		rr := append([]float64(nil), r...)
		demean(rr)
		for i := range bx {
			if math.Abs(bx[i]-rr[i]) > 1e-7 {
				t.Fatalf("it=%d: (Bx)[%d] = %v, want %v", it, i, bx[i], rr[i])
			}
		}
	}
}

func demean(x []float64) {
	s := 0.0
	for _, v := range x {
		s += v
	}
	for i := range x {
		x[i] -= s / float64(len(x))
	}
}

// The dense Schur complement must agree with eliminating the Steiner block
// of the materialized Steiner graph Laplacian — an independent derivation.
func TestSchurDenseMatchesBlockElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := treealg.RandomTree(rng, 15, func() float64 { return 0.5 + rng.Float64() })
	d, err := decomp.Tree(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SchurDense(d)
	if err != nil {
		t.Fatal(err)
	}
	s := SteinerGraph(d)
	n, m := g.N(), d.Count
	lap := s.LapDense()
	// Block elimination: B' = A_ll − A_lr·A_rr⁻¹·A_rl over root block.
	arr := dense.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			arr.Set(i, j, lap[(n+i)*s.N()+(n+j)])
		}
	}
	ch, err := dense.NewCholesky(arr) // A_rr = Q + D_Q is SPD
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float64, m)
	sol := make([]float64, m)
	for u := 0; u < n; u++ {
		for i := 0; i < m; i++ {
			col[i] = lap[(n+i)*s.N()+u]
		}
		ch.Solve(sol, col)
		for v := 0; v < n; v++ {
			want := lap[v*s.N()+u]
			for i := 0; i < m; i++ {
				want -= lap[v*s.N()+(n+i)] * sol[i]
			}
			if math.Abs(b.At(v, u)-want) > 1e-8 {
				t.Fatalf("Schur mismatch at (%d,%d): %v vs %v", v, u, b.At(v, u), want)
			}
		}
	}
}

// Gremban's original view: preconditioning with S_P means solving the full
// (n+m)-dimensional Steiner system with right-hand side [r; 0] and reading
// the leaf block. The closed-form Apply must agree with that solve.
func TestApplyMatchesFullSteinerSystemSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for it := 0; it < 6; it++ {
		g := treealg.RandomTree(rng, 10+rng.Intn(15), func() float64 { return 0.3 + rng.Float64()*2 })
		d, err := decomp.Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(d, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		s := SteinerGraph(d)
		comp, ncomp := s.Components()
		pin, err := dense.NewPinnedLaplacian(dense.FromRowMajor(s.N(), s.N(), s.LapDense()), comp, ncomp)
		if err != nil {
			t.Fatal(err)
		}
		n := g.N()
		r := meanFree(rng, n)
		full := make([]float64, s.N())
		copy(full, r) // [r; 0]
		sol := make([]float64, s.N())
		pin.Solve(sol, full)
		want := append([]float64(nil), sol[:n]...)
		demean(want)
		got := make([]float64, n)
		p.Apply(got, r)
		demean(got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("it=%d: leaf %d: Apply %v vs full Steiner solve %v", it, i, got[i], want[i])
			}
		}
	}
}

// Theorem 3.5: σ(S_P, A) = σ(B, A) ≤ 3(1 + 2/φ³) with φ the exact minimum
// closure conductance of the decomposition.
func TestTheorem35BoundOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for it := 0; it < 12; it++ {
		g := treealg.RandomTree(rng, 8+rng.Intn(16), func() float64 { return 0.2 + rng.Float64()*5 })
		d, err := decomp.Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		rep := decomp.Evaluate(d, graph.MaxExactConductance)
		if !rep.PhiExact || rep.Phi <= 0 {
			t.Fatalf("it=%d: need exact positive φ, got %+v", it, rep)
		}
		b, err := SchurDense(d)
		if err != nil {
			t.Fatal(err)
		}
		a := dense.FromRowMajor(g.N(), g.N(), g.LapDense())
		sigma, err := support.Sigma(b, a)
		if err != nil {
			t.Fatal(err)
		}
		bound := 3 * (1 + 2/math.Pow(rep.Phi, 3))
		if sigma > bound+1e-6 {
			t.Errorf("it=%d: σ(B,A)=%v exceeds Theorem 3.5 bound %v (φ=%v)", it, sigma, bound, rep.Phi)
		}
		if sigma < 1-1e-6 {
			t.Errorf("it=%d: σ(B,A)=%v < 1 (B should dominate A)", it, sigma)
		}
	}
}

func TestTheorem35BoundOnGrids(t *testing.T) {
	g := workload.Grid2D(5, 5, workload.Lognormal(1), 5)
	d := fixedDecomp(t, g)
	rep := decomp.Evaluate(d, graph.MaxExactConductance)
	if !rep.PhiExact {
		t.Fatal("need exact φ")
	}
	b, err := SchurDense(d)
	if err != nil {
		t.Fatal(err)
	}
	a := dense.FromRowMajor(g.N(), g.N(), g.LapDense())
	sigma, err := support.Sigma(b, a)
	if err != nil {
		t.Fatal(err)
	}
	bound := 3 * (1 + 2/math.Pow(rep.Phi, 3))
	if sigma > bound+1e-6 {
		t.Errorf("σ=%v > bound %v (φ=%v)", sigma, bound, rep.Phi)
	}
}

// The key routing step of Theorem 3.5: every quotient edge of S_P + A can
// be routed through S_P + A − Q along length-3 paths (root→u→v→root), with
// per-edge congestion at most its capacity — giving the embedding bound of
// exactly 3, which must also dominate the true support number.
func TestTheorem35RoutingStep(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := treealg.RandomTree(rng, 18, func() float64 { return 0.3 + rng.Float64()*3 })
	d, err := decomp.Tree(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count < 2 {
		t.Skip("single cluster")
	}
	n := g.N()
	sp := SteinerGraph(d)
	// H2 = S_P + A − Q: star edges plus A's edges among the leaves.
	var h2Edges []graph.Edge
	for v := 0; v < n; v++ {
		h2Edges = append(h2Edges, graph.Edge{U: v, V: n + d.Assign[v], W: g.Vol(v)})
	}
	for _, e := range g.Edges() {
		h2Edges = append(h2Edges, e)
	}
	h2 := graph.MustFromEdges(sp.N(), h2Edges)
	// The A-side: the quotient edges lifted to root vertices.
	q := g.Contract(d.Assign, d.Count)
	var qEdges []graph.Edge
	for _, e := range q.Edges() {
		qEdges = append(qEdges, graph.Edge{U: n + e.U, V: n + e.V, W: e.W})
	}
	qLift := graph.MustFromEdges(sp.N(), qEdges)
	// Fractional routes: each crossing edge (u,v) carries its weight along
	// root(u) → u → v → root(v).
	routes := make([][]support.WeightedPath, len(qLift.Edges()))
	idxOf := make(map[[2]int]int)
	for i, e := range qLift.Edges() {
		idxOf[[2]int{e.U, e.V}] = i
	}
	for _, e := range g.Edges() {
		cu, cv := d.Assign[e.U], d.Assign[e.V]
		if cu == cv {
			continue
		}
		a, b := n+cu, n+cv
		if a > b {
			a, b = b, a
		}
		i := idxOf[[2]int{a, b}]
		u, v := e.U, e.V
		if d.Assign[u] != a-n {
			u, v = v, u
		}
		routes[i] = append(routes[i], support.WeightedPath{
			Weight: e.W,
			Edges:  [][2]int{{a, u}, {u, v}, {v, b}},
		})
	}
	bound, err := support.FractionalEmbeddingBound(qLift, h2, routes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bound-3) > 1e-9 {
		t.Errorf("embedding bound = %v, want exactly 3", bound)
	}
	// The bound dominates the true support number σ(Q_lift, H2).
	sigma, err := support.Sigma(
		dense.FromRowMajor(sp.N(), sp.N(), qLift.LapDense()),
		dense.FromRowMajor(sp.N(), sp.N(), h2.LapDense()))
	if err != nil {
		t.Fatal(err)
	}
	if sigma > bound+1e-7 {
		t.Errorf("σ(Q, S_P+A−Q) = %v exceeds embedding bound %v", sigma, bound)
	}
}

// The Steiner preconditioner must give a modest condition number and fast
// PCG convergence on the workloads of Section 3.2.
func TestSteinerPCGConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := workload.OCT3D(6, 6, 12, workload.DefaultOCTOptions())
	d := fixedDecomp(t, g)
	p, err := New(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bvec := meanFree(rng, g.N())
	res := solver.PCG(solver.LapOperator(g), p, bvec, solver.DefaultOptions())
	if !res.Converged {
		t.Fatalf("Steiner PCG did not converge in %d iterations", res.Iterations)
	}
	// Verify the solve.
	ax := make([]float64, g.N())
	g.LapMul(ax, res.X)
	worst := 0.0
	for i := range ax {
		if dlt := math.Abs(ax[i] - bvec[i]); dlt > worst {
			worst = dlt
		}
	}
	if worst > 1e-5 {
		t.Errorf("residual inf-norm %v", worst)
	}
	// Compare with unpreconditioned CG on the same system.
	cg := solver.CG(solver.LapOperator(g), bvec, solver.DefaultOptions())
	t.Logf("steiner PCG iters=%d, plain CG iters=%d (converged=%v)", res.Iterations, cg.Iterations, cg.Converged)
	if cg.Converged && res.Iterations > cg.Iterations {
		t.Errorf("Steiner PCG (%d) slower than plain CG (%d) on OCT volume", res.Iterations, cg.Iterations)
	}
}

func TestInnerIterativeQuotientFallback(t *testing.T) {
	g := workload.Grid3D(8, 8, 8, workload.Lognormal(1), 7)
	d := fixedDecomp(t, g)
	opt := DefaultOptions()
	opt.DirectLimit = 1 // force the iterative path
	p, err := New(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	bvec := meanFree(rng, g.N())
	res := solver.PCG(solver.LapOperator(g), p, bvec, solver.DefaultOptions())
	if !res.Converged {
		t.Errorf("PCG with iterative quotient solve did not converge (%d iters)", res.Iterations)
	}
}

func TestConditionNumberConstantAcrossSizes(t *testing.T) {
	// Section 3.1's punchline: the two-level Steiner preconditioner keeps
	// κ roughly constant as n grows.
	rng := rand.New(rand.NewSource(9))
	var kappas []float64
	for _, side := range []int{6, 8, 10, 12} {
		g := workload.Grid2D(side, side, workload.Lognormal(1), 3)
		d := fixedDecomp(t, g)
		p, err := New(d, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		nums, err := support.Probe(solver.LapOperator(g), p, meanFree(rng, g.N()), 60)
		if err != nil {
			t.Fatal(err)
		}
		kappas = append(kappas, nums.Kappa)
	}
	for i, k := range kappas {
		if k > 60 {
			t.Errorf("size %d: κ = %v too large for a two-level Steiner preconditioner", i, k)
		}
	}
	t.Logf("κ across sizes: %v", kappas)
}

func BenchmarkSteinerApply(b *testing.B) {
	g := workload.Grid3D(20, 20, 20, workload.Lognormal(1), 1)
	d, err := decomp.FixedDegree(g, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(d, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r := meanFree(rng, g.N())
	x := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(x, r)
	}
}
