// Package dense provides the small dense linear algebra kernels the rest of
// the library needs: Cholesky factorizations (including kernel-pinned
// factorizations of singular graph Laplacians), a cyclic Jacobi eigensolver
// for symmetric matrices, and a QL-with-implicit-shifts eigensolver for
// symmetric tridiagonal matrices (used by the Lanczos code).
//
// Matrices are dense, row-major, and small by design: they appear only as
// coarsest-level systems, Schur-complement cores, and test oracles.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRowMajor wraps existing row-major data (not copied).
func FromRowMajor(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic("dense: data length does not match shape")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// MulVec computes dst = M·x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("dense: MulVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		acc := 0.0
		for j, v := range row {
			acc += v * x[j]
		}
		dst[i] = acc
	}
}

// Mul returns M·B.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("dense: Mul shape mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, v := range brow {
				orow[j] += a * v
			}
		}
	}
	return out
}

// Transpose returns Mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full storage for simplicity)
}

// NewCholesky factors the symmetric positive definite matrix a (only the
// lower triangle is read). It returns an error if a pivot is not strictly
// positive, i.e. the matrix is not numerically SPD.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("dense: Cholesky pivot %d is %v (matrix not SPD)", i, sum)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve solves A·x = b in place into dst (dst and b may alias).
func (c *Cholesky) Solve(dst, b []float64) {
	n := c.n
	if len(dst) != n || len(b) != n {
		panic("dense: Cholesky.Solve shape mismatch")
	}
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[i*n+k] * dst[k]
		}
		dst[i] = sum / c.l[i*n+i]
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		sum := dst[i]
		for k := i + 1; k < n; k++ {
			sum -= c.l[k*n+i] * dst[k]
		}
		dst[i] = sum / c.l[i*n+i]
	}
}

// SolveBlock solves A·X = B for k packed right-hand sides (row-major: entry
// (i, j) at b[i*k+j], the block solver's layout), streaming each factor row
// once for all k columns instead of once per column. dst and b may alias.
// Per column the operation order matches Solve exactly, so the results are
// bit-identical to k scalar solves. Columns run in 8-wide register tiles —
// the running sums stay in locals instead of round-tripping through dst per
// factor entry — with a per-element tail for k mod 8.
func (c *Cholesky) SolveBlock(dst, b []float64, k int) {
	n := c.n
	if k == 1 {
		c.Solve(dst[:n], b[:n])
		return
	}
	if len(dst) != n*k || len(b) != n*k {
		panic("dense: Cholesky.SolveBlock shape mismatch")
	}
	j := 0
	for ; j+8 <= k; j += 8 {
		c.solveBlockTile8(dst, b, k, j)
	}
	if j < k {
		c.solveBlockTail(dst, b, k, j)
	}
}

func (c *Cholesky) solveBlockTile8(dst, b []float64, k, j0 int) {
	n := c.n
	// Forward: L·Y = B.
	for i := 0; i < n; i++ {
		base := i*k + j0
		bi := b[base : base+8 : base+8]
		d0, d1, d2, d3, d4, d5, d6, d7 := bi[0], bi[1], bi[2], bi[3], bi[4], bi[5], bi[6], bi[7]
		row := c.l[i*n : i*n+i]
		for p, l := range row {
			pb := p*k + j0
			dp := dst[pb : pb+8 : pb+8]
			d0 -= l * dp[0]
			d1 -= l * dp[1]
			d2 -= l * dp[2]
			d3 -= l * dp[3]
			d4 -= l * dp[4]
			d5 -= l * dp[5]
			d6 -= l * dp[6]
			d7 -= l * dp[7]
		}
		inv := c.l[i*n+i]
		di := dst[base : base+8 : base+8]
		di[0], di[1], di[2], di[3] = d0/inv, d1/inv, d2/inv, d3/inv
		di[4], di[5], di[6], di[7] = d4/inv, d5/inv, d6/inv, d7/inv
	}
	// Backward: Lᵀ·X = Y.
	for i := n - 1; i >= 0; i-- {
		base := i*k + j0
		di := dst[base : base+8 : base+8]
		d0, d1, d2, d3, d4, d5, d6, d7 := di[0], di[1], di[2], di[3], di[4], di[5], di[6], di[7]
		for p := i + 1; p < n; p++ {
			l := c.l[p*n+i]
			pb := p*k + j0
			dp := dst[pb : pb+8 : pb+8]
			d0 -= l * dp[0]
			d1 -= l * dp[1]
			d2 -= l * dp[2]
			d3 -= l * dp[3]
			d4 -= l * dp[4]
			d5 -= l * dp[5]
			d6 -= l * dp[6]
			d7 -= l * dp[7]
		}
		inv := c.l[i*n+i]
		di[0], di[1], di[2], di[3] = d0/inv, d1/inv, d2/inv, d3/inv
		di[4], di[5], di[6], di[7] = d4/inv, d5/inv, d6/inv, d7/inv
	}
}

// solveBlockTail handles the final k−j0 (< 8) columns per element.
func (c *Cholesky) solveBlockTail(dst, b []float64, k, j0 int) {
	n := c.n
	// Forward: L·Y = B.
	for i := 0; i < n; i++ {
		di := dst[i*k+j0 : i*k+k : i*k+k]
		copy(di, b[i*k+j0:i*k+k])
		row := c.l[i*n : i*n+i]
		for p, l := range row {
			dp := dst[p*k+j0 : p*k+k : p*k+k]
			for j := range di {
				di[j] -= l * dp[j]
			}
		}
		inv := c.l[i*n+i]
		for j := range di {
			di[j] /= inv
		}
	}
	// Backward: Lᵀ·X = Y.
	for i := n - 1; i >= 0; i-- {
		di := dst[i*k+j0 : i*k+k : i*k+k]
		for p := i + 1; p < n; p++ {
			l := c.l[p*n+i]
			dp := dst[p*k+j0 : p*k+k : p*k+k]
			for j := range di {
				di[j] -= l * dp[j]
			}
		}
		inv := c.l[i*n+i]
		for j := range di {
			di[j] /= inv
		}
	}
}

// N returns the dimension of the factored matrix.
func (c *Cholesky) N() int { return c.n }
