package dense

import (
	"fmt"
	"math"
	"sort"
)

// SymEig computes the full eigendecomposition of the symmetric matrix a via
// cyclic Jacobi rotations. It returns the eigenvalues in ascending order and
// the matrix of eigenvectors (column k is the eigenvector of eigenvalue k).
// Intended for small matrices (n up to a few hundred).
func SymEig(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("dense: SymEig needs square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-26*float64(n*n)+1e-300 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sorted := make([]float64, n)
	vecs = NewMatrix(n, n)
	for k, src := range idx {
		sorted[k] = vals[src]
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, src))
		}
	}
	return sorted, vecs, nil
}

// rotate applies the Jacobi rotation J(p,q,θ) to m (two-sided) and
// accumulates it into v (one-sided).
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// TridiagEig computes the eigenvalues (ascending) of the symmetric
// tridiagonal matrix with diagonal d (length n) and off-diagonal e (length
// n−1), using QL iterations with implicit shifts. d and e are not modified.
// This is the workhorse behind Lanczos-based spectrum estimates.
func TridiagEig(d, e []float64) ([]float64, error) {
	n := len(d)
	if n == 0 {
		return nil, nil
	}
	if len(e) != n-1 {
		return nil, fmt.Errorf("dense: TridiagEig needs len(e) == len(d)-1")
	}
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e)
	ee[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter > 50 {
				return nil, fmt.Errorf("dense: TridiagEig failed to converge at row %d", l)
			}
			var mIdx int
			for mIdx = l; mIdx < n-1; mIdx++ {
				s := math.Abs(dd[mIdx]) + math.Abs(dd[mIdx+1])
				if math.Abs(ee[mIdx]) <= 1e-16*s {
					break
				}
			}
			if mIdx == l {
				break
			}
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[mIdx] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := mIdx - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[mIdx] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && mIdx-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[mIdx] = 0
		}
	}
	sort.Float64s(dd)
	return dd, nil
}
