package dense

import "fmt"

// PinnedLaplacian is a direct solver for a (singular) graph Laplacian: one
// vertex per connected component is "pinned" to zero, the remaining principal
// submatrix is SPD and Cholesky-factored. For right-hand sides orthogonal to
// the all-ones vector on every component, Solve followed by per-component
// de-meaning returns exactly the pseudo-inverse solution A⁺b.
type PinnedLaplacian struct {
	n     int
	free  []int // free vertex ids in factor order
	where []int // vertex -> index in free, or −1 if pinned
	comp  []int // component label per vertex
	ncomp int
	chol  *Cholesky
	buf   []float64
	csize []int // component sizes, for de-meaning
	csum  []float64
	bufB  []float64 // block-solve staging, grown on demand
	csumB []float64
}

// NewPinnedLaplacian factors the dense Laplacian a whose connectivity is
// described by comp (component label per vertex, labels in [0, ncomp)). The
// first vertex of each component is pinned.
func NewPinnedLaplacian(a *Matrix, comp []int, ncomp int) (*PinnedLaplacian, error) {
	n := a.Rows
	if a.Cols != n || len(comp) != n {
		return nil, fmt.Errorf("dense: PinnedLaplacian shape mismatch")
	}
	pinned := make([]int, ncomp)
	for i := range pinned {
		pinned[i] = -1
	}
	where := make([]int, n)
	var free []int
	for v := 0; v < n; v++ {
		c := comp[v]
		if c < 0 || c >= ncomp {
			return nil, fmt.Errorf("dense: component label %d out of range", c)
		}
		if pinned[c] < 0 {
			pinned[c] = v
			where[v] = -1
		} else {
			where[v] = len(free)
			free = append(free, v)
		}
	}
	sub := NewMatrix(len(free), len(free))
	for i, vi := range free {
		for j, vj := range free {
			sub.Set(i, j, a.At(vi, vj))
		}
	}
	var chol *Cholesky
	if len(free) > 0 {
		var err error
		chol, err = NewCholesky(sub)
		if err != nil {
			return nil, fmt.Errorf("dense: pinned Laplacian not SPD on free vertices: %w", err)
		}
	}
	csize := make([]int, ncomp)
	for _, c := range comp {
		csize[c]++
	}
	return &PinnedLaplacian{
		n: n, free: free, where: where, comp: comp, ncomp: ncomp,
		chol: chol, buf: make([]float64, len(free)),
		csize: csize, csum: make([]float64, ncomp),
	}, nil
}

// Solve writes into dst a solution of A·x = b with zero mean on every
// component. b must be orthogonal to the constant vector on each component
// (up to roundoff); this is not checked.
func (p *PinnedLaplacian) Solve(dst, b []float64) {
	if len(dst) != p.n || len(b) != p.n {
		panic("dense: PinnedLaplacian.Solve shape mismatch")
	}
	for i, v := range p.free {
		p.buf[i] = b[v]
	}
	if p.chol != nil {
		p.chol.Solve(p.buf, p.buf)
	}
	for v := 0; v < p.n; v++ {
		if w := p.where[v]; w >= 0 {
			dst[v] = p.buf[w]
		} else {
			dst[v] = 0
		}
	}
	// De-mean per component so the answer matches the pseudo-inverse.
	for c := range p.csum {
		p.csum[c] = 0
	}
	for v := 0; v < p.n; v++ {
		p.csum[p.comp[v]] += dst[v]
	}
	for v := 0; v < p.n; v++ {
		dst[v] -= p.csum[p.comp[v]] / float64(p.csize[p.comp[v]])
	}
}

// SolveBlock solves A·X = B for k packed right-hand sides (row-major: entry
// (v, j) at b[v*k+j]) with zero mean per component on every column. The
// Cholesky factor is streamed once for all k columns; per column the
// operation order matches Solve exactly, so the results are bit-identical to
// k scalar solves. Like Solve, not safe for concurrent use (internal
// scratch).
func (p *PinnedLaplacian) SolveBlock(dst, b []float64, k int) {
	if k == 1 {
		p.Solve(dst[:p.n], b[:p.n])
		return
	}
	if len(dst) != p.n*k || len(b) != p.n*k {
		panic("dense: PinnedLaplacian.SolveBlock shape mismatch")
	}
	nf := len(p.free)
	if cap(p.bufB) < nf*k {
		p.bufB = make([]float64, nf*k)
	}
	buf := p.bufB[:nf*k]
	for i, v := range p.free {
		copy(buf[i*k:i*k+k], b[v*k:v*k+k])
	}
	if p.chol != nil {
		p.chol.SolveBlock(buf, buf, k)
	}
	for v := 0; v < p.n; v++ {
		dv := dst[v*k : v*k+k : v*k+k]
		if w := p.where[v]; w >= 0 {
			copy(dv, buf[w*k:w*k+k])
		} else {
			for j := range dv {
				dv[j] = 0
			}
		}
	}
	// De-mean per component so the answer matches the pseudo-inverse.
	if cap(p.csumB) < p.ncomp*k {
		p.csumB = make([]float64, p.ncomp*k)
	}
	cs := p.csumB[:p.ncomp*k]
	for i := range cs {
		cs[i] = 0
	}
	for v := 0; v < p.n; v++ {
		cv := cs[p.comp[v]*k : p.comp[v]*k+k : p.comp[v]*k+k]
		dv := dst[v*k : v*k+k : v*k+k]
		for j := range cv {
			cv[j] += dv[j]
		}
	}
	for v := 0; v < p.n; v++ {
		c := p.comp[v]
		cv := cs[c*k : c*k+k : c*k+k]
		dv := dst[v*k : v*k+k : v*k+k]
		sz := float64(p.csize[c])
		for j := range dv {
			dv[j] -= cv[j] / sz
		}
	}
}

// N returns the dimension.
func (p *PinnedLaplacian) N() int { return p.n }
