package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSPD(rng *rand.Rand, n int) *Matrix {
	// A = GᵀG + n·I is safely SPD.
	g := NewMatrix(n, n)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	a := g.Transpose().Mul(g)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Errorf("At = %v", m.At(0, 1))
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 7 {
		t.Errorf("transpose wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("clone aliases data")
	}
}

func TestFromRowMajorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromRowMajor(2, 2, []float64{1, 2, 3})
}

func TestMulVecAndMul(t *testing.T) {
	a := FromRowMajor(2, 2, []float64{1, 2, 3, 4})
	x := []float64{1, 1}
	dst := make([]float64, 2)
	a.MulVec(dst, x)
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("MulVec = %v", dst)
	}
	b := FromRowMajor(2, 2, []float64{0, 1, 1, 0})
	ab := a.Mul(b)
	want := []float64{2, 1, 4, 3}
	if maxAbsDiff(ab.Data, want) > 0 {
		t.Errorf("Mul = %v, want %v", ab.Data, want)
	}
}

func TestCholeskySolveRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		x := make([]float64, n)
		ch.Solve(x, b)
		if d := maxAbsDiff(x, xTrue); d > 1e-8 {
			t.Errorf("n=%d: solve error %v", n, d)
		}
	}
}

func TestCholeskySolveInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 10
	a := randSPD(rng, n)
	ch, _ := NewCholesky(a)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	ch.Solve(b, b) // alias
	if d := maxAbsDiff(b, xTrue); d > 1e-8 {
		t.Errorf("aliased solve error %v", d)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRowMajor(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := NewCholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
	b := FromRowMajor(1, 2, []float64{1, 2})
	if _, err := NewCholesky(b); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

// lapFromEdges builds a dense Laplacian for testing PinnedLaplacian.
func lapFromEdges(n int, edges [][3]float64) *Matrix {
	a := NewMatrix(n, n)
	for _, e := range edges {
		i, j, w := int(e[0]), int(e[1]), e[2]
		a.Add(i, i, w)
		a.Add(j, j, w)
		a.Add(i, j, -w)
		a.Add(j, i, -w)
	}
	return a
}

func TestPinnedLaplacianConnected(t *testing.T) {
	// Path 0-1-2 with unit weights.
	a := lapFromEdges(3, [][3]float64{{0, 1, 1}, {1, 2, 1}})
	comp := []int{0, 0, 0}
	p, err := NewPinnedLaplacian(a, comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 0, -1} // ⊥ 1
	x := make([]float64, 3)
	p.Solve(x, b)
	// Check A·x = b and mean zero.
	ax := make([]float64, 3)
	a.MulVec(ax, x)
	if d := maxAbsDiff(ax, b); d > 1e-10 {
		t.Errorf("residual %v", d)
	}
	if m := x[0] + x[1] + x[2]; math.Abs(m) > 1e-10 {
		t.Errorf("mean %v", m)
	}
}

func TestPinnedLaplacianTwoComponents(t *testing.T) {
	a := lapFromEdges(4, [][3]float64{{0, 1, 2}, {2, 3, 3}})
	comp := []int{0, 0, 1, 1}
	p, err := NewPinnedLaplacian(a, comp, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -1, 2, -2}
	x := make([]float64, 4)
	p.Solve(x, b)
	ax := make([]float64, 4)
	a.MulVec(ax, x)
	if d := maxAbsDiff(ax, b); d > 1e-10 {
		t.Errorf("residual %v", d)
	}
	if math.Abs(x[0]+x[1]) > 1e-10 || math.Abs(x[2]+x[3]) > 1e-10 {
		t.Errorf("per-component means nonzero: %v", x)
	}
}

func TestPinnedLaplacianIsPseudoInverse(t *testing.T) {
	// Compare against eigen-decomposition pseudo-inverse on a random
	// connected Laplacian.
	rng := rand.New(rand.NewSource(3))
	n := 8
	var edges [][3]float64
	for v := 1; v < n; v++ {
		edges = append(edges, [3]float64{float64(rng.Intn(v)), float64(v), 0.5 + rng.Float64()})
	}
	edges = append(edges, [3]float64{0, 7, 1.5}, [3]float64{2, 5, 0.7})
	a := lapFromEdges(n, edges)
	comp := make([]int, n)
	p, err := NewPinnedLaplacian(a, comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	mean := 0.0
	for _, v := range b {
		mean += v
	}
	for i := range b {
		b[i] -= mean / float64(n)
	}
	// Pseudo-inverse via eigen: x = Σ_{λ>0} (uᵀb/λ)·u.
	want := make([]float64, n)
	for k := 0; k < n; k++ {
		if vals[k] < 1e-9 {
			continue
		}
		dot := 0.0
		for i := 0; i < n; i++ {
			dot += vecs.At(i, k) * b[i]
		}
		for i := 0; i < n; i++ {
			want[i] += dot / vals[k] * vecs.At(i, k)
		}
	}
	got := make([]float64, n)
	p.Solve(got, b)
	if d := maxAbsDiff(got, want); d > 1e-8 {
		t.Errorf("pinned vs pseudo-inverse differ by %v", d)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := FromRowMajor(3, 3, []float64{3, 0, 0, 0, 1, 0, 0, 0, 2})
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	if maxAbsDiff(vals, want) > 1e-12 {
		t.Errorf("vals = %v", vals)
	}
	// Eigenvector of eigenvalue 1 must be ±e1.
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-10 {
		t.Errorf("vec0 = %v %v %v", vecs.At(0, 0), vecs.At(1, 0), vecs.At(2, 0))
	}
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 5, 12, 30} {
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check A·v_k = λ_k·v_k for all k, and orthonormality.
		for k := 0; k < n; k++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, k)
			}
			av := make([]float64, n)
			a.MulVec(av, v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[k]*v[i]) > 1e-8 {
					t.Fatalf("n=%d k=%d: residual %v", n, k, av[i]-vals[k]*v[i])
				}
			}
		}
		for k1 := 0; k1 < n; k1++ {
			for k2 := k1; k2 < n; k2++ {
				dot := 0.0
				for i := 0; i < n; i++ {
					dot += vecs.At(i, k1) * vecs.At(i, k2)
				}
				want := 0.0
				if k1 == k2 {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("n=%d: <v%d,v%d> = %v", n, k1, k2, dot)
				}
			}
		}
	}
}

func TestTridiagEigAgainstJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 8, 25} {
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 3
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		got, err := TridiagEig(d, e)
		if err != nil {
			t.Fatal(err)
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, d[i])
		}
		for i := 0; i < n-1; i++ {
			a.Set(i, i+1, e[i])
			a.Set(i+1, i, e[i])
		}
		want, _, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		if maxAbsDiff(got, want) > 1e-8 {
			t.Errorf("n=%d: tridiag %v vs jacobi %v", n, got, want)
		}
	}
}

func TestTridiagEigKnownLaplacianSpectrum(t *testing.T) {
	// Path graph Laplacian: eigenvalues 2−2cos(kπ/n), k = 0..n−1.
	n := 10
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	d[0], d[n-1] = 1, 1
	for i := range e {
		e[i] = -1
	}
	got, err := TridiagEig(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n))
		if math.Abs(got[k]-want) > 1e-9 {
			t.Errorf("λ%d = %v, want %v", k, got[k], want)
		}
	}
}

func TestTridiagEigShapeErrors(t *testing.T) {
	if _, err := TridiagEig([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("expected shape error")
	}
	if vals, err := TridiagEig(nil, nil); err != nil || vals != nil {
		t.Error("empty input should succeed with nil result")
	}
}

func TestCholeskyPropertyResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed%13+13)%13
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		ch.Solve(x, b)
		ax := make([]float64, n)
		a.MulVec(ax, x)
		return maxAbsDiff(ax, b) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCholesky200(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := randSPD(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEig60(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randSPD(rng, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEig(a); err != nil {
			b.Fatal(err)
		}
	}
}
