// Package spectral implements Section 4: the normalized Laplacian
// Â = D^{−1/2} A D^{−1/2}, a Lanczos eigensolver (full reorthogonalization,
// kernel deflation) for its smallest eigenpairs, Cheeger-inequality
// conductance bounds, and the Theorem 4.1 measurement — how close low
// eigenvectors lie to the cluster-wise constant space Range(D^{1/2}R).
package spectral

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hcd/internal/decomp"
	"hcd/internal/dense"
	"hcd/internal/graph"
)

// NormalizedMul computes dst = Â·x = D^{−1/2} A D^{−1/2} x for the graph g,
// given precomputed sqrtD (√vol per vertex; zeros for isolated vertices are
// passed through).
func NormalizedMul(g *graph.Graph, sqrtD, dst, x, scratch []float64) {
	n := g.N()
	for v := 0; v < n; v++ {
		if sqrtD[v] > 0 {
			scratch[v] = x[v] / sqrtD[v]
		} else {
			scratch[v] = 0
		}
	}
	g.LapMul(dst, scratch)
	for v := 0; v < n; v++ {
		if sqrtD[v] > 0 {
			dst[v] /= sqrtD[v]
		} else {
			dst[v] = 0
		}
	}
}

// SqrtVolumes returns √vol(v) for every vertex.
func SqrtVolumes(g *graph.Graph) []float64 {
	d := g.Volumes()
	for i, v := range d {
		d[i] = math.Sqrt(v)
	}
	return d
}

// Smallest returns the k smallest non-kernel eigenpairs (ascending) of the
// normalized Laplacian of the connected graph g, via Lanczos with full
// reorthogonalization on 2I − Â with the kernel vector D^{1/2}1 deflated.
// iters bounds the Krylov dimension (0 picks a default).
func Smallest(g *graph.Graph, k, iters int, seed int64) ([]float64, [][]float64, error) {
	n := g.N()
	if !g.Connected() {
		return nil, nil, fmt.Errorf("spectral: graph must be connected")
	}
	if k < 1 || k >= n {
		return nil, nil, fmt.Errorf("spectral: k=%d out of range for n=%d", k, n)
	}
	if iters <= 0 {
		iters = 4*k + 40
	}
	if iters > n-1 {
		iters = n - 1
	}
	if iters < k {
		iters = k
	}
	sqrtD := SqrtVolumes(g)
	// Deflation vector: normalized D^{1/2}·1.
	kernel := make([]float64, n)
	norm := 0.0
	for v := 0; v < n; v++ {
		kernel[v] = sqrtD[v]
		norm += sqrtD[v] * sqrtD[v]
	}
	norm = math.Sqrt(norm)
	for v := range kernel {
		kernel[v] /= norm
	}
	rng := rand.New(rand.NewSource(seed))
	scratch := make([]float64, n)
	opMul := func(dst, x []float64) { // 2I − Â
		NormalizedMul(g, sqrtD, dst, x, scratch)
		for i := range dst {
			dst[i] = 2*x[i] - dst[i]
		}
	}
	// Lanczos with full reorthogonalization.
	basis := make([][]float64, 0, iters)
	var alphas, betas []float64
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	orthogonalize(v, kernel)
	if nrm := norm2(v); nrm == 0 {
		return nil, nil, fmt.Errorf("spectral: degenerate start vector")
	} else {
		scale(v, 1/nrm)
	}
	w := make([]float64, n)
	for j := 0; j < iters; j++ {
		basis = append(basis, append([]float64(nil), v...))
		opMul(w, v)
		alpha := dot(w, v)
		alphas = append(alphas, alpha)
		// w ← w − αv − βv_{j−1}, then full reorthogonalization.
		for i := range w {
			w[i] -= alpha * v[i]
		}
		if j > 0 {
			beta := betas[j-1]
			prev := basis[j-1]
			for i := range w {
				w[i] -= beta * prev[i]
			}
		}
		orthogonalize(w, kernel)
		for _, b := range basis {
			orthogonalize(w, b)
		}
		beta := norm2(w)
		if beta < 1e-12 {
			break
		}
		betas = append(betas, beta)
		copy(v, w)
		scale(v, 1/beta)
	}
	m := len(alphas)
	if m < k {
		return nil, nil, fmt.Errorf("spectral: Lanczos terminated after %d < k steps", m)
	}
	// Ritz pairs of the tridiagonal.
	tri := dense.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		tri.Set(i, i, alphas[i])
		if i+1 < m {
			tri.Set(i, i+1, betas[i])
			tri.Set(i+1, i, betas[i])
		}
	}
	tv, tvecs, err := dense.SymEig(tri)
	if err != nil {
		return nil, nil, err
	}
	// Largest eigenvalues of 2I−Â ↔ smallest of Â.
	vals := make([]float64, k)
	vecs := make([][]float64, k)
	for idx := 0; idx < k; idx++ {
		col := m - 1 - idx
		vals[idx] = 2 - tv[col]
		vec := make([]float64, n)
		for j := 0; j < m; j++ {
			c := tvecs.At(j, col)
			for i := 0; i < n; i++ {
				vec[i] += c * basis[j][i]
			}
		}
		if nrm := norm2(vec); nrm > 0 {
			scale(vec, 1/nrm)
		}
		vecs[idx] = vec
	}
	return vals, vecs, nil
}

// CheegerBounds returns (lower, upper) bounds on the conductance of the
// connected graph g from the Cheeger inequality λ₂/2 ≤ φ ≤ √(2λ₂), with the
// upper bound tightened by a sweep cut over the second eigenvector.
func CheegerBounds(g *graph.Graph, seed int64) (float64, float64, error) {
	if g.N() < 2 {
		return math.Inf(1), math.Inf(1), nil
	}
	vals, vecs, err := Smallest(g, 1, 0, seed)
	if err != nil {
		return 0, 0, err
	}
	lambda2 := vals[0]
	lower := lambda2 / 2
	upper := math.Sqrt(2 * lambda2)
	// Sweep the Fiedler-like vector D^{−1/2}x for a certified cut.
	sqrtD := SqrtVolumes(g)
	score := make([]float64, g.N())
	perm := make([]int, g.N())
	for v := range score {
		if sqrtD[v] > 0 {
			score[v] = vecs[0][v] / sqrtD[v]
		}
		perm[v] = v
	}
	sortByScore(perm, score)
	if s, _ := g.SweepCut(perm); s < upper {
		upper = s
	}
	return lower, upper, nil
}

// Alignment returns ‖proj(x)‖² where proj is the orthogonal projection onto
// Range(D^{1/2}R) for the decomposition d: the squared cosine of Theorem
// 4.1's z. The columns of D^{1/2}R have disjoint supports, so the projection
// is a per-cluster weighted average. x must be a unit vector.
func Alignment(d *decomp.Decomposition, x []float64) float64 {
	g := d.G
	num := make([]float64, d.Count)
	den := make([]float64, d.Count)
	for v, c := range d.Assign {
		s := math.Sqrt(g.Vol(v))
		num[c] += s * x[v]
		den[c] += g.Vol(v)
	}
	total := 0.0
	for c := range num {
		if den[c] > 0 {
			total += num[c] * num[c] / den[c]
		}
	}
	return total
}

func orthogonalize(v, against []float64) {
	d := dot(v, against)
	for i := range v {
		v[i] -= d * against[i]
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(x []float64) float64 { return math.Sqrt(dot(x, x)) }

func scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func sortByScore(perm []int, score []float64) {
	sort.Slice(perm, func(i, j int) bool { return score[perm[i]] < score[perm[j]] })
}
