package spectral

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/decomp"
	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/steiner"
	"hcd/internal/support"
	"hcd/internal/treealg"
	"hcd/internal/workload"
)

func cycleGraph(n int) *graph.Graph {
	es := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		es = append(es, graph.Edge{U: i, V: (i + 1) % n, W: 1})
	}
	return graph.MustFromEdges(n, es)
}

func TestSmallestCycleSpectrum(t *testing.T) {
	// Normalized Laplacian of the unit cycle: eigenvalues 1 − cos(2πk/n).
	n := 16
	g := cycleGraph(n)
	vals, vecs, err := Smallest(g, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Smallest non-zero: 1 − cos(2π/n) (multiplicity 2; plain Lanczos from
	// one start vector finds a single copy of a degenerate eigenvalue, so
	// later entries may skip to the next distinct value — all must still be
	// members of the known spectrum {1 − cos(2πk/n)}).
	want := 1 - math.Cos(2*math.Pi/float64(n))
	if math.Abs(vals[0]-want) > 1e-8 {
		t.Errorf("λ₂ = %v, want %v", vals[0], want)
	}
	for i, v := range vals {
		member := false
		for k := 0; k <= n/2; k++ {
			if math.Abs(v-(1-math.Cos(2*math.Pi*float64(k)/float64(n)))) < 1e-7 {
				member = true
				break
			}
		}
		if !member {
			t.Errorf("vals[%d] = %v not in the cycle spectrum", i, v)
		}
	}
	// Residual check: Â·x = λ·x.
	sqrtD := SqrtVolumes(g)
	scratch := make([]float64, n)
	ax := make([]float64, n)
	for i, x := range vecs {
		NormalizedMul(g, sqrtD, ax, x, scratch)
		for j := range ax {
			if math.Abs(ax[j]-vals[i]*x[j]) > 1e-7 {
				t.Fatalf("eigpair %d residual %v", i, ax[j]-vals[i]*x[j])
			}
		}
	}
}

func TestSmallestAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for it := 0; it < 6; it++ {
		n := 10 + rng.Intn(20)
		var es []graph.Edge
		for v := 1; v < n; v++ {
			es = append(es, graph.Edge{U: rng.Intn(v), V: v, W: 0.3 + rng.Float64()*2})
		}
		for i := 0; i < n/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, graph.Edge{U: u, V: v, W: 0.3 + rng.Float64()*2})
			}
		}
		g := graph.MustFromEdges(n, es)
		vals, _, err := Smallest(g, 3, n-1, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Dense truth: Â = D^{−1/2} A D^{−1/2}.
		lap := g.LapDense()
		sqrtD := SqrtVolumes(g)
		hat := dense.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				hat.Set(i, j, lap[i*n+j]/(sqrtD[i]*sqrtD[j]))
			}
		}
		dvals, _, err := dense.SymEig(hat)
		if err != nil {
			t.Fatal(err)
		}
		// dvals[0] ≈ 0 (kernel); compare the next three.
		for i := 0; i < 3; i++ {
			if math.Abs(vals[i]-dvals[i+1]) > 1e-6 {
				t.Fatalf("it=%d: λ%d = %v, dense %v", it, i, vals[i], dvals[i+1])
			}
		}
	}
}

func TestSmallestValidation(t *testing.T) {
	disc := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, _, err := Smallest(disc, 1, 0, 1); err == nil {
		t.Error("disconnected accepted")
	}
	g := cycleGraph(5)
	if _, _, err := Smallest(g, 0, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Smallest(g, 5, 0, 1); err == nil {
		t.Error("k=n accepted")
	}
}

func TestCheegerBoundsBracketExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for it := 0; it < 8; it++ {
		n := 6 + rng.Intn(10)
		var es []graph.Edge
		for v := 1; v < n; v++ {
			es = append(es, graph.Edge{U: rng.Intn(v), V: v, W: 0.3 + rng.Float64()})
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, graph.Edge{U: u, V: v, W: 0.3 + rng.Float64()})
			}
		}
		g := graph.MustFromEdges(n, es)
		lo, hi, err := CheegerBounds(g, 5)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := g.ExactConductance()
		if err != nil {
			t.Fatal(err)
		}
		if exact < lo-1e-8 || exact > hi+1e-8 {
			t.Fatalf("it=%d: exact %v outside Cheeger bracket [%v, %v]", it, exact, lo, hi)
		}
	}
}

// Theorem 4.1: for any unit x spanned by eigenvectors with eigenvalues below
// λ, and any unit y ∈ Null(RᵀD^{1/2}): (xᵀy)² ≤ λmax(B,A)·λ. The maximum of
// (xᵀy)² over unit y is 1 − Alignment(x).
func TestTheorem41OnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for it := 0; it < 8; it++ {
		n := 12 + rng.Intn(16)
		g := treealg.RandomTree(rng, n, func() float64 { return 0.3 + rng.Float64()*3 })
		d, err := decomp.Tree(g)
		if err != nil {
			t.Fatal(err)
		}
		if d.Count < 2 {
			continue
		}
		b, err := steiner.SchurDense(d)
		if err != nil {
			t.Fatal(err)
		}
		a := dense.FromRowMajor(n, n, g.LapDense())
		sigmaBA, err := support.Sigma(b, a)
		if err != nil {
			t.Fatal(err)
		}
		k := 3
		if k >= n-1 {
			k = n - 2
		}
		vals, vecs, err := Smallest(g, k, n-1, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			misalign := 1 - Alignment(d, vecs[i])
			bound := sigmaBA * vals[i] * (1 + 1e-6)
			if misalign > bound+1e-7 {
				t.Fatalf("it=%d eig %d: misalignment %v > λmax(B,A)·λ = %v (λ=%v σ=%v)",
					it, i, misalign, bound, vals[i], sigmaBA)
			}
		}
	}
}

// The paper-stated form of Theorem 4.1 with the Theorem 3.5 constant:
// (xᵀy)² ≤ 3λ(1 + 2/φ³) for [φ, ρ] decompositions.
func TestTheorem41PaperConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := treealg.RandomTree(rng, 24, func() float64 { return 0.5 + rng.Float64() })
	d, err := decomp.Tree(g)
	if err != nil {
		t.Fatal(err)
	}
	rep := decomp.Evaluate(d, graph.MaxExactConductance)
	if !rep.PhiExact {
		t.Fatal("need exact φ")
	}
	vals, vecs, err := Smallest(g, 3, g.N()-1, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		misalign := 1 - Alignment(d, vecs[i])
		bound := 3 * vals[i] * (1 + 2/math.Pow(rep.Phi, 3))
		if misalign > bound+1e-7 {
			t.Errorf("eig %d: misalignment %v > paper bound %v", i, misalign, bound)
		}
	}
}

func TestAlignmentOfClusterConstantVector(t *testing.T) {
	// A vector that IS cluster-wise constant scaled by D^{1/2} must have
	// alignment exactly 1.
	g := workload.Grid2D(6, 6, workload.Lognormal(1), 3)
	d, err := decomp.FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.N())
	for v, c := range d.Assign {
		x[v] = math.Sqrt(g.Vol(v)) * float64(c+1)
	}
	nrm := 0.0
	for _, v := range x {
		nrm += v * v
	}
	nrm = math.Sqrt(nrm)
	for i := range x {
		x[i] /= nrm
	}
	if a := Alignment(d, x); math.Abs(a-1) > 1e-10 {
		t.Errorf("alignment = %v, want 1", a)
	}
}

func TestPortrait(t *testing.T) {
	g := workload.Grid2D(10, 10, workload.Lognormal(1), 4)
	d, err := decomp.FixedDegree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Portrait(d, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if !r.Holds {
			t.Errorf("row %d: bound violated (%v > %v)", i, r.Misalignment, r.Bound)
		}
		if r.Index != i+2 {
			t.Errorf("row %d index = %d", i, r.Index)
		}
		if i > 0 && r.Lambda < rows[i-1].Lambda-1e-12 {
			t.Error("eigenvalues not ascending")
		}
	}
}

func TestAlignmentBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := workload.Grid2D(5, 5, nil, 1)
	d, err := decomp.FixedDegree(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.N())
	nrm := 0.0
	for i := range x {
		x[i] = rng.NormFloat64()
		nrm += x[i] * x[i]
	}
	nrm = math.Sqrt(nrm)
	for i := range x {
		x[i] /= nrm
	}
	a := Alignment(d, x)
	if a < -1e-12 || a > 1+1e-12 {
		t.Errorf("alignment %v outside [0,1]", a)
	}
}

func BenchmarkSmallestGrid(b *testing.B) {
	g := workload.Grid2D(30, 30, workload.Lognormal(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Smallest(g, 4, 80, 1); err != nil {
			b.Fatal(err)
		}
	}
}
