package spectral

import (
	"math"

	"hcd/internal/decomp"
	"hcd/internal/graph"
)

// PortraitRow is one eigenpair's entry in the Theorem 4.1 portrait.
type PortraitRow struct {
	Index        int     // eigenvalue index (2 = first non-kernel)
	Lambda       float64 // eigenvalue of the normalized Laplacian
	Misalignment float64 // 1 − ‖proj onto Range(D^{1/2}R)‖²
	Bound        float64 // 3λ(1 + 2/φ³) with the decomposition's measured φ
	Holds        bool
}

// Portrait computes the Theorem 4.1 table for the k smallest non-kernel
// eigenpairs of d's graph against d's cluster space: eigenvalue,
// misalignment with Range(D^{1/2}R), and the paper's bound evaluated at the
// decomposition's measured (exact where possible) closure conductance.
func Portrait(d *decomp.Decomposition, k int, seed int64) ([]PortraitRow, error) {
	g := d.G
	rep := decomp.Evaluate(d, graph.MaxExactConductance)
	vals, vecs, err := Smallest(g, k, 0, seed)
	if err != nil {
		return nil, err
	}
	rows := make([]PortraitRow, len(vals))
	c := 1 + 2/math.Pow(rep.Phi, 3)
	for i := range vals {
		mis := 1 - Alignment(d, vecs[i])
		bound := 3 * vals[i] * c
		rows[i] = PortraitRow{
			Index:        i + 2,
			Lambda:       vals[i],
			Misalignment: mis,
			Bound:        bound,
			Holds:        mis <= bound+1e-9,
		}
	}
	return rows, nil
}
