package solver

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/workload"
)

func testSystem(t *testing.T, seed int64) (*graph.Graph, []float64) {
	t.Helper()
	g := workload.Grid2D(12, 12, workload.UniformWeight(0.5, 2), 1)
	return g, meanFreeRHS(rand.New(rand.NewSource(seed)), g.N())
}

func TestInjectedMatvecNaNBreaksDown(t *testing.T) {
	g, b := testSystem(t, 11)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 3, Count: 1},
	})
	defer restore()
	res, err := PCGCtx(context.Background(), LapOperator(g), nil, b, DefaultOptions())
	if err != nil {
		t.Fatalf("PCGCtx: %v", err)
	}
	if res.Outcome != OutcomeBreakdown {
		t.Fatalf("outcome %v, want breakdown", res.Outcome)
	}
	if res.Reason == "" || !strings.Contains(res.Reason, "non-finite") && !strings.Contains(res.Reason, "pᵀAp") {
		t.Errorf("reason %q does not explain the breakdown", res.Reason)
	}
	if res.Converged {
		t.Error("breakdown must not report convergence")
	}
}

func TestInjectedForceBreakdown(t *testing.T) {
	g, b := testSystem(t, 12)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.ForceBreakdown: {OnHit: 2, Count: 1},
	})
	defer restore()
	res, err := PCGCtx(context.Background(), LapOperator(g), nil, b, DefaultOptions())
	if err != nil {
		t.Fatalf("PCGCtx: %v", err)
	}
	if res.Outcome != OutcomeBreakdown {
		t.Fatalf("outcome %v, want breakdown", res.Outcome)
	}
	if res.Iterations != 1 {
		t.Errorf("breakdown fired on hit 2, so exactly 1 completed iteration; got %d", res.Iterations)
	}
}

func TestRecoveryRestartsAfterBreakdown(t *testing.T) {
	g, b := testSystem(t, 13)
	// One NaN strikes mid-solve; the restart recomputes r = b − A·x from the
	// surviving iterate and must then run clean to convergence.
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 5, Count: 1},
	})
	defer restore()
	opt := DefaultOptions()
	opt.Recovery = RecoveryPolicy{MaxRestarts: 2}
	res, err := PCGCtx(context.Background(), LapOperator(g), nil, b, opt)
	if err != nil {
		t.Fatalf("PCGCtx: %v", err)
	}
	if !res.Converged {
		t.Fatalf("restarted solve did not converge: outcome %v reason %q", res.Outcome, res.Reason)
	}
	if res.Metrics.Restarts < 1 {
		t.Errorf("Restarts = %d, want >= 1", res.Metrics.Restarts)
	}
	if rn := residualNorm(g, res.X, b); rn > 1e-5 {
		t.Errorf("residual after recovery %v", rn)
	}
	// The stitched history must cover both attempts.
	if len(res.Residuals) < res.Iterations {
		t.Errorf("history %d entries for %d iterations", len(res.Residuals), res.Iterations)
	}
}

func TestRecoveryGivesUpAfterMaxRestarts(t *testing.T) {
	g, b := testSystem(t, 14)
	// Every attempt is poisoned, so all restarts burn out.
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 1, Count: 0},
	})
	defer restore()
	opt := DefaultOptions()
	opt.Recovery = RecoveryPolicy{MaxRestarts: 2}
	res, err := PCGCtx(context.Background(), LapOperator(g), nil, b, opt)
	if err != nil {
		t.Fatalf("PCGCtx: %v", err)
	}
	if res.Outcome != OutcomeBreakdown {
		t.Fatalf("outcome %v, want breakdown", res.Outcome)
	}
	if res.Metrics.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2", res.Metrics.Restarts)
	}
}

func TestSolveCancelledOutcome(t *testing.T) {
	g, b := testSystem(t, 15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := PCGCtx(ctx, LapOperator(g), nil, b, DefaultOptions())
	if err != nil {
		t.Fatalf("PCGCtx: %v", err)
	}
	if res.Outcome != OutcomeCancelled {
		t.Fatalf("outcome %v, want cancelled", res.Outcome)
	}
}

func TestRestartBackoffHonorsCancellation(t *testing.T) {
	g, b := testSystem(t, 16)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 1, Count: 0},
	})
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	opt := DefaultOptions()
	opt.Recovery = RecoveryPolicy{MaxRestarts: 5, Backoff: time.Hour}
	done := make(chan Result, 1)
	go func() {
		res, err := PCGCtx(ctx, LapOperator(g), nil, b, opt)
		if err != nil {
			t.Errorf("PCGCtx: %v", err)
		}
		done <- res
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Outcome != OutcomeCancelled {
			t.Errorf("outcome %v, want cancelled (not an hour of backoff)", res.Outcome)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solve did not return after cancellation during backoff")
	}
}

func TestChebyshevDivergenceGuard(t *testing.T) {
	g, b := testSystem(t, 17)
	// Grossly wrong (too small) eigenvalue bounds make Chebyshev diverge
	// geometrically; the guard must stop it instead of iterating to Inf.
	opt := Options{MaxIter: 50000, ProjectMean: true}
	res, err := ChebyshevCtx(context.Background(), LapOperator(g), nil, b, 1e-7, 2e-7, opt)
	if err != nil {
		t.Fatalf("ChebyshevCtx: %v", err)
	}
	if res.Outcome != OutcomeDiverged && res.Outcome != OutcomeBreakdown {
		t.Fatalf("outcome %v (reason %q), want diverged or breakdown", res.Outcome, res.Reason)
	}
	if res.Iterations >= 50000 {
		t.Errorf("guard did not stop the divergent iteration early (%d iterations)", res.Iterations)
	}
	if res.Reason == "" {
		t.Error("guard-terminated solve must carry a Reason")
	}
}

func TestChebyshevInjectedNaN(t *testing.T) {
	g, b := testSystem(t, 18)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.MatvecNaN: {OnHit: 4, Count: 1},
	})
	defer restore()
	opt := Options{MaxIter: 200, Tol: 1e-8, ProjectMean: true}
	res, err := ChebyshevCtx(context.Background(), LapOperator(g), nil, b, 0.05, 8.5, opt)
	if err != nil {
		t.Fatalf("ChebyshevCtx: %v", err)
	}
	if res.Outcome != OutcomeBreakdown {
		t.Fatalf("outcome %v, want breakdown", res.Outcome)
	}
}

func TestStagnationGuard(t *testing.T) {
	g, b := testSystem(t, 19)
	// A near-impossible tolerance with a tight stagnation demand (100×
	// residual drop every 3 iterations) must trip the guard, not run the
	// full budget.
	opt := DefaultOptions()
	opt.Tol = 1e-300
	opt.StagnationWindow = 3
	opt.StagnationEps = 0.99
	res, err := PCGCtx(context.Background(), LapOperator(g), nil, b, opt)
	if err != nil {
		t.Fatalf("PCGCtx: %v", err)
	}
	if res.Outcome != OutcomeStagnated {
		t.Fatalf("outcome %v (reason %q), want stagnated", res.Outcome, res.Reason)
	}
	if res.Reason == "" {
		t.Error("stagnated solve must carry a Reason")
	}
}

func TestSolverPanicBecomesError(t *testing.T) {
	n := 16
	bad := OpFunc{N: n, F: func(dst, x []float64) { panic("operator exploded") }}
	b := make([]float64, n)
	b[0], b[n-1] = 1, -1
	_, err := PCGCtx(context.Background(), bad, nil, b, Options{Tol: 1e-8, MaxIter: 10})
	if err == nil {
		t.Fatal("panicking operator must surface as an error")
	}
	if !strings.Contains(err.Error(), "panic during solve") || !strings.Contains(err.Error(), "operator exploded") {
		t.Errorf("error %q does not describe the panic", err)
	}
}

func TestPCGDimensionMismatchError(t *testing.T) {
	g, _ := testSystem(t, 20)
	_, err := PCGCtx(context.Background(), LapOperator(g), nil, make([]float64, 3), DefaultOptions())
	if !errors.Is(err, graph.ErrBadDimension) {
		t.Fatalf("err = %v, want ErrBadDimension", err)
	}
}

func TestWarmRestartKeepsReferenceNorm(t *testing.T) {
	g, b := testSystem(t, 21)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.ForceBreakdown: {OnHit: 6, Count: 1},
	})
	defer restore()
	opt := DefaultOptions()
	opt.Recovery = RecoveryPolicy{MaxRestarts: 1}
	res, err := PCGCtx(context.Background(), LapOperator(g), nil, b, opt)
	if err != nil {
		t.Fatalf("PCGCtx: %v", err)
	}
	if !res.Converged {
		t.Fatalf("outcome %v reason %q", res.Outcome, res.Reason)
	}
	// Convergence is relative to the FIRST attempt's ‖r₀‖: the true
	// residual must meet the original tolerance, not a restart-relative one.
	if rn := residualNorm(g, res.X, b); rn > 1e-6*res.Residuals[0]+1e-9 {
		t.Errorf("restarted solve converged against a weakened threshold: ‖r‖ = %v, ‖r₀‖ = %v", rn, res.Residuals[0])
	}
}

func TestNoFaultsNoRestarts(t *testing.T) {
	g, b := testSystem(t, 22)
	opt := DefaultOptions()
	opt.Recovery = RecoveryPolicy{MaxRestarts: 3}
	res, err := PCGCtx(context.Background(), LapOperator(g), nil, b, opt)
	if err != nil {
		t.Fatalf("PCGCtx: %v", err)
	}
	if !res.Converged || res.Metrics.Restarts != 0 {
		t.Errorf("clean solve: converged=%v restarts=%d", res.Converged, res.Metrics.Restarts)
	}
	if math.IsNaN(res.Metrics.FinalResidual) {
		t.Error("final residual is NaN")
	}
}

func TestEngineBusyDetected(t *testing.T) {
	g, b := testSystem(t, 23)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	blocking := OpFunc{N: g.N(), F: func(dst, r []float64) {
		if !once {
			once = true
			close(entered)
			<-release
		}
		copy(dst, r)
	}}
	eng, err := NewLapEngine(g, blocking, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := eng.Solve(context.Background(), b)
		done <- err
	}()
	<-entered
	if _, err := eng.Solve(context.Background(), b); !errors.Is(err, ErrEngineBusy) {
		t.Errorf("overlapping solve: err = %v, want ErrEngineBusy", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first solve: %v", err)
	}
	// The engine is free again after the first solve returns.
	if _, err := eng.Solve(context.Background(), b); err != nil {
		t.Errorf("post-release solve: %v", err)
	}
}
