package solver

import (
	"context"
	"fmt"
	"sync/atomic"

	"hcd/internal/graph"
)

// Engine is a reusable solve session: it owns an operator, a preconditioner,
// default options, and all iteration work buffers. Repeated solves on one
// graph — the effective-resistance pattern, batched right-hand sides —
// allocate nothing after the first solve (Metrics.ScratchAllocs == 0).
//
// An Engine is NOT safe for concurrent use; the parallelism lives inside the
// kernels, not across solves. Overlapping calls are detected: the second
// call returns an error wrapping ErrEngineBusy instead of corrupting the
// shared buffers. The X, Residuals, Alphas and Betas slices of a returned
// Result alias the engine's buffers and are only valid until the next call
// on the same engine; copy them if they must outlive it.
type Engine struct {
	a     Operator
	m     Preconditioner
	opt   Options
	inUse atomic.Bool
	s     scratch
	bs    blockScratch // packed buffers for SolveBlock, grown on first use
}

// NewEngine builds a solve session. A nil preconditioner means plain CG.
// Returns an error wrapping graph.ErrBadDimension if the preconditioner's
// dimension disagrees with the operator's.
func NewEngine(a Operator, m Preconditioner, opt Options) (*Engine, error) {
	if m == nil {
		m = Identity(a.Dim())
	}
	if m.Dim() != a.Dim() {
		return nil, fmt.Errorf("solver: preconditioner dimension %d vs operator dimension %d: %w",
			m.Dim(), a.Dim(), graph.ErrBadDimension)
	}
	return &Engine{a: a, m: m, opt: opt}, nil
}

// NewLapEngine builds a solve session for a graph Laplacian system.
func NewLapEngine(g *graph.Graph, m Preconditioner, opt Options) (*Engine, error) {
	return NewEngine(LapOperator(g), m, opt)
}

// Dim returns the system dimension.
func (e *Engine) Dim() int { return e.a.Dim() }

// Options returns the engine's default solve options.
func (e *Engine) Options() Options { return e.opt }

// acquire claims the engine's buffers for one solve. The CAS turns the
// documented "not concurrency-safe" contract into a detected error rather
// than silent buffer corruption.
func (e *Engine) acquire() error {
	if !e.inUse.CompareAndSwap(false, true) {
		return fmt.Errorf("solver: overlapping solve on one engine: %w", ErrEngineBusy)
	}
	return nil
}

func (e *Engine) release() { e.inUse.Store(false) }

// Solve runs PCG on b with the engine's default options.
func (e *Engine) Solve(ctx context.Context, b []float64) (Result, error) {
	if err := e.acquire(); err != nil {
		return Result{}, err
	}
	defer e.release()
	return pcgCore(ctx, e.a, e.m, b, e.opt, &e.s)
}

// SolveWith runs PCG on b with per-call options (overriding the engine
// defaults for this solve only).
func (e *Engine) SolveWith(ctx context.Context, b []float64, opt Options) (Result, error) {
	if err := e.acquire(); err != nil {
		return Result{}, err
	}
	defer e.release()
	return pcgCore(ctx, e.a, e.m, b, opt, &e.s)
}

// SolveBlock runs block PCG on the columns of bs with per-call options,
// returning one Result per column (same order). All columns share every
// matvec and preconditioner traversal; converged columns deflate out of the
// active block. A single column delegates to the scalar core and is
// bit-identical to Solve. Like Solve, the returned slices alias engine
// buffers — each column's X, Residuals, Alphas and Betas are only valid
// until the next call on the same engine.
//
// opt.Recovery is ignored on the block path (k > 1); use per-column scalar
// solves when restart-on-breakdown is required.
func (e *Engine) SolveBlock(ctx context.Context, bs [][]float64, opt Options) ([]Result, error) {
	if err := e.acquire(); err != nil {
		return nil, err
	}
	defer e.release()
	if len(bs) == 1 {
		res, err := pcgCore(ctx, e.a, e.m, bs[0], opt, &e.s)
		if err != nil {
			return nil, err
		}
		return []Result{res}, nil
	}
	return blockCore(ctx, e.a, e.m, bs, opt, &e.bs)
}

// SolveChebyshev runs Chebyshev iteration on b given spectrum bounds
// [lmin, lmax] for M⁻¹A, with the engine's buffers. opt.MaxIter is the
// iteration count; opt.Tol > 0 enables early exit.
func (e *Engine) SolveChebyshev(ctx context.Context, b []float64, lmin, lmax float64, opt Options) (Result, error) {
	if err := e.acquire(); err != nil {
		return Result{}, err
	}
	defer e.release()
	return chebyshevCore(ctx, e.a, e.m, b, lmin, lmax, opt, &e.s)
}
