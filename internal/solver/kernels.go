package solver

import (
	"math"

	"hcd/internal/par"
)

// kernelGrain is the minimum vector length per worker chunk for the level-1
// kernels below. At or below this threshold the kernels run a plain serial
// loop — bit-identical to the historical implementations and, crucially,
// allocation-free: the closures handed to par.For/par.ReduceSum escape to
// worker goroutines and would heap-allocate on every call, which would break
// the Engine's zero-allocation guarantee for small solves. Above the
// threshold, dot products and norms become chunked reductions: associativity
// of the summation changes, so results agree with the serial path only to
// rounding.
const kernelGrain = 16384

func dot(a, b []float64) float64 {
	if len(a) <= kernelGrain || par.Workers() == 1 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	return par.ReduceSum(len(a), kernelGrain, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		return s
	})
}

func norm2(x []float64) float64 {
	if len(x) <= kernelGrain || par.Workers() == 1 {
		s := 0.0
		for _, v := range x {
			s += v * v
		}
		return math.Sqrt(s)
	}
	s := par.ReduceSum(len(x), kernelGrain, func(lo, hi int) float64 {
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += x[i] * x[i]
		}
		return acc
	})
	return math.Sqrt(s)
}

// axpy computes y += a·x.
func axpy(y []float64, a float64, x []float64) {
	if len(y) <= kernelGrain || par.Workers() == 1 {
		for i := range y {
			y[i] += a * x[i]
		}
		return
	}
	par.For(len(y), kernelGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// xpby computes p = z + beta·p (the PCG/Chebyshev direction update).
func xpby(p []float64, z []float64, beta float64) {
	if len(p) <= kernelGrain || par.Workers() == 1 {
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		return
	}
	par.For(len(p), kernelGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p[i] = z[i] + beta*p[i]
		}
	})
}

// sub computes r = b − ax elementwise.
func sub(r, b, ax []float64) {
	if len(r) <= kernelGrain || par.Workers() == 1 {
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		return
	}
	par.For(len(r), kernelGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = b[i] - ax[i]
		}
	})
}

// projectMean subtracts the mean of x from every entry, keeping iterates
// orthogonal to the constant vector on singular Laplacian systems.
func projectMean(x []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	if n <= kernelGrain || par.Workers() == 1 {
		s := 0.0
		for _, v := range x {
			s += v
		}
		mean := s / float64(n)
		for i := range x {
			x[i] -= mean
		}
		return
	}
	s := par.ReduceSum(n, kernelGrain, func(lo, hi int) float64 {
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += x[i]
		}
		return acc
	})
	mean := s / float64(n)
	par.For(n, kernelGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] -= mean
		}
	})
}
