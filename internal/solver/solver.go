// Package solver provides conjugate gradients, preconditioned conjugate
// gradients with residual histories (the instrument behind Figure 6),
// Chebyshev iteration, and spectrum estimation from PCG coefficients (the
// Lanczos connection used to measure condition numbers κ(A, B) throughout
// the experiments).
//
// All iteration loops run on parallel level-1 kernels (see kernels.go) and a
// parallel Laplacian matvec, thread a context.Context for cancellation, and
// report per-solve Metrics. The Engine type (engine.go) owns reusable work
// buffers so repeated solves on one operator allocate nothing.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"hcd/internal/dense"
	"hcd/internal/graph"
)

// ErrNotConverged marks solves that exhausted their iteration budget before
// reaching the requested tolerance. Callers should test with errors.Is.
var ErrNotConverged = errors.New("solver: did not converge")

// Operator is a symmetric positive (semi)definite linear operator.
type Operator interface {
	Dim() int
	Apply(dst, x []float64)
}

// Preconditioner applies an approximate inverse of an Operator.
type Preconditioner interface {
	Dim() int
	Apply(dst, r []float64)
}

// OpFunc adapts a function to the Operator and Preconditioner interfaces.
type OpFunc struct {
	N int
	F func(dst, x []float64)
}

// Dim returns the operator dimension.
func (o OpFunc) Dim() int { return o.N }

// Apply evaluates the wrapped function.
func (o OpFunc) Apply(dst, x []float64) { o.F(dst, x) }

// LapOperator wraps a graph Laplacian as an Operator. The matvec is
// row-blocked over the CSR and runs across cores (see graph.LapMul).
func LapOperator(g *graph.Graph) Operator {
	return OpFunc{N: g.N(), F: g.LapMul}
}

// Identity is the trivial preconditioner (PCG degenerates to CG).
func Identity(n int) Preconditioner {
	return OpFunc{N: n, F: func(dst, r []float64) { copy(dst, r) }}
}

// Jacobi returns the diagonal preconditioner D⁻¹ for the graph Laplacian.
// Vertices with zero volume (isolated) pass through unchanged.
func Jacobi(g *graph.Graph) Preconditioner {
	d := g.Volumes()
	return OpFunc{N: g.N(), F: func(dst, r []float64) {
		for i := range dst {
			if d[i] > 0 {
				dst[i] = r[i] / d[i]
			} else {
				dst[i] = r[i]
			}
		}
	}}
}

// Options controls the iteration.
type Options struct {
	Tol         float64 // relative residual tolerance (default 1e-8)
	MaxIter     int     // default 10·n
	ProjectMean bool    // keep iterates ⊥ 1 (for singular Laplacian systems)
	// CheckEvery is the cancellation-check interval: the iteration loop
	// polls ctx.Done() every CheckEvery iterations (default 8), so a
	// cancelled solve returns within one interval.
	CheckEvery int
	// Progress, when non-nil, is invoked after every iteration with the
	// iteration number (1-based) and the current residual norm. It runs on
	// the solve goroutine; keep it cheap.
	Progress func(iter int, residual float64)
}

// DefaultOptions returns the standard Laplacian-solve settings.
func DefaultOptions() Options {
	return Options{Tol: 1e-8, MaxIter: 0, ProjectMean: true}
}

// Outcome classifies how a solve terminated.
type Outcome int

const (
	// OutcomeUnknown is the zero value; no solve has been run.
	OutcomeUnknown Outcome = iota
	// OutcomeConverged: the residual reached the requested tolerance.
	OutcomeConverged
	// OutcomeMaxIter: the iteration budget was exhausted first.
	OutcomeMaxIter
	// OutcomeCancelled: the context was cancelled or its deadline passed.
	OutcomeCancelled
	// OutcomeBreakdown: a numerical breakdown stopped the recurrence
	// (non-positive curvature pᵀAp or rᵀz — often an exact solution
	// reached, or an indefinite/mismatched preconditioner).
	OutcomeBreakdown
)

// String names the outcome for logs and metrics output.
func (o Outcome) String() string {
	switch o {
	case OutcomeConverged:
		return "converged"
	case OutcomeMaxIter:
		return "max-iterations"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeBreakdown:
		return "breakdown"
	default:
		return "unknown"
	}
}

// Metrics instruments one solve: operator/preconditioner work counts, wall
// time per phase, and the final residual. Every Result carries one.
type Metrics struct {
	MatVecs        int // operator Apply count
	PrecondApplies int // preconditioner Apply count
	Iterations     int
	FinalResidual  float64       // ‖r‖₂ at exit (after projection)
	SetupTime      time.Duration // buffer setup + initial residual/precondition
	IterTime       time.Duration // the iteration loop
	TotalTime      time.Duration
	// ScratchAllocs counts work buffers newly allocated for this solve.
	// It is zero for every solve on a warmed-up Engine.
	ScratchAllocs int
}

// Result reports a completed solve.
type Result struct {
	X          []float64
	Residuals  []float64 // ‖r_i‖₂ for i = 0..Iterations
	Iterations int
	Converged  bool    // Outcome == OutcomeConverged
	Outcome    Outcome // how the iteration terminated
	Metrics    Metrics
	// Alphas and Betas are the PCG coefficients; they define a Lanczos
	// tridiagonal whose eigenvalues estimate the spectrum of M⁻¹A (see
	// SpectrumEstimate).
	Alphas, Betas []float64
}

// scratch owns the work buffers of one solve. A fresh scratch per call gives
// the historical allocate-per-solve behavior; an Engine keeps one scratch
// alive so repeated solves reuse every buffer.
type scratch struct {
	x, r, z, p, ap       []float64
	resid, alphas, betas []float64
	allocs               int
}

// vec returns *buf resized to n, reusing capacity when possible.
func (s *scratch) vec(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
		s.allocs++
	}
	*buf = (*buf)[:n]
	return *buf
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// CG solves A·x = b with plain conjugate gradients.
func CG(a Operator, b []float64, opt Options) Result {
	return PCG(a, Identity(a.Dim()), b, opt)
}

// PCG solves A·x = b with preconditioned conjugate gradients. For singular
// Laplacian operators set opt.ProjectMean so the right-hand side and
// iterates stay orthogonal to the constant vector.
//
// PCG is a thin wrapper over PCGCtx with context.Background() and fresh
// work buffers; it panics on dimension mismatch (historical behavior).
func PCG(a Operator, m Preconditioner, b []float64, opt Options) Result {
	res, err := PCGCtx(context.Background(), a, m, b, opt)
	if err != nil {
		panic("solver: " + err.Error())
	}
	return res
}

// PCGCtx is PCG with cancellation: the iteration loop polls ctx every
// opt.CheckEvery iterations and returns OutcomeCancelled promptly when the
// context is done. It returns an error (wrapping graph.ErrBadDimension) on
// size mismatches instead of panicking.
func PCGCtx(ctx context.Context, a Operator, m Preconditioner, b []float64, opt Options) (Result, error) {
	var s scratch
	return pcgCore(ctx, a, m, b, opt, &s)
}

// pcgCore is the single PCG implementation behind PCG, PCGCtx, CG and
// Engine.Solve. Result slices alias the scratch buffers.
func pcgCore(ctx context.Context, a Operator, m Preconditioner, b []float64, opt Options, s *scratch) (Result, error) {
	start := time.Now()
	n := a.Dim()
	if len(b) != n {
		return Result{}, fmt.Errorf("solver: rhs length %d vs operator dimension %d: %w", len(b), n, graph.ErrBadDimension)
	}
	if m == nil {
		m = Identity(n)
	}
	if m.Dim() != n {
		return Result{}, fmt.Errorf("solver: preconditioner dimension %d vs operator dimension %d: %w", m.Dim(), n, graph.ErrBadDimension)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10*n + 50
	}
	if opt.CheckEvery <= 0 {
		opt.CheckEvery = 8
	}
	startAllocs := s.allocs
	x := s.vec(&s.x, n)
	zero(x)
	r := s.vec(&s.r, n)
	copy(r, b)
	rawNorm := norm2(r)
	if opt.ProjectMean {
		projectMean(r)
	}
	z := s.vec(&s.z, n)
	p := s.vec(&s.p, n)
	ap := s.vec(&s.ap, n)
	res := Result{X: x}
	res.Residuals = s.resid[:0]
	res.Alphas = s.alphas[:0]
	res.Betas = s.betas[:0]
	normB := norm2(r)
	res.Residuals = append(res.Residuals, normB)
	// A right-hand side that is (numerically) all null-space component has
	// nothing left to solve after projection.
	if normB == 0 || normB <= 1e-13*rawNorm {
		res.Outcome = OutcomeConverged
		finishSolve(&res, s, start, time.Time{}, startAllocs)
		return res, nil
	}
	m.Apply(z, r)
	res.Metrics.PrecondApplies++
	if opt.ProjectMean {
		projectMean(z)
	}
	copy(p, z)
	rz := dot(r, z)
	res.Outcome = OutcomeMaxIter
	iterStart := time.Now()
	for iter := 0; iter < opt.MaxIter; iter++ {
		if iter%opt.CheckEvery == 0 && ctx.Err() != nil {
			res.Outcome = OutcomeCancelled
			break
		}
		a.Apply(ap, p)
		res.Metrics.MatVecs++
		pap := dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Numerical breakdown (or exact solution already reached).
			res.Outcome = OutcomeBreakdown
			break
		}
		alpha := rz / pap
		res.Alphas = append(res.Alphas, alpha)
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		if opt.ProjectMean {
			projectMean(r)
		}
		rn := norm2(r)
		res.Residuals = append(res.Residuals, rn)
		res.Iterations = iter + 1
		if opt.Progress != nil {
			opt.Progress(res.Iterations, rn)
		}
		if rn <= opt.Tol*normB {
			res.Outcome = OutcomeConverged
			break
		}
		m.Apply(z, r)
		res.Metrics.PrecondApplies++
		if opt.ProjectMean {
			projectMean(z)
		}
		rzNew := dot(r, z)
		if rzNew <= 0 || math.IsNaN(rzNew) {
			res.Outcome = OutcomeBreakdown
			break
		}
		beta := rzNew / rz
		res.Betas = append(res.Betas, beta)
		xpby(p, z, beta)
		rz = rzNew
	}
	finishSolve(&res, s, start, iterStart, startAllocs)
	return res, nil
}

// finishSolve stamps the metrics common to every exit path and hands the
// (possibly grown) history buffers back to the scratch for reuse. A plain
// function, not a closure: closures capturing the result would heap-allocate
// and break the Engine's zero-allocation guarantee.
func finishSolve(res *Result, s *scratch, start, iterStart time.Time, startAllocs int) {
	now := time.Now()
	if !iterStart.IsZero() {
		res.Metrics.IterTime = now.Sub(iterStart)
	}
	res.Metrics.TotalTime = now.Sub(start)
	res.Metrics.SetupTime = res.Metrics.TotalTime - res.Metrics.IterTime
	res.Metrics.Iterations = res.Iterations
	if k := len(res.Residuals); k > 0 {
		res.Metrics.FinalResidual = res.Residuals[k-1]
	}
	res.Metrics.ScratchAllocs = s.allocs - startAllocs
	res.Converged = res.Outcome == OutcomeConverged
	s.resid, s.alphas, s.betas = res.Residuals, res.Alphas, res.Betas
}

// Chebyshev runs Chebyshev iteration for A·x = b given bounds
// [lmin, lmax] on the spectrum of M⁻¹A. It needs no inner products, making
// it the classical communication-free companion to the parallel
// preconditioners of Section 3.1.
//
// Chebyshev is a thin wrapper over ChebyshevCtx with context.Background();
// it always runs the full iteration count (no tolerance-based early exit).
func Chebyshev(a Operator, m Preconditioner, b []float64, lmin, lmax float64, iters int, projectMeanFlag bool) ([]float64, []float64, error) {
	res, err := ChebyshevCtx(context.Background(), a, m, b, lmin, lmax,
		Options{MaxIter: iters, ProjectMean: projectMeanFlag})
	if err != nil {
		return nil, nil, err
	}
	return res.X, res.Residuals, nil
}

// ChebyshevCtx runs Chebyshev iteration with cancellation and metrics.
// opt.MaxIter is the iteration count; when opt.Tol > 0 the loop exits early
// once ‖r‖ ≤ Tol·‖r₀‖ (the per-iteration residual norm is instrumentation —
// the recurrence itself stays inner-product-free). Outcome is
// OutcomeConverged when the final residual meets Tol, OutcomeMaxIter when the
// budget ran out first, OutcomeCancelled on context cancellation.
func ChebyshevCtx(ctx context.Context, a Operator, m Preconditioner, b []float64, lmin, lmax float64, opt Options) (Result, error) {
	var s scratch
	return chebyshevCore(ctx, a, m, b, lmin, lmax, opt, &s)
}

func chebyshevCore(ctx context.Context, a Operator, m Preconditioner, b []float64, lmin, lmax float64, opt Options, s *scratch) (Result, error) {
	start := time.Now()
	if !(lmin > 0) || !(lmax >= lmin) {
		return Result{}, fmt.Errorf("solver: invalid eigenvalue bounds [%v, %v]", lmin, lmax)
	}
	n := a.Dim()
	if len(b) != n {
		return Result{}, fmt.Errorf("solver: rhs length %d vs operator dimension %d: %w", len(b), n, graph.ErrBadDimension)
	}
	if m == nil {
		m = Identity(n)
	}
	if m.Dim() != n {
		return Result{}, fmt.Errorf("solver: preconditioner dimension %d vs operator dimension %d: %w", m.Dim(), n, graph.ErrBadDimension)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.CheckEvery <= 0 {
		opt.CheckEvery = 8
	}
	startAllocs := s.allocs
	x := s.vec(&s.x, n)
	zero(x)
	r := s.vec(&s.r, n)
	copy(r, b)
	if opt.ProjectMean {
		projectMean(r)
	}
	z := s.vec(&s.z, n)
	p := s.vec(&s.p, n)
	ax := s.vec(&s.ap, n)
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	var alpha, beta float64
	res := Result{X: x}
	res.Residuals = append(s.resid[:0], norm2(r))
	res.Alphas, res.Betas = s.alphas[:0], s.betas[:0]
	normB := res.Residuals[0]
	res.Outcome = OutcomeMaxIter
	iterStart := time.Now()
	for k := 0; k < opt.MaxIter; k++ {
		if k%opt.CheckEvery == 0 && ctx.Err() != nil {
			res.Outcome = OutcomeCancelled
			break
		}
		m.Apply(z, r)
		res.Metrics.PrecondApplies++
		if opt.ProjectMean {
			projectMean(z)
		}
		switch k {
		case 0:
			copy(p, z)
			alpha = 1 / theta
		case 1:
			beta = 0.5 * (delta * alpha) * (delta * alpha)
			alpha = 1 / (theta - beta/alpha)
			xpby(p, z, beta)
		default:
			beta = (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			xpby(p, z, beta)
		}
		axpy(x, alpha, p)
		a.Apply(ax, x)
		res.Metrics.MatVecs++
		sub(r, b, ax)
		if opt.ProjectMean {
			projectMean(r)
		}
		rn := norm2(r)
		res.Residuals = append(res.Residuals, rn)
		res.Iterations = k + 1
		if opt.Progress != nil {
			opt.Progress(res.Iterations, rn)
		}
		if opt.Tol > 0 && rn <= opt.Tol*normB {
			res.Outcome = OutcomeConverged
			break
		}
	}
	finishSolve(&res, s, start, iterStart, startAllocs)
	return res, nil
}

// SpectrumEstimate converts PCG coefficients into estimates of the extreme
// generalized eigenvalues of (A, M): the Lanczos tridiagonal built from the
// α and β sequences has eigenvalues (Ritz values) inside the spectrum of
// M⁻¹A that converge to its extremes. Returns (λmin, λmax).
func SpectrumEstimate(alphas, betas []float64) (float64, float64, error) {
	k := len(alphas)
	if k == 0 {
		return 0, 0, fmt.Errorf("solver: no PCG coefficients")
	}
	d := make([]float64, k)
	e := make([]float64, k-1)
	for j := 0; j < k; j++ {
		d[j] = 1 / alphas[j]
		if j > 0 {
			d[j] += betas[j-1] / alphas[j-1]
		}
	}
	for j := 0; j+1 < k; j++ {
		e[j] = math.Sqrt(betas[j]) / alphas[j]
	}
	vals, err := dense.TridiagEig(d, e)
	if err != nil {
		return 0, 0, err
	}
	return vals[0], vals[len(vals)-1], nil
}

// ConditionEstimate runs PCG on a random ±-mean-free right-hand side and
// returns the estimated condition number κ(M⁻¹A) = λmax/λmin. The rhs
// argument supplies the probe vector (it will be mean-projected).
func ConditionEstimate(a Operator, m Preconditioner, probe []float64, iters int) (float64, error) {
	opt := Options{Tol: 1e-14, MaxIter: iters, ProjectMean: true}
	res := PCG(a, m, probe, opt)
	lmin, lmax, err := SpectrumEstimate(res.Alphas, res.Betas)
	if err != nil {
		return 0, err
	}
	if lmin <= 0 {
		return math.Inf(1), nil
	}
	return lmax / lmin, nil
}
