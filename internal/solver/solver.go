// Package solver provides conjugate gradients, preconditioned conjugate
// gradients with residual histories (the instrument behind Figure 6),
// Chebyshev iteration, and spectrum estimation from PCG coefficients (the
// Lanczos connection used to measure condition numbers κ(A, B) throughout
// the experiments).
package solver

import (
	"fmt"
	"math"

	"hcd/internal/dense"
	"hcd/internal/graph"
)

// Operator is a symmetric positive (semi)definite linear operator.
type Operator interface {
	Dim() int
	Apply(dst, x []float64)
}

// Preconditioner applies an approximate inverse of an Operator.
type Preconditioner interface {
	Dim() int
	Apply(dst, r []float64)
}

// OpFunc adapts a function to the Operator and Preconditioner interfaces.
type OpFunc struct {
	N int
	F func(dst, x []float64)
}

// Dim returns the operator dimension.
func (o OpFunc) Dim() int { return o.N }

// Apply evaluates the wrapped function.
func (o OpFunc) Apply(dst, x []float64) { o.F(dst, x) }

// LapOperator wraps a graph Laplacian as an Operator.
func LapOperator(g *graph.Graph) Operator {
	return OpFunc{N: g.N(), F: g.LapMul}
}

// Identity is the trivial preconditioner (PCG degenerates to CG).
func Identity(n int) Preconditioner {
	return OpFunc{N: n, F: func(dst, r []float64) { copy(dst, r) }}
}

// Jacobi returns the diagonal preconditioner D⁻¹ for the graph Laplacian.
// Vertices with zero volume (isolated) pass through unchanged.
func Jacobi(g *graph.Graph) Preconditioner {
	d := g.Volumes()
	return OpFunc{N: g.N(), F: func(dst, r []float64) {
		for i := range dst {
			if d[i] > 0 {
				dst[i] = r[i] / d[i]
			} else {
				dst[i] = r[i]
			}
		}
	}}
}

// Options controls the iteration.
type Options struct {
	Tol         float64 // relative residual tolerance (default 1e-8)
	MaxIter     int     // default 10·n
	ProjectMean bool    // keep iterates ⊥ 1 (for singular Laplacian systems)
}

// DefaultOptions returns the standard Laplacian-solve settings.
func DefaultOptions() Options {
	return Options{Tol: 1e-8, MaxIter: 0, ProjectMean: true}
}

// Result reports a completed solve.
type Result struct {
	X          []float64
	Residuals  []float64 // ‖r_i‖₂ for i = 0..Iterations
	Iterations int
	Converged  bool
	// Alphas and Betas are the PCG coefficients; they define a Lanczos
	// tridiagonal whose eigenvalues estimate the spectrum of M⁻¹A (see
	// SpectrumEstimate).
	Alphas, Betas []float64
}

// CG solves A·x = b with plain conjugate gradients.
func CG(a Operator, b []float64, opt Options) Result {
	return PCG(a, Identity(a.Dim()), b, opt)
}

// PCG solves A·x = b with preconditioned conjugate gradients. For singular
// Laplacian operators set opt.ProjectMean so the right-hand side and
// iterates stay orthogonal to the constant vector.
func PCG(a Operator, m Preconditioner, b []float64, opt Options) Result {
	n := a.Dim()
	if len(b) != n || m.Dim() != n {
		panic("solver: dimension mismatch")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10*n + 50
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	rawNorm := norm2(r)
	if opt.ProjectMean {
		projectMean(r)
	}
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	res := Result{X: x}
	normB := norm2(r)
	res.Residuals = append(res.Residuals, normB)
	// A right-hand side that is (numerically) all null-space component has
	// nothing left to solve after projection.
	if normB == 0 || normB <= 1e-13*rawNorm {
		res.Converged = true
		return res
	}
	m.Apply(z, r)
	if opt.ProjectMean {
		projectMean(z)
	}
	copy(p, z)
	rz := dot(r, z)
	for iter := 0; iter < opt.MaxIter; iter++ {
		a.Apply(ap, p)
		pap := dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Numerical breakdown (or exact solution already reached).
			break
		}
		alpha := rz / pap
		res.Alphas = append(res.Alphas, alpha)
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		if opt.ProjectMean {
			projectMean(r)
		}
		rn := norm2(r)
		res.Residuals = append(res.Residuals, rn)
		res.Iterations = iter + 1
		if rn <= opt.Tol*normB {
			res.Converged = true
			break
		}
		m.Apply(z, r)
		if opt.ProjectMean {
			projectMean(z)
		}
		rzNew := dot(r, z)
		if rzNew <= 0 || math.IsNaN(rzNew) {
			break
		}
		beta := rzNew / rz
		res.Betas = append(res.Betas, beta)
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	return res
}

// Chebyshev runs Chebyshev iteration for A·x = b given bounds
// [lmin, lmax] on the spectrum of M⁻¹A. It needs no inner products, making
// it the classical communication-free companion to the parallel
// preconditioners of Section 3.1.
func Chebyshev(a Operator, m Preconditioner, b []float64, lmin, lmax float64, iters int, projectMeanFlag bool) ([]float64, []float64, error) {
	if !(lmin > 0) || !(lmax >= lmin) {
		return nil, nil, fmt.Errorf("solver: invalid eigenvalue bounds [%v, %v]", lmin, lmax)
	}
	n := a.Dim()
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	if projectMeanFlag {
		projectMean(r)
	}
	z := make([]float64, n)
	p := make([]float64, n)
	ax := make([]float64, n)
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	var alpha, beta float64
	residuals := []float64{norm2(r)}
	for k := 0; k < iters; k++ {
		m.Apply(z, r)
		if projectMeanFlag {
			projectMean(z)
		}
		switch k {
		case 0:
			copy(p, z)
			alpha = 1 / theta
		case 1:
			beta = 0.5 * (delta * alpha) * (delta * alpha)
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = z[i] + beta*p[i]
			}
		default:
			beta = (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = z[i] + beta*p[i]
			}
		}
		axpy(x, alpha, p)
		a.Apply(ax, x)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		if projectMeanFlag {
			projectMean(r)
		}
		residuals = append(residuals, norm2(r))
	}
	return x, residuals, nil
}

// SpectrumEstimate converts PCG coefficients into estimates of the extreme
// generalized eigenvalues of (A, M): the Lanczos tridiagonal built from the
// α and β sequences has eigenvalues (Ritz values) inside the spectrum of
// M⁻¹A that converge to its extremes. Returns (λmin, λmax).
func SpectrumEstimate(alphas, betas []float64) (float64, float64, error) {
	k := len(alphas)
	if k == 0 {
		return 0, 0, fmt.Errorf("solver: no PCG coefficients")
	}
	d := make([]float64, k)
	e := make([]float64, k-1)
	for j := 0; j < k; j++ {
		d[j] = 1 / alphas[j]
		if j > 0 {
			d[j] += betas[j-1] / alphas[j-1]
		}
	}
	for j := 0; j+1 < k; j++ {
		e[j] = math.Sqrt(betas[j]) / alphas[j]
	}
	vals, err := dense.TridiagEig(d, e)
	if err != nil {
		return 0, 0, err
	}
	return vals[0], vals[len(vals)-1], nil
}

// ConditionEstimate runs PCG on a random ±-mean-free right-hand side and
// returns the estimated condition number κ(M⁻¹A) = λmax/λmin. The rhs
// argument supplies the probe vector (it will be mean-projected).
func ConditionEstimate(a Operator, m Preconditioner, probe []float64, iters int) (float64, error) {
	opt := Options{Tol: 1e-14, MaxIter: iters, ProjectMean: true}
	res := PCG(a, m, probe, opt)
	lmin, lmax, err := SpectrumEstimate(res.Alphas, res.Betas)
	if err != nil {
		return 0, err
	}
	if lmin <= 0 {
		return math.Inf(1), nil
	}
	return lmax / lmin, nil
}

func projectMean(x []float64) {
	s := 0.0
	for _, v := range x {
		s += v
	}
	mean := s / float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y []float64, a float64, x []float64) {
	for i := range y {
		y[i] += a * x[i]
	}
}
