// Package solver provides conjugate gradients, preconditioned conjugate
// gradients with residual histories (the instrument behind Figure 6),
// Chebyshev iteration, and spectrum estimation from PCG coefficients (the
// Lanczos connection used to measure condition numbers κ(A, B) throughout
// the experiments).
//
// All iteration loops run on parallel level-1 kernels (see kernels.go) and a
// parallel Laplacian matvec, thread a context.Context for cancellation, and
// report per-solve Metrics. The Engine type (engine.go) owns reusable work
// buffers so repeated solves on one operator allocate nothing.
//
// # Numerical guardrails
//
// Every iteration is watched by three guards: a non-finite guard (a NaN or
// Inf residual terminates with OutcomeBreakdown instead of iterating on
// garbage), a divergence guard (residual exceeding DivergenceTol·‖b‖
// terminates with OutcomeDiverged, PETSc's dtol idea), and an optional
// stagnation guard (no relative progress over a sliding window terminates
// with OutcomeStagnated). A failed solve carries the tripped guard's
// explanation in Result.Reason. Options.Recovery adds PETSc-style
// restart-on-breakdown: after a breakdown/divergence/stagnation the solve
// restarts from its current iterate (discarding the Krylov space, keeping
// the solution progress) up to MaxRestarts times.
//
// Panics raised inside the iteration — including panics recovered from
// parallel workers by internal/par — are converted to returned errors, so a
// solve can fail but never crash the process.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"hcd/internal/dense"
	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// ErrNotConverged marks solves that exhausted their iteration budget before
// reaching the requested tolerance. Callers should test with errors.Is.
var ErrNotConverged = errors.New("solver: did not converge")

// ErrEngineBusy marks overlapping Solve calls on one Engine, which is
// documented as not concurrency-safe: the second call returns this error
// instead of silently corrupting the shared work buffers. Run one Engine
// per goroutine.
var ErrEngineBusy = errors.New("solver: engine already in use")

// Operator is a symmetric positive (semi)definite linear operator.
type Operator interface {
	Dim() int
	Apply(dst, x []float64)
}

// Preconditioner applies an approximate inverse of an Operator.
type Preconditioner interface {
	Dim() int
	Apply(dst, r []float64)
}

// OpFunc adapts a function to the Operator and Preconditioner interfaces.
type OpFunc struct {
	N int
	F func(dst, x []float64)
}

// Dim returns the operator dimension.
func (o OpFunc) Dim() int { return o.N }

// Apply evaluates the wrapped function.
func (o OpFunc) Apply(dst, x []float64) { o.F(dst, x) }

// lapOperator wraps a graph Laplacian; it implements BlockApplier so block
// solves stream the CSR once for all k columns.
type lapOperator struct{ g *graph.Graph }

func (o lapOperator) Dim() int                           { return o.g.N() }
func (o lapOperator) Apply(dst, x []float64)             { o.g.LapMul(dst, x) }
func (o lapOperator) ApplyBlock(dst, x []float64, k int) { o.g.LapMulBlock(dst, x, k) }

// LapOperator wraps a graph Laplacian as an Operator. The matvec is
// row-blocked over the CSR and runs across cores (see graph.LapMul); it also
// implements BlockApplier for multi-RHS block solves (graph.LapMulBlock).
func LapOperator(g *graph.Graph) Operator {
	return lapOperator{g}
}

// identity implements the trivial preconditioner for both scalar and block
// applies (a packed block copies the same way a vector does).
type identity struct{ n int }

func (p identity) Dim() int                           { return p.n }
func (p identity) Apply(dst, r []float64)             { copy(dst, r) }
func (p identity) ApplyBlock(dst, r []float64, k int) { copy(dst, r) }

// Identity is the trivial preconditioner (PCG degenerates to CG).
func Identity(n int) Preconditioner {
	return identity{n}
}

// jacobi is the diagonal preconditioner; the block apply scales each packed
// row by the same 1/d[v], one diagonal load per vertex for all k columns.
type jacobi struct{ d []float64 }

func (p jacobi) Dim() int { return len(p.d) }

func (p jacobi) Apply(dst, r []float64) {
	for i := range dst {
		if p.d[i] > 0 {
			dst[i] = r[i] / p.d[i]
		} else {
			dst[i] = r[i]
		}
	}
}

func (p jacobi) ApplyBlock(dst, r []float64, k int) {
	for v := range p.d {
		row := dst[v*k : v*k+k]
		src := r[v*k : v*k+k]
		if d := p.d[v]; d > 0 {
			for j := range row {
				row[j] = src[j] / d
			}
		} else {
			copy(row, src)
		}
	}
}

// Jacobi returns the diagonal preconditioner D⁻¹ for the graph Laplacian.
// Vertices with zero volume (isolated) pass through unchanged.
func Jacobi(g *graph.Graph) Preconditioner {
	return jacobi{d: g.Volumes()}
}

// RecoveryPolicy configures restart-on-breakdown. After a recoverable
// failure (OutcomeBreakdown, OutcomeDiverged, OutcomeStagnated) the solve
// restarts from its current iterate: the accumulated solution is kept, the
// Krylov space is discarded, and the residual is recomputed as b − A·x
// (a non-finite iterate is reset to zero first). Each restart gets a fresh
// MaxIter budget, so a fully exhausted solve may run up to
// (1+MaxRestarts)·MaxIter iterations.
type RecoveryPolicy struct {
	// MaxRestarts is the number of restarts attempted after recoverable
	// failures; 0 (the default) disables recovery entirely.
	MaxRestarts int
	// Backoff is the wait before each restart, doubling per restart; the
	// wait aborts promptly when the context is cancelled. Zero restarts
	// immediately — the right setting for in-memory operators; nonzero is
	// for operators backed by flaky external resources.
	Backoff time.Duration
}

// Options controls the iteration.
type Options struct {
	Tol         float64 // relative residual tolerance (default 1e-8)
	MaxIter     int     // default 10·n
	ProjectMean bool    // keep iterates ⊥ 1 (for singular Laplacian systems)
	// CheckEvery is the cancellation-check interval: the iteration loop
	// polls ctx.Done() every CheckEvery iterations (default 8), so a
	// cancelled solve returns within one interval.
	CheckEvery int
	// Progress, when non-nil, is invoked after every iteration with the
	// iteration number (1-based) and the current residual norm. It runs on
	// the solve goroutine; keep it cheap.
	Progress func(iter int, residual float64)
	// Observer, when non-nil, receives the same per-iteration stream as
	// Progress through the obs.IterationObserver interface — the streaming
	// alternative to the post-hoc Residuals copy. Compose several with
	// obs.MultiObserver (e.g. a live writer plus a registry histogram plus
	// a trace counter series). It runs on the solve goroutine; keep it
	// cheap.
	Observer obs.IterationObserver

	// DivergenceTol is the divergence guard: the solve stops with
	// OutcomeDiverged when ‖r‖ exceeds DivergenceTol·‖b‖. Zero selects the
	// default 1e8; a negative value disables the guard. (The non-finite
	// guard — NaN/Inf residuals terminate with OutcomeBreakdown — is always
	// on: no useful iteration survives a non-finite residual.)
	DivergenceTol float64
	// StagnationWindow enables the stagnation guard: the solve stops with
	// OutcomeStagnated when the residual fails to improve by a relative
	// StagnationEps over the last StagnationWindow iterations. Zero (the
	// default) disables the guard — plain CG legitimately plateaus before
	// superlinear convergence kicks in, so stagnation detection is opt-in.
	StagnationWindow int
	// StagnationEps is the minimum relative improvement the window must
	// show; default 1e-3 when StagnationWindow > 0.
	StagnationEps float64
	// Recovery is the restart-on-breakdown policy; the zero value disables
	// restarts (historical behavior).
	Recovery RecoveryPolicy
}

// DefaultOptions returns the standard Laplacian-solve settings.
func DefaultOptions() Options {
	return Options{Tol: 1e-8, MaxIter: 0, ProjectMean: true}
}

// Outcome classifies how a solve terminated.
type Outcome int

const (
	// OutcomeUnknown is the zero value; no solve has been run.
	OutcomeUnknown Outcome = iota
	// OutcomeConverged: the residual reached the requested tolerance.
	OutcomeConverged
	// OutcomeMaxIter: the iteration budget was exhausted first.
	OutcomeMaxIter
	// OutcomeCancelled: the context was cancelled or its deadline passed.
	OutcomeCancelled
	// OutcomeBreakdown: a numerical breakdown stopped the recurrence
	// (non-positive curvature pᵀAp or rᵀz — often an exact solution
	// reached, or an indefinite/mismatched preconditioner — or a
	// non-finite residual).
	OutcomeBreakdown
	// OutcomeDiverged: the residual grew past the divergence guard
	// (Options.DivergenceTol).
	OutcomeDiverged
	// OutcomeStagnated: the residual made no progress over the stagnation
	// window (Options.StagnationWindow).
	OutcomeStagnated
)

// String names the outcome for logs and metrics output.
func (o Outcome) String() string {
	switch o {
	case OutcomeConverged:
		return "converged"
	case OutcomeMaxIter:
		return "max-iterations"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeBreakdown:
		return "breakdown"
	case OutcomeDiverged:
		return "diverged"
	case OutcomeStagnated:
		return "stagnated"
	default:
		return "unknown"
	}
}

// recoverable reports whether a restart can make progress after this
// outcome: breakdowns, divergence and stagnation restart from the current
// iterate; exhausted budgets and cancellations do not.
func recoverable(o Outcome) bool {
	return o == OutcomeBreakdown || o == OutcomeDiverged || o == OutcomeStagnated
}

// Metrics instruments one solve: operator/preconditioner work counts, wall
// time per phase, and the final residual. Every Result carries one.
type Metrics struct {
	MatVecs        int // operator Apply count
	PrecondApplies int // preconditioner Apply count
	Iterations     int
	FinalResidual  float64       // ‖r‖₂ at exit (after projection)
	SetupTime      time.Duration // buffer setup + initial residual/precondition
	IterTime       time.Duration // the iteration loop
	TotalTime      time.Duration
	// ScratchAllocs counts work buffers newly allocated for this solve.
	// It is zero for every solve on a warmed-up Engine.
	ScratchAllocs int
	// Restarts counts recovery restarts taken under Options.Recovery.
	Restarts int
}

// Result reports a completed solve.
type Result struct {
	X          []float64
	Residuals  []float64 // ‖r_i‖₂ for i = 0..Iterations
	Iterations int
	Converged  bool    // Outcome == OutcomeConverged
	Outcome    Outcome // how the iteration terminated
	// Reason explains a guard-terminated solve (which guard tripped, at
	// which iteration, with what values); empty on convergence.
	Reason  string
	Metrics Metrics
	// Alphas and Betas are the PCG coefficients; they define a Lanczos
	// tridiagonal whose eigenvalues estimate the spectrum of M⁻¹A (see
	// SpectrumEstimate). After a recovery restart they cover the final
	// attempt only (a restart discards the Krylov space).
	Alphas, Betas []float64
}

// scratch owns the work buffers of one solve. A fresh scratch per call gives
// the historical allocate-per-solve behavior; an Engine keeps one scratch
// alive so repeated solves reuse every buffer.
type scratch struct {
	x, r, z, p, ap       []float64
	resid, alphas, betas []float64
	allocs               int
}

// vec returns *buf resized to n, reusing capacity when possible.
func (s *scratch) vec(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
		s.allocs++
	}
	*buf = (*buf)[:n]
	return *buf
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// CG solves A·x = b with plain conjugate gradients.
func CG(a Operator, b []float64, opt Options) Result {
	return PCG(a, Identity(a.Dim()), b, opt)
}

// PCG solves A·x = b with preconditioned conjugate gradients. For singular
// Laplacian operators set opt.ProjectMean so the right-hand side and
// iterates stay orthogonal to the constant vector.
//
// PCG is a thin wrapper over PCGCtx with context.Background() and fresh
// work buffers; it panics on dimension mismatch (historical behavior).
func PCG(a Operator, m Preconditioner, b []float64, opt Options) Result {
	res, err := PCGCtx(context.Background(), a, m, b, opt)
	if err != nil {
		panic("solver: " + err.Error())
	}
	return res
}

// PCGCtx is PCG with cancellation: the iteration loop polls ctx every
// opt.CheckEvery iterations and returns OutcomeCancelled promptly when the
// context is done. It returns an error (wrapping graph.ErrBadDimension) on
// size mismatches instead of panicking.
func PCGCtx(ctx context.Context, a Operator, m Preconditioner, b []float64, opt Options) (Result, error) {
	var s scratch
	return pcgCore(ctx, a, m, b, opt, &s)
}

// pcgCore is the single PCG driver behind PCG, PCGCtx, CG and Engine.Solve:
// one pcgIter attempt plus the Options.Recovery restart loop. Result slices
// alias the scratch buffers (except the stitched residual history of a
// restarted solve, which is freshly allocated). A panic during the solve —
// including worker panics surfaced by internal/par — is returned as an
// error carrying the panicking goroutine's stack.
func pcgCore(ctx context.Context, a Operator, m Preconditioner, b []float64, opt Options, s *scratch) (res Result, err error) {
	ctx, sp := obs.StartSpan(ctx, "solve/pcg")
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("solver: panic during solve: %w", par.AsError(v))
		}
		annotateSolveSpan(sp, &res)
		sp.End()
		if reg := obs.RegistryFrom(ctx); reg != nil {
			res.Metrics.Publish(reg)
			publishOutcome(reg, "pcg", res.Outcome)
		}
	}()
	res, err = pcgIter(ctx, a, m, b, opt, s, 0)
	if err != nil || opt.Recovery.MaxRestarts <= 0 || !recoverable(res.Outcome) {
		return res, err
	}
	// Restart loop: the rare path, so stitching the residual history and
	// totals may allocate.
	refNorm := 0.0
	if len(res.Residuals) > 0 {
		refNorm = res.Residuals[0]
	}
	history := append([]float64(nil), res.Residuals...)
	total := res.Metrics
	backoff := opt.Recovery.Backoff
	for restart := 1; restart <= opt.Recovery.MaxRestarts; restart++ {
		if backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				res.Outcome = OutcomeCancelled
				res.Converged = false
				res.Reason = "cancelled during restart backoff after: " + res.Reason
			case <-t.C:
			}
			if res.Outcome == OutcomeCancelled {
				break
			}
			backoff *= 2
		}
		attempt, aerr := pcgIter(ctx, a, m, b, opt, s, refNorm)
		if aerr != nil {
			return res, aerr
		}
		// Drop the restart's ‖r₀‖ sample: it re-measures the same iterate
		// the previous attempt already recorded.
		if len(attempt.Residuals) > 1 {
			history = append(history, attempt.Residuals[1:]...)
		}
		total.MatVecs += attempt.Metrics.MatVecs
		total.PrecondApplies += attempt.Metrics.PrecondApplies
		total.Iterations += attempt.Metrics.Iterations
		total.ScratchAllocs += attempt.Metrics.ScratchAllocs
		total.SetupTime += attempt.Metrics.SetupTime
		total.IterTime += attempt.Metrics.IterTime
		total.TotalTime += attempt.Metrics.TotalTime
		total.Restarts = restart
		total.FinalResidual = attempt.Metrics.FinalResidual
		res = attempt
		res.Metrics = total
		res.Residuals = history
		res.Iterations = total.Iterations
		if !recoverable(res.Outcome) {
			break
		}
	}
	return res, nil
}

// pcgIter runs one PCG attempt. refNorm > 0 marks a recovery restart: the
// iterate in s.x is kept (reset to zero only if non-finite), the residual is
// recomputed as b − A·x, and convergence/divergence stay relative to
// refNorm — the first attempt's ‖r₀‖ — so a restart cannot weaken the
// termination criteria.
func pcgIter(ctx context.Context, a Operator, m Preconditioner, b []float64, opt Options, s *scratch, refNorm float64) (Result, error) {
	start := time.Now()
	n := a.Dim()
	if len(b) != n {
		return Result{}, fmt.Errorf("solver: rhs length %d vs operator dimension %d: %w", len(b), n, graph.ErrBadDimension)
	}
	if m == nil {
		m = Identity(n)
	}
	if m.Dim() != n {
		return Result{}, fmt.Errorf("solver: preconditioner dimension %d vs operator dimension %d: %w", m.Dim(), n, graph.ErrBadDimension)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10*n + 50
	}
	if opt.CheckEvery <= 0 {
		opt.CheckEvery = 8
	}
	divTol := opt.DivergenceTol
	if divTol == 0 {
		divTol = 1e8
	}
	stagEps := opt.StagnationEps
	if stagEps <= 0 {
		stagEps = 1e-3
	}
	_, sp := obs.StartSpan(ctx, "solve/attempt")
	defer sp.End()
	startAllocs := s.allocs
	x := s.vec(&s.x, n)
	r := s.vec(&s.r, n)
	warm := refNorm > 0
	if warm && !finite(x) {
		warm = false // a non-finite iterate restarts from scratch
	}
	if warm {
		a.Apply(r, x) // r = b − A·x: resume from the accumulated solution
		for i := range r {
			r[i] = b[i] - r[i]
		}
	} else {
		zero(x)
		copy(r, b)
	}
	rawNorm := norm2(r)
	if opt.ProjectMean {
		projectMean(r)
	}
	z := s.vec(&s.z, n)
	p := s.vec(&s.p, n)
	ap := s.vec(&s.ap, n)
	res := Result{X: x}
	if warm {
		res.Metrics.MatVecs++
	}
	res.Residuals = s.resid[:0]
	res.Alphas = s.alphas[:0]
	res.Betas = s.betas[:0]
	normB := norm2(r)
	res.Residuals = append(res.Residuals, normB)
	if refNorm <= 0 {
		refNorm = normB
	}
	// A right-hand side that is (numerically) all null-space component has
	// nothing left to solve after projection.
	if normB == 0 || normB <= 1e-13*rawNorm || normB <= opt.Tol*refNorm {
		res.Outcome = OutcomeConverged
		finishSolve(&res, s, start, time.Time{}, startAllocs)
		annotateSolveSpan(sp, &res)
		return res, nil
	}
	m.Apply(z, r)
	res.Metrics.PrecondApplies++
	if opt.ProjectMean {
		projectMean(z)
	}
	copy(p, z)
	rz := dot(r, z)
	res.Outcome = OutcomeMaxIter
	iterStart := time.Now()
	for iter := 0; iter < opt.MaxIter; iter++ {
		if iter%opt.CheckEvery == 0 && ctx.Err() != nil {
			res.Outcome = OutcomeCancelled
			break
		}
		a.Apply(ap, p)
		res.Metrics.MatVecs++
		if faultinject.Enabled() && faultinject.Fire(faultinject.MatvecNaN) {
			ap[0] = math.NaN()
		}
		pap := dot(p, ap)
		if faultinject.Enabled() && faultinject.Fire(faultinject.ForceBreakdown) {
			pap = -1
		}
		if pap <= 0 || math.IsNaN(pap) {
			// Numerical breakdown (or exact solution already reached).
			res.Outcome = OutcomeBreakdown
			res.Reason = fmt.Sprintf("non-positive curvature pᵀAp = %g at iteration %d", pap, iter+1)
			break
		}
		alpha := rz / pap
		res.Alphas = append(res.Alphas, alpha)
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		if opt.ProjectMean {
			projectMean(r)
		}
		rn := norm2(r)
		res.Residuals = append(res.Residuals, rn)
		res.Iterations = iter + 1
		if opt.Progress != nil {
			opt.Progress(res.Iterations, rn)
		}
		if opt.Observer != nil {
			opt.Observer.ObserveIteration(res.Iterations, rn)
		}
		// Guards, in severity order. The non-finite check comes first: NaN
		// compares false against every threshold, so the convergence and
		// divergence tests would both silently pass over it.
		if math.IsNaN(rn) || math.IsInf(rn, 0) {
			res.Outcome = OutcomeBreakdown
			res.Reason = fmt.Sprintf("non-finite residual ‖r‖ = %g at iteration %d", rn, res.Iterations)
			break
		}
		if rn <= opt.Tol*refNorm {
			res.Outcome = OutcomeConverged
			break
		}
		if divTol > 0 && rn > divTol*refNorm {
			res.Outcome = OutcomeDiverged
			res.Reason = fmt.Sprintf("residual ‖r‖ = %g exceeded %g·‖r₀‖ = %g at iteration %d",
				rn, divTol, divTol*refNorm, res.Iterations)
			break
		}
		if w := opt.StagnationWindow; w > 0 && res.Iterations >= w {
			ref := res.Residuals[len(res.Residuals)-1-w]
			if rn >= (1-stagEps)*ref {
				res.Outcome = OutcomeStagnated
				res.Reason = fmt.Sprintf("residual improved < %g relative over the last %d iterations (‖r‖ %g → %g)",
					stagEps, w, ref, rn)
				break
			}
		}
		m.Apply(z, r)
		res.Metrics.PrecondApplies++
		if opt.ProjectMean {
			projectMean(z)
		}
		rzNew := dot(r, z)
		if rzNew <= 0 || math.IsNaN(rzNew) {
			res.Outcome = OutcomeBreakdown
			res.Reason = fmt.Sprintf("non-positive rᵀz = %g at iteration %d", rzNew, res.Iterations)
			break
		}
		beta := rzNew / rz
		res.Betas = append(res.Betas, beta)
		xpby(p, z, beta)
		rz = rzNew
	}
	finishSolve(&res, s, start, iterStart, startAllocs)
	annotateSolveSpan(sp, &res)
	return res, nil
}

// annotateSolveSpan stamps the termination summary onto a solve span; the
// nil-span fast path keeps the disabled-tracing case free of the boxing
// allocations the Arg calls would otherwise perform.
func annotateSolveSpan(sp *obs.Span, res *Result) {
	if sp == nil {
		return
	}
	sp.Arg("outcome", res.Outcome.String())
	sp.Arg("iterations", res.Iterations)
	sp.Arg("matvecs", res.Metrics.MatVecs)
	sp.Arg("final_residual", res.Metrics.FinalResidual)
	if res.Metrics.Restarts > 0 {
		sp.Arg("restarts", res.Metrics.Restarts)
	}
	if res.Reason != "" {
		sp.Arg("reason", res.Reason)
	}
}

// finite reports whether every entry of x is finite. Only runs on the rare
// restart path, so a serial scan is fine.
func finite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// finishSolve stamps the metrics common to every exit path and hands the
// (possibly grown) history buffers back to the scratch for reuse. A plain
// function, not a closure: closures capturing the result would heap-allocate
// and break the Engine's zero-allocation guarantee.
func finishSolve(res *Result, s *scratch, start, iterStart time.Time, startAllocs int) {
	now := time.Now()
	if !iterStart.IsZero() {
		res.Metrics.IterTime = now.Sub(iterStart)
	}
	res.Metrics.TotalTime = now.Sub(start)
	res.Metrics.SetupTime = res.Metrics.TotalTime - res.Metrics.IterTime
	res.Metrics.Iterations = res.Iterations
	if k := len(res.Residuals); k > 0 {
		res.Metrics.FinalResidual = res.Residuals[k-1]
	}
	res.Metrics.ScratchAllocs = s.allocs - startAllocs
	res.Converged = res.Outcome == OutcomeConverged
	s.resid, s.alphas, s.betas = res.Residuals, res.Alphas, res.Betas
}

// Chebyshev runs Chebyshev iteration for A·x = b given bounds
// [lmin, lmax] on the spectrum of M⁻¹A. It needs no inner products, making
// it the classical communication-free companion to the parallel
// preconditioners of Section 3.1.
//
// Chebyshev is a thin wrapper over ChebyshevCtx with context.Background();
// it always runs the full iteration count (no tolerance-based early exit).
func Chebyshev(a Operator, m Preconditioner, b []float64, lmin, lmax float64, iters int, projectMeanFlag bool) ([]float64, []float64, error) {
	res, err := ChebyshevCtx(context.Background(), a, m, b, lmin, lmax,
		Options{MaxIter: iters, ProjectMean: projectMeanFlag})
	if err != nil {
		return nil, nil, err
	}
	return res.X, res.Residuals, nil
}

// ChebyshevCtx runs Chebyshev iteration with cancellation and metrics.
// opt.MaxIter is the iteration count; when opt.Tol > 0 the loop exits early
// once ‖r‖ ≤ Tol·‖r₀‖ (the per-iteration residual norm is instrumentation —
// the recurrence itself stays inner-product-free). Outcome is
// OutcomeConverged when the final residual meets Tol, OutcomeMaxIter when the
// budget ran out first, OutcomeCancelled on context cancellation,
// OutcomeBreakdown on a non-finite residual, OutcomeDiverged past the
// divergence guard (wrong eigenvalue bounds make Chebyshev diverge
// geometrically, so the guard matters here even more than for PCG).
func ChebyshevCtx(ctx context.Context, a Operator, m Preconditioner, b []float64, lmin, lmax float64, opt Options) (Result, error) {
	var s scratch
	return chebyshevCore(ctx, a, m, b, lmin, lmax, opt, &s)
}

func chebyshevCore(ctx context.Context, a Operator, m Preconditioner, b []float64, lmin, lmax float64, opt Options, s *scratch) (res Result, err error) {
	ctx, sp := obs.StartSpan(ctx, "solve/chebyshev")
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("solver: panic during solve: %w", par.AsError(v))
		}
		annotateSolveSpan(sp, &res)
		sp.End()
		if reg := obs.RegistryFrom(ctx); reg != nil {
			res.Metrics.Publish(reg)
			publishOutcome(reg, "chebyshev", res.Outcome)
		}
	}()
	start := time.Now()
	if !(lmin > 0) || !(lmax >= lmin) {
		return Result{}, fmt.Errorf("solver: invalid eigenvalue bounds [%v, %v]", lmin, lmax)
	}
	n := a.Dim()
	if len(b) != n {
		return Result{}, fmt.Errorf("solver: rhs length %d vs operator dimension %d: %w", len(b), n, graph.ErrBadDimension)
	}
	if m == nil {
		m = Identity(n)
	}
	if m.Dim() != n {
		return Result{}, fmt.Errorf("solver: preconditioner dimension %d vs operator dimension %d: %w", m.Dim(), n, graph.ErrBadDimension)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.CheckEvery <= 0 {
		opt.CheckEvery = 8
	}
	divTol := opt.DivergenceTol
	if divTol == 0 {
		divTol = 1e8
	}
	startAllocs := s.allocs
	x := s.vec(&s.x, n)
	zero(x)
	r := s.vec(&s.r, n)
	copy(r, b)
	if opt.ProjectMean {
		projectMean(r)
	}
	z := s.vec(&s.z, n)
	p := s.vec(&s.p, n)
	ax := s.vec(&s.ap, n)
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	var alpha, beta float64
	res = Result{X: x}
	res.Residuals = append(s.resid[:0], norm2(r))
	res.Alphas, res.Betas = s.alphas[:0], s.betas[:0]
	normB := res.Residuals[0]
	res.Outcome = OutcomeMaxIter
	iterStart := time.Now()
	for k := 0; k < opt.MaxIter; k++ {
		if k%opt.CheckEvery == 0 && ctx.Err() != nil {
			res.Outcome = OutcomeCancelled
			break
		}
		m.Apply(z, r)
		res.Metrics.PrecondApplies++
		if opt.ProjectMean {
			projectMean(z)
		}
		switch k {
		case 0:
			copy(p, z)
			alpha = 1 / theta
		case 1:
			beta = 0.5 * (delta * alpha) * (delta * alpha)
			alpha = 1 / (theta - beta/alpha)
			xpby(p, z, beta)
		default:
			beta = (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			xpby(p, z, beta)
		}
		axpy(x, alpha, p)
		a.Apply(ax, x)
		res.Metrics.MatVecs++
		if faultinject.Enabled() && faultinject.Fire(faultinject.MatvecNaN) {
			ax[0] = math.NaN()
		}
		sub(r, b, ax)
		if opt.ProjectMean {
			projectMean(r)
		}
		rn := norm2(r)
		res.Residuals = append(res.Residuals, rn)
		res.Iterations = k + 1
		if opt.Progress != nil {
			opt.Progress(res.Iterations, rn)
		}
		if opt.Observer != nil {
			opt.Observer.ObserveIteration(res.Iterations, rn)
		}
		if math.IsNaN(rn) || math.IsInf(rn, 0) {
			res.Outcome = OutcomeBreakdown
			res.Reason = fmt.Sprintf("non-finite residual ‖r‖ = %g at iteration %d", rn, res.Iterations)
			break
		}
		if opt.Tol > 0 && rn <= opt.Tol*normB {
			res.Outcome = OutcomeConverged
			break
		}
		if divTol > 0 && rn > divTol*normB {
			res.Outcome = OutcomeDiverged
			res.Reason = fmt.Sprintf("residual ‖r‖ = %g exceeded %g·‖r₀‖ = %g at iteration %d",
				rn, divTol, divTol*normB, res.Iterations)
			break
		}
	}
	finishSolve(&res, s, start, iterStart, startAllocs)
	return res, nil
}

// SpectrumEstimate converts PCG coefficients into estimates of the extreme
// generalized eigenvalues of (A, M): the Lanczos tridiagonal built from the
// α and β sequences has eigenvalues (Ritz values) inside the spectrum of
// M⁻¹A that converge to its extremes. Returns (λmin, λmax).
func SpectrumEstimate(alphas, betas []float64) (float64, float64, error) {
	k := len(alphas)
	if k == 0 {
		return 0, 0, fmt.Errorf("solver: no PCG coefficients")
	}
	d := make([]float64, k)
	e := make([]float64, k-1)
	for j := 0; j < k; j++ {
		d[j] = 1 / alphas[j]
		if j > 0 {
			d[j] += betas[j-1] / alphas[j-1]
		}
	}
	for j := 0; j+1 < k; j++ {
		e[j] = math.Sqrt(betas[j]) / alphas[j]
	}
	vals, err := dense.TridiagEig(d, e)
	if err != nil {
		return 0, 0, err
	}
	return vals[0], vals[len(vals)-1], nil
}

// ConditionEstimate runs PCG on a random ±-mean-free right-hand side and
// returns the estimated condition number κ(M⁻¹A) = λmax/λmin. The rhs
// argument supplies the probe vector (it will be mean-projected).
func ConditionEstimate(a Operator, m Preconditioner, probe []float64, iters int) (float64, error) {
	opt := Options{Tol: 1e-14, MaxIter: iters, ProjectMean: true}
	res := PCG(a, m, probe, opt)
	lmin, lmax, err := SpectrumEstimate(res.Alphas, res.Betas)
	if err != nil {
		return 0, err
	}
	if lmin <= 0 {
		return math.Inf(1), nil
	}
	return lmax / lmin, nil
}
