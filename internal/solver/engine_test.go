package solver

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"hcd/internal/graph"
	"hcd/internal/workload"
)

// forceParallel raises GOMAXPROCS so the chunked kernel paths actually fan
// out even on single-core CI machines; returns a restore function.
func forceParallel(p int) func() {
	prev := runtime.GOMAXPROCS(p)
	return func() { runtime.GOMAXPROCS(prev) }
}

func randomConnectedGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	es := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		es = append(es, graph.Edge{U: rng.Intn(v), V: v, W: 0.1 + rng.Float64()})
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			es = append(es, graph.Edge{U: u, V: v, W: 0.1 + rng.Float64()})
		}
	}
	return graph.MustFromEdges(n, es)
}

// The parallel row-blocked matvec computes every row exactly as the serial
// loop does, so the results must be bitwise identical.
func TestParallelMatvecBitwiseEqualsSerial(t *testing.T) {
	defer forceParallel(8)()
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{50, 1000, 20000} {
		g := randomConnectedGraph(rng, n, n/2)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		got := make([]float64, n)
		g.LapMulSerial(want, x)
		g.LapMul(got, x)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d: row %d differs: serial %v parallel %v", n, i, want[i], got[i])
			}
		}
	}
}

// Chunked reductions reassociate the summation, so dot/norm/projectMean agree
// with the serial reference only to rounding.
func TestParallelKernelsMatchSerial(t *testing.T) {
	defer forceParallel(8)()
	rng := rand.New(rand.NewSource(12))
	n := 3*kernelGrain + 137 // force multiple chunks
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	serialDot := 0.0
	for i := range a {
		serialDot += a[i] * b[i]
	}
	if d := dot(a, b); math.Abs(d-serialDot) > 1e-9*(1+math.Abs(serialDot)) {
		t.Errorf("dot: parallel %v vs serial %v", d, serialDot)
	}
	serialNorm := 0.0
	for _, v := range a {
		serialNorm += v * v
	}
	serialNorm = math.Sqrt(serialNorm)
	if nn := norm2(a); math.Abs(nn-serialNorm) > 1e-9*(1+serialNorm) {
		t.Errorf("norm2: parallel %v vs serial %v", nn, serialNorm)
	}

	y := append([]float64(nil), a...)
	axpy(y, 0.37, b)
	for i := range y {
		if want := a[i] + 0.37*b[i]; y[i] != want {
			t.Fatalf("axpy row %d: %v vs %v", i, y[i], want)
		}
	}

	pm := append([]float64(nil), a...)
	projectMean(pm)
	s := 0.0
	for _, v := range pm {
		s += v
	}
	if math.Abs(s/float64(n)) > 1e-12 {
		t.Errorf("projectMean left mean %v", s/float64(n))
	}
}

// PCG under forced parallelism must solve to the same tolerance as the
// serial path and agree with it closely (identical recurrence, reassociated
// reductions).
func TestPCGParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := workload.Grid2D(40, 40, workload.Lognormal(1), 5)
	b := meanFreeRHS(rng, g.N())
	serial := PCG(LapOperator(g), Jacobi(g), b, DefaultOptions())

	restore := forceParallel(8)
	par := PCG(LapOperator(g), Jacobi(g), b, DefaultOptions())
	restore()

	if !serial.Converged || !par.Converged {
		t.Fatalf("convergence: serial %v parallel %v", serial.Outcome, par.Outcome)
	}
	for i := range serial.X {
		if math.Abs(serial.X[i]-par.X[i]) > 1e-6 {
			t.Fatalf("x[%d]: serial %v parallel %v", i, serial.X[i], par.X[i])
		}
	}
}

// slowOp wraps an operator with a per-apply delay so a cancellation arriving
// mid-solve is observable.
type slowOp struct {
	op    Operator
	delay time.Duration
}

func (s slowOp) Dim() int { return s.op.Dim() }
func (s slowOp) Apply(dst, x []float64) {
	time.Sleep(s.delay)
	s.op.Apply(dst, x)
}

func TestCancellationReturnsPromptly(t *testing.T) {
	g := workload.Grid2D(30, 30, workload.Lognormal(1), 7)
	rng := rand.New(rand.NewSource(14))
	b := meanFreeRHS(rng, g.N())
	op := slowOp{op: LapOperator(g), delay: 2 * time.Millisecond}
	opt := DefaultOptions()
	opt.Tol = 1e-14 // keep it iterating until cancelled
	opt.CheckEvery = 1
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := PCGCtx(ctx, op, Jacobi(g), b, opt)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCancelled {
		t.Fatalf("outcome %v, want cancelled (after %d iterations)", res.Outcome, res.Iterations)
	}
	if res.Converged {
		t.Error("cancelled solve reported Converged")
	}
	// CheckEvery=1 → at most one 2ms apply after the cancel lands.
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancelled solve took %v", elapsed)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	g := workload.Grid2D(10, 10, workload.Lognormal(1), 7)
	rng := rand.New(rand.NewSource(15))
	b := meanFreeRHS(rng, g.N())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := PCGCtx(ctx, LapOperator(g), Jacobi(g), b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCancelled || res.Iterations != 0 {
		t.Errorf("outcome %v after %d iterations, want immediate cancel", res.Outcome, res.Iterations)
	}
}

func TestChebyshevCancellation(t *testing.T) {
	g := workload.Grid2D(20, 20, workload.Lognormal(1), 7)
	rng := rand.New(rand.NewSource(16))
	b := meanFreeRHS(rng, g.N())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ChebyshevCtx(ctx, LapOperator(g), Jacobi(g), b, 0.1, 2.0,
		Options{MaxIter: 100, ProjectMean: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCancelled || res.Iterations != 0 {
		t.Errorf("outcome %v after %d iterations, want immediate cancel", res.Outcome, res.Iterations)
	}
}

func TestOutcomeMaxIter(t *testing.T) {
	g := workload.Grid2D(20, 20, workload.Lognormal(1), 3)
	rng := rand.New(rand.NewSource(17))
	b := meanFreeRHS(rng, g.N())
	opt := DefaultOptions()
	opt.MaxIter = 2
	res := PCG(LapOperator(g), Jacobi(g), b, opt)
	if res.Outcome != OutcomeMaxIter || res.Converged {
		t.Errorf("outcome %v converged=%v, want max-iterations", res.Outcome, res.Converged)
	}
	if errors.Is(ErrNotConverged, ErrNotConverged) != true {
		t.Error("sentinel identity broken")
	}
}

func TestMetricsPopulated(t *testing.T) {
	g := workload.Grid3D(8, 8, 8, workload.Lognormal(1), 2)
	rng := rand.New(rand.NewSource(18))
	b := meanFreeRHS(rng, g.N())
	res := PCG(LapOperator(g), Jacobi(g), b, DefaultOptions())
	m := res.Metrics
	if !res.Converged {
		t.Fatalf("solve did not converge: %v", res.Outcome)
	}
	if m.MatVecs != res.Iterations {
		t.Errorf("MatVecs %d vs iterations %d", m.MatVecs, res.Iterations)
	}
	if m.PrecondApplies < res.Iterations {
		t.Errorf("PrecondApplies %d < iterations %d", m.PrecondApplies, res.Iterations)
	}
	if m.Iterations != res.Iterations || m.TotalTime <= 0 {
		t.Errorf("metrics %+v inconsistent with result", m)
	}
	if m.FinalResidual != res.Residuals[len(res.Residuals)-1] {
		t.Errorf("FinalResidual %v vs history tail %v", m.FinalResidual, res.Residuals[len(res.Residuals)-1])
	}
	if m.TotalTime < m.IterTime {
		t.Errorf("TotalTime %v < IterTime %v", m.TotalTime, m.IterTime)
	}

	cres, err := ChebyshevCtx(context.Background(), LapOperator(g), Jacobi(g), b, 0.05, 2.5,
		Options{MaxIter: 30, ProjectMean: true})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Metrics.MatVecs != 30 || cres.Metrics.PrecondApplies != 30 {
		t.Errorf("chebyshev metrics %+v, want 30 matvecs and applies", cres.Metrics)
	}
	if cres.Outcome != OutcomeMaxIter {
		t.Errorf("chebyshev outcome %v without Tol, want max-iterations", cres.Outcome)
	}
}

func TestProgressCallback(t *testing.T) {
	g := workload.Grid2D(15, 15, workload.Lognormal(1), 4)
	rng := rand.New(rand.NewSource(19))
	b := meanFreeRHS(rng, g.N())
	var iters []int
	opt := DefaultOptions()
	opt.Progress = func(iter int, resid float64) {
		iters = append(iters, iter)
		if resid < 0 || math.IsNaN(resid) {
			t.Errorf("bad residual %v at iter %d", resid, iter)
		}
	}
	res := PCG(LapOperator(g), Jacobi(g), b, opt)
	if len(iters) != res.Iterations {
		t.Errorf("progress called %d times for %d iterations", len(iters), res.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("progress sequence broken at %d: %v", i, it)
		}
	}
}

func TestEngineRepeatedSolvesZeroAlloc(t *testing.T) {
	// Small graph: every kernel is below the parallel grain, so the solve is
	// pure arithmetic on engine-owned buffers.
	g := workload.Grid2D(16, 16, workload.Lognormal(1), 5)
	rng := rand.New(rand.NewSource(20))
	b := meanFreeRHS(rng, g.N())
	eng, err := NewLapEngine(g, Jacobi(g), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Solve(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatalf("warmup did not converge: %v", warm.Outcome)
	}
	if warm.Metrics.ScratchAllocs == 0 {
		t.Error("first solve should report its buffer allocations")
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := eng.Solve(context.Background(), b)
		if err != nil || !res.Converged {
			t.Fatal("warm solve failed")
		}
		if res.Metrics.ScratchAllocs != 0 {
			t.Fatalf("warm solve allocated %d scratch buffers", res.Metrics.ScratchAllocs)
		}
	})
	if allocs != 0 {
		t.Errorf("warm engine solve allocates %v times per run, want 0", allocs)
	}
}

func TestEngineResultsAliasBuffers(t *testing.T) {
	g := workload.Grid2D(12, 12, workload.Lognormal(1), 6)
	rng := rand.New(rand.NewSource(21))
	b1 := meanFreeRHS(rng, g.N())
	b2 := meanFreeRHS(rng, g.N())
	eng, err := NewLapEngine(g, Jacobi(g), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := eng.Solve(context.Background(), b1)
	x1 := append([]float64(nil), r1.X...)
	r2, _ := eng.Solve(context.Background(), b2)
	// r1.X aliases the engine buffer and has been overwritten by r2.
	if &r1.X[0] != &r2.X[0] {
		t.Error("engine results should share the X buffer")
	}
	// Sanity: the copied snapshot still verifies against b1.
	ax := make([]float64, g.N())
	g.LapMul(ax, x1)
	for i := range ax {
		if math.Abs(ax[i]-b1[i]) > 1e-5 {
			t.Fatalf("snapshot of first solve no longer solves b1 at %d", i)
		}
	}
}

func TestEngineChebyshevAndDimErrors(t *testing.T) {
	g := workload.Grid2D(12, 12, workload.Lognormal(1), 6)
	rng := rand.New(rand.NewSource(22))
	b := meanFreeRHS(rng, g.N())
	eng, err := NewLapEngine(g, Jacobi(g), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap spectrum bounds from a PCG probe, as SolveChebyshev does.
	probe, err := eng.SolveWith(context.Background(), b, Options{Tol: 1e-12, MaxIter: 40, ProjectMean: true})
	if err != nil {
		t.Fatal(err)
	}
	lmin, lmax, err := SpectrumEstimate(probe.Alphas, probe.Betas)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SolveChebyshev(context.Background(), b, lmin*0.8, lmax*1.2,
		Options{MaxIter: 1000, ProjectMean: true, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeConverged {
		t.Errorf("chebyshev with Tol did not converge: %v after %d iters (resid %v)",
			res.Outcome, res.Iterations, res.Metrics.FinalResidual)
	}
	if _, err := eng.Solve(context.Background(), b[:10]); !errors.Is(err, graph.ErrBadDimension) {
		t.Errorf("short rhs error %v, want ErrBadDimension", err)
	}
	if _, err := NewLapEngine(g, Identity(3), DefaultOptions()); !errors.Is(err, graph.ErrBadDimension) {
		t.Errorf("mismatched preconditioner error %v, want ErrBadDimension", err)
	}
}
