package solver

import "hcd/internal/par"

// Block (multi-RHS) level-1 kernels. All of them operate on packed row-major
// [n][k] blocks — entry (v, j) lives at x[v*k+j] — so one sweep over the
// block streams each cache line once for all k columns, where the scalar
// kernels would stream the vectors k separate times. The hot kernels are
// *fused*: the PCG update x += α∘p, r −= α∘ap runs in the same pass that
// accumulates the column sums (or squared norms) the next step needs,
// cutting the per-iteration memory passes roughly in half versus running the
// scalar kernel sequence per column.
//
// Reductions use a fixed chunk partition that depends only on (n, k), never
// on the worker count: per-chunk partials are written into a scratch table
// and combined in chunk order, so every reduction — and therefore the whole
// block solve — is bit-identical at any GOMAXPROCS. (The scalar kernels
// instead switch between a serial loop and par.ReduceSum, which is why the
// k=1 path delegates to the scalar core rather than emulating it here.)

// blockGrain returns the per-chunk row count for width-k block kernels: the
// scalar kernel grain scaled down by the block width so a chunk touches
// roughly the same number of floats, floored to bound scheduling overhead.
// It must depend only on k — the reduction chunk layout derives from it.
func blockGrain(k int) int {
	g := kernelGrain / k
	if g < 512 {
		g = 512
	}
	return g
}

// reduceRows runs fn over a fixed partition of [0, n) into blockGrain(k)-row
// chunks, each accumulating per-column partials into its own k-wide slot of
// the scratch partial table, then combines the partials in chunk order. The
// partition and combination order are functions of (n, k) alone, so the
// result is bit-identical at any GOMAXPROCS. fn may also mutate the block
// elementwise (the fused kernels do); chunks cover disjoint row ranges, so
// such writes never race.
func (s *blockScratch) reduceRows(n, k int, out []float64, fn func(lo, hi int, acc []float64)) {
	for j := 0; j < k; j++ {
		out[j] = 0
	}
	grain := blockGrain(k)
	chunks := (n + grain - 1) / grain
	if chunks <= 1 {
		fn(0, n, out)
		return
	}
	partial := s.vec(&s.partial, chunks*k)
	zero(partial)
	run := func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi, partial[c*k:c*k+k])
		}
	}
	if par.Workers() == 1 {
		// Same chunk partition as the parallel path: still one fn call per
		// chunk, so the partial sums round identically.
		run(0, chunks)
	} else {
		par.For(chunks, 1, run)
	}
	for c := 0; c < chunks; c++ {
		p := partial[c*k : c*k+k]
		for j := 0; j < k; j++ {
			out[j] += p[j]
		}
	}
}

// blockDots computes out[j] = Σ_v a[v·k+j]·b[v·k+j] for each column j.
func (s *blockScratch) blockDots(a, b []float64, n, k int, out []float64) {
	s.reduceRows(n, k, out, func(lo, hi int, acc []float64) {
		for v := lo; v < hi; v++ {
			av := a[v*k : v*k+k : v*k+k]
			bv := b[v*k : v*k+k : v*k+k]
			for j := range av {
				acc[j] += av[j] * bv[j]
			}
		}
	})
}

// blockNormSq computes out[j] = Σ_v x[v·k+j]² (squared column norms).
func (s *blockScratch) blockNormSq(x []float64, n, k int, out []float64) {
	s.reduceRows(n, k, out, func(lo, hi int, acc []float64) {
		for v := lo; v < hi; v++ {
			xv := x[v*k : v*k+k : v*k+k]
			for j := range xv {
				acc[j] += xv[j] * xv[j]
			}
		}
	})
}

// blockColSums computes out[j] = Σ_v x[v·k+j] (pass 1 of the block mean
// projection).
func (s *blockScratch) blockColSums(x []float64, n, k int, out []float64) {
	s.reduceRows(n, k, out, func(lo, hi int, acc []float64) {
		for v := lo; v < hi; v++ {
			xv := x[v*k : v*k+k : v*k+k]
			for j := range xv {
				acc[j] += xv[j]
			}
		}
	})
}

// blockSubMeanNormSq subtracts mean[j] from column j and accumulates the new
// squared column norms in the same sweep (fused pass 2 of the projection).
func (s *blockScratch) blockSubMeanNormSq(x []float64, n, k int, mean, out []float64) {
	s.reduceRows(n, k, out, func(lo, hi int, acc []float64) {
		for v := lo; v < hi; v++ {
			xv := x[v*k : v*k+k : v*k+k]
			for j := range xv {
				xv[j] -= mean[j]
				acc[j] += xv[j] * xv[j]
			}
		}
	})
}

// blockSubMeanDot subtracts mean[j] from z's column j and accumulates the
// preconditioned inner product out[j] = rᵀz in the same sweep (the fused
// z-projection + rᵀz step).
func (s *blockScratch) blockSubMeanDot(z, r []float64, n, k int, mean, out []float64) {
	s.reduceRows(n, k, out, func(lo, hi int, acc []float64) {
		for v := lo; v < hi; v++ {
			zv := z[v*k : v*k+k : v*k+k]
			rv := r[v*k : v*k+k : v*k+k]
			for j := range zv {
				zv[j] -= mean[j]
				acc[j] += rv[j] * zv[j]
			}
		}
	})
}

// blockUpdateXRSums is the fused PCG update for projected (singular) systems:
// x += α∘p, r −= α∘ap, with the new residual's column sums — pass 1 of the
// next mean projection — accumulated in the same sweep.
func (s *blockScratch) blockUpdateXRSums(x, r, p, ap, alpha []float64, n, k int, sums []float64) {
	s.reduceRows(n, k, sums, func(lo, hi int, acc []float64) {
		for v := lo; v < hi; v++ {
			xv := x[v*k : v*k+k : v*k+k]
			rv := r[v*k : v*k+k : v*k+k]
			pv := p[v*k : v*k+k : v*k+k]
			av := ap[v*k : v*k+k : v*k+k]
			for j := range xv {
				a := alpha[j]
				xv[j] += a * pv[j]
				rv[j] -= a * av[j]
				acc[j] += rv[j]
			}
		}
	})
}

// blockUpdateXRNormSq is the fused PCG update for non-projected systems:
// x += α∘p, r −= α∘ap, accumulating the new squared residual norms directly.
func (s *blockScratch) blockUpdateXRNormSq(x, r, p, ap, alpha []float64, n, k int, out []float64) {
	s.reduceRows(n, k, out, func(lo, hi int, acc []float64) {
		for v := lo; v < hi; v++ {
			xv := x[v*k : v*k+k : v*k+k]
			rv := r[v*k : v*k+k : v*k+k]
			pv := p[v*k : v*k+k : v*k+k]
			av := ap[v*k : v*k+k : v*k+k]
			for j := range xv {
				a := alpha[j]
				xv[j] += a * pv[j]
				rv[j] -= a * av[j]
				acc[j] += rv[j] * rv[j]
			}
		}
	})
}

// blockXPBY computes p = z + β∘p per column (the direction update).
// Elementwise, so any chunking is bit-identical; uses par.For directly.
func blockXPBY(p, z, beta []float64, n, k int) {
	grain := blockGrain(k)
	if n <= grain || par.Workers() == 1 {
		blockXPBYRange(p, z, beta, k, 0, n)
		return
	}
	par.For(n, grain, func(lo, hi int) {
		blockXPBYRange(p, z, beta, k, lo, hi)
	})
}

func blockXPBYRange(p, z, beta []float64, k, lo, hi int) {
	for v := lo; v < hi; v++ {
		pv := p[v*k : v*k+k : v*k+k]
		zv := z[v*k : v*k+k : v*k+k]
		for j := range pv {
			pv[j] = zv[j] + beta[j]*pv[j]
		}
	}
}

// packColumns interleaves k column vectors into the packed row-major block.
func packColumns(bs [][]float64, dst []float64, n, k int) {
	grain := blockGrain(k)
	fill := func(lo, hi int) {
		for j, b := range bs {
			for v := lo; v < hi; v++ {
				dst[v*k+j] = b[v]
			}
		}
	}
	if n <= grain || par.Workers() == 1 {
		fill(0, n)
		return
	}
	par.For(n, grain, fill)
}

// compactPacked left-compacts the packed width-kA block to the kept column
// positions (ascending). In place and serial: for ascending rows and
// positions every write lands at or below the index it read from, and
// deflation runs at most k times per solve, so this is never hot.
func compactPacked(buf []float64, n, kA int, keep []int) {
	newK := len(keep)
	for v := 0; v < n; v++ {
		src := buf[v*kA : v*kA+kA]
		dst := buf[v*newK : v*newK+newK]
		for idx, pos := range keep {
			dst[idx] = src[pos]
		}
	}
}
