package solver

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"hcd/internal/workload"
)

// TestBlockPCGK1BitIdentical: a one-column block solve routes through the
// scalar core and matches PCGCtx bit for bit — X, residual history and
// coefficients.
func TestBlockPCGK1BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := workload.Grid2D(20, 20, workload.UniformWeight(0.5, 2), 1)
	b := meanFreeRHS(rng, g.N())
	opt := DefaultOptions()

	want, err := PCGCtx(context.Background(), LapOperator(g), Jacobi(g), b, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BlockPCGCtx(context.Background(), LapOperator(g), Jacobi(g), [][]float64{b}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("want 1 result, got %d", len(got))
	}
	if got[0].Iterations != want.Iterations || got[0].Outcome != want.Outcome {
		t.Fatalf("k=1 block: %d iters %v vs scalar %d iters %v",
			got[0].Iterations, got[0].Outcome, want.Iterations, want.Outcome)
	}
	for i := range want.X {
		if got[0].X[i] != want.X[i] {
			t.Fatalf("X[%d]: block %v != scalar %v", i, got[0].X[i], want.X[i])
		}
	}
	for i := range want.Residuals {
		if got[0].Residuals[i] != want.Residuals[i] {
			t.Fatalf("Residuals[%d]: block %v != scalar %v", i, got[0].Residuals[i], want.Residuals[i])
		}
	}
}

// TestBlockPCGMatchesScalarPerColumn: every column of a k=5 block solve
// converges to the scalar solution, and per-column iteration counts stay
// within ±10% of the scalar path's (the block recurrences are the same
// arithmetic, only summation order differs).
func TestBlockPCGMatchesScalarPerColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := workload.Grid2D(24, 24, workload.Lognormal(1), 5)
	n := g.N()
	const k = 5
	bs := make([][]float64, k)
	for j := range bs {
		bs[j] = meanFreeRHS(rng, n)
	}
	opt := DefaultOptions()

	results, err := BlockPCGCtx(context.Background(), LapOperator(g), Jacobi(g), bs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		scalar, err := PCGCtx(context.Background(), LapOperator(g), Jacobi(g), bs[j], opt)
		if err != nil {
			t.Fatal(err)
		}
		res := results[j]
		if !res.Converged {
			t.Fatalf("column %d: %v after %d iterations: %s", j, res.Outcome, res.Iterations, res.Reason)
		}
		if rn := residualNorm(g, res.X, bs[j]); rn > 1e-5 {
			t.Errorf("column %d: true residual %v", j, rn)
		}
		lo := int(math.Floor(0.9 * float64(scalar.Iterations)))
		hi := int(math.Ceil(1.1*float64(scalar.Iterations))) + 1
		if res.Iterations < lo || res.Iterations > hi {
			t.Errorf("column %d: %d block iterations vs %d scalar (outside ±10%%)",
				j, res.Iterations, scalar.Iterations)
		}
		if res.Metrics.MatVecs != res.Iterations {
			t.Errorf("column %d: %d matvecs vs %d iterations", j, res.Metrics.MatVecs, res.Iterations)
		}
	}
}

// TestBlockPCGDeflation: columns that converge at different iterations —
// including a zero column that deflates before the first iteration — all end
// with correct solutions, and the early columns stop counting iterations
// when they deflate.
func TestBlockPCGDeflation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := workload.Grid2D(24, 24, workload.Lognormal(1), 9)
	n := g.N()
	// Column 1 is all-zero (immediate convergence); column 2 is a tiny,
	// near-solved system seeded from one PCG step's residual scale; the rest
	// are independent random right-hand sides.
	bs := [][]float64{
		meanFreeRHS(rng, n),
		make([]float64, n),
		nil,
		meanFreeRHS(rng, n),
		meanFreeRHS(rng, n),
	}
	// An "easy" column: b = L·x* for a localized x*, which PCG resolves in
	// fewer iterations than a dense random rhs on this graph.
	easy := make([]float64, n)
	spike := make([]float64, n)
	spike[n/2] = 1
	g.LapMul(easy, spike)
	bs[2] = easy

	opt := DefaultOptions()
	results, err := BlockPCGCtx(context.Background(), LapOperator(g), Jacobi(g), bs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for j, res := range results {
		if !res.Converged {
			t.Fatalf("column %d: %v after %d iterations: %s", j, res.Outcome, res.Iterations, res.Reason)
		}
		if rn := residualNorm(g, res.X, bs[j]); rn > 1e-5 {
			t.Errorf("column %d: true residual %v", j, rn)
		}
	}
	if results[1].Iterations != 0 {
		t.Errorf("zero column ran %d iterations, want 0", results[1].Iterations)
	}
	// Deflation must actually trigger mid-solve: iteration counts differ.
	iters := map[int]bool{}
	for _, res := range results {
		iters[res.Iterations] = true
	}
	if len(iters) < 2 {
		t.Errorf("all columns converged at the same iteration %v; deflation untested", results[0].Iterations)
	}
	// A deflated column's history stops at its own convergence.
	for j, res := range results {
		if len(res.Residuals) != res.Iterations+1 {
			t.Errorf("column %d: %d residual samples for %d iterations", j, len(res.Residuals), res.Iterations)
		}
	}
}

// TestBlockPCGGOMAXPROCSInvariant: the block path's reductions use a fixed
// chunk partition, so the whole solve — iterates and histories — is
// bit-identical at any worker count. The graph is large enough that the
// kernels and the SpMM actually cross their parallel grains.
func TestBlockPCGGOMAXPROCSInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := workload.Grid2D(80, 80, workload.Lognormal(1), 3)
	n := g.N()
	const k = 4
	bs := make([][]float64, k)
	for j := range bs {
		bs[j] = meanFreeRHS(rng, n)
	}
	opt := DefaultOptions()
	opt.Tol = 1e-10

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	ref, err := BlockPCGCtx(context.Background(), LapOperator(g), Jacobi(g), bs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := BlockPCGCtx(context.Background(), LapOperator(g), Jacobi(g), bs, opt)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if got[j].Iterations != ref[j].Iterations {
				t.Fatalf("procs=%d column %d: %d iterations vs %d at procs=1",
					procs, j, got[j].Iterations, ref[j].Iterations)
			}
			for i := range ref[j].X {
				if got[j].X[i] != ref[j].X[i] {
					t.Fatalf("procs=%d column %d X[%d]: %v != %v",
						procs, j, i, got[j].X[i], ref[j].X[i])
				}
			}
			for i := range ref[j].Residuals {
				if got[j].Residuals[i] != ref[j].Residuals[i] {
					t.Fatalf("procs=%d column %d residual[%d]: %v != %v",
						procs, j, i, got[j].Residuals[i], ref[j].Residuals[i])
				}
			}
		}
	}
}

// TestEngineSolveBlockWarmAllocs: a warmed engine's block solves reuse every
// packed buffer.
func TestEngineSolveBlockWarmAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := workload.Grid2D(16, 16, workload.Lognormal(1), 2)
	n := g.N()
	eng, err := NewLapEngine(g, Jacobi(g), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	bs := make([][]float64, k)
	for j := range bs {
		bs[j] = meanFreeRHS(rng, n)
	}
	if _, err := eng.SolveBlock(context.Background(), bs, eng.Options()); err != nil {
		t.Fatal(err)
	}
	warm, err := eng.SolveBlock(context.Background(), bs, eng.Options())
	if err != nil {
		t.Fatal(err)
	}
	for j, res := range warm {
		if res.Metrics.ScratchAllocs != 0 {
			t.Errorf("column %d: %d scratch allocs on a warm engine", j, res.Metrics.ScratchAllocs)
		}
	}
}

// TestBlockPCGNonBlockPrecondFallback: a preconditioner without ApplyBlock
// still works through the column-staging fallback.
func TestBlockPCGNonBlockPrecondFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := workload.Grid2D(16, 16, workload.UniformWeight(0.5, 2), 4)
	n := g.N()
	vols := g.Volumes()
	m := OpFunc{N: n, F: func(dst, r []float64) {
		for i := range dst {
			if vols[i] > 0 {
				dst[i] = r[i] / vols[i]
			} else {
				dst[i] = r[i]
			}
		}
	}}
	bs := [][]float64{meanFreeRHS(rng, n), meanFreeRHS(rng, n), meanFreeRHS(rng, n)}
	results, err := BlockPCGCtx(context.Background(), LapOperator(g), m, bs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for j, res := range results {
		if !res.Converged {
			t.Fatalf("column %d: %v: %s", j, res.Outcome, res.Reason)
		}
		if rn := residualNorm(g, res.X, bs[j]); rn > 1e-5 {
			t.Errorf("column %d: true residual %v", j, rn)
		}
	}
}

// TestBlockPCGDimensionErrors: mismatched columns are rejected up front.
func TestBlockPCGDimensionErrors(t *testing.T) {
	g := workload.Grid2D(5, 5, nil, 1)
	bs := [][]float64{make([]float64, g.N()), make([]float64, g.N()-1)}
	if _, err := BlockPCGCtx(context.Background(), LapOperator(g), nil, bs, DefaultOptions()); err == nil {
		t.Fatal("want dimension error")
	}
	if _, err := BlockPCGCtx(context.Background(), LapOperator(g), nil, nil, DefaultOptions()); err == nil {
		t.Fatal("want error for empty block")
	}
}
