package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/graph"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// Block PCG: one preconditioned-CG iteration driving k right-hand sides at
// once. Each column runs its own scalar PCG recurrence — its own α, β, rz —
// but every matvec, preconditioner apply and level-1 kernel walks the packed
// [n][k] block in a single traversal, so the CSR matrix, the hierarchy
// quotients and the work vectors stream through memory once per iteration
// instead of once per column. On bandwidth-bound Laplacian solves that
// amortization is the whole win; the arithmetic is identical to k scalar
// solves.
//
// Columns converge (or fail) independently: a finished column's iterate is
// copied out and the packed block is left-compacted, so the active width
// shrinks and later iterations do proportionally less work (deflation).
// k = 1 is routed to the scalar core and is bit-identical to PCGCtx.
//
// Options.Recovery is not supported here — per-column restart schedules
// would desynchronize the block. Callers wanting recovery run the scalar
// path per column (hcd.Do does exactly that).

// BlockApplier is the optional fast path an Operator or Preconditioner can
// implement to apply itself to k packed row-major columns in one traversal
// (dst[v*k+j] = (A·x_j)[v]). Operators that don't implement it are applied
// column by column through staging vectors.
type BlockApplier interface {
	ApplyBlock(dst, x []float64, k int)
}

// applier is the shape Operator and Preconditioner share; the block core
// treats both uniformly.
type applier interface {
	Apply(dst, x []float64)
}

// blockScratch owns the work buffers of one block solve. An Engine keeps one
// alive so repeated block solves reuse every buffer; the packed buffers are
// sized n·k and shrink-to-fit is never performed, so a warmed scratch
// allocates nothing for any solve with the same or smaller n·k.
type blockScratch struct {
	x, r, z, p, ap []float64 // packed row-major [n][kActive]
	colIn, colOut  []float64 // column staging for non-block Apply fallback
	partial        []float64 // chunked-reduction partial table, [chunks][k]

	// Per-active-position state, compacted alongside the packed buffers.
	rz, rzNew, refNorm         []float64
	pap, alpha, beta, mean, rn []float64
	rawNorm                    []float64
	active                     []int // active position -> original column
	dead                       []bool
	keep                       []int

	// Per original column, reused across solves on one Engine.
	xcols  [][]float64
	resid  [][]float64
	alphas [][]float64
	betas  [][]float64

	allocs int
}

// vec returns *buf resized to n, reusing capacity when possible.
func (s *blockScratch) vec(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
		s.allocs++
	}
	*buf = (*buf)[:n]
	return *buf
}

// col returns the j-th per-column buffer resized to n.
func (s *blockScratch) col(bufs *[][]float64, j, n int) []float64 {
	for len(*bufs) <= j {
		*bufs = append(*bufs, nil)
	}
	if cap((*bufs)[j]) < n {
		(*bufs)[j] = make([]float64, n)
		s.allocs++
	}
	(*bufs)[j] = (*bufs)[j][:n]
	return (*bufs)[j]
}

// ints / bools mirror vec for the small index buffers.
func (s *blockScratch) ints(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func (s *blockScratch) bools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// applyBlock applies op to the packed [n][kA] block: one fused traversal
// when op implements BlockApplier, otherwise column by column through the
// staging vectors. A width-1 block is a plain vector, so it goes straight
// through the scalar Apply.
func (s *blockScratch) applyBlock(op applier, dst, x []float64, n, kA int) {
	if kA == 1 {
		op.Apply(dst[:n], x[:n])
		return
	}
	if ba, ok := op.(BlockApplier); ok {
		ba.ApplyBlock(dst[:n*kA], x[:n*kA], kA)
		return
	}
	in := s.vec(&s.colIn, n)
	out := s.vec(&s.colOut, n)
	for j := 0; j < kA; j++ {
		for v := 0; v < n; v++ {
			in[v] = x[v*kA+j]
		}
		op.Apply(out, in)
		for v := 0; v < n; v++ {
			dst[v*kA+j] = out[v]
		}
	}
}

// BlockPCGCtx solves A·x_j = b_j for all columns of bs with block PCG and
// fresh work buffers, returning one Result per column (same order). A single
// right-hand side delegates to PCGCtx and is bit-identical to it. See
// Engine.SolveBlock for the buffer-reusing form.
func BlockPCGCtx(ctx context.Context, a Operator, m Preconditioner, bs [][]float64, opt Options) ([]Result, error) {
	if len(bs) == 1 {
		res, err := PCGCtx(ctx, a, m, bs[0], opt)
		if err != nil {
			return nil, err
		}
		return []Result{res}, nil
	}
	var s blockScratch
	return blockCore(ctx, a, m, bs, opt, &s)
}

// blockCore is the block-PCG driver. It mirrors pcgIter's operation order
// exactly — same guard sequence, same breakdown checks in the same places —
// but runs every step k columns wide and deflates columns as they finish.
func blockCore(ctx context.Context, a Operator, m Preconditioner, bs [][]float64, opt Options, s *blockScratch) (results []Result, err error) {
	ctx, sp := obs.StartSpan(ctx, "solve/block-pcg")
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("solver: panic during solve: %w", par.AsError(v))
		}
		if sp != nil {
			sp.Arg("k", len(bs))
			if err == nil && len(results) > 0 {
				iters := 0
				for i := range results {
					if results[i].Iterations > iters {
						iters = results[i].Iterations
					}
				}
				sp.Arg("iterations", iters)
			}
		}
		sp.End()
		if err == nil {
			if reg := obs.RegistryFrom(ctx); reg != nil {
				for i := range results {
					results[i].Metrics.Publish(reg)
					publishOutcome(reg, "pcg", results[i].Outcome)
				}
			}
		}
	}()
	start := time.Now()
	n := a.Dim()
	k := len(bs)
	if k == 0 {
		return nil, fmt.Errorf("solver: block solve with no right-hand sides: %w", graph.ErrBadDimension)
	}
	for j, b := range bs {
		if len(b) != n {
			return nil, fmt.Errorf("solver: rhs %d length %d vs operator dimension %d: %w", j, len(b), n, graph.ErrBadDimension)
		}
	}
	if m == nil {
		m = Identity(n)
	}
	if m.Dim() != n {
		return nil, fmt.Errorf("solver: preconditioner dimension %d vs operator dimension %d: %w", m.Dim(), n, graph.ErrBadDimension)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10*n + 50
	}
	if opt.CheckEvery <= 0 {
		opt.CheckEvery = 8
	}
	divTol := opt.DivergenceTol
	if divTol == 0 {
		divTol = 1e8
	}
	stagEps := opt.StagnationEps
	if stagEps <= 0 {
		stagEps = 1e-3
	}

	startAllocs := s.allocs
	nk := n * k
	x := s.vec(&s.x, nk)
	zero(x)
	r := s.vec(&s.r, nk)
	packColumns(bs, r, n, k)
	z := s.vec(&s.z, nk)
	p := s.vec(&s.p, nk)
	ap := s.vec(&s.ap, nk)

	rawNorm := s.vec(&s.rawNorm, k)
	refNorm := s.vec(&s.refNorm, k)
	rz := s.vec(&s.rz, k)
	rzNew := s.vec(&s.rzNew, k)
	papv := s.vec(&s.pap, k)
	alpha := s.vec(&s.alpha, k)
	beta := s.vec(&s.beta, k)
	mean := s.vec(&s.mean, k)
	rn := s.vec(&s.rn, k)
	dead := s.bools(&s.dead, k)

	results = make([]Result, k)
	for j := 0; j < k; j++ {
		results[j].X = s.col(&s.xcols, j, n)
		zero(results[j].X)
		results[j].Residuals = s.col(&s.resid, j, 0)[:0]
		results[j].Alphas = s.col(&s.alphas, j, 0)[:0]
		results[j].Betas = s.col(&s.betas, j, 0)[:0]
	}

	// ‖b‖ before projection, then project and measure again: a right-hand
	// side that is numerically all null-space component has nothing left to
	// solve (same criterion as the scalar path).
	s.blockNormSq(r, n, k, rawNorm)
	for j := range rawNorm {
		rawNorm[j] = math.Sqrt(rawNorm[j])
	}
	if opt.ProjectMean {
		s.blockColSums(r, n, k, mean)
		for j := range mean {
			mean[j] /= float64(n)
		}
		s.blockSubMeanNormSq(r, n, k, mean, rn)
		for j := range rn {
			rn[j] = math.Sqrt(rn[j])
		}
	} else {
		copy(rn, rawNorm)
	}
	active := s.ints(&s.active, 0)[:0]
	for j := 0; j < k; j++ {
		normB := rn[j]
		refNorm[j] = normB
		results[j].Residuals = append(results[j].Residuals, normB)
		if normB == 0 || normB <= 1e-13*rawNorm[j] {
			results[j].Outcome = OutcomeConverged
			continue
		}
		results[j].Outcome = OutcomeMaxIter
		active = append(active, j)
	}
	s.active = active
	if len(active) < k && len(active) > 0 {
		// Some columns converged at iteration 0: compact the block before
		// the first preconditioner apply.
		keep := s.keep[:0]
		for pos, j := range active {
			_ = pos
			keep = append(keep, j)
		}
		compactPacked(r, n, k, keep)
		compactFlat(refNorm, keep)
		s.keep = keep
	}
	kA := len(active)
	setupDone := time.Now()
	iterStart := time.Time{}

	if kA > 0 {
		s.applyBlock(m, z, r, n, kA)
		for _, j := range active {
			results[j].Metrics.PrecondApplies++
		}
		if opt.ProjectMean {
			s.blockColSums(z, n, kA, mean)
			for j := 0; j < kA; j++ {
				mean[j] /= float64(n)
			}
			s.blockSubMeanDot(z, r, n, kA, mean, rz)
		} else {
			s.blockDots(r, z, n, kA, rz)
		}
		copy(p[:n*kA], z[:n*kA])
		iterStart = time.Now()

		for iter := 0; iter < opt.MaxIter && kA > 0; iter++ {
			if iter%opt.CheckEvery == 0 && ctx.Err() != nil {
				for _, j := range s.active {
					results[j].Outcome = OutcomeCancelled
				}
				break
			}
			s.applyBlock(a, ap, p, n, kA)
			for _, j := range s.active {
				results[j].Metrics.MatVecs++
			}
			if faultinject.Enabled() && faultinject.Fire(faultinject.MatvecNaN) {
				ap[0] = math.NaN()
			}
			s.blockDots(p, ap, n, kA, papv)
			if faultinject.Enabled() && faultinject.Fire(faultinject.ForceBreakdown) {
				papv[0] = -1
			}
			anyDead := false
			for pos := 0; pos < kA; pos++ {
				if pap := papv[pos]; pap <= 0 || math.IsNaN(pap) {
					j := s.active[pos]
					results[j].Outcome = OutcomeBreakdown
					results[j].Reason = fmt.Sprintf("non-positive curvature pᵀAp = %g at iteration %d", pap, iter+1)
					dead[pos] = true
					anyDead = true
				} else {
					dead[pos] = false
				}
			}
			if anyDead {
				kA = s.deflate(results, n, kA, dead, papv)
				if kA == 0 {
					break
				}
			}
			for pos := 0; pos < kA; pos++ {
				alpha[pos] = rz[pos] / papv[pos]
				j := s.active[pos]
				results[j].Alphas = append(results[j].Alphas, alpha[pos])
			}
			// Fused update: x += α∘p, r −= α∘ap, with the projection sums
			// (or residual norms) accumulated in the same sweep.
			if opt.ProjectMean {
				s.blockUpdateXRSums(x, r, p, ap, alpha, n, kA, mean)
				for pos := 0; pos < kA; pos++ {
					mean[pos] /= float64(n)
				}
				s.blockSubMeanNormSq(r, n, kA, mean, rn)
			} else {
				s.blockUpdateXRNormSq(x, r, p, ap, alpha, n, kA, rn)
			}
			maxRn := 0.0
			for pos := 0; pos < kA; pos++ {
				rn[pos] = math.Sqrt(rn[pos])
				if rn[pos] > maxRn || math.IsNaN(rn[pos]) {
					maxRn = rn[pos]
				}
			}
			anyDead = false
			for pos := 0; pos < kA; pos++ {
				j := s.active[pos]
				res := &results[j]
				res.Residuals = append(res.Residuals, rn[pos])
				res.Iterations = iter + 1
				dead[pos] = false
				// Guards in the scalar path's severity order.
				switch v := rn[pos]; {
				case math.IsNaN(v) || math.IsInf(v, 0):
					res.Outcome = OutcomeBreakdown
					res.Reason = fmt.Sprintf("non-finite residual ‖r‖ = %g at iteration %d", v, res.Iterations)
					dead[pos] = true
				case v <= opt.Tol*refNorm[pos]:
					res.Outcome = OutcomeConverged
					dead[pos] = true
				case divTol > 0 && v > divTol*refNorm[pos]:
					res.Outcome = OutcomeDiverged
					res.Reason = fmt.Sprintf("residual ‖r‖ = %g exceeded %g·‖r₀‖ = %g at iteration %d",
						v, divTol, divTol*refNorm[pos], res.Iterations)
					dead[pos] = true
				default:
					if w := opt.StagnationWindow; w > 0 && res.Iterations >= w {
						ref := res.Residuals[len(res.Residuals)-1-w]
						if v >= (1-stagEps)*ref {
							res.Outcome = OutcomeStagnated
							res.Reason = fmt.Sprintf("residual improved < %g relative over the last %d iterations (‖r‖ %g → %g)",
								stagEps, w, ref, v)
							dead[pos] = true
						}
					}
				}
				anyDead = anyDead || dead[pos]
			}
			if opt.Progress != nil {
				opt.Progress(iter+1, maxRn)
			}
			if opt.Observer != nil {
				opt.Observer.ObserveIteration(iter+1, maxRn)
			}
			if anyDead {
				kA = s.deflate(results, n, kA, dead)
				if kA == 0 {
					break
				}
			}
			s.applyBlock(m, z, r, n, kA)
			for _, j := range s.active {
				results[j].Metrics.PrecondApplies++
			}
			if opt.ProjectMean {
				s.blockColSums(z, n, kA, mean)
				for pos := 0; pos < kA; pos++ {
					mean[pos] /= float64(n)
				}
				s.blockSubMeanDot(z, r, n, kA, mean, rzNew)
			} else {
				s.blockDots(r, z, n, kA, rzNew)
			}
			anyDead = false
			for pos := 0; pos < kA; pos++ {
				if v := rzNew[pos]; v <= 0 || math.IsNaN(v) {
					j := s.active[pos]
					results[j].Outcome = OutcomeBreakdown
					results[j].Reason = fmt.Sprintf("non-positive rᵀz = %g at iteration %d", v, results[j].Iterations)
					dead[pos] = true
					anyDead = true
				} else {
					dead[pos] = false
				}
			}
			if anyDead {
				kA = s.deflate(results, n, kA, dead, rzNew)
				if kA == 0 {
					break
				}
			}
			for pos := 0; pos < kA; pos++ {
				beta[pos] = rzNew[pos] / rz[pos]
				j := s.active[pos]
				results[j].Betas = append(results[j].Betas, beta[pos])
			}
			blockXPBY(p, z, beta, n, kA)
			copy(rz[:kA], rzNew[:kA])
		}
	}

	// Columns still active (budget exhausted or cancelled) keep their current
	// iterate.
	for pos, j := range s.active {
		xc := results[j].X
		for v := 0; v < n; v++ {
			xc[v] = x[v*kA+pos]
		}
	}

	now := time.Now()
	setup := setupDone.Sub(start)
	iterDur := time.Duration(0)
	if !iterStart.IsZero() {
		iterDur = now.Sub(iterStart)
	}
	scratchAllocs := s.allocs - startAllocs
	for j := 0; j < k; j++ {
		res := &results[j]
		res.Converged = res.Outcome == OutcomeConverged
		res.Metrics.Iterations = res.Iterations
		if nres := len(res.Residuals); nres > 0 {
			res.Metrics.FinalResidual = res.Residuals[nres-1]
		}
		// Timing and scratch growth are properties of the shared block
		// traversal; every column reports the block-level values.
		res.Metrics.SetupTime = setup
		res.Metrics.IterTime = iterDur
		res.Metrics.TotalTime = setup + iterDur
		res.Metrics.ScratchAllocs = scratchAllocs
		// Hand the (possibly grown) history buffers back for reuse.
		s.xcols[j] = res.X
		s.resid[j] = res.Residuals
		s.alphas[j] = res.Alphas
		s.betas[j] = res.Betas
	}
	return results, nil
}

// deflate copies every dead column's iterate into its per-column solution
// buffer and left-compacts the packed block, the persistent per-position
// state (refNorm, rz) and any extra per-position arrays the caller is about
// to read (extras), then shrinks the active set. Returns the new width.
func (s *blockScratch) deflate(results []Result, n, kA int, dead []bool, extras ...[]float64) int {
	keep := s.keep[:0]
	for pos := 0; pos < kA; pos++ {
		if dead[pos] {
			j := s.active[pos]
			xc := results[j].X
			for v := 0; v < n; v++ {
				xc[v] = s.x[v*kA+pos]
			}
		} else {
			keep = append(keep, pos)
		}
	}
	s.keep = keep
	newK := len(keep)
	if newK == kA {
		return kA
	}
	if newK > 0 {
		compactPacked(s.x, n, kA, keep)
		compactPacked(s.r, n, kA, keep)
		compactPacked(s.z, n, kA, keep)
		compactPacked(s.p, n, kA, keep)
		compactPacked(s.ap, n, kA, keep)
		compactFlat(s.refNorm, keep)
		compactFlat(s.rz, keep)
		for _, ex := range extras {
			compactFlat(ex, keep)
		}
	}
	act := s.active
	for idx, pos := range keep {
		act[idx] = act[pos]
	}
	s.active = act[:newK]
	return newK
}

// compactFlat left-compacts a per-position array to the kept positions.
func compactFlat(buf []float64, keep []int) {
	for idx, pos := range keep {
		buf[idx] = buf[pos]
	}
}
