package solver

import "hcd/internal/obs"

// Publish accumulates the solve's work counters into the registry under the
// hcd_solve_* namespace and updates the last-solve gauges. The solver cores
// call it automatically when a registry travels in the solve context
// (obs.WithRegistry); it is also exported so callers holding a Result can
// publish into their own registry. Nil registries are no-ops.
func (m Metrics) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("hcd_solve_total").Inc()
	r.Counter("hcd_solve_matvecs_total").Add(int64(m.MatVecs))
	r.Counter("hcd_solve_precond_applies_total").Add(int64(m.PrecondApplies))
	r.Counter("hcd_solve_iterations_total").Add(int64(m.Iterations))
	r.Counter("hcd_solve_restarts_total").Add(int64(m.Restarts))
	r.Counter("hcd_solve_scratch_allocs_total").Add(int64(m.ScratchAllocs))
	r.Counter("hcd_solve_setup_ns_total").Add(int64(m.SetupTime))
	r.Counter("hcd_solve_iter_ns_total").Add(int64(m.IterTime))
	r.Counter("hcd_solve_ns_total").Add(int64(m.TotalTime))
	r.Gauge("hcd_solve_last_final_residual").Set(m.FinalResidual)
	r.Gauge("hcd_solve_last_iterations").Set(float64(m.Iterations))
}

// publishOutcome counts one solve termination by method and outcome, e.g.
// hcd_solve_outcome_total{method="pcg",outcome="converged"}.
func publishOutcome(r *obs.Registry, method string, o Outcome) {
	r.Counter(`hcd_solve_outcome_total{method="` + method + `",outcome="` + o.String() + `"}`).Inc()
}
