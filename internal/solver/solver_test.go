package solver

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/graph"
	"hcd/internal/workload"
)

func meanFreeRHS(rng *rand.Rand, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	s := 0.0
	for _, v := range b {
		s += v
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}

func residualNorm(g *graph.Graph, x, b []float64) float64 {
	ax := make([]float64, len(x))
	g.LapMul(ax, x)
	s := 0.0
	for i := range ax {
		d := ax[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestCGSolvesLaplacian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := workload.Grid2D(12, 12, workload.UniformWeight(0.5, 2), 1)
	b := meanFreeRHS(rng, g.N())
	res := CG(LapOperator(g), b, DefaultOptions())
	if !res.Converged {
		t.Fatalf("CG did not converge in %d iterations", res.Iterations)
	}
	if rn := residualNorm(g, res.X, b); rn > 1e-6 {
		t.Errorf("residual %v", rn)
	}
}

func TestPCGJacobiBeatsCGOnSkewedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := workload.OCT3D(6, 6, 12, workload.OCTOptions{Layers: 4, Contrast: 1000, NoiseSigma: 1, Seed: 3})
	b := meanFreeRHS(rng, g.N())
	opt := DefaultOptions()
	opt.Tol = 1e-8
	cg := CG(LapOperator(g), b, opt)
	pcg := PCG(LapOperator(g), Jacobi(g), b, opt)
	if !pcg.Converged {
		t.Fatalf("Jacobi-PCG did not converge")
	}
	if cg.Converged && cg.Iterations < pcg.Iterations/2 {
		t.Errorf("plain CG (%d iters) much faster than Jacobi-PCG (%d)?", cg.Iterations, pcg.Iterations)
	}
}

func TestPCGResidualHistoryMonotoneOverall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.Grid3D(6, 6, 6, workload.Lognormal(1), 2)
	b := meanFreeRHS(rng, g.N())
	res := PCG(LapOperator(g), Jacobi(g), b, DefaultOptions())
	if len(res.Residuals) != res.Iterations+1 {
		t.Fatalf("history length %d vs iterations %d", len(res.Residuals), res.Iterations)
	}
	if res.Residuals[len(res.Residuals)-1] > res.Residuals[0]*1e-7 {
		t.Errorf("final residual %v vs initial %v", res.Residuals[len(res.Residuals)-1], res.Residuals[0])
	}
}

func TestPCGZeroRHS(t *testing.T) {
	g := workload.Grid2D(4, 4, nil, 1)
	res := PCG(LapOperator(g), Jacobi(g), make([]float64, g.N()), DefaultOptions())
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero rhs should converge instantly")
	}
	for _, v := range res.X {
		if v != 0 {
			t.Errorf("x should stay zero")
		}
	}
}

func TestPCGConstantRHSProjected(t *testing.T) {
	// b = constant vector is entirely in the Laplacian null space; with
	// ProjectMean the solver must return x = 0 immediately.
	g := workload.Grid2D(5, 5, nil, 1)
	b := make([]float64, g.N())
	for i := range b {
		b[i] = 3.7
	}
	res := PCG(LapOperator(g), Identity(g.N()), b, DefaultOptions())
	if !res.Converged {
		t.Error("projected constant rhs should converge")
	}
}

func TestSpectrumEstimateOnKnownOperator(t *testing.T) {
	// Diagonal operator with known eigenvalues 1..n: CG coefficients must
	// reproduce the extremes.
	n := 30
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = float64(i + 1)
	}
	op := OpFunc{N: n, F: func(dst, x []float64) {
		for i := range dst {
			dst[i] = diag[i] * x[i]
		}
	}}
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res := PCG(op, Identity(n), b, Options{Tol: 1e-14, MaxIter: n, ProjectMean: false})
	lmin, lmax, err := SpectrumEstimate(res.Alphas, res.Betas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lmin-1) > 0.05 || math.Abs(lmax-float64(n)) > 0.5 {
		t.Errorf("spectrum estimate [%v, %v], want [1, %d]", lmin, lmax, n)
	}
}

func TestConditionEstimateIdentityPreconditionerOnGrid(t *testing.T) {
	// κ of the normalized path Laplacian is known to grow like n²; just
	// check the estimate is sane and ≥ 1.
	g := workload.Grid2D(20, 1, nil, 1) // a path
	rng := rand.New(rand.NewSource(5))
	probe := meanFreeRHS(rng, g.N())
	kappa, err := ConditionEstimate(LapOperator(g), Identity(g.N()), probe, 100)
	if err != nil {
		t.Fatal(err)
	}
	if kappa < 10 {
		t.Errorf("path condition estimate %v suspiciously small", kappa)
	}
}

func TestChebyshevConvergesWithGoodBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := workload.Grid2D(10, 10, nil, 1)
	b := meanFreeRHS(rng, g.N())
	// Estimate spectrum of D⁻¹A via PCG first.
	res := PCG(LapOperator(g), Jacobi(g), b, Options{Tol: 1e-13, MaxIter: 200, ProjectMean: true})
	lmin, lmax, err := SpectrumEstimate(res.Alphas, res.Betas)
	if err != nil {
		t.Fatal(err)
	}
	x, hist, err := Chebyshev(LapOperator(g), Jacobi(g), b, lmin*0.9, lmax*1.1, 200, true)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] > hist[0]*1e-4 {
		t.Errorf("Chebyshev residual %v vs initial %v", hist[len(hist)-1], hist[0])
	}
	if rn := residualNorm(g, x, b); rn > 1e-3*hist[0] {
		t.Errorf("Chebyshev residual mismatch: %v", rn)
	}
}

func TestChebyshevRejectsBadBounds(t *testing.T) {
	g := workload.Grid2D(3, 3, nil, 1)
	b := make([]float64, g.N())
	if _, _, err := Chebyshev(LapOperator(g), Jacobi(g), b, 0, 1, 5, true); err == nil {
		t.Error("lmin=0 accepted")
	}
	if _, _, err := Chebyshev(LapOperator(g), Jacobi(g), b, 2, 1, 5, true); err == nil {
		t.Error("lmax < lmin accepted")
	}
}

func TestSpectrumEstimateErrors(t *testing.T) {
	if _, _, err := SpectrumEstimate(nil, nil); err == nil {
		t.Error("empty coefficients accepted")
	}
}

func BenchmarkPCGJacobiGrid(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := workload.Grid3D(15, 15, 15, workload.Lognormal(1), 1)
	rhs := meanFreeRHS(rng, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PCG(LapOperator(g), Jacobi(g), rhs, DefaultOptions())
	}
}
