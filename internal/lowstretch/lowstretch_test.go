package lowstretch

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/dense"
	"hcd/internal/graph"
	"hcd/internal/mst"
	"hcd/internal/support"
	"hcd/internal/workload"
)

func TestAKPWSpanningTreeOnConnected(t *testing.T) {
	cases := map[string]*graph.Graph{
		"grid2d":     workload.Grid2D(15, 15, workload.Lognormal(1), 1),
		"grid3d":     workload.Grid3D(6, 6, 6, workload.UniformWeight(0.1, 10), 2),
		"mesh":       workload.GridDiag2D(12, 12, workload.Lognormal(2), 3),
		"oct":        workload.OCT3D(5, 5, 10, workload.DefaultOCTOptions()),
		"unitgrid":   workload.Grid2D(10, 10, nil, 4),
		"singleEdge": graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 3}}),
	}
	for name, g := range cases {
		edges := AKPW(g, 7)
		if len(edges) != g.N()-1 {
			t.Fatalf("%s: %d tree edges for n=%d", name, len(edges), g.N())
		}
		f := graph.MustFromEdges(g.N(), edges)
		if !f.IsTree() {
			t.Fatalf("%s: AKPW result is not a spanning tree", name)
		}
	}
}

func TestAKPWDisconnectedAndTrivial(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}})
	edges := AKPW(g, 1)
	if len(edges) != 2 {
		t.Fatalf("forest edges = %d, want 2", len(edges))
	}
	if AKPW(graph.MustFromEdges(0, nil), 1) != nil {
		t.Error("empty graph should yield nil")
	}
	if AKPW(graph.MustFromEdges(3, nil), 1) != nil {
		t.Error("edgeless graph should yield nil")
	}
}

func TestTreeMetricPathResistance(t *testing.T) {
	// Path 0-1-2-3 with weights 1, 2, 4: resistance 0→3 = 1 + 1/2 + 1/4.
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 4}}
	tm, err := NewTreeMetric(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r := tm.Resistance(0, 3); math.Abs(r-1.75) > 1e-12 {
		t.Errorf("resistance = %v, want 1.75", r)
	}
	if r := tm.Resistance(2, 1); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("resistance = %v, want 0.5", r)
	}
	if r := tm.Resistance(1, 1); r != 0 {
		t.Errorf("self resistance = %v", r)
	}
}

func TestTreeMetricCrossComponent(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}}
	tm, err := NewTreeMetric(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tm.Resistance(0, 3), 1) {
		t.Error("cross-component resistance should be +Inf")
	}
}

func TestTreeMetricRejectsCycle(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}}
	if _, err := NewTreeMetric(3, edges); err == nil {
		t.Error("cycle accepted")
	}
}

func TestTreeMetricAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for it := 0; it < 10; it++ {
		n := 3 + rng.Intn(40)
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: 0.1 + rng.Float64()*5})
		}
		tm, err := NewTreeMetric(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		f := graph.MustFromEdges(n, edges)
		// Brute force via BFS path walk.
		for trial := 0; trial < 10; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			_, parent := f.BFS(u)
			want := 0.0
			for x := v; x != u; x = parent[x] {
				w, _ := f.Weight(x, parent[x])
				want += 1 / w
			}
			if got := tm.Resistance(u, v); math.Abs(got-want) > 1e-9 {
				t.Fatalf("resistance(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestStretchesTreeEdgesAreOne(t *testing.T) {
	g := workload.Grid2D(8, 8, workload.Lognormal(1), 9)
	tree := AKPW(g, 1)
	inTree := make(map[[2]int]bool)
	for _, e := range tree {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		inTree[[2]int{u, v}] = true
	}
	stretches, avg, err := Stretches(g, tree)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if inTree[[2]int{u, v}] {
			if math.Abs(stretches[i]-1) > 1e-9 {
				t.Fatalf("tree edge stretch = %v", stretches[i])
			}
		} else if !(stretches[i] > 0) || math.IsInf(stretches[i], 0) {
			// Off-tree stretch may drop below 1 when a light edge crosses a
			// heavy tree path; it must just be positive and finite on a
			// connected graph.
			t.Fatalf("off-tree stretch %v invalid", stretches[i])
		}
	}
	if !(avg > 0) {
		t.Errorf("average stretch %v", avg)
	}
}

func TestAKPWStretchIsReasonable(t *testing.T) {
	// Compare against the max-weight spanning tree: AKPW should not be
	// drastically worse on a noisy grid (usually it is better).
	g := workload.Grid2D(25, 25, workload.Lognormal(2), 11)
	_, avgAKPW, err := Stretches(g, AKPW(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	_, avgMST, err := Stretches(g, mst.Kruskal(g, mst.Max))
	if err != nil {
		t.Fatal(err)
	}
	if avgAKPW > 10*avgMST {
		t.Errorf("AKPW avg stretch %v vs MST %v", avgAKPW, avgMST)
	}
	t.Logf("avg stretch: AKPW=%.2f maxST=%.2f", avgAKPW, avgMST)
}

// The classical tree-preconditioner bound: σ(A, T) is at most the total
// stretch of A's edges over T (each edge routes along its tree path with
// congestion·dilation ≤ its stretch; the splitting lemma sums them).
func TestTotalStretchBoundsTreeSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for it := 0; it < 8; it++ {
		n := 8 + rng.Intn(10)
		var es []graph.Edge
		for v := 1; v < n; v++ {
			es = append(es, graph.Edge{U: rng.Intn(v), V: v, W: 0.3 + rng.Float64()*3})
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, graph.Edge{U: u, V: v, W: 0.3 + rng.Float64()*3})
			}
		}
		g := graph.MustFromEdges(n, es)
		tree := mst.Kruskal(g, mst.Max)
		stretches, _, err := Stretches(g, tree)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, s := range stretches {
			total += s
		}
		forest := graph.MustFromEdges(n, tree)
		sigma, err := support.Sigma(
			dense.FromRowMajor(n, n, g.LapDense()),
			dense.FromRowMajor(n, n, forest.LapDense()))
		if err != nil {
			t.Fatal(err)
		}
		if sigma > total+1e-7 {
			t.Fatalf("it=%d: σ(A,T) = %v exceeds total stretch %v", it, sigma, total)
		}
	}
}

func BenchmarkAKPWGrid50(b *testing.B) {
	g := workload.Grid2D(50, 50, workload.Lognormal(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AKPW(g, 1)
	}
}
