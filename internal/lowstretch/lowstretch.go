// Package lowstretch builds low-stretch spanning trees in the style of
// Alon–Karp–Peleg–West (the role played by Elkin–Emek–Spielman–Teng trees in
// Theorem 2.3) and measures edge stretch over a tree, the quantity that
// governs subgraph-preconditioner quality and drives the off-tree edge
// selection of internal/sparsify.
//
// The stretch of an off-tree edge e = (u,v) with weight w is
// w · Σ_{f ∈ treePath(u,v)} 1/w(f): its weight times the tree-path
// resistance between its endpoints.
package lowstretch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hcd/internal/graph"
)

// AKPW returns the edges of a spanning forest of g with low average stretch.
// The algorithm processes edges in increasing resistance classes; in each
// round it grows low-expansion BFS balls over the contracted cluster graph,
// adds the BFS tree edges to the forest, and contracts. The rng seed only
// affects ball-growing start order.
func AKPW(g *graph.Graph, seed int64) []graph.Edge {
	out, _ := AKPWCtx(context.Background(), g, seed)
	return out
}

// AKPWCtx is AKPW under a context, polling cancellation once per
// ball-growing round (O(log n) rounds, each one pass over the active
// edges). Results are identical to AKPW.
func AKPWCtx(ctx context.Context, g *graph.Graph, seed int64) ([]graph.Edge, error) {
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return nil, nil
	}
	// Sort by resistance ascending (heaviest edges first).
	sort.Slice(edges, func(i, j int) bool { return edges[i].W > edges[j].W })
	rng := rand.New(rand.NewSource(seed))
	logN := math.Log2(float64(n) + 2)
	beta := 1.0 / (2 * logN) // ball expansion threshold
	// Geometric resistance classes relative to the smallest resistance.
	rMin := 1 / edges[0].W
	base := math.Max(4, 2*logN)
	classOf := func(w float64) int {
		r := 1 / w
		return int(math.Log(r/rMin)/math.Log(base)) + 1
	}
	cluster := make([]int, n)
	for i := range cluster {
		cluster[i] = i
	}
	var forest []graph.Edge
	next := 0 // next unprocessed edge (edges sorted by class)
	clusters := n
	for round := 1; clusters > 1; round++ {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("lowstretch: cancelled: %w", ctx.Err())
		}
		// Activate all edges whose class is ≤ round.
		for next < len(edges) && classOf(edges[next].W) <= round {
			next++
		}
		active := edges[:next]
		merged := growBalls(n, active, cluster, beta, rng, &forest)
		clusters -= merged
		if merged == 0 && next == len(edges) {
			break // no cross-cluster edges remain: g is disconnected
		}
	}
	return forest, nil
}

// growBalls performs one AKPW round: build the cluster multigraph over the
// active edges, grow low-expansion balls, append the corresponding original
// tree edges to forest, and relabel cluster ids. It returns the number of
// cluster merges performed.
func growBalls(n int, active []graph.Edge, cluster []int, beta float64, rng *rand.Rand, forest *[]graph.Edge) int {
	// Adjacency over cluster ids, keeping one original edge per cluster pair
	// (the heaviest seen, which minimizes added resistance).
	type arc struct {
		to   int
		edge graph.Edge
	}
	adj := make(map[int][]arc)
	type pairKey struct{ a, b int }
	bestPair := make(map[pairKey]graph.Edge)
	for _, e := range active {
		cu, cv := cluster[e.U], cluster[e.V]
		if cu == cv {
			continue
		}
		k := pairKey{cu, cv}
		if cu > cv {
			k = pairKey{cv, cu}
		}
		if cur, ok := bestPair[k]; !ok || e.W > cur.W {
			bestPair[k] = e
		}
	}
	// Fixed iteration order: ranging over the map directly would make the
	// arc lists — and so the balls and the tree — vary run to run.
	pairs := make([]pairKey, 0, len(bestPair))
	for k := range bestPair {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, k := range pairs {
		e := bestPair[k]
		adj[k.a] = append(adj[k.a], arc{to: k.b, edge: e})
		adj[k.b] = append(adj[k.b], arc{to: k.a, edge: e})
	}
	if len(adj) == 0 {
		return 0
	}
	nodes := make([]int, 0, len(adj))
	for c := range adj {
		nodes = append(nodes, c)
	}
	sort.Ints(nodes)
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	assigned := make(map[int]int) // cluster id -> ball root
	merges := 0
	for _, s := range nodes {
		if _, done := assigned[s]; done {
			continue
		}
		// Grow a BFS ball from s while its boundary stays large relative to
		// its interior edge count (the AKPW low-expansion stopping rule).
		assigned[s] = s
		frontier := []int{s}
		interiorEdges := 0
		for len(frontier) > 0 {
			boundary := 0
			for _, c := range frontier {
				for _, a := range adj[c] {
					if _, done := assigned[a.to]; !done {
						boundary++
					}
				}
			}
			if boundary == 0 {
				break
			}
			if interiorEdges > 0 && float64(boundary) <= beta*float64(interiorEdges)+1 {
				break
			}
			var nextFrontier []int
			for _, c := range frontier {
				for _, a := range adj[c] {
					if _, done := assigned[a.to]; done {
						continue
					}
					assigned[a.to] = s
					nextFrontier = append(nextFrontier, a.to)
					*forest = append(*forest, a.edge)
					merges++
				}
			}
			for _, c := range nextFrontier {
				interiorEdges += len(adj[c])
			}
			frontier = nextFrontier
		}
	}
	// Relabel every vertex to its ball root.
	for v := 0; v < n; v++ {
		if r, ok := assigned[cluster[v]]; ok {
			cluster[v] = r
		}
	}
	return merges
}

// TreeMetric answers tree-path resistance queries in O(log n) via binary
// lifting, after O(n log n) preprocessing.
type TreeMetric struct {
	n      int
	depth  []int
	up     [][]int   // up[k][v] = 2^k-th ancestor (-1 past the root)
	resist []float64 // resistance from v to its component root
	comp   []int
}

// NewTreeMetric indexes a forest given by its edges over n vertices.
func NewTreeMetric(n int, treeEdges []graph.Edge) (*TreeMetric, error) {
	f := graph.MustFromEdges(n, treeEdges)
	if !f.IsForest() {
		return nil, fmt.Errorf("lowstretch: edges contain a cycle")
	}
	t := &TreeMetric{n: n, depth: make([]int, n), resist: make([]float64, n)}
	t.comp, _ = f.Components()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	seen := make([]bool, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nbr, w := f.Neighbors(v)
			for i, u := range nbr {
				if !seen[u] {
					seen[u] = true
					parent[u] = v
					t.depth[u] = t.depth[v] + 1
					t.resist[u] = t.resist[v] + 1/w[i]
					stack = append(stack, u)
				}
			}
		}
	}
	levels := 1
	for (1 << levels) < n+1 {
		levels++
	}
	t.up = make([][]int, levels)
	t.up[0] = parent
	for k := 1; k < levels; k++ {
		t.up[k] = make([]int, n)
		for v := 0; v < n; v++ {
			if a := t.up[k-1][v]; a >= 0 {
				t.up[k][v] = t.up[k-1][a]
			} else {
				t.up[k][v] = -1
			}
		}
	}
	return t, nil
}

// Resistance returns the tree-path resistance between u and v, or +Inf if
// they lie in different components of the forest.
func (t *TreeMetric) Resistance(u, v int) float64 {
	if t.comp[u] != t.comp[v] {
		return math.Inf(1)
	}
	l := t.lca(u, v)
	return t.resist[u] + t.resist[v] - 2*t.resist[l]
}

func (t *TreeMetric) lca(u, v int) int {
	if t.depth[u] < t.depth[v] {
		u, v = v, u
	}
	diff := t.depth[u] - t.depth[v]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			u = t.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if t.up[k][u] != t.up[k][v] {
			u, v = t.up[k][u], t.up[k][v]
		}
	}
	return t.up[0][u]
}

// Stretches returns the stretch of every edge of g with respect to the tree
// (edges of the tree itself have stretch 1). The second return value is the
// average stretch.
func Stretches(g *graph.Graph, treeEdges []graph.Edge) ([]float64, float64, error) {
	tm, err := NewTreeMetric(g.N(), treeEdges)
	if err != nil {
		return nil, 0, err
	}
	es := g.Edges()
	out := make([]float64, len(es))
	total := 0.0
	for i, e := range es {
		out[i] = e.W * tm.Resistance(e.U, e.V)
		total += out[i]
	}
	avg := 0.0
	if len(es) > 0 {
		avg = total / float64(len(es))
	}
	return out, avg, nil
}
