// Package serve implements solve-as-a-service over the hcd library: an HTTP
// server that caches submitted graphs with their multilevel Steiner
// hierarchies (the expensive artifact), keeps pools of warm solve engines
// per graph, and gates solve traffic through per-tenant token-bucket
// admission control. The handlers execute the same hcd.Do request path as
// the CLI tools — the server adds caching, pooling, and tenancy, not a
// second solver.
package serve

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hcd"
	"hcd/internal/obs"
)

// Config tunes a Server. The zero value serves with the defaults noted on
// each field.
type Config struct {
	// MaxHandles caps cached graphs (default 32); inserting past it evicts
	// the least recently used idle handle.
	MaxHandles int
	// MaxBytes budgets the cached graphs + hierarchies in bytes
	// (default 1 GiB).
	MaxBytes int64
	// PoolSize is the number of warm engines kept per ready handle
	// (default 2) — the solve concurrency one graph sustains without
	// engine rebuilds.
	PoolSize int
	// MaxBodyBytes bounds request bodies (default 256 MiB).
	MaxBodyBytes int64
	// Hierarchy is the default build configuration; per-submit query
	// parameters override it. Zero value = hcd.DefaultHierarchyOptions.
	Hierarchy hcd.HierarchyOptions
	// AutoShardVertices turns on sharded hierarchy builds for submissions
	// of at least this many vertices when the build options do not set a
	// shard count themselves; the shard count follows the worker count.
	// Default 200 000; negative disables auto-sharding.
	AutoShardVertices int
	// Admission tunes the per-tenant token buckets.
	Admission AdmissionConfig
	// StateDir, when non-empty, makes handles durable: built hierarchies
	// are snapshotted there (write-ahead manifest + one checksummed
	// snapshot file per handle) and re-registered on restart, hydrating
	// lazily on first use. Empty = memory-only.
	StateDir string
	// BreakerThreshold is the consecutive-build-failure count at which a
	// handle's circuit breaker opens and solves degrade to raw CG instead
	// of erroring (default 3; negative disables the breaker — handles then
	// stay failed forever).
	BreakerThreshold int
	// MaxTimeout caps the per-request deadline budget. Requests opt into a
	// deadline with ?timeout_ms=; the effective deadline is min(requested,
	// MaxTimeout). When MaxTimeout is set it also applies to requests that
	// ask for nothing. Zero = no server-imposed deadline.
	MaxTimeout time.Duration
	// BatchWindow enables micro-batched solves: PCG requests against the
	// same ready handle (and the same tolerance/budget) that arrive within
	// this window are coalesced into one block solve on one engine. The
	// first request in a batch waits up to the full window, so keep it small
	// relative to a solve (hundreds of microseconds to a few milliseconds).
	// Zero disables batching (the default).
	BatchWindow time.Duration
	// BatchMaxWidth caps the columns coalesced into one batch; a full batch
	// fires without waiting out the window (default 16). Only meaningful
	// when BatchWindow > 0.
	BatchMaxWidth int
	// Registry receives the serve_* metric family (nil = a fresh registry;
	// it also backs the mounted /metrics endpoints).
	Registry *obs.Registry
	// Tracer, when non-nil, records per-request and build spans.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives one structured access-log record per
	// request (route, code, tenant, duration, trace/span IDs, handle,
	// outcome, batch width). Nil disables logging with zero per-request
	// overhead — the `-log-json` / `-log-level` flags of hcd-server
	// construct this.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxHandles <= 0 {
		c.MaxHandles = 32
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1 << 30
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.Hierarchy == (hcd.HierarchyOptions{}) {
		c.Hierarchy = hcd.DefaultHierarchyOptions()
	}
	if c.AutoShardVertices == 0 {
		c.AutoShardVertices = 200_000
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.BatchWindow > 0 && c.BatchMaxWidth <= 0 {
		c.BatchMaxWidth = 16
	}
	return c
}

// Server is the solve-as-a-service front end. Create with New, expose with
// Handler, retire with Drain.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	tr    *obs.Tracer
	log   *slog.Logger // nil = access logging disabled (the zero-alloc path)
	store *store
	adm   *admission
	mux   *http.ServeMux
	batch *batcher // nil unless Config.BatchWindow > 0

	draining   atomic.Bool
	ready      atomic.Bool // restore finished; /readyz gates on it
	inflight   sync.WaitGroup
	persistErr error // set once in New when the state dir is unusable
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		reg: cfg.Registry,
		tr:  cfg.Tracer,
		log: cfg.Logger,
		adm: newAdmission(cfg.Admission),
		mux: http.NewServeMux(),
	}
	s.batch = newBatcher(cfg.BatchWindow, cfg.BatchMaxWidth, cfg.Registry)
	s.store = newStore(cfg.MaxHandles, cfg.MaxBytes, cfg.PoolSize, cfg.Hierarchy, s.reg, s.tr)
	s.store.autoShard = cfg.AutoShardVertices
	s.store.breaker = cfg.BreakerThreshold
	if cfg.StateDir != "" {
		pst, err := newPersister(cfg.StateDir)
		if err != nil {
			// Persistence is an enhancement, not a prerequisite: an unusable
			// state dir serves memory-only and surfaces through /readyz.
			s.persistErr = err
		} else {
			s.store.pst = pst
			s.store.restore()
		}
	}
	s.ready.Store(true)
	s.routes()
	return s
}

// Handler returns the server's HTTP handler: the v1 API plus the mounted
// diagnostics mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metric registry (the -smoke battery and tests read
// counters directly instead of scraping /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Drain retires the server gracefully: new requests are refused with 503
// (Connection: close) while requests already in flight run to completion.
// It returns when the server is idle or ctx expires — pair it with
// http.Server.Shutdown, which handles the listener side.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close abandons the server abruptly: in-flight hierarchy builds are
// cancelled and engine pools dropped, with no drain and no durable-state
// cleanup — snapshots and the manifest stay exactly as the last sync left
// them. It is the in-process analogue of kill -9, used by crash-recovery
// tests and the chaos battery; production shutdown pairs Drain with
// http.Server.Shutdown instead.
func (s *Server) Close() {
	s.draining.Store(true)
	s.store.closeAll()
}
