package serve

// Metric names of the serve_* family. Everything the server counts goes
// through these helpers so the names stay greppable in one place and tenant
// strings are sanitized before they become label values.

import (
	"strings"
	"time"

	"hcd/internal/obs"
)

// Metric names (label-free forms; labelled series append {k="v"} suffixes).
const (
	metricRequests     = "serve_requests_total"      // {route,code}
	metricRequestTime  = "serve_request_seconds"     // {route}
	metricCacheHits    = "serve_handle_cache_hits"   // solve found a ready hierarchy
	metricCacheMisses  = "serve_handle_cache_misses" // solve had to wait for a build
	metricBuilds       = "serve_builds_total"        // {outcome}
	metricBuildTime    = "serve_build_seconds"
	metricHandles      = "serve_handles"      // gauge: live handles
	metricHandleBytes  = "serve_handle_bytes" // gauge: graph+hierarchy budget in use
	metricEvictions    = "serve_evictions_total"
	metricSolves       = "serve_solves_total" // {outcome}
	metricSolveTime    = "serve_solve_seconds"
	metricAdmitted     = "serve_admitted_total"  // {tenant}
	metricThrottled    = "serve_throttled_total" // {tenant}
	metricQueueWait    = "serve_queue_wait_seconds"
	metricEnginesLive  = "serve_engines"      // gauge: engines built across pools
	metricEnginesBusy  = "serve_engines_busy" // gauge: engines checked out right now
	metricInflight     = "serve_inflight"     // gauge: requests being served
	metricDrainRefused = "serve_drain_refused_total"

	// Durability and degradation (PR 8).
	metricRestoreHandles   = "serve_restore_handles_total" // handles re-registered from the manifest
	metricRestoreOK        = "serve_restore_ok_total"      // lazy hydrations that verified clean
	metricRestoreCorrupt   = "serve_restore_corrupt_total" // quarantined snapshots (partial or total)
	metricSnapshotWrites   = "serve_snapshot_writes_total" // {outcome}
	metricDegradedSolves   = "serve_degraded_solves_total" // solves served by the CG fallback rung
	metricBreakerOpen      = "serve_breaker_open_total"    // handles tripped into degraded
	metricDeadlineExceeded = "serve_deadline_exceeded_total"

	// Solve micro-batching (PR 9).
	metricBatchedSolves = "serve_batched_solves_total" // requests served via a coalesced batch (width ≥ 2)
	metricBatchWidth    = "serve_batch_width"          // histogram: requests per executed batch
)

var durationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60,
}

// counter is a nil-safe labelled-counter increment.
func counter(reg *obs.Registry, name string) {
	if reg != nil {
		reg.Counter(name).Inc()
	}
}

// observe is a nil-safe duration observation in seconds.
func observe(reg *obs.Registry, name string, d time.Duration) {
	if reg != nil {
		reg.Histogram(name, durationBuckets).Observe(d.Seconds())
	}
}

// gaugeAdd shifts a gauge by delta, reading through Value (the registry's
// gauges are set-only); callers serialize through their own locks.
func gaugeAdd(reg *obs.Registry, name string, delta float64) {
	if reg != nil {
		g := reg.Gauge(name)
		g.Set(g.Value() + delta)
	}
}

func gaugeSet(reg *obs.Registry, name string, v float64) {
	if reg != nil {
		reg.Gauge(name).Set(v)
	}
}

// safeLabel sanitizes a caller-supplied string (tenant names arrive in an
// HTTP header) into a metric label value: letters, digits, '_', '-', '.'
// pass through, everything else becomes '_', and the result is capped at 64
// bytes so a hostile header cannot balloon the registry.
func safeLabel(s string) string {
	if s == "" {
		return "default"
	}
	var b strings.Builder
	for _, r := range s {
		if b.Len() >= 64 {
			break
		}
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
