package serve

// Micro-batched solves: queued PCG requests against the same ready handle
// (and the same tolerance/budget) are coalesced into one block solve. The
// first request to arrive opens a batch and a window timer; requests landing
// inside the window append their right-hand sides as extra columns; when the
// window closes (or the column cap fills), one engine checkout runs all
// columns through hcd.Do's block path, and each request gets its own slice
// of the results. On bandwidth-bound solves the coalesced block solve
// streams the matrix once for the whole batch — that is the throughput win;
// the cost is up to one window of added latency on the first request.
//
// Batching is opt-in (Config.BatchWindow > 0) and only covers the default
// PCG method on ready handles: degraded, chebyshev and resilient requests
// keep their dedicated paths.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hcd"
	"hcd/internal/obs"
)

// batchKey identifies solves that may share one block solve: same handle,
// same tolerance, same iteration budget. (Options beyond these are fixed
// server-side, so the key is complete.)
type batchKey struct {
	handle  string
	tol     float64
	maxIter int
}

// batchExec runs the coalesced solve: acquire an engine, solve all columns,
// return one result per column. It executes once per batch, under a context
// detached from any single request's cancellation.
type batchExec func(ctx context.Context, cols [][]float64) ([]hcd.SolveResult, error)

// batchOut is what each waiting request receives.
type batchOut struct {
	results []hcd.SolveResult
	width   int // requests coalesced into the executed batch
	err     error
}

type batchSub struct {
	lo, hi int // this request's column range
	done   chan batchOut
}

type batch struct {
	cols  [][]float64
	subs  []batchSub
	fire  chan struct{} // closed to fire before the window closes
	fired bool          // set under the batcher lock; no more joins
}

// batcher owns the pending-batch table. One per Server when batching is on.
type batcher struct {
	window  time.Duration
	maxCols int
	reg     *obs.Registry
	mu      sync.Mutex
	pending map[batchKey]*batch
}

var batchWidthBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

func newBatcher(window time.Duration, maxCols int, reg *obs.Registry) *batcher {
	if window <= 0 {
		return nil
	}
	if maxCols <= 0 {
		maxCols = 16
	}
	return &batcher{window: window, maxCols: maxCols, reg: reg, pending: map[batchKey]*batch{}}
}

// solve enqueues cols under key and blocks until the coalesced solve
// completes (returning this request's results and the executed batch width)
// or ctx dies (the batch keeps running for the other waiters; this request
// just stops waiting). exec is used only by the request that opens the
// batch — all joiners share the same handle and options, so any request's
// executor is interchangeable.
func (bt *batcher) solve(ctx context.Context, key batchKey, cols [][]float64, exec batchExec) ([]hcd.SolveResult, int, error) {
	done := make(chan batchOut, 1)
	bt.mu.Lock()
	b := bt.pending[key]
	if b == nil || b.fired {
		b = &batch{fire: make(chan struct{})}
		bt.pending[key] = b
		// Detach the batch from this request's cancellation but keep its
		// observability values: a waiter hanging up must not kill the solve
		// for the rest of the batch.
		bctx := context.WithoutCancel(ctx)
		go bt.run(bctx, key, b, exec)
	}
	lo := len(b.cols)
	b.cols = append(b.cols, cols...)
	b.subs = append(b.subs, batchSub{lo: lo, hi: len(b.cols), done: done})
	fireNow := !b.fired && len(b.cols) >= bt.maxCols
	if fireNow {
		b.fired = true
	}
	bt.mu.Unlock()
	if fireNow {
		close(b.fire)
	}
	select {
	case out := <-done:
		return out.results, out.width, out.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// run waits out the batch window (or an early fire), seals the batch, runs
// the coalesced solve, and distributes per-request slices of the results.
func (bt *batcher) run(ctx context.Context, key batchKey, b *batch, exec batchExec) {
	t := time.NewTimer(bt.window)
	select {
	case <-t.C:
	case <-b.fire:
		t.Stop()
	}
	bt.mu.Lock()
	b.fired = true
	if bt.pending[key] == b {
		delete(bt.pending, key)
	}
	cols, subs := b.cols, b.subs
	bt.mu.Unlock()

	width := len(subs)
	results, err := exec(ctx, cols)
	if bt.reg != nil {
		bt.reg.Histogram(metricBatchWidth, batchWidthBuckets).Observe(float64(width))
		if width > 1 {
			bt.reg.Counter(metricBatchedSolves).Add(int64(width))
		}
	}
	for _, sub := range subs {
		out := batchOut{width: width, err: err}
		if err == nil {
			if sub.hi <= len(results) {
				out.results = results[sub.lo:sub.hi]
			} else {
				out.err = fmt.Errorf("serve: batch solve returned %d results for %d columns", len(results), sub.hi)
			}
		}
		sub.done <- out // buffered: a departed waiter never blocks the batch
	}
}

// batchedSolve routes one request's right-hand sides through the server
// batcher: the columns join (or open) the pending batch for (id, tol,
// maxIter), and the executed batch checks out one pooled engine and runs all
// coalesced columns through hcd.Do's block path. Returns this request's
// results plus the width (requests) of the batch that served them.
func (s *Server) batchedSolve(ctx context.Context, id string, g *hcd.Graph, hier *hcd.Hierarchy, pool *enginePool, cols [][]float64, opt hcd.SolveOptions) (*hcd.SolveResponse, int, error) {
	key := batchKey{handle: id, tol: opt.Tol, maxIter: opt.MaxIter}
	exec := func(bctx context.Context, all [][]float64) ([]hcd.SolveResult, error) {
		eng, err := pool.acquire(bctx)
		if err != nil {
			return nil, err
		}
		defer pool.release(eng)
		resp, err := hcd.Do(bctx, g, hcd.SolveRequest{
			B: all, Options: opt, M: hier, Method: hcd.SolveMethodPCG, Engine: eng,
		})
		return resp.Results, err
	}
	results, width, err := s.batch.solve(ctx, key, cols, exec)
	return &hcd.SolveResponse{Results: results}, width, err
}
