package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcd/internal/faultinject"
	"hcd/internal/obs"
)

// waitStatus polls a handle until it reaches want (or any terminal state
// when terminal is set) and returns the last body seen.
func waitStatus(t *testing.T, c *client, id string, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body, _ := c.do("GET", "/v1/graphs/"+id, "", nil)
		if code != http.StatusOK {
			t.Fatalf("poll %s: code %d body %v", id, code, body)
		}
		if body["status"] == want {
			return body
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("handle %s never reached status %q", id, want)
	return nil
}

// TestRestoreWithoutRebuild is the acceptance path: build a hierarchy under
// a state dir, kill the server, restart on the same dir — the handle must
// come back ready and solve without a single build span in the new process.
func TestRestoreWithoutRebuild(t *testing.T) {
	dir := t.TempDir()

	srvA, cA := newTestServer(t, Config{StateDir: dir})
	code, body, _ := cA.do("POST", "/v1/graphs?spec=grid3d:8&wait=true", "", nil)
	if code != http.StatusCreated || body["status"] != "ready" {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)
	if code, body, _ = cA.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1}); code != http.StatusOK {
		t.Fatalf("solve on A: code %d body %v", code, body)
	}
	srvA.Close() // crash: no drain, durable state stays put

	tr := obs.NewTracer()
	srvB, cB := newTestServer(t, Config{StateDir: dir, Tracer: tr})
	code, body, _ = cB.do("GET", "/v1/graphs/"+id, "", nil)
	if code != http.StatusOK {
		t.Fatalf("restored handle missing: code %d body %v", code, body)
	}
	if body["status"] != "ready" {
		t.Fatalf("restored handle status %v, want ready", body["status"])
	}
	if body["restored"] != true {
		t.Fatalf("restored handle not flagged restored: %v", body)
	}

	code, body, _ = cB.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 2})
	if code != http.StatusOK {
		t.Fatalf("solve on B: code %d body %v", code, body)
	}
	for _, r := range body["results"].([]any) {
		if r.(map[string]any)["converged"] != true {
			t.Fatalf("restored solve did not converge: %v", body)
		}
	}
	// Zero build work anywhere in the restored process's traces.
	for _, sp := range tr.Spans() {
		if strings.Contains(sp.Name, "build") {
			t.Errorf("restored server recorded build span %q", sp.Name)
		}
	}
	if got := srvB.Registry().Counter(metricRestoreOK).Value(); got != 1 {
		t.Errorf("restore_ok = %v, want 1", got)
	}
	// Hydration charged real bytes and the handle is no longer "restored".
	code, body, _ = cB.do("GET", "/v1/graphs/"+id, "", nil)
	if code != http.StatusOK || body["restored"] == true {
		t.Fatalf("post-hydration info: code %d body %v", code, body)
	}

	// Delete must remove the durable state too.
	if code, _, _ = cB.do("DELETE", "/v1/graphs/"+id, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: code %d", code)
	}
	snap := filepath.Join(dir, id+".snap")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snap); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot %s still on disk after delete", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCorruptSnapshotDegradesToRebuild damages a snapshot's hierarchy data
// (graph section left intact): the restored handle must quarantine the file
// and rebuild from the recovered graph — a slower first solve, never a crash.
func TestCorruptSnapshotDegradesToRebuild(t *testing.T) {
	dir := t.TempDir()

	srvA, cA := newTestServer(t, Config{StateDir: dir})
	_, body, _ := cA.do("POST", "/v1/graphs?spec=grid3d:8&wait=true", "", nil)
	id := body["id"].(string)
	srvA.Close()

	snap := filepath.Join(dir, id+".snap")
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // the final level section's checksum
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srvB, cB := newTestServer(t, Config{StateDir: dir})
	code, body, _ := cB.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1, "wait": true})
	if code != http.StatusOK {
		t.Fatalf("solve after quarantine+rebuild: code %d body %v", code, body)
	}
	if got := srvB.Registry().Counter(metricRestoreCorrupt).Value(); got != 1 {
		t.Errorf("restore_corrupt = %v, want 1", got)
	}
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Errorf("damaged snapshot not quarantined: %v", err)
	}
	// The rebuild re-persisted the handle: a third process restores clean.
	waitStatus(t, cB, id, "ready")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snap); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebuilt handle never re-persisted its snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUnrecoverableSnapshotFailsHandle overwrites a snapshot wholesale:
// nothing is recoverable, so the handle must turn failed with a diagnosable
// error — and the server must keep serving everything else.
func TestUnrecoverableSnapshotFailsHandle(t *testing.T) {
	dir := t.TempDir()

	srvA, cA := newTestServer(t, Config{StateDir: dir})
	_, body, _ := cA.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", "", nil)
	id := body["id"].(string)
	srvA.Close()

	snap := filepath.Join(dir, id+".snap")
	if err := os.WriteFile(snap, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, cB := newTestServer(t, Config{StateDir: dir})
	code, body, _ := cB.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("solve against unrecoverable snapshot: code %d body %v", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "snapshot") {
		t.Errorf("error %q does not mention the snapshot", msg)
	}
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Errorf("unrecoverable snapshot not quarantined: %v", err)
	}
	// The rest of the server is unaffected.
	if code, _, _ := cB.do("POST", "/v1/graphs?spec=grid3d:5&wait=true", "", nil); code != http.StatusCreated {
		t.Fatalf("fresh submit after quarantine: code %d", code)
	}
}

// TestCrashMidBuildLeavesConsistentState kills a server right after an
// async submit — the build may be in flight or just finished, and both
// outcomes must leave consistent durable state: either the handle is absent
// from the manifest (build never completed), or it restores ready and
// hydrates into a working solve. Never a half-written snapshot.
func TestCrashMidBuildLeavesConsistentState(t *testing.T) {
	dir := t.TempDir()

	srvA, cA := newTestServer(t, Config{StateDir: dir})
	code, body, _ := cA.do("POST", "/v1/graphs?spec=grid3d:14", "", nil) // async build
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	srvA.Close() // cancel any in-flight build, abandon the process

	srvB, cB := newTestServer(t, Config{StateDir: dir})
	for _, info := range srvB.store.List() {
		if !info.Restored {
			continue
		}
		// Whatever the manifest references must hydrate and solve cleanly.
		code, body, _ := cB.do("POST", "/v1/graphs/"+info.ID+"/solve", "", map[string]any{"rhs": 1, "wait": true})
		if code != http.StatusOK {
			t.Fatalf("restored handle %s does not solve: code %d body %v", info.ID, code, body)
		}
	}
	// The dir holds no stray temp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s after restore", e.Name())
		}
	}
	// And the server works.
	if code, _, _ := cB.do("POST", "/v1/graphs?spec=grid3d:5&wait=true", "", nil); code != http.StatusCreated {
		t.Fatal("submit after crash restore failed")
	}
}

// TestBreakerDegradedSolve drives a handle's build to fail repeatedly until
// the circuit breaker opens, then verifies solves fall through to the
// unpreconditioned-CG rung instead of erroring.
func TestBreakerDegradedSolve(t *testing.T) {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.BuildFail: {}, // every build attempt fails
	})
	defer restore()

	srv, c := newTestServer(t, Config{BreakerThreshold: 2})
	code, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", "", nil)
	if code != http.StatusCreated || body["status"] != "failed" {
		t.Fatalf("submit under BuildFail: code %d body %v", code, body)
	}
	id := body["id"].(string)

	// First solve: 422 and a background retry, which fails again and trips
	// the breaker (threshold 2).
	code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("solve on failed handle: code %d body %v", code, body)
	}
	waitStatus(t, c, id, "degraded")
	if got := srv.Registry().Counter(metricBreakerOpen).Value(); got != 1 {
		t.Errorf("breaker_open = %v, want 1", got)
	}

	// Degraded solves succeed on the CG fallback rung.
	code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1})
	if code != http.StatusOK {
		t.Fatalf("degraded solve: code %d body %v", code, body)
	}
	if body["degraded"] != true {
		t.Fatalf("degraded solve not flagged: %v", body)
	}
	res := body["results"].([]any)[0].(map[string]any)
	if res["rung"] != "cg" || res["converged"] != true {
		t.Fatalf("degraded solve result %v, want converged on rung cg", res)
	}
	if got := srv.Registry().Counter(metricDegradedSolves).Value(); got < 1 {
		t.Errorf("degraded_solves = %v, want ≥ 1", got)
	}
}

// TestSnapshotWriteFailureKeepsServing injects disk failure into the
// snapshot encode: the handle must still come up ready (memory-only) with
// the failure counted, not poisoned.
func TestSnapshotWriteFailureKeepsServing(t *testing.T) {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.SnapshotWrite: {},
	})
	defer restore()

	dir := t.TempDir()
	srv, c := newTestServer(t, Config{StateDir: dir})
	code, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", "", nil)
	if code != http.StatusCreated || body["status"] != "ready" {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)
	if code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1}); code != http.StatusOK {
		t.Fatalf("solve: code %d body %v", code, body)
	}
	if got := srv.Registry().Counter(metricSnapshotWrites + `{outcome="error"}`).Value(); got != 1 {
		t.Errorf("snapshot_writes{error} = %v, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".snap")); !os.IsNotExist(err) {
		t.Error("failed snapshot write left a file behind")
	}
}

// TestTimeoutBudget504 exercises the deadline ladder: a solve whose
// ?timeout_ms budget expires mid-request must map to 504 Gateway Timeout
// (the server's own deadline), not 408.
func TestTimeoutBudget504(t *testing.T) {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.SolveDelay: {Delay: 300 * time.Millisecond, DelayOnly: true},
	})
	defer restore()

	srv, c := newTestServer(t, Config{})
	_, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", "", nil)
	id := body["id"].(string)

	code, body, _ := c.do("POST", "/v1/graphs/"+id+"/solve?timeout_ms=50", "", map[string]any{"rhs": 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired budget: code %d body %v, want 504", code, body)
	}
	if got := srv.Registry().Counter(metricDeadlineExceeded).Value(); got != 1 {
		t.Errorf("deadline_exceeded = %v, want 1", got)
	}
}

// TestMidSolveDeadline504 expires the budget while the numeric solve is
// running (no fault injection — a real solve against a tiny budget). hcd.Do
// reports an expired context as cancelled results with a nil error, so the
// handler must recognize the expiry itself: cancelled results are never
// served as 200.
func TestMidSolveDeadline504(t *testing.T) {
	_, c := newTestServer(t, Config{})
	_, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:16&wait=true", "", nil)
	id := body["id"].(string)

	code, body, _ := c.do("POST", "/v1/graphs/"+id+"/solve?timeout_ms=2", "", map[string]any{"rhs": 16})
	switch code {
	case http.StatusGatewayTimeout:
		// budget expired mid-solve: the expected outcome
	case http.StatusOK:
		// machine fast enough to finish 16 RHS inside 2ms: then every
		// result must actually be converged, none cancelled
		for _, r := range body["results"].([]any) {
			res := r.(map[string]any)
			if res["converged"] != true {
				t.Fatalf("200 with non-converged result %v — expired solves must map to 504", res)
			}
		}
	default:
		t.Fatalf("mid-solve expiry: code %d body %v, want 504 (or a fully converged 200)", code, body)
	}
}

// TestClientCancel408 drops the client mid-solve (context cancellation, not
// a deadline): the server must classify it 408 Request Timeout.
func TestClientCancel408(t *testing.T) {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.SolveDelay: {Delay: 200 * time.Millisecond, DelayOnly: true},
	})
	defer restore()

	srv, c := newTestServer(t, Config{})
	_, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", "", nil)
	id := body["id"].(string)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	req := httptest.NewRequest("POST", "/v1/graphs/"+id+"/solve", strings.NewReader(`{"rhs":1}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("client cancel: code %d body %s, want 408", rec.Code, rec.Body.String())
	}
}

// TestServerCapClampsTimeout verifies Config.MaxTimeout bounds the budget a
// client may request: an extravagant ?timeout_ms is clamped to the cap and
// the request 504s once the cap expires.
func TestServerCapClampsTimeout(t *testing.T) {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.SolveDelay: {Delay: 300 * time.Millisecond, DelayOnly: true},
	})
	defer restore()

	_, c := newTestServer(t, Config{MaxTimeout: 50 * time.Millisecond})
	_, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", "", nil)
	id := body["id"].(string)

	code, body, _ := c.do("POST", "/v1/graphs/"+id+"/solve?timeout_ms=60000", "", map[string]any{"rhs": 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("capped budget: code %d body %v, want 504", code, body)
	}
}

// TestDeleteDuringInflightSolve races an explicit delete against a solve
// that already holds the handle: the solve must finish normally on its
// pinned reference and the handle must be gone afterwards.
func TestDeleteDuringInflightSolve(t *testing.T) {
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.SolveDelay: {Delay: 150 * time.Millisecond, DelayOnly: true},
	})
	defer restore()

	_, c := newTestServer(t, Config{})
	_, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", "", nil)
	id := body["id"].(string)

	type result struct {
		code int
		body map[string]any
	}
	done := make(chan result, 1)
	go func() {
		code, body, _ := c.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1})
		done <- result{code, body}
	}()
	time.Sleep(50 * time.Millisecond) // solve is inside its injected stall
	if code, _, _ := c.do("DELETE", "/v1/graphs/"+id, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete during solve: code %d", code)
	}
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight solve after delete: code %d body %v", r.code, r.body)
	}
	if code, _, _ := c.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1}); code != http.StatusNotFound {
		t.Fatalf("solve after delete: code %d, want 404", code)
	}
}

// TestDrainDuringBuild retires a server while a hierarchy build is in
// flight: drain must not deadlock waiting on the background build (builds
// are not requests), and post-drain requests get 503 + Retry-After.
func TestDrainDuringBuild(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	code, _, _ := c.do("POST", "/v1/graphs?spec=grid3d:14", "", nil) // async build
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain during build: %v", err)
	}
	code, _, hdr := c.do("GET", "/v1/graphs", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: code %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("post-drain 503 carries no Retry-After")
	}
}

// TestHealthEndpoints covers the probe surface: healthz always answers,
// readyz flips to 503 + Retry-After once draining starts.
func TestHealthEndpoints(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	if code, body, _ := c.do("GET", "/healthz", "", nil); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: code %d body %v", code, body)
	}
	if code, body, _ := c.do("GET", "/readyz", "", nil); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("readyz: code %d body %v", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv.Drain(ctx)

	if code, _, _ := c.do("GET", "/healthz", "", nil); code != http.StatusOK {
		t.Fatal("healthz must answer while draining")
	}
	code, body, hdr := c.do("GET", "/readyz", "", nil)
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz while draining: code %d body %v", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining readyz carries no Retry-After")
	}
}
