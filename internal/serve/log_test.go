package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hcd/internal/obs"
)

// syncBuffer serializes writes so the slog handler can be read back safely
// while the httptest server's handler goroutines are still winding down.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// decodeLogLines parses every access-log line as JSON — one object per line,
// no partial writes — and returns the decoded records.
func decodeLogLines(t *testing.T, buf *syncBuffer) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for _, ln := range buf.lines() {
		if ln == "" {
			continue
		}
		m := map[string]any{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("access-log line is not valid JSON: %q: %v", ln, err)
		}
		recs = append(recs, m)
	}
	return recs
}

// TestAccessLogJSON is the end-to-end logging contract: with a JSON logger
// and a tracer installed, every request emits exactly one valid JSON record,
// and the solve record carries the handle, aggregate outcome, and trace/span
// IDs that resolve to the request's serve/solve span in the tracer.
func TestAccessLogJSON(t *testing.T) {
	tr := obs.NewTracer()
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	_, c := newTestServer(t, Config{Tracer: tr, Logger: logger})

	code, body, _ := c.do("POST", "/v1/graphs?spec=grid2d:8&wait=true", "acme", nil)
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)
	if code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "acme", map[string]any{"rhs": 2}); code != http.StatusOK {
		t.Fatalf("solve: code %d body %v", code, body)
	}

	recs := decodeLogLines(t, buf)
	if len(recs) != 2 {
		t.Fatalf("want 2 access-log records, got %d: %v", len(recs), recs)
	}
	var solveRec map[string]any
	for _, m := range recs {
		if m["route"] == "solve" {
			solveRec = m
		}
		if m["tenant"] != "acme" {
			t.Errorf("record missing tenant: %v", m)
		}
		if m["trace_id"] != float64(tr.ID()) {
			t.Errorf("record trace_id %v, want %d", m["trace_id"], tr.ID())
		}
	}
	if solveRec == nil {
		t.Fatalf("no solve record in %v", recs)
	}
	if solveRec["code"] != float64(http.StatusOK) || solveRec["handle"] != id {
		t.Errorf("solve record code/handle wrong: %v", solveRec)
	}
	if solveRec["outcome"] != "converged" {
		t.Errorf("solve record outcome %v, want converged", solveRec["outcome"])
	}
	if solveRec["rhs"] != float64(2) {
		t.Errorf("solve record rhs %v, want 2", solveRec["rhs"])
	}
	if it, ok := solveRec["iterations"].(float64); !ok || it <= 0 {
		t.Errorf("solve record iterations %v, want > 0", solveRec["iterations"])
	}

	// The span_id joins back to the serve/solve span recorded by the tracer.
	spanID, ok := solveRec["span_id"].(float64)
	if !ok || spanID == 0 {
		t.Fatalf("solve record span_id %v, want non-zero", solveRec["span_id"])
	}
	found := false
	for _, sp := range tr.Spans() {
		if sp.ID == uint64(spanID) {
			found = true
			if sp.Name != "serve/solve" {
				t.Errorf("span_id %d resolves to span %q, want serve/solve", sp.ID, sp.Name)
			}
		}
	}
	if !found {
		t.Errorf("span_id %d not found among %d recorded spans", uint64(spanID), len(tr.Spans()))
	}
}

// TestThrottledAccessLog: an admission refusal logs a warn-level 429 record
// with outcome "throttled", and the HTTP response still carries Retry-After.
func TestThrottledAccessLog(t *testing.T) {
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	_, c := newTestServer(t, Config{
		Admission: AdmissionConfig{Rate: 1e-9, Burst: 2, MaxQueue: 0},
		Logger:    logger,
	})
	code, body, _ := c.do("POST", "/v1/graphs?spec=grid2d:8&wait=true", "", nil)
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)
	solve := map[string]any{"rhs": 1}
	for i := 0; i < 2; i++ {
		if code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "noisy", solve); code != http.StatusOK {
			t.Fatalf("solve %d: code %d body %v", i, code, body)
		}
	}
	code, _, hdr := c.do("POST", "/v1/graphs/"+id+"/solve", "noisy", solve)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: code %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	throttled := false
	for _, m := range decodeLogLines(t, buf) {
		if m["code"] == float64(http.StatusTooManyRequests) {
			throttled = true
			if m["outcome"] != "throttled" {
				t.Errorf("429 record outcome %v, want throttled", m["outcome"])
			}
			if m["level"] != "WARN" {
				t.Errorf("429 record level %v, want WARN", m["level"])
			}
		}
	}
	if !throttled {
		t.Error("no 429 access-log record emitted")
	}
}

// TestDisabledLoggingZeroAlloc pins the disabled path: with no logger
// configured, the annotation helpers and logRequest allocate nothing, so a
// server that doesn't ask for access logs pays nothing per request.
func TestDisabledLoggingZeroAlloc(t *testing.T) {
	srv := New(Config{})
	ctx := context.Background()
	req := httptest.NewRequest("POST", "/v1/graphs/g-1/solve", nil)
	allocs := testing.AllocsPerRun(100, func() {
		lf := logFieldsFrom(ctx)
		lf.setHandle("g-1")
		lf.setSolve("converged", 1, 12, false, 0, 0)
		lf.setOutcome("throttled")
		srv.logRequest(ctx, "solve", req, http.StatusOK, time.Millisecond, lf)
	})
	if allocs != 0 {
		t.Errorf("disabled logging path allocates %v per request, want 0", allocs)
	}
}
