package serve

// Per-tenant admission control: a token bucket per tenant plus a bounded
// wait queue. A request that finds tokens available proceeds immediately; one
// that does not either queues (FCFS or shortest-job-first, by declared cost)
// or — when the queue is full — is refused with an OverloadError carrying a
// Retry-After hint. One tenant exhausting its bucket never touches another
// tenant's: buckets are independent and the dispatcher is per tenant.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrOverloaded is the sentinel wrapped by every admission refusal.
var ErrOverloaded = errors.New("serve: tenant overloaded")

// OverloadError reports an admission refusal: the tenant's bucket is empty
// and its queue is full. RetryAfter estimates when the bucket will hold
// enough tokens for the refused request (the HTTP layer rounds it up into a
// Retry-After header).
type OverloadError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: tenant %q overloaded, retry after %v", e.Tenant, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// QueuePolicy orders a tenant's wait queue.
type QueuePolicy string

const (
	// FCFS grants queued requests in arrival order.
	FCFS QueuePolicy = "fcfs"
	// SJF grants the cheapest queued request first (ties: arrival order).
	// Cost is the request's declared token cost — for solves, the number
	// of right-hand sides.
	SJF QueuePolicy = "sjf"
)

// AdmissionConfig tunes the per-tenant token buckets. The zero value takes
// the defaults noted per field.
type AdmissionConfig struct {
	// Rate is the token refill rate per tenant in tokens/second
	// (default 50). One solve right-hand side costs one token.
	Rate float64
	// Burst caps a bucket (default 100): the largest instantaneous spend.
	Burst float64
	// MaxQueue bounds the per-tenant wait queue (default 64). 0 is honored
	// as "no queue": anything beyond the burst is refused immediately.
	// (Use a negative value for the default.)
	MaxQueue int
	// Policy orders the wait queue (default FCFS).
	Policy QueuePolicy
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Burst <= 0 {
		c.Burst = 100
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 64
	}
	if c.Policy == "" {
		c.Policy = FCFS
	}
	return c
}

type waiter struct {
	cost    float64
	seq     uint64 // arrival order, ties in SJF
	grant   chan struct{}
	granted bool
	gone    bool // cancelled; dispatcher discards without spending
}

type tenantBucket struct {
	tokens  float64
	last    time.Time
	queue   []*waiter
	running bool // dispatcher goroutine live
}

// admission implements the token-bucket admission controller.
type admission struct {
	cfg AdmissionConfig
	now func() time.Time // swapped in tests
	// onGrant, when non-nil, observes each queued grant in dispatch order
	// (called under the lock). Tests use it to assert queue policy.
	onGrant func(cost float64)

	mu      sync.Mutex
	tenants map[string]*tenantBucket
	seq     uint64
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		tenants: make(map[string]*tenantBucket),
	}
}

func (a *admission) bucketLocked(tenant string) *tenantBucket {
	tb := a.tenants[tenant]
	if tb == nil {
		tb = &tenantBucket{tokens: a.cfg.Burst, last: a.now()}
		a.tenants[tenant] = tb
	}
	return tb
}

func (a *admission) refillLocked(tb *tenantBucket) {
	now := a.now()
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = min(a.cfg.Burst, tb.tokens+dt*a.cfg.Rate)
	}
	tb.last = now
}

// retryAfterLocked estimates how long until the bucket can cover cost after
// everything already queued drains.
func (a *admission) retryAfterLocked(tb *tenantBucket, cost float64) time.Duration {
	need := cost - tb.tokens
	for _, w := range tb.queue {
		if !w.gone {
			need += w.cost
		}
	}
	if need <= 0 {
		return time.Second
	}
	d := time.Duration(need / a.cfg.Rate * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Acquire blocks until the tenant's bucket covers cost, the context is
// cancelled, or admission refuses. It returns nil on admission, ctx.Err() on
// cancellation, and an *OverloadError when the bucket is dry and the queue
// full. waited reports time spent queued.
func (a *admission) Acquire(ctx context.Context, tenant string, cost float64) (waited time.Duration, err error) {
	if cost <= 0 {
		cost = 1
	}
	if cost > a.cfg.Burst {
		// A request larger than the burst can never be admitted; refuse
		// now rather than queueing it forever.
		return 0, &OverloadError{Tenant: tenant, RetryAfter: time.Second}
	}
	a.mu.Lock()
	tb := a.bucketLocked(tenant)
	a.refillLocked(tb)
	if len(tb.queue) == 0 && tb.tokens >= cost {
		tb.tokens -= cost
		a.mu.Unlock()
		return 0, nil
	}
	if len(tb.queue) >= a.cfg.MaxQueue {
		retry := a.retryAfterLocked(tb, cost)
		a.mu.Unlock()
		return 0, &OverloadError{Tenant: tenant, RetryAfter: retry}
	}
	a.seq++
	w := &waiter{cost: cost, seq: a.seq, grant: make(chan struct{})}
	tb.queue = append(tb.queue, w)
	if a.cfg.Policy == SJF {
		sort.SliceStable(tb.queue, func(i, j int) bool {
			if tb.queue[i].cost != tb.queue[j].cost {
				return tb.queue[i].cost < tb.queue[j].cost
			}
			return tb.queue[i].seq < tb.queue[j].seq
		})
	}
	if !tb.running {
		tb.running = true
		go a.dispatch(tb)
	}
	a.mu.Unlock()

	start := a.now()
	select {
	case <-w.grant:
		return a.now().Sub(start), nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; the tokens are spent, so
			// proceed — the caller's context check will surface the
			// cancellation in the solve itself.
			a.mu.Unlock()
			return a.now().Sub(start), nil
		}
		w.gone = true
		a.mu.Unlock()
		return a.now().Sub(start), ctx.Err()
	}
}

// dispatch drains one tenant's queue in order, sleeping exactly as long as
// the head waiter needs the bucket to refill. It exits when the queue
// empties; Acquire restarts it on the next enqueue.
func (a *admission) dispatch(tb *tenantBucket) {
	for {
		a.mu.Lock()
		a.refillLocked(tb)
		for len(tb.queue) > 0 && tb.queue[0].gone {
			tb.queue = tb.queue[1:]
		}
		if len(tb.queue) == 0 {
			tb.running = false
			a.mu.Unlock()
			return
		}
		w := tb.queue[0]
		if tb.tokens >= w.cost {
			tb.tokens -= w.cost
			tb.queue = tb.queue[1:]
			w.granted = true
			if a.onGrant != nil {
				a.onGrant(w.cost)
			}
			close(w.grant)
			a.mu.Unlock()
			continue
		}
		wait := time.Duration((w.cost - tb.tokens) / a.cfg.Rate * float64(time.Second))
		a.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		time.Sleep(wait)
	}
}

// QueueDepth reports the tenant's current queue length (tests and the list
// endpoint).
func (a *admission) QueueDepth(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	tb := a.tenants[tenant]
	if tb == nil {
		return 0
	}
	n := 0
	for _, w := range tb.queue {
		if !w.gone {
			n++
		}
	}
	return n
}
