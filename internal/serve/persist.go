package serve

// Durable handle state (-state-dir). The layout is a write-ahead manifest
// plus one snapshot file per handle:
//
//	<dir>/manifest.json   next handle id + one entry per persisted handle
//	<dir>/<id>.snap       gio hierarchy snapshot (graph + level assignments)
//	<dir>/*.corrupt       quarantined snapshots, kept for post-mortems
//
// Ordering rule: a snapshot file is fully written and renamed into place
// before the manifest references it, and the manifest itself is replaced
// atomically (tmp + rename). A crash at any instant therefore leaves either
// a consistent manifest or an orphaned .snap file — orphans are swept on
// restore, never trusted.
//
// Restore is lazy: the manifest re-registers handles as ready with their
// sizes, but snapshot bytes are not read (and memory not charged) until the
// first solve touches the handle. A corrupt snapshot is quarantined at that
// point — renamed aside, counted, and the handle degraded to a rebuild (when
// the graph section survived) or failed (when nothing did), never a crash.
//
// Lock ordering: persister.mu is acquired strictly before store.mu
// (syncManifest gathers entries under both); store.mu sections never call
// into the persister.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hcd"
	"hcd/internal/gio"
)

const manifestName = "manifest.json"

// manifest is the on-disk index of persisted handles.
type manifest struct {
	Version int             `json:"version"`
	NextID  int64           `json:"next_id"`
	Handles []manifestEntry `json:"handles"`
}

// manifestEntry records what restore needs before the snapshot is read:
// identity, display sizes, the byte estimate, and the hierarchy options a
// rebuild must reuse if the snapshot's level data turns out corrupt.
type manifestEntry struct {
	ID    string               `json:"id"`
	File  string               `json:"file"`
	N     int                  `json:"n"`
	M     int                  `json:"m"`
	Bytes int64                `json:"bytes"`
	Hopt  hcd.HierarchyOptions `json:"hierarchy_options"`
}

// persister owns the state directory. All methods are safe for concurrent
// use; mu serializes manifest replacement so concurrent syncs cannot
// interleave a stale snapshot of the store over a fresh one.
type persister struct {
	dir string
	mu  sync.Mutex
}

func newPersister(dir string) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	return &persister{dir: dir}, nil
}

// loadManifest reads the manifest; a missing file is an empty state, a
// malformed one is quarantined and treated as empty (restore must not be
// fatal).
func (p *persister) loadManifest() (manifest, bool) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(p.dir, manifestName))
	if err != nil {
		return m, !errors.Is(err, os.ErrNotExist)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		p.quarantine(manifestName)
		return manifest{}, true
	}
	return m, false
}

// saveManifest atomically replaces the manifest. Caller holds p.mu.
func (p *persister) saveManifest(m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(p.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(p.dir, manifestName))
}

// writeSnapshot persists a built handle: encode to <id>.snap.tmp, fsync,
// rename into place. Returns the final file name (relative to the dir).
func (p *persister) writeSnapshot(id string, g *hcd.Graph, h *hcd.Hierarchy) (string, error) {
	name := id + ".snap"
	tmp := filepath.Join(p.dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = gio.WriteHierarchySnapshot(bw, g, h)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, name)); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	return name, nil
}

// readSnapshot hydrates a handle from its snapshot file. The three-way
// contract mirrors gio.ReadHierarchySnapshot: (g, h, nil) on success,
// (g, nil, err) when only the hierarchy portion is damaged, (nil, nil, err)
// on total corruption or I/O failure.
func (p *persister) readSnapshot(ctx context.Context, file string) (*hcd.Graph, *hcd.Hierarchy, error) {
	f, err := os.Open(filepath.Join(p.dir, file))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return gio.ReadHierarchySnapshot(ctx, bufio.NewReaderSize(f, 1<<20))
}

// quarantine renames a damaged file aside (.corrupt suffix) instead of
// deleting it, so an operator can inspect what broke. Best-effort.
func (p *persister) quarantine(file string) {
	src := filepath.Join(p.dir, file)
	if err := os.Rename(src, src+".corrupt"); err != nil {
		_ = os.Remove(src)
	}
}

// removeSnapshot deletes a handle's snapshot file. Best-effort: a leftover
// file is an orphan the next restore sweeps.
func (p *persister) removeSnapshot(file string) {
	if file != "" {
		_ = os.Remove(filepath.Join(p.dir, file))
	}
}

// sweepOrphans removes .snap files the manifest does not reference —
// the residue of crashes between a snapshot rename and its manifest sync.
func (p *persister) sweepOrphans(m manifest) {
	referenced := make(map[string]bool, len(m.Handles))
	for _, e := range m.Handles {
		referenced[e.File] = true
	}
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	for _, de := range entries {
		name := de.Name()
		if strings.HasSuffix(name, ".snap") && !referenced[name] {
			_ = os.Remove(filepath.Join(p.dir, name))
		}
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(p.dir, name))
		}
	}
}

// --- store integration ---

// restore re-registers every manifest entry as a ready, unhydrated handle.
// It runs once, from New, before the server accepts traffic; the snapshots
// themselves are only read when a solve first touches each handle.
func (s *store) restore() {
	if s.pst == nil {
		return
	}
	m, damaged := s.pst.loadManifest()
	if damaged {
		counter(s.reg, metricRestoreCorrupt)
	}
	s.pst.sweepOrphans(m)
	s.mu.Lock()
	if m.NextID > s.nextID {
		s.nextID = m.NextID
	}
	// Ascending id order: each PushFront leaves the newest handle at the
	// LRU front, so eviction pressure lands on the oldest restorations.
	sort.Slice(m.Handles, func(i, j int) bool { return m.Handles[i].ID < m.Handles[j].ID })
	for _, e := range m.Handles {
		if e.ID == "" || e.File == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.pst.dir, e.File)); err != nil {
			counter(s.reg, metricRestoreCorrupt)
			continue
		}
		if _, dup := s.byID[e.ID]; dup {
			continue
		}
		h := &handle{
			id:       e.ID,
			ready:    closedChan,
			status:   StatusReady,
			restored: true,
			snapFile: e.File,
			n:        e.N,
			m:        e.M,
			estBytes: e.Bytes,
			hopt:     e.Hopt,
			lastUse:  s.now(),
			cancel:   func() {},
		}
		h.elem = s.lru.PushFront(h)
		s.byID[h.id] = h
		counter(s.reg, metricRestoreHandles)
	}
	s.publishLocked()
	s.mu.Unlock()
	s.syncManifest()
}

// closedChan is the pre-closed ready channel restored handles start with:
// their build already happened, in a previous process.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// syncManifest rewrites the manifest from the store's current state. The
// persister lock is held across gather + write so concurrent syncs cannot
// publish an older state over a newer one.
func (s *store) syncManifest() {
	if s.pst == nil {
		return
	}
	s.pst.mu.Lock()
	defer s.pst.mu.Unlock()
	m := manifest{Version: 1}
	s.mu.Lock()
	m.NextID = s.nextID
	for e := s.lru.Front(); e != nil; e = e.Next() {
		h := e.Value.(*handle)
		if h.snapFile == "" {
			continue
		}
		m.Handles = append(m.Handles, manifestEntry{
			ID: h.id, File: h.snapFile, Bytes: h.persistBytesLocked(),
			N: h.dimN(), M: h.dimM(), Hopt: h.hopt,
		})
	}
	s.mu.Unlock()
	if err := s.pst.saveManifest(m); err != nil {
		counter(s.reg, metricSnapshotWrites+`{outcome="manifest_error"}`)
	}
}

// ensureHydrated makes a restored handle solvable: it reads the snapshot,
// verifies it, and installs the graph, hierarchy and engine pool. Exactly
// one goroutine performs the load; concurrent solvers wait on the hydration
// channel. A snapshot whose graph section survived but whose hierarchy data
// is damaged quarantines the file and flips the handle back to building
// (the caller sees StatusBuilding and uses the normal wait path); total
// corruption quarantines and fails the handle.
func (s *store) ensureHydrated(ctx context.Context, h *handle) error {
	for {
		s.mu.Lock()
		if !h.restored || h.status != StatusReady {
			s.mu.Unlock()
			return nil
		}
		if h.hydrating != nil {
			ch := h.hydrating
			s.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		ch := make(chan struct{})
		h.hydrating = ch
		file := h.snapFile
		s.mu.Unlock()

		g, hier, err := s.pst.readSnapshot(ctx, file)
		s.finishHydration(ctx, h, ch, file, g, hier, err)
		return nil
	}
}

func (s *store) finishHydration(ctx context.Context, h *handle, ch chan struct{}, file string, g *hcd.Graph, hier *hcd.Hierarchy, err error) {
	defer close(ch)
	switch {
	case err == nil:
		counter(s.reg, metricRestoreOK)
		s.mu.Lock()
		h.hydrating = nil
		h.restored = false
		h.g = g
		h.h = hier
		h.pool = newEnginePool(g, hier, s.poolSize, s.gauges)
		hb := g.Bytes() + hier.MemoryBytes()
		h.bytes = hb
		s.bytes += hb
		// The hydrated bytes may breach the budget; rebalance against idle
		// handles with this one pinned.
		h.refs++
		_ = s.evictLocked(0, 0)
		h.refs--
		s.publishLocked()
		s.mu.Unlock()

	case g != nil:
		// Graph intact, hierarchy data damaged: quarantine the file and
		// rebuild the hierarchy from the recovered graph.
		counter(s.reg, metricRestoreCorrupt)
		s.pst.quarantine(file)
		buildCtx, cancel := s.buildContext()
		s.mu.Lock()
		h.hydrating = nil
		h.restored = false
		h.g = g
		h.snapFile = ""
		h.status = StatusBuilding
		h.buildErr = nil
		h.ready = make(chan struct{})
		h.cancel = cancel
		opts := h.hopt
		s.mu.Unlock()
		s.syncManifest()
		go s.build(buildCtx, h, opts)

	default:
		// Nothing recoverable: quarantine and fail the handle so clients
		// get a diagnosable 422, not a crash loop.
		counter(s.reg, metricRestoreCorrupt)
		s.pst.quarantine(file)
		s.mu.Lock()
		h.hydrating = nil
		h.restored = false
		h.snapFile = ""
		h.status = StatusFailed
		h.buildErr = fmt.Errorf("serve: snapshot unrecoverable: %w", err)
		s.mu.Unlock()
		s.syncManifest()
	}
}

// persistHandle writes a freshly built handle's snapshot. Called from the
// build goroutine after a successful construction, before the handle is
// published ready — so a submit with ?wait=true implies the state is
// durable. Failures are counted and leave the handle memory-only.
func (s *store) persistHandle(h *handle, g *hcd.Graph, hier *hcd.Hierarchy) string {
	if s.pst == nil {
		return ""
	}
	file, err := s.pst.writeSnapshot(h.id, g, hier)
	if err != nil {
		counter(s.reg, metricSnapshotWrites+`{outcome="error"}`)
		return ""
	}
	counter(s.reg, metricSnapshotWrites+`{outcome="ok"}`)
	return file
}
