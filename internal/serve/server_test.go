package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hcd/internal/obs"
)

// client is a tiny JSON test client against an httptest server.
type client struct {
	t    *testing.T
	base string
	hc   *http.Client
}

func (c *client) do(method, path, tenant string, body any) (int, map[string]any, http.Header) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		_ = json.Unmarshal(raw, &out)
	}
	return resp.StatusCode, out, resp.Header
}

func newTestServer(t *testing.T, cfg Config) (*Server, *client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, &client{t: t, base: ts.URL, hc: ts.Client()}
}

// TestSubmitPollSolveEvict is the core lifecycle: submit a graph, poll until
// the hierarchy is ready, solve against the cache twice (the second must be
// a cache hit with zero build work in its trace), list, and evict.
func TestSubmitPollSolveEvict(t *testing.T) {
	tr := obs.NewTracer()
	srv, c := newTestServer(t, Config{Tracer: tr})

	code, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:8&wait=true", "", nil)
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)
	if body["status"] != "ready" {
		t.Fatalf("submit with wait: status %v", body["status"])
	}

	code, body, _ = c.do("GET", "/v1/graphs/"+id, "", nil)
	if code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("poll: code %d body %v", code, body)
	}
	if lv, ok := body["levels"].([]any); !ok || len(lv) == 0 {
		t.Fatalf("poll: no hierarchy levels in %v", body)
	}

	solve := map[string]any{"rhs": 2, "seed": 5}
	code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "", solve)
	if code != http.StatusOK {
		t.Fatalf("solve: code %d body %v", code, body)
	}
	results := body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("solve: want 2 results, got %d", len(results))
	}
	for i, r := range results {
		if r.(map[string]any)["converged"] != true {
			t.Fatalf("solve: rhs %d did not converge: %v", i, r)
		}
	}

	hits := srv.Registry().Counter(metricCacheHits).Value()
	code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "", solve)
	if code != http.StatusOK || body["cache_hit"] != true {
		t.Fatalf("second solve: code %d body %v", code, body)
	}
	if after := srv.Registry().Counter(metricCacheHits).Value(); after <= hits {
		t.Fatalf("cache hit counter did not advance: %d -> %d", hits, after)
	}
	if builds := srv.Registry().Counter(`serve_builds_total{outcome="ok"}`).Value(); builds != 1 {
		t.Fatalf("want exactly 1 hierarchy build, got %d", builds)
	}
	assertNoBuildUnderSolves(t, tr)

	code, body, _ = c.do("GET", "/v1/graphs", "", nil)
	if code != http.StatusOK {
		t.Fatalf("list: code %d", code)
	}

	code, _, _ = c.do("DELETE", "/v1/graphs/"+id, "", nil)
	if code != http.StatusNoContent {
		t.Fatalf("delete: code %d", code)
	}
	code, _, _ = c.do("GET", "/v1/graphs/"+id, "", nil)
	if code != http.StatusNotFound {
		t.Fatalf("poll after delete: code %d, want 404", code)
	}
}

// assertNoBuildUnderSolves walks the span forest: no solve-request span may
// have hierarchy-build work in its subtree — all builds happen under
// root-level serve/build spans, asynchronously from requests.
func assertNoBuildUnderSolves(t *testing.T, tr *obs.Tracer) {
	t.Helper()
	spans := tr.Spans()
	children := map[uint64][]obs.SpanInfo{}
	var solveRoots []obs.SpanInfo
	builds := 0
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
		if s.Name == "serve/solve" {
			solveRoots = append(solveRoots, s)
		}
		if s.Name == "serve/build" {
			builds++
			if s.Parent != 0 {
				t.Errorf("serve/build parented at span %d, want trace root", s.Parent)
			}
		}
	}
	if len(solveRoots) == 0 {
		t.Fatal("no serve/solve spans recorded")
	}
	if builds == 0 {
		t.Fatal("no serve/build span recorded")
	}
	var walk func(id uint64) []string
	walk = func(id uint64) []string {
		var names []string
		for _, ch := range children[id] {
			names = append(names, ch.Name)
			names = append(names, walk(ch.ID)...)
		}
		return names
	}
	for _, root := range solveRoots {
		for _, name := range walk(root.ID) {
			if strings.Contains(name, "build") {
				t.Errorf("solve request span %d contains build-stage span %q", root.ID, name)
			}
		}
	}
}

// TestSolveWhileBuilding covers the 409-vs-wait choice on a handle whose
// hierarchy is still building.
func TestSolveWhileBuilding(t *testing.T) {
	_, c := newTestServer(t, Config{})
	// A grid large enough that the async build is observably in flight.
	code, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:16", "", nil)
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)

	// Fail-fast path: while the build runs a bare solve answers 409 with
	// the building status. The build may win the race, so accept 200 too —
	// but 409 must carry the status marker.
	code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1})
	switch code {
	case http.StatusConflict:
		if body["status"] != "building" {
			t.Fatalf("409 without building status: %v", body)
		}
	case http.StatusOK:
		// build finished first; fine
	default:
		t.Fatalf("solve while building: code %d body %v", code, body)
	}

	// Wait path: always succeeds once the build lands.
	code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1, "wait": true})
	if code != http.StatusOK {
		t.Fatalf("solve with wait: code %d body %v", code, body)
	}
}

// TestLRUEviction: a 2-handle store drops the least recently used handle on
// the third submit.
func TestLRUEviction(t *testing.T) {
	srv, c := newTestServer(t, Config{MaxHandles: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		code, body, _ := c.do("POST", fmt.Sprintf("/v1/graphs?spec=grid2d:%d&wait=true", 8+i), "", nil)
		if code != http.StatusCreated {
			t.Fatalf("submit %d: code %d body %v", i, code, body)
		}
		ids = append(ids, body["id"].(string))
	}
	if code, _, _ := c.do("GET", "/v1/graphs/"+ids[0], "", nil); code != http.StatusNotFound {
		t.Fatalf("oldest handle not evicted: code %d", code)
	}
	for _, id := range ids[1:] {
		if code, _, _ := c.do("GET", "/v1/graphs/"+id, "", nil); code != http.StatusOK {
			t.Fatalf("handle %s evicted unexpectedly: code %d", id, code)
		}
	}
	if ev := srv.Registry().Counter(metricEvictions).Value(); ev != 1 {
		t.Fatalf("want 1 eviction, got %d", ev)
	}
}

// TestConcurrentClients hammers one cached handle from many goroutines —
// engines come from the warm pool, and under -race this doubles as the
// serving stack's data-race check.
func TestConcurrentClients(t *testing.T) {
	_, c := newTestServer(t, Config{PoolSize: 2})
	code, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:6&wait=true", "", nil)
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)

	const workers, per = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := &client{t: t, base: c.base, hc: c.hc}
			for i := 0; i < per; i++ {
				code, body, _ := cl.do("POST", "/v1/graphs/"+id+"/solve", fmt.Sprintf("w%d", w),
					map[string]any{"rhs": 1, "seed": w*100 + i})
				if code != http.StatusOK {
					errs <- fmt.Errorf("worker %d solve %d: code %d body %v", w, i, code, body)
					return
				}
				if body["results"].([]any)[0].(map[string]any)["converged"] != true {
					errs <- fmt.Errorf("worker %d solve %d did not converge", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAdmissionOverloadHTTP asserts the 429 contract: a tenant that burns
// its burst gets 429 with a Retry-After header, and a different tenant on
// the same server is untouched.
func TestAdmissionOverloadHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{
		Admission: AdmissionConfig{Rate: 1e-9, Burst: 2, MaxQueue: 0},
	})
	code, body, _ := c.do("POST", "/v1/graphs?spec=grid2d:8&wait=true", "", nil)
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)
	solve := map[string]any{"rhs": 1}

	for i := 0; i < 2; i++ {
		if code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "noisy", solve); code != http.StatusOK {
			t.Fatalf("noisy solve %d: code %d body %v", i, code, body)
		}
	}
	code, body, hdr := c.do("POST", "/v1/graphs/"+id+"/solve", "noisy", solve)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: code %d body %v, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if code, body, _ = c.do("POST", "/v1/graphs/"+id+"/solve", "quiet", solve); code != http.StatusOK {
		t.Fatalf("quiet tenant degraded: code %d body %v", code, body)
	}
}

// TestDrainRefusesNewWork: a draining server 503s fresh requests.
func TestDrainRefuses(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	if err := srv.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	code, body, _ := c.do("GET", "/v1/graphs", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request on draining server: code %d body %v, want 503", code, body)
	}
}

// TestSubmitBodyFormats round-trips an edge-list body (the gio format path,
// no server-side generator involved).
func TestSubmitBodyFormats(t *testing.T) {
	_, c := newTestServer(t, Config{})
	edges := "0 1 1.0\n1 2 2.0\n2 3 1.0\n3 0 1.5\n"
	req, err := http.NewRequest("POST", c.base+"/v1/graphs?format=edgelist&wait=true", strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit edgelist: code %d body %v", resp.StatusCode, body)
	}
	if n := body["n"].(float64); n != 4 {
		t.Fatalf("edgelist graph: n=%v, want 4", n)
	}
	id := body["id"].(string)
	code, body, _ := c.do("POST", "/v1/graphs/"+id+"/solve", "", map[string]any{"rhs": 1, "include_x": true})
	if code != http.StatusOK {
		t.Fatalf("solve: code %d body %v", code, body)
	}
	x := body["results"].([]any)[0].(map[string]any)["x"].([]any)
	if len(x) != 4 {
		t.Fatalf("include_x: len %d, want 4", len(x))
	}
}
