package serve

// The HTTP surface. Routes (Go 1.22 method+wildcard patterns):
//
//	POST   /v1/graphs            submit a graph; hierarchy builds async
//	GET    /v1/graphs            list cached handles
//	GET    /v1/graphs/{id}       poll one handle's build status
//	POST   /v1/graphs/{id}/solve solve against the cached hierarchy
//	DELETE /v1/graphs/{id}       evict a handle
//
// plus the PR-5 diagnostics mux (/metrics, /metrics.json, /debug/vars,
// /debug/pprof/*) mounted on the same server. Tenancy is declared with the
// X-Tenant header (absent = "default"); solve requests pass per-tenant
// token-bucket admission before touching an engine.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"hcd"
	"hcd/internal/cli"
	"hcd/internal/faultinject"
	"hcd/internal/gio"
	"hcd/internal/obs"
)

// apiError is the wire form of every non-2xx response.
type apiError struct {
	Error  string `json:"error"`
	Status string `json:"status,omitempty"` // handle status for 409s
}

// submitResponse answers POST /v1/graphs.
type submitResponse struct {
	ID     string       `json:"id"`
	Status HandleStatus `json:"status"`
	N      int          `json:"n"`
	M      int          `json:"m"`
}

// solveRequest is the wire form of POST /v1/graphs/{id}/solve. Right-hand
// sides come either inline (B) or generated server-side (RHS mean-free
// random vectors from Seed) — the latter keeps smoke tests and benchmarks
// free of megabyte request bodies.
type solveRequest struct {
	B    [][]float64 `json:"b,omitempty"`
	RHS  int         `json:"rhs,omitempty"`
	Seed int64       `json:"seed,omitempty"`
	// Method: "pcg" (default), "chebyshev", or "resilient" (the opt-in
	// fallback ladder; builds its own preconditioners, skipping the pool).
	Method         string  `json:"method,omitempty"`
	Tol            float64 `json:"tol,omitempty"`
	MaxIter        int     `json:"max_iter,omitempty"`
	ChebyshevIters int     `json:"chebyshev_iters,omitempty"`
	// IncludeX returns the solution vectors (large!); default is summary only.
	IncludeX bool `json:"include_x,omitempty"`
	// Wait blocks the solve until the hierarchy build finishes instead of
	// failing fast with 409.
	Wait bool `json:"wait,omitempty"`
}

// solveResult is one right-hand side's outcome on the wire.
type solveResult struct {
	Outcome       string    `json:"outcome"`
	Converged     bool      `json:"converged"`
	Iterations    int       `json:"iterations"`
	FinalResidual float64   `json:"final_residual"`
	X             []float64 `json:"x,omitempty"`
	Rung          string    `json:"rung,omitempty"`
	Recovered     bool      `json:"recovered,omitempty"`
}

// solveResponse answers POST /v1/graphs/{id}/solve.
type solveResponse struct {
	GraphID     string        `json:"graph_id"`
	Results     []solveResult `json:"results"`
	Lmin        float64       `json:"lmin,omitempty"`
	Lmax        float64       `json:"lmax,omitempty"`
	CacheHit    bool          `json:"cache_hit"`
	Degraded    bool          `json:"degraded,omitempty"` // served by the CG fallback (breaker open)
	QueueWaitMS int64         `json:"queue_wait_ms"`
	// Batched reports that this request's right-hand sides were coalesced
	// with other requests into one block solve; BatchWidth is the number of
	// requests in the executed batch (1 when the window closed with this
	// request alone; omitted when batching is disabled).
	Batched    bool `json:"batched,omitempty"`
	BatchWidth int  `json:"batch_width,omitempty"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/graphs", s.wrap("submit", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/graphs", s.wrap("list", s.handleList))
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.wrap("status", s.handleStatus))
	s.mux.HandleFunc("POST /v1/graphs/{id}/solve", s.wrap("solve", s.handleSolve))
	s.mux.HandleFunc("DELETE /v1/graphs/{id}", s.wrap("delete", s.handleDelete))
	// Health endpoints sit outside wrap: liveness must answer even while
	// draining, and readiness implements the drain refusal itself (with
	// Retry-After, no Connection: close churn for probes).
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	om := obs.NewMux(s.reg)
	s.mux.Handle("/metrics", om)
	s.mux.Handle("/metrics.json", om)
	s.mux.Handle("/debug/", om)
}

// handleHealthz is pure liveness: the process is up and the mux serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz gates traffic: 503 while draining or before the durable-state
// restore has finished, 200 with a state summary otherwise. A persistence
// setup failure (unusable state dir) is reported in the body but does not
// fail readiness — the server still serves, memory-only.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readyz struct {
		Status      string `json:"status"`
		Handles     int    `json:"handles"`
		Draining    bool   `json:"draining"`
		PersistWarn string `json:"persist_warning,omitempty"`
	}
	body := readyz{Handles: len(s.store.List()), Draining: s.draining.Load()}
	if s.persistErr != nil {
		body.PersistWarn = s.persistErr.Error()
	}
	switch {
	case s.draining.Load():
		body.Status = "draining"
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, body)
	case !s.ready.Load():
		body.Status = "restoring"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		body.Status = "ok"
		writeJSON(w, http.StatusOK, body)
	}
}

// wrap applies the common request plumbing: drain refusal, in-flight
// accounting, observability context, a per-request span, and the
// serve_requests_total / serve_request_seconds series.
func (s *Server) wrap(route string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			counter(s.reg, metricDrainRefused)
			w.Header().Set("Connection", "close")
			w.Header().Set("Retry-After", "5")
			writeErr(w, http.StatusServiceUnavailable, "server draining")
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()
		gaugeAdd(s.reg, metricInflight, 1)
		defer gaugeAdd(s.reg, metricInflight, -1)

		ctx := r.Context()
		// Deadline budget: ?timeout_ms= opts in, Config.MaxTimeout caps it
		// (and applies on its own when set). Expiry surfaces as 504 via
		// timeoutCode; a client disconnect stays 408.
		if budget := requestBudget(r, s.cfg.MaxTimeout); budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, budget)
			defer cancel()
		}
		if s.tr != nil {
			ctx = obs.WithTracer(ctx, s.tr)
		}
		if s.reg != nil {
			ctx = obs.WithRegistry(ctx, s.reg)
		}
		ctx, sp := obs.StartSpan(ctx, "serve/"+route)
		defer sp.End()
		sp.Arg("method", r.Method)
		sp.Arg("path", r.URL.Path)
		sp.Arg("tenant", tenant(r))

		// Access logging: install the status recorder and the handler
		// annotation record only when a logger exists, so the disabled path
		// stays allocation-free.
		var lf *logFields
		out := w
		if s.log != nil {
			lf = &logFields{}
			ctx = context.WithValue(ctx, logFieldsKey{}, lf)
			rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
			out = rec
			defer func(start time.Time) {
				s.logRequest(ctx, route, r, rec.code, time.Since(start), lf)
			}(time.Now())
		}

		counter(s.reg, metricRequests+`{route="`+route+`"}`)
		start := time.Now()
		fn(out, r.WithContext(ctx))
		observe(s.reg, metricRequestTime+`{route="`+route+`"}`, time.Since(start))
	}
}

func tenant(r *http.Request) string {
	return safeLabel(r.Header.Get("X-Tenant"))
}

// requestBudget resolves the effective deadline for one request: the
// ?timeout_ms= query value clamped to the server cap, the cap alone when the
// client asks for nothing, zero (no deadline) when neither is set.
func requestBudget(r *http.Request, cap time.Duration) time.Duration {
	var want time.Duration
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			want = time.Duration(ms) * time.Millisecond
		}
	}
	switch {
	case want <= 0:
		return cap
	case cap > 0 && want > cap:
		return cap
	default:
		return want
	}
}

// timeoutCode maps a context-shaped interruption to its HTTP status: the
// server's own deadline expiring is 504 Gateway Timeout (the budget ran
// out), anything else — in practice the client hanging up — is 408.
func (s *Server) timeoutCode(ctx context.Context, err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		counter(s.reg, metricDeadlineExceeded)
		return http.StatusGatewayTimeout
	}
	return http.StatusRequestTimeout
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func allConverged(results []hcd.SolveResult) bool {
	for _, r := range results {
		if !r.Converged {
			return false
		}
	}
	return true
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit ingests a graph and starts its hierarchy build. The graph
// arrives either in the request body (?format=edgelist|mm, the gio formats)
// or generated server-side from a workload spec (?spec=grid3d:12 — the CLI
// generator grammar). ?sizecap=, ?seed= and ?shards= tune the
// hierarchy build (shards=1 forces single-pass, disabling auto-sharding);
// ?wait=true blocks until the build finishes.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var g *hcd.Graph
	var err error
	if spec := q.Get("spec"); spec != "" {
		seed := int64(1)
		if v := q.Get("seed"); v != "" {
			seed, _ = strconv.ParseInt(v, 10, 64)
		}
		g, err = cli.BuildGraph(spec, seed)
	} else {
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		g, err = gio.Read(body, q.Get("format"))
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}

	var hopt *hcd.HierarchyOptions
	if q.Has("sizecap") || q.Has("seed") || q.Has("shards") {
		o := s.cfg.Hierarchy
		if v, perr := strconv.Atoi(q.Get("sizecap")); perr == nil && v >= 2 {
			o.SizeCap = v
		}
		if v, perr := strconv.ParseInt(q.Get("seed"), 10, 64); perr == nil && v != 0 {
			o.Seed = v
		}
		// ?shards=1 forces a single-pass build (disabling auto-sharding);
		// larger values shard explicitly.
		if v, perr := strconv.Atoi(q.Get("shards")); perr == nil && v >= 1 {
			o.Shards = v
		}
		hopt = &o
	}

	h, err := s.store.Put(g, hopt)
	if err != nil {
		code := http.StatusInsufficientStorage
		if !errors.Is(err, ErrNoCapacity) {
			code = http.StatusInternalServerError
		}
		writeErr(w, code, "%v", err)
		return
	}
	logFieldsFrom(r.Context()).setHandle(h.id)
	if q.Get("wait") == "true" {
		select {
		case <-s.store.readyChan(h):
		case <-r.Context().Done():
			writeErr(w, s.timeoutCode(r.Context(), nil), "wait cancelled: %v", r.Context().Err())
			return
		}
	}
	info, err := s.store.Info(h.id)
	if err != nil {
		// Evicted between Put and Info — only possible under a byte budget
		// so tight the build itself overflowed it.
		writeErr(w, http.StatusInsufficientStorage, "handle evicted during build")
		return
	}
	writeJSON(w, http.StatusCreated, submitResponse{ID: h.id, Status: info.Status, N: g.N(), M: g.M()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	info, err := s.store.Info(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSolve runs one solve request against a cached hierarchy: admission
// first (429 + Retry-After on overload), then handle resolution (409 while
// building unless wait), then an engine checkout from the warm pool, then
// hcd.Do — the same implementation the CLI uses.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	id := r.PathValue("id")
	ten := tenant(r)
	logFieldsFrom(ctx).setHandle(id)

	var req solveRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad solve request: %v", err)
		return
	}
	nrhs := len(req.B)
	if nrhs == 0 {
		nrhs = req.RHS
		if nrhs <= 0 {
			nrhs = 1
		}
	}

	// Admission: one token per right-hand side.
	waited, err := s.adm.Acquire(ctx, ten, float64(nrhs))
	var over *OverloadError
	if errors.As(err, &over) {
		counter(s.reg, metricThrottled+`{tenant="`+ten+`"}`)
		logFieldsFrom(ctx).setOutcome("throttled")
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(over.RetryAfter.Seconds()))))
		writeErr(w, http.StatusTooManyRequests, "%v", over)
		return
	}
	if err != nil {
		writeErr(w, s.timeoutCode(ctx, err), "admission wait cancelled: %v", err)
		return
	}
	counter(s.reg, metricAdmitted+`{tenant="`+ten+`"}`)
	observe(s.reg, metricQueueWait, waited)

	h, release, err := s.store.Get(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	defer release()

	// A handle restored from a snapshot is ready but empty until its first
	// use: hydrate it now. Hydration may flip the handle to building (graph
	// recovered, hierarchy data corrupt) or failed (nothing recovered) —
	// the state machine below handles both like any other handle.
	if err := s.store.ensureHydrated(ctx, h); err != nil {
		writeErr(w, s.timeoutCode(ctx, err), "hydration wait cancelled: %v", err)
		return
	}

	status, g, hier, pool, buildErr := s.store.solveState(h)
	cacheHit := status == StatusReady
	if status == StatusBuilding {
		if !req.Wait {
			counter(s.reg, metricCacheMisses)
			writeJSON(w, http.StatusConflict, apiError{
				Error: ErrBuilding.Error(), Status: string(StatusBuilding),
			})
			return
		}
		counter(s.reg, metricCacheMisses)
		select {
		case <-s.store.readyChan(h):
		case <-ctx.Done():
			writeErr(w, s.timeoutCode(ctx, nil), "build wait cancelled: %v", ctx.Err())
			return
		}
		status, g, hier, pool, buildErr = s.store.solveState(h)
	}
	if status == StatusFailed {
		// One background retry per failed solve attempt; the client gets
		// the error now and better luck on a later request.
		s.store.retryBuild(h)
		writeErr(w, http.StatusUnprocessableEntity, "hierarchy build failed: %v", buildErr)
		return
	}
	degraded := status == StatusDegraded
	if degraded {
		counter(s.reg, metricDegradedSolves)
	}
	if cacheHit {
		counter(s.reg, metricCacheHits)
	}

	b := req.B
	if len(b) == 0 {
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		b = make([][]float64, nrhs)
		for i := range b {
			b[i] = cli.MeanFreeRHS(g.N(), seed+int64(i))
		}
	}

	opt := hcd.DefaultSolveOptions()
	if req.Tol > 0 {
		opt.Tol = req.Tol
	}
	if req.MaxIter > 0 {
		opt.MaxIter = req.MaxIter
	}
	// Micro-batching covers the default PCG method on ready handles only:
	// the degraded rung and the explicit methods keep their dedicated paths.
	batched := s.batch != nil && !degraded && (req.Method == "" || req.Method == "pcg")
	doReq := hcd.SolveRequest{B: b, Options: opt, M: hier}
	switch {
	case degraded:
		// Breaker open: there is no hierarchy to precondition with. Serve
		// the request anyway — unpreconditioned CG on the raw graph, the
		// resilient ladder's final rung — rather than erroring. Slower,
		// never wrong: CG without a preconditioner is still exact.
		doReq.Method = hcd.SolveMethodPCG
		doReq.M = nil
		doReq.Precond = hcd.PrecondSpec{Kind: hcd.PrecondNone}
	case req.Method == "" || req.Method == "pcg":
		doReq.Method = hcd.SolveMethodPCG
		if !batched {
			eng, perr := pool.acquire(ctx)
			if perr != nil {
				writeErr(w, s.timeoutCode(ctx, perr), "engine wait cancelled: %v", perr)
				return
			}
			defer pool.release(eng)
			doReq.Engine = eng
		}
	case req.Method == "chebyshev":
		doReq.Method = hcd.SolveMethodChebyshev
		iters := req.ChebyshevIters
		if iters <= 0 {
			iters = 120
		}
		copt := hcd.DefaultChebyshevOptions(iters)
		copt.Tol = opt.Tol
		doReq.Chebyshev = copt
	case req.Method == "resilient":
		doReq.Method = hcd.SolveMethodResilient
		ropt := hcd.DefaultResilienceOptions()
		ropt.Solve = opt
		doReq.Resilience = ropt
		doReq.M = nil // the ladder builds its own rungs
	default:
		writeErr(w, http.StatusBadRequest, "unknown method %q", req.Method)
		return
	}

	if faultinject.Enabled() {
		faultinject.Fire(faultinject.SolveDelay) // chaos latency injection point
	}
	if cerr := ctx.Err(); cerr != nil {
		writeErr(w, s.timeoutCode(ctx, cerr), "request expired before solve: %v", cerr)
		return
	}

	start := time.Now()
	var resp *hcd.SolveResponse
	var batchWidth int
	if batched {
		resp, batchWidth, err = s.batchedSolve(ctx, id, g, hier, pool, b, opt)
	} else {
		resp, err = hcd.Do(ctx, g, doReq)
	}
	observe(s.reg, metricSolveTime, time.Since(start))
	s.store.CountSolve(h)
	totalIters := 0
	aggOutcome := ""
	for _, res := range resp.Results {
		counter(s.reg, metricSolves+`{outcome="`+res.Outcome.String()+`"}`)
		totalIters += res.Iterations
		if !res.Converged && aggOutcome == "" {
			aggOutcome = res.Outcome.String()
		}
	}
	if aggOutcome == "" {
		aggOutcome = "converged"
	}
	logFieldsFrom(ctx).setSolve(aggOutcome, len(b), totalIters, degraded, batchWidth, waited.Milliseconds())
	if err != nil && len(resp.Results) == 0 {
		code := http.StatusInternalServerError
		if ctx.Err() != nil {
			code = s.timeoutCode(ctx, err)
		}
		writeErr(w, code, "solve failed: %v", err)
		return
	}
	// Do reports an expired context as OutcomeCancelled with a nil error; a
	// request whose deadline budget ran out mid-solve must still surface as
	// 504 (or 408 on client disconnect), not as 200 with cancelled results.
	if cerr := ctx.Err(); cerr != nil && !allConverged(resp.Results) {
		writeErr(w, s.timeoutCode(ctx, cerr), "deadline expired mid-solve: %v", cerr)
		return
	}

	out := solveResponse{
		GraphID:     id,
		CacheHit:    cacheHit,
		Degraded:    degraded,
		QueueWaitMS: waited.Milliseconds(),
		Lmin:        resp.Lmin,
		Lmax:        resp.Lmax,
		Batched:     batchWidth > 1,
		BatchWidth:  batchWidth,
	}
	for i, res := range resp.Results {
		sr := solveResult{
			Outcome:       res.Outcome.String(),
			Converged:     res.Converged,
			Iterations:    res.Iterations,
			FinalResidual: res.Metrics.FinalResidual,
		}
		if req.IncludeX {
			sr.X = res.X
		}
		if i < len(resp.Resilience) {
			sr.Rung = resp.Resilience[i].Rung
			sr.Recovered = resp.Resilience[i].Recovered
		}
		if degraded {
			sr.Rung = hcd.RungCG
		}
		out.Results = append(out.Results, sr)
	}
	if err != nil {
		// Partial failure: report what completed plus the error.
		code := http.StatusInternalServerError
		if ctx.Err() != nil {
			code = s.timeoutCode(ctx, err)
		}
		writeJSON(w, code, struct {
			solveResponse
			Error string `json:"error"`
		}{out, err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, out)
}
