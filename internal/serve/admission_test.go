package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBurstThenOverload: with no refill and no queue, exactly Burst tokens
// are admitted and the next request is refused with a Retry-After estimate.
func TestBurstThenOverload(t *testing.T) {
	a := newAdmission(AdmissionConfig{Rate: 1e-9, Burst: 2, MaxQueue: 0})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := a.Acquire(ctx, "t", 1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	_, err := a.Acquire(ctx, "t", 1)
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("want OverloadError, got %v", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("OverloadError does not unwrap to ErrOverloaded")
	}
	if over.Tenant != "t" || over.RetryAfter < time.Second {
		t.Fatalf("bad overload detail: %+v", over)
	}
}

// TestTenantIsolation: one tenant draining its bucket leaves another
// tenant's bucket full.
func TestTenantIsolation(t *testing.T) {
	a := newAdmission(AdmissionConfig{Rate: 1e-9, Burst: 1, MaxQueue: 0})
	ctx := context.Background()
	if _, err := a.Acquire(ctx, "noisy", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(ctx, "noisy", 1); err == nil {
		t.Fatal("noisy tenant not throttled")
	}
	if _, err := a.Acquire(ctx, "quiet", 1); err != nil {
		t.Fatalf("quiet tenant throttled by noisy: %v", err)
	}
}

// TestOversizeRequestRefused: a request larger than the burst can never be
// served and must be refused immediately rather than queued forever.
func TestOversizeRequestRefused(t *testing.T) {
	a := newAdmission(AdmissionConfig{Rate: 10, Burst: 4, MaxQueue: 8})
	var over *OverloadError
	if _, err := a.Acquire(context.Background(), "t", 100); !errors.As(err, &over) {
		t.Fatalf("want OverloadError for oversize request, got %v", err)
	}
}

// grantOrder drains the bucket, queues three waiters with distinct costs in
// a fixed arrival order, and reports the order they were granted in.
func grantOrder(t *testing.T, policy QueuePolicy) []float64 {
	t.Helper()
	// Rate 50/s: the head grant needs tens of milliseconds, long enough to
	// enqueue all three waiters first.
	a := newAdmission(AdmissionConfig{Rate: 50, Burst: 3, MaxQueue: 8, Policy: policy})
	var mu sync.Mutex
	var order []float64
	a.onGrant = func(cost float64) {
		mu.Lock()
		order = append(order, cost)
		mu.Unlock()
	}
	ctx := context.Background()
	if _, err := a.Acquire(ctx, "t", 3); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, cost := range []float64{3, 1, 2} {
		wg.Add(1)
		go func(cost float64) {
			defer wg.Done()
			if _, err := a.Acquire(ctx, "t", cost); err != nil {
				t.Errorf("cost %v: %v", cost, err)
			}
		}(cost)
		// Sequence arrivals: the head grant needs ≥ 60 ms of refill, far
		// longer than this enqueue loop, so depth growing to i+1 means
		// this waiter queued in arrival order.
		deadline := time.Now().Add(2 * time.Second)
		for a.QueueDepth("t") < i+1 {
			if time.Now().After(deadline) {
				t.Fatal("waiter never queued")
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	return order
}

func TestFCFSOrder(t *testing.T) {
	order := grantOrder(t, FCFS)
	want := []float64{3, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FCFS grant order %v, want %v", order, want)
		}
	}
}

func TestSJFOrder(t *testing.T) {
	order := grantOrder(t, SJF)
	want := []float64{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SJF grant order %v, want %v", order, want)
		}
	}
}

// TestCancelWhileQueued: a queued waiter whose context dies leaves the
// queue and reports the context error; the bucket spends nothing on it.
func TestCancelWhileQueued(t *testing.T) {
	a := newAdmission(AdmissionConfig{Rate: 1e-9, Burst: 1, MaxQueue: 4})
	if _, err := a.Acquire(context.Background(), "t", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, "t", 1)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.QueueDepth("t") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	if d := a.QueueDepth("t"); d != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", d)
	}
}

// TestRefillGrantsQueued: with a real refill rate, a queued waiter is
// eventually granted without external help.
func TestRefillGrantsQueued(t *testing.T) {
	a := newAdmission(AdmissionConfig{Rate: 200, Burst: 1, MaxQueue: 4})
	ctx := context.Background()
	if _, err := a.Acquire(ctx, "t", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	waited, err := a.Acquire(ctx, "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if waited <= 0 || time.Since(start) == 0 {
		t.Fatalf("expected a measurable queue wait, got %v", waited)
	}
}
