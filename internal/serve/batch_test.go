package serve

import (
	"context"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hcd"
	"hcd/internal/cli"
	"hcd/internal/obs"
)

// echoExec is a batch executor that returns each column as its own solution,
// so tests can verify every waiter gets exactly its own slice back.
func echoExec(execs *atomic.Int32) batchExec {
	return func(_ context.Context, cols [][]float64) ([]hcd.SolveResult, error) {
		execs.Add(1)
		out := make([]hcd.SolveResult, len(cols))
		for i, c := range cols {
			out[i] = hcd.SolveResult{X: c, Converged: true}
		}
		return out, nil
	}
}

// TestBatcherCoalescesAndSlices: concurrent multi-column submissions under
// one key coalesce into few executions, and each waiter receives exactly its
// own columns back — no cross-request mixing (run under -race).
func TestBatcherCoalescesAndSlices(t *testing.T) {
	reg := obs.NewRegistry()
	bt := newBatcher(50*time.Millisecond, 64, reg)
	var execs atomic.Int32
	exec := echoExec(&execs)
	key := batchKey{handle: "h", tol: 1e-8, maxIter: 100}

	const goroutines = 6
	type outcome struct {
		results []hcd.SolveResult
		width   int
		err     error
	}
	got := make([]outcome, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cols := [][]float64{{float64(i)}, {float64(i) + 0.5}}
			r, w, err := bt.solve(context.Background(), key, cols, exec)
			got[i] = outcome{r, w, err}
		}(i)
	}
	wg.Wait()

	for i, o := range got {
		if o.err != nil {
			t.Fatalf("goroutine %d: %v", i, o.err)
		}
		if len(o.results) != 2 {
			t.Fatalf("goroutine %d: %d results, want 2", i, len(o.results))
		}
		if o.results[0].X[0] != float64(i) || o.results[1].X[0] != float64(i)+0.5 {
			t.Errorf("goroutine %d received another request's columns: %v, %v",
				i, o.results[0].X, o.results[1].X)
		}
		if o.width < 1 || o.width > goroutines {
			t.Errorf("goroutine %d: batch width %d out of range", i, o.width)
		}
	}
	if n := execs.Load(); int(n) >= goroutines {
		t.Errorf("no coalescing: %d executions for %d requests", n, goroutines)
	}
}

// TestBatcherWidthCapFiresEarly: filling the column cap seals and runs the
// batch immediately instead of waiting out the window.
func TestBatcherWidthCapFiresEarly(t *testing.T) {
	bt := newBatcher(time.Hour, 2, nil)
	var execs atomic.Int32
	start := time.Now()
	r, width, err := bt.solve(context.Background(),
		batchKey{handle: "h"}, [][]float64{{1}, {2}}, echoExec(&execs))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("full batch waited %v, want immediate fire", elapsed)
	}
	if width != 1 || len(r) != 2 {
		t.Fatalf("width %d results %d, want 1 and 2", width, len(r))
	}
}

// TestBatcherWaiterCancellation: a waiter whose context dies stops waiting
// with ctx.Err() while the batch is left to serve everyone else.
func TestBatcherWaiterCancellation(t *testing.T) {
	bt := newBatcher(time.Hour, 64, nil)
	var execs atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := bt.solve(ctx, batchKey{handle: "h"}, [][]float64{{1}}, echoExec(&execs))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
}

// TestServerBatchedSolves: concurrent solve requests against one ready
// handle coalesce into a block solve — responses report batched/batch_width,
// the serve_batched_solves_total counter advances, and every request's
// solution still solves its own right-hand side (run under -race).
func TestServerBatchedSolves(t *testing.T) {
	srv, c := newTestServer(t, Config{
		BatchWindow:   250 * time.Millisecond,
		BatchMaxWidth: 32,
		PoolSize:      1,
	})
	code, body, _ := c.do("POST", "/v1/graphs?spec=grid3d:8&wait=true", "", nil)
	if code != http.StatusCreated {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id := body["id"].(string)

	const requests = 4
	type out struct {
		code int
		body map[string]any
	}
	outs := make([]out, requests)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			code, body, _ := c.do("POST", "/v1/graphs/"+id+"/solve", "",
				map[string]any{"rhs": 1, "seed": i + 1, "include_x": true})
			outs[i] = out{code, body}
		}(i)
	}
	close(start)
	wg.Wait()

	h, release, err := srv.store.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	_, g, _, _, _ := srv.store.solveState(h)
	release()

	batchedResponses := 0
	for i, o := range outs {
		if o.code != http.StatusOK {
			t.Fatalf("request %d: code %d body %v", i, o.code, o.body)
		}
		results := o.body["results"].([]any)
		if len(results) != 1 {
			t.Fatalf("request %d: %d results, want 1", i, len(results))
		}
		res := results[0].(map[string]any)
		if res["converged"] != true {
			t.Fatalf("request %d did not converge: %v", i, res)
		}
		if o.body["batched"] == true {
			batchedResponses++
		}
		// The returned solution must solve THIS request's right-hand side:
		// a batch mis-slice would hand back a converged solution for a
		// different seed.
		xs := res["x"].([]any)
		x := make([]float64, len(xs))
		for j, v := range xs {
			x[j] = v.(float64)
		}
		b := cli.MeanFreeRHS(g.N(), int64(i+1))
		lx := make([]float64, g.N())
		g.LapMul(lx, x)
		var rn, bn float64
		for v := range lx {
			rn += (lx[v] - b[v]) * (lx[v] - b[v])
			bn += b[v] * b[v]
		}
		if rel := math.Sqrt(rn / bn); rel > 1e-6 {
			t.Errorf("request %d: relative residual %v against its own rhs", i, rel)
		}
	}
	if batchedResponses == 0 {
		t.Fatal("no response was served from a coalesced batch")
	}
	if v := srv.Registry().Counter(metricBatchedSolves).Value(); v < 2 {
		t.Errorf("serve_batched_solves_total = %d, want >= 2", v)
	}
	if n := srv.Registry().Histogram(metricBatchWidth, batchWidthBuckets).Count(); n < 1 {
		t.Errorf("no batch width observations recorded")
	}
}
