package serve

// The graph-handle store: submitted graphs and their multilevel hierarchies,
// cached across requests. A handle is born "building" — the hierarchy
// construction runs in a background goroutine under a "serve/build" span —
// and flips to "ready" (or "failed") when it completes. Ready handles carry a
// warm engine pool. The store holds an LRU list under a byte budget
// (graph + hierarchy memory, via Graph.Bytes and Hierarchy.MemoryBytes);
// inserting past either the handle cap or the byte budget evicts the
// least-recently-used idle handle. Handles with in-flight solves (refs > 0)
// and handles still building are never evicted.

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hcd"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// ErrNoCapacity: the submitted graph cannot fit the byte budget even after
// evicting every idle handle.
var ErrNoCapacity = errors.New("serve: graph store over capacity")

// ErrNotFound: no handle with the requested id.
var ErrNotFound = errors.New("serve: graph not found")

// ErrBuilding: the handle's hierarchy build has not finished.
var ErrBuilding = errors.New("serve: hierarchy still building")

// HandleStatus is a handle's lifecycle state.
type HandleStatus string

const (
	StatusBuilding HandleStatus = "building"
	StatusReady    HandleStatus = "ready"
	StatusFailed   HandleStatus = "failed"
)

// handle is one cached graph plus its hierarchy and engine pool. Fields
// under "guarded by store.mu" must only be touched with the store lock held;
// the build goroutine publishes its result through the store's lock and the
// ready channel.
type handle struct {
	id string
	g  *hcd.Graph

	ready chan struct{} // closed when the build finishes (either way)

	// Guarded by store.mu.
	status   HandleStatus
	h        *hcd.Hierarchy
	buildErr error
	bytes    int64 // graph + hierarchy memory charged to the budget
	refs     int
	solves   int64
	lastUse  time.Time
	elem     *list.Element
	pool     *enginePool
	cancel   context.CancelFunc // stops an in-flight build on delete
	buildDur time.Duration
}

// HandleInfo is the externally visible snapshot of a handle.
type HandleInfo struct {
	ID        string       `json:"id"`
	Status    HandleStatus `json:"status"`
	Error     string       `json:"error,omitempty"`
	N         int          `json:"n"`
	M         int          `json:"m"`
	Bytes     int64        `json:"bytes"`
	Levels    []int        `json:"levels,omitempty"`
	Solves    int64        `json:"solves"`
	BuildMS   int64        `json:"build_ms,omitempty"`
	InFlight  int          `json:"in_flight"`
	LastUseMS int64        `json:"idle_ms"`
}

type store struct {
	maxHandles int
	maxBytes   int64
	poolSize   int
	hopt       hcd.HierarchyOptions
	autoShard  int // auto-shard threshold in vertices; ≤ 0 disables
	reg        *obs.Registry
	tr         *obs.Tracer
	gauges     *engineGauges
	now        func() time.Time

	mu     sync.Mutex
	byID   map[string]*handle
	lru    *list.List // front = most recently used; values are *handle
	bytes  int64
	nextID int64
}

func newStore(maxHandles int, maxBytes int64, poolSize int, hopt hcd.HierarchyOptions, reg *obs.Registry, tr *obs.Tracer) *store {
	return &store{
		maxHandles: maxHandles,
		maxBytes:   maxBytes,
		poolSize:   poolSize,
		hopt:       hopt,
		reg:        reg,
		tr:         tr,
		gauges:     &engineGauges{reg: reg},
		now:        time.Now,
		byID:       make(map[string]*handle),
		lru:        list.New(),
	}
}

// Put registers a graph, kicks off its hierarchy build in the background,
// and returns the new handle. hopt overrides the store default when non-nil.
func (s *store) Put(g *hcd.Graph, hopt *hcd.HierarchyOptions) (*handle, error) {
	opts := s.hopt
	if hopt != nil {
		opts = *hopt
	}
	// Large submissions shard automatically unless the caller chose a shard
	// count (including an explicit 1 via ?shards=1 to force single-pass —
	// that arrives as Shards=1, not 0).
	if opts.Shards == 0 && s.autoShard > 0 && g.N() >= s.autoShard {
		opts.Shards = par.Workers()
	}
	gb := g.Bytes()
	s.mu.Lock()
	if gb > s.maxBytes {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: graph needs %d bytes, budget is %d: %w", gb, s.maxBytes, ErrNoCapacity)
	}
	if err := s.evictLocked(gb, 1); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.nextID++
	buildCtx, cancel := context.WithCancel(context.Background())
	if s.tr != nil {
		buildCtx = obs.WithTracer(buildCtx, s.tr)
	}
	if s.reg != nil {
		buildCtx = obs.WithRegistry(buildCtx, s.reg)
	}
	h := &handle{
		id:      fmt.Sprintf("g-%d", s.nextID),
		g:       g,
		ready:   make(chan struct{}),
		status:  StatusBuilding,
		bytes:   gb,
		lastUse: s.now(),
		cancel:  cancel,
	}
	h.elem = s.lru.PushFront(h)
	s.byID[h.id] = h
	s.bytes += gb
	s.publishLocked()
	s.mu.Unlock()

	go s.build(buildCtx, h, opts)
	return h, nil
}

// build constructs the hierarchy and publishes the result. It runs outside
// any request: a submitted graph keeps building after its submit request
// returns, and the span parents at the trace root.
func (s *store) build(ctx context.Context, h *handle, opts hcd.HierarchyOptions) {
	ctx, sp := obs.StartSpan(ctx, "serve/build")
	sp.Arg("graph", h.id)
	sp.Arg("n", h.g.N())
	sp.Arg("m", h.g.M())
	start := s.now()
	hier, err := hcd.NewHierarchyCtx(ctx, h.g, opts)
	dur := s.now().Sub(start)
	sp.End()
	observe(s.reg, metricBuildTime, dur)

	s.mu.Lock()
	h.buildDur = dur
	if err != nil {
		h.status = StatusFailed
		h.buildErr = err
		counter(s.reg, metricBuilds+`{outcome="error"}`)
	} else {
		h.status = StatusReady
		h.h = hier
		h.pool = newEnginePool(h.g, hier, s.poolSize, s.gauges)
		hb := hier.MemoryBytes()
		h.bytes += hb
		s.bytes += hb
		counter(s.reg, metricBuilds+`{outcome="ok"}`)
		// The finished hierarchy may push the store past its byte budget;
		// rebalance against idle handles. Pin this handle while evicting so
		// it cannot free itself mid-publish.
		h.refs++
		_ = s.evictLocked(0, 0)
		h.refs--
	}
	s.publishLocked()
	s.mu.Unlock()
	close(h.ready)
}

// evictLocked frees room for `need` extra bytes and `extra` extra handles,
// dropping idle ready/failed handles from the LRU tail. The most recently
// used handle is never evicted, so a just-submitted graph cannot be killed
// by its own arrival.
func (s *store) evictLocked(need int64, extra int) error {
	for s.lru.Len()+extra > s.maxHandles || s.bytes+need > s.maxBytes {
		var victim *handle
		for e := s.lru.Back(); e != nil && e != s.lru.Front(); e = e.Prev() {
			h := e.Value.(*handle)
			if h.refs == 0 && h.status != StatusBuilding {
				victim = h
				break
			}
		}
		if victim == nil {
			if s.bytes+need > s.maxBytes {
				return fmt.Errorf("serve: need %d bytes over %d in use (budget %d), nothing evictable: %w",
					need, s.bytes, s.maxBytes, ErrNoCapacity)
			}
			return nil // over handle cap but nothing evictable; tolerate
		}
		s.removeLocked(victim)
		counter(s.reg, metricEvictions)
	}
	return nil
}

// removeLocked unlinks a handle and returns its bytes to the budget.
func (s *store) removeLocked(h *handle) {
	if h.elem != nil {
		s.lru.Remove(h.elem)
		h.elem = nil
	}
	delete(s.byID, h.id)
	s.bytes -= h.bytes
	if h.pool != nil {
		h.pool.drop()
	}
	h.cancel()
}

// Get returns the handle and a release func that must be called when the
// request is done with it. The handle may still be building — callers decide
// whether to wait on h.ready or fail fast.
func (s *store) Get(id string) (*handle, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.byID[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	h.refs++
	h.lastUse = s.now()
	s.lru.MoveToFront(h.elem)
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.mu.Lock()
			h.refs--
			h.lastUse = s.now()
			s.mu.Unlock()
		})
	}
	return h, release, nil
}

// Delete evicts a handle explicitly. In-flight solves holding the handle
// finish normally — the memory is reclaimed when they drop their references.
func (s *store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.byID[id]
	if !ok {
		return ErrNotFound
	}
	s.removeLocked(h)
	s.publishLocked()
	return nil
}

// List snapshots every handle, most recently used first.
func (s *store) List() []HandleInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]HandleInfo, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		infos = append(infos, s.infoLocked(e.Value.(*handle)))
	}
	return infos
}

// Info snapshots one handle.
func (s *store) Info(id string) (HandleInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.byID[id]
	if !ok {
		return HandleInfo{}, ErrNotFound
	}
	return s.infoLocked(h), nil
}

func (s *store) infoLocked(h *handle) HandleInfo {
	info := HandleInfo{
		ID:        h.id,
		Status:    h.status,
		N:         h.g.N(),
		M:         h.g.M(),
		Bytes:     h.bytes,
		Solves:    h.solves,
		BuildMS:   h.buildDur.Milliseconds(),
		InFlight:  h.refs,
		LastUseMS: s.now().Sub(h.lastUse).Milliseconds(),
	}
	if h.buildErr != nil {
		info.Error = h.buildErr.Error()
	}
	if h.h != nil {
		info.Levels = h.h.LevelSizes()
	}
	return info
}

// CountSolve bumps a handle's solve counter.
func (s *store) CountSolve(h *handle) {
	s.mu.Lock()
	h.solves++
	s.mu.Unlock()
}

// Snapshot of a handle's solve-facing state: status, hierarchy, pool, error.
func (s *store) solveState(h *handle) (HandleStatus, *hcd.Hierarchy, *enginePool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.status, h.h, h.pool, h.buildErr
}

func (s *store) publishLocked() {
	gaugeSet(s.reg, metricHandles, float64(s.lru.Len()))
	gaugeSet(s.reg, metricHandleBytes, float64(s.bytes))
}
