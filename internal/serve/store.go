package serve

// The graph-handle store: submitted graphs and their multilevel hierarchies,
// cached across requests. A handle is born "building" — the hierarchy
// construction runs in a background goroutine under a "serve/build" span —
// and flips to "ready" (or "failed") when it completes. Ready handles carry a
// warm engine pool. The store holds an LRU list under a byte budget
// (graph + hierarchy memory, via Graph.Bytes and Hierarchy.MemoryBytes);
// inserting past either the handle cap or the byte budget evicts the
// least-recently-used idle handle. Handles with in-flight solves (refs > 0)
// and handles still building are never evicted.

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hcd"
	"hcd/internal/faultinject"
	"hcd/internal/obs"
	"hcd/internal/par"
)

// ErrNoCapacity: the submitted graph cannot fit the byte budget even after
// evicting every idle handle.
var ErrNoCapacity = errors.New("serve: graph store over capacity")

// ErrNotFound: no handle with the requested id.
var ErrNotFound = errors.New("serve: graph not found")

// ErrBuilding: the handle's hierarchy build has not finished.
var ErrBuilding = errors.New("serve: hierarchy still building")

// HandleStatus is a handle's lifecycle state.
type HandleStatus string

const (
	StatusBuilding HandleStatus = "building"
	StatusReady    HandleStatus = "ready"
	StatusFailed   HandleStatus = "failed"
	// StatusDegraded: the handle's circuit breaker is open — enough
	// consecutive build failures that the store stops retrying. Solves
	// against a degraded handle fall through to unpreconditioned CG on the
	// raw graph instead of failing, trading iterations for availability.
	StatusDegraded HandleStatus = "degraded"
)

// handle is one cached graph plus its hierarchy and engine pool. Fields
// under "guarded by store.mu" must only be touched with the store lock held;
// the build goroutine publishes its result through the store's lock and the
// ready channel.
type handle struct {
	id string

	// Guarded by store.mu.
	g        *hcd.Graph    // nil while restored-but-unhydrated
	ready    chan struct{} // closed when the current build attempt finishes; replaced per attempt
	status   HandleStatus
	h        *hcd.Hierarchy
	buildErr error
	bytes    int64 // graph + hierarchy memory charged to the budget
	refs     int
	solves   int64
	lastUse  time.Time
	elem     *list.Element
	pool     *enginePool
	cancel   context.CancelFunc // stops an in-flight build on delete
	buildDur time.Duration
	hopt     hcd.HierarchyOptions // the options this handle builds with (persisted for rebuilds)
	failures int                  // consecutive build failures (breaker input)

	// Durable-state fields (see persist.go).
	restored  bool          // manifest-registered, snapshot not yet read
	snapFile  string        // snapshot file name in the state dir, "" if none
	n, m      int           // graph dims while g == nil
	estBytes  int64         // manifest byte estimate, for display while unhydrated
	hydrating chan struct{} // non-nil while one goroutine loads the snapshot
}

// dimN/dimM report graph dimensions whether or not the handle is hydrated.
// Callers hold store.mu.
func (h *handle) dimN() int {
	if h.g != nil {
		return h.g.N()
	}
	return h.n
}

func (h *handle) dimM() int {
	if h.g != nil {
		return h.g.M()
	}
	return h.m
}

// persistBytesLocked is the byte figure recorded in the manifest: the real
// charge once hydrated/built, the inherited estimate before that.
func (h *handle) persistBytesLocked() int64 {
	if h.bytes > 0 {
		return h.bytes
	}
	return h.estBytes
}

// HandleInfo is the externally visible snapshot of a handle.
type HandleInfo struct {
	ID        string       `json:"id"`
	Status    HandleStatus `json:"status"`
	Error     string       `json:"error,omitempty"`
	N         int          `json:"n"`
	M         int          `json:"m"`
	Bytes     int64        `json:"bytes"`
	Levels    []int        `json:"levels,omitempty"`
	Solves    int64        `json:"solves"`
	Restored  bool         `json:"restored,omitempty"` // ready from a snapshot, not yet hydrated
	BuildMS   int64        `json:"build_ms,omitempty"`
	InFlight  int          `json:"in_flight"`
	LastUseMS int64        `json:"idle_ms"`
}

type store struct {
	maxHandles int
	maxBytes   int64
	poolSize   int
	hopt       hcd.HierarchyOptions
	autoShard  int // auto-shard threshold in vertices; ≤ 0 disables
	reg        *obs.Registry
	tr         *obs.Tracer
	gauges     *engineGauges
	now        func() time.Time
	pst        *persister // nil = memory-only (no -state-dir)
	breaker    int        // consecutive build failures before degrading; ≤ 0 disables

	mu     sync.Mutex
	byID   map[string]*handle
	lru    *list.List // front = most recently used; values are *handle
	bytes  int64
	nextID int64
}

func newStore(maxHandles int, maxBytes int64, poolSize int, hopt hcd.HierarchyOptions, reg *obs.Registry, tr *obs.Tracer) *store {
	return &store{
		maxHandles: maxHandles,
		maxBytes:   maxBytes,
		poolSize:   poolSize,
		hopt:       hopt,
		reg:        reg,
		tr:         tr,
		gauges:     &engineGauges{reg: reg},
		now:        time.Now,
		byID:       make(map[string]*handle),
		lru:        list.New(),
	}
}

// Put registers a graph, kicks off its hierarchy build in the background,
// and returns the new handle. hopt overrides the store default when non-nil.
func (s *store) Put(g *hcd.Graph, hopt *hcd.HierarchyOptions) (*handle, error) {
	opts := s.hopt
	if hopt != nil {
		opts = *hopt
	}
	// Large submissions shard automatically unless the caller chose a shard
	// count (including an explicit 1 via ?shards=1 to force single-pass —
	// that arrives as Shards=1, not 0).
	if opts.Shards == 0 && s.autoShard > 0 && g.N() >= s.autoShard {
		opts.Shards = par.Workers()
	}
	gb := g.Bytes()
	s.mu.Lock()
	if gb > s.maxBytes {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: graph needs %d bytes, budget is %d: %w", gb, s.maxBytes, ErrNoCapacity)
	}
	if err := s.evictLocked(gb, 1); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.nextID++
	buildCtx, cancel := s.buildContext()
	h := &handle{
		id:      fmt.Sprintf("g-%d", s.nextID),
		g:       g,
		ready:   make(chan struct{}),
		status:  StatusBuilding,
		bytes:   gb,
		lastUse: s.now(),
		cancel:  cancel,
		hopt:    opts,
	}
	h.elem = s.lru.PushFront(h)
	s.byID[h.id] = h
	s.bytes += gb
	s.publishLocked()
	s.mu.Unlock()

	go s.build(buildCtx, h, opts)
	return h, nil
}

// buildContext manufactures the background context hierarchy builds run
// under: cancellable (delete/close stop in-flight builds) and carrying the
// store's observability sinks.
func (s *store) buildContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	if s.tr != nil {
		ctx = obs.WithTracer(ctx, s.tr)
	}
	if s.reg != nil {
		ctx = obs.WithRegistry(ctx, s.reg)
	}
	return ctx, cancel
}

// build constructs the hierarchy and publishes the result. It runs outside
// any request: a submitted graph keeps building after its submit request
// returns, and the span parents at the trace root. On success the handle is
// persisted (when a state dir is configured) before it flips ready; on
// failure the consecutive-failure counter feeds the circuit breaker —
// at the threshold the handle degrades instead of failing, and solves fall
// through to unpreconditioned CG.
func (s *store) build(ctx context.Context, h *handle, opts hcd.HierarchyOptions) {
	ctx, sp := obs.StartSpan(ctx, "serve/build")
	sp.Arg("graph", h.id)
	sp.Arg("n", h.g.N())
	sp.Arg("m", h.g.M())
	start := s.now()
	var hier *hcd.Hierarchy
	var err error
	if faultinject.Enabled() {
		err = faultinject.Err(faultinject.BuildFail)
	}
	if err == nil {
		hier, err = hcd.NewHierarchyCtx(ctx, h.g, opts)
	}
	dur := s.now().Sub(start)
	sp.End()
	observe(s.reg, metricBuildTime, dur)

	var snapFile string
	if err == nil {
		snapFile = s.persistHandle(h, h.g, hier)
	}

	s.mu.Lock()
	h.buildDur = dur
	if err != nil {
		h.buildErr = err
		h.failures++
		if s.breaker > 0 && h.failures >= s.breaker {
			h.status = StatusDegraded
			counter(s.reg, metricBreakerOpen)
		} else {
			h.status = StatusFailed
		}
		counter(s.reg, metricBuilds+`{outcome="error"}`)
	} else {
		h.status = StatusReady
		h.failures = 0
		h.h = hier
		h.snapFile = snapFile
		h.pool = newEnginePool(h.g, hier, s.poolSize, s.gauges)
		hb := hier.MemoryBytes()
		h.bytes += hb
		s.bytes += hb
		counter(s.reg, metricBuilds+`{outcome="ok"}`)
		// The finished hierarchy may push the store past its byte budget;
		// rebalance against idle handles. Pin this handle while evicting so
		// it cannot free itself mid-publish.
		h.refs++
		_ = s.evictLocked(0, 0)
		h.refs--
	}
	ready := h.ready
	s.publishLocked()
	s.mu.Unlock()
	// Manifest before wakeup: a client whose ?wait=true returns ready must
	// be able to rely on the handle surviving a crash from that moment on.
	if snapFile != "" {
		s.syncManifest()
	}
	close(ready)
}

// retryBuild re-arms a failed handle: a solve that finds the handle failed
// schedules one fresh build attempt in the background (the client retries
// later). Degraded handles are left alone — the breaker is open precisely
// because retrying stopped helping — and handles in any other state are
// untouched.
func (s *store) retryBuild(h *handle) {
	s.mu.Lock()
	if h.status != StatusFailed || h.g == nil {
		s.mu.Unlock()
		return
	}
	buildCtx, cancel := s.buildContext()
	h.status = StatusBuilding
	h.buildErr = nil
	h.ready = make(chan struct{})
	h.cancel = cancel
	opts := h.hopt
	s.mu.Unlock()
	go s.build(buildCtx, h, opts)
}

// readyChan returns the channel that closes when the handle's current build
// attempt finishes. The channel is replaced on rebuilds, so callers must
// read it through the store lock rather than capturing h.ready directly.
func (s *store) readyChan(h *handle) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.ready
}

// evictLocked frees room for `need` extra bytes and `extra` extra handles,
// dropping idle ready/failed handles from the LRU tail. The most recently
// used handle is never evicted, so a just-submitted graph cannot be killed
// by its own arrival.
func (s *store) evictLocked(need int64, extra int) error {
	for s.lru.Len()+extra > s.maxHandles || s.bytes+need > s.maxBytes {
		var victim *handle
		for e := s.lru.Back(); e != nil && e != s.lru.Front(); e = e.Prev() {
			h := e.Value.(*handle)
			if h.refs == 0 && h.status != StatusBuilding {
				victim = h
				break
			}
		}
		if victim == nil {
			if s.bytes+need > s.maxBytes {
				return fmt.Errorf("serve: need %d bytes over %d in use (budget %d), nothing evictable: %w",
					need, s.bytes, s.maxBytes, ErrNoCapacity)
			}
			return nil // over handle cap but nothing evictable; tolerate
		}
		s.removeLocked(victim)
		counter(s.reg, metricEvictions)
	}
	return nil
}

// removeLocked unlinks a handle and returns its bytes to the budget. The
// handle's durable state goes with it: snapshot removal and the manifest
// rewrite run on a fresh goroutine because the persister lock must never be
// taken under store.mu.
func (s *store) removeLocked(h *handle) {
	if h.elem != nil {
		s.lru.Remove(h.elem)
		h.elem = nil
	}
	delete(s.byID, h.id)
	s.bytes -= h.bytes
	if h.pool != nil {
		h.pool.drop()
	}
	if h.cancel != nil {
		h.cancel()
	}
	if h.snapFile != "" && s.pst != nil {
		file := h.snapFile
		h.snapFile = ""
		go func() {
			s.pst.removeSnapshot(file)
			s.syncManifest()
		}()
	}
}

// Get returns the handle and a release func that must be called when the
// request is done with it. The handle may still be building — callers decide
// whether to wait on h.ready or fail fast.
func (s *store) Get(id string) (*handle, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.byID[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	h.refs++
	h.lastUse = s.now()
	s.lru.MoveToFront(h.elem)
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.mu.Lock()
			h.refs--
			h.lastUse = s.now()
			s.mu.Unlock()
		})
	}
	return h, release, nil
}

// Delete evicts a handle explicitly. In-flight solves holding the handle
// finish normally — the memory is reclaimed when they drop their references.
func (s *store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.byID[id]
	if !ok {
		return ErrNotFound
	}
	s.removeLocked(h)
	s.publishLocked()
	return nil
}

// List snapshots every handle, most recently used first.
func (s *store) List() []HandleInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]HandleInfo, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		infos = append(infos, s.infoLocked(e.Value.(*handle)))
	}
	return infos
}

// Info snapshots one handle.
func (s *store) Info(id string) (HandleInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.byID[id]
	if !ok {
		return HandleInfo{}, ErrNotFound
	}
	return s.infoLocked(h), nil
}

func (s *store) infoLocked(h *handle) HandleInfo {
	info := HandleInfo{
		ID:        h.id,
		Status:    h.status,
		N:         h.dimN(),
		M:         h.dimM(),
		Bytes:     h.persistBytesLocked(),
		Solves:    h.solves,
		Restored:  h.restored,
		BuildMS:   h.buildDur.Milliseconds(),
		InFlight:  h.refs,
		LastUseMS: s.now().Sub(h.lastUse).Milliseconds(),
	}
	if h.buildErr != nil {
		info.Error = h.buildErr.Error()
	}
	if h.h != nil {
		info.Levels = h.h.LevelSizes()
	}
	return info
}

// closeAll abandons every handle without touching durable state: in-flight
// builds are cancelled, pools dropped. This is the in-process stand-in for
// a crash (tests and the chaos battery kill servers mid-build with it);
// snapshots and the manifest stay on disk for the next restore.
func (s *store) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.byID {
		if h.cancel != nil {
			h.cancel()
		}
		if h.pool != nil {
			h.pool.drop()
		}
	}
}

// CountSolve bumps a handle's solve counter.
func (s *store) CountSolve(h *handle) {
	s.mu.Lock()
	h.solves++
	s.mu.Unlock()
}

// Snapshot of a handle's solve-facing state: status, graph, hierarchy,
// pool, error. The graph comes through here rather than h.g directly
// because restored handles install it lazily under the store lock.
func (s *store) solveState(h *handle) (HandleStatus, *hcd.Graph, *hcd.Hierarchy, *enginePool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.status, h.g, h.h, h.pool, h.buildErr
}

func (s *store) publishLocked() {
	gaugeSet(s.reg, metricHandles, float64(s.lru.Len()))
	gaugeSet(s.reg, metricHandleBytes, float64(s.bytes))
}
