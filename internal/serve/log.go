package serve

// Structured request logging. When Config.Logger is set, every request that
// passes wrap emits exactly one slog record ("request") after the handler
// returns: route, method, path, status code, tenant, duration, and — when a
// tracer is installed — the trace/span IDs of the request's serve/* span, so
// a log line joins back to the span tree that recorded the same request.
// Handlers annotate the record with request-scoped facts (graph handle,
// solve outcome, batch width) through a mutable logFields carried in the
// request context.
//
// The disabled path is free: with a nil logger, wrap neither wraps the
// ResponseWriter nor installs logFields, logFieldsFrom returns nil, every
// logFields setter is a nil-safe no-op, and logRequest returns before
// building a single attribute — zero allocations, matching the obs layer's
// disabled-path guarantee (asserted by TestDisabledLoggingZeroAlloc).

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"hcd/internal/obs"
)

// logFields collects per-request annotations set by handlers and flushed
// into the access-log record by wrap. Only the request's handler goroutine
// writes it, so no locking.
type logFields struct {
	handle     string
	outcome    string
	rhs        int
	iterations int
	batchWidth int
	degraded   bool
	queueMS    int64
}

type logFieldsKey struct{}

// logFieldsFrom returns the request's log record, or nil when logging is
// disabled — callers use the nil-safe setters unconditionally.
func logFieldsFrom(ctx context.Context) *logFields {
	if ctx == nil {
		return nil
	}
	lf, _ := ctx.Value(logFieldsKey{}).(*logFields)
	return lf
}

func (lf *logFields) setHandle(id string) {
	if lf != nil {
		lf.handle = id
	}
}

// setSolve records the solve-shaped annotations in one call: aggregate
// outcome, right-hand-side count, total iterations, degraded flag, batch
// width (0 = not batched), and admission queue wait.
func (lf *logFields) setSolve(outcome string, rhs, iterations int, degraded bool, batchWidth int, queueMS int64) {
	if lf == nil {
		return
	}
	lf.outcome = outcome
	lf.rhs = rhs
	lf.iterations = iterations
	lf.degraded = degraded
	lf.batchWidth = batchWidth
	lf.queueMS = queueMS
}

func (lf *logFields) setOutcome(outcome string) {
	if lf != nil {
		lf.outcome = outcome
	}
}

// statusRecorder captures the response status code for the access log. Only
// installed when logging is enabled, so the disabled path never pays the
// wrapper allocation (at the cost of losing http.Flusher — none of the v1
// handlers stream).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// logRequest emits the single access-log record for one request. code is the
// captured status, lf the handler's annotations (nil when none were set —
// possible on early-exit paths), sp the request's serve/* span.
func (s *Server) logRequest(ctx context.Context, route string, r *http.Request, code int, dur time.Duration, lf *logFields) {
	if s.log == nil {
		return
	}
	level := slog.LevelInfo
	switch {
	case code >= 500:
		level = slog.LevelError
	case code >= 400:
		level = slog.LevelWarn
	}
	if !s.log.Enabled(ctx, level) {
		return
	}
	attrs := make([]slog.Attr, 0, 16)
	attrs = append(attrs,
		slog.String("route", route),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("code", code),
		slog.String("tenant", tenant(r)),
		slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
	)
	if s.tr != nil {
		attrs = append(attrs,
			slog.Uint64("trace_id", s.tr.ID()),
			slog.Uint64("span_id", obs.SpanFrom(ctx).ID()),
		)
	}
	if lf != nil {
		if lf.handle != "" {
			attrs = append(attrs, slog.String("handle", lf.handle))
		}
		if lf.outcome != "" {
			attrs = append(attrs, slog.String("outcome", lf.outcome))
		}
		if lf.rhs > 0 {
			attrs = append(attrs,
				slog.Int("rhs", lf.rhs),
				slog.Int("iterations", lf.iterations),
				slog.Int64("queue_wait_ms", lf.queueMS),
			)
		}
		if lf.degraded {
			attrs = append(attrs, slog.Bool("degraded", true))
		}
		if lf.batchWidth > 1 {
			attrs = append(attrs, slog.Int("batch_width", lf.batchWidth))
		}
	}
	s.log.LogAttrs(ctx, level, "request", attrs...)
}
