package serve

// Warm engine pools. An hcd.Engine owns preallocated work buffers and is not
// safe for concurrent use, so each graph handle keeps a small pool of them:
// solves check an engine out, run, and return it. Engines are built lazily —
// the first PoolSize concurrent solves each pay one engine construction, and
// everything after reuses warm sessions (zero steady-state allocation in the
// iteration).

import (
	"context"
	"sync/atomic"

	"hcd"
	"hcd/internal/obs"
)

// engineGauges aggregates engine counts across every pool on a server so
// the serve_engines/serve_engines_busy gauges reflect the whole process.
type engineGauges struct {
	live atomic.Int64
	busy atomic.Int64
	reg  *obs.Registry
}

func (g *engineGauges) addLive(d int64) {
	if g == nil {
		return
	}
	gaugeSet(g.reg, metricEnginesLive, float64(g.live.Add(d)))
}

func (g *engineGauges) addBusy(d int64) {
	if g == nil {
		return
	}
	gaugeSet(g.reg, metricEnginesBusy, float64(g.busy.Add(d)))
}

type enginePool struct {
	g    *hcd.Graph
	h    *hcd.Hierarchy
	size int
	idle chan *hcd.Engine
	// built counts constructed engines; it only grows, up to size.
	built  atomic.Int32
	gauges *engineGauges
}

func newEnginePool(g *hcd.Graph, h *hcd.Hierarchy, size int, gauges *engineGauges) *enginePool {
	if size < 1 {
		size = 1
	}
	return &enginePool{g: g, h: h, size: size, idle: make(chan *hcd.Engine, size), gauges: gauges}
}

// acquire returns a warm engine, building one if the pool has not reached
// its size yet, or blocking until a checkout returns. Cancellation while
// blocked returns ctx.Err().
func (p *enginePool) acquire(ctx context.Context) (*hcd.Engine, error) {
	select {
	case e := <-p.idle:
		p.gauges.addBusy(1)
		return e, nil
	default:
	}
	for {
		n := p.built.Load()
		if n >= int32(p.size) {
			break
		}
		if p.built.CompareAndSwap(n, n+1) {
			e, err := hcd.NewEngine(p.g, p.h, hcd.DefaultSolveOptions())
			if err != nil {
				p.built.Add(-1)
				return nil, err
			}
			p.gauges.addLive(1)
			p.gauges.addBusy(1)
			return e, nil
		}
	}
	select {
	case e := <-p.idle:
		p.gauges.addBusy(1)
		return e, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns an engine to the pool.
func (p *enginePool) release(e *hcd.Engine) {
	p.gauges.addBusy(-1)
	p.idle <- e
}

// drop retires the pool's engines from the live gauge (handle eviction).
func (p *enginePool) drop() {
	p.gauges.addLive(-int64(p.built.Load()))
}
