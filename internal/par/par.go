// Package par provides the small set of parallel primitives used by the
// "linear work, O(log n) parallel time" constructions of the paper: a
// chunk-stealing parallel for, a parallel reduction, fork-join Do, and
// prefix sums. Parallelism defaults to runtime.GOMAXPROCS(0) and degrades
// gracefully to sequential execution for small inputs.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum chunk size handed to a worker when the caller
// does not specify one; it keeps scheduling overhead negligible relative to
// per-element work.
const DefaultGrain = 4096

// Workers returns the degree of parallelism used by this package.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs fn over the chunked range [0, n) in parallel. Chunks have size
// grain (DefaultGrain if grain <= 0) and are claimed with an atomic counter,
// so uneven chunks balance automatically. fn must be safe to call
// concurrently on disjoint ranges. For n <= grain the call is sequential.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	workers := Workers()
	if n <= grain || workers == 1 {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, f := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

// ReduceSum evaluates fn over chunks of [0, n) in parallel and returns the
// sum of the per-chunk results. fn must return the partial sum for its range.
func ReduceSum(n, grain int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n <= grain || Workers() == 1 {
		return fn(0, n)
	}
	chunks := (n + grain - 1) / grain
	partial := make([]float64, chunks)
	For(n, grain, func(lo, hi int) {
		partial[lo/grain] = fn(lo, hi)
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceMin evaluates fn over chunks in parallel and returns the minimum of
// the per-chunk results. For n == 0 it returns +Inf semantics via the
// caller's fn; here we simply require n > 0.
func ReduceMin(n, grain int, fn func(lo, hi int) float64) float64 {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n <= grain || Workers() == 1 {
		return fn(0, n)
	}
	chunks := (n + grain - 1) / grain
	partial := make([]float64, chunks)
	For(n, grain, func(lo, hi int) {
		partial[lo/grain] = fn(lo, hi)
	})
	best := partial[0]
	for _, p := range partial[1:] {
		if p < best {
			best = p
		}
	}
	return best
}

// ExclusivePrefixSum replaces xs with its exclusive prefix sum and returns
// the total. Sequential: prefix sums of the sizes seen here (≤ number of
// vertices) are never the bottleneck, and a sequential scan is cache-optimal.
func ExclusivePrefixSum(xs []int) int {
	sum := 0
	for i, x := range xs {
		xs[i] = sum
		sum += x
	}
	return sum
}
