// Package par provides the small set of parallel primitives used by the
// "linear work, O(log n) parallel time" constructions of the paper: a
// chunk-stealing parallel for, a parallel reduction, fork-join Do, and
// prefix sums. Parallelism defaults to runtime.GOMAXPROCS(0) and degrades
// gracefully to sequential execution for small inputs.
//
// # Panic safety
//
// A panic on a bare goroutine kills the whole process: no caller can recover
// it. The primitives here therefore never let a worker panic escape on a
// worker goroutine. Each worker recovers panics, the first one cancels the
// sibling workers (they stop claiming chunks at the next claim), and after
// the join the pool re-raises a single aggregate *PanicError — carrying the
// first worker's message and stack plus the number of workers that panicked
// — on the CALLING goroutine, where ordinary recover() works. Top-level
// entry points (the solver cores, the decomposition pipeline) convert that
// panic into a returned error via AsError.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"hcd/internal/faultinject"
)

// DefaultGrain is the minimum chunk size handed to a worker when the caller
// does not specify one; it keeps scheduling overhead negligible relative to
// per-element work.
const DefaultGrain = 4096

// Workers returns the degree of parallelism used by this package.
func Workers() int { return runtime.GOMAXPROCS(0) }

// PanicError is a panic recovered from a parallel worker, re-raised (or
// returned, via AsError) on the caller's goroutine. Value and Stack come
// from the first worker that panicked; Workers counts how many panicked
// before the pool drained.
type PanicError struct {
	Value   interface{} // the recovered panic value
	Stack   []byte      // stack of the first panicking worker
	Workers int         // number of workers that panicked (≥ 1)
}

// Error renders the first panic value; the stack is carried separately so
// logs can choose whether to print it.
func (e *PanicError) Error() string {
	if e.Workers > 1 {
		return fmt.Sprintf("par: %d workers panicked, first: %v", e.Workers, e.Value)
	}
	return fmt.Sprintf("par: worker panicked: %v", e.Value)
}

// Unwrap exposes a panic value that was itself an error to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsError converts a recovered panic value into an error: a *PanicError
// passes through, anything else (a panic raised on the caller's own
// goroutine, e.g. by the sequential short-circuit paths) is wrapped with
// the current stack. Returns nil for nil. The idiom for a panic-safe entry
// point is:
//
//	defer func() {
//	    if v := recover(); v != nil { err = par.AsError(v) }
//	}()
func AsError(v interface{}) error {
	if v == nil {
		return nil
	}
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack(), Workers: 1}
}

// trap collects panics from a pool of workers. The first panic flips stop
// (checked by the chunk-claim loops, so siblings wind down at their next
// claim) and records its value and stack; rethrow re-raises the aggregate
// on the caller's goroutine after the join.
type trap struct {
	stop  atomic.Bool
	mu    sync.Mutex
	first *PanicError
	count int
}

// catch must be deferred first thing in every worker goroutine.
func (t *trap) catch() {
	v := recover()
	if v == nil {
		return
	}
	t.stop.Store(true)
	t.mu.Lock()
	t.count++
	if t.first == nil {
		t.first = &PanicError{Value: v, Stack: debug.Stack()}
	}
	t.mu.Unlock()
}

// rethrow re-raises the aggregate panic, if any, after all workers joined.
func (t *trap) rethrow() {
	if t.first != nil {
		t.first.Workers = t.count
		panic(t.first)
	}
}

// For runs fn over the chunked range [0, n) in parallel. Chunks have size
// grain (DefaultGrain if grain <= 0) and are claimed with an atomic counter,
// so uneven chunks balance automatically. fn must be safe to call
// concurrently on disjoint ranges. For n <= grain the call is sequential.
//
// A panic inside fn cancels the remaining chunks and re-raises as a single
// *PanicError on the calling goroutine (see the package comment).
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	workers := Workers()
	if n <= grain || workers == 1 {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if workers > chunks {
		workers = chunks
	}
	var t trap
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer t.catch()
			for !t.stop.Load() {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				if faultinject.Enabled() && faultinject.Fire(faultinject.WorkerPanic) {
					panic(fmt.Errorf("%w: %s", faultinject.ErrInjected, faultinject.WorkerPanic))
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	t.rethrow()
}

// Do runs the given functions concurrently and waits for all of them. A
// panicking function does not crash the process: every function still runs
// (they are independent tasks, not chunks of one loop), and the aggregate
// *PanicError re-raises on the calling goroutine after the join.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var t trap
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, f := range fns {
		go func(f func()) {
			defer wg.Done()
			defer t.catch()
			f()
		}(f)
	}
	wg.Wait()
	t.rethrow()
}

// ReduceSum evaluates fn over chunks of [0, n) in parallel and returns the
// sum of the per-chunk results. fn must return the partial sum for its range.
func ReduceSum(n, grain int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n <= grain || Workers() == 1 {
		return fn(0, n)
	}
	chunks := (n + grain - 1) / grain
	partial := make([]float64, chunks)
	For(n, grain, func(lo, hi int) {
		partial[lo/grain] = fn(lo, hi)
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceMin evaluates fn over chunks in parallel and returns the minimum of
// the per-chunk results. For n == 0 it returns +Inf semantics via the
// caller's fn; here we simply require n > 0.
func ReduceMin(n, grain int, fn func(lo, hi int) float64) float64 {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n <= grain || Workers() == 1 {
		return fn(0, n)
	}
	chunks := (n + grain - 1) / grain
	partial := make([]float64, chunks)
	For(n, grain, func(lo, hi int) {
		partial[lo/grain] = fn(lo, hi)
	})
	best := partial[0]
	for _, p := range partial[1:] {
		if p < best {
			best = p
		}
	}
	return best
}

// ExclusivePrefixSum replaces xs with its exclusive prefix sum and returns
// the total. Sequential: prefix sums of the sizes seen here (≤ number of
// vertices) are never the bottleneck, and a sequential scan is cache-optimal.
func ExclusivePrefixSum(xs []int) int {
	sum := 0
	for i, x := range xs {
		xs[i] = sum
		sum += x
	}
	return sum
}
