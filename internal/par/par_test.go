package par

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

// forceParallel raises GOMAXPROCS so the multi-worker code paths execute
// even on single-core hosts (goroutines still interleave correctly).
func forceParallel(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestForParallelPath(t *testing.T) {
	forceParallel(t)
	n := 100000
	hits := make([]int32, n)
	For(n, 1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestReduceSumParallelPath(t *testing.T) {
	forceParallel(t)
	n := 50000
	got := ReduceSum(n, 100, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	want := float64(n*(n-1)) / 2
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("parallel ReduceSum = %v, want %v", got, want)
	}
}

func TestReduceMinParallelPath(t *testing.T) {
	forceParallel(t)
	n := 50000
	got := ReduceMin(n, 100, func(lo, hi int) float64 {
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			v := float64((i*2654435761 + 7) % 1000001)
			if i == 31337 {
				v = -42
			}
			if v < m {
				m = v
			}
		}
		return m
	})
	if got != -42 {
		t.Errorf("parallel ReduceMin = %v, want -42", got)
	}
}

func TestForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 10000, 100001} {
		hits := make([]int32, n)
		For(n, 7, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForDefaultGrain(t *testing.T) {
	var count atomic.Int64
	For(100000, 0, func(lo, hi int) {
		count.Add(int64(hi - lo))
	})
	if count.Load() != 100000 {
		t.Errorf("covered %d of 100000", count.Load())
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Error("Do did not run all functions")
	}
	Do(func() { a.Store(9) }) // single-function fast path
	if a.Load() != 9 {
		t.Error("single Do failed")
	}
}

func TestReduceSum(t *testing.T) {
	n := 12345
	got := ReduceSum(n, 100, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	want := float64(n*(n-1)) / 2
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("ReduceSum = %v, want %v", got, want)
	}
	if ReduceSum(0, 10, func(lo, hi int) float64 { return 1 }) != 0 {
		t.Error("empty ReduceSum should be 0")
	}
}

func TestReduceMin(t *testing.T) {
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = float64((i*7919)%5000) + 1
	}
	xs[3333] = -5
	got := ReduceMin(len(xs), 64, func(lo, hi int) float64 {
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			if xs[i] < m {
				m = xs[i]
			}
		}
		return m
	})
	if got != -5 {
		t.Errorf("ReduceMin = %v, want -5", got)
	}
}

func TestExclusivePrefixSum(t *testing.T) {
	xs := []int{3, 1, 4, 1, 5}
	total := ExclusivePrefixSum(xs)
	if total != 14 {
		t.Errorf("total = %d", total)
	}
	want := []int{0, 3, 4, 8, 9}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("prefix[%d] = %d, want %d", i, xs[i], want[i])
		}
	}
	if ExclusivePrefixSum(nil) != 0 {
		t.Error("empty prefix sum should be 0")
	}
}

func BenchmarkForSum(b *testing.B) {
	n := 1 << 20
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		_ = ReduceSum(n, 0, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		})
	}
}
