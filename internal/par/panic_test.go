package par

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"hcd/internal/faultinject"
)

// catchPanic runs fn and returns the error form of whatever it panicked
// with (nil if it returned normally).
func catchPanic(fn func()) (err error) {
	defer func() { err = AsError(recover()) }()
	fn()
	return nil
}

func TestForWorkerPanicSurfacesOnCaller(t *testing.T) {
	forceParallel(t)
	sentinel := errors.New("boom")
	err := catchPanic(func() {
		For(100000, 1000, func(lo, hi int) {
			if lo == 5000 {
				panic(sentinel)
			}
		})
	})
	if err == nil {
		t.Fatal("worker panic did not propagate to the caller")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T, want *PanicError", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("PanicError does not unwrap to the panic value: %v", err)
	}
	if len(pe.Stack) == 0 || !bytes.Contains(pe.Stack, []byte("par.")) {
		t.Fatalf("PanicError carries no worker stack: %q", pe.Stack)
	}
	if pe.Workers < 1 {
		t.Fatalf("Workers = %d, want ≥ 1", pe.Workers)
	}
}

func TestForPanicCancelsSiblings(t *testing.T) {
	forceParallel(t)
	var done atomic.Int64
	const chunks = 1000
	err := catchPanic(func() {
		For(chunks, 1, func(lo, hi int) {
			if lo == 0 {
				panic("first chunk dies")
			}
			done.Add(1)
		})
	})
	if err == nil {
		t.Fatal("panic did not propagate")
	}
	// The stop flag is checked at every chunk claim, so the pool must wind
	// down well before draining all chunks. Allow generous slack for chunks
	// already claimed when the panic hit.
	if n := done.Load(); n >= chunks-1 {
		t.Fatalf("%d/%d chunks ran after a panic; siblings were not cancelled", n, chunks)
	}
}

func TestDoAggregatesPanics(t *testing.T) {
	forceParallel(t)
	var ran atomic.Int64
	err := catchPanic(func() {
		Do(
			func() { ran.Add(1) },
			func() { panic("a") },
			func() { ran.Add(1) },
			func() { panic("b") },
		)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", pe.Workers)
	}
	if ran.Load() != 2 {
		t.Fatalf("non-panicking tasks ran %d times, want 2", ran.Load())
	}
}

func TestSequentialPanicStillCatchable(t *testing.T) {
	// The sequential short-circuit (n <= grain) panics on the caller's own
	// goroutine; AsError must still wrap it.
	err := catchPanic(func() {
		For(10, 100, func(lo, hi int) { panic("serial") })
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
}

func TestAsErrorNil(t *testing.T) {
	if AsError(nil) != nil {
		t.Fatal("AsError(nil) != nil")
	}
}

func TestInjectedWorkerPanic(t *testing.T) {
	forceParallel(t)
	restore := faultinject.Activate(map[string]faultinject.Spec{
		faultinject.WorkerPanic: {OnHit: 3, Count: 1},
	})
	defer restore()
	err := catchPanic(func() {
		For(100000, 1000, func(lo, hi int) {})
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected worker panic surfaced as %v, want ErrInjected", err)
	}
	// With the fault window exhausted the same loop must run clean.
	if err := catchPanic(func() { For(100000, 1000, func(lo, hi int) {}) }); err != nil {
		t.Fatalf("loop after fault window: %v", err)
	}
}
