module hcd

go 1.22
