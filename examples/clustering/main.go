// clustering demonstrates the [φ, ρ] decompositions themselves as a graph
// clustering primitive: it partitions a planar mesh with the Theorem 2.2
// pipeline, reports per-cluster conductance certificates, and shows the
// laminar hierarchy obtained by recursing on quotients (the structure used
// for oblivious routing and multilevel preconditioning).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"hcd"
)

func main() {
	g := hcd.PlanarMesh(32, 32, hcd.LognormalWeights(1), 3)
	fmt.Printf("planar mesh: n=%d m=%d\n", g.N(), g.M())

	res, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{
		Method: hcd.MethodPlanar, Base: hcd.MaxWeightTree, ExtraFraction: 0.25, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := hcd.Validate(res.D); err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	fmt.Printf("Theorem 2.2 pipeline: core |W|=%d, cut |C|=%d, avg stretch %.2f\n",
		res.CoreSize, res.CutEdges, res.AvgStretch)
	fmt.Printf("decomposition: %d clusters, ρ=%.2f, min closure conductance φ=%.3f\n",
		res.D.Count, rep.Rho, rep.Phi)

	// Cluster size distribution.
	sizes := map[int]int{}
	for _, c := range res.D.Clusters() {
		sizes[len(c)]++
	}
	keys := make([]int, 0, len(sizes))
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Println("cluster sizes:")
	for _, k := range keys {
		fmt.Printf("  %2d vertices × %d clusters\n", k, sizes[k])
	}

	// Recursive clustering: the laminar decomposition. Each level clusters
	// the previous level's quotient graph.
	lam, err := hcd.BuildLaminar(g, 4, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	levels := lam.Levels
	fmt.Println("laminar hierarchy (recursive §3.1 clustering):")
	n := g.N()
	for i, d := range levels {
		r := hcd.Evaluate(d)
		fmt.Printf("  level %d: %d → %d vertices (ρ=%.2f, φ=%.3f)\n",
			i, n, d.Count, r.Rho, r.Phi)
		n = d.Count
	}
}
