// oct3d reproduces the paper's motivating application (Section 3.2): solving
// Laplacian systems on 3D optical-coherence-tomography-like volumes whose
// edge weights vary over many orders of magnitude, both globally (tissue
// layers) and locally (speckle noise). It compares four solvers on the same
// system: plain CG, Jacobi PCG, two-level Steiner PCG, and the multilevel
// Steiner hierarchy.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"hcd"
)

func main() {
	opt := hcd.DefaultOCTOptions()
	opt.Contrast = 100 // 100× conductivity drop per tissue layer
	opt.NoiseSigma = 1 // strong multiplicative speckle
	g := hcd.OCT3D(24, 24, 24, opt)
	fmt.Printf("synthetic OCT volume: 24³ = %d vertices, %d edges\n", g.N(), g.M())

	ctx := context.Background()
	b := randomRHS(g.N())
	run := func(name string, build func() (hcd.Preconditioner, error)) {
		start := time.Now()
		p, err := build()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		buildTime := time.Since(start)
		start = time.Now()
		res, err := hcd.SolvePCGCtx(ctx, g, b, p, hcd.DefaultSolveOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s build %-12v solve %-12v iters %-5d converged %v\n",
			name, buildTime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond),
			res.Iterations, res.Converged)
	}

	run("jacobi", func() (hcd.Preconditioner, error) {
		return hcd.JacobiPreconditioner(g), nil
	})
	run("steiner (two-level)", func() (hcd.Preconditioner, error) {
		dres, err := hcd.DecomposeCtx(ctx, g, hcd.DecomposeOptions{
			Method: hcd.MethodFixedDegree, SizeCap: 4, Seed: 1, SkipReport: true,
		})
		if err != nil {
			return nil, err
		}
		return hcd.NewSteinerPreconditioner(dres.D)
	})
	run("subgraph (baseline)", func() (hcd.Preconditioner, error) {
		popt := hcd.DefaultPlanarOptions()
		popt.ExtraFraction = 0.12
		sub, err := hcd.NewSubgraphPreconditioner(g, popt, g.N())
		if err != nil {
			return nil, err
		}
		return sub.P, nil
	})
	run("steiner hierarchy", func() (hcd.Preconditioner, error) {
		return hcd.NewHierarchy(g, hcd.DefaultHierarchyOptions())
	})
}

func randomRHS(n int) []float64 {
	rng := rand.New(rand.NewSource(11))
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b {
		b[i] -= s / float64(n)
	}
	return b
}
