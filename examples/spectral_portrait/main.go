// spectral_portrait demonstrates Section 4: the low eigenvectors of the
// normalized Laplacian of a well-clustered graph are nearly cluster-wise
// constant (after D^{1/2} scaling). It builds a graph with planted
// communities, computes its smallest eigenpairs, and shows how much of each
// eigenvector lives inside Range(D^{1/2}R) for the computed decomposition —
// the quantity Theorem 4.1 bounds by 3λ(1 + 2/(γφ²)).
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"hcd"
)

func main() {
	// Planted partition: 8 dense blocks of 24 vertices joined by light
	// edges — the regime where random walks get trapped in clusters.
	g := plantedPartition(8, 24, 4.0, 0.05)
	fmt.Printf("planted-partition graph: n=%d m=%d\n", g.N(), g.M())

	dres, err := hcd.DecomposeCtx(context.Background(), g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: 24, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	d, rep := dres.D, dres.Report
	fmt.Printf("clustering: %d clusters, φ=%.3f, γ=%.3f\n", d.Count, rep.Phi, rep.GammaMin)

	vals, vecs, err := hcd.SmallestEigenpairs(g, 10, 150, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eigenvector alignment with the cluster space Range(D^{1/2}R):")
	fmt.Printf("%-4s %-12s %-14s %-14s\n", "i", "λᵢ", "1−alignment", "bound 3λ(1+2/φ³)")
	for i := range vals {
		mis := 1 - hcd.Alignment(d, vecs[i])
		bound := 3 * vals[i] * (1 + 2/math.Pow(rep.Phi, 3))
		fmt.Printf("%-4d %-12.5f %-14.6f %-14.4f\n", i+2, vals[i], mis, bound)
	}
	fmt.Println("shape: eigenvectors below the spectral gap align almost perfectly;")
	fmt.Println("alignment degrades only past the gap — the paper's spectral portrait.")

	lo, hi, err := hcd.CheegerBounds(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole-graph conductance bracket (Cheeger + sweep): [%.4f, %.4f]\n", lo, hi)

	// Recover the planted blocks by recursing: compose laminar levels until
	// the quotient is block-sized, then check cluster purity.
	lam, err := hcd.BuildLaminar(g, 4, 12, 1)
	if err != nil {
		log.Fatal(err)
	}
	levels := lam.Levels
	assign := make([]int, g.N())
	for v := range assign {
		assign[v] = v
	}
	for _, l := range levels {
		for v := range assign {
			assign[v] = l.Assign[assign[v]]
		}
	}
	top := levels[len(levels)-1].Count
	composed := &hcd.Decomposition{G: g, Assign: assign, Count: top}
	if err := hcd.Validate(composed); err != nil {
		log.Fatal(err)
	}
	crep := hcd.Evaluate(composed)
	fmt.Printf("laminar recursion: %d levels down to %d clusters (φ=%.3f)\n",
		len(levels), top, crep.Phi)
	truth := make([]int, g.N())
	for v := range truth {
		truth[v] = v / 24 // planted block of v
	}
	agree, err := hcd.Agreement(assign, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted-block recovery: purity %.1f%%, Rand index %.3f\n",
		100*agree.Purity, agree.RandIndex)
}

// plantedPartition builds k blocks of size s: a cycle plus random chords
// inside each block with weight win, and a light ring between blocks.
func plantedPartition(k, s int, win, wout float64) *hcd.Graph {
	var es []hcd.Edge
	id := func(b, i int) int { return b*s + i }
	for b := 0; b < k; b++ {
		for i := 0; i < s; i++ {
			es = append(es, hcd.Edge{U: id(b, i), V: id(b, (i+1)%s), W: win})
			// chords for expansion inside the block
			es = append(es, hcd.Edge{U: id(b, i), V: id(b, (i+s/2)%s), W: win})
		}
		es = append(es, hcd.Edge{U: id(b, 0), V: id((b+1)%k, 0), W: wout})
	}
	g, err := hcd.NewGraph(k*s, es)
	if err != nil {
		log.Fatal(err)
	}
	return g
}
