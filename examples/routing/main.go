// routing demonstrates oblivious routing through a laminar decomposition —
// the application that motivated (φ, γ) hierarchies in the literature the
// paper builds on (Räcke et al.). It routes a random permutation demand set
// over a mesh two ways: canonically through the cluster hierarchy
// (oblivious: each path depends only on its endpoints) and by shortest
// paths, then compares congestion.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hcd"
)

func main() {
	g := hcd.PlanarMesh(20, 20, hcd.LognormalWeights(1), 1)
	fmt.Printf("mesh: n=%d m=%d\n", g.N(), g.M())

	lam, err := hcd.BuildLaminar(g, 4, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("laminar hierarchy: %d levels, sizes %v\n", lam.Depth(), lam.Sizes())

	router, err := hcd.NewRouter(g, lam)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(g.N())
	var oblivious, shortest [][]int
	demands := 0
	for i := 0; i+1 < g.N(); i += 2 {
		s, t := perm[i], perm[i+1]
		op, err := router.Route(s, t)
		if err != nil {
			log.Fatal(err)
		}
		if err := hcd.ValidatePath(g, op, s, t); err != nil {
			log.Fatal(err)
		}
		sp, err := hcd.ShortestPath(g, s, t)
		if err != nil {
			log.Fatal(err)
		}
		oblivious = append(oblivious, op)
		shortest = append(shortest, sp)
		demands++
	}

	oMax, oMean, err := hcd.RouteCongestion(g, oblivious)
	if err != nil {
		log.Fatal(err)
	}
	sMax, sMean, err := hcd.RouteCongestion(g, shortest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d demands routed\n", demands)
	fmt.Printf("%-22s max congestion %-10.2f mean %-10.2f\n", "oblivious (laminar)", oMax, oMean)
	fmt.Printf("%-22s max congestion %-10.2f mean %-10.2f\n", "shortest path", sMax, sMean)
	fmt.Println("the oblivious scheme pays a bounded congestion overhead in exchange")
	fmt.Println("for paths that depend only on their endpoints — no global state,")
	fmt.Println("no re-routing under churn; exactly the property [25, 3, 13] derive")
	fmt.Println("from hierarchies of well-connected clusters.")
}
