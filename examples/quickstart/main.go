// Quickstart: build a weighted 3D grid, decompose it into high-conductance
// clusters, inspect the quality report, and solve a Laplacian system with a
// Steiner-preconditioned CG.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"hcd"
)

func main() {
	// A 16×16×16 grid with lognormal edge weights — the paper's "weighted
	// 3D regular grid" with large weight variation.
	g := hcd.Grid3D(16, 16, 16, hcd.LognormalWeights(1), 42)
	fmt.Printf("graph: n=%d, m=%d\n", g.N(), g.M())

	// Section 3.1 clustering: clusters of ≈4 vertices, every closure with
	// provably bounded conductance, reduction factor ≥ 2.
	ctx := context.Background()
	dres, err := hcd.DecomposeCtx(ctx, g, hcd.DecomposeOptions{
		Method: hcd.MethodFixedDegree, SizeCap: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	d, rep := dres.D, dres.Report
	fmt.Printf("decomposition: %d clusters, ρ=%.2f, φ=%.4f (exact=%v)\n",
		d.Count, rep.Rho, rep.Phi, rep.PhiExact)

	// Build the Steiner preconditioner of Section 3 and solve A·x = b.
	p, err := hcd.NewSteinerPreconditioner(d)
	if err != nil {
		log.Fatal(err)
	}
	b := randomRHS(g.N())
	res, err := hcd.SolvePCGCtx(ctx, g, b, p, hcd.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCG: converged=%v in %d iterations (‖r‖ %.2e → %.2e)\n",
		res.Converged, res.Iterations,
		res.Residuals[0], res.Residuals[len(res.Residuals)-1])

	// Verify the solution against the operator.
	ax := make([]float64, g.N())
	g.LapMul(ax, res.X)
	worst := 0.0
	for i := range ax {
		if d := abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("verification: max |(Ax − b)_i| = %.2e\n", worst)
}

func randomRHS(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	s := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		s += b[i]
	}
	for i := range b { // Laplacian systems need b ⊥ 1
		b[i] -= s / float64(n)
	}
	return b
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
