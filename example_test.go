package hcd_test

import (
	"fmt"

	"hcd"
)

// ExampleDecomposeFixedDegree shows the Section 3.1 clustering on a small
// unit grid: every cluster has at least two vertices, so ρ ≥ 2.
func ExampleDecomposeFixedDegree() {
	g := hcd.Grid2D(6, 6, nil, 1)
	d, err := hcd.DecomposeFixedDegree(g, 4, 1)
	if err != nil {
		panic(err)
	}
	rep := hcd.Evaluate(d)
	fmt.Printf("rho>=2: %v, clusters of size >=2: %v\n",
		rep.Rho >= 2, rep.Singletons == 0)
	// Output:
	// rho>=2: true, clusters of size >=2: true
}

// ExampleDecomposeTree shows the Theorem 2.1 guarantees on a path.
func ExampleDecomposeTree() {
	// A path of 30 unit-weight vertices.
	edges := make([]hcd.Edge, 29)
	for i := range edges {
		edges[i] = hcd.Edge{U: i, V: i + 1, W: 1}
	}
	g, err := hcd.NewGraph(30, edges)
	if err != nil {
		panic(err)
	}
	d, err := hcd.DecomposeTree(g)
	if err != nil {
		panic(err)
	}
	rep := hcd.Evaluate(d)
	fmt.Printf("phi>=1/3: %v, rho>=6/5: %v, exact: %v\n",
		rep.Phi >= 1.0/3-1e-9, rep.Rho >= 1.2, rep.PhiExact)
	// Output:
	// phi>=1/3: true, rho>=6/5: true, exact: true
}

// ExampleSolve solves a Laplacian system with the multilevel Steiner
// preconditioner in one call.
func ExampleSolve() {
	g := hcd.Grid3D(6, 6, 6, hcd.LognormalWeights(1), 1)
	b := make([]float64, g.N())
	b[0], b[g.N()-1] = 1, -1 // a unit current from corner to corner
	res, err := hcd.Solve(g, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %v\n", res.Converged)
	// Output:
	// converged: true
}

// ExampleLocalCluster grows one cluster around a seed without touching the
// whole graph.
func ExampleLocalCluster() {
	// Two 8-cliques joined by one light edge.
	var edges []hcd.Edge
	for b := 0; b < 2; b++ {
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				edges = append(edges, hcd.Edge{U: b*8 + i, V: b*8 + j, W: 1})
			}
		}
	}
	edges = append(edges, hcd.Edge{U: 0, V: 8, W: 0.01})
	g, err := hcd.NewGraph(16, edges)
	if err != nil {
		panic(err)
	}
	res, err := hcd.LocalCluster(g, 3, hcd.DefaultLocalClusterOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("cluster: %v\n", res.Cluster)
	// Output:
	// cluster: [0 1 2 3 4 5 6 7]
}
