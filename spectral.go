package hcd

import (
	"hcd/internal/spectral"
)

// SmallestEigenpairs returns the k smallest non-kernel eigenpairs of the
// normalized Laplacian Â = D^{−1/2} A D^{−1/2} of a connected graph,
// ascending, via deflated Lanczos with full reorthogonalization. iters
// bounds the Krylov dimension (0 = default).
func SmallestEigenpairs(g *Graph, k, iters int, seed int64) ([]float64, [][]float64, error) {
	return spectral.Smallest(g, k, iters, seed)
}

// CheegerBounds returns certified (lower, upper) bounds on the conductance
// of a connected graph: λ₂/2 from the Cheeger inequality below, and the
// better of √(2λ₂) and a spectral sweep cut above.
func CheegerBounds(g *Graph, seed int64) (float64, float64, error) {
	return spectral.CheegerBounds(g, seed)
}

// PortraitRow is one eigenpair's entry in the Theorem 4.1 table.
type PortraitRow = spectral.PortraitRow

// Portrait computes the Theorem 4.1 table for the k smallest non-kernel
// eigenpairs of d's graph: eigenvalue, misalignment with the cluster space
// Range(D^{1/2}R), and the paper's bound at the measured φ.
func Portrait(d *Decomposition, k int, seed int64) ([]PortraitRow, error) {
	return spectral.Portrait(d, k, seed)
}

// Alignment returns ‖proj(x)‖² for the projection of the unit vector x onto
// Range(D^{1/2}R), the cluster-wise constant space of Theorem 4.1.
// 1 − Alignment is the squared distance the theorem bounds by
// 3·λ·(1 + 2/(γφ²)).
func Alignment(d *Decomposition, x []float64) float64 {
	return spectral.Alignment(d, x)
}
