package hcd

import (
	"context"
	"fmt"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/lowstretch"
	"hcd/internal/mst"
	"hcd/internal/resist"
	"hcd/internal/solver"
	"hcd/internal/sparsify"
	"hcd/internal/steiner"
	"hcd/internal/subgraph"
	"hcd/internal/support"
	"hcd/internal/treealg"
)

// Operator is a symmetric positive semidefinite linear operator.
type Operator = solver.Operator

// Preconditioner applies an approximate inverse.
type Preconditioner = solver.Preconditioner

// SolveOptions controls PCG.
type SolveOptions = solver.Options

// SolveResult reports a completed solve, including the residual history
// behind Figure 6 and the PCG coefficients behind spectrum estimates.
type SolveResult = solver.Result

// DefaultSolveOptions returns the standard Laplacian-solve settings
// (relative tolerance 1e-8, mean projection on).
func DefaultSolveOptions() SolveOptions { return solver.DefaultOptions() }

// LaplacianOperator wraps a graph's Laplacian as an Operator.
func LaplacianOperator(g *Graph) Operator { return solver.LapOperator(g) }

// JacobiPreconditioner is the diagonal D⁻¹ baseline.
func JacobiPreconditioner(g *Graph) Preconditioner { return solver.Jacobi(g) }

// NewSteinerPreconditioner builds the Section 3 Steiner preconditioner for
// the decomposition's graph, applied through the exact two-level identity
// B⁺r = D⁻¹r + R·Q⁺(Rᵀr).
func NewSteinerPreconditioner(d *Decomposition) (Preconditioner, error) {
	return steiner.New(d, steiner.DefaultOptions())
}

// SubgraphResult bundles a subgraph preconditioner with its structure.
type SubgraphResult struct {
	P Preconditioner
	// B is the underlying subgraph (tree + extra edges).
	B *Graph
	// CoreSize is the dense-factored remainder after partial Cholesky.
	CoreSize int
}

// NewSubgraphPreconditioner builds the classical baseline of Figure 6: a
// sparsified subgraph applied via partial Cholesky elimination of degree-1/2
// vertices plus a dense core solve. coreLimit bounds the dense core.
func NewSubgraphPreconditioner(g *Graph, opt PlanarOptions, coreLimit int) (*SubgraphResult, error) {
	sres, err := sparsify.Sparsify(g, sparsify.Options{
		Base: opt.Base, ExtraFraction: opt.ExtraFraction, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	p, st, err := subgraph.New(sres.B, coreLimit)
	if err != nil {
		return nil, err
	}
	return &SubgraphResult{P: p, B: sres.B, CoreSize: st.CoreSize}, nil
}

// NewTreePreconditioner builds a spanning-tree-only preconditioner (the
// original Vaidya construction and Remark 1's reference point): an exact
// O(n)-per-apply tree Laplacian solve over a max-weight or low-stretch
// spanning tree. κ(A, T) is bounded by the total stretch of the off-tree
// edges, so it degrades with size — which is why both the paper and this
// library augment trees with extra edges or clusters.
func NewTreePreconditioner(g *Graph, base BaseTree, seed int64) (Preconditioner, error) {
	var edges []Edge
	switch base {
	case MaxWeightTree:
		edges = mst.Kruskal(g, mst.Max)
	case LowStretchTree:
		edges = lowstretch.AKPW(g, seed)
	default:
		return nil, fmt.Errorf("hcd: unknown base tree %d", base)
	}
	forest, err := graph.NewFromUniqueEdges(g.N(), edges)
	if err != nil {
		return nil, err
	}
	rooted, err := treealg.RootForest(forest)
	if err != nil {
		return nil, err
	}
	s := treealg.NewSolver(rooted)
	return solver.OpFunc{N: g.N(), F: s.Solve}, nil
}

// NewGridSubgraphPreconditioner builds the miniaturized subgraph
// preconditioner the paper's Section 3.2 used for Figure 6's baseline on
// 3D grids: per-block max-weight trees plus one heaviest edge per adjacent
// block pair (blockSize controls the reduction, ≈ blockSize³/6). The graph
// must use the workload generators' (i·ny + j)·nz + k vertex layout.
func NewGridSubgraphPreconditioner(g *Graph, nx, ny, nz, blockSize int) (*SubgraphResult, error) {
	sres, err := sparsify.GridMiniature(g, nx, ny, nz, blockSize)
	if err != nil {
		return nil, err
	}
	p, st, err := subgraph.New(sres.B, g.N())
	if err != nil {
		return nil, err
	}
	return &SubgraphResult{P: p, B: sres.B, CoreSize: st.CoreSize}, nil
}

// NewSubgraphPreconditionerMatched builds a subgraph preconditioner whose
// partial-Cholesky core has about n/targetReduction vertices — the "same
// reduction factor" protocol of the paper's Figure 6 comparison. It
// bisects the off-tree edge budget using a numerics-free elimination probe.
func NewSubgraphPreconditionerMatched(g *Graph, targetReduction float64, seed int64) (*SubgraphResult, error) {
	if targetReduction <= 1 {
		return nil, fmt.Errorf("hcd: target reduction must exceed 1")
	}
	targetCore := int(float64(g.N()) / targetReduction)
	lo, hi := 0.0, 1.0
	best := subgraphOpt(seed, 0.25)
	for iter := 0; iter < 12; iter++ {
		mid := (lo + hi) / 2
		opt := subgraphOpt(seed, mid)
		sres, err := sparsify.Sparsify(g, sparsify.Options{Base: opt.Base, ExtraFraction: opt.ExtraFraction, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		core := subgraph.ProbeCoreSize(sres.B)
		if core < targetCore {
			lo = mid // need more off-tree edges for a bigger core
		} else {
			hi = mid
		}
		best = opt
		best.ExtraFraction = (lo + hi) / 2
	}
	return NewSubgraphPreconditioner(g, best, g.N())
}

func subgraphOpt(seed int64, fraction float64) PlanarOptions {
	opt := DefaultPlanarOptions()
	opt.Seed = seed
	opt.ExtraFraction = fraction
	return opt
}

// HierarchyOptions configures the multilevel Steiner preconditioner.
type HierarchyOptions = hierarchy.Options

// DefaultHierarchyOptions returns the standard multilevel settings.
func DefaultHierarchyOptions() HierarchyOptions { return hierarchy.DefaultOptions() }

// Hierarchy is the multilevel (laminar) Steiner preconditioner — the CMG
// precursor sketched in the paper's Section 1.1 and Remark 3.
type Hierarchy = hierarchy.Hierarchy

// NewHierarchy builds a multilevel Steiner preconditioner for g.
func NewHierarchy(g *Graph, opt HierarchyOptions) (*Hierarchy, error) {
	return hierarchy.New(g, opt)
}

// NewHierarchyCtx is NewHierarchy under a context: the per-level clusterings
// poll cancellation, so a cancelled setup returns an error wrapping
// ErrBuildCancelled promptly.
func NewHierarchyCtx(ctx context.Context, g *Graph, opt HierarchyOptions) (*Hierarchy, error) {
	return hierarchy.NewCtx(ctx, g, opt)
}

// SolvePCG solves the Laplacian system A·x = b with preconditioned
// conjugate gradients. b should be orthogonal to the constant vector on each
// component; with opt.ProjectMean (default) it is projected automatically.
// Dimension mismatches return an error wrapping ErrBadDimension (earlier
// versions panicked and returned a bare SolveResult).
//
// Deprecated: SolvePCG is the context-free legacy form. Use SolvePCGCtx for
// cancellation and deadlines, Do for multi-RHS requests, or an Engine for
// repeated solves.
func SolvePCG(g *Graph, b []float64, m Preconditioner, opt SolveOptions) (SolveResult, error) {
	return SolvePCGCtx(context.Background(), g, b, m, opt)
}

// Solve is the batteries-included entry point: it builds a multilevel
// Steiner preconditioner and runs PCG to the default tolerance.
//
// Deprecated: Solve is a thin wrapper over SolveCtx with
// context.Background(). Use SolveCtx (or Do); for repeated solves on one
// graph prefer NewHierarchyEngine.
func Solve(g *Graph, b []float64) (SolveResult, error) {
	return SolveCtx(context.Background(), g, b)
}

// SupportNumbers holds measured support values σ(A,B), σ(B,A) and the
// condition number κ(A,B) of a preconditioned pair.
type SupportNumbers = support.Numbers

// MeasureSupport estimates the support numbers of (A, B) where B is given
// through its inverse applier, using a PCG/Lanczos probe of the given depth.
func MeasureSupport(g *Graph, bInv Preconditioner, probe []float64, depth int) (SupportNumbers, error) {
	return support.Probe(solver.LapOperator(g), bInv, probe, depth)
}

// EstimateSpectrum converts PCG coefficients into (λmin, λmax) estimates of
// the preconditioned operator.
func EstimateSpectrum(res SolveResult) (float64, float64, error) {
	return solver.SpectrumEstimate(res.Alphas, res.Betas)
}

// ResistanceComputer answers effective-resistance queries
// R_eff(u, v) = (e_u − e_v)ᵀA⁺(e_u − e_v) over one graph, reusing a
// multilevel Steiner preconditioner across solves. Foster's theorem
// (Σ_e w(e)·R_eff(e) = n − 1) certifies the whole solver stack end to end.
type ResistanceComputer = resist.Computer

// NewResistanceComputer prepares resistance queries for a connected graph.
func NewResistanceComputer(g *Graph) (*ResistanceComputer, error) {
	return resist.New(g)
}

// SolveChebyshev solves A·x = b by Chebyshev iteration — the inner-product-
// free companion of the parallel preconditioners (no reductions across
// workers per step). It bootstraps eigenvalue bounds for M⁻¹A from a short
// PCG probe, then iterates. Returns the solution and the residual history.
//
// Deprecated: SolveChebyshev is a thin wrapper over SolveChebyshevCtx with
// context.Background() and DefaultChebyshevOptions. Use the Ctx form (or Do
// with SolveMethodChebyshev) to configure the probe depth and Ritz-bracket
// widening, observe the spectrum estimate, or cancel mid-solve.
func SolveChebyshev(g *Graph, b []float64, m Preconditioner, iters int) ([]float64, []float64, error) {
	res, err := SolveChebyshevCtx(context.Background(), g, b, m, DefaultChebyshevOptions(iters))
	if err != nil {
		return nil, nil, err
	}
	return res.X, res.Residuals, nil
}
